// Quickstart: compile a tiny program, profile a normal and a buggy
// execution, and let the value-assisted analysis point at the root cause.
//
// The program models the classic misleading-profile situation: a cheap
// driver (the root cause) repeatedly calls an expensive worker because a
// threshold was mis-configured to zero. A raw cost profile blames the
// worker; vProf's calibrated ranking blames the driver.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vprof "vprof"
)

const source = `
var threshold;

func expensive_worker(n) {
	work(500);
	return n - 1;
}

func driver(rounds) {
	var processed = 0;
	for (var r = 0; r < rounds; r++) {
		var todo = 10;
		while (todo > threshold) {
			todo = expensive_worker(todo);
		}
		processed++;
	}
	return processed;
}

func main() {
	threshold = input(0);
	driver(input(1));
}
`

func main() {
	prog, err := vprof.Compile("quickstart.vp", source)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (paper §3): static analysis picks the variables to monitor.
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	fmt.Println("== monitoring schema ==")
	fmt.Print(vprof.FormatSchema(sch))

	// Step 2-3 (paper §4): profile a normal and a buggy execution. The
	// normal run uses a sane threshold (8: two worker calls per round);
	// the buggy run's threshold 0 forces ten calls per round.
	normalSpec := vprof.RunSpec{Inputs: []int64{8, 60}}
	buggySpec := vprof.RunSpec{Inputs: []int64{0, 60}}

	// Step 4 (paper §5): post-profiling analysis calibrates costs.
	report, err := vprof.Diagnose(prog, sch, normalSpec, buggySpec, 5, vprof.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== calibrated ranking (vProf) ==")
	fmt.Print(report.Render(5))

	fmt.Println("\nA raw cost profile ranks expensive_worker first — it is where")
	fmt.Println("the time goes. The calibrated ranking instead promotes driver:")
	fmt.Println("its threshold/todo variables are anomalous versus the normal run,")
	fmt.Printf("and the inferred pattern is %q.\n", report.Func("driver").Pattern)
}
