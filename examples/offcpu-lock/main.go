// Off-CPU profiling example — the paper's §7 future-work direction,
// implemented as an extension: apply value-assisted cost calibration to
// *blocked* time instead of CPU time.
//
// The scenario is lock contention: a checkpointer holds a mutex while
// flushing pages; a wrong constraint makes it flush the entire buffer pool,
// so database workers block on the mutex for the whole flush. A CPU profiler
// sees only the flusher (the blocked time is off-CPU and SIGPROF never fires
// while a process sleeps); the off-CPU profile exposes the waiting, and the
// value samples — the mutex-hold-time variable jumping 14x — lead straight
// to the checkpointer's wrong constraint.
//
// Run with: go run ./examples/offcpu-lock
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	vprof "vprof"
)

const source = `
var checkpoint_all;
var dirty_pages;
var mutex_hold_ticks;

func buf_flush_batch(n) {
	work(n * 3);
	return n * 3;
}

func log_checkpointer(rounds) {
	for (var r = 0; r < rounds; r++) {
		var to_flush = 64;
		if (checkpoint_all > 0) {
			to_flush = dirty_pages;
		}
		mutex_hold_ticks = buf_flush_batch(to_flush);
		work(40);
	}
	return 0;
}

func log_write_up_to(w) {
	block(mutex_hold_ticks);
	work(25);
	return w;
}

func db_worker(n) {
	for (var i = 0; i < n; i++) {
		log_write_up_to(i);
		work(60);
	}
	return 0;
}

func main() {
	checkpoint_all = input(0);
	dirty_pages = input(1);
	log_checkpointer(input(2));
	db_worker(input(3));
}
`

func main() {
	prog, err := vprof.Compile("log0log.vp", source)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})

	normal := vprof.RunSpec{Inputs: []int64{0, 900, 6, 40}} // checkpoint_all off
	buggy := vprof.RunSpec{Inputs: []int64{1, 900, 6, 40}}  // checkpoint_all on

	// The on-CPU view: the flusher dominates, the waiting is invisible.
	cpuProfile := prog.Profile(buggy, sch)
	fmt.Println("== on-CPU profile of the buggy run ==")
	printFlat(prog, cpuProfile)

	// The off-CPU view: only blocked instants are sampled.
	buggyOff := buggy
	buggyOff.OffCPU = true
	offProfile := prog.Profile(buggyOff, sch)
	fmt.Println("\n== off-CPU (blocked time) profile of the buggy run ==")
	printFlat(prog, offProfile)

	// Value-assisted calibration over off-CPU profiles.
	normalOff := normal
	normalOff.OffCPU = true
	var normals, buggies []*vprof.Profile
	for run := 0; run < 3; run++ {
		n, b := normalOff, buggyOff
		n.AlarmPhase, b.AlarmPhase = int64(7*run+3), int64(7*run+5)
		normals = append(normals, prog.Profile(n, sch))
		buggies = append(buggies, prog.Profile(b, sch))
	}
	report, err := vprof.AnalyzeContext(context.Background(), vprof.AnalyzeRequest{
		Program: prog,
		Schema:  sch,
		Normal:  normals,
		Buggy:   buggies,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== value-assisted off-CPU ranking ==")
	fmt.Print(report.Render(4))

	fmt.Println("\nThe waiters top the blocked-time ranking, and the anomalous")
	fmt.Println("variable is mutex_hold_ticks — written by log_checkpointer, whose")
	fmt.Println("checkpoint_all condition is the wrong constraint:")
	for _, key := range []string{"#global\x00mutex_hold_ticks", "#global\x00checkpoint_all"} {
		if vr := report.Variables[key]; vr != nil && vr.Tested {
			fmt.Printf("  %-20s discount %.2f (dimension %s)\n", vr.Name, vr.Discount, vr.Dimension)
		}
	}
}

// printFlat prints a raw per-function cost view of a profile.
func printFlat(prog *vprof.Program, p *vprof.Profile) {
	cost := p.FuncPCCost(prog.Debug())
	type kv struct {
		name string
		c    int64
	}
	var flat []kv
	for n, c := range cost {
		flat = append(flat, kv{n, c})
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].c > flat[j].c })
	for i, f := range flat {
		if i >= 4 {
			break
		}
		fmt.Printf("  %2d. %-24s %d ticks\n", i+1, f.name, f.c)
	}
}
