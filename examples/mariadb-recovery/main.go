// MariaDB crash-recovery example: the paper's running example (Figure 1,
// MDEV-21826), diagnosed end to end with vProf and contrasted against a
// gprof-style raw cost view.
//
// recv_sys_init sets recv_n_pool_free_frames to a third of the buffer pool;
// recv_group_scan_log_recs multiplies it by the instance count, so with a
// pool size divisible by three available_mem collapses to zero, scanning
// never reports "finished", and recovery loops over the same LSNs forever,
// burning all its time in recv_apply_hashed_log_recs.
//
// Run with: go run ./examples/mariadb-recovery
package main

import (
	"fmt"
	"log"
	"sort"

	vprof "vprof"
	"vprof/internal/bugs"
)

func main() {
	w := bugs.ByID("b1") // MDEV-21826, including background server noise
	built, err := w.Build()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := vprof.Compile(w.SourceFile, built.BuggySource)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})

	normal := vprof.RunSpec{Inputs: w.NormalInputs, MaxTicks: 600000}
	buggy := vprof.RunSpec{Inputs: w.BuggyInputs, MaxTicks: 600000}

	// The gprof view: raw PC-sample cost of the buggy run.
	buggyProfile := prog.Profile(buggy, sch)
	raw := buggyProfile.FuncPCCost(prog.Debug())
	type kv struct {
		name string
		cost int64
	}
	var flat []kv
	for name, cost := range raw {
		if fn := prog.Debug().FuncNamed(name); fn != nil && !fn.Library {
			flat = append(flat, kv{name, cost})
		}
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].cost > flat[j].cost })
	fmt.Println("== raw cost profile of the buggy run (what gprof shows) ==")
	for i, f := range flat {
		if i >= 6 {
			break
		}
		fmt.Printf("  %2d. %-32s %d ticks\n", i+1, f.name, f.cost)
	}
	fmt.Printf("(the root cause, %s, is nowhere near the top)\n\n", w.RootFunc)

	// The vProf view: value-assisted calibrated ranking.
	report, err := vprof.Diagnose(prog, sch, normal, buggy, 5, vprof.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== vProf calibrated ranking ==")
	fmt.Print(report.Render(6))

	fr := report.Func(w.RootFunc)
	fmt.Printf("\nroot cause %s: rank %d, pattern %s\n", w.RootFunc, fr.Rank, fr.Pattern)
	if fr.TopVariable != nil {
		fmt.Printf("anomalous variable: %s (discount %.2f, dimension %s)\n",
			fr.TopVariable.Name, fr.TopVariable.Discount, fr.TopVariable.Dimension)
	}
	if len(fr.Blocks) > 0 {
		fmt.Printf("suspicious basic block: %s at line %d — the available_mem computation\n",
			fr.Blocks[0].Block, fr.Blocks[0].Line)
	}
}
