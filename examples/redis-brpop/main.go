// Redis BRPOP example (paper §6.1 case study, Redis-8668): every pushed key
// walks and rotates the entire blocked-clients list even when almost none of
// the clients can be served. The zmalloc family tops the raw profile; vProf
// discounts it with the hist-discounter and pins serveClientsBlockedOnKey
// through the numclients variable's processing-cost anomaly (the paper's
// Figure 6b).
//
// Run with: go run ./examples/redis-brpop
package main

import (
	"fmt"
	"log"

	vprof "vprof"
	"vprof/internal/bugs"
)

func main() {
	w := bugs.ByID("b12") // Redis-8668
	built, err := w.Build()
	if err != nil {
		log.Fatal(err)
	}
	prog, err := vprof.Compile(w.SourceFile, built.BuggySource)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})

	normal := vprof.RunSpec{Inputs: w.NormalInputs, MaxTicks: 600000}
	buggy := vprof.RunSpec{Inputs: w.BuggyInputs, MaxTicks: 600000}

	// Reproduce Figure 6b: the numclients value series in both runs.
	np := prog.Profile(normal, sch)
	bp := prog.Profile(buggy, sch)
	fmt.Println("== numclients value samples (Figure 6b) ==")
	fmt.Printf("  normal: %s\n", summarize(np, "numclients"))
	fmt.Printf("  buggy:  %s\n", summarize(bp, "numclients"))
	fmt.Println("  (normal churns as clients are served; buggy holds one large value")
	fmt.Println("   for hundreds of alarm intervals — the processing-cost anomaly)")

	report, err := vprof.Diagnose(prog, sch, normal, buggy, 5, vprof.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== vProf calibrated ranking ==")
	fmt.Print(report.Render(6))

	fr := report.Func(w.RootFunc)
	fmt.Printf("\nroot cause %s: rank %d, pattern %s (ground truth: %s)\n",
		w.RootFunc, fr.Rank, fr.Pattern, w.Pattern)
}

// summarize renders a variable's per-alarm series statistics.
func summarize(p *vprof.Profile, name string) string {
	samples := p.VarSamples("#global", name)
	if len(samples) == 0 {
		return "(no samples)"
	}
	var n, changes int
	var lastTick, lastVal int64 = -1, samples[0].Value
	lo, hi := samples[0].Value, samples[0].Value
	for _, s := range samples {
		if s.Tick == lastTick {
			continue
		}
		lastTick = s.Tick
		n++
		if s.Value != lastVal {
			changes++
			lastVal = s.Value
		}
		if s.Value < lo {
			lo = s.Value
		}
		if s.Value > hi {
			hi = s.Value
		}
	}
	return fmt.Sprintf("%d samples, range [%d, %d], %d value changes", n, lo, hi, changes)
}
