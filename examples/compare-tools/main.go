// Tool comparison example: diagnose one issue with vProf and all five
// baseline tools of the paper's Table 2, and show where each one ranks the
// root cause — a single-row slice of Table 3.
//
// Run with: go run ./examples/compare-tools [bug-id]
package main

import (
	"fmt"
	"log"
	"os"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/bugs"
	"vprof/internal/harness"
)

func main() {
	id := "b4" // MDEV-15333 by default
	if len(os.Args) > 1 {
		id = os.Args[1]
	}
	w := bugs.ByID(id)
	if w == nil {
		log.Fatalf("unknown bug id %q (b1..b15, u1..u3)", id)
	}
	b, err := w.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s, %s): %s\n", w.ID, w.Ticket, w.App, w.Description)
	fmt.Printf("ground truth: root cause %s, pattern %s\n\n", w.RootFunc, w.Pattern)

	report, err := b.Analyze(analysis.DefaultParams(), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s root cause ranked %-6s", "vProf:", harness.RankString(report.Rank(w.RootFunc)))
	if fr := report.Func(w.RootFunc); fr != nil {
		fmt.Printf(" (pattern %s, discount %.2f)", fr.Pattern, fr.Discount)
	}
	fmt.Println()

	target := b.Target()
	show := func(name string, res *baselines.Result) {
		rank := harness.RankString(res.Rank(w.RootFunc))
		if res.Failure != "" {
			rank = res.Failure
		}
		top := "-"
		if len(res.Funcs) > 0 {
			top = res.Funcs[0].Name
		}
		fmt.Printf("%-12s root cause ranked %-6s (top: %s)\n", name+":", rank, top)
	}
	show("gprof", baselines.Gprof(target))
	show("perf", baselines.Perf(target))
	show("perf-PT", baselines.PerfPT(target))
	show("COZ", baselines.Coz(target))
	show("stat-debug", baselines.StatDebug(target))

	if hist, err := harness.HistDiscOnly(b); err == nil {
		fmt.Printf("%-12s root cause ranked %-6s (vProf ablation: zero variables monitored)\n",
			"hist-disc:", harness.RankString(hist.Rank(w.RootFunc)))
	}
}
