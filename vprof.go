// Package vprof is a from-scratch Go reproduction of "Effective Performance
// Issue Diagnosis with Value-Assisted Cost Profiling" (EuroSys 2023): a
// gprof-style PC-sampling profiler that additionally records the values of
// performance-relevant program variables at every sampling alarm, plus the
// post-profiling analysis that compares a normal and a buggy execution to
// re-rank functions so the true root cause surfaces.
//
// Because native binaries cannot be instrumented from an offline pure-Go
// library, profiled applications are written in a small C-like language and
// executed on a deterministic tick-cost virtual machine (see DESIGN.md for
// the substitution map). The profiler itself — schema generation, variable
// metadata, PCToVarTable/VariableArray/SampleArray, virtual stack unwinding,
// Anderson-Darling + Hellinger discounting, bug-pattern classification — is
// implemented faithfully to the paper.
//
// Typical use:
//
//	prog, _ := vprof.Compile("app.vp", source)
//	sch := prog.GenerateSchema(vprof.SchemaOptions{})
//	normal, _ := prog.ProfileContext(ctx, vprof.RunSpec{Inputs: []int64{10}}, sch)
//	buggy, _ := prog.ProfileContext(ctx, vprof.RunSpec{Inputs: []int64{900}}, sch)
//	report, _ := vprof.AnalyzeContext(ctx, vprof.AnalyzeRequest{
//		Program: prog,
//		Schema:  sch,
//		Normal:  []*vprof.Profile{normal},
//		Buggy:   []*vprof.Profile{buggy},
//	}, vprof.WithWorkers(4))
//	fmt.Print(report.Render(10))
//
// The context cancels profiling runs (checked at each sampling alarm) and
// the analysis fan-out. AnalyzeRequest (plus the With* options) is the only
// analysis entry point; WithSketches(true) runs the same diagnosis over
// mergeable per-variable sketches (internal/sketch), the representation the
// service's incremental diagnose path stores and merges.
package vprof

import (
	"context"
	"fmt"
	"strings"

	"vprof/internal/absint"
	"vprof/internal/analysis"
	"vprof/internal/causal"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/diag"
	"vprof/internal/lang"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/sketch"
	"vprof/internal/vm"
)

// Re-exported result types: the analysis report is the library's primary
// output.
type (
	// Report is a calibrated function ranking with bug-pattern
	// annotations.
	Report = analysis.Report
	// FuncReport is one ranked function.
	FuncReport = analysis.FuncReport
	// VariableReport is the discounter's verdict on one variable.
	VariableReport = analysis.VariableReport
	// Params are the analysis tunables (DefaultDiscount etc.).
	Params = analysis.Params
	// Pattern is an inferred bug pattern.
	Pattern = analysis.Pattern
	// Schema lists the variables selected for monitoring.
	Schema = schema.Schema
	// CoverageReport is the schema/debuginfo coverage verification result:
	// per-variable location counts, PC spans, gaps, and dropped entries.
	CoverageReport = schema.CoverageReport
	// CheckReport is the shared diagnostic report of the static checkers:
	// `vprof lint` (IR hygiene, debug-location coverage) and `vprof check`
	// (abstract-interpretation perf smells) both produce it.
	CheckReport = diag.Report
	// LintReport is the lint checker's report.
	//
	// Deprecated: lint and check share one report shape now; use
	// CheckReport. The alias is kept so existing callers compile unchanged.
	LintReport = diag.Report
	// Profile is a recorded execution profile (PC histogram + value
	// samples + layout log).
	Profile = sampler.Profile
)

// Bug patterns (paper §5.2).
const (
	PatternNC                = analysis.PatternNC
	PatternWrongConstraint   = analysis.PatternWrongConstraint
	PatternMissingConstraint = analysis.PatternMissingConstraint
	PatternScalability       = analysis.PatternScalability
)

// DefaultParams returns the paper's default analysis parameters
// (DefaultDiscount 0.8, ValidDiscount 0.1, Anderson-Darling p 0.05).
func DefaultParams() Params { return analysis.DefaultParams() }

// Program is a compiled target program with debug information.
type Program struct {
	ast      *lang.File
	compiled *compiler.Program
}

// Compile parses and compiles a target-program source file.
func Compile(path, source string) (*Program, error) {
	f, err := lang.Parse(path, source)
	if err != nil {
		return nil, err
	}
	p, err := compiler.Compile(f)
	if err != nil {
		return nil, err
	}
	absint.Annotate(p)
	return &Program{ast: f, compiled: p}, nil
}

// Functions returns the names of the program's functions, in program order
// (excluding synthetic entry code).
func (p *Program) Functions() []string {
	var out []string
	for _, f := range p.compiled.Funcs {
		if !f.Synthetic {
			out = append(out, f.Name)
		}
	}
	return out
}

// TextSize returns the number of instructions in the compiled text section.
func (p *Program) TextSize() int { return len(p.compiled.Instrs) }

// SchemaOptions controls schema generation (paper §3.1).
type SchemaOptions struct {
	// Functions, when non-empty, restricts monitored locals to these
	// functions (the paper's per-component restriction). Globals are
	// always monitored.
	Functions []string
	// SkipGlobals drops global variables from the schema.
	SkipGlobals bool
	// MinScore drops entries whose performance-relevance score is below
	// the bound (0 disables the filter).
	MinScore float64
	// MaxEntries caps the schema at the N highest-scoring entries
	// (0 = unlimited).
	MaxEntries int
	// StaticPriors folds the abstract interpreter's value evidence into
	// the relevance scores: trip-bound and work-feeding variables double,
	// provably-constant ones halve. Off by default; the default schema is
	// byte-for-byte unchanged.
	StaticPriors bool
}

// GenerateSchema runs the static analysis that selects variables to monitor:
// all globals, loop induction variables (detected on the compiled IR via
// dominator/natural-loop analysis), conditional-expression variables, and
// call arguments. Entries carry performance-relevance scores; MinScore and
// MaxEntries prune on them.
func (p *Program) GenerateSchema(opts SchemaOptions) *Schema {
	var filter func(string) bool
	if len(opts.Functions) > 0 {
		set := map[string]bool{}
		for _, f := range opts.Functions {
			set[f] = true
		}
		filter = func(name string) bool { return set[name] }
	}
	return schema.GenerateIR(p.ast, p.compiled, schema.Options{
		FuncFilter:   filter,
		SkipGlobals:  opts.SkipGlobals,
		MinScore:     opts.MinScore,
		MaxEntries:   opts.MaxEntries,
		StaticPriors: opts.StaticPriors,
	})
}

// VerifySchema cross-checks a schema against the program's debug
// information, reporting per-variable PC coverage: location entries, gaps
// (caller-saved registers spilled across calls), and variables with no
// location at all — the entries Metadata/Translate silently drop.
func (p *Program) VerifySchema(sch *Schema) *CoverageReport {
	return schema.Verify(sch, p.compiled.Debug)
}

// Lint runs the IR-level static checks over the program and its default
// schema: unreachable code, exit-less loops, constant and dead monitored
// variables, and debug-location coverage problems.
func (p *Program) Lint() *LintReport {
	return schema.Lint(p.ast, p.compiled)
}

// Check runs the abstract-interpretation perf-smell checker over the
// program: quadratic (or deeper) loop nests over correlated bounds,
// loops with no inferable trip bound, unbounded accumulation into work(),
// loop-invariant calls worth hoisting, value-level dead branches, and dead
// stores. Exit-code convention matches Lint: Report.ExitCode() is 1 when
// any warning-severity finding fired.
func (p *Program) Check() *CheckReport {
	return absint.CheckProgram(p.compiled)
}

// CostBounds returns the statically inferred worst-case cost bound of every
// function, rendered as a polynomial over symbolic loop bounds ("unbounded"
// marks costs the analyzer could not bound), keyed by function name.
func (p *Program) CostBounds() map[string]string {
	return absint.AnalyzeProgram(p.compiled).FunctionCosts()
}

// StaticCosts exposes the per-basic-block static cost annotations computed
// at Compile time (absint.Annotate): instruction-count floors plus work()
// contributions, with the symbolic bound rendered per block.
func (p *Program) StaticCosts() []compiler.StaticCost {
	return p.compiled.StaticCosts
}

// RunSpec parameterizes one execution of the target program.
type RunSpec struct {
	// Inputs are the workload parameters read by the program's input(k)
	// builtin.
	Inputs []int64
	// Seed drives the program's rand(n) builtin (default 1).
	Seed uint64
	// MaxTicks bounds the execution (hung programs are cut off; the
	// profile remains valid). 0 uses a large default.
	MaxTicks int64
	// AlarmPhase offsets the first sampling alarm, so repeated profiling
	// runs observe different instants.
	AlarmPhase int64
	// Interval is the sampling period in ticks (default 97).
	Interval int64
	// OffCPU profiles blocked (off-CPU) time instead of CPU time: alarms
	// fire on the wall clock and only instants spent inside the target's
	// block(n) builtin are recorded. This is the paper's §7 future-work
	// direction; the same value-assisted calibration applies.
	OffCPU bool
	// MaxWallTicks bounds wall-clock time for block()-heavy programs.
	MaxWallTicks int64
}

func (s RunSpec) vmConfig() vm.Config {
	return vm.Config{
		Inputs:       s.Inputs,
		Seed:         s.Seed,
		MaxTicks:     s.MaxTicks,
		MaxWallTicks: s.MaxWallTicks,
		AlarmPhase:   s.AlarmPhase,
	}
}

func (s RunSpec) interval() int64 {
	if s.Interval > 0 {
		return s.Interval
	}
	return sampler.DefaultInterval
}

// Run executes the program (and any spawned child processes) without
// profiling and returns the out() builtin's log and total simulated ticks.
func (p *Program) Run(spec RunSpec) (outputs []int64, ticks int64, err error) {
	procs := vm.RunProcesses(p.compiled, func(int) vm.Config { return spec.vmConfig() })
	for _, proc := range procs {
		outputs = append(outputs, proc.VM.Outputs...)
		ticks += proc.VM.Ticks()
		if proc.Err != nil && err == nil {
			err = proc.Err
		}
	}
	vm.RecycleProcesses(procs)
	return outputs, ticks, err
}

// Profile executes the program under the value-assisted profiler, monitoring
// the schema's variables, and returns the merged multi-process profile.
func (p *Program) Profile(spec RunSpec, sch *Schema) *Profile {
	prof, _ := p.ProfileContext(context.Background(), spec, sch)
	return prof
}

// ProfileContext is Profile with cooperative cancellation: the context is
// checked at every sampling alarm and the run is cut off once it is
// canceled, returning the partial profile alongside ctx.Err(). With a
// never-canceled context the profile is byte-for-byte the one Profile
// produces.
func (p *Program) ProfileContext(ctx context.Context, spec RunSpec, sch *Schema) (*Profile, error) {
	meta := schema.Translate(sch, p.compiled.Debug)
	res, err := sampler.ProfileRunContext(ctx, p.compiled, meta, spec.vmConfig(),
		sampler.Options{Interval: spec.interval(), OffCPU: spec.OffCPU})
	prof := sampler.MergeProfiles(res.Profiles)
	res.Recycle()
	return prof, err
}

// Disassemble renders the compiled text section with function and
// basic-block boundaries, source lines, and per-PC instructions.
func (p *Program) Disassemble() string {
	var b strings.Builder
	d := p.compiled.Debug
	for i := range d.Funcs {
		fn := &d.Funcs[i]
		kind := ""
		if fn.Library {
			kind = " [library]"
		}
		fmt.Fprintf(&b, "func %s [%d, %d)%s\n", fn.Name, fn.Entry, fn.End, kind)
		for bi := range fn.Blocks {
			blk := &fn.Blocks[bi]
			fmt.Fprintf(&b, "  %s (line %d):\n", blk.Label, blk.Line)
			for pc := blk.Start; pc < blk.End; pc++ {
				fmt.Fprintf(&b, "    %5d  %-20s ; line %d\n", pc, p.compiled.Instrs[pc].String(), d.LineAt(pc))
			}
		}
	}
	return b.String()
}

// Metadata returns the variable metadata (the paper's binary-static-analysis
// output) for a schema against this program's debug information.
func (p *Program) Metadata(sch *Schema) []debuginfo.VarLoc {
	return schema.Translate(sch, p.compiled.Debug)
}

// Debug exposes the program's DWARF-like debug information (function and
// basic-block ranges, line table, variable locations).
func (p *Program) Debug() *debuginfo.Info { return p.compiled.Debug }

// AnalyzeRequest bundles the inputs to the post-profiling analysis (the old
// 5-positional-argument Analyze call is gone). Profiles must have been
// produced with the same schema. The first profile of each side feeds the
// variable-discounter; all profiles feed the hist-discounter.
type AnalyzeRequest struct {
	// Program is the profiled program (source of debug information).
	Program *Program
	// Schema lists the monitored variables (tags drive classification).
	Schema *Schema
	// Normal and Buggy are the two executions' profiles.
	Normal []*Profile
	Buggy  []*Profile
	// Params are the analysis tunables; nil means DefaultParams. The
	// WithParams / WithWorkers options modify this field.
	Params *Params
	// Sketches folds the profiles into mergeable per-variable sketches and
	// runs the sketch-mode analysis: identical ranking and verdicts where
	// sketch buckets are exact, but no per-block localization (sketches
	// keep no ordered PC trail). Set via WithSketches.
	Sketches bool
}

// AnalyzeOption tweaks an AnalyzeRequest; pass options to AnalyzeContext.
type AnalyzeOption func(*AnalyzeRequest)

// WithParams replaces the request's analysis parameters.
func WithParams(p Params) AnalyzeOption {
	return func(r *AnalyzeRequest) { r.Params = &p }
}

// WithWorkers bounds the analysis worker pool (see Params.Workers): 0
// resolves a default via VPROF_WORKERS then GOMAXPROCS, 1 forces the
// sequential path. The report is identical for every value.
func WithWorkers(n int) AnalyzeOption {
	return func(r *AnalyzeRequest) {
		p := DefaultParams()
		if r.Params != nil {
			p = *r.Params
		}
		p.Workers = n
		r.Params = &p
	}
}

// WithSketches toggles the sketch-mode analysis (see
// AnalyzeRequest.Sketches).
func WithSketches(on bool) AnalyzeOption {
	return func(r *AnalyzeRequest) { r.Sketches = on }
}

// AnalyzeContext runs the post-profiling analysis. The context cancels the
// analysis fan-out cooperatively (workers drain, ctx.Err() is returned);
// with a never-canceled context the report is byte-for-byte the sequential
// result.
func AnalyzeContext(ctx context.Context, req AnalyzeRequest, opts ...AnalyzeOption) (*Report, error) {
	for _, opt := range opts {
		opt(&req)
	}
	params := DefaultParams()
	if req.Params != nil {
		params = *req.Params
	}
	dbg := req.Program.compiled.Debug
	if req.Sketches {
		fold := func(ps []*Profile) []*sketch.Profile {
			out := make([]*sketch.Profile, 0, len(ps))
			for _, p := range ps {
				out = append(out, sketch.FromProfile(p))
			}
			return out
		}
		normal := fold(req.Normal)
		if len(normal) == 0 || len(req.Buggy) == 0 {
			return nil, analysis.ErrNoProfiles
		}
		return analysis.AnalyzeSketchesContext(ctx, analysis.SketchInput{
			Debug:  dbg,
			Schema: req.Schema,
			Normal: normal[0],
			Corpus: analysis.CorpusOfSketches(normal, dbg),
			Buggy:  fold(req.Buggy),
		}, params)
	}
	return analysis.AnalyzeContext(ctx, analysis.Input{
		Debug:  dbg,
		Schema: req.Schema,
		Normal: req.Normal,
		Buggy:  req.Buggy,
	}, params)
}

// Diagnose is the one-call workflow of the paper's Figure 2: profile the
// program `runs` times under each spec (normal and buggy), analyze, and
// return the calibrated report. Profiling runs and the analysis fan out over
// params.Workers goroutines (see Params.Workers); the report is identical
// for every worker count.
func Diagnose(prog *Program, sch *Schema, normalSpec, buggySpec RunSpec, runs int, params Params) (*Report, error) {
	return DiagnoseContext(context.Background(), prog, sch, normalSpec, buggySpec, runs, params)
}

// DiagnoseContext is Diagnose with cooperative cancellation: profiling runs
// stop at the next sampling alarm after cancellation, the analysis fan-out
// drains, and ctx.Err() is returned. With a never-canceled context the
// report is byte-for-byte identical to Diagnose.
func DiagnoseContext(ctx context.Context, prog *Program, sch *Schema, normalSpec, buggySpec RunSpec, runs int, params Params) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if runs <= 0 {
		runs = 5
	}
	type pair struct{ normal, buggy *Profile }
	pairs, err := parallel.MapErrCtx(ctx, parallel.Workers(params.Workers), runs, func(i int) (pair, error) {
		n := normalSpec
		b := buggySpec
		n.AlarmPhase += int64(7 * i)
		b.AlarmPhase += int64(7 * i)
		n.Seed += uint64(i * 1000003)
		b.Seed += uint64(i * 1000003)
		np, err := prog.ProfileContext(ctx, n, sch)
		if err != nil {
			return pair{}, err
		}
		bp, err := prog.ProfileContext(ctx, b, sch)
		if err != nil {
			return pair{}, err
		}
		return pair{np, bp}, nil
	})
	if err != nil {
		return nil, err
	}
	var normal, buggy []*Profile
	for _, pr := range pairs {
		normal = append(normal, pr.normal)
		buggy = append(buggy, pr.buggy)
	}
	return AnalyzeContext(ctx, AnalyzeRequest{
		Program: prog,
		Schema:  sch,
		Normal:  normal,
		Buggy:   buggy,
		Params:  &params,
	})
}

// Causal-profiling re-exports: Coz-style virtual-speedup experiments on the
// deterministic tick VM (internal/causal).
type (
	// CausalOptions configures a sweep (speedup factors, granularity,
	// candidate selection, worker count).
	CausalOptions = causal.Options
	// CausalReport holds per-candidate speedup curves and the impact
	// ranking.
	CausalReport = causal.Report
	// CausalCurve is one candidate's speedup curve.
	CausalCurve = causal.Curve
)

// Causal runs Coz-style virtual-speedup experiments: for each candidate
// function (or basic block) the program is re-executed with that
// candidate's tick costs scaled down by each speedup factor, and the change
// in end-to-end runtime is measured. The result ranks candidates by how
// much optimizing them would actually help — "optimize f by p% → q%
// end-to-end speedup". Deterministic: byte-for-byte identical for every
// worker count.
func (p *Program) Causal(spec RunSpec, opts CausalOptions) (*CausalReport, error) {
	return p.CausalContext(context.Background(), spec, opts)
}

// CausalContext is Causal with cooperative cancellation: in-flight
// experiments stop at the VM's next tick-free poll alarm and ctx.Err() is
// returned.
func (p *Program) CausalContext(ctx context.Context, spec RunSpec, opts CausalOptions) (*CausalReport, error) {
	return causal.Run(ctx, p.compiled, spec.vmConfig(), opts)
}

// FormatCausal renders a causal report's impact ranking (top rows).
func FormatCausal(r *CausalReport, top int) string { return causal.Render(r, top) }

// FormatCausalCurve renders one candidate's full speedup curve.
func FormatCausalCurve(c *CausalCurve) string { return causal.RenderCurve(c) }

// FormatSchema renders a schema in the paper's textual format.
func FormatSchema(sch *Schema) string { return schema.Format(sch) }

// FormatSchemaScored renders a schema with the relevance score appended as
// a 7th field on every line.
func FormatSchemaScored(sch *Schema) string { return schema.FormatScored(sch) }

// Version identifies the library release.
const Version = "1.0.0"
