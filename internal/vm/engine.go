package vm

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"vprof/internal/compiler"
)

// Execution engine names accepted by Config.Engine, SetDefaultEngine and
// the VPROF_ENGINE environment variable.
const (
	// EngineTree is the original tree-walking (switch-dispatch,
	// operand-stack) interpreter. It remains the semantic reference.
	EngineTree = "tree"
	// EngineRegister is the register-based engine: the stack IR is
	// lowered to register superinstructions (compiler.CompileRegister)
	// executed over flat arena frames with batched tick accounting. It
	// is observationally identical to the tree walker — same ticks,
	// alarms, samples, traps — and is gated by the differential suite
	// in diff_test.go.
	EngineRegister = "register"
)

// defaultEngine is the process-wide engine used when Config.Engine is
// empty; initialized from VPROF_ENGINE, falling back to the tree walker.
var defaultEngine atomic.Value

func init() {
	eng := EngineTree
	if e := os.Getenv("VPROF_ENGINE"); e != "" {
		if n, err := normalizeEngine(e); err == nil {
			eng = n
		}
	}
	defaultEngine.Store(eng)
}

func normalizeEngine(name string) (string, error) {
	switch name {
	case "", EngineTree:
		return EngineTree, nil
	case EngineRegister:
		return EngineRegister, nil
	}
	return "", fmt.Errorf("vm: unknown engine %q (want %q or %q)", name, EngineTree, EngineRegister)
}

// DefaultEngine returns the process-wide default execution engine.
func DefaultEngine() string { return defaultEngine.Load().(string) }

// SetDefaultEngine sets the process-wide default execution engine,
// returning the previous value. It is safe for concurrent use; runs
// already in flight keep the engine they resolved at start.
func SetDefaultEngine(name string) (prev string, err error) {
	n, err := normalizeEngine(name)
	if err != nil {
		return DefaultEngine(), err
	}
	return defaultEngine.Swap(n).(string), nil
}

// resolveEngine picks the engine for this run: Config.Engine when set,
// else the process default.
func (vm *VM) resolveEngine() (string, error) {
	if vm.cfg.Engine != "" {
		return normalizeEngine(vm.cfg.Engine)
	}
	return DefaultEngine(), nil
}

// regCache memoizes register lowerings per *compiler.Program so repeated
// runs (profiling sweeps, causal experiments) pay compilation once.
var regCache sync.Map // *compiler.Program -> regCacheEntry

type regCacheEntry struct {
	rp  *compiler.RegProgram
	err error
}

func regProgramFor(p *compiler.Program) (*compiler.RegProgram, error) {
	if v, ok := regCache.Load(p); ok {
		e := v.(regCacheEntry)
		return e.rp, e.err
	}
	rp, err := compiler.CompileRegister(p)
	v, _ := regCache.LoadOrStore(p, regCacheEntry{rp: rp, err: err})
	e := v.(regCacheEntry)
	return e.rp, e.err
}
