package vm

import "vprof/internal/compiler"

// Process is the result of running one simulated process.
type Process struct {
	Pid int
	// ParentPid is 0 for the root process.
	ParentPid int
	// Entry is the function index the process started in (main/__init for
	// the root).
	Entry int
	VM    *VM
	// Err is nil, ErrTicksExceeded, or a *RuntimeError.
	Err error
}

// RunProcesses executes prog as a process tree: the root process runs from
// the program entry, and every spawn() request becomes a child process run
// after its parent completes (children may spawn further children). mkConfig
// is called once per process with its pid (root pid is 1), letting the
// caller attach a per-process profiler; processes are returned in pid order.
//
// Real systems run children concurrently; running them sequentially
// preserves everything a CPU-time profiler observes (per-process PC/value
// samples) while keeping the simulation deterministic.
func RunProcesses(prog *compiler.Program, mkConfig func(pid int) Config) []Process {
	type pending struct {
		parent int
		req    ChildRequest
	}
	var procs []Process
	var queue []pending

	pid := 1
	rootVM := New(prog, mkConfig(pid))
	rootErr := rootVM.Run()
	procs = append(procs, Process{Pid: pid, Entry: prog.MainIndex, VM: rootVM, Err: rootErr})
	for _, req := range rootVM.Children {
		queue = append(queue, pending{parent: pid, req: req})
	}

	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		pid++
		child := New(prog, mkConfig(pid))
		err := child.RunFunc(p.req.FuncIndex, p.req.Args, p.req.Globals)
		procs = append(procs, Process{
			Pid:       pid,
			ParentPid: p.parent,
			Entry:     p.req.FuncIndex,
			VM:        child,
			Err:       err,
		})
		for _, req := range child.Children {
			queue = append(queue, pending{parent: pid, req: req})
		}
	}
	return procs
}

// RecycleProcesses returns every process VM's arenas to the pool (see
// VM.Recycle). Call it once the caller has extracted what it needs from
// the process tree and will no longer inspect any VM's stack.
func RecycleProcesses(procs []Process) {
	for _, p := range procs {
		p.VM.Recycle()
	}
}
