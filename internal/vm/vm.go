// Package vm executes compiled programs (package compiler) under a
// deterministic tick-based cost model, standing in for the native CPU
// execution that the vProf paper profiles.
//
// Every instruction consumes one tick; the work(n) builtin consumes n more.
// A configurable alarm fires every AlarmInterval ticks, invoking a callback
// with the VM paused at its current PC — the analogue of glibc's profil()
// SIGPROF delivery that both gprof and vProf build on. The callback may
// inspect the full call stack and read frame slots ("registers") and globals
// ("memory"), which is exactly what the sampler package does.
//
// Determinism: given the same program, inputs, seed and alarm phase, a run
// is bit-for-bit reproducible.
package vm

import (
	"errors"
	"fmt"
	"sync"

	"vprof/internal/compiler"
	"vprof/internal/lang"
)

// Value is a runtime value: a 64-bit integer, optionally tagged as a pointer
// (the result of alloc()).
type Value struct {
	I   int64
	Ptr bool
}

// ErrTicksExceeded is returned by Run when the configured tick budget is
// exhausted. The analogue of stopping a hung reproduction run with a signal:
// profiling data gathered so far remains valid.
var ErrTicksExceeded = errors.New("vm: tick budget exceeded")

// ErrInterrupted is the default error reported by a VM stopped via
// Interrupt (e.g. when a profiling run's context is canceled).
var ErrInterrupted = errors.New("vm: interrupted")

// RuntimeError is a trap raised by program execution (e.g. division by zero).
type RuntimeError struct {
	PC   int
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error at pc=%d line=%d: %s", e.PC, e.Line, e.Msg)
}

// DefaultMaxTicks bounds a run when Config.MaxTicks is zero.
const DefaultMaxTicks = 200_000_000

// Config controls one VM execution.
type Config struct {
	// Inputs are the workload parameters returned by input(k).
	Inputs []int64
	// Seed seeds the deterministic PRNG behind rand(n). A zero seed is
	// replaced by 1.
	Seed uint64
	// MaxTicks bounds execution; DefaultMaxTicks when zero.
	MaxTicks int64
	// AlarmInterval fires OnAlarm every this many ticks; 0 disables.
	AlarmInterval int64
	// AlarmPhase delays the first alarm by this many ticks, modeling the
	// arbitrary phase of a periodic timer relative to program start.
	AlarmPhase int64
	// OnAlarm is invoked at each alarm with the VM paused.
	OnAlarm func(*VM)
	// CostScale, when non-nil, rescales the tick cost charged at each PC.
	// COZ-style causal profiling uses it to apply a virtual speedup to
	// one basic block.
	CostScale func(pc int, cost int64) int64
	// ScaleStack, when non-nil, applies an *inclusive* virtual speedup:
	// every tick charged (CPU or blocked) while a marked function has a
	// frame anywhere on the call stack is rescaled by Factor. Where
	// CostScale models "this code runs faster", ScaleStack models
	// "optimizing this function — including the work it delegates —
	// shrinks its whole dynamic extent", which is the experiment
	// internal/causal runs per candidate function.
	//
	// Unlike CostScale's truncating arithmetic, ScaleStack and ScaleSpan
	// use fractional-carry accounting: the scaled charge's fractional
	// part carries into the next charge, so long-run tick accrual
	// matches Factor exactly even for unit-cost instructions. (Naive
	// truncation zeroes every unit charge at any Factor < 1 — turning a
	// 10% virtual speedup into total removal and letting a scaled
	// infinite loop run forever without ever reaching its tick budget.)
	ScaleStack *StackScale
	// ScaleSpan, when non-nil, applies an *exclusive* virtual speedup to
	// one PC range with the same fractional-carry accounting: CPU ticks
	// charged at a PC in [Start, End) are rescaled by Factor; blocked
	// time is untouched. This is internal/causal's block-granularity
	// experiment.
	ScaleSpan *SpanScale
	// OnBranch, when non-nil, observes every conditional branch outcome
	// (statistical debugging's branch predicates).
	OnBranch func(pc int, taken bool)
	// OnReturn, when non-nil, observes every function return value
	// (statistical debugging's return predicates).
	OnReturn func(funcIndex int, value Value)
	// WallAlarmInterval fires OnWallAlarm every this many *wall* ticks
	// (CPU ticks plus off-CPU blocked time from the block(n) builtin);
	// 0 disables. This is the off-CPU profiling hook: unlike the
	// CPU-time alarm, it keeps firing while the program is blocked.
	WallAlarmInterval int64
	// OnWallAlarm is invoked at each wall alarm; blocked reports whether
	// the program was off-CPU (inside block(n)) at that instant.
	OnWallAlarm func(vm *VM, blocked bool)
	// MaxWallTicks bounds wall-clock time (0 = no bound beyond MaxTicks).
	MaxWallTicks int64
	// CountCalls enables per-edge call counting (gprof's mcount).
	CountCalls bool
	// Engine selects the execution engine for this run: EngineTree,
	// EngineRegister, or "" for the process default (SetDefaultEngine /
	// VPROF_ENGINE). Both engines are observationally identical — same
	// ticks, alarms, samples, traps — differing only in speed.
	Engine string
}

// StackScale configures the inclusive virtual-speedup hook (Config.ScaleStack).
type StackScale struct {
	// Marked flags function indexes (parallel to the program's function
	// table) whose dynamic extent is virtually sped up.
	Marked []bool
	// Factor is the remaining fraction of each charged tick while marked
	// code is on the stack: 0.25 means a 75% virtual speedup.
	Factor float64
}

// SpanScale configures the exclusive virtual-speedup hook (Config.ScaleSpan).
type SpanScale struct {
	// [Start, End) is the half-open PC range sped up.
	Start, End int
	// Factor is the remaining fraction of each CPU tick charged inside
	// the range: 0.25 means a 75% virtual speedup.
	Factor float64
}

// ChildRequest records a spawn() call: a process to run after the parent,
// with a snapshot of the parent's globals (fork semantics).
type ChildRequest struct {
	FuncIndex int
	Args      []Value
	Globals   []Value
}

type frame struct {
	funcIndex int
	retPC     int // PC of the OpCall instruction in the caller
	slots     []Value
	stack     []Value
	// Register-engine bookkeeping (unused by the tree walker): the
	// frame's base offset in the register arena, the caller's resume
	// register-code index, and the caller register receiving the result.
	base int32
	rret int32
	rres int32
}

// vmArena bundles the two growable per-run allocations — the register
// engine's flat register arena and the call-stack frame array — so drivers
// that execute many runs back to back (causal experiments, profiling
// fan-outs, sub-millisecond workloads like b14 where per-run setup
// dominates) can reuse them via Recycle instead of re-allocating each run.
// Value holds no GC pointers and Recycle clears the frames' slice views,
// so a pooled arena retains nothing beyond raw integers, which New clears
// before reuse.
type vmArena struct {
	regs   []Value
	frames []frame
}

var arenaPool = sync.Pool{New: func() any { return new(vmArena) }}

// VM is a single simulated process executing one program.
type VM struct {
	prog    *compiler.Program
	cfg     Config
	globals []Value
	frames  []frame
	pc      int
	ticks   int64 // CPU ticks
	blocked int64 // off-CPU ticks accumulated by block(n)
	next    int64 // next CPU alarm tick (valid when interval > 0)
	nextW   int64 // next wall alarm tick (valid when wall interval > 0)
	rng     uint64
	nextPtr int64
	halted  bool
	result  Value
	stopErr error // set by Interrupt; checked once per instruction
	// markedDepth counts frames of ScaleStack-marked functions currently
	// on the stack; charges are rescaled while it is positive.
	markedDepth int
	// carryStack/carrySpan accumulate the fractional remainders of
	// ScaleStack/ScaleSpan rescaling (always in [0,1)).
	carryStack float64
	carrySpan  float64
	// regs is the register engine's frame arena (all live frames' named
	// slots and scratch registers, contiguously).
	regs []Value
	// arena is the pooled backing storage behind regs/frames, surrendered
	// by Recycle.
	arena *vmArena

	// Children collects spawn() requests in order.
	Children []ChildRequest
	// Outputs collects out(v) values, for tests and examples.
	Outputs []int64
	// BranchTaken counts taken conditional branches per function index
	// (the signal perf-PT style control-flow profiling consumes).
	BranchTaken []int64
	// CallEdges counts calls per (caller, callee) function-index pair —
	// the data gprof's mcount instrumentation collects for its call
	// graph. Populated only when Config.CountCalls is set.
	CallEdges map[[2]int32]int64
	// InstrCount is the number of instructions executed.
	InstrCount int64
}

// New creates a VM for prog with the given configuration, ready to Run from
// the program entry point.
func New(prog *compiler.Program, cfg Config) *VM {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = DefaultMaxTicks
	}
	// Reuse a pooled arena when one is available. No clearing is needed
	// for execution to match a fresh allocation bit for bit: both engines
	// assign every frame field on push; named slots are zeroed on every
	// frame entry (runRegister's root loop, RCall's callee loop) and are
	// all FrameView.Slot exposes; scratch registers are operand-stack
	// canonical registers, written before read by stack discipline. The
	// differential fuzzer recycles between engine runs to keep this
	// stale-arena equivalence continuously checked.
	a := arenaPool.Get().(*vmArena)
	vm := &VM{
		prog:        prog,
		cfg:         cfg,
		globals:     make([]Value, prog.NumGlobals()),
		rng:         cfg.Seed,
		regs:        a.regs,
		frames:      a.frames,
		arena:       a,
		BranchTaken: make([]int64, len(prog.Funcs)),
	}
	vm.next = cfg.AlarmPhase
	if vm.next <= 0 {
		vm.next = cfg.AlarmInterval
	}
	vm.nextW = cfg.AlarmPhase
	if vm.nextW <= 0 {
		vm.nextW = cfg.WallAlarmInterval
	}
	return vm
}

// Prog returns the program being executed.
func (vm *VM) Prog() *compiler.Program { return vm.prog }

// Interrupt stops the run at the next instruction boundary; the loop returns
// err (ErrInterrupted when nil). It is intended to be called from alarm
// callbacks — the VM is single-threaded, so the flag needs no atomics.
func (vm *VM) Interrupt(err error) {
	if err == nil {
		err = ErrInterrupted
	}
	vm.stopErr = err
}

// Ticks returns the simulated CPU time consumed so far.
func (vm *VM) Ticks() int64 { return vm.ticks }

// BlockedTicks returns the off-CPU time accumulated by block(n).
func (vm *VM) BlockedTicks() int64 { return vm.blocked }

// WallTicks returns elapsed wall-clock time: CPU plus blocked time.
func (vm *VM) WallTicks() int64 { return vm.ticks + vm.blocked }

// PC returns the current program counter.
func (vm *VM) PC() int { return vm.pc }

// Depth returns the current call-stack depth.
func (vm *VM) Depth() int { return len(vm.frames) }

// Result returns the value of the final return (used by RunFunc callers).
func (vm *VM) Result() Value { return vm.result }

// Recycle returns the VM's register and frame arenas to a process-wide
// pool for reuse by a future New. Call it once the VM is done executing
// and its stack will no longer be inspected; scalar post-run state
// (Ticks, Result, Outputs, BranchTaken, Children) remains readable.
// Recycling is optional — an un-recycled VM is simply garbage collected —
// and a second Recycle is a no-op.
func (vm *VM) Recycle() {
	a := vm.arena
	if a == nil {
		return
	}
	vm.arena = nil
	// Drop the frames' slice views (tree-walker slots/stacks are separate
	// heap slices) so the pooled arena pins no dead memory.
	frames := vm.frames[:cap(vm.frames)]
	for i := range frames {
		frames[i].slots, frames[i].stack = nil, nil
	}
	a.regs, a.frames = vm.regs, frames[:0]
	vm.regs, vm.frames = nil, nil
	arenaPool.Put(a)
}

// Global reads global variable i.
func (vm *VM) Global(i int) Value { return vm.globals[i] }

// Globals returns a copy of the current global memory.
func (vm *VM) Globals() []Value {
	out := make([]Value, len(vm.globals))
	copy(out, vm.globals)
	return out
}

// FrameView is a read-only view of one stack frame, as seen by the profiler
// when virtually unwinding the stack.
type FrameView struct {
	// FuncIndex identifies the frame's function.
	FuncIndex int
	// RetPC is the PC of the call instruction in the *caller* (the
	// "caller PC" at which unwinding resumes). It is -1 for the root
	// frame.
	RetPC int
	vm    *VM
	idx   int
}

// Slot reads the frame's i-th slot ("register"). Out-of-range reads return
// the zero Value, mirroring a profiler reading a garbage register.
func (f FrameView) Slot(i int) Value {
	s := f.vm.frames[f.idx].slots
	if i < 0 || i >= len(s) {
		return Value{}
	}
	return s[i]
}

// Frame returns a view of the frame depth levels below the top (0 = current
// frame). ok is false when depth exceeds the stack.
func (vm *VM) Frame(depth int) (FrameView, bool) {
	idx := len(vm.frames) - 1 - depth
	if idx < 0 {
		return FrameView{}, false
	}
	fr := vm.frames[idx]
	return FrameView{FuncIndex: fr.funcIndex, RetPC: fr.retPC, vm: vm, idx: idx}, true
}

// Run executes the program from its entry point (__init, which runs global
// initializers and calls main). It returns nil on normal halt,
// ErrTicksExceeded if the budget ran out, or a *RuntimeError on a trap.
func (vm *VM) Run() error {
	eng, err := vm.resolveEngine()
	if err != nil {
		return err
	}
	initIdx := len(vm.prog.Funcs) - 1 // __init is emitted last
	if eng == EngineRegister {
		return vm.runRegister(initIdx, nil)
	}
	vm.frames = append(vm.frames[:0], frame{funcIndex: initIdx, retPC: -1})
	vm.markedDepth = 0
	vm.carryStack, vm.carrySpan = 0, 0
	if vm.marked(initIdx) {
		vm.markedDepth = 1
	}
	vm.pc = vm.prog.EntryPC
	vm.halted = false
	return vm.loop()
}

// RunFunc executes a single function as a fresh process (used for spawn
// children): globals are initialized from the given snapshot, the function
// is invoked with args, and execution ends when it returns.
func (vm *VM) RunFunc(funcIndex int, args []Value, globals []Value) error {
	fn := vm.prog.Funcs[funcIndex]
	if len(args) != fn.NumParams {
		return fmt.Errorf("vm: RunFunc %s: %d args, want %d", fn.Name, len(args), fn.NumParams)
	}
	eng, err := vm.resolveEngine()
	if err != nil {
		return err
	}
	copy(vm.globals, globals)
	if eng == EngineRegister {
		return vm.runRegister(funcIndex, args)
	}
	fr := frame{funcIndex: funcIndex, retPC: -1, slots: make([]Value, fn.NumSlots)}
	copy(fr.slots, args)
	vm.frames = append(vm.frames[:0], fr)
	vm.markedDepth = 0
	vm.carryStack, vm.carrySpan = 0, 0
	if vm.marked(funcIndex) {
		vm.markedDepth = 1
	}
	vm.pc = fn.Entry
	vm.halted = false
	return vm.loop()
}

// rescale scales a non-negative charge by factor with fractional-carry
// accounting: the remainder below one tick carries into the next charge via
// *carry (kept in [0,1)), so scaled tick accrual tracks factor exactly
// instead of truncating every sub-tick charge to zero.
func rescale(n int64, factor float64, carry *float64) int64 {
	want := float64(n)*factor + *carry
	out := int64(want)
	if out < 0 {
		out = 0
	}
	*carry = want - float64(out)
	return out
}

// marked reports whether function index idx is in the ScaleStack mark set.
func (vm *VM) marked(idx int) bool {
	ss := vm.cfg.ScaleStack
	return ss != nil && idx >= 0 && idx < len(ss.Marked) && ss.Marked[idx]
}

// charge consumes n ticks, firing alarms at every interval crossing with the
// VM paused at its current PC. A configured CostScale (virtual speedup)
// rescales the charge first.
func (vm *VM) charge(n int64) {
	if vm.cfg.CostScale != nil {
		n = vm.cfg.CostScale(vm.pc, n)
		if n < 0 {
			n = 0
		}
	}
	if ss := vm.cfg.ScaleSpan; ss != nil && vm.pc >= ss.Start && vm.pc < ss.End {
		n = rescale(n, ss.Factor, &vm.carrySpan)
	}
	if vm.markedDepth > 0 {
		n = rescale(n, vm.cfg.ScaleStack.Factor, &vm.carryStack)
	}
	cpuAlarms := vm.cfg.AlarmInterval > 0 && vm.cfg.OnAlarm != nil
	wallAlarms := vm.cfg.WallAlarmInterval > 0 && vm.cfg.OnWallAlarm != nil
	if !cpuAlarms && !wallAlarms {
		vm.ticks += n
		return
	}
	for n > 0 {
		step := n
		if cpuAlarms {
			if d := vm.next - vm.ticks; d < step {
				step = d
			}
		}
		if wallAlarms {
			if d := vm.nextW - vm.WallTicks(); d < step {
				step = d
			}
		}
		vm.ticks += step
		n -= step
		if cpuAlarms && vm.ticks == vm.next {
			vm.cfg.OnAlarm(vm)
			vm.next += vm.cfg.AlarmInterval
		}
		if wallAlarms && vm.WallTicks() == vm.nextW {
			vm.cfg.OnWallAlarm(vm, false)
			vm.nextW += vm.cfg.WallAlarmInterval
		}
	}
}

// chargeBlocked consumes n wall ticks with the program off-CPU (inside
// block(n)): the CPU-time alarm does not advance — a SIGPROF CPU profiler
// never fires while the process sleeps — but wall alarms do.
func (vm *VM) chargeBlocked(n int64) {
	// An inclusive virtual speedup shrinks blocked time too: optimizing a
	// function's extent includes the waiting it causes.
	if vm.markedDepth > 0 {
		n = rescale(n, vm.cfg.ScaleStack.Factor, &vm.carryStack)
	}
	if vm.cfg.WallAlarmInterval <= 0 || vm.cfg.OnWallAlarm == nil {
		vm.blocked += n
		return
	}
	for n > 0 {
		step := vm.nextW - vm.WallTicks()
		if step > n {
			vm.blocked += n
			return
		}
		vm.blocked += step
		n -= step
		vm.cfg.OnWallAlarm(vm, true)
		vm.nextW += vm.cfg.WallAlarmInterval
	}
}

func (vm *VM) top() *frame { return &vm.frames[len(vm.frames)-1] }

func (vm *VM) push(v Value) {
	f := vm.top()
	f.stack = append(f.stack, v)
}

func (vm *VM) pop() Value {
	f := vm.top()
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

func (vm *VM) trap(msg string) error {
	line := 0
	if vm.pc >= 0 && vm.pc < len(vm.prog.Instrs) {
		line = int(vm.prog.Instrs[vm.pc].Line)
	}
	return &RuntimeError{PC: vm.pc, Line: line, Msg: msg}
}

func boolVal(b bool) Value {
	if b {
		return Value{I: 1}
	}
	return Value{I: 0}
}

func (vm *VM) loop() error {
	prog := vm.prog
	for !vm.halted {
		if vm.stopErr != nil {
			return vm.stopErr
		}
		if vm.ticks >= vm.cfg.MaxTicks {
			return ErrTicksExceeded
		}
		if vm.cfg.MaxWallTicks > 0 && vm.WallTicks() >= vm.cfg.MaxWallTicks {
			return ErrTicksExceeded
		}
		ins := prog.Instrs[vm.pc]
		vm.InstrCount++
		vm.charge(1)
		switch ins.Op {
		case compiler.OpConst:
			vm.push(Value{I: prog.Consts[ins.A]})
			vm.pc++
		case compiler.OpLoadG:
			vm.push(vm.globals[ins.A])
			vm.pc++
		case compiler.OpStoreG:
			vm.globals[ins.A] = vm.pop()
			vm.pc++
		case compiler.OpLoadL:
			vm.push(vm.top().slots[ins.A])
			vm.pc++
		case compiler.OpStoreL:
			vm.top().slots[ins.A] = vm.pop()
			vm.pc++
		case compiler.OpBin:
			y := vm.pop()
			x := vm.pop()
			v, err := vm.binop(ins.A, x, y)
			if err != nil {
				return err
			}
			vm.push(v)
			vm.pc++
		case compiler.OpUn:
			x := vm.pop()
			if ins.A == 0 { // UnaryNot
				vm.push(boolVal(x.I == 0 && !x.Ptr))
			} else { // UnaryNeg
				vm.push(Value{I: -x.I})
			}
			vm.pc++
		case compiler.OpJump:
			vm.pc = int(ins.A)
		case compiler.OpJZ:
			v := vm.pop()
			taken := v.I == 0 && !v.Ptr
			if vm.cfg.OnBranch != nil {
				vm.cfg.OnBranch(vm.pc, taken)
			}
			if taken {
				vm.BranchTaken[vm.top().funcIndex]++
				vm.pc = int(ins.A)
			} else {
				vm.pc++
			}
		case compiler.OpJNZ:
			v := vm.pop()
			taken := v.I != 0 || v.Ptr
			if vm.cfg.OnBranch != nil {
				vm.cfg.OnBranch(vm.pc, taken)
			}
			if taken {
				vm.BranchTaken[vm.top().funcIndex]++
				vm.pc = int(ins.A)
			} else {
				vm.pc++
			}
		case compiler.OpCall:
			// A call is a taken control transfer (Intel-PT-style branch
			// accounting attributes it to the caller).
			vm.BranchTaken[vm.top().funcIndex]++
			if vm.cfg.CountCalls {
				if vm.CallEdges == nil {
					vm.CallEdges = map[[2]int32]int64{}
				}
				vm.CallEdges[[2]int32{int32(vm.top().funcIndex), ins.A}]++
			}
			// Call overhead is charged before the callee frame exists,
			// so an alarm here still observes the caller's registers at
			// the call PC.
			vm.charge(1)
			fn := prog.Funcs[ins.A]
			fr := frame{
				funcIndex: int(ins.A),
				retPC:     vm.pc,
				slots:     make([]Value, fn.NumSlots),
			}
			argc := int(ins.B)
			for i := argc - 1; i >= 0; i-- {
				fr.slots[i] = vm.pop()
			}
			vm.frames = append(vm.frames, fr)
			if vm.marked(int(ins.A)) {
				vm.markedDepth++
			}
			vm.pc = fn.Entry
		case compiler.OpCallB:
			if err := vm.builtin(compiler.Builtin(ins.A), int(ins.B)); err != nil {
				return err
			}
			vm.pc++
		case compiler.OpRet:
			v := vm.pop()
			ret := vm.top().retPC
			// The return transfer is attributed to the returning
			// function.
			vm.BranchTaken[vm.top().funcIndex]++
			if vm.cfg.OnReturn != nil {
				vm.cfg.OnReturn(vm.top().funcIndex, v)
			}
			if vm.marked(vm.top().funcIndex) {
				vm.markedDepth--
			}
			vm.frames = vm.frames[:len(vm.frames)-1]
			if len(vm.frames) == 0 {
				vm.result = v
				vm.halted = true
				break
			}
			vm.push(v)
			vm.pc = ret + 1
		case compiler.OpPop:
			vm.pop()
			vm.pc++
		case compiler.OpHalt:
			vm.halted = true
		default:
			return vm.trap(fmt.Sprintf("illegal opcode %v", ins.Op))
		}
	}
	return nil
}

func (vm *VM) binop(op int32, x, y Value) (Value, error) {
	switch lang.BinaryOp(op) {
	case lang.BinAdd:
		return Value{I: x.I + y.I}, nil
	case lang.BinSub:
		return Value{I: x.I - y.I}, nil
	case lang.BinMul:
		return Value{I: x.I * y.I}, nil
	case lang.BinDiv:
		if y.I == 0 {
			return Value{}, vm.trap("division by zero")
		}
		return Value{I: x.I / y.I}, nil
	case lang.BinMod:
		if y.I == 0 {
			return Value{}, vm.trap("modulo by zero")
		}
		return Value{I: x.I % y.I}, nil
	case lang.BinEq:
		return boolVal(x.I == y.I && x.Ptr == y.Ptr), nil
	case lang.BinNeq:
		return boolVal(x.I != y.I || x.Ptr != y.Ptr), nil
	case lang.BinLt:
		return boolVal(x.I < y.I), nil
	case lang.BinLe:
		return boolVal(x.I <= y.I), nil
	case lang.BinGt:
		return boolVal(x.I > y.I), nil
	case lang.BinGe:
		return boolVal(x.I >= y.I), nil
	}
	return Value{}, vm.trap(fmt.Sprintf("illegal binary op %d", op))
}

func (vm *VM) builtin(b compiler.Builtin, argc int) error {
	switch b {
	case compiler.BWork:
		n := vm.pop().I
		if n < 0 {
			n = 0
		}
		vm.charge(n)
		vm.push(Value{I: n})
	case compiler.BAlloc:
		vm.nextPtr += 16
		vm.push(Value{I: 1<<40 + vm.nextPtr, Ptr: true})
	case compiler.BInput:
		k := vm.pop().I
		var v int64
		if k >= 0 && k < int64(len(vm.cfg.Inputs)) {
			v = vm.cfg.Inputs[k]
		}
		vm.push(Value{I: v})
	case compiler.BRand:
		n := vm.pop().I
		if n <= 0 {
			vm.push(Value{I: 0})
			break
		}
		vm.push(Value{I: int64(vm.xorshift() % uint64(n))})
	case compiler.BNow:
		vm.push(Value{I: vm.WallTicks()})
	case compiler.BSpawn:
		args := make([]Value, argc)
		for i := argc - 1; i >= 0; i-- {
			args[i] = vm.pop()
		}
		req := ChildRequest{
			FuncIndex: int(args[0].I),
			Args:      args[1:],
			Globals:   vm.Globals(),
		}
		vm.Children = append(vm.Children, req)
		vm.push(Value{I: int64(len(vm.Children))}) // child pid-like handle
	case compiler.BOut:
		v := vm.pop()
		vm.Outputs = append(vm.Outputs, v.I)
		vm.push(v)
	case compiler.BAbs:
		v := vm.pop().I
		if v < 0 {
			v = -v
		}
		vm.push(Value{I: v})
	case compiler.BMin:
		y := vm.pop().I
		x := vm.pop().I
		if y < x {
			x = y
		}
		vm.push(Value{I: x})
	case compiler.BMax:
		y := vm.pop().I
		x := vm.pop().I
		if y > x {
			x = y
		}
		vm.push(Value{I: x})
	case compiler.BBlock:
		n := vm.pop().I
		if n < 0 {
			n = 0
		}
		vm.chargeBlocked(n)
		vm.push(Value{I: n})
	default:
		return vm.trap(fmt.Sprintf("illegal builtin %d", int(b)))
	}
	return nil
}

// xorshift advances the deterministic PRNG (xorshift64*).
func (vm *VM) xorshift() uint64 {
	x := vm.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	vm.rng = x
	return x * 0x2545F4914F6CDD1D
}
