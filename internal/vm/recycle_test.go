package vm_test

import (
	"fmt"
	"testing"

	"vprof/internal/vm"
)

// recycleSrc exercises both engines' arena paths: recursion deep enough to
// grow the frame array, scratch-register pressure from nested expressions,
// and rand() so runs are seed-sensitive.
const recycleSrc = `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	var i = 0;
	while (i < 8) {
		out(fib(i) * 3 + rand(7) - (i + 1) * 2);
		i = i + 1;
	}
}`

// TestRecycleDeterminism pins the pool's contract: a VM built from a
// recycled arena (stale registers, high-water-marked frame array) runs
// bit-for-bit identically to one built from fresh allocations, on both
// engines, across differing seeds.
func TestRecycleDeterminism(t *testing.T) {
	p := compile(t, recycleSrc)
	for _, engine := range []string{vm.EngineTree, vm.EngineRegister} {
		t.Run(engine, func(t *testing.T) {
			type run struct {
				outputs string
				ticks   int64
			}
			exec := func(seed uint64, recycle bool) run {
				m := vm.New(p, vm.Config{Seed: seed, Engine: engine})
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				r := run{outputs: fmt.Sprint(m.Outputs), ticks: m.Ticks()}
				if recycle {
					m.Recycle()
				}
				return r
			}
			// Fresh-allocation golden for each seed, before any pooling.
			want := map[uint64]run{}
			for seed := uint64(1); seed <= 3; seed++ {
				want[seed] = exec(seed, false)
			}
			// Interleave seeds so every run inherits a dirty arena from a
			// different run.
			for round := 0; round < 4; round++ {
				for seed := uint64(1); seed <= 3; seed++ {
					if got := exec(seed, true); got != want[seed] {
						t.Fatalf("round %d seed %d: recycled run %+v != fresh run %+v", round, seed, got, want[seed])
					}
				}
			}
		})
	}
}

// TestRecycleIdempotent checks double-Recycle is a no-op and scalar state
// survives recycling.
func TestRecycleIdempotent(t *testing.T) {
	p := compile(t, `func main() { out(7); work(10); }`)
	m := vm.New(p, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ticks := m.Ticks()
	m.Recycle()
	m.Recycle()
	if m.Ticks() != ticks || len(m.Outputs) != 1 || m.Outputs[0] != 7 {
		t.Fatalf("scalar state lost after Recycle: ticks %d (want %d), outputs %v", m.Ticks(), ticks, m.Outputs)
	}
}
