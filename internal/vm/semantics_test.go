package vm

// White-box tests pinning tree-walker semantics the register engine must
// reproduce exactly — gaps found while building the differential
// harness: fractional-carry accumulation in rescale, Interrupt landing
// in the middle of a blocked-tick charge, and FrameView.Slot bounds
// behavior.

import (
	"errors"
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/lang"
)

func mustCompile(t *testing.T, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var engines = []string{EngineTree, EngineRegister}

// TestRescaleCarry pins the fractional-carry contract: repeated small
// charges accrue to factor*n exactly instead of truncating to zero, the
// carry stays in [0,1) for positive factors, and negative outputs clamp
// at zero while the (pathological) negative carry keeps accumulating.
func TestRescaleCarry(t *testing.T) {
	cases := []struct {
		name    string
		factor  float64
		charges []int64
		want    []int64
		// wantCarry is the carry after the whole sequence.
		wantCarry float64
	}{
		{"half-unit", 0.5, []int64{1, 1, 1, 1}, []int64{0, 1, 0, 1}, 0},
		{"quarter-unit", 0.25, []int64{1, 1, 1, 1, 1, 1, 1, 1}, []int64{0, 0, 0, 1, 0, 0, 0, 1}, 0},
		// Ten accumulations of float64(0.1) land just below 1.0 — the
		// tenth unit tick is still swallowed and the carry sits at
		// 0.9999999999999999. This is the pinned IEEE-754 behavior both
		// engines share (the register engine falls back to per-tick
		// charging whenever a scale hook is active, so the carry
		// sequence is bit-identical).
		{"tenth-unit", 0.1, []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
			[]int64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0.9999999999999999},
		// ...whereas batching 10 ticks per charge computes 10*0.3 = 3.0
		// exactly (nearest-even rounding) and carries nothing: batch
		// size changes the float trajectory, which is why charge
		// batching is only legal when no scale hook is configured.
		{"speedup-batch", 0.3, []int64{10, 10, 10}, []int64{3, 3, 3}, 0},
		{"slowdown-unit", 1.5, []int64{1, 1, 1, 1}, []int64{1, 2, 1, 2}, 0},
		{"identity", 1.0, []int64{1, 7, 3}, []int64{1, 7, 3}, 0},
		{"zero-factor", 0, []int64{5, 5, 5}, []int64{0, 0, 0}, 0},
		{"negative-clamps", -1, []int64{1, 1}, []int64{0, 0}, -2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var carry float64
			for i, n := range tc.charges {
				got := rescale(n, tc.factor, &carry)
				if got != tc.want[i] {
					t.Fatalf("charge %d: rescale(%d, %v) = %d, want %d (carry now %v)",
						i, n, tc.factor, got, tc.want[i], carry)
				}
				if tc.factor >= 0 && (carry < 0 || carry >= 1) {
					t.Fatalf("charge %d: carry %v escaped [0,1)", i, carry)
				}
			}
			if carry != tc.wantCarry {
				t.Fatalf("final carry = %v, want %v", carry, tc.wantCarry)
			}
		})
	}
}

// TestInterruptDuringBlockedCharge pins that a blocked charge always
// completes in full: chargeBlocked has no stop check, so an Interrupt
// raised by a wall alarm mid-block(n) still accrues all n blocked ticks
// (and keeps firing later wall alarms inside the same charge) before the
// run stops at the next instruction boundary.
func TestInterruptDuringBlockedCharge(t *testing.T) {
	src := `func main() { work(5); block(100); out(1); }`
	for _, eng := range engines {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			p := mustCompile(t, src)
			var fires []int64
			var m *VM
			m = New(p, Config{
				Engine:            eng,
				WallAlarmInterval: 30,
				OnWallAlarm: func(v *VM, blocked bool) {
					fires = append(fires, v.WallTicks())
					if !blocked {
						t.Fatalf("alarm at wall=%d not flagged blocked", v.WallTicks())
					}
					if len(fires) == 1 {
						v.Interrupt(nil)
					}
				},
			})
			err := m.Run()
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			// The full block(100) is charged even though the first alarm
			// interrupted: blocked time never splits.
			if m.BlockedTicks() != 100 {
				t.Fatalf("blocked = %d, want 100", m.BlockedTicks())
			}
			// Every wall alarm inside the charge still fired (wall crosses
			// 30, 60, 90 during the block, plus any CPU-side crossings).
			if len(fires) < 3 {
				t.Fatalf("wall alarms fired %d times (%v), want >= 3", len(fires), fires)
			}
			// out(1) after the block never ran.
			if len(m.Outputs) != 0 {
				t.Fatalf("outputs = %v, want none", m.Outputs)
			}
		})
	}
}

// TestFrameViewSlotBounds pins that out-of-range Slot reads — a profiler
// reading a garbage register — return the zero Value on both engines,
// and in-range reads see the live slot values at alarm time.
func TestFrameViewSlotBounds(t *testing.T) {
	src := `
func leaf(a, b) { var c = a * 10 + b; work(50); return c; }
func main() { out(leaf(3, 4)); }`
	for _, eng := range engines {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			p := mustCompile(t, src)
			checked := false
			m := New(p, Config{
				Engine:        eng,
				AlarmInterval: 30,
				OnAlarm: func(v *VM) {
					fr, ok := v.Frame(0)
					if !ok || checked {
						return
					}
					if p.Funcs[fr.FuncIndex].Name != "leaf" {
						return
					}
					checked = true
					cases := []struct {
						slot int
						want Value
					}{
						{-1, Value{}},
						{0, Value{I: 3}},
						{1, Value{I: 4}},
						{2, Value{I: 34}},
						{3, Value{}}, // past NumSlots
						{1 << 20, Value{}},
					}
					for _, tc := range cases {
						if got := fr.Slot(tc.slot); got != tc.want {
							t.Errorf("Slot(%d) = %+v, want %+v", tc.slot, got, tc.want)
						}
					}
				},
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if !checked {
				t.Fatal("no alarm observed the leaf frame")
			}
		})
	}
}
