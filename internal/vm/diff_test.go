package vm_test

// Differential execution: every program in the repo (testdata DSL files
// plus all 18 bug workloads, buggy and patched variants) runs on the
// tree-walking and register engines under a matrix of profiling
// configurations, and every observable — results, globals, outputs, tick
// and blocked-tick accounting, instruction counts, runtime errors,
// branch/return events, and full alarm-time snapshots (PC, stack,
// slots, globals) — must match exactly. This is the correctness gate for
// the register engine's batched tick accounting.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

// Caps keep traces small on alarm-heavy configs; totals still compare.
const (
	maxAlarmSnaps = 64
	maxEvents     = 512
)

type frameSnap struct {
	FuncIndex int
	RetPC     int
	Slots     []vm.Value
	OOB       [2]vm.Value // Slot(-1) and Slot(NumSlots): must be zero
}

type alarmSnap struct {
	Kind    string // "cpu" or "wall"
	Blocked bool
	Ticks   int64
	Wall    int64
	Instr   int64
	PC      int
	Frames  []frameSnap
	Globals []vm.Value
}

type branchEv struct {
	PC    int
	Taken bool
}

type returnEv struct {
	Func int
	Val  vm.Value
}

// procTrace is everything observable about one simulated process.
type procTrace struct {
	Err         string
	Result      vm.Value
	PC          int
	Ticks       int64
	Blocked     int64
	Instr       int64
	Globals     []vm.Value
	Outputs     []int64
	BranchTaken []int64
	CallEdges   map[[2]int32]int64
	Children    int

	Alarms      []alarmSnap
	AlarmsTotal int

	Branches    []branchEv
	BranchTotal int
	Returns     []returnEv
	ReturnTotal int
}

func errKey(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, vm.ErrTicksExceeded):
		return "ticks-exceeded"
	case errors.Is(err, vm.ErrInterrupted):
		return "interrupted"
	}
	var re *vm.RuntimeError
	if errors.As(err, &re) {
		return fmt.Sprintf("runtime pc=%d line=%d msg=%s", re.PC, re.Line, re.Msg)
	}
	return err.Error()
}

func snapshot(v *vm.VM, kind string, blocked bool) alarmSnap {
	s := alarmSnap{
		Kind:    kind,
		Blocked: blocked,
		Ticks:   v.Ticks(),
		Wall:    v.WallTicks(),
		Instr:   v.InstrCount,
		PC:      v.PC(),
		Globals: v.Globals(),
	}
	prog := v.Prog()
	for d := 0; ; d++ {
		fr, ok := v.Frame(d)
		if !ok {
			break
		}
		ns := prog.Funcs[fr.FuncIndex].NumSlots
		fs := frameSnap{
			FuncIndex: fr.FuncIndex,
			RetPC:     fr.RetPC,
			OOB:       [2]vm.Value{fr.Slot(-1), fr.Slot(ns)},
		}
		for i := 0; i < ns; i++ {
			fs.Slots = append(fs.Slots, fr.Slot(i))
		}
		s.Frames = append(s.Frames, fs)
	}
	return s
}

// diffCase is one profiling configuration both engines run under.
type diffCase struct {
	name string
	mk   func(p *compiler.Program) vm.Config
	// observe attaches OnBranch/OnReturn recorders and CountCalls.
	observe bool
	// interruptAfter, when > 0, calls Interrupt(nil) on the Nth CPU alarm.
	interruptAfter int
}

func diffCases() []diffCase {
	return []diffCase{
		{name: "plain", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000}
		}},
		{name: "cpu-alarm", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, AlarmInterval: 97, AlarmPhase: 13}
		}},
		{name: "wall-alarm", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, WallAlarmInterval: 89, AlarmPhase: 7}
		}},
		{name: "both-alarms", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, AlarmInterval: 101, AlarmPhase: 3, WallAlarmInterval: 131}
		}},
		{name: "cost-scale", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, AlarmInterval: 157, CostScale: func(pc int, cost int64) int64 {
				if pc%5 == 0 {
					return cost * 2
				}
				return cost
			}}
		}},
		{name: "scale-span", mk: func(p *compiler.Program) vm.Config {
			fn := p.Funcs[len(p.Funcs)/2]
			return vm.Config{MaxTicks: 50_000, AlarmInterval: 113, ScaleSpan: &vm.SpanScale{
				Start: fn.Entry, End: fn.End, Factor: 0.3,
			}}
		}},
		{name: "scale-stack", mk: func(p *compiler.Program) vm.Config {
			marked := make([]bool, len(p.Funcs))
			for i := range marked {
				marked[i] = i%3 == 0
			}
			return vm.Config{MaxTicks: 50_000, WallAlarmInterval: 127, ScaleStack: &vm.StackScale{
				Marked: marked, Factor: 0.25,
			}}
		}},
		{name: "interrupt", interruptAfter: 5, mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, AlarmInterval: 101, AlarmPhase: 17}
		}},
		{name: "tight-ticks", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 777}
		}},
		{name: "tight-wall", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 50_000, MaxWallTicks: 555, WallAlarmInterval: 67}
		}},
		{name: "observe", observe: true, mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 20_000, CountCalls: true}
		}},
	}
}

// runTraced executes the program's whole process tree on one engine and
// captures a full observable trace per process.
func runTraced(p *compiler.Program, c diffCase, inputs []int64, seed uint64, engine string) []procTrace {
	var traces []*procTrace
	procs := vm.RunProcesses(p, func(pid int) vm.Config {
		cfg := c.mk(p)
		cfg.Engine = engine
		cfg.Inputs = inputs
		cfg.Seed = seed + uint64(pid)
		tr := &procTrace{}
		traces = append(traces, tr)
		alarms := 0
		if cfg.AlarmInterval > 0 {
			cfg.OnAlarm = func(v *vm.VM) {
				tr.AlarmsTotal++
				if len(tr.Alarms) < maxAlarmSnaps {
					tr.Alarms = append(tr.Alarms, snapshot(v, "cpu", false))
				}
				alarms++
				if c.interruptAfter > 0 && alarms == c.interruptAfter {
					v.Interrupt(nil)
				}
			}
		}
		if cfg.WallAlarmInterval > 0 {
			cfg.OnWallAlarm = func(v *vm.VM, blocked bool) {
				tr.AlarmsTotal++
				if len(tr.Alarms) < maxAlarmSnaps {
					tr.Alarms = append(tr.Alarms, snapshot(v, "wall", blocked))
				}
			}
		}
		if c.observe {
			cfg.OnBranch = func(pc int, taken bool) {
				tr.BranchTotal++
				if len(tr.Branches) < maxEvents {
					tr.Branches = append(tr.Branches, branchEv{PC: pc, Taken: taken})
				}
			}
			cfg.OnReturn = func(fi int, val vm.Value) {
				tr.ReturnTotal++
				if len(tr.Returns) < maxEvents {
					tr.Returns = append(tr.Returns, returnEv{Func: fi, Val: val})
				}
			}
		}
		return cfg
	})
	out := make([]procTrace, len(procs))
	for i, pr := range procs {
		tr := traces[i]
		tr.Err = errKey(pr.Err)
		tr.Result = pr.VM.Result()
		tr.PC = pr.VM.PC()
		tr.Ticks = pr.VM.Ticks()
		tr.Blocked = pr.VM.BlockedTicks()
		tr.Instr = pr.VM.InstrCount
		tr.Globals = pr.VM.Globals()
		tr.Outputs = pr.VM.Outputs
		tr.BranchTaken = pr.VM.BranchTaken
		tr.CallEdges = pr.VM.CallEdges
		tr.Children = len(pr.VM.Children)
		out[i] = *tr
	}
	// Recycling here hands each engine run the other's dirty arena, so the
	// whole differential matrix (and the fuzzer built on it) doubles as a
	// stale-arena equivalence check.
	vm.RecycleProcesses(procs)
	return out
}

// diffProgram asserts tree and register traces match for every case.
func diffProgram(t *testing.T, name string, p *compiler.Program, inputs []int64, seed uint64) {
	t.Helper()
	for _, c := range diffCases() {
		tree := runTraced(p, c, inputs, seed, vm.EngineTree)
		reg := runTraced(p, c, inputs, seed, vm.EngineRegister)
		if !reflect.DeepEqual(tree, reg) {
			t.Errorf("%s/%s: engine divergence", name, c.name)
			reportDiff(t, tree, reg)
		}
	}
}

func reportDiff(t *testing.T, tree, reg []procTrace) {
	t.Helper()
	if len(tree) != len(reg) {
		t.Errorf("  process count: tree=%d register=%d", len(tree), len(reg))
		return
	}
	for i := range tree {
		a, b := tree[i], reg[i]
		if reflect.DeepEqual(a, b) {
			continue
		}
		t.Errorf("  pid %d:", i+1)
		cmp := func(field string, x, y interface{}) {
			if !reflect.DeepEqual(x, y) {
				t.Errorf("    %s: tree=%v register=%v", field, x, y)
			}
		}
		cmp("err", a.Err, b.Err)
		cmp("result", a.Result, b.Result)
		cmp("pc", a.PC, b.PC)
		cmp("ticks", a.Ticks, b.Ticks)
		cmp("blocked", a.Blocked, b.Blocked)
		cmp("instr", a.Instr, b.Instr)
		cmp("globals", a.Globals, b.Globals)
		cmp("outputs", a.Outputs, b.Outputs)
		cmp("branchTaken", a.BranchTaken, b.BranchTaken)
		cmp("callEdges", a.CallEdges, b.CallEdges)
		cmp("children", a.Children, b.Children)
		cmp("alarmsTotal", a.AlarmsTotal, b.AlarmsTotal)
		cmp("branchTotal", a.BranchTotal, b.BranchTotal)
		cmp("returnTotal", a.ReturnTotal, b.ReturnTotal)
		cmp("branches", a.Branches, b.Branches)
		cmp("returns", a.Returns, b.Returns)
		for j := range a.Alarms {
			if j >= len(b.Alarms) {
				break
			}
			if !reflect.DeepEqual(a.Alarms[j], b.Alarms[j]) {
				t.Errorf("    alarm %d: tree=%+v register=%+v", j, a.Alarms[j], b.Alarms[j])
				break
			}
		}
	}
}

func compileSrc(t *testing.T, name, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse(name, src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return p
}

// diffSources returns every named program source in the repo: the
// testdata DSL files plus both variants of all 18 bug workloads.
func diffSources(t testing.TB) map[string]string {
	t.Helper()
	srcs := map[string]string{}
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.vp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(path)] = string(data)
	}
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		srcs[w.ID+"-buggy"] = w.Source
		if w.NormalSource != "" {
			srcs[w.ID+"-normal"] = w.NormalSource
		}
	}
	return srcs
}

func TestDiffExecEngines(t *testing.T) {
	for name, src := range diffSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p := compileSrc(t, name, src)
			diffProgram(t, name, p, []int64{4, 7, 9, 2}, 12345)
		})
	}
}

// TestDiffExecBugConfigs replays each workload under its own harness
// configurations (the exact inputs/seeds Tables 3-5 use), bounded to a
// smaller budget so the whole matrix stays fast.
func TestDiffExecBugConfigs(t *testing.T) {
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			p := compileSrc(t, w.ID, w.Source)
			for _, cfg := range []vm.Config{w.BuggyConfig(0), w.NormalConfig(1)} {
				for _, c := range diffCases() {
					base := c
					mk := base.mk
					base.mk = func(pp *compiler.Program) vm.Config {
						out := mk(pp)
						if out.MaxTicks > cfg.MaxTicks {
							out.MaxTicks = cfg.MaxTicks
						}
						return out
					}
					tree := runTraced(p, base, cfg.Inputs, cfg.Seed, vm.EngineTree)
					reg := runTraced(p, base, cfg.Inputs, cfg.Seed, vm.EngineRegister)
					if !reflect.DeepEqual(tree, reg) {
						t.Errorf("%s/%s: engine divergence", w.ID, c.name)
						reportDiff(t, tree, reg)
					}
				}
			}
		})
	}
}
