package vm_test

import (
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

func compile(t *testing.T, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCostScaleSpeedsBlocks(t *testing.T) {
	p := compile(t, `
func hot() { work(1000); return 0; }
func main() { hot(); hot(); }`)
	base := vm.New(p, vm.Config{})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	hot := p.FuncNamed("hot")
	scaled := vm.New(p, vm.Config{CostScale: func(pc int, cost int64) int64 {
		if pc >= hot.Entry && pc < hot.End {
			return cost / 2
		}
		return cost
	}})
	if err := scaled.Run(); err != nil {
		t.Fatal(err)
	}
	if scaled.Ticks() >= base.Ticks() {
		t.Fatalf("scaled %d >= base %d", scaled.Ticks(), base.Ticks())
	}
	// Roughly half the hot time should disappear.
	if scaled.Ticks() > base.Ticks()*3/4 {
		t.Errorf("speedup too small: %d vs %d", scaled.Ticks(), base.Ticks())
	}
	// Negative scale results clamp to zero rather than rewinding time.
	neg := vm.New(p, vm.Config{CostScale: func(int, int64) int64 { return -5 }})
	if err := neg.Run(); err != nil {
		t.Fatal(err)
	}
	if neg.Ticks() != 0 {
		t.Errorf("negative scaling produced %d ticks", neg.Ticks())
	}
}

func TestOnBranchObservesOutcomes(t *testing.T) {
	p := compile(t, `
func main() {
	var taken = 0;
	for (var i = 0; i < 10; i++) {
		if (i % 2 == 0) { taken++; }
	}
	out(taken);
}`)
	var taken, total int
	m := vm.New(p, vm.Config{OnBranch: func(pc int, t bool) {
		total++
		if t {
			taken++
		}
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if total == 0 || taken == 0 || taken == total {
		t.Errorf("branch observation: taken=%d total=%d", taken, total)
	}
}

func TestOnReturnObservesValues(t *testing.T) {
	p := compile(t, `
func f(x) { return x * 2; }
func main() { f(3); f(5); }`)
	var got []int64
	fIdx := p.FuncNamed("f").Index
	m := vm.New(p, vm.Config{OnReturn: func(fi int, v vm.Value) {
		if fi == fIdx {
			got = append(got, v.I)
		}
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 6 || got[1] != 10 {
		t.Errorf("returns = %v", got)
	}
}

func TestRunProcessesNestedSpawn(t *testing.T) {
	p := compile(t, `
func grandchild(n) { out(n); }
func child(n) {
	out(n);
	spawn("grandchild", n + 1);
}
func main() {
	spawn("child", 10);
	spawn("child", 20);
}`)
	procs := vm.RunProcesses(p, func(int) vm.Config { return vm.Config{} })
	if len(procs) != 5 {
		t.Fatalf("%d processes, want 5 (root, 2 children, 2 grandchildren)", len(procs))
	}
	// BFS order: children before grandchildren.
	if procs[1].VM.Outputs[0] != 10 || procs[2].VM.Outputs[0] != 20 {
		t.Errorf("children outputs: %v %v", procs[1].VM.Outputs, procs[2].VM.Outputs)
	}
	if procs[3].VM.Outputs[0] != 11 || procs[4].VM.Outputs[0] != 21 {
		t.Errorf("grandchildren outputs: %v %v", procs[3].VM.Outputs, procs[4].VM.Outputs)
	}
	if procs[3].ParentPid != 2 || procs[4].ParentPid != 3 {
		t.Errorf("grandchild parents: %d %d", procs[3].ParentPid, procs[4].ParentPid)
	}
}

func TestRunFuncArityMismatch(t *testing.T) {
	p := compile(t, `
func f(a, b) { return a + b; }
func main() { f(1, 2); }`)
	m := vm.New(p, vm.Config{})
	if err := m.RunFunc(p.FuncNamed("f").Index, []vm.Value{{I: 1}}, m.Globals()); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestResultValue(t *testing.T) {
	p := compile(t, `
func f() { return 42; }
func main() { f(); }`)
	m := vm.New(p, vm.Config{})
	if err := m.RunFunc(p.FuncNamed("f").Index, nil, m.Globals()); err != nil {
		t.Fatal(err)
	}
	if m.Result().I != 42 {
		t.Errorf("result = %v", m.Result())
	}
}

func TestFrameOutOfRange(t *testing.T) {
	p := compile(t, `func main() { work(100); }`)
	checked := false
	m := vm.New(p, vm.Config{AlarmInterval: 10, OnAlarm: func(v *vm.VM) {
		if _, ok := v.Frame(v.Depth()); ok {
			// Depth() frames exist at indices 0..Depth()-1.
			panicIfReached := true
			_ = panicIfReached
		}
		if _, ok := v.Frame(99); ok {
			checked = true
		}
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if checked {
		t.Error("Frame(99) reported ok")
	}
}

func TestSlotOutOfRangeReturnsZero(t *testing.T) {
	p := compile(t, `func main() { work(50); }`)
	sawZero := false
	m := vm.New(p, vm.Config{AlarmInterval: 7, OnAlarm: func(v *vm.VM) {
		fv, ok := v.Frame(0)
		if !ok {
			return
		}
		if got := fv.Slot(500); got == (vm.Value{}) {
			sawZero = true
		}
		if got := fv.Slot(-1); got != (vm.Value{}) {
			sawZero = false
		}
	}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawZero {
		t.Error("out-of-range slot read did not return zero Value")
	}
}

func TestGlobalsSnapshotIsolated(t *testing.T) {
	p := compile(t, `
var g = 1;
func main() { g = 7; }`)
	m := vm.New(p, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	snap := m.Globals()
	snap[0] = vm.Value{I: 99}
	if m.Global(0).I != 7 {
		t.Error("Globals() returned aliased memory")
	}
}

// markFuncs builds a StackScale mark vector for the named functions.
func markFuncs(p *compiler.Program, names ...string) []bool {
	marked := make([]bool, len(p.Funcs))
	for i, f := range p.Funcs {
		for _, n := range names {
			if f.Name == n {
				marked[i] = true
			}
		}
	}
	return marked
}

func TestScaleStackInclusive(t *testing.T) {
	// driver's own code is cheap, but its extent covers hot's work: an
	// inclusive speedup of driver must erase hot's cost, while a CostScale
	// over driver's PC range would not.
	src := `
func hot() { work(1000); return 0; }
func driver() { var i = 0; while (i < 4) { hot(); i = i + 1; } return 0; }
func main() { driver(); work(500); }`
	p := compile(t, src)
	base := vm.New(p, vm.Config{})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	scaled := vm.New(p, vm.Config{ScaleStack: &vm.StackScale{Marked: markFuncs(p, "driver"), Factor: 0}})
	if err := scaled.Run(); err != nil {
		t.Fatal(err)
	}
	// All 4x1000 hot ticks (plus driver's own) vanish; main's work(500)
	// and the entry code remain.
	if got := base.Ticks() - scaled.Ticks(); got < 4000 {
		t.Errorf("inclusive speedup removed only %d ticks", got)
	}
	if scaled.Ticks() < 500 {
		t.Errorf("unmarked code was scaled: %d ticks", scaled.Ticks())
	}

	// Exclusive scaling of the same (cheap) function barely moves the total.
	fn := p.FuncNamed("driver")
	excl := vm.New(p, vm.Config{CostScale: func(pc int, cost int64) int64 {
		if pc >= fn.Entry && pc < fn.End {
			return 0
		}
		return cost
	}})
	if err := excl.Run(); err != nil {
		t.Fatal(err)
	}
	if base.Ticks()-excl.Ticks() > 200 {
		t.Errorf("exclusive scaling of driver removed %d ticks, want < 200", base.Ticks()-excl.Ticks())
	}
}

func TestScaleStackRecursionAndBlocked(t *testing.T) {
	src := `
func rec(n) { if (n <= 0) { return 0; } work(100); block(100); return rec(n - 1); }
func main() { rec(5); block(300); }`
	p := compile(t, src)
	base := vm.New(p, vm.Config{})
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	scaled := vm.New(p, vm.Config{ScaleStack: &vm.StackScale{Marked: markFuncs(p, "rec"), Factor: 0}})
	if err := scaled.Run(); err != nil {
		t.Fatal(err)
	}
	// Nested marked frames scale once (not multiplicatively) and fully
	// unwind: main's block(300) after rec returns is NOT scaled.
	if scaled.BlockedTicks() != 300 {
		t.Errorf("blocked ticks = %d, want exactly main's 300", scaled.BlockedTicks())
	}
	if base.BlockedTicks() != 300+5*100 {
		t.Errorf("base blocked ticks = %d", base.BlockedTicks())
	}
	if base.Ticks()-scaled.Ticks() < 500 {
		t.Errorf("recursion extent not scaled: base %d scaled %d", base.Ticks(), scaled.Ticks())
	}
}

func TestScaleStackChildProcess(t *testing.T) {
	// RunFunc entry frames are part of the marked extent when the spawned
	// function itself is marked.
	src := `
func child(n) { work(n); return 0; }
func main() { spawn("child", 2000); work(10); }`
	p := compile(t, src)
	mk := func(ss *vm.StackScale) int64 {
		var total int64
		for _, proc := range vm.RunProcesses(p, func(int) vm.Config { return vm.Config{ScaleStack: ss} }) {
			if proc.Err != nil {
				t.Fatal(proc.Err)
			}
			total += proc.VM.Ticks()
		}
		return total
	}
	base := mk(nil)
	scaled := mk(&vm.StackScale{Marked: markFuncs(p, "child"), Factor: 0})
	if base-scaled < 2000 {
		t.Errorf("child extent not scaled: base %d scaled %d", base, scaled)
	}
}
