package vm_test

// FuzzDiffExec mutates DSL program sources and runs every program that
// parses and compiles on both execution engines, asserting the full
// observable trace (result, globals, ticks, blocked ticks, instruction
// counts, runtime errors, and alarm firing PCs with stack snapshots)
// matches. The seed corpus is the repo's own programs — testdata files
// and all 18 bug workloads — plus checked-in regression seeds under
// testdata/fuzz/FuzzDiffExec exercising traps, spawn, blocking and
// recursion.

import (
	"reflect"
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

// fuzzDiffCases is the subset of the differential matrix the fuzzer runs
// per input: small budgets keep each execution bounded even for infinite
// loops the mutator produces.
func fuzzDiffCases() []diffCase {
	return []diffCase{
		{name: "plain", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 20_000}
		}},
		{name: "cpu-alarm", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 20_000, AlarmInterval: 61, AlarmPhase: 11}
		}},
		{name: "wall-alarm", mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 20_000, MaxWallTicks: 30_000, WallAlarmInterval: 83}
		}},
		{name: "scale-stack", mk: func(p *compiler.Program) vm.Config {
			marked := make([]bool, len(p.Funcs))
			for i := range marked {
				marked[i] = i%2 == 0
			}
			return vm.Config{MaxTicks: 20_000, AlarmInterval: 103, ScaleStack: &vm.StackScale{
				Marked: marked, Factor: 0.3,
			}}
		}},
		{name: "observe", observe: true, mk: func(*compiler.Program) vm.Config {
			return vm.Config{MaxTicks: 10_000, CountCalls: true}
		}},
	}
}

func FuzzDiffExec(f *testing.F) {
	for _, src := range diffSources(f) {
		f.Add(src)
	}
	cases := fuzzDiffCases()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		file, err := lang.Parse("fuzz.vp", src)
		if err != nil {
			t.Skip()
		}
		p, err := compiler.Compile(file)
		if err != nil {
			t.Skip()
		}
		for _, c := range cases {
			tree := runTraced(p, c, []int64{3, 5, 8}, 99, vm.EngineTree)
			reg := runTraced(p, c, []int64{3, 5, 8}, 99, vm.EngineRegister)
			if !reflect.DeepEqual(tree, reg) {
				reportDiff(t, tree, reg)
				t.Fatalf("engine divergence under %s:\n%s", c.name, src)
			}
		}
	})
}
