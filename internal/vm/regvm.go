package vm

// The register engine: executes compiler.RegProgram code over flat arena
// frames. It must be observationally indistinguishable from the tree
// walker in vm.go — every exported accessor, callback, counter, error and
// alarm-time snapshot matches tick for tick (see the determinism contract
// in compiler/reg.go and DESIGN.md §11). The differential suite in
// diff_test.go and FuzzDiffExec enforce this.
//
// Tick accounting per RegOp: when no scaling hook is active and the whole
// schedule fits below every alarm and budget boundary, the op's Cost is
// added in one batch (the fast path — nothing observable can happen
// inside the group). Otherwise stepTicks replays the schedule one
// constituent tick at a time through vm.charge, with the same budget
// prechecks, InstrCount increments and PC updates the tree walker
// performs, so alarm callbacks and fractional-carry scaling see an
// identical world.
//
// The dispatch loop keeps the tick and instruction counters in locals
// (written back to the VM around every call that can observe or mutate
// them) and inlines operand decoding and the non-trapping arithmetic:
// per-op loads and stores of VM fields otherwise dominate the profile.

import (
	"fmt"

	"vprof/internal/compiler"
	"vprof/internal/lang"
)

// stepTicks replays a constituent tick schedule. Entries >= 0 are
// instruction starts (budget precheck, InstrCount++, then a 1-tick
// charge); entries < 0 are continuation ticks at pc ^e (no precheck, no
// InstrCount — OpCall's second tick). A budget exhaustion or a pending
// Interrupt aborts the remainder of the schedule, exactly like the tree
// walker's per-instruction loop-top checks.
func (vm *VM) stepTicks(pcs []int32) error {
	for _, e := range pcs {
		if e >= 0 {
			// Like the tree walker's loop top, the PC already points at
			// the instruction about to run when the checks fire, so an
			// error leaves vm.PC() on the unexecuted instruction.
			vm.pc = int(e)
			if vm.stopErr != nil {
				return vm.stopErr
			}
			if vm.ticks >= vm.cfg.MaxTicks {
				return ErrTicksExceeded
			}
			if vm.cfg.MaxWallTicks > 0 && vm.ticks+vm.blocked >= vm.cfg.MaxWallTicks {
				return ErrTicksExceeded
			}
			vm.InstrCount++
		} else {
			vm.pc = int(^e)
		}
		vm.charge(1)
	}
	return nil
}

// regTrap raises a runtime error at stack pc (the trapping instruction's
// XPC), mirroring vm.trap.
func (vm *VM) regTrap(pc int32, msg string) error {
	vm.pc = int(pc)
	line := 0
	if p := int(pc); p >= 0 && p < len(vm.prog.Instrs) {
		line = int(vm.prog.Instrs[p].Line)
	}
	return &RuntimeError{PC: int(pc), Line: line, Msg: msg}
}

// regBinop evaluates the binary ops the dispatch loop does not inline:
// the trapping division family and the (unreachable) illegal-op default.
func (vm *VM) regBinop(op *compiler.RegOp, bop lang.BinaryOp, x, y Value) (Value, error) {
	switch bop {
	case lang.BinDiv:
		if y.I == 0 {
			return Value{}, vm.regTrap(op.XPC, "division by zero")
		}
		return Value{I: x.I / y.I}, nil
	case lang.BinMod:
		if y.I == 0 {
			return Value{}, vm.regTrap(op.XPC, "modulo by zero")
		}
		return Value{I: x.I % y.I}, nil
	}
	return Value{}, vm.regTrap(op.XPC, fmt.Sprintf("illegal binary op %d", int(bop)))
}

func regCmp(bop lang.BinaryOp, x, y Value) bool {
	switch bop {
	case lang.BinEq:
		return x.I == y.I && x.Ptr == y.Ptr
	case lang.BinNeq:
		return x.I != y.I || x.Ptr != y.Ptr
	case lang.BinLt:
		return x.I < y.I
	case lang.BinLe:
		return x.I <= y.I
	case lang.BinGt:
		return x.I > y.I
	default: // lang.BinGe
		return x.I >= y.I
	}
}

// growRegs extends the register arena to at least need entries and
// re-slices every frame's named-slot view onto the new backing array.
func (vm *VM) growRegs(rp *compiler.RegProgram, need int) {
	if need <= len(vm.regs) {
		return
	}
	newCap := 2 * len(vm.regs)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	nr := make([]Value, newCap)
	copy(nr, vm.regs)
	vm.regs = nr
	for i := range vm.frames {
		f := &vm.frames[i]
		ns := rp.Funcs[f.funcIndex].NumSlots
		f.slots = nr[f.base : f.base+ns]
	}
}

// runRegister executes rootFunc (with args copied into its named slots)
// on the register engine. Globals must already be initialized by the
// caller (Run / RunFunc).
func (vm *VM) runRegister(rootFunc int, args []Value) error {
	rp, err := regProgramFor(vm.prog)
	if err != nil {
		return err
	}
	cfg := &vm.cfg
	cpuAlarms := cfg.AlarmInterval > 0 && cfg.OnAlarm != nil
	wallAlarms := cfg.WallAlarmInterval > 0 && cfg.OnWallAlarm != nil
	anyScaleCfg := cfg.CostScale != nil || cfg.ScaleSpan != nil
	maxTicks := cfg.MaxTicks
	maxWall := cfg.MaxWallTicks
	onBranch := cfg.OnBranch
	// noHooks: nothing can fire, rescale or bound a charge besides the
	// plain CPU budget — the per-op fast check collapses to one compare.
	noHooks := !cpuAlarms && !wallAlarms && !anyScaleCfg &&
		cfg.ScaleStack == nil && maxWall <= 0
	// checkStop: Interrupt can only be called mid-run from user code —
	// alarm or branch/return callbacks. Every hook that can run user
	// code either appears here or (CostScale/ScaleSpan/ScaleStack
	// closures) forces the careful path, whose stepTicks prechecks
	// stopErr per instruction; when none is configured the loop-top
	// check would read an invariantly-nil field every dispatch.
	checkStop := cpuAlarms || wallAlarms || onBranch != nil || cfg.OnReturn != nil

	vm.markedDepth = 0
	vm.carryStack, vm.carrySpan = 0, 0
	if vm.marked(rootFunc) {
		vm.markedDepth = 1
	}
	vm.halted = false

	funcs := rp.Funcs
	rootRF := &funcs[rootFunc]
	vm.growRegs(rp, int(rootRF.FrameSize))
	for i := int32(0); i < rootRF.NumSlots; i++ {
		vm.regs[i] = Value{}
	}
	copy(vm.regs, args)
	vm.frames = append(vm.frames[:0], frame{
		funcIndex: rootFunc,
		retPC:     -1,
		slots:     vm.regs[0:rootRF.NumSlots],
	})
	vm.pc = vm.prog.Funcs[rootFunc].Entry

	fi := rootFunc
	code := rootRF.Code
	var base int32
	var rpc int32
	regs := vm.regs
	consts := rp.Consts
	bt := vm.BranchTaken

	// ticks and instr shadow vm.ticks / vm.InstrCount in the hot loop so
	// they stay in machine registers (a closure or defer capturing them
	// would force them to memory). They are published to the real fields
	// before every call that can observe or mutate them — charge,
	// chargeBlocked, stepTicks, user callbacks — re-read after calls
	// that mutate them, and written back at every return site.
	ticks := vm.ticks
	instr := vm.InstrCount

	if vm.stopErr != nil { // Interrupt before the run started
		return vm.stopErr
	}

	for {
		if checkStop && vm.stopErr != nil {
			// The tree walker returns a pending Interrupt at the next
			// instruction boundary with the PC on the unexecuted
			// instruction. A stop can reach this loop top (rather than a
			// stepTicks precheck) only when the alarm fired on a group's
			// final tick; advance vm.pc to the next real instruction —
			// the first tick-schedule entry of the next non-synthetic op
			// in straight-line order.
			for i := rpc; i < int32(len(code)); i++ {
				if len(code[i].PCs) > 0 {
					vm.pc = int(code[i].PCs[0])
					break
				}
			}
			vm.ticks, vm.InstrCount = ticks, instr
			return vm.stopErr
		}
		op := &code[rpc]

		// Tick accounting. The fast path requires: no scaling hook can
		// rescale this charge, and no alarm or budget boundary falls at
		// or inside the group (strictly before the next alarm tick, at
		// most MaxTicks/MaxWallTicks — then every constituent
		// instruction start lies below every boundary, so the batch is
		// indistinguishable from per-tick charging).
		fast := false
		t2 := ticks + int64(op.Cost)
		if noHooks {
			fast = t2 <= maxTicks
		} else if !anyScaleCfg && vm.markedDepth == 0 {
			fast = t2 <= maxTicks &&
				(!cpuAlarms || t2 < vm.next) &&
				(!wallAlarms || t2+vm.blocked < vm.nextW) &&
				(maxWall <= 0 || t2+vm.blocked <= maxWall)
		}
		if fast {
			ticks = t2
			instr += int64(op.N)
		} else if op.Code != compiler.RCall {
			vm.ticks, vm.InstrCount = ticks, instr
			err := vm.stepTicks(op.PCs)
			ticks, instr = vm.ticks, vm.InstrCount
			if err != nil {
				return err
			}
		}

		switch op.Code {
		case compiler.RCall:
			// Calls charge in two phases: the call tick (with
			// precheck), then — like the tree walker, which counts the
			// transfer and only then charges call overhead — the
			// continuation tick, with the branch/edge bookkeeping in
			// between so alarm callbacks on either tick see the same
			// counters.
			if !fast {
				n := len(op.PCs)
				vm.ticks, vm.InstrCount = ticks, instr
				err := vm.stepTicks(op.PCs[:n-1])
				ticks, instr = vm.ticks, vm.InstrCount
				if err != nil {
					return err
				}
			}
			// The transfer is counted only once the call tick landed —
			// an alarm on that tick must not yet see it — and before the
			// overhead tick, which an alarm does observe it on.
			bt[fi]++
			if cfg.CountCalls {
				if vm.CallEdges == nil {
					vm.CallEdges = map[[2]int32]int64{}
				}
				vm.CallEdges[[2]int32{int32(fi), op.A}]++
			}
			if !fast {
				vm.pc = int(op.XPC)
				vm.ticks, vm.InstrCount = ticks, instr
				vm.charge(1)
				ticks, instr = vm.ticks, vm.InstrCount
			}
			callee := int(op.A)
			crf := &funcs[callee]
			nb := base + funcs[fi].FrameSize
			if int(nb+crf.FrameSize) > len(regs) {
				vm.growRegs(rp, int(nb+crf.FrameSize))
				regs = vm.regs
			}
			for i, a := range op.Args {
				if a < 0 {
					regs[nb+int32(i)] = Value{I: consts[^a]}
				} else {
					regs[nb+int32(i)] = regs[base+a]
				}
			}
			for i := int32(len(op.Args)); i < crf.NumSlots; i++ {
				regs[nb+i] = Value{}
			}
			if len(vm.frames) < cap(vm.frames) {
				vm.frames = vm.frames[:len(vm.frames)+1]
			} else {
				vm.frames = append(vm.frames, frame{})
			}
			f := &vm.frames[len(vm.frames)-1]
			f.funcIndex = callee
			f.retPC = int(op.XPC)
			f.slots = vm.regs[nb : nb+crf.NumSlots]
			f.stack = nil
			f.base = nb
			f.rret = rpc + 1
			f.rres = op.D
			if vm.marked(callee) {
				vm.markedDepth++
			}
			fi = callee
			base = nb
			code = crf.Code
			rpc = 0
		case compiler.RMove:
			regs[base+op.A] = regs[base+op.B]
			rpc++
		case compiler.RConst:
			regs[base+op.A] = Value{I: op.Imm}
			rpc++
		case compiler.RLoadG:
			regs[base+op.A] = vm.globals[op.B]
			rpc++
		case compiler.RStoreG:
			if op.B < 0 {
				vm.globals[op.A] = Value{I: op.Imm}
			} else {
				vm.globals[op.A] = regs[base+op.B]
			}
			rpc++
		case compiler.RBin, compiler.RBinI:
			x := regs[base+op.B]
			var y Value
			if op.Code == compiler.RBin {
				y = regs[base+op.C]
			} else {
				y = Value{I: op.Imm}
			}
			var v Value
			switch lang.BinaryOp(op.D) {
			case lang.BinAdd:
				v = Value{I: x.I + y.I}
			case lang.BinSub:
				v = Value{I: x.I - y.I}
			case lang.BinMul:
				v = Value{I: x.I * y.I}
			case lang.BinEq:
				v = boolVal(x.I == y.I && x.Ptr == y.Ptr)
			case lang.BinNeq:
				v = boolVal(x.I != y.I || x.Ptr != y.Ptr)
			case lang.BinLt:
				v = boolVal(x.I < y.I)
			case lang.BinLe:
				v = boolVal(x.I <= y.I)
			case lang.BinGt:
				v = boolVal(x.I > y.I)
			case lang.BinGe:
				v = boolVal(x.I >= y.I)
			default: // div, mod, illegal
				var err error
				v, err = vm.regBinop(op, lang.BinaryOp(op.D), x, y)
				if err != nil {
					vm.ticks, vm.InstrCount = ticks, instr
					return err
				}
			}
			regs[base+op.A] = v
			rpc++
		case compiler.RUn:
			x := regs[base+op.B]
			if op.D == int32(lang.UnaryNot) {
				regs[base+op.A] = boolVal(x.I == 0 && !x.Ptr)
			} else {
				regs[base+op.A] = Value{I: -x.I}
			}
			rpc++
		case compiler.RJump:
			rpc = op.A
		case compiler.RBrZ, compiler.RBrNZ:
			var v Value
			if op.B < 0 {
				v = Value{I: op.Imm}
			} else {
				v = regs[base+op.B]
			}
			taken := v.I == 0 && !v.Ptr
			if op.Code == compiler.RBrNZ {
				taken = !taken
			}
			if onBranch != nil {
				vm.ticks, vm.InstrCount = ticks, instr
				onBranch(int(op.XPC), taken)
			}
			if taken {
				bt[fi]++
				rpc = op.A
			} else {
				rpc++
			}
		case compiler.RBrCmp, compiler.RBrCmpI:
			x := regs[base+op.B]
			var y Value
			if op.Code == compiler.RBrCmp {
				y = regs[base+op.C]
			} else {
				y = Value{I: op.Imm}
			}
			taken := regCmp(lang.BinaryOp(op.D&0xffff), x, y)
			if op.D>>16 != 0 {
				taken = !taken
			}
			if onBranch != nil {
				vm.ticks, vm.InstrCount = ticks, instr
				onBranch(int(op.XPC), taken)
			}
			if taken {
				bt[fi]++
				rpc = op.A
			} else {
				rpc++
			}
		case compiler.RRet:
			var v Value
			if op.A < 0 {
				v = Value{I: op.Imm}
			} else {
				v = regs[base+op.A]
			}
			bt[fi]++
			if cfg.OnReturn != nil {
				vm.ticks, vm.InstrCount = ticks, instr
				cfg.OnReturn(fi, v)
			}
			if vm.marked(fi) {
				vm.markedDepth--
			}
			nf := len(vm.frames) - 1
			rret, rres := vm.frames[nf].rret, vm.frames[nf].rres
			vm.frames = vm.frames[:nf]
			if nf == 0 {
				vm.result = v
				vm.halted = true
				vm.pc = int(op.XPC)
				vm.ticks, vm.InstrCount = ticks, instr
				return nil
			}
			caller := &vm.frames[nf-1]
			fi = caller.funcIndex
			base = caller.base
			code = funcs[fi].Code
			regs[base+rres] = v
			rpc = rret
		case compiler.RHalt:
			vm.halted = true
			vm.pc = int(op.XPC)
			vm.ticks, vm.InstrCount = ticks, instr
			return nil
		case compiler.RWork:
			var n int64
			if op.B < 0 {
				n = op.Imm
			} else {
				n = regs[base+op.B].I
			}
			if n < 0 {
				n = 0
			}
			vm.pc = int(op.XPC)
			if noHooks {
				ticks += n
			} else {
				vm.ticks, vm.InstrCount = ticks, instr
				vm.charge(n)
				ticks, instr = vm.ticks, vm.InstrCount
			}
			regs[base+op.A] = Value{I: n}
			rpc++
		case compiler.RBlockB:
			var n int64
			if op.B < 0 {
				n = op.Imm
			} else {
				n = regs[base+op.B].I
			}
			if n < 0 {
				n = 0
			}
			vm.pc = int(op.XPC)
			if noHooks {
				vm.blocked += n
			} else {
				vm.ticks, vm.InstrCount = ticks, instr
				vm.chargeBlocked(n)
				ticks, instr = vm.ticks, vm.InstrCount
			}
			regs[base+op.A] = Value{I: n}
			rpc++
		case compiler.RRand:
			var n int64
			if op.B < 0 {
				n = op.Imm
			} else {
				n = regs[base+op.B].I
			}
			if n <= 0 {
				regs[base+op.A] = Value{I: 0}
			} else {
				regs[base+op.A] = Value{I: int64(vm.xorshift() % uint64(n))}
			}
			rpc++
		case compiler.RInput:
			var k int64
			if op.B < 0 {
				k = op.Imm
			} else {
				k = regs[base+op.B].I
			}
			var v int64
			if k >= 0 && k < int64(len(cfg.Inputs)) {
				v = cfg.Inputs[k]
			}
			regs[base+op.A] = Value{I: v}
			rpc++
		case compiler.RNow:
			regs[base+op.A] = Value{I: ticks + vm.blocked}
			rpc++
		case compiler.RAlloc:
			vm.nextPtr += 16
			regs[base+op.A] = Value{I: 1<<40 + vm.nextPtr, Ptr: true}
			rpc++
		case compiler.ROut:
			var v Value
			if op.B < 0 {
				v = Value{I: op.Imm}
			} else {
				v = regs[base+op.B]
			}
			vm.Outputs = append(vm.Outputs, v.I)
			regs[base+op.A] = v
			rpc++
		case compiler.RAbs:
			var v int64
			if op.B < 0 {
				v = op.Imm
			} else {
				v = regs[base+op.B].I
			}
			if v < 0 {
				v = -v
			}
			regs[base+op.A] = Value{I: v}
			rpc++
		case compiler.RMin, compiler.RMax:
			var x, y int64
			if op.B < 0 {
				x = op.Imm
			} else {
				x = regs[base+op.B].I
			}
			if op.C < 0 {
				y = op.Imm
			} else {
				y = regs[base+op.C].I
			}
			if op.Code == compiler.RMin {
				if y < x {
					x = y
				}
			} else if y > x {
				x = y
			}
			regs[base+op.A] = Value{I: x}
			rpc++
		case compiler.RSpawn:
			sargs := make([]Value, len(op.Args))
			for i, a := range op.Args {
				if a < 0 {
					sargs[i] = Value{I: consts[^a]}
				} else {
					sargs[i] = regs[base+a]
				}
			}
			req := ChildRequest{
				FuncIndex: int(sargs[0].I),
				Args:      sargs[1:],
				Globals:   vm.Globals(),
			}
			vm.Children = append(vm.Children, req)
			regs[base+op.A] = Value{I: int64(len(vm.Children))}
			rpc++
		default:
			vm.ticks, vm.InstrCount = ticks, instr
			return vm.regTrap(op.XPC, fmt.Sprintf("illegal register opcode %v", op.Code))
		}
	}
}
