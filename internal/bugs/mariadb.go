package bugs

import "vprof/internal/analysis"

// MariaDB workloads: b1–b5 of Table 1 plus the unresolved issues u2
// (MDEV-16289) and u3 (MDEV-17878) of Table 4.

func init() {
	register(&Workload{
		ID:          "b1",
		Noise:       noisePack(mariadbNoise, 12, 24000),
		Ticket:      "MDEV-21826",
		App:         "MariaDB",
		Description: "Server crash recovery loops on the same log sequence number (LSN) forever",
		Pattern:     analysis.PatternWrongConstraint,
		SourceFile:  "storage/innobase/log/log0recv.vp",
		// recv_sys_init sets recv_n_pool_free_frames to a third of the
		// buffer pool; recv_group_scan_log_recs multiplies it by the
		// instance count, driving available_mem to zero, so scanning
		// never finishes and recovery keeps re-applying the same LSNs.
		Source: `
var recv_n_pool_free_frames;
var srv_page_size = 8;
var srv_buf_pool_instances = 3;
var log_end_batch = 40;

extfunc os_file_read(n) {
	work(n);
	return n;
}

func buf_pool_get_n_pages() {
	return input(0);
}

func recv_sys_init() {
	recv_n_pool_free_frames = buf_pool_get_n_pages() / 3;
}

func log_read_seg(batch) {
	os_file_read(40);
	return batch;
}

func recv_parse_log_recs(available_mem, batch) {
	work(150);
	if (available_mem <= 0) {
		return false;
	}
	if (batch >= log_end_batch) {
		return true;
	}
	return false;
}

func recv_apply_hashed_log_recs() {
	work(450);
	return 0;
}

func recv_scan_log_recs(available_mem, batch) {
	if (recv_parse_log_recs(available_mem, batch)) {
		return true;
	}
	return false;
}

func recv_group_scan_log_recs(checkpoint_lsn) {
	var available_mem = srv_page_size * (buf_pool_get_n_pages() - recv_n_pool_free_frames * srv_buf_pool_instances);
	var batch = checkpoint_lsn;
	while (!recv_scan_log_recs(available_mem, batch)) {
		recv_apply_hashed_log_recs();
		log_read_seg(batch);
		batch = batch + 1;
		if (batch > log_end_batch) {
			batch = 0;
		}
	}
	return batch;
}

func trx_lists_init_at_db_start() {
	work(800);
	return 0;
}

func buf_flush_sync() {
	work(600);
	return 0;
}

func main() {
	recv_sys_init();
	recv_group_scan_log_recs(0);
	trx_lists_init_at_db_start();
	buf_flush_sync();
}
`,
		// input(0): buffer pool pages. 40 leaves one page of headroom
		// (available_mem > 0); 90 is divisible by 3, so available_mem
		// collapses to zero.
		NormalInputs: []int64{40},
		BuggyInputs:  []int64{90},
		RootFunc:     "recv_group_scan_log_recs",
		FixMarker:    "srv_buf_pool_instances);",
		Notes: "Paper: gprof ranks recv_apply_hashed_log_recs first and the root cause 454th; " +
			"vProf promotes the root cause to 1st via available_mem/recv_n_pool_free_frames.",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "454th", "perf": "32nd", "perf-PT": "32nd",
			"COZ": "NR", "stat-debug": "4th", "hist-disc": "447th",
		},
		PaperBBDist:     []float64{5, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b2",
		Noise:       noisePack(mariadbNoise, 4, 8000),
		Ticket:      "MDEV-23399",
		App:         "MariaDB",
		Description: "Performance drops when the size of data set is larger than the size of buffer pool",
		Pattern:     analysis.PatternScalability,
		SourceFile:  "storage/innobase/buf/buf0lru.vp",
		// Figure 5: when the buffer pool is full, buf_LRU_get_free_block
		// triggers a linear scan of the whole LRU list under
		// buf_pool.mutex.
		Source: `
var lru_len;
var free_len;
var miss_permille;

func fil_io() {
	work(280);
	return 0;
}

func page_process(r) {
	work(45);
	return r;
}

func buf_flush_ready(b) {
	work(3);
	return b % 149 == 148;
}

func buf_LRU_get_free_only() {
	work(4);
	if (free_len > 0) {
		free_len = free_len - 1;
		return 1;
	}
	return 0;
}

func buf_LRU_scan_chunk(start, len) {
	var hits = 0;
	for (var c = 0; c < len; c++) {
		if (buf_flush_ready(start + c)) {
			hits++;
			free_len = free_len + 1;
		}
	}
	return hits;
}

func buf_LRU_scan_and_free_block(scan_all) {
	var scanned = 0;
	var limit = 100;
	if (scan_all > 0) {
		limit = lru_len;
	}
	var freed = 0;
	while (scanned < limit && freed < 8) {
		freed = freed + buf_LRU_scan_chunk(scanned, 100);
		scanned = scanned + 100;
	}
	return freed;
}

func buf_LRU_get_free_block() {
	var n_iterations = 0;
	var block = 0;
	while (block == 0) {
		block = buf_LRU_get_free_only();
		if (block == 0) {
			buf_LRU_scan_and_free_block(n_iterations);
			n_iterations++;
		}
	}
	return block;
}

func buf_page_get(k) {
	work(10);
	if (rand(1000) < miss_permille) {
		fil_io();
		buf_LRU_get_free_block();
	}
	return k;
}

func srv_tpcc_worker(reads) {
	for (var i = 0; i < reads; i++) {
		buf_page_get(i);
		page_process(i);
	}
	return 0;
}

func main() {
	lru_len = input(0);
	free_len = input(1);
	miss_permille = input(2);
	srv_tpcc_worker(input(3));
}
`,
		// Normal: data fits — the free list absorbs the few misses and
		// the LRU scan never runs. Buggy: the data set exceeds the pool;
		// every miss falls through the 100-block fast path and scans the
		// full LRU list (buf_flush_ready frees a block only deep into
		// it).
		NormalInputs: []int64{1200, 60, 60, 400},
		BuggyInputs:  []int64{1200, 0, 350, 400},
		RootFunc:     "buf_LRU_scan_and_free_block",
		FixMarker:    "limit = lru_len;",
		Notes: "Paper: throughput decays as every free-block request scans ~1.6M LRU entries while " +
			"holding buf_pool.mutex; the scanned induction variable reaches 134468.",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "5th", "perf": "2nd", "perf-PT": "2nd",
			"COZ": "NR", "stat-debug": "12th", "hist-disc": "1st",
		},
		PaperBBDist:     []float64{7, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b3",
		Ticket:      "MDEV-13498",
		App:         "MariaDB",
		Description: "Deleting a table with CASCADE constraint is very slow",
		Pattern:     analysis.PatternMissingConstraint,
		SourceFile:  "storage/innobase/row/row0upd.vp",
		// Every deleted row re-checks all foreign keys by scanning the
		// child table from the start, never skipping rows already
		// deleted: each check gets slower as the delete progresses.
		Source: `
var n_rows;

func btr_cur_search(pos) {
	work(9);
	return pos;
}

func row_purge_record(r) {
	work(20);
	return r;
}

func fk_scan_child(row) {
	var pos = 0;
	while (pos < row * 3) {
		btr_cur_search(pos);
		pos++;
	}
	return 0;
}

func row_upd_check_references(row) {
	for (var fk = 0; fk < 3; fk++) {
		fk_scan_child(row);
	}
	return 0;
}

func row_delete_row(row) {
	row_purge_record(row);
	row_upd_check_references(row);
	return 0;
}

func row_drop_table_for_mysql() {
	for (var row = 0; row < n_rows; row++) {
		row_delete_row(row);
	}
	return 0;
}

func main() {
	n_rows = input(0);
	row_drop_table_for_mysql();
}
`,
		NormalInputs: []int64{12},
		BuggyInputs:  []int64{100},
		RootFunc:     "row_upd_check_references",
		FixMarker:    "for (var fk = 0; fk < 3; fk++)",
		Notes: "Paper: vProf ranked the root cause 1st but reported no basic block (DWARF could not " +
			"map the anomalous sample's PC); COZ also found it (1st).",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "2nd", "perf": "3rd", "perf-PT": "6th",
			"COZ": "1st", "stat-debug": "30th", "hist-disc": "177th",
		},
		PaperBBDist:     nil, // n/a in the paper
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b4",
		Noise:       noisePack(mariadbNoise, 10, 18000),
		Ticket:      "MDEV-15333",
		App:         "MariaDB",
		Description: "Slow start-up even when .ibd file validation is off",
		Pattern:     analysis.PatternWrongConstraint,
		SourceFile:  "storage/innobase/dict/dict0load.vp",
		// The validation gate wrongly also fires when force-recovery
		// state is set, so startup validates every tablespace although
		// the user disabled validation.
		Source: `
var srv_file_check = 0;
var srv_force_recovery;
var n_tables;

func fil_ibd_open(t) {
	work(380);
	return t;
}

func dict_load_table(t) {
	work(25);
	return t;
}

func validate_all_tablespaces() {
	for (var v = 0; v < n_tables; v++) {
		fil_ibd_open(v);
	}
	return 0;
}

func dict_check_tablespaces() {
	var validate = srv_file_check == 1 || srv_force_recovery > 0;
	for (var t = 0; t < n_tables; t++) {
		dict_load_table(t);
	}
	if (validate) {
		validate_all_tablespaces();
	}
	return 0;
}

func srv_start() {
	work(700);
	dict_check_tablespaces();
	work(500);
	return 0;
}

func main() {
	srv_force_recovery = input(1);
	n_tables = input(0);
	srv_start();
}
`,
		// Same table count; only the recovery flag differs, so the wrong
		// constraint is the sole source of extra cost.
		NormalInputs: []int64{900, 0},
		BuggyInputs:  []int64{900, 1},
		RootFunc:     "dict_check_tablespaces",
		FixMarker:    "if (validate)",
		Notes:        "Paper: vProf 3rd with bb-dist (9,0) and correct Wrong Constraint classification.",
		PaperRanks: map[string]string{
			"vprof": "3rd", "gprof": "21st", "perf": "9th", "perf-PT": "5th",
			"COZ": "NR", "stat-debug": "18th", "hist-disc": "31st",
		},
		PaperBBDist:     []float64{9, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b5",
		Noise:       noisePack(mariadbNoise, 8, 10000),
		Ticket:      "MDEV-17933",
		App:         "MariaDB",
		Description: "Checking the server status takes >10 seconds with 3M tables",
		Pattern:     analysis.PatternScalability,
		SourceFile:  "sql/sql_show.vp",
		// SHOW STATUS walks every open table; ut_delay (mutex backoff)
		// is inherently costly in both runs and distracts cost-only
		// profilers.
		Source: `
var n_open_tables;

func ut_delay(n) {
	work(n);
	return n;
}

func collect_table_stats(t) {
	work(8);
	return t;
}

func sum_status_chunk(start, len) {
	for (var c = 0; c < len; c++) {
		collect_table_stats(start + c);
	}
	return len;
}

func calc_sum_of_all_status() {
	var idx = 0;
	while (idx < n_open_tables) {
		sum_status_chunk(idx, 64);
		ut_delay(300);
		idx = idx + 64;
	}
	return idx;
}

func handle_show_status() {
	work(400);
	calc_sum_of_all_status();
	work(200);
	return 0;
}

func main() {
	n_open_tables = input(0);
	handle_show_status();
}
`,
		NormalInputs: []int64{600},
		BuggyInputs:  []int64{18000},
		RootFunc:     "calc_sum_of_all_status",
		FixMarker:    "while (idx < n_open_tables)",
		Notes: "Paper: vProf ranks ut_delay first but with a high discount ratio (inherently costly " +
			"in both runs); the root cause is 4th with bb-dist (0,0).",
		PaperRanks: map[string]string{
			"vprof": "4th", "gprof": "13th", "perf": "4th", "perf-PT": "9th",
			"COZ": "NR", "stat-debug": "566th", "hist-disc": "22nd",
		},
		PaperBBDist:     []float64{0, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "u2",
		Ticket:      "MDEV-16289",
		App:         "MariaDB",
		Description: "Query runs unexpectedly slow for some timezone settings (unresolved > 4 years)",
		Pattern:     analysis.PatternNC, // turned out not to be a bug
		Unresolved:  true,
		SourceFile:  "storage/innobase/row/row0sel.vp",
		// Different timezone settings shift the timestamp window, so the
		// "slow" query simply matches many more records: the temporary
		// clust_index/result_rec storage is only populated then.
		Source: `
func btr_search_row(r) {
	work(35);
	return r;
}

func stash_record(ci, rr) {
	work(90);
	return 0;
}

func row_search_mvcc(lo, hi) {
	var fetched = 0;
	for (var r = 0; r < 1200; r++) {
		btr_search_row(r);
		if (r >= lo && r < hi) {
			var clust_index = alloc();
			var result_rec = alloc();
			stash_record(clust_index, result_rec);
			fetched++;
		}
	}
	return fetched;
}

func exec_select() {
	work(300);
	row_search_mvcc(input(0), input(1));
	return 0;
}

func main() {
	exec_select();
}
`,
		// Normal: the fast timezone window matches nothing; buggy: the
		// shifted window matches 700 records.
		NormalInputs: []int64{0, 0},
		BuggyInputs:  []int64{0, 700},
		RootFunc:     "row_search_mvcc",
		FixMarker:    "var clust_index = alloc();",
		Notes: "Paper: row_search_mvcc ranked 1st with a zero discount because clust_index/result_rec " +
			"have >30 samples in the slow query and none in the fast one; the diagnosis showed the " +
			"two timezones issue different queries — correct behavior, not a bug (5 person-hours).",
	})

	register(&Workload{
		ID:          "u3",
		Ticket:      "MDEV-17878",
		App:         "MariaDB",
		Description: "Query plan search for a many-join SELECT takes forever at 100% CPU (unresolved > 4 years)",
		Pattern:     analysis.PatternWrongConstraint,
		Unresolved:  true,
		SourceFile:  "sql/opt_subselect.vp",
		// The buggy version defaults optimizer_use_condition_selectivity
		// to 1, disabling the cost-based prune, so the join-order search
		// explores the full factorial space.
		Source: `
var optimizer_use_condition_selectivity = 1;

func best_access_path(j) {
	work(120);
	return j;
}

func best_extension_by_limited_search(n_joins, depth, best_cost) {
	var explored = 0;
	for (var j = 0; j < n_joins; j++) {
		best_access_path(j);
		explored++;
		var cost = depth * 100 + j * 10;
		if (optimizer_use_condition_selectivity >= 2 && cost > best_cost) {
			return explored;
		}
		if (depth < 4) {
			best_extension_by_limited_search(n_joins, depth + 1, best_cost);
		}
	}
	return explored;
}

func make_join_plan() {
	best_extension_by_limited_search(input(0), 0, 150);
	return 0;
}

func main() {
	make_join_plan();
}
`,
		// The normal baseline is a different server version whose
		// default enables the prune (the paper's third attempt at a
		// normal run: same dataset, different version).
		NormalSource: `
var optimizer_use_condition_selectivity = 4;

func best_access_path(j) {
	work(120);
	return j;
}

func best_extension_by_limited_search(n_joins, depth, best_cost) {
	var explored = 0;
	for (var j = 0; j < n_joins; j++) {
		best_access_path(j);
		explored++;
		var cost = depth * 100 + j * 10;
		if (optimizer_use_condition_selectivity >= 2 && cost > best_cost) {
			return explored;
		}
		if (depth < 4) {
			best_extension_by_limited_search(n_joins, depth + 1, best_cost);
		}
	}
	return explored;
}

func make_join_plan() {
	best_extension_by_limited_search(input(0), 0, 150);
	return 0;
}

func main() {
	make_join_plan();
}
`,
		NormalInputs: []int64{6},
		BuggyInputs:  []int64{6},
		RootFunc:     "best_extension_by_limited_search",
		FixMarker:    "optimizer_use_condition_selectivity >= 2",
		Notes: "Paper: with a different-version normal run, the root cause ranks 1st and the anomalous " +
			"conditional variable is optimizer_use_condition_selectivity, whose default differs across " +
			"versions (12 person-hours; the paper narrates the label as Missing Constraint, though its " +
			"own rule 3 maps an anomalous conditional variable to Wrong Constraint, which is what this " +
			"implementation reports).",
	})
}
