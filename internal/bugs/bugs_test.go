package bugs_test

import (
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/bugs"
)

func TestRegistryComplete(t *testing.T) {
	all := bugs.All()
	if len(all) != 15 {
		t.Fatalf("have %d resolved workloads, want 15", len(all))
	}
	for i, w := range all {
		wantID := []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10", "b11", "b12", "b13", "b14", "b15"}[i]
		if w.ID != wantID {
			t.Errorf("workload %d id = %s, want %s", i, w.ID, wantID)
		}
	}
	un := bugs.UnresolvedIssues()
	if len(un) != 3 {
		t.Fatalf("have %d unresolved workloads, want 3", len(un))
	}
	if bugs.ByID("b1") == nil || bugs.ByID("u1") == nil || bugs.ByID("zzz") != nil {
		t.Error("ByID lookups broken")
	}
}

func TestAllWorkloadsCompile(t *testing.T) {
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		if _, err := w.Build(); err != nil {
			t.Errorf("%s: %v", w.ID, err)
		}
	}
}

func TestAllWorkloadsHaveGroundTruth(t *testing.T) {
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		b, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", w.ID, err)
		}
		if b.Prog.FuncNamed(w.RootFunc) == nil {
			t.Errorf("%s: root function %q not in program", w.ID, w.RootFunc)
		}
		if _, ok := b.FixBlock(); !ok {
			t.Errorf("%s: fix marker %q not resolvable to a block", w.ID, w.FixMarker)
		}
	}
}

func TestWorkloadsBuggySlower(t *testing.T) {
	// Sanity: the buggy execution must consume significantly more CPU
	// than the normal one (that is what makes it a performance issue).
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			b, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			_, nRes := b.ProfileNormal(0)
			_, bRes := b.ProfileBuggy(0)
			nT, bT := nRes.TotalTicks(), bRes.TotalTicks()
			// b13's real-world regression is ~1.5x ("50% slower");
			// every other workload is far beyond this.
			if bT*10 < nT*14 {
				t.Errorf("buggy %d ticks vs normal %d: not a performance regression", bT, nT)
			}
		})
	}
}

// TestVProfTop5 is the headline reproduction check: vProf ranks the root
// cause within the top five for every resolved issue (Table 3).
func TestVProfTop5(t *testing.T) {
	for _, w := range bugs.All() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			b, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := b.Analyze(analysis.DefaultParams(), 5)
			if err != nil {
				t.Fatal(err)
			}
			rank := rep.Rank(w.RootFunc)
			if rank == 0 || rank > 5 {
				t.Errorf("%s (%s): vProf rank = %d, want 1..5\n%s",
					w.ID, w.Ticket, rank, rep.Render(8))
			}
		})
	}
}

// TestVProfClassification checks the bug-pattern column of Table 3: the
// pattern must match ground truth for the 13 classified cases, and must be
// NC for b13/b15.
func TestVProfClassification(t *testing.T) {
	for _, w := range bugs.All() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			b, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := b.Analyze(analysis.DefaultParams(), 5)
			if err != nil {
				t.Fatal(err)
			}
			fr := rep.Func(w.RootFunc)
			if fr == nil {
				t.Fatalf("root cause not in report")
			}
			if w.PaperClassified {
				if fr.Pattern != w.Pattern {
					t.Errorf("%s: pattern = %v, want %v (top var: %+v)",
						w.ID, fr.Pattern, w.Pattern, fr.TopVariable)
				}
			} else if fr.Pattern != analysis.PatternNC {
				t.Errorf("%s: pattern = %v, want NC (paper could not classify)", w.ID, fr.Pattern)
			}
		})
	}
}

// TestBaselinesWorseShape checks Table 3's shape: for each issue, at most a
// couple of baseline tools match vProf's rank, and the known failure modes
// (COZ crash/child) reproduce.
func TestBaselineFailureModes(t *testing.T) {
	for _, id := range []string{"b7", "b8", "b10", "b14", "b15"} {
		w := bugs.ByID(id)
		b, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		res := baselines.Coz(b.Target())
		switch id {
		case "b7":
			if res.Failure != baselines.FailCrash {
				t.Errorf("%s: COZ failure = %q, want crash", id, res.Failure)
			}
		default:
			if res.Failure != baselines.FailChild {
				t.Errorf("%s: COZ failure = %q, want child", id, res.Failure)
			}
		}
	}
}

func TestGprofMisledOnB1(t *testing.T) {
	b, err := bugs.ByID("b1").Build()
	if err != nil {
		t.Fatal(err)
	}
	res := baselines.Gprof(b.Target())
	rootRank := res.Rank("recv_group_scan_log_recs")
	applyRank := res.Rank("recv_apply_hashed_log_recs")
	if applyRank != 1 {
		t.Errorf("gprof should rank recv_apply_hashed_log_recs 1st, got %d", applyRank)
	}
	if rootRank != 0 && rootRank <= applyRank {
		t.Errorf("gprof rank of root (%d) should be worse than costly callee (%d)", rootRank, applyRank)
	}
}

func TestB14GprofMissesChild(t *testing.T) {
	b, err := bugs.ByID("b14").Build()
	if err != nil {
		t.Fatal(err)
	}
	if r := baselines.Gprof(b.Target()).Rank("find_param_referent"); r != 0 {
		t.Errorf("gprof ranked child-process root cause %d, want NR", r)
	}
	if r := baselines.Perf(b.Target()).Rank("find_param_referent"); r == 0 {
		t.Error("perf (system-wide) should rank the child-process root cause")
	}
}
