package bugs

import "vprof/internal/analysis"

// Apache httpd workloads: b6–b10 of Table 1.

func init() {
	register(&Workload{
		ID:          "b6",
		Noise:       noisePack(httpdNoise, 10, 16000),
		Ticket:      "HTTPD-62668",
		App:         "Apache httpd",
		Description: "Output filter endless loop so server process never terminates",
		Pattern:     analysis.PatternMissingConstraint,
		SourceFile:  "server/util_filter.vp",
		// An empty (broken) bucket is never consumed, so the output
		// filter spins until the shutdown deadline; the listener then
		// waits out its full request timeout — the paper's side-effect
		// false positive that vProf ranks first.
		Source: `
var request_done = 0;
var shutdown_deadline;

extfunc apr_poll(n) {
	work(n);
	return n;
}

func apr_bucket_read(b) {
	work(80);
	return b;
}

func ap_filter_output(nbuckets, broken_bucket) {
	var remaining = nbuckets;
	while (remaining > 0) {
		apr_bucket_read(remaining);
		if (broken_bucket > 0 && remaining == broken_bucket) {
			if (now() > shutdown_deadline) {
				return remaining;
			}
		} else {
			remaining--;
		}
	}
	request_done = 1;
	return 0;
}

func listener_thread() {
	var polls = 0;
	while (request_done == 0 && polls < 300) {
		apr_poll(150);
		polls++;
	}
	return polls;
}

func ap_process_request(nbuckets) {
	work(300);
	ap_filter_output(nbuckets, input(1));
	work(100);
	return 0;
}

func main() {
	shutdown_deadline = input(2);
	ap_process_request(input(0));
	listener_thread();
}
`,
		// input(0)=buckets, input(1)=index of the broken empty bucket
		// (0 = none), input(2)=shutdown deadline in ticks.
		NormalInputs: []int64{40, 0, 500000},
		BuggyInputs:  []int64{40, 20, 320000},
		RootFunc:     "ap_filter_output",
		FixMarker:    "remaining == broken_bucket",
		Notes: "Paper: vProf ranks listener_thread first (it waits for the request timeout in the buggy " +
			"run but returns immediately normally — a hard-to-avoid side-effect false positive) and the " +
			"root cause 5th.",
		PaperRanks: map[string]string{
			"vprof": "5th", "gprof": "36th", "perf": "13th", "perf-PT": "13th",
			"COZ": "NR", "stat-debug": "NR", "hist-disc": "15th",
		},
		PaperBBDist:     []float64{19, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b7",
		Noise:       noisePack(httpdNoise, 12, 12000),
		Ticket:      "HTTPD-54852",
		App:         "Apache httpd",
		Description: "Gracefully restart service with MPM workers takes long time",
		Pattern:     analysis.PatternMissingConstraint,
		SourceFile:  "server/mpm_unix.vp",
		CrashesCOZ:  true,
		// Figure 4: ap_mpm_pod_killpg keeps calling dummy_connection for
		// every configured slot even after all children have exited;
		// each such call polls to its timeout.
		Source: `
var server_limit;
var active_children;

func dummy_connection(pod) {
	work(60);
	if (active_children > 0) {
		active_children = active_children - 1;
		return 0;
	}
	work(1800);
	return 1;
}

func ap_mpm_pod_killpg(pod, num) {
	for (var i = 0; i < num; i++) {
		dummy_connection(pod);
	}
	return 0;
}

func ap_reclaim_child_processes() {
	work(500);
	return 0;
}

func ap_graceful_restart() {
	var pod = alloc();
	ap_mpm_pod_killpg(pod, server_limit);
	ap_reclaim_child_processes();
	return 0;
}

func main() {
	server_limit = input(0);
	active_children = input(1);
	ap_graceful_restart();
}
`,
		// input(0)=ServerLimit slots, input(1)=children still alive.
		NormalInputs: []int64{64, 64},
		BuggyInputs:  []int64{64, 3},
		RootFunc:     "ap_mpm_pod_killpg",
		FixMarker:    "for (var i = 0; i < num; i++)",
		Notes: "Paper: vProf ranks dummy_connection above the root cause, but the callee relationship " +
			"still points at ap_mpm_pod_killpg (3rd); COZ crashed on this workload.",
		PaperRanks: map[string]string{
			"vprof": "3rd", "gprof": "182nd", "perf": "1024th", "perf-PT": "1024th",
			"COZ": "crash", "stat-debug": "7th", "hist-disc": "181st",
		},
		PaperBBDist:     []float64{0, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b8",
		Ticket:      "HTTPD-62318",
		App:         "Apache httpd",
		Description: "Health check is executed more often than configured interval",
		Pattern:     analysis.PatternWrongConstraint,
		SourceFile:  "modules/proxy/mod_proxy_hcheck.vp",
		// The interval comparison divides milliseconds by 1000, so any
		// sub-second interval collapses to zero and the probe runs on
		// every watchdog round. Health checks run in child processes
		// (plus one light parent round), reproducing COZ's child-side
		// blindness while leaving gprof's parent view intact.
		Source: `
var hc_interval_ms;

func hc_check(backend) {
	work(300);
	return backend;
}

func other_watchdog_work() {
	work(200);
	return 0;
}

func hc_watchdog_callback(rounds) {
	var threshold = hc_interval_ms / 1000;
	var last = 0;
	for (var t = 0; t < rounds; t++) {
		other_watchdog_work();
		if (t - last >= threshold) {
			hc_check(t);
			last = t;
		}
	}
	return 0;
}

func hc_child(rounds) {
	hc_watchdog_callback(rounds);
	return 0;
}

func main() {
	hc_interval_ms = input(0);
	hc_watchdog_callback(input(1) / 20);
	spawn("hc_child", input(1));
	spawn("hc_child", input(1));
}
`,
		// input(0)=configured interval in ms, input(1)=watchdog rounds.
		// 30000ms behaves sanely (threshold 30 rounds); 500ms collapses
		// to zero and probes every round.
		NormalInputs: []int64{30000, 600},
		BuggyInputs:  []int64{500, 600},
		RootFunc:     "hc_watchdog_callback",
		FixMarker:    "t - last >= threshold",
		Notes:        "Paper: both vProf and gprof rank the root cause 1st; COZ fails (root cause in child).",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "1st", "perf": "6th", "perf-PT": "7th",
			"COZ": "child", "stat-debug": "3rd", "hist-disc": "6th",
		},
		PaperBBDist:     []float64{0, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b9",
		Noise:       noisePack(httpdNoise, 9, 8000),
		Ticket:      "HTTPD-64066",
		App:         "Apache httpd",
		Description: "Slow startup/reload when many vhosts are configured",
		Pattern:     analysis.PatternScalability,
		SourceFile:  "server/vhost.vp",
		// Duplicate-vhost detection compares every pair of vhosts:
		// quadratic in the configuration size.
		Source: `
var n_vhosts;

func strcasecmp_vhost(a, b) {
	work(14);
	return a == b;
}

func read_config_entry(v) {
	work(40);
	return v;
}

func ap_read_config() {
	for (var v = 0; v < n_vhosts; v++) {
		read_config_entry(v);
	}
	return 0;
}

func ap_fini_vhost_config() {
	var dupes = 0;
	for (var i = 0; i < n_vhosts; i++) {
		for (var j = 0; j < i; j++) {
			if (strcasecmp_vhost(i, j)) {
				dupes++;
			}
		}
	}
	return dupes;
}

func ap_run_post_config() {
	work(800);
	return 0;
}

func main() {
	n_vhosts = input(0);
	ap_read_config();
	ap_fini_vhost_config();
	ap_run_post_config();
}
`,
		NormalInputs: []int64{48},
		BuggyInputs:  []int64{168},
		RootFunc:     "ap_fini_vhost_config",
		FixMarker:    "for (var j = 0; j < i; j++)",
		Notes:        "Paper: vProf 2nd with bb-dist (21,0); the string comparison callee tops raw profiles.",
		PaperRanks: map[string]string{
			"vprof": "2nd", "gprof": "11th", "perf": "28th", "perf-PT": "28th",
			"COZ": "NR", "stat-debug": "9th", "hist-disc": "11th",
		},
		PaperBBDist:     []float64{21, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b10",
		Noise:       noisePack(httpdNoise, 4, 8000),
		Ticket:      "HTTPD-52914",
		App:         "Apache httpd",
		Description: "Workers eat 60-100% CPU even though no client sent requests",
		Pattern:     analysis.PatternWrongConstraint,
		SourceFile:  "server/mpm/event/event.vp",
		// A keep-alive flag wrongly zeroes the poll timeout, so idle
		// worker listeners spin instead of blocking. Workers are child
		// processes; the parent runs one brief listener round.
		Source: `
var queue_timeout;
var keepalive_set;

func apr_pollset_poll(timeout, ready) {
	if (ready > 0) {
		work(12);
		return 1;
	}
	if (timeout > 0) {
		work(100);
		return 1;
	}
	work(8);
	return 0;
}

func process_connection(c) {
	work(300);
	return c;
}

func listener_thread(n_events) {
	var handled = 0;
	var next_event = 600;
	while (handled < n_events) {
		var timeout = queue_timeout;
		if (keepalive_set > 0) {
			timeout = 0;
		}
		var ready = 0;
		if (now() >= next_event) {
			ready = 1;
		}
		var got = apr_pollset_poll(timeout, ready);
		if (got > 0) {
			process_connection(handled);
			handled++;
			next_event = now() + 600;
		}
	}
	return handled;
}

func worker_main(n_events) {
	listener_thread(n_events);
	return 0;
}

func main() {
	queue_timeout = input(0);
	keepalive_set = input(1);
	spawn("worker_main", input(2));
	spawn("worker_main", input(2));
	spawn("worker_main", input(2));
	listener_thread(input(2) / 20);
}
`,
		// input(0)=poll timeout, input(1)=keep-alive flag, input(2)=
		// events per worker before shutdown. A blocking poll sleeps
		// off-CPU until its event arrives (a CPU profiler sees only the
		// syscall overhead); a zero-timeout poll returns immediately,
		// so between events idle workers spin through dozens of wakeups,
		// burning the whole inter-event gap as CPU.
		NormalInputs: []int64{150, 0, 500},
		BuggyInputs:  []int64{150, 1, 500},
		RootFunc:     "listener_thread",
		FixMarker:    "timeout = 0;",
		Notes:        "Paper: vProf 1st; COZ fails (workers are children).",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "4th", "perf": "16th", "perf-PT": "16th",
			"COZ": "child", "stat-debug": "161st", "hist-disc": "4th",
		},
		PaperBBDist:     []float64{0, 0},
		PaperClassified: true,
	})
}
