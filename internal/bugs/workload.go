// Package bugs contains the reproduction workloads for the paper's
// evaluation: the 15 resolved performance issues of Table 1 (b1–b15) and the
// three unresolved issues of Table 4 (u1–u3), each modeled as a program in
// the source language whose control- and data-flow reproduces the shape of
// the real bug — a costly callee that misleads cost-only profilers, a cheap
// root-cause function holding the anomalous variables, and the normal/buggy
// input pair the paper's Table 2 methodology requires.
//
// Each workload records its ground truth (root-cause function, fix location,
// bug pattern) so the harness can score every tool the way Table 3 does.
package bugs

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/vm"
)

// DefaultMaxTicks bounds each process of a workload run; buggy executions
// that hang (endless loops) are cut off here, like an operator killing a
// stuck server.
const DefaultMaxTicks = 600_000

// DefaultInterval is the PC-sampling period used for the evaluation.
const DefaultInterval = 97

// Workload is one reproduced performance issue.
type Workload struct {
	// ID is the paper's bug id (b1..b15, u1..u3).
	ID string
	// Ticket is the upstream issue id (e.g. MDEV-21826).
	Ticket string
	// App is the application modeled (MariaDB, Apache httpd, Redis,
	// PostgreSQL).
	App string
	// Description matches Table 1 / Table 4.
	Description string
	// Pattern is the ground-truth bug pattern from Table 1.
	Pattern analysis.Pattern
	// Source is the program exhibiting the bug.
	Source string
	// SourceFile names the modeled source file (for schema output).
	SourceFile string
	// NormalSource, when non-empty, is a different program version used
	// for the normal runs (upgrade regressions: b13, u1, u3).
	NormalSource string
	// NormalInputs / BuggyInputs parameterize the two executions.
	NormalInputs, BuggyInputs []int64
	// MaxTicks overrides DefaultMaxTicks when nonzero.
	MaxTicks int64
	// RootFunc is the ground-truth root cause function.
	RootFunc string
	// FixMarker is a substring of the Source line where developers fixed
	// the bug (used to compute the bb-dist ground truth block).
	FixMarker string
	// Noise models the surrounding application: background subsystem
	// functions running identically in both executions (see NoisePack).
	Noise *NoisePack
	// CrashesCOZ reproduces the tool crash the paper hit on b7.
	CrashesCOZ bool
	// Unresolved marks Table 4 issues.
	Unresolved bool
	// Components optionally partitions functions into named source
	// components for per-component investigation (Table 4 workflow);
	// nil means the whole file is one component.
	Components map[string][]string
	// Notes records what the paper found, for EXPERIMENTS.md.
	Notes string
	// PaperRanks records Table 3's published ranks per tool ("1st",
	// "454th", "NR", "crash", "child"), keyed by tool name.
	PaperRanks map[string]string
	// PaperBBDist records Table 3's (mean, min) bb-dist, or nil.
	PaperBBDist []float64
	// PaperClassified records whether the paper's classifier matched
	// ("NC" cases are false).
	PaperClassified bool
}

func (w *Workload) maxTicks() int64 {
	if w.MaxTicks > 0 {
		return w.MaxTicks
	}
	return DefaultMaxTicks
}

// Built is a compiled, schema-analyzed workload ready to run.
type Built struct {
	W          *Workload
	Prog       *compiler.Program
	NormalProg *compiler.Program // == Prog when single-version
	Schema     *schema.Schema
	NormalSch  *schema.Schema
	Meta       []debuginfo.VarLoc
	NormalMeta []debuginfo.VarLoc
	// BuggySource/NormalSource are the final compiled sources (workload
	// source plus injected background noise).
	BuggySource, NormalSource string
}

// Build parses, compiles and schema-analyzes the workload.
func (w *Workload) Build() (*Built, error) {
	file := w.SourceFile
	if file == "" {
		file = w.ID + ".vp"
	}
	parse := func(src string) (*lang.File, *compiler.Program, error) {
		f, err := lang.Parse(file, src)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		p, err := compiler.Compile(f)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		return f, p, nil
	}
	buggySrc, err := injectNoise(w.Source, w.Noise)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.ID, err)
	}
	f, prog, err := parse(buggySrc)
	if err != nil {
		return nil, err
	}
	b := &Built{W: w, Prog: prog, NormalProg: prog, BuggySource: buggySrc, NormalSource: buggySrc}
	b.Schema = schema.GenerateIR(f, prog, schema.Options{})
	b.Meta = schema.Translate(b.Schema, prog.Debug)
	b.NormalSch, b.NormalMeta = b.Schema, b.Meta
	if w.NormalSource != "" {
		normalSrc, err := injectNoise(w.NormalSource, w.Noise)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		nf, nprog, err := parse(normalSrc)
		if err != nil {
			return nil, fmt.Errorf("normal version: %w", err)
		}
		b.NormalProg = nprog
		b.NormalSource = normalSrc
		b.NormalSch = schema.GenerateIR(nf, nprog, schema.Options{})
		b.NormalMeta = schema.Translate(b.NormalSch, nprog.Debug)
	}
	return b, nil
}

// MustBuild is Build for registry-driven code paths where workloads are
// statically known to compile (the test suite compiles every workload).
func (w *Workload) MustBuild() *Built {
	b, err := w.Build()
	if err != nil {
		panic(err)
	}
	return b
}

// NormalConfig returns the VM configuration for the run-th normal execution
// (deterministic per-run seed and alarm phase).
func (w *Workload) NormalConfig(run int) vm.Config {
	return vm.Config{
		Inputs:     w.NormalInputs,
		MaxTicks:   w.maxTicks(),
		Seed:       uint64(run*1000003 + 1),
		AlarmPhase: int64(7*run + 3),
	}
}

// BuggyConfig returns the VM configuration for the run-th buggy execution.
func (w *Workload) BuggyConfig(run int) vm.Config {
	return vm.Config{
		Inputs:     w.BuggyInputs,
		MaxTicks:   w.maxTicks(),
		Seed:       uint64(run*1000003 + 500009),
		AlarmPhase: int64(7*run + 5),
	}
}

// ProfileNormal profiles one normal execution (run index selects phase/seed)
// and returns the merged multi-process profile plus the raw result.
func (b *Built) ProfileNormal(run int) (*sampler.Profile, *sampler.RunResult) {
	res := sampler.ProfileRun(b.NormalProg, b.NormalMeta, b.W.NormalConfig(run), sampler.Options{Interval: DefaultInterval})
	return sampler.MergeProfiles(res.Profiles), res
}

// ProfileBuggy profiles one buggy execution.
func (b *Built) ProfileBuggy(run int) (*sampler.Profile, *sampler.RunResult) {
	res := sampler.ProfileRun(b.Prog, b.Meta, b.W.BuggyConfig(run), sampler.Options{Interval: DefaultInterval})
	return sampler.MergeProfiles(res.Profiles), res
}

// Analyze runs the full vProf pipeline: `runs` normal and buggy profiling
// executions (Table 2 uses 5), then post-profiling analysis.
func (b *Built) Analyze(p analysis.Params, runs int) (*analysis.Report, error) {
	if runs <= 0 {
		runs = 5
	}
	// Per-run profiling executions are independent (deterministic per-run
	// seeds, read-only program/metadata) and fan out over the same worker
	// pool the analysis uses; profiles land in run order regardless of
	// scheduling.
	type pair struct{ normal, buggy *sampler.Profile }
	pairs := parallel.Map(parallel.Workers(p.Workers), runs, func(i int) pair {
		np, _ := b.ProfileNormal(i)
		bp, _ := b.ProfileBuggy(i)
		return pair{np, bp}
	})
	in := analysis.Input{Debug: b.Prog.Debug, Schema: b.Schema}
	for _, pr := range pairs {
		in.Normal = append(in.Normal, pr.normal)
		in.Buggy = append(in.Buggy, pr.buggy)
	}
	return analysis.Analyze(in, p)
}

// Target packages the workload for the baseline tools.
func (b *Built) Target() *baselines.Target {
	return &baselines.Target{
		Prog:       b.Prog,
		NormalProg: b.NormalProg,
		NormalCfg:  b.W.NormalConfig(0),
		BuggyCfg:   b.W.BuggyConfig(0),
		Interval:   DefaultInterval,
		CrashesCOZ: b.W.CrashesCOZ,
	}
}

// FixBlock returns the basic-block label (in RootFunc) of the line matching
// FixMarker — the bb-dist ground truth. ok is false when the marker or
// function cannot be found.
func (b *Built) FixBlock() (string, bool) {
	line := b.fixLine()
	if line == 0 {
		return "", false
	}
	fn := b.Prog.Debug.FuncNamed(b.W.RootFunc)
	if fn == nil {
		return "", false
	}
	// Prefer a block containing an instruction on the fix line; fall back
	// to the block whose first line is closest.
	bestLabel, bestDist := "", 1<<30
	for _, blk := range fn.Blocks {
		for pc := blk.Start; pc < blk.End; pc++ {
			if b.Prog.Debug.LineAt(pc) == line {
				return blk.Label, true
			}
		}
		d := blk.Line - line
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist, bestLabel = d, blk.Label
		}
	}
	return bestLabel, bestLabel != ""
}

func (b *Built) fixLine() int {
	if b.W.FixMarker == "" {
		return 0
	}
	for i, l := range strings.Split(b.W.Source, "\n") {
		if strings.Contains(l, b.W.FixMarker) {
			return i + 1
		}
	}
	return 0
}

// BBDist computes the paper's bb-dist metric for a vProf report: the mean
// and minimum block-index distance between the blocks vProf flagged in the
// root-cause function and the fix block. ok is false when either side is
// missing (the paper's "n/a").
func (b *Built) BBDist(rep *analysis.Report) (mean, minimum float64, ok bool) {
	fix, ok := b.FixBlock()
	if !ok {
		return 0, 0, false
	}
	fr := rep.Func(b.W.RootFunc)
	if fr == nil || len(fr.Blocks) == 0 {
		return 0, 0, false
	}
	minimum = 1 << 30
	var sum float64
	for _, blk := range fr.Blocks {
		d := float64(b.Prog.Debug.BlockDistance(b.W.RootFunc, blk.Block, fix))
		if d < 0 {
			continue
		}
		sum += d
		if d < minimum {
			minimum = d
		}
	}
	if minimum == 1<<30 {
		return 0, 0, false
	}
	return sum / float64(len(fr.Blocks)), minimum, true
}

// registry is populated by the per-application files' init functions.
var registry []*Workload

func register(w *Workload) { registry = append(registry, w) }

// All returns the 15 resolved workloads (b1..b15), in id order.
func All() []*Workload {
	var out []*Workload
	for _, w := range registry {
		if !w.Unresolved {
			out = append(out, w)
		}
	}
	sortByID(out)
	return out
}

// UnresolvedIssues returns the Table 4 workloads (u1..u3).
func UnresolvedIssues() []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Unresolved {
			out = append(out, w)
		}
	}
	sortByID(out)
	return out
}

// ByID returns the workload with the given id, or nil.
func ByID(id string) *Workload {
	for _, w := range registry {
		if w.ID == id {
			return w
		}
	}
	return nil
}

func sortByID(ws []*Workload) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i].ID, ws[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
}
