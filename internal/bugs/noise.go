package bugs

import (
	"fmt"
	"strings"
)

// NoisePack models the surrounding application: a set of subsystem functions
// that run identically in normal and buggy executions. Real servers have
// hundreds of such functions; they are what buries a cheap root-cause
// function deep in a raw cost profile (gprof ranked the MDEV-21826 root
// cause 454th). Each noise function costs roughly the same in both runs (so
// vProf's discounters demote it) and contains a seeded-random branch (so
// statistical debugging sees a sea of mildly varying predicates, its
// real-world failure mode).
type NoisePack struct {
	// Names are the generated function names (realistic for the app).
	Names []string
	// Work is the per-call tick cost of each noise function.
	Work int64
	// Rounds is how many times the background driver calls each function.
	Rounds int
	// ChildEntries, when non-empty, injects the background driver into
	// these entry functions (spawned children) instead of interposing
	// main.
	ChildEntries []string
}

// TotalTicks estimates the pack's per-run cost (for budget sizing).
func (n *NoisePack) TotalTicks() int64 {
	if n == nil {
		return 0
	}
	return int64(len(n.Names)) * int64(n.Rounds) * (n.Work + 20)
}

// driverName is the generated background driver function.
const driverName = "run_background_tasks"

// injectNoise appends the pack's functions to src and interposes main: the
// workload's main is renamed app_main and a generated main runs the
// background driver first. All edits preserve existing line numbers
// (FixMarker ground truth) — the rename happens in place and everything new
// is appended at the end. The generated main deliberately references no
// globals, so the noise phase produces no samples for app variables.
func injectNoise(src string, n *NoisePack) (string, error) {
	if n == nil {
		return src, nil
	}
	const marker = "func main() {"
	if !strings.Contains(src, marker) {
		return "", fmt.Errorf("noise injection: no %q in source", marker)
	}
	var b strings.Builder
	if len(n.ChildEntries) == 0 {
		// Interpose main: the generated main runs the background work
		// and then the application. It references no globals, so the
		// noise phase produces no samples for app variables.
		src = strings.Replace(src, marker, "func app_main() {", 1)
		b.WriteString(src)
		b.WriteString("\nfunc main() { " + driverName + "(); app_main(); }\n")
	} else {
		// Inject the driver into the named (child-process) entry
		// functions instead: background work belongs to the children.
		for _, entry := range n.ChildEntries {
			em := "func " + entry + "("
			idx := strings.Index(src, em)
			if idx < 0 {
				return "", fmt.Errorf("noise injection: no entry %q", entry)
			}
			brace := strings.Index(src[idx:], "{")
			if brace < 0 {
				return "", fmt.Errorf("noise injection: malformed entry %q", entry)
			}
			at := idx + brace + 1
			src = src[:at] + " " + driverName + "();" + src[at:]
		}
		b.WriteString(src)
		b.WriteString("\n")
	}
	for i, name := range n.Names {
		// Split the cost across a per-run random "mode" plus a seeded
		// random branch: the function's total cost is stable, but its
		// branch predicates fluctuate run to run — real background
		// predicates are noisy, which is what limits statistical
		// debugging.
		hi := n.Work/2 + int64(i%7)
		lo := n.Work - hi
		fmt.Fprintf(&b, `
var %s_mode = rand(3);

func %s(task) {
	if (rand(100) < %d + %s_mode * 25) {
		work(%d);
		return task + 1;
	}
	work(%d);
	return task;
}
`, name, name, 15+(i*13)%30, name, hi+lo/4, lo+hi/4)
	}
	// The driver's round count jitters up to ~12%% per run, modeling
	// varying background load (this is what makes control-flow profiling
	// noisy).
	fmt.Fprintf(&b, "\nfunc %s() {\n\tvar done = 0;\n\tvar rounds = %d + rand(%d);\n\tfor (var bg = 0; bg < rounds; bg++) {\n",
		driverName, n.Rounds, n.Rounds/8+1)
	for _, name := range n.Names {
		fmt.Fprintf(&b, "\t\tdone = %s(done);\n", name)
	}
	fmt.Fprintf(&b, "\t}\n\treturn done;\n}\n")
	return b.String(), nil
}

// Noise banks with realistic per-application function names.
var (
	mariadbNoise = []string{
		"srv_monitor_task", "log_checkpoint_margin", "buf_flush_page_cleaner",
		"lock_sys_timeout_check", "trx_purge_worker", "os_aio_handler",
		"fts_optimize_thread", "dict_stats_update", "row_ins_index_entry",
		"btr_defragment_chunk", "page_zip_compress", "ibuf_merge_pages",
	}
	httpdNoise = []string{
		"ap_read_request", "ap_run_log_transaction", "ap_core_translate",
		"ap_proxy_pre_request", "ap_escape_html", "apr_pool_cleanup_run",
		"ap_process_async_conn", "ap_run_access_checker", "ap_set_keepalive",
		"mod_ssl_handshake_step", "ap_scoreboard_update", "ap_queue_info_push",
	}
	redisNoise = []string{
		"dictRehashStep", "activeExpireCycle", "clusterCron",
		"replicationCron", "aofRewriteBufferAppend", "rdbSaveInfoUpdate",
		"evictPoolPopulate", "updateCachedTime", "trackingInvalidateKey",
		"moduleTimerHandler", "checkClientTimeouts", "freeClientsInAsyncQueue",
	}
	postgresNoise = []string{
		"pgstat_report_activity", "WalWriterNap", "CheckpointerMainLoop",
		"AutoVacLauncherTick", "ExecScanFetch", "heap_getnext_block",
		"index_beginscan_internal", "LWLockAcquireWait", "ProcessCatchupEvent",
		"smgr_flush_pending", "tuplestore_advance", "RelationCacheLookup",
	}
)

// noisePack builds a pack from a bank, sized so that each noise function's
// total cost lands near perFuncTicks in every run.
func noisePack(bank []string, count int, perFuncTicks int64) *NoisePack {
	if count > len(bank) {
		count = len(bank)
	}
	const work = 60
	// Per call: the branch executes ~5/8 of Work plus ~13 ticks of call
	// and branch overhead.
	perCall := work*5/8 + 13
	rounds := int(perFuncTicks / int64(perCall))
	if rounds < 1 {
		rounds = 1
	}
	return &NoisePack{Names: bank[:count], Work: work, Rounds: rounds}
}

// childNoise builds a pack whose driver runs inside the named child-process
// entry functions rather than main.
func childNoise(bank []string, count int, perFuncTicks int64, entries ...string) *NoisePack {
	n := noisePack(bank, count, perFuncTicks)
	n.ChildEntries = entries
	return n
}
