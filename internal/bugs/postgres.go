package bugs

import "vprof/internal/analysis"

// PostgreSQL workloads: b14 and b15 of Table 1. Both run the problematic
// code in a backend/worker child process forked from the postmaster, which
// is what defeats COZ (and, for b14, gprof) in the paper.

func init() {
	register(&Workload{
		ID:          "b14",
		Noise:       childNoise(postgresNoise, 6, 6000, "backend_main"),
		Ticket:      "Postgres-17330",
		App:         "PostgreSQL",
		Description: "EXPLAIN query hangs for some query plans",
		Pattern:     analysis.PatternScalability,
		SourceFile:  "src/backend/utils/adt/ruleutils.vp",
		// Deparsing parameters re-walks every ancestor subplan for each
		// parameter without memoization: quadratic in plan depth and
		// linear in parameters, which explodes for deep plans.
		Source: `
var plan_depth;

func expression_tree_walker(n) {
	work(55);
	return n;
}

func find_param_referent(depth) {
	var visits = 0;
	var level = depth;
	while (level > 0) {
		for (var s = 0; s < plan_depth; s++) {
			expression_tree_walker(s);
			visits++;
		}
		level--;
	}
	return visits;
}

func get_parameter(depth) {
	return find_param_referent(depth);
}

func deparse_expression(nparams) {
	for (var p = 0; p < nparams; p++) {
		get_parameter(plan_depth);
	}
	return 0;
}

func explain_query(nparams) {
	work(250);
	deparse_expression(nparams);
	work(150);
	return 0;
}

func backend_main(nparams) {
	explain_query(nparams);
	return 0;
}

func postmaster_accept() {
	work(120);
	return 0;
}

func main() {
	plan_depth = input(0);
	postmaster_accept();
	spawn("backend_main", input(1));
}
`,
		// input(0)=plan nesting depth, input(1)=parameters to deparse.
		NormalInputs: []int64{4, 4},
		BuggyInputs:  []int64{16, 12},
		RootFunc:     "find_param_referent",
		FixMarker:    "for (var s = 0; s < plan_depth; s++)",
		Notes: "Paper: gprof does not rank the root cause at all (backend child process); vProf 4th " +
			"with bb-dist (17,0); COZ fails on the child process.",
		PaperRanks: map[string]string{
			"vprof": "4th", "gprof": "NR", "perf": "163rd", "perf-PT": "163rd",
			"COZ": "child", "stat-debug": "13th", "hist-disc": "NR",
		},
		PaperBBDist:     []float64{17, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b15",
		Noise:       noisePack(postgresNoise, 6, 6000),
		Ticket:      "Postgres-14b1",
		App:         "PostgreSQL",
		Description: "vacuum process fails to prune all heap pages and endlessly retries",
		Pattern:     analysis.PatternWrongConstraint,
		SourceFile:  "src/backend/access/heap/vacuumlazy.vp",
		// lazy_scan_prune retries whenever the prune horizon check
		// fails; with a stale horizon (vacuum_horizon_stale) the
		// aggressive autovacuum worker retries the same page forever.
		// The deciding state lives behind the vacrel pointer, so vProf
		// has no basic-type variable to classify with (the paper's NC).
		Source: `
var vacuum_horizon_stale;

func heap_page_prune(vacrel, aggressive) {
	work(380);
	if (vacuum_horizon_stale > 0 && aggressive > 0) {
		return 0;
	}
	return 1;
}

func lazy_scan_prune(vacrel, aggressive) {
	while (!heap_page_prune(vacrel, aggressive)) {
		work(25);
	}
	return 0;
}

func lazy_scan_heap(npages, aggressive) {
	var vacrel = alloc();
	for (var pg = 0; pg < npages; pg++) {
		lazy_scan_prune(vacrel, aggressive);
	}
	return 0;
}

func autovacuum_worker(npages) {
	lazy_scan_heap(npages, 1);
	return 0;
}

func postmaster_tick() {
	work(150);
	return 0;
}

func main() {
	vacuum_horizon_stale = input(1);
	postmaster_tick();
	lazy_scan_heap(input(0) / 16, 0);
	spawn("autovacuum_worker", input(0));
}
`,
		// input(0)=heap pages, input(1)=1 when the prune horizon is
		// stale (the bug trigger). The parent runs a small
		// non-aggressive pass (visible to gprof); the aggressive worker
		// child loops forever on its first page.
		NormalInputs: []int64{64, 0},
		BuggyInputs:  []int64{64, 1},
		RootFunc:     "lazy_scan_prune",
		FixMarker:    "while (!heap_page_prune(vacrel, aggressive))",
		Notes: "Paper: vProf 3rd; classification NC because the deciding variable is stored inside a " +
			"class pointer; COZ fails on the worker child.",
		PaperRanks: map[string]string{
			"vprof": "3rd", "gprof": "14th", "perf": "56th", "perf-PT": "56th",
			"COZ": "child", "stat-debug": "18th", "hist-disc": "8th",
		},
		PaperBBDist: []float64{2, 0},
		// The paper could not classify this issue (NC).
		PaperClassified: false,
	})
}
