package bugs

import "vprof/internal/analysis"

// Redis workloads: b11–b13 of Table 1 and the unresolved u1 (Redis-10981)
// of Table 4.

func init() {
	register(&Workload{
		ID:          "b11",
		Ticket:      "Redis-8145",
		App:         "Redis",
		Description: "cluster nodes command is costly in a large cluster",
		Pattern:     analysis.PatternScalability,
		SourceFile:  "src/cluster.vp",
		// Generating the CLUSTER NODES reply re-concatenates the whole
		// description for every node: the copy cost grows with the
		// accumulated length, making the command quadratic.
		Source: `
var n_nodes;

func addReply(n) {
	work(200);
	return n;
}

func clusterGenNodesDescription() {
	var written = 0;
	for (var i = 0; i < n_nodes; i++) {
		work(30);
		written = written + 120;
		work(written / 64);
	}
	return written;
}

func clusterCommand(r) {
	work(40);
	clusterGenNodesDescription();
	addReply(r);
	return 0;
}

func main() {
	n_nodes = input(0);
	for (var r = 0; r < input(1); r++) {
		clusterCommand(r);
	}
}
`,
		// input(0)=cluster nodes, input(1)=CLUSTER NODES requests.
		NormalInputs: []int64{40, 12},
		BuggyInputs:  []int64{400, 12},
		RootFunc:     "clusterGenNodesDescription",
		FixMarker:    "work(written / 64);",
		Notes:        "Paper: both vProf and gprof rank the root cause 1st (it is genuinely costly); COZ 2nd.",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "1st", "perf": "10th", "perf-PT": "10th",
			"COZ": "2nd", "stat-debug": "NR", "hist-disc": "59th",
		},
		PaperBBDist:     []float64{0, 0},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b12",
		Noise:       noisePack(redisNoise, 4, 8000),
		Ticket:      "Redis-8668",
		App:         "Redis",
		Description: "BRPOP becomes slow when a large number of clients exist",
		Pattern:     analysis.PatternMissingConstraint,
		SourceFile:  "src/blocked.vp",
		// Every pushed key walks and rotates the whole blocked-clients
		// list, even for clients that cannot be served; the zmalloc
		// family is inherently costly and distracts raw profilers. In
		// the buggy run a large client population stays blocked, so
		// numclients holds one value abnormally long (Figure 6b).
		Source: `
var numclients = input(0);

func zmalloc(n) {
	work(26);
	return n;
}

func zfree(n) {
	work(30);
	return n;
}

func dictEncObjKeyCompare(k) {
	work(30);
	return k;
}

func listRotateHeadToTail() {
	work(25);
	return 0;
}

func serveClientsBlockedOnKey(key, can_serve) {
	var served = 0;
	var i = 0;
	while (i < numclients) {
		listRotateHeadToTail();
		dictEncObjKeyCompare(key);
		zmalloc(64);
		if (i % 9 == 3 && can_serve > 0) {
			served++;
			numclients = numclients - 1;
		}
		zfree(64);
		i++;
	}
	return served;
}

func processPushCommand(r, can_serve) {
	zmalloc(32);
	work(40);
	serveClientsBlockedOnKey(r, can_serve);
	zfree(32);
	return 0;
}

func main() {
	for (var r = 0; r < input(1); r++) {
		processPushCommand(r, input(2));
		numclients = numclients + input(3);
	}
}
`,
		// input(0)=initial blocked clients, input(1)=push commands,
		// input(2)=1 when pushed keys actually serve (and unblock)
		// waiting clients, 0 when the large population is blocked on
		// *other* keys yet still rotated through (the missing
		// constraint), input(3)=new clients arriving per command.
		NormalInputs: []int64{90, 20, 1, 8},
		BuggyInputs:  []int64{170, 20, 0, 2},
		RootFunc:     "serveClientsBlockedOnKey",
		FixMarker:    "listRotateHeadToTail();",
		Notes: "Paper: zmalloc* and dictEncObjKeyCompare top gprof; vProf gives them hist-discounts " +
			"(1.0 and 0.76) and a zero discount to the root cause via numclients' processing-cost " +
			"dimension (value dim alone gave 0.12).",
		PaperRanks: map[string]string{
			"vprof": "1st", "gprof": "5th", "perf": "19th", "perf-PT": "19th",
			"COZ": "1st", "stat-debug": "8th", "hist-disc": "2nd",
		},
		PaperBBDist:     []float64{7, 5},
		PaperClassified: true,
	})

	register(&Workload{
		ID:          "b13",
		Noise:       noisePack(redisNoise, 9, 4000),
		Ticket:      "Redis-10310",
		App:         "Redis",
		Description: "ZREVRANGE command 50% slower after upgrade",
		Pattern:     analysis.PatternMissingConstraint,
		SourceFile:  "src/t_zset.vp",
		// The 7.0.3 refactoring always materializes a range-spec copy
		// per command; 6.2.7 (the normal baseline) replies directly.
		// The anomalous variable vProf finds is the spec pointer —
		// args-tagged only, so the pattern cannot be classified (the
		// paper's NC case).
		Source: `
var zset_len;

func lookupKeyRead(k) {
	work(60);
	return k;
}

func addReplyArray(n) {
	work(150);
	return n;
}

func ziplist_iterate(n) {
	work(n * 12);
	return n;
}

func copy_range_spec(spec) {
	work(700);
	return spec;
}

func genericZrangebyrankCommand(spec, count) {
	ziplist_iterate(count);
	copy_range_spec(spec);
	addReplyArray(count);
	return count;
}

func zrevrangeCommand(r) {
	var spec = alloc();
	lookupKeyRead(r);
	genericZrangebyrankCommand(spec, zset_len);
	return 0;
}

func main() {
	zset_len = input(0);
	for (var r = 0; r < input(1); r++) {
		zrevrangeCommand(r);
	}
}
`,
		NormalSource: `
var zset_len;

func lookupKeyRead(k) {
	work(60);
	return k;
}

func addReplyArray(n) {
	work(150);
	return n;
}

func ziplist_iterate(n) {
	work(n * 12);
	return n;
}

func genericZrangebyrankCommand(spec, count) {
	ziplist_iterate(count);
	addReplyArray(count);
	return count;
}

func zrevrangeCommand(r) {
	var spec = alloc();
	lookupKeyRead(r);
	genericZrangebyrankCommand(spec, zset_len);
	return 0;
}

func main() {
	zset_len = input(0);
	for (var r = 0; r < input(1); r++) {
		zrevrangeCommand(r);
	}
}
`,
		// Same workload on both versions: input(0)=zset length,
		// input(1)=commands.
		NormalInputs: []int64{40, 60},
		BuggyInputs:  []int64{40, 60},
		RootFunc:     "genericZrangebyrankCommand",
		FixMarker:    "copy_range_spec(spec);",
		Notes: "Paper: vProf 2nd; classification NC because the identified variable invokes a function " +
			"pointer and carries no loop/cond labels.",
		PaperRanks: map[string]string{
			"vprof": "2nd", "gprof": "16th", "perf": "13th", "perf-PT": "13th",
			"COZ": "9th", "stat-debug": "NR", "hist-disc": "33rd",
		},
		PaperBBDist: []float64{0, 0},
		// The paper could not classify this issue (NC).
		PaperClassified: false,
	})

	register(&Workload{
		ID:          "u1",
		Ticket:      "Redis-10981",
		App:         "Redis",
		Description: "lrange command takes longer to finish after upgrade from 6.2.7 to 7.0.3 (unresolved > 6 months)",
		Pattern:     analysis.PatternWrongConstraint,
		Unresolved:  true,
		SourceFile:  "src/networking.vp",
		// 7.0.3: expireIfNeeded moved inside lookupKey (refactoring — a
		// false positive) and clientHasPendingReplies gained an
		// io-threads condition that slows the reply hot path — the real
		// regression the paper confirmed by reverting the condition.
		Source: `
var io_threads_active = 1;

func expireIfNeeded(k) {
	work(90);
	return k;
}

func lookupKey(key) {
	work(50);
	expireIfNeeded(key);
	return key;
}

func clientHasPendingReplies(client) {
	if (io_threads_active > 0 && client % 2 == 0) {
		work(140);
		return 1;
	}
	work(8);
	return 0;
}

func _addReplyToBufferOrList(c, n) {
	work(35);
	if (clientHasPendingReplies(c)) {
		work(25);
	}
	return n;
}

func addReply(c, n) {
	_addReplyToBufferOrList(c, n);
	return n;
}

func lrangeCommand(c) {
	lookupKey(c);
	for (var e = 0; e < 30; e++) {
		addReply(c, e);
	}
	return 0;
}

func main() {
	for (var r = 0; r < input(0); r++) {
		lrangeCommand(r);
	}
}
`,
		NormalSource: `
var io_threads_active = 1;

func expireIfNeeded(k) {
	work(90);
	return k;
}

func lookupKey(key) {
	work(50);
	return key;
}

func clientHasPendingReplies(client) {
	work(8);
	return 0;
}

func _addReplyToBuffer(c, n) {
	work(35);
	if (clientHasPendingReplies(c)) {
		work(25);
	}
	return n;
}

func addReply(c, n) {
	_addReplyToBuffer(c, n);
	return n;
}

func lrangeCommand(c) {
	expireIfNeeded(c);
	lookupKey(c);
	for (var e = 0; e < 30; e++) {
		addReply(c, e);
	}
	return 0;
}

func main() {
	for (var r = 0; r < input(0); r++) {
		lrangeCommand(r);
	}
}
`,
		NormalInputs: []int64{40},
		BuggyInputs:  []int64{40},
		RootFunc:     "clientHasPendingReplies",
		FixMarker:    "io_threads_active > 0",
		Components: map[string][]string{
			"db.c":         {"lookupKey", "expireIfNeeded"},
			"networking.c": {"clientHasPendingReplies", "_addReplyToBufferOrList", "_addReplyToBuffer", "addReply"},
		},
		Notes: "Paper: investigating db.c first surfaces lookupKey (a refactoring false positive: " +
			"expireIfNeeded moved inside); in networking.c the new _addReplyToBufferOrList is excluded " +
			"as refactoring and clientHasPendingReplies is flagged via the client variable's processing " +
			"cost; reverting the 7.0.3 condition removed the regression (8 person-hours, confirmed).",
	})
}
