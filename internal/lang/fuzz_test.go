package lang_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/lang"
)

// FuzzParse checks the lexer and parser never panic and that anything that
// parses also re-parses (position and structure stability is covered by the
// unit tests; here we care about robustness on arbitrary input). The corpus
// is seeded with hand-written grammar edge cases, every checked-in testdata
// program, and all embedded bug-workload sources, so mutations start from
// realistic full-size programs rather than toy fragments.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		"func main() { }",
		"func f(a, b) { return a + b * 2; }",
		`func main() { if (x > 0) { work(1); } else { work(2); } }`,
		`func main() { for (var i = 0; i < 10; i++) { continue; } }`,
		`func main() { while (a && !b || c) { break; } }`,
		`extfunc lib(n) { work(n); return n; } func main() { lib(3); }`,
		`func main() { spawn("child", 1); }`,
		`var g = f() / 3; func f() { return 9; } func main() { g = -g; }`,
		"func main() { /* unterminated",
		"func main() { \"unterminated",
		"@#$%^&",
		"var 123 = x;",
		"func main() { x += ; }",
		strings.Repeat("(", 500),
		"func main() { out(1 == 2 != 3 < 4); }",
	}
	// Checked-in example programs.
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.vp"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, string(src))
	}
	// Embedded bug reproductions: the largest real programs in the tree.
	for _, w := range bugs.All() {
		seeds = append(seeds, w.Source)
		if w.NormalSource != "" {
			seeds = append(seeds, w.NormalSource)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := lang.Parse("fuzz.vp", src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Walk must terminate and visit without panicking.
		n := 0
		lang.Walk(file, func(lang.Node) bool { n++; return n < 100000 })
	})
}
