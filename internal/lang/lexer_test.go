package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("t.vp", `var x = 42;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwVar, IDENT, Assign, NUMBER, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
	if toks[1].Lit != "x" || toks[3].Lit != "42" {
		t.Fatalf("bad literals: %v", toks)
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := `+ - * / % = == != < <= > >= && || ! += -= *= /= %= ++ --`
	toks, err := Tokenize("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		Add, Sub, Mul, Div, Mod, Assign, Eq, Neq, Lt, Le, Gt, Ge,
		AndAnd, OrOr, Not, AddArrow, SubArrow, MulArrow, DivArrow, ModArrow,
		Inc, Dec, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := "// line comment\nvar /* block\ncomment */ x;"
	toks, err := Tokenize("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwVar, IDENT, Semi, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeKeywords(t *testing.T) {
	src := "var func extfunc if else while for return break continue true false"
	toks, err := Tokenize("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwVar, KwFunc, KwExtFunc, KwIf, KwElse, KwWhile, KwFor,
		KwReturn, KwBreak, KwContinue, KwTrue, KwFalse, EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize("t.vp", `spawn("child_main")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Lit != "child_main" {
		t.Fatalf("bad string token: %v", toks[2])
	}
	if _, err := Tokenize("t.vp", `"unterminated`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
	toks, err = Tokenize("t.vp", `"a\n\t\"\\b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Lit != "a\n\t\"\\b" {
		t.Fatalf("bad escape handling: %q", toks[0].Lit)
	}
}

func TestTokenizePositions(t *testing.T) {
	src := "var x;\nfunc f() {\n}"
	toks, err := Tokenize("m.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("var at %v", toks[0].Pos)
	}
	// "func" is at line 2 col 1.
	var funcTok Token
	for _, tk := range toks {
		if tk.Kind == KwFunc {
			funcTok = tk
		}
	}
	if funcTok.Pos.Line != 2 || funcTok.Pos.Col != 1 {
		t.Errorf("func at %v, want 2:1", funcTok.Pos)
	}
	if funcTok.Pos.File != "m.vp" {
		t.Errorf("file = %q", funcTok.Pos.File)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		"@",
		"/* unterminated",
		"123abc",
		`"bad \q escape"`,
	}
	for _, src := range cases {
		if _, err := Tokenize("t.vp", src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		} else if !strings.Contains(err.Error(), "t.vp:") {
			t.Errorf("Tokenize(%q): error lacks position: %v", src, err)
		}
	}
}

func TestTokenizeAmpersandAlone(t *testing.T) {
	if _, err := Tokenize("t.vp", "a & b"); err == nil {
		t.Fatal("single & should be an error")
	}
	if _, err := Tokenize("t.vp", "a | b"); err == nil {
		t.Fatal("single | should be an error")
	}
}
