package lang

import (
	"strings"
	"testing"
)

const sampleProgram = `
// Mini crash-recovery model.
var recv_n_pool_free_frames;
var srv_page_size = 4096;

extfunc read_log_seg(n) {
	work(n);
	return n;
}

func recv_sys_init() {
	recv_n_pool_free_frames = buf_pool_get_n_pages() / 3;
}

func buf_pool_get_n_pages() {
	return input(0);
}

func recv_group_scan_log_recs(ckpt) {
	var available_mem = srv_page_size * (buf_pool_get_n_pages() - recv_n_pool_free_frames);
	var end_lsn = 0;
	var start_lsn = ckpt;
	while (end_lsn != start_lsn && !recv_scan_log_recs(available_mem)) {
		end_lsn = read_log_seg(10);
		if (end_lsn > 100) {
			break;
		}
	}
	for (var i = 0; i < 4; i++) {
		work(1);
	}
	return true;
}

func recv_scan_log_recs(available_mem) {
	if (available_mem <= 0) {
		return false;
	}
	return true;
}
`

func TestParseSample(t *testing.T) {
	f, err := Parse("recovery.vp", sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals()) != 2 {
		t.Fatalf("globals = %d, want 2", len(f.Globals()))
	}
	if len(f.Funcs()) != 5 {
		t.Fatalf("funcs = %d, want 5", len(f.Funcs()))
	}
	if !f.Func("read_log_seg").Library {
		t.Error("read_log_seg should be a library function")
	}
	if f.Func("recv_sys_init").Library {
		t.Error("recv_sys_init should not be a library function")
	}
	g := f.Globals()[1]
	if g.Name != "srv_page_size" {
		t.Fatalf("global[1] = %q", g.Name)
	}
	if n, ok := g.Init.(*NumberLit); !ok || n.Value != 4096 {
		t.Fatalf("srv_page_size init = %#v", g.Init)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("t.vp", `func f() { return 1 + 2 * 3 == 7 && 4 < 5; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Func("f").Body.Stmts[0].(*ReturnStmt)
	and, ok := ret.Value.(*BinaryExpr)
	if !ok || and.Op != BinAnd {
		t.Fatalf("top op = %#v, want &&", ret.Value)
	}
	eq, ok := and.X.(*BinaryExpr)
	if !ok || eq.Op != BinEq {
		t.Fatalf("lhs of && = %#v, want ==", and.X)
	}
	add, ok := eq.X.(*BinaryExpr)
	if !ok || add.Op != BinAdd {
		t.Fatalf("lhs of == = %#v, want +", eq.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != BinMul {
		t.Fatalf("rhs of + = %#v, want *", add.Y)
	}
}

func TestParseUnary(t *testing.T) {
	f, err := Parse("t.vp", `func f(x) { return !x && -x < 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Func("f").Body.Stmts[0].(*ReturnStmt)
	and := ret.Value.(*BinaryExpr)
	if _, ok := and.X.(*UnaryExpr); !ok {
		t.Fatalf("lhs = %#v, want unary", and.X)
	}
	lt := and.Y.(*BinaryExpr)
	if neg, ok := lt.X.(*UnaryExpr); !ok || neg.Op != UnaryNeg {
		t.Fatalf("lt lhs = %#v, want -x", lt.X)
	}
}

func TestParseIncDec(t *testing.T) {
	f, err := Parse("t.vp", `func f() { var i = 0; i++; i--; i += 2; i -= 1; i *= 3; i /= 2; i %= 5; }`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := f.Func("f").Body.Stmts
	ops := []AssignOp{AssignAdd, AssignSub, AssignAdd, AssignSub, AssignMul, AssignDiv, AssignMod}
	for i, want := range ops {
		as, ok := stmts[i+1].(*AssignStmt)
		if !ok {
			t.Fatalf("stmt %d = %#v", i+1, stmts[i+1])
		}
		if as.Op != want {
			t.Errorf("stmt %d op = %v, want %v", i+1, as.Op, want)
		}
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `func f(x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } }`
	f, err := Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.Func("f").Body.Stmts[0].(*IfStmt)
	inner, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %#v, want if", ifs.Else)
	}
	if _, ok := inner.Else.(*BlockStmt); !ok {
		t.Fatalf("inner else = %#v, want block", inner.Else)
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		`func f() { for (var i = 0; i < 10; i++) { work(1); } }`,
		`func f() { for (; ; ) { break; } }`,
		`func f() { var i = 0; for (i = 1; i < 5;) { i++; } }`,
	}
	for _, src := range srcs {
		if _, err := Parse("t.vp", src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func f( { }`,
		`func f() { var; }`,
		`func f() { if x { } }`,    // missing parens
		`func f() { return 1 }`,    // missing semicolon
		`var x = ;`,                // missing init expr
		`func f() { x = ; }`,       // missing rhs
		`garbage`,                  // not a decl
		`func f() { while (1) { }`, // unterminated block
		`func f() { (1 + ; }`,      // bad paren expr
		`func f() { g(1, ; }`,      // bad call args
	}
	for _, src := range cases {
		if _, err := Parse("t.vp", src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("bad.vp", "func f() {\n  var;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bad.vp:2") {
		t.Fatalf("error %q lacks line position", err)
	}
}

func TestWalkVisitsAllIdents(t *testing.T) {
	f, err := Parse("t.vp", sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	Walk(f, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			seen[id.Name] = true
		}
		return true
	})
	for _, want := range []string{"available_mem", "end_lsn", "start_lsn", "ckpt", "recv_n_pool_free_frames", "srv_page_size"} {
		if !seen[want] {
			t.Errorf("Walk did not visit ident %q", want)
		}
	}
}

func TestWalkSkipsChildren(t *testing.T) {
	f, err := Parse("t.vp", `func f() { if (1) { g(2); } }`)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	Walk(f, func(n Node) bool {
		if _, ok := n.(*IfStmt); ok {
			return false // skip children
		}
		if _, ok := n.(*CallExpr); ok {
			calls++
		}
		return true
	})
	if calls != 0 {
		t.Fatalf("call visited despite pruned if: %d", calls)
	}
}

func TestParseSpawnString(t *testing.T) {
	f, err := Parse("t.vp", `func f() { spawn("child", 3); }`)
	if err != nil {
		t.Fatal(err)
	}
	call := f.Func("f").Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
	if call.Name != "spawn" || len(call.Args) != 2 {
		t.Fatalf("call = %#v", call)
	}
	if s, ok := call.Args[0].(*StringLit); !ok || s.Value != "child" {
		t.Fatalf("arg0 = %#v", call.Args[0])
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := "func main() { out(" + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + "); }"
	if _, err := Parse("deep.vp", deep); err == nil {
		t.Fatal("expected nesting-depth error")
	}
	// Reasonable nesting still parses.
	ok := "func main() { out(" + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) + "); }"
	if _, err := Parse("ok.vp", ok); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}
