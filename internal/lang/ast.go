package lang

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Decl is a top-level declaration: a global variable or a function.
type Decl interface {
	Node
	declNode()
}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// File is a parsed source file.
type File struct {
	Path  string
	Decls []Decl
}

// NodePos returns the position of the file's first declaration, or a
// position naming only the file if it is empty.
func (f *File) NodePos() Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].NodePos()
	}
	return Pos{File: f.Path, Line: 1, Col: 1}
}

// Globals returns the file's global variable declarations in order.
func (f *File) Globals() []*VarDecl {
	var gs []*VarDecl
	for _, d := range f.Decls {
		if v, ok := d.(*VarDecl); ok {
			gs = append(gs, v)
		}
	}
	return gs
}

// Funcs returns the file's function declarations in order.
func (f *File) Funcs() []*FuncDecl {
	var fs []*FuncDecl
	for _, d := range f.Decls {
		if fn, ok := d.(*FuncDecl); ok {
			fs = append(fs, fn)
		}
	}
	return fs
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs() {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// VarDecl declares a variable. At top level it is a global; inside a block it
// is a local (wrapped in a DeclStmt).
type VarDecl struct {
	Name string
	Init Expr // may be nil: defaults to 0
	Pos  Pos
}

func (d *VarDecl) NodePos() Pos { return d.Pos }
func (d *VarDecl) declNode()    {}

// FuncDecl declares a function. Library marks an "external" function whose
// code lives outside the profiled text section (the paper's dynamic-library
// case: gprof records no PC samples there).
type FuncDecl struct {
	Name    string
	Params  []Param
	Body    *BlockStmt
	Library bool
	Pos     Pos
}

// Param is a function parameter.
type Param struct {
	Name string
	Pos  Pos
}

func (d *FuncDecl) NodePos() Pos { return d.Pos }
func (d *FuncDecl) declNode()    {}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

func (s *BlockStmt) NodePos() Pos { return s.Pos }
func (s *BlockStmt) stmtNode()    {}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

func (s *DeclStmt) NodePos() Pos { return s.Decl.Pos }
func (s *DeclStmt) stmtNode()    {}

// AssignOp is the operator of an assignment statement.
type AssignOp int

// Assignment operators.
const (
	AssignSet AssignOp = iota // =
	AssignAdd                 // +=
	AssignSub                 // -=
	AssignMul                 // *=
	AssignDiv                 // /=
	AssignMod                 // %=
)

func (op AssignOp) String() string {
	switch op {
	case AssignSet:
		return "="
	case AssignAdd:
		return "+="
	case AssignSub:
		return "-="
	case AssignMul:
		return "*="
	case AssignDiv:
		return "/="
	case AssignMod:
		return "%="
	}
	return "?="
}

// AssignStmt assigns to a named variable: x = e, x += e, x++ (as x += 1).
type AssignStmt struct {
	Name  string
	Op    AssignOp
	Value Expr
	Pos   Pos
}

func (s *AssignStmt) NodePos() Pos { return s.Pos }
func (s *AssignStmt) stmtNode()    {}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Pos  Pos
}

func (s *IfStmt) NodePos() Pos { return s.Pos }
func (s *IfStmt) stmtNode()    {}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

func (s *WhileStmt) NodePos() Pos { return s.Pos }
func (s *WhileStmt) stmtNode()    {}

// ForStmt is a C-style for loop. Init and Post may be nil; Cond may be nil
// (infinite loop).
type ForStmt struct {
	Init Stmt // *DeclStmt or *AssignStmt, or nil
	Cond Expr
	Post Stmt // *AssignStmt or nil
	Body *BlockStmt
	Pos  Pos
}

func (s *ForStmt) NodePos() Pos { return s.Pos }
func (s *ForStmt) stmtNode()    {}

// ReturnStmt returns from the enclosing function, optionally with a value.
type ReturnStmt struct {
	Value Expr // may be nil (returns 0)
	Pos   Pos
}

func (s *ReturnStmt) NodePos() Pos { return s.Pos }
func (s *ReturnStmt) stmtNode()    {}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

func (s *BreakStmt) NodePos() Pos { return s.Pos }
func (s *BreakStmt) stmtNode()    {}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ContinueStmt) stmtNode()    {}

// ExprStmt evaluates an expression for effect (typically a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (s *ExprStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) stmtNode()    {}

// NumberLit is an integer literal.
type NumberLit struct {
	Value int64
	Pos   Pos
}

func (e *NumberLit) NodePos() Pos { return e.Pos }
func (e *NumberLit) exprNode()    {}

// BoolLit is true or false (evaluating to 1 or 0).
type BoolLit struct {
	Value bool
	Pos   Pos
}

func (e *BoolLit) NodePos() Pos { return e.Pos }
func (e *BoolLit) exprNode()    {}

// StringLit is a string literal; used only as an argument to builtins such as
// spawn.
type StringLit struct {
	Value string
	Pos   Pos
}

func (e *StringLit) NodePos() Pos { return e.Pos }
func (e *StringLit) exprNode()    {}

// Ident is a reference to a named variable.
type Ident struct {
	Name string
	Pos  Pos
}

func (e *Ident) NodePos() Pos { return e.Pos }
func (e *Ident) exprNode()    {}

// CallExpr calls a function or builtin by name.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (e *CallExpr) NodePos() Pos { return e.Pos }
func (e *CallExpr) exprNode()    {}

// UnaryOp is a unary operator.
type UnaryOp int

// Unary operators.
const (
	UnaryNot UnaryOp = iota // !
	UnaryNeg                // -
)

func (op UnaryOp) String() string {
	if op == UnaryNot {
		return "!"
	}
	return "-"
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

func (e *UnaryExpr) NodePos() Pos { return e.Pos }
func (e *UnaryExpr) exprNode()    {}

// BinaryOp is a binary operator.
type BinaryOp int

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinEq
	BinNeq
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd // && (short-circuit)
	BinOr  // || (short-circuit)
)

var binNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (op BinaryOp) String() string {
	if int(op) < len(binNames) {
		return binNames[op]
	}
	return "?"
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
}

func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *BinaryExpr) exprNode()    {}

// Walk traverses the AST rooted at n in depth-first order, calling fn for
// each node. If fn returns false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
	case *VarDecl:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *FuncDecl:
		Walk(x.Body, fn)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		Walk(x.Decl, fn)
	case *AssignStmt:
		Walk(x.Value, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.Value != nil {
			Walk(x.Value, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *NumberLit, *BoolLit, *StringLit, *Ident, *BreakStmt, *ContinueStmt:
		// leaves
	}
}
