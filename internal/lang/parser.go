package lang

import (
	"fmt"
	"strconv"
)

// A ParseError reports a syntax error at a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// maxNesting bounds expression/statement nesting so crafted inputs fail with
// a parse error instead of exhausting the goroutine stack.
const maxNesting = 2000

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks  []Token
	pos   int
	depth int
}

func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxNesting {
		return &ParseError{Pos: p.cur().Pos, Msg: "expression nested too deeply"}
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse lexes and parses a source file.
func Parse(path, src string) (*File, error) {
	toks, err := Tokenize(path, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile(path)
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected %s, found %s", k, p.cur())}
}

func (p *Parser) parseFile(path string) (*File, error) {
	f := &File{Path: path}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwVar:
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			f.Decls = append(f.Decls, d)
		case KwFunc, KwExtFunc:
			d, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			f.Decls = append(f.Decls, d)
		default:
			return nil, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected declaration, found %s", p.cur())}
		}
	}
	return f, nil
}

func (p *Parser) parseVarDecl() (*VarDecl, error) {
	kw, err := p.expect(KwVar)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Lit, Pos: kw.Pos}
	if p.accept(Assign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	kw := p.next() // KwFunc or KwExtFunc
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []Param
	if !p.at(RParen) {
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, Param{Name: id.Lit, Pos: id.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{
		Name:    name.Lit,
		Params:  params,
		Body:    body,
		Library: kw.Kind == KwExtFunc,
		Pos:     kw.Pos,
	}, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, &ParseError{Pos: lb.Pos, Msg: "unterminated block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // RBrace
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case KwVar:
		d, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwReturn:
		kw := p.next()
		s := &ReturnStmt{Pos: kw.Pos}
		if !p.at(Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return s, nil
	case KwBreak:
		kw := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case KwContinue:
		kw := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case LBrace:
		return p.parseBlock()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment, increment/decrement, or expression
// statement without the trailing semicolon (for-loop clauses use it too).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	// Lookahead: IDENT followed by an assignment operator.
	if p.at(IDENT) {
		id := p.cur()
		op, isAssign := assignOpFor(p.toks[p.pos+1].Kind)
		switch {
		case isAssign:
			p.pos += 2
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: id.Lit, Op: op, Value: e, Pos: id.Pos}, nil
		case p.toks[p.pos+1].Kind == Inc:
			p.pos += 2
			return &AssignStmt{Name: id.Lit, Op: AssignAdd, Value: &NumberLit{Value: 1, Pos: id.Pos}, Pos: id.Pos}, nil
		case p.toks[p.pos+1].Kind == Dec:
			p.pos += 2
			return &AssignStmt{Name: id.Lit, Op: AssignSub, Value: &NumberLit{Value: 1, Pos: id.Pos}, Pos: id.Pos}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: e.NodePos()}, nil
}

func assignOpFor(k Kind) (AssignOp, bool) {
	switch k {
	case Assign:
		return AssignSet, true
	case AddArrow:
		return AssignAdd, true
	case SubArrow:
		return AssignSub, true
	case MulArrow:
		return AssignMul, true
	case DivArrow:
		return AssignDiv, true
	case ModArrow:
		return AssignMod, true
	}
	return 0, false
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next() // KwIf
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next() // KwWhile
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next() // KwFor
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: kw.Pos}
	if !p.at(Semi) {
		if p.at(KwVar) {
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			s.Init = &DeclStmt{Decl: d}
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Eq:     3, Neq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Add: 5, Sub: 5,
	Mul: 6, Div: 6, Mod: 6,
}

var binOpFor = map[Kind]BinaryOp{
	OrOr: BinOr, AndAnd: BinAnd,
	Eq: BinEq, Neq: BinNeq,
	Lt: BinLt, Le: BinLe, Gt: BinGt, Ge: BinGe,
	Add: BinAdd, Sub: BinSub,
	Mul: BinMul, Div: BinDiv, Mod: BinMod,
}

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseBinary(1)
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: binOpFor[op.Kind], X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case Not:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnaryNot, X: x, Pos: t.Pos}, nil
	case Sub:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnaryNeg, X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case NUMBER:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("invalid number %q", t.Lit)}
		}
		return &NumberLit{Value: v, Pos: t.Pos}, nil
	case KwTrue:
		t := p.next()
		return &BoolLit{Value: true, Pos: t.Pos}, nil
	case KwFalse:
		t := p.next()
		return &BoolLit{Value: false, Pos: t.Pos}, nil
	case STRING:
		t := p.next()
		return &StringLit{Value: t.Lit, Pos: t.Pos}, nil
	case IDENT:
		t := p.next()
		if p.at(LParen) {
			p.next()
			var args []Expr
			if !p.at(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Lit, Args: args, Pos: t.Pos}, nil
		}
		return &Ident{Name: t.Lit, Pos: t.Pos}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected expression, found %s", p.cur())}
}
