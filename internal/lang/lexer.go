package lang

import (
	"fmt"
	"strings"
)

// A LexError reports a lexical error at a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes a single source file.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer for src, attributing positions to file.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipTrivia consumes whitespace and comments. It returns an error for an
// unterminated block comment.
func (l *Lexer) skipTrivia() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or a token with Kind EOF at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && isIdentStart(l.peek()) {
			return Token{}, &LexError{Pos: p, Msg: "malformed number"}
		}
		return Token{Kind: NUMBER, Lit: l.src[start:l.off], Pos: p}, nil
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := keywords[lit]; ok {
			return Token{Kind: kw, Lit: lit, Pos: p}, nil
		}
		return Token{Kind: IDENT, Lit: lit, Pos: p}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) || l.peek() == '\n' {
				return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRING, Lit: sb.String(), Pos: p}, nil
	}

	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: p}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: p}, nil
	}

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case '+':
		switch l.peek2() {
		case '=':
			return two(AddArrow)
		case '+':
			return two(Inc)
		}
		return one(Add)
	case '-':
		switch l.peek2() {
		case '=':
			return two(SubArrow)
		case '-':
			return two(Dec)
		}
		return one(Sub)
	case '*':
		if l.peek2() == '=' {
			return two(MulArrow)
		}
		return one(Mul)
	case '/':
		if l.peek2() == '=' {
			return two(DivArrow)
		}
		return one(Div)
	case '%':
		if l.peek2() == '=' {
			return two(ModArrow)
		}
		return one(Mod)
	case '=':
		if l.peek2() == '=' {
			return two(Eq)
		}
		return one(Assign)
	case '!':
		if l.peek2() == '=' {
			return two(Neq)
		}
		return one(Not)
	case '<':
		if l.peek2() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek2() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '&':
		if l.peek2() == '&' {
			return two(AndAnd)
		}
	case '|':
		if l.peek2() == '|' {
			return two(OrOr)
		}
	}
	return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// Tokenize lexes the whole file, returning all tokens up to and including EOF.
func Tokenize(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
