// Package lang implements the source language in which target programs are
// written: a small C-like language with functions, globals, loops, branches
// and integer/pointer values.
//
// The language plays the role that C/C++ plays in the vProf paper: it is the
// language of the *profiled application*, not of the profiler. The schema
// generator (package schema) performs the paper's "LLVM pass" static analysis
// over this package's AST, and the compiler (package compiler) lowers it to
// an IR whose interpreter (package vm) is PC-sampled by the profiler runtime
// (package sampler).
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING

	// Keywords.
	KwVar
	KwFunc
	KwExtFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Semi     // ;
	Assign   // =
	AddArrow // +=
	SubArrow // -=
	MulArrow // *=
	DivArrow // /=
	ModArrow // %=
	Inc      // ++
	Dec      // --
	Add      // +
	Sub      // -
	Mul      // *
	Div      // /
	Mod      // %
	Not      // !
	Eq       // ==
	Neq      // !=
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	AndAnd   // &&
	OrOr     // ||
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	IDENT:      "identifier",
	NUMBER:     "number",
	STRING:     "string",
	KwVar:      "var",
	KwFunc:     "func",
	KwExtFunc:  "extfunc",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwTrue:     "true",
	KwFalse:    "false",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	Comma:      ",",
	Semi:       ";",
	Assign:     "=",
	AddArrow:   "+=",
	SubArrow:   "-=",
	MulArrow:   "*=",
	DivArrow:   "/=",
	ModArrow:   "%=",
	Inc:        "++",
	Dec:        "--",
	Add:        "+",
	Sub:        "-",
	Mul:        "*",
	Div:        "/",
	Mod:        "%",
	Not:        "!",
	Eq:         "==",
	Neq:        "!=",
	Lt:         "<",
	Le:         "<=",
	Gt:         ">",
	Ge:         ">=",
	AndAnd:     "&&",
	OrOr:       "||",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"var":      KwVar,
	"func":     KwFunc,
	"extfunc":  KwExtFunc,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"true":     KwTrue,
	"false":    KwFalse,
}

// Pos is a source position. Line and Col are 1-based.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, NUMBER and STRING
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	case STRING:
		return fmt.Sprintf("string %q", t.Lit)
	default:
		return t.Kind.String()
	}
}
