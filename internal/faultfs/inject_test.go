package faultfs_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"vprof/internal/faultfs"
)

func TestOSPassthrough(t *testing.T) {
	fsys := faultfs.NewOS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a", "f.txt")
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	r.Close()
	if err := fsys.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	fi, err := fsys.Stat(path)
	if err != nil || fi.Size() != 2 {
		t.Fatalf("after truncate: %v, %v", fi, err)
	}
	if err := fsys.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestFailNth(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	boom := errors.New("disk on fire")
	inj.FailNth(faultfs.OpSync, 2, boom)

	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // sync #1: fine
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) { // sync #2: injected
		t.Fatalf("sync 2 err = %v, want injected", err)
	}
	if err := f.Sync(); err != nil { // one-shot: sync #3 works again
		t.Fatal(err)
	}
}

func TestShortWrite(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	inj.ShortWriteNth(2, 3)
	path := filepath.Join(t.TempDir(), "f")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, io.ErrShortWrite) || n != 3 {
		t.Fatalf("short write = %d, %v", n, err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != 7 { // 4 + the torn 3
		t.Fatalf("file size = %v, %v, want 7", fi.Size(), err)
	}
}

// TestCrashDiscardsUnsynced is the crash model's contract: synced bytes
// survive, unsynced bytes vanish (or half survive in torn mode), and every
// operation after the crash fails with ErrCrashed.
func TestCrashDiscardsUnsynced(t *testing.T) {
	for _, torn := range []bool{false, true} {
		inj := faultfs.NewInjector(nil)
		inj.SetTorn(torn)
		path := filepath.Join(t.TempDir(), "f")
		f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("durable!")); err != nil { // 8 bytes
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("gone")); err != nil { // unsynced 4
			t.Fatal(err)
		}
		inj.Crash()
		if _, err := f.Write([]byte("x")); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("write after crash = %v", err)
		}
		if err := f.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("sync after crash = %v", err)
		}
		if _, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("open after crash = %v", err)
		}
		f.Close()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(8)
		if torn {
			want = 10 // 8 durable + half of the 4 unsynced
		}
		if fi.Size() != want {
			t.Fatalf("torn=%v: size after crash = %d, want %d", torn, fi.Size(), want)
		}
	}
}

// TestCrashAtCountsMutations checks the op counter drives the crash point
// and that pre-existing file contents are treated as durable.
func TestCrashAtCountsMutations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	inj := faultfs.NewInjector(nil)
	inj.CrashAt(3) // op1 = open-create, op2 = write, op3 = write → crash
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("-new")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-more")); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("write at crash point = %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "old" { // "-new" was never synced
		t.Fatalf("surviving content = %q, want %q", b, "old")
	}
	if inj.Mutations() != 3 {
		t.Fatalf("mutations = %d, want 3", inj.Mutations())
	}
}

// TestRenameCarriesDurability: a temp file synced before rename survives a
// crash under its new name.
func TestRenameCarriesDurability(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "f.tmp"), filepath.Join(dir, "f")
	f, err := inj.OpenFile(tmp, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("header")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	inj.Crash()
	b, err := os.ReadFile(final)
	if err != nil || string(b) != "header" {
		t.Fatalf("renamed file after crash = %q, %v", b, err)
	}
}
