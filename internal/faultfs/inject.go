package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// ErrCrashed is returned by every operation after the injector's simulated
// crash point: the "machine" is off, nothing persists anymore.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Op classifies the mutating operations the injector counts and can fail.
type Op string

const (
	OpCreate   Op = "create" // OpenFile with os.O_CREATE
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
)

// failure is one planned fault: the nth operation of a kind returns err; a
// write may first persist a short prefix (torn write).
type failure struct {
	op   Op
	nth  int
	err  error
	keep int // for OpWrite: bytes persisted before the error (-1 = none)
	used bool
}

// Injector wraps an FS and injects faults. The crash model mirrors a power
// cut over a POSIX filesystem: data written but not yet Synced may vanish
// (entirely, or — in torn mode — a prefix survives); data synced before the
// crash point always survives; after the crash every operation fails with
// ErrCrashed. Because the injector applies the crash by truncating the real
// underlying files, the directory can then be reopened with NewOS() to play
// the restart.
type Injector struct {
	inner FS

	mu       sync.Mutex
	muts     int // mutating ops performed
	perOp    map[Op]int
	failures []*failure
	crashAt  int // crash when muts reaches this count (0 = never)
	torn     bool
	crashed  bool
	durable  map[string]int64 // path → length known to be on stable storage
}

// NewInjector wraps inner (nil = the real filesystem) with fault injection.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = NewOS()
	}
	return &Injector{inner: inner, perOp: map[Op]int{}, durable: map[string]int64{}}
}

// FailNth makes the nth (1-based) operation of kind op return err, once.
func (in *Injector) FailNth(op Op, nth int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failures = append(in.failures, &failure{op: op, nth: nth, err: err, keep: -1})
}

// ShortWriteNth makes the nth write persist only keep bytes and then return
// io.ErrShortWrite — a torn write the caller must roll back.
func (in *Injector) ShortWriteNth(nth, keep int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failures = append(in.failures, &failure{op: OpWrite, nth: nth, err: io.ErrShortWrite, keep: keep})
}

// CrashAt schedules the simulated crash at the nth mutating operation: that
// operation (and everything after it) fails with ErrCrashed, and all
// unsynced data is discarded at that moment.
func (in *Injector) CrashAt(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
}

// SetTorn controls what the crash leaves behind: false discards every
// unsynced byte, true keeps half of each file's unsynced tail (a torn
// write straddling the crash).
func (in *Injector) SetTorn(torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.torn = torn
}

// Crash simulates the crash immediately.
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashLocked()
}

// Crashed reports whether the crash point has been reached.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Mutations returns the count of mutating operations performed so far — a
// fault-free run's total sizes the crash-replay matrix.
func (in *Injector) Mutations() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.muts
}

// step accounts one mutating operation and applies the fault plan. It
// returns keep >= 0 when a write should persist only a prefix.
func (in *Injector) step(op Op) (keep int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return -1, ErrCrashed
	}
	in.muts++
	in.perOp[op]++
	for _, f := range in.failures {
		if !f.used && f.op == op && f.nth == in.perOp[op] {
			f.used = true
			return f.keep, f.err
		}
	}
	if in.crashAt > 0 && in.muts >= in.crashAt {
		in.crashLocked()
		return -1, ErrCrashed
	}
	return -1, nil
}

// crashLocked flips the injector into the crashed state and discards every
// unsynced byte (or, in torn mode, all but half of each unsynced tail).
func (in *Injector) crashLocked() {
	in.crashed = true
	for path, dur := range in.durable {
		fi, err := in.inner.Stat(path)
		if err != nil || fi.Size() <= dur {
			continue
		}
		cut := dur
		if in.torn {
			cut = dur + (fi.Size()-dur)/2
		}
		// Best effort: the file may have been renamed or removed.
		_ = in.inner.Truncate(path, cut)
	}
}

// alive returns ErrCrashed once the crash point has passed (used by the
// non-mutating operations, which a dead machine cannot serve either).
func (in *Injector) alive() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

// markDurable records the file's current length as crash-safe.
func (in *Injector) markDurable(path string, f File) {
	fi, err := f.Stat()
	if err != nil {
		return
	}
	in.mu.Lock()
	in.durable[path] = fi.Size()
	in.mu.Unlock()
}

// trackOpen seeds the durability ledger: bytes already on disk when a file
// is first opened are presumed to have been synced by a previous life.
func (in *Injector) trackOpen(path string, f File) {
	in.mu.Lock()
	if _, ok := in.durable[path]; ok {
		in.mu.Unlock()
		return
	}
	in.mu.Unlock()
	in.markDurable(path, f)
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if _, err := in.step(OpCreate); err != nil {
			return nil, err
		}
	} else if err := in.alive(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	in.trackOpen(name, f)
	return &injFile{f: f, path: name, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.alive(); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, path: name, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.step(OpRename); err != nil {
		return err
	}
	if err := in.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	if dur, ok := in.durable[oldpath]; ok {
		in.durable[newpath] = dur
		delete(in.durable, oldpath)
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) Remove(name string) error {
	if _, err := in.step(OpRemove); err != nil {
		return err
	}
	if err := in.inner.Remove(name); err != nil {
		return err
	}
	in.mu.Lock()
	delete(in.durable, name)
	in.mu.Unlock()
	return nil
}

func (in *Injector) MkdirAll(name string, perm fs.FileMode) error {
	if _, err := in.step(OpMkdir); err != nil {
		return err
	}
	return in.inner.MkdirAll(name, perm)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if err := in.alive(); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := in.alive(); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if _, err := in.step(OpTruncate); err != nil {
		return err
	}
	if err := in.inner.Truncate(name, size); err != nil {
		return err
	}
	in.clampDurable(name, size)
	return nil
}

func (in *Injector) clampDurable(path string, size int64) {
	in.mu.Lock()
	if dur, ok := in.durable[path]; ok && dur > size {
		in.durable[path] = size
	}
	in.mu.Unlock()
}

// injFile routes a file's operations through the injector's fault plan.
type injFile struct {
	f    File
	path string
	in   *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	keep, err := f.in.step(OpWrite)
	if err != nil {
		if keep >= 0 && keep < len(p) {
			n, _ := f.f.Write(p[:keep]) // the torn prefix reaches the file
			return n, err
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.in.step(OpSync); err != nil {
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.in.markDurable(f.path, f.f)
	return nil
}

func (f *injFile) Truncate(size int64) error {
	if _, err := f.in.step(OpTruncate); err != nil {
		return err
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.in.clampDurable(f.path, size)
	return nil
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.in.alive(); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *injFile) Close() error { return f.f.Close() }

func (f *injFile) Stat() (fs.FileInfo, error) { return f.f.Stat() }

func (f *injFile) Name() string { return f.path }

// String describes the injector state (handy in test failure messages).
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return fmt.Sprintf("faultfs.Injector{muts=%d crashAt=%d crashed=%v torn=%v}",
		in.muts, in.crashAt, in.crashed, in.torn)
}
