// Package faultfs is the filesystem seam under the profile store: a small
// interface covering exactly the operations the store performs, a
// passthrough implementation over the real filesystem, and an injecting
// implementation (inject.go) that can fail the nth operation, tear a write
// short, or simulate a whole-machine crash at a chosen persistence point.
//
// The store takes an FS in its Options; production uses NewOS(), the
// crash-replay test matrix uses NewInjector(nil). Because the injector
// passes every surviving byte through to the real filesystem, a "crashed"
// directory can afterwards be reopened with the plain OS implementation —
// exactly like restarting a process after a power cut.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the store needs. Handles opened for append
// only Write/Sync/Truncate; read handles only ReadAt.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file to stable storage; data written before a
	// successful Sync survives a crash.
	Sync() error
	// Truncate cuts the file to size (used to roll back partial appends).
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
}

// FS is the filesystem surface the store writes through.
type FS interface {
	// OpenFile opens (and with os.O_CREATE, creates) a file for writing.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(name string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// Truncate cuts the named file to size without holding a handle.
	Truncate(name string, size int64) error
}

// osFS is the passthrough implementation over package os.
type osFS struct{}

// NewOS returns the real-filesystem implementation.
func NewOS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
