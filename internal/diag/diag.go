// Package diag is the shared diagnostic vocabulary of vprof's static
// checkers. Both `vprof lint` (IR hygiene and debug-location coverage) and
// `vprof check` (the abstract-interpretation perf-smell checker) produce the
// same Finding shape — a stable rule ID, a severity, a source position and a
// message — and render through the same deterministic Report, so tooling
// that consumes one consumes the other. The exit-code convention is shared
// too: 0 clean, 1 findings at warning severity or above, 2 usage errors
// (the caller's concern).
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a finding. Info findings are advisory and do not
// affect the exit code; Warn and Error do.
type Severity int

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one diagnostic: a rule identifier (kebab-case, stable across
// releases — CI goldens key on it), where it fired, and a human message.
type Finding struct {
	Rule     string
	Severity Severity
	File     string
	Line     int
	Function string // enclosing function, "" for file-level findings
	Variable string // subject variable, "" for CFG-level findings
	Message  string
}

// Subject renders the function/variable qualifier of the finding.
func (f Finding) Subject() string {
	s := f.Function
	if f.Variable != "" {
		if s != "" {
			s += "."
		}
		s += f.Variable
	}
	return s
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d: %s %s", f.File, f.Line, f.Severity, f.Rule)
	if s := f.Subject(); s != "" {
		b.WriteString(": " + s)
	}
	b.WriteString(": " + f.Message)
	return b.String()
}

// Report is an ordered collection of findings from one tool run.
type Report struct {
	Tool     string // "lint" or "check"; the renderer's header
	Findings []Finding
}

// Add appends a finding. Call Sort before rendering.
func (r *Report) Add(f Finding) { r.Findings = append(r.Findings, f) }

// Sort orders findings deterministically: file, line, rule, subject,
// message. Analyzer passes may emit in any order (including map-iteration
// order); sorting here is what makes the rendered report byte-stable.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		if a.Variable != b.Variable {
			return a.Variable < b.Variable
		}
		return a.Message < b.Message
	})
}

// Merge appends another report's findings (multi-file runs).
func (r *Report) Merge(other *Report) {
	r.Findings = append(r.Findings, other.Findings...)
}

// Render prints the summary header and one finding per line. Deterministic
// given sorted findings.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d findings\n", r.Tool, len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

// ExitCode maps the report to the CLI convention: 1 when any finding is at
// warning severity or above, 0 otherwise (clean, or info-only).
func (r *Report) ExitCode() int {
	for _, f := range r.Findings {
		if f.Severity >= SevWarn {
			return 1
		}
	}
	return 0
}
