package harness

import (
	"context"
	"fmt"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/causal"
	"vprof/internal/parallel"
)

// CausalRow is one workload's calibrated-vs-causal rank comparison.
type CausalRow struct {
	ID   string
	Root string
	// CalibratedRank is the root cause's rank in vProf's calibrated
	// diagnosis (Table 3 protocol); 0 = not ranked.
	CalibratedRank int
	// CausalRank is the root cause's rank in the causal impact ranking
	// (func-granularity virtual-speedup experiments); 0 = not ranked.
	CausalRank int
	// Impact is the root cause's measured causal impact (end-to-end
	// speedup at the most aggressive factor).
	Impact float64
	// TopCausal is the function with the highest causal impact.
	TopCausal string
	// Spearman is the rank correlation between the calibrated and causal
	// rankings over their function intersection; meaningful when
	// Overlap >= 2.
	Spearman float64
	// Overlap is the size of that intersection.
	Overlap int
	// Capped marks a workload whose baseline exhausts even the escalated
	// experiment budget (unbounded loops): causal impacts are then
	// unmeasurable and reported as zero.
	Capped bool
}

// CausalValidation runs the causal rank-validation protocol over all 18
// reproduced issues: vProf's calibrated diagnosis ranks the root cause from
// sampled value profiles, the causal engine ranks it by measured virtual-
// speedup impact, and the table reports how the two orderings agree.
func CausalValidation() (string, []CausalRow, error) {
	return CausalValidationWorkers(0)
}

// CausalValidationWorkers is CausalValidation on an explicit worker pool.
// Rows land in registry order and both pipelines are deterministic, so the
// table is byte-for-byte identical at any worker count.
func CausalValidationWorkers(workers int) (string, []CausalRow, error) {
	workers = parallel.Workers(workers)
	all := append(bugs.All(), bugs.UnresolvedIssues()...)
	rows, err := parallel.MapErr(workers, len(all), func(i int) (CausalRow, error) {
		row, err := causalRow(all[i], workers)
		if err != nil {
			return row, fmt.Errorf("%s: %w", all[i].ID, err)
		}
		return row, nil
	})
	if err != nil {
		return "", nil, err
	}
	return RenderCausalTable(rows), rows, nil
}

func causalRow(w *bugs.Workload, workers int) (CausalRow, error) {
	b, err := w.Build()
	if err != nil {
		return CausalRow{}, err
	}
	row := CausalRow{ID: w.ID, Root: w.RootFunc}

	params := analysis.DefaultParams()
	params.Workers = workers
	rep, err := b.Analyze(params, Runs)
	if err != nil {
		return row, err
	}
	row.CalibratedRank = rep.Rank(w.RootFunc)

	crep, err := causal.Run(context.Background(), b.Prog, w.BuggyConfig(0), causal.Options{
		Workers: workers,
	})
	if err != nil {
		return row, err
	}
	row.Capped = crep.Capped
	if len(crep.Curves) > 0 {
		row.TopCausal = crep.Curves[0].Name
	}
	var causalOrder []string
	for i, c := range crep.Curves {
		causalOrder = append(causalOrder, c.Name)
		if c.Name == w.RootFunc {
			row.CausalRank = i + 1
			row.Impact = c.Impact
		}
	}
	var calibOrder []string
	for _, f := range rep.Funcs {
		calibOrder = append(calibOrder, f.Name)
	}
	row.Spearman, row.Overlap = spearman(calibOrder, causalOrder)
	return row, nil
}

// spearman computes the Spearman rank correlation between two ranked name
// lists over their intersection, re-ranking each side 1..n within the
// intersection. Degenerate intersections (n < 2) return rho 0.
func spearman(a, b []string) (float64, int) {
	inB := make(map[string]bool, len(b))
	for _, n := range b {
		inB[n] = true
	}
	common := make(map[string]bool)
	for _, n := range a {
		if inB[n] {
			common[n] = true
		}
	}
	n := len(common)
	if n < 2 {
		return 0, n
	}
	rank := func(order []string) map[string]int {
		r := make(map[string]int, n)
		i := 0
		for _, name := range order {
			if common[name] {
				i++
				r[name] = i
			}
		}
		return r
	}
	ra, rb := rank(a), rank(b)
	var d2 int
	for name := range common {
		d := ra[name] - rb[name]
		d2 += d * d
	}
	return 1 - float64(6*d2)/float64(n*(n*n-1)), n
}

// RenderCausalTable formats the rank-validation table with its agreement
// summary. Output is deterministic, so tests gate it byte-for-byte.
func RenderCausalTable(rows []CausalRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Causal validation. vProf calibrated rank vs causal virtual-speedup impact rank (func granularity).\n\n")
	fmt.Fprintf(&b, "%-4s %-34s %-6s %-7s %-8s %-10s %-9s %s\n",
		"ID", "root cause", "calib", "causal", "impact", "spearman", "overlap", "top causal function")
	line := strings.Repeat("-", 118)
	fmt.Fprintln(&b, line)
	top3, spSum, spN := 0, 0.0, 0
	for _, r := range rows {
		if r.CausalRank >= 1 && r.CausalRank <= 3 {
			top3++
		}
		sp := "n/a"
		if r.Overlap >= 2 {
			sp = fmt.Sprintf("%.2f", r.Spearman)
			spSum += r.Spearman
			spN++
		}
		impact := fmt.Sprintf("%.1f%%", r.Impact*100)
		top := r.TopCausal
		if r.Capped {
			top += " (capped)"
		}
		fmt.Fprintf(&b, "%-4s %-34s %-6s %-7s %-8s %-10s %-9d %s\n",
			r.ID, r.Root, RankString(r.CalibratedRank), RankString(r.CausalRank),
			impact, sp, r.Overlap, top)
	}
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "root cause in causal top-3: %d/%d", top3, len(rows))
	if spN > 0 {
		fmt.Fprintf(&b, "   mean Spearman: %.2f (over %d workloads with overlap >= 2)", spSum/float64(spN), spN)
	}
	fmt.Fprintln(&b)
	return b.String()
}
