package harness_test

import (
	"reflect"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/harness"
	"vprof/internal/vm"
)

// Golden equivalence gate for the register execution engine: every
// paper artifact — Tables 3/4/5, Figure 8, the 18-issue causal
// validation table, and the continuous-mode replay — re-run with the
// register engine as the process default must be byte-for-byte
// identical to the tree-walker outputs (wall-clock timings masked),
// both sequentially and on an 8-way worker pool. The harness tests in
// this package never call t.Parallel, so flipping the process-wide
// default engine here cannot race another test's executions.

// underEngine runs fn with the process default engine set to name and
// restores the previous default before returning.
func underEngine(t *testing.T, name string, fn func()) {
	t.Helper()
	prev, err := vm.SetDefaultEngine(name)
	if err != nil {
		t.Fatal(err)
	}
	defer vm.SetDefaultEngine(prev)
	fn()
}

func TestTable3EngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 is slow")
	}
	treeText, treeRows, err := harness.Table3Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		var regText string
		var regRows []harness.Table3Row
		underEngine(t, vm.EngineRegister, func() {
			regText, regRows, err = harness.Table3Workers(workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if regText != treeText {
			t.Errorf("Table 3 differs: tree vs register(workers=%d):\n--- tree ---\n%s\n--- register ---\n%s",
				workers, treeText, regText)
		}
		if !reflect.DeepEqual(regRows, treeRows) {
			t.Errorf("Table 3 rows differ: tree vs register(workers=%d):\ntree: %+v\nregister: %+v",
				workers, treeRows, regRows)
		}
	}
}

func TestTable4EngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4 is slow")
	}
	tree, err := harness.Table4Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	want := harness.RenderTable4(tree)
	for _, workers := range []int{1, 8} {
		var reg []harness.Table4Case
		underEngine(t, vm.EngineRegister, func() {
			reg, err = harness.Table4Workers(workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := harness.RenderTable4(reg); got != want {
			t.Errorf("Table 4 differs: tree vs register(workers=%d):\n--- tree ---\n%s\n--- register ---\n%s",
				workers, want, got)
		}
	}
}

func TestTable5EngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 5 is slow")
	}
	// InitMs and WallMs are wall-clock measurements and legitimately vary
	// between runs (and between engines — the register engine being faster
	// is the point); zero them before comparing the rendering.
	mask := func(rows []harness.Table5Row) []harness.Table5Row {
		out := make([]harness.Table5Row, len(rows))
		copy(out, rows)
		for i := range out {
			out[i].InitMs = 0
			out[i].WallMs = 0
		}
		return out
	}
	tree, err := harness.Table5Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	want := harness.RenderTable5(mask(tree))
	for _, workers := range []int{1, 8} {
		var reg []harness.Table5Row
		underEngine(t, vm.EngineRegister, func() {
			reg, err = harness.Table5Workers(workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := harness.RenderTable5(mask(reg)); got != want {
			t.Errorf("Table 5 (timings masked) differs: tree vs register(workers=%d):\n--- tree ---\n%s\n--- register ---\n%s",
				workers, want, got)
		}
	}
}

func TestFigure8EngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 8 sweep is slow")
	}
	tree, err := harness.Figure8Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	want := harness.RenderFigure8(tree)
	for _, workers := range []int{1, 8} {
		var reg *harness.Figure8Result
		underEngine(t, vm.EngineRegister, func() {
			reg, err = harness.Figure8Workers(workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := harness.RenderFigure8(reg); got != want {
			t.Errorf("Figure 8 differs: tree vs register(workers=%d):\n--- tree ---\n%s\n--- register ---\n%s",
				workers, want, got)
		}
	}
}

func TestCausalValidationEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("causal validation is slow")
	}
	treeText, treeRows, err := harness.CausalValidationWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		var regText string
		var regRows []harness.CausalRow
		underEngine(t, vm.EngineRegister, func() {
			regText, regRows, err = harness.CausalValidationWorkers(workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if regText != treeText {
			t.Errorf("causal validation table differs: tree vs register(workers=%d):\n--- tree ---\n%s\n--- register ---\n%s",
				workers, treeText, regText)
		}
		if !reflect.DeepEqual(regRows, treeRows) {
			t.Errorf("causal validation rows differ: tree vs register(workers=%d)", workers)
		}
	}
}

func TestReplayContinuousEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("continuous replay is slow")
	}
	workloads := append(bugs.All(), bugs.UnresolvedIssues()...)
	tree, err := harness.ReplayContinuous(t.TempDir(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	var reg []harness.ReplayRow
	underEngine(t, vm.EngineRegister, func() {
		reg, err = harness.ReplayContinuous(t.TempDir(), workloads)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reg, tree) {
		t.Errorf("continuous replay differs: tree vs register:\n--- tree ---\n%s\n--- register ---\n%s",
			harness.RenderReplay(tree), harness.RenderReplay(reg))
	}
	for _, r := range reg {
		if !r.RenderMatch {
			t.Errorf("%s: register-engine service report differs from offline report", r.ID)
		}
	}
}
