package harness_test

import (
	"reflect"
	"testing"

	"vprof/internal/harness"
)

// The parallel analysis engine must be invisible in the output: every table
// rendered with an 8-way worker pool must be byte-for-byte identical to the
// sequential (workers=1) rendering. These are the golden determinism tests
// for the worker-pool fan-out in table3.go / table45.go and the parallel
// discounter underneath them.

func TestTable3DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 is slow")
	}
	seqText, seqRows, err := harness.Table3Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	parText, parRows, err := harness.Table3Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if seqText != parText {
		t.Errorf("Table 3 differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seqText, parText)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("Table 3 rows differ:\nworkers=1: %+v\nworkers=8: %+v", seqRows, parRows)
	}
}

func TestTable4DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4 is slow")
	}
	seq, err := harness.Table4Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.Table4Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := harness.RenderTable4(par), harness.RenderTable4(seq); got != want {
		t.Errorf("Table 4 differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
}

func TestTable5DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 5 is slow")
	}
	seq, err := harness.Table5Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.Table5Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	// InitMs and WallMs are wall-clock measurements and legitimately vary
	// between runs; zero them on both sides before comparing the rendering.
	mask := func(rows []harness.Table5Row) []harness.Table5Row {
		out := make([]harness.Table5Row, len(rows))
		copy(out, rows)
		for i := range out {
			out[i].InitMs = 0
			out[i].WallMs = 0
		}
		return out
	}
	if got, want := harness.RenderTable5(mask(par)), harness.RenderTable5(mask(seq)); got != want {
		t.Errorf("Table 5 (timings masked) differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
}

func TestFigure8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("Figure 8 sweep is slow")
	}
	seq, err := harness.Figure8Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.Figure8Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := harness.RenderFigure8(par), harness.RenderFigure8(seq); got != want {
		t.Errorf("Figure 8 differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
}
