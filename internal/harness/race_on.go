//go:build race

package harness

// raceEnabled reports whether this binary was built with the race detector.
// The cluster replay tests skip under it: they fork three store-backed HTTP
// nodes with fsync-on-ack and take minutes at race-detector speed, while the
// -race coverage of the cluster logic itself lives in internal/cluster.
const raceEnabled = true
