package harness_test

import (
	"strings"
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/harness"
)

func TestRankString(t *testing.T) {
	cases := map[int]string{
		0: "NR", -3: "NR",
		1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 10: "10th",
		11: "11th", 12: "12th", 13: "13th", 21: "21st", 22: "22nd",
		23: "23rd", 101: "101st", 111: "111th", 454: "454th", 1024: "1024th",
	}
	for r, want := range cases {
		if got := harness.RankString(r); got != want {
			t.Errorf("RankString(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestTable1Render(t *testing.T) {
	text := harness.Table1()
	for _, want := range []string{"MDEV-21826", "Redis-8668", "Postgres-17330", "WrongConstraint"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if strings.Count(text, "\n") < 16 {
		t.Error("Table 1 too short")
	}
}

func TestTable2Render(t *testing.T) {
	text := harness.Table2()
	for _, tool := range []string{"gprof", "perf-PT", "COZ", "stat-debug", "vProf"} {
		if !strings.Contains(text, tool) {
			t.Errorf("Table 2 missing %q", tool)
		}
	}
}

// TestDiagnoseWorkloadRow exercises the full Table 3 protocol on one
// workload (the full table is covered by BenchmarkTable3Diagnosis and the
// bugs package tests).
func TestDiagnoseWorkloadRow(t *testing.T) {
	w := bugs.ByID("b4")
	row, err := harness.DiagnoseWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if row.VProfRank < 1 || row.VProfRank > 5 {
		t.Errorf("vProf rank = %d", row.VProfRank)
	}
	if !row.ClassMatch {
		t.Errorf("classification mismatch: got %v", row.Pattern)
	}
	if row.Gprof != 0 && row.Gprof <= row.VProfRank {
		t.Errorf("gprof (%d) should rank the root cause worse than vProf (%d)", row.Gprof, row.VProfRank)
	}
	if !row.BBOK {
		t.Error("bb-dist not computed")
	}
	text := harness.RenderTable3([]harness.Table3Row{row})
	if !strings.Contains(text, "b4") || !strings.Contains(text, "[3rd]") {
		t.Errorf("render missing row data:\n%s", text)
	}
}

func TestHistDiscOnly(t *testing.T) {
	b, err := bugs.ByID("b2").Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := harness.HistDiscOnly(b)
	if err != nil {
		t.Fatal(err)
	}
	// With zero variables monitored there must be no variable discounts.
	for _, fr := range rep.Funcs {
		if fr.DiscountSource == "variable" {
			t.Fatalf("variable discount with empty schema: %+v", fr)
		}
	}
	if len(rep.Funcs) == 0 {
		t.Fatal("empty ranking")
	}
}

func TestTable4CaseStudies(t *testing.T) {
	cases, err := harness.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("%d cases, want 3", len(cases))
	}
	for _, c := range cases {
		if !c.RootFound {
			t.Errorf("%s: root cause not surfaced in top-2 of any component", c.ID)
		}
	}
	// u1 reproduces the paper's two-component investigation.
	u1 := cases[0]
	if len(u1.Findings) != 2 {
		t.Fatalf("u1 has %d findings", len(u1.Findings))
	}
	text := harness.RenderTable4(cases)
	if !strings.Contains(text, "lookupKey") {
		t.Errorf("u1 narrative missing lookupKey false positive:\n%s", text)
	}
	if !strings.Contains(text, "excluded") {
		t.Errorf("u1 narrative missing new-function exclusion:\n%s", text)
	}
}

func TestTable5Overhead(t *testing.T) {
	rows, err := harness.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Variables <= 0 {
			t.Errorf("%s: no variables monitored", r.ID)
		}
		if r.SamplesKB <= 0 || r.RunTicks <= 0 {
			t.Errorf("%s: empty metrics %+v", r.ID, r)
		}
	}
	if !strings.Contains(harness.RenderTable5(rows), "PCToVar(KB)") {
		t.Error("render header missing")
	}
}

func TestFigure6Series(t *testing.T) {
	series, err := harness.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	b1 := series[0]
	if b1.Variable != "available_mem" {
		t.Fatalf("series 0 = %s", b1.Variable)
	}
	// Figure 6a's separation: nonzero normal values, all-zero buggy values.
	for _, v := range b1.NormalValues {
		if v == 0 {
			t.Fatal("b1 normal available_mem contains zero")
		}
	}
	for _, v := range b1.BuggyValues {
		if v != 0 {
			t.Fatal("b1 buggy available_mem nonzero")
		}
	}
	// Figure 6b: the buggy numclients series changes value far less often.
	b12 := series[1]
	if changes(b12.BuggyValues)*5 > changes(b12.NormalValues) {
		t.Errorf("numclients: buggy changes %d, normal %d — stuck signature missing",
			changes(b12.BuggyValues), changes(b12.NormalValues))
	}
	if !strings.Contains(harness.RenderFigure6(series), "numclients") {
		t.Error("render missing series")
	}
}

func changes(vals []int64) int {
	n := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			n++
		}
	}
	return n
}

func TestFigure8SweepReanalyzesOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	res, err := harness.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DefaultDiscount) != 10 || len(res.ValidDiscount) != 10 {
		t.Fatalf("sweep sizes %d/%d", len(res.DefaultDiscount), len(res.ValidDiscount))
	}
	for _, p := range res.DefaultDiscount {
		if p.Diagnosed < 0 || p.Diagnosed > 15 {
			t.Errorf("diagnosed out of range: %+v", p)
		}
		if p.MeanRank <= 0 {
			t.Errorf("mean rank missing: %+v", p)
		}
	}
	if !strings.Contains(harness.RenderFigure8(res), "DefaultDiscount") {
		t.Error("render missing sweep")
	}
}

func TestDeterministicTables(t *testing.T) {
	// The Table 3 row for one workload must be identical across calls.
	w := bugs.ByID("b1")
	r1, err := harness.DiagnoseWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.DiagnoseWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.VProfRank != r2.VProfRank || r1.Gprof != r2.Gprof || r1.StatDebug != r2.StatDebug ||
		r1.Pattern != r2.Pattern || r1.BBMean != r2.BBMean {
		t.Errorf("nondeterministic rows:\n%+v\n%+v", r1, r2)
	}
}

func TestFigure7Overhead(t *testing.T) {
	rows, err := harness.Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseMs <= 0 {
			t.Errorf("%s: no baseline time", r.ID)
		}
		if r.VProfRatio <= 0 || r.SampleCount == 0 {
			t.Errorf("%s: profiling metrics missing: %+v", r.ID, r)
		}
		// vProf does strictly more work per alarm than gprof-style
		// sampling; allow generous wall-clock jitter headroom.
		if r.VProfRatio > 200 {
			t.Errorf("%s: implausible overhead %v", r.ID, r.VProfRatio)
		}
	}
	if !strings.Contains(harness.RenderFigure7(rows), "w/ vProf") {
		t.Error("render header missing")
	}
}

func TestTable3FullRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 in -short mode")
	}
	text, rows, err := harness.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	top5 := 0
	for _, r := range rows {
		if r.VProfRank >= 1 && r.VProfRank <= 5 {
			top5++
		}
	}
	if top5 != 15 {
		t.Errorf("vProf top-5 = %d/15\n%s", top5, text)
	}
	if !strings.Contains(text, "root cause in top-5") {
		t.Error("summary line missing")
	}
}

func TestFalsePositiveRatio(t *testing.T) {
	// b7's narrative: dummy_connection ranks above the root cause but is
	// its callee, so it is not a false positive.
	b, err := bugs.ByID("b7").Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Analyze(analysis.DefaultParams(), harness.Runs)
	if err != nil {
		t.Fatal(err)
	}
	fp := harness.FalsePositiveRatio(rep, b)
	if fp < 0 || fp > 1 {
		t.Fatalf("ratio out of range: %v", fp)
	}
	// The paper's average is 10.6%; each individual issue admits at most
	// a couple of unrelated functions above the root cause.
	if fp > 0.4 {
		t.Errorf("b7 false positive ratio %v too high\n%s", fp, rep.Render(5))
	}
}
