package harness_test

import (
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/harness"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
)

// TestSketchRankIdentity is the rank-identity golden for the incremental
// path: for every reproduced issue (b1-b15) and unresolved issue (u1-u3),
// analyzing folded per-variable sketches must produce the same ranked
// function table — names, ranks, calibrated costs, discount verdicts — as
// the full profile analysis, and in particular the same root-cause rank.
// The sketch analysis is also run twice to pin its determinism (block
// localization is absent from sketches, so Render is compared only
// sketch-vs-sketch, not sketch-vs-full).
func TestSketchRankIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all 18 workloads; slow")
	}
	all := append(bugs.All(), bugs.UnresolvedIssues()...)
	for _, w := range all {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			b, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			in := analysis.Input{Debug: b.Prog.Debug, Schema: b.Schema}
			for i := 0; i < harness.Runs; i++ {
				np, _ := b.ProfileNormal(i)
				bp, _ := b.ProfileBuggy(i)
				in.Normal = append(in.Normal, np)
				in.Buggy = append(in.Buggy, bp)
			}
			params := analysis.DefaultParams()
			full, err := analysis.Analyze(in, params)
			if err != nil {
				t.Fatal(err)
			}

			fold := func(ps []*sampler.Profile) []*sketch.Profile {
				out := make([]*sketch.Profile, len(ps))
				for i, p := range ps {
					out[i] = sketch.FromProfile(p)
				}
				return out
			}
			normals := fold(in.Normal)
			si := analysis.SketchInput{
				Debug:  b.Prog.Debug,
				Schema: b.Schema,
				Normal: normals[0],
				Corpus: analysis.CorpusOfSketches(normals, b.Prog.Debug),
				Buggy:  fold(in.Buggy),
			}
			sk, err := analysis.AnalyzeSketches(si, params)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := sk.Rank(w.RootFunc), full.Rank(w.RootFunc); got != want {
				t.Errorf("root cause %s: sketch rank %d, full rank %d", w.RootFunc, got, want)
			}
			if len(sk.Funcs) != len(full.Funcs) {
				t.Fatalf("sketch ranked %d funcs, full %d", len(sk.Funcs), len(full.Funcs))
			}
			for i := range full.Funcs {
				f, g := full.Funcs[i], sk.Funcs[i]
				if f.Name != g.Name || f.Rank != g.Rank || f.Calibrated != g.Calibrated || f.Discount != g.Discount {
					t.Fatalf("rank table diverges at %d: full %s (rank %d, cal %v, disc %v) vs sketch %s (rank %d, cal %v, disc %v)",
						i, f.Name, f.Rank, f.Calibrated, f.Discount, g.Name, g.Rank, g.Calibrated, g.Discount)
				}
			}

			again, err := analysis.AnalyzeSketches(si, params)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := again.Render(10), sk.Render(10); got != want {
				t.Errorf("sketch analysis nondeterministic:\nfirst:\n%s\nsecond:\n%s", want, got)
			}
		})
	}
}
