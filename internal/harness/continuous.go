package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/obs"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

// replayTop bounds diagnosis reports deep enough to cover every function of
// every workload, so the service/offline comparison sees complete rankings.
const replayTop = 200

// ReplayRow is one workload's outcome of the continuous-mode replay: the
// service diagnosis versus the offline Table 3 pipeline over the identical
// profiles.
type ReplayRow struct {
	ID       string
	RootFunc string
	// OfflineRank/ServiceRank are the root cause's rank in each path
	// (0 = not ranked).
	OfflineRank, ServiceRank int
	// RenderMatch is true when the service's rendered report equals the
	// offline render byte for byte.
	RenderMatch bool
	// CachedSecond is true when re-diagnosing the unchanged workload was
	// served from the memo cache.
	CachedSecond bool
	// Pushes/Dups count ingestion outcomes (Dups > 0 would mean the
	// concurrent pushes collided, which the store must prevent).
	Pushes, Dups int
}

// ReplayContinuous spawns the continuous-profiling service over a fresh
// store in dir and replays each workload through the HTTP API end to end:
// Runs normal + Runs candidate profiling runs pushed concurrently, a
// diagnosis of the candidate set against the stored baseline corpus, a
// second (memoized) diagnosis, and a byte-for-byte comparison against the
// offline analysis of the very same profiles.
//
// The replay runs with the full observability stack enabled — shared
// metrics registry across service, store and analysis worker pool — and
// finishes by asserting /healthz reports ok and /metrics exposes the
// request-path series. The byte-for-byte render comparison therefore
// doubles as the proof that instrumentation is free: the observed reports
// are identical to the uninstrumented offline pipeline's.
func ReplayContinuous(dir string, workloads []*bugs.Workload) ([]ReplayRow, error) {
	reg := obs.NewRegistry()
	st, err := store.Open(dir, store.Options{Metrics: reg})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	srv, err := service.New(service.Config{
		Store:    st,
		Resolver: service.NewBugsResolver(),
		Workers:  4,
		Top:      replayTop,
		Metrics:  reg,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	// The replay client is the production configuration: retrying with
	// backoff, instrumented into the same registry the service exports. A
	// healthy replay must finish with zero retries and zero sheds — the
	// counters exist so checkObservability can prove they stayed flat.
	client := service.NewClient(base).Instrument(reg)

	var rows []ReplayRow
	for _, w := range workloads {
		row, err := replayWorkload(client, w)
		if err != nil {
			return rows, fmt.Errorf("%s: %w", w.ID, err)
		}
		rows = append(rows, row)
	}
	if err := checkObservability(base); err != nil {
		return rows, err
	}
	return rows, nil
}

// checkObservability asserts the replayed service's operational endpoints:
// /healthz must report ok (store writable, baselines loaded) and /metrics
// must expose the HTTP, store, diagnose and worker-pool series.
func checkObservability(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var h service.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		return fmt.Errorf("healthz after replay: HTTP %d, status %q, checks %v",
			resp.StatusCode, h.Status, h.Checks)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	exposition := string(body)
	for _, series := range []string{
		"vprof_http_requests_total",
		"vprof_http_request_duration_seconds",
		"vprof_http_requests_in_flight",
		"vprof_store_segments_written_total",
		"vprof_store_ingest_bytes_total",
		"vprof_store_decode_cache_hits_total",
		"vprof_diagnose_duration_seconds",
		"vprof_diagnose_requests_total",
		"vprof_diagnose_memo_hits_total",
		"vprof_pool_slots",
		// Robustness counters: present (registered) even though a clean
		// replay never increments them.
		"vprof_panics_total",
		"vprof_shed_total",
		"vprof_client_retries_total",
	} {
		if !strings.Contains(exposition, series) {
			return fmt.Errorf("metrics exposition missing %s after replay", series)
		}
	}
	return nil
}

// replayData carries the raw material of one replayed workload, for callers
// (the cluster replay) that re-diagnose the same profiles through other
// paths and need the offline ground truth to compare against.
type replayData struct {
	b             *bugs.Built
	normal, buggy []*sampler.Profile
	offline       *analysis.Report
}

func replayWorkload(client *service.Client, w *bugs.Workload) (ReplayRow, error) {
	row, _, err := replayWorkloadData(client, w)
	return row, err
}

func replayWorkloadData(client *service.Client, w *bugs.Workload) (ReplayRow, *replayData, error) {
	b, err := w.Build()
	if err != nil {
		return ReplayRow{}, nil, err
	}
	row := ReplayRow{ID: w.ID, RootFunc: w.RootFunc}

	// Profile and push all runs concurrently: 2*Runs clients hitting the
	// ingestion endpoint at once, as continuous mode would see.
	normal := make([]*sampler.Profile, Runs)
	buggy := make([]*sampler.Profile, Runs)
	results := make([]*service.PushResult, 2*Runs)
	errs := make([]error, 2*Runs)
	var wg sync.WaitGroup
	for i := 0; i < Runs; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			normal[i], _ = b.ProfileNormal(i)
			results[i], errs[i] = client.Push(w.ID, store.LabelNormal, fmt.Sprint(i), normal[i])
		}(i)
		go func(i int) {
			defer wg.Done()
			buggy[i], _ = b.ProfileBuggy(i)
			results[Runs+i], errs[Runs+i] = client.Push(w.ID, store.LabelCandidate, fmt.Sprint(i), buggy[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return row, nil, fmt.Errorf("push %d: %w", i, err)
		}
		row.Pushes++
		if results[i].Dup {
			row.Dups++
		}
	}

	resp, err := client.Diagnose(service.DiagnoseRequest{Workload: w.ID, Top: replayTop})
	if err != nil {
		return row, nil, err
	}
	again, err := client.Diagnose(service.DiagnoseRequest{Workload: w.ID, Top: replayTop})
	if err != nil {
		return row, nil, err
	}
	row.CachedSecond = again.Cached && again.Render == resp.Render

	// The offline Table 3 path over the identical profiles.
	offline, err := analysis.Analyze(analysis.Input{
		Debug:  b.Prog.Debug,
		Schema: b.Schema,
		Normal: normal,
		Buggy:  buggy,
	}, analysis.DefaultParams())
	if err != nil {
		return row, nil, err
	}
	row.OfflineRank = offline.Rank(w.RootFunc)
	row.ServiceRank = resp.RootRank(w.RootFunc)
	row.RenderMatch = resp.Render == offline.Render(replayTop)
	return row, &replayData{b: b, normal: normal, buggy: buggy, offline: offline}, nil
}

// RenderReplay formats replay rows for the experiment log.
func RenderReplay(rows []ReplayRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Continuous-mode replay: service diagnosis vs offline pipeline.\n\n")
	fmt.Fprintf(&sb, "%-4s %-30s %-9s %-9s %-6s %-7s\n",
		"ID", "root cause", "offline", "service", "match", "cached")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %-30s %-9s %-9s %-6v %-7v\n",
			r.ID, r.RootFunc, RankString(r.OfflineRank), RankString(r.ServiceRank),
			r.RenderMatch, r.CachedSecond)
	}
	return sb.String()
}
