package harness

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
	"vprof/internal/schema"
)

// Table4Case is the diagnosis of one unresolved issue (Table 4 + §6.2).
type Table4Case struct {
	ID, Ticket, Description string
	// Findings lists, per investigated component, the top-ranked
	// functions with their most anomalous variable.
	Findings []Table4Finding
	// RootFound reports whether the ground-truth root cause surfaced in
	// the top two of some component.
	RootFound bool
	Notes     string
}

// Table4Finding is one component investigation.
type Table4Finding struct {
	Component string
	Top       []string // "func (rank, discount, variable)" summaries
	RootRank  int
}

// Table4 reproduces the unresolved-issue diagnoses: each issue is
// investigated per component (the paper's §6.2 workflow), reporting the
// top-ranked functions and their anomalous variables.
func Table4() ([]Table4Case, error) {
	return Table4Workers(0)
}

// Table4Workers is Table4 with per-issue diagnoses fanned out over an
// explicit worker pool; cases land in registry order.
func Table4Workers(workers int) ([]Table4Case, error) {
	workers = parallel.Workers(workers)
	issues := bugs.UnresolvedIssues()
	return parallel.MapErr(workers, len(issues), func(idx int) (Table4Case, error) {
		w := issues[idx]
		b, err := w.Build()
		if err != nil {
			return Table4Case{}, err
		}
		c := Table4Case{ID: w.ID, Ticket: w.Ticket, Description: w.Description, Notes: w.Notes}

		components := w.Components
		if components == nil {
			components = map[string][]string{w.SourceFile: nil}
		}
		names := make([]string, 0, len(components))
		for name := range components {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rep, err := analyzeComponent(b, components[name], workers)
			if err != nil {
				return Table4Case{}, err
			}
			// The paper's workflow ranks the investigated component's
			// own functions ("vProf ranks its function lookupKey
			// first"): restrict the listing to component members.
			member := func(fn string) bool { return true }
			if components[name] != nil {
				set := map[string]bool{}
				for _, fn := range components[name] {
					set[fn] = true
				}
				member = func(fn string) bool { return set[fn] }
			}
			// Cross-version diagnosis excludes functions that are new
			// in the buggy version (code refactoring, the paper's
			// _addReplyToBufferOrList case) from the ranking.
			isNew := func(fn string) bool {
				return b.NormalProg != b.Prog && b.NormalProg.FuncNamed(fn) == nil
			}
			f := Table4Finding{Component: name}
			localRank := 0
			for _, fr := range rep.Funcs {
				if !member(fr.Name) {
					continue
				}
				note := ""
				if isNew(fr.Name) {
					note = ", new in this version — excluded"
				} else {
					localRank++
					if fr.Name == w.RootFunc {
						f.RootRank = localRank
					}
				}
				if len(f.Top) >= 3 {
					continue
				}
				varName := "-"
				if fr.TopVariable != nil {
					varName = fr.TopVariable.Name
				}
				f.Top = append(f.Top, fmt.Sprintf("%s (rank %d, discount %.2f, var %s%s)",
					fr.Name, localRank, fr.Discount, varName, note))
			}
			if f.RootRank >= 1 && f.RootRank <= 2 {
				c.RootFound = true
			}
			c.Findings = append(c.Findings, f)
		}
		return c, nil
	})
}

// analyzeComponent runs vProf with monitoring restricted to a set of
// functions (nil = whole file).
func analyzeComponent(b *bugs.Built, funcs []string, workers int) (*analysis.Report, error) {
	filter := func(string) bool { return true }
	if funcs != nil {
		set := map[string]bool{}
		for _, f := range funcs {
			set[f] = true
		}
		filter = func(name string) bool { return set[name] }
	}
	// Regenerate schemas with the component filter for both versions.
	buggySch, buggyMeta, err := componentSchema(b.BuggySource, b.W.SourceFile, filter, b.Prog.Debug)
	if err != nil {
		return nil, err
	}
	normalMeta := buggyMeta
	if b.W.NormalSource != "" {
		_, normalMeta, err = componentSchema(b.NormalSource, b.W.SourceFile, filter, b.NormalProg.Debug)
		if err != nil {
			return nil, err
		}
	}

	type pair struct{ normal, buggy *sampler.Profile }
	pairs := parallel.Map(parallel.Workers(workers), Runs, func(i int) pair {
		nres := sampler.ProfileRun(b.NormalProg, normalMeta, b.W.NormalConfig(i), sampler.Options{Interval: bugs.DefaultInterval})
		bres := sampler.ProfileRun(b.Prog, buggyMeta, b.W.BuggyConfig(i), sampler.Options{Interval: bugs.DefaultInterval})
		return pair{sampler.MergeProfiles(nres.Profiles), sampler.MergeProfiles(bres.Profiles)}
	})
	in := analysis.Input{Debug: b.Prog.Debug, Schema: buggySch}
	for _, pr := range pairs {
		in.Normal = append(in.Normal, pr.normal)
		in.Buggy = append(in.Buggy, pr.buggy)
	}
	p := analysis.DefaultParams()
	p.Workers = workers
	return analysis.Analyze(in, p)
}

// componentSchema regenerates the monitoring schema for one program version
// with locals restricted to the selected component's functions, and
// translates it against that version's debug info.
func componentSchema(src, file string, filter func(string) bool, debug *debuginfo.Info) (*schema.Schema, []debuginfo.VarLoc, error) {
	f, err := lang.Parse(file, src)
	if err != nil {
		return nil, nil, err
	}
	sch := schema.Generate(f, schema.Options{FuncFilter: filter})
	return sch, schema.Translate(sch, debug), nil
}

// RenderTable4 formats the unresolved-issue case studies.
func RenderTable4(cases []Table4Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Unresolved performance issues diagnosed using vProf.\n")
	for _, c := range cases {
		fmt.Fprintf(&b, "\n%s (%s): %s\n", c.ID, c.Ticket, c.Description)
		for _, f := range c.Findings {
			fmt.Fprintf(&b, "  component %s (root cause rank %s):\n", f.Component, RankString(f.RootRank))
			for _, t := range f.Top {
				fmt.Fprintf(&b, "    %s\n", t)
			}
		}
		status := "root cause surfaced in top-2 of a component"
		if !c.RootFound {
			status = "root cause NOT surfaced"
		}
		fmt.Fprintf(&b, "  => %s\n", status)
	}
	return b.String()
}

// Table5Row is one workload's profiling-overhead measurements (paper
// Table 5).
type Table5Row struct {
	ID        string
	Variables int
	// Pruned counts schema entries dropped by relevance-score pruning
	// (zero under the default options, which keep every entry).
	Pruned int
	// NoLoc counts schema entries with no debug-location info at all —
	// the ones Translate silently drops from monitoring.
	NoLoc int
	// Gaps counts PC-range holes across the covered variables
	// (caller-saved registers spilled around calls).
	Gaps      int
	InitMs    float64
	PCTableKB float64
	VarArrKB  float64
	SamplesKB float64
	RunTicks  int64
	WallMs    float64
}

// Table5 measures per-workload profiling overhead on the buggy execution.
func Table5() ([]Table5Row, error) {
	return Table5Workers(0)
}

// Table5Workers is Table5 with per-workload measurement fanned out over an
// explicit worker pool. All columns except the wall-clock timings (InitMs,
// WallMs) are deterministic for any worker count; the timings are
// nondeterministic under any schedule, parallel or not.
func Table5Workers(workers int) ([]Table5Row, error) {
	all := bugs.All()
	return parallel.MapErr(parallel.Workers(workers), len(all), func(i int) (Table5Row, error) {
		w := all[i]
		b, err := w.Build()
		if err != nil {
			return Table5Row{}, err
		}
		prof, res := b.ProfileBuggy(0)
		cov := schema.Verify(b.Schema, b.Prog.Debug)
		return Table5Row{
			ID:        w.ID,
			Variables: len(b.Schema.Entries),
			Pruned:    b.Schema.Pruned,
			NoLoc:     cov.Dropped(),
			Gaps:      cov.GapCount(),
			InitMs:    float64(prof.InitDuration.Microseconds()) / 1000,
			PCTableKB: float64(prof.PCTableBytes) / 1024,
			VarArrKB:  float64(prof.VarArrayBytes) / 1024,
			SamplesKB: float64(prof.SampleBytes) / 1024,
			RunTicks:  res.TotalTicks(),
			WallMs:    float64(res.WallTime.Microseconds()) / 1000,
		}, nil
	})
}

// RenderTable5 formats the overhead table.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Memory overhead and execution time for profiling performance issues.\n\n")
	fmt.Fprintf(&b, "%-4s %9s %6s %5s %4s %10s %12s %12s %12s %12s %10s\n",
		"ID", "Variables", "Pruned", "NoLoc", "Gaps", "Init(ms)", "PCToVar(KB)", "VarArr(KB)", "Samples(KB)", "RunTicks", "Wall(ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %9d %6d %5d %4d %10.3f %12.1f %12.1f %12.1f %12d %10.2f\n",
			r.ID, r.Variables, r.Pruned, r.NoLoc, r.Gaps, r.InitMs, r.PCTableKB, r.VarArrKB, r.SamplesKB, r.RunTicks, r.WallMs)
	}
	return b.String()
}
