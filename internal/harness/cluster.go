package harness

// Cluster-mode replay: the continuous-profiling replay pointed at a 3-node
// sharded, replicated profile store instead of a single local store. The
// acceptance bar is the same byte-for-byte one — every diagnosis served by
// the cluster-backed service (full and sketch mode, before a node loss,
// during it, and after the node recovers) must equal the offline pipeline
// over the identical profiles.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/cluster"
	"vprof/internal/obs"
	"vprof/internal/service"
	vsketch "vprof/internal/sketch"
	"vprof/internal/store"
)

// ClusterReplayRow extends the continuous-replay row with the cluster-only
// checks: sketch-mode equivalence, and equivalence while a replica is down
// and again after it recovered.
type ClusterReplayRow struct {
	ReplayRow
	// SketchRank/SketchMatch compare the sketch-mode diagnosis (folded
	// shard-local on the nodes, merged at the coordinator) against the
	// offline sketch analysis of the same profiles.
	SketchRank  int
	SketchMatch bool
	// DegradedMatch is true when a fresh coordinator over the cluster with
	// one replica down still reproduces both diagnoses byte for byte.
	DegradedMatch bool
	// RecoveredMatch is the same bar after the lost node rejoined and one
	// anti-entropy pass converged the cluster.
	RecoveredMatch bool
}

// clusterNode is one running replica: a store under its own directory served
// over the internal cluster API.
type clusterNode struct {
	id  string
	dir string
	st  *store.Store
	hs  *http.Server
	url string
}

func startClusterNode(dir, id string) (*clusterNode, error) {
	st, err := store.Open(dir, store.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		return nil, err
	}
	node, err := cluster.NewNode(cluster.NodeConfig{
		ID:       id,
		Store:    st,
		Resolver: service.NewBugsResolver(),
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return nil, err
	}
	hs := &http.Server{Handler: node.Handler()}
	go hs.Serve(ln)
	return &clusterNode{
		id: id, dir: dir, st: st, hs: hs,
		url: "http://" + ln.Addr().String(),
	}, nil
}

func (n *clusterNode) stop() {
	if n.hs != nil {
		n.hs.Close()
		n.hs = nil
	}
	if n.st != nil {
		n.st.Close()
		n.st = nil
	}
}

// coordinator is one service front end over the cluster: router + HTTP
// service + instrumented client, torn down together.
type coordinator struct {
	router *cluster.Router
	hs     *http.Server
	base   string
	client *service.Client
}

func startCoordinator(refs []cluster.NodeRef) (*coordinator, error) {
	reg := obs.NewRegistry()
	router, err := cluster.NewRouter(cluster.RouterConfig{Nodes: refs, Metrics: reg})
	if err != nil {
		return nil, err
	}
	srv, err := service.New(service.Config{
		Backend:  router,
		Resolver: service.NewBugsResolver(),
		Workers:  4,
		Top:      replayTop,
		Metrics:  reg,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	return &coordinator{
		router: router,
		hs:     hs,
		base:   base,
		client: service.NewClient(base).Instrument(reg),
	}, nil
}

func (c *coordinator) stop() { c.hs.Close() }

// ReplayCluster replays the workloads end to end against a 3-node cluster:
//
//  1. Every workload's runs pushed concurrently through the routing front
//     end (quorum-replicated across the nodes), then diagnosed in full mode
//     and in sketch mode; both renders must equal the offline pipelines
//     byte for byte, and the sketch diagnosis must not fetch a single raw
//     blob at the coordinator (its decode-cache counters stay flat).
//  2. One node is lost. /healthz must degrade — not fail — and a fresh
//     coordinator over the degraded cluster must reproduce every diagnosis.
//  3. The node rejoins (store recovery runs), one anti-entropy pass
//     converges the cluster, and a third coordinator must again reproduce
//     every diagnosis byte for byte.
func ReplayCluster(dir string, workloads []*bugs.Workload) ([]ClusterReplayRow, error) {
	nodes := make([]*clusterNode, 3)
	refs := make([]cluster.NodeRef, 3)
	for i := range nodes {
		n, err := startClusterNode(filepath.Join(dir, fmt.Sprintf("node-%d", i)), fmt.Sprintf("node-%d", i))
		if err != nil {
			return nil, err
		}
		defer n.stop()
		nodes[i] = n
		refs[i] = cluster.NodeRef{ID: n.id, Base: n.url}
	}
	co, err := startCoordinator(refs)
	if err != nil {
		return nil, err
	}
	defer co.stop()

	var rows []ClusterReplayRow
	var data []*replayData
	offlineSk := make([]*analysis.Report, 0, len(workloads))
	for _, w := range workloads {
		base, d, err := replayWorkloadData(co.client, w)
		if err != nil {
			return rows, fmt.Errorf("%s: %w", w.ID, err)
		}
		row := ClusterReplayRow{ReplayRow: base}

		// Sketch mode: the corpus folds shard-local on the nodes, the
		// normal/candidate sketches come from the replicas' sketch logs, and
		// no raw blob crosses the wire — the coordinator's blob cache must
		// not move at all.
		before := co.router.CacheStats()
		resp, err := co.client.Diagnose(service.DiagnoseRequest{Workload: w.ID, Top: replayTop, Sketches: true})
		if err != nil {
			return rows, fmt.Errorf("%s: sketch diagnose: %w", w.ID, err)
		}
		after := co.router.CacheStats()
		if after.Misses != before.Misses || after.Hits != before.Hits {
			return rows, fmt.Errorf("%s: sketch diagnosis touched the coordinator blob cache: %+v -> %+v",
				w.ID, before, after)
		}
		off, err := offlineSketchReport(d)
		if err != nil {
			return rows, fmt.Errorf("%s: offline sketch analysis: %w", w.ID, err)
		}
		row.SketchRank = resp.RootRank(w.RootFunc)
		row.SketchMatch = resp.Render == off.Render(replayTop)
		offlineSk = append(offlineSk, off)
		rows = append(rows, row)
		data = append(data, d)
	}
	if err := checkClusterObservability(co.base, "ok"); err != nil {
		return rows, err
	}

	// Phase 2: whole-node loss. Health degrades, reads ride on the surviving
	// replicas, and a coordinator with cold caches still reproduces every
	// diagnosis.
	victim := nodes[2]
	victim.stop()
	if err := checkClusterObservability(co.base, "degraded"); err != nil {
		return rows, fmt.Errorf("after node loss: %w", err)
	}
	degraded, err := startCoordinator(refs)
	if err != nil {
		return rows, err
	}
	defer degraded.stop()
	for i, w := range workloads {
		match, err := rediagnose(degraded.client, w, data[i], offlineSk[i])
		if err != nil {
			return rows, fmt.Errorf("%s degraded: %w", w.ID, err)
		}
		rows[i].DegradedMatch = match
	}

	// Phase 3: the node rejoins (store recovery runs on open), one
	// idempotent anti-entropy pass converges the cluster, and a third cold
	// coordinator must again match the offline pipeline byte for byte.
	revived, err := startClusterNode(victim.dir, victim.id)
	if err != nil {
		return rows, fmt.Errorf("revive %s: %w", victim.id, err)
	}
	defer revived.stop()
	refs[2] = cluster.NodeRef{ID: revived.id, Base: revived.url}
	recovered, err := startCoordinator(refs)
	if err != nil {
		return rows, err
	}
	defer recovered.stop()
	if _, err := recovered.router.Rebalance(context.Background()); err != nil {
		return rows, fmt.Errorf("rebalance after recovery: %w", err)
	}
	for i, w := range workloads {
		match, err := rediagnose(recovered.client, w, data[i], offlineSk[i])
		if err != nil {
			return rows, fmt.Errorf("%s recovered: %w", w.ID, err)
		}
		rows[i].RecoveredMatch = match
	}
	if err := checkClusterObservability(recovered.base, "ok"); err != nil {
		return rows, fmt.Errorf("after recovery: %w", err)
	}
	return rows, nil
}

// rediagnose runs both diagnosis modes through a cold coordinator and
// reports whether each reproduced its offline render byte for byte.
func rediagnose(client *service.Client, w *bugs.Workload, d *replayData, offSk *analysis.Report) (bool, error) {
	full, err := client.Diagnose(service.DiagnoseRequest{Workload: w.ID, Top: replayTop})
	if err != nil {
		return false, err
	}
	sk, err := client.Diagnose(service.DiagnoseRequest{Workload: w.ID, Top: replayTop, Sketches: true})
	if err != nil {
		return false, err
	}
	return full.Render == d.offline.Render(replayTop) && sk.Render == offSk.Render(replayTop), nil
}

// offlineSketchReport runs the offline sketch pipeline over the replayed
// profiles: fold each run's sketch directly and analyze, with no store and
// no cluster anywhere near it.
func offlineSketchReport(d *replayData) (*analysis.Report, error) {
	corpus := analysis.NewCorpus()
	skNormal := make([]*vsketch.Profile, len(d.normal))
	for i, p := range d.normal {
		skNormal[i] = vsketch.FromProfile(p)
		corpus.AddSketch(skNormal[i], d.b.Prog.Debug)
	}
	buggy := make([]*vsketch.Profile, len(d.buggy))
	for i, p := range d.buggy {
		buggy[i] = vsketch.FromProfile(p)
	}
	return analysis.AnalyzeSketches(analysis.SketchInput{
		Debug:  d.b.Prog.Debug,
		Schema: d.b.Schema,
		Normal: skNormal[0],
		Corpus: corpus,
		Buggy:  buggy,
	}, analysis.DefaultParams())
}

// checkClusterObservability asserts the coordinator's operational surface:
// /healthz carries the expected cluster status (degraded states still answer
// HTTP 200 — a cluster missing one replica serves), and /metrics exposes the
// request-path and cluster series, including the per-shard replica gauge.
func checkClusterObservability(base, wantStatus string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var h service.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != wantStatus {
		return fmt.Errorf("healthz: HTTP %d, status %q, want 200 %q (checks %v)",
			resp.StatusCode, h.Status, wantStatus, h.Checks)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	exposition := string(body)
	for _, series := range []string{
		"vprof_http_requests_total",
		"vprof_diagnose_requests_total",
		"vprof_diagnose_memo_hits_total",
		"vprof_replicas_healthy",
		"vprof_cluster_ingest_bytes_total",
		"vprof_cluster_read_repairs_total",
		"vprof_cluster_quorum_failures_total",
	} {
		if !strings.Contains(exposition, series) {
			return fmt.Errorf("metrics exposition missing %s", series)
		}
	}
	return nil
}

// RenderClusterReplay formats cluster replay rows for the experiment log.
func RenderClusterReplay(rows []ClusterReplayRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster-mode replay: 3-node sharded store vs offline pipeline.\n\n")
	fmt.Fprintf(&sb, "%-4s %-30s %-9s %-9s %-6s %-7s %-9s %-10s\n",
		"ID", "root cause", "offline", "service", "match", "sketch", "degraded", "recovered")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %-30s %-9s %-9s %-6v %-7v %-9v %-10v\n",
			r.ID, r.RootFunc, RankString(r.OfflineRank), RankString(r.ServiceRank),
			r.RenderMatch, r.SketchMatch, r.DegradedMatch, r.RecoveredMatch)
	}
	return sb.String()
}
