package harness

import (
	"fmt"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/bugs"
	"vprof/internal/sampler"
)

// DiagnoseWorkload runs the complete Table 3 protocol for one workload: the
// vProf pipeline (5+5 runs), the hist-discounter-only ablation (zero
// variables monitored), and the five baseline tools.
func DiagnoseWorkload(w *bugs.Workload) (Table3Row, error) {
	b, err := w.Build()
	if err != nil {
		return Table3Row{}, err
	}
	row := Table3Row{ID: w.ID, Ticket: w.Ticket, Paper: w.PaperRanks}

	rep, err := b.Analyze(analysis.DefaultParams(), Runs)
	if err != nil {
		return row, err
	}
	row.VProfRank = rep.Rank(w.RootFunc)
	row.FalsePositive = FalsePositiveRatio(rep, b)
	row.BBMean, row.BBMin, row.BBOK = b.BBDist(rep)
	if fr := rep.Func(w.RootFunc); fr != nil {
		row.Pattern = fr.Pattern
		row.ClassMatch = fr.Pattern == w.Pattern
		row.ClassNC = fr.Pattern == analysis.PatternNC
	}

	histRep, err := HistDiscOnly(b)
	if err != nil {
		return row, err
	}
	row.HistDisc = histRep.Rank(w.RootFunc)

	target := b.Target()
	row.Gprof = baselines.Gprof(target).Rank(w.RootFunc)
	row.Perf = baselines.Perf(target).Rank(w.RootFunc)
	row.PerfPT = baselines.PerfPT(target).Rank(w.RootFunc)
	coz := baselines.Coz(target)
	row.Coz = coz.Rank(w.RootFunc)
	row.CozFailure = coz.Failure
	if coz.Failure != "" {
		row.Coz = 0
	}
	row.StatDebug = baselines.StatDebug(target).Rank(w.RootFunc)
	return row, nil
}

// HistDiscOnly runs vProf with zero variables monitored, leaving only the
// hist-discounter (Table 3's hist-disc column).
func HistDiscOnly(b *bugs.Built) (*analysis.Report, error) {
	in := analysis.Input{Debug: b.Prog.Debug, Schema: b.Schema}
	for i := 0; i < Runs; i++ {
		in.Normal = append(in.Normal, profileNoVars(b, i, false))
		in.Buggy = append(in.Buggy, profileNoVars(b, i, true))
	}
	p := analysis.DefaultParams()
	return analysis.Analyze(in, p)
}

// profileNoVars profiles one run with an empty monitoring schema.
func profileNoVars(b *bugs.Built, run int, buggy bool) *sampler.Profile {
	prog := b.NormalProg
	cfg := b.W.NormalConfig(run)
	if buggy {
		prog = b.Prog
		cfg = b.W.BuggyConfig(run)
	}
	res := sampler.ProfileRun(prog, nil, cfg, sampler.Options{Interval: bugs.DefaultInterval})
	return sampler.MergeProfiles(res.Profiles)
}

// FalsePositiveRatio computes the paper's §6.1 metric for one diagnosis:
// the number of top-5 functions ranked above the root cause that are
// *unrelated* to the performance issue, divided by five. Related functions
// are the root cause itself plus its call-graph ancestors and descendants
// (the paper counts callers/callees of the root cause as helpful, e.g.
// dummy_connection for HTTPD-54852, and genuinely-costly-either-way or
// side-effect functions as the false positives).
func FalsePositiveRatio(rep *analysis.Report, b *bugs.Built) float64 {
	related := relatedFunctions(b.Prog.CallGraph, b.W.RootFunc)
	rootRank := rep.Rank(b.W.RootFunc)
	if rootRank == 0 || rootRank > 5 {
		return 1
	}
	unrelated := 0
	for _, fr := range rep.Funcs {
		if fr.Rank >= rootRank {
			break
		}
		if !related[fr.Name] {
			unrelated++
		}
	}
	return float64(unrelated) / 5
}

// relatedFunctions returns the call-graph neighborhood of root: root, every
// transitive caller, and every transitive callee.
func relatedFunctions(callGraph map[string][]string, root string) map[string]bool {
	related := map[string]bool{root: true}
	// Descendants.
	var down func(fn string)
	down = func(fn string) {
		for _, callee := range callGraph[fn] {
			if !related[callee] {
				related[callee] = true
				down(callee)
			}
		}
	}
	down(root)
	// Ancestors: invert the graph.
	parents := map[string][]string{}
	for caller, callees := range callGraph {
		for _, callee := range callees {
			parents[callee] = append(parents[callee], caller)
		}
	}
	var up func(fn string)
	up = func(fn string) {
		for _, caller := range parents[fn] {
			if !related[caller] {
				related[caller] = true
				up(caller)
			}
		}
	}
	up(root)
	return related
}

// Table3 diagnoses every resolved workload and renders the table.
func Table3() (string, []Table3Row, error) {
	var rows []Table3Row
	for _, w := range bugs.All() {
		row, err := DiagnoseWorkload(w)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		rows = append(rows, row)
	}
	return RenderTable3(rows), rows, nil
}
