package harness

import (
	"fmt"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/bugs"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
)

// DiagnoseWorkload runs the complete Table 3 protocol for one workload: the
// vProf pipeline (5+5 runs), the hist-discounter-only ablation (zero
// variables monitored), and the five baseline tools. The worker count
// resolves via internal/parallel (VPROF_WORKERS, then GOMAXPROCS).
func DiagnoseWorkload(w *bugs.Workload) (Table3Row, error) {
	return DiagnoseWorkloadWorkers(w, 0)
}

// DiagnoseWorkloadWorkers is DiagnoseWorkload on an explicit worker pool;
// the row is byte-for-byte identical for every worker count.
func DiagnoseWorkloadWorkers(w *bugs.Workload, workers int) (Table3Row, error) {
	workers = parallel.Workers(workers)
	b, err := w.Build()
	if err != nil {
		return Table3Row{}, err
	}
	row := Table3Row{ID: w.ID, Ticket: w.Ticket, Paper: w.PaperRanks}

	params := analysis.DefaultParams()
	params.Workers = workers
	rep, err := b.Analyze(params, Runs)
	if err != nil {
		return row, err
	}
	row.VProfRank = rep.Rank(w.RootFunc)
	row.FalsePositive = FalsePositiveRatio(rep, b)
	row.BBMean, row.BBMin, row.BBOK = b.BBDist(rep)
	if fr := rep.Func(w.RootFunc); fr != nil {
		row.Pattern = fr.Pattern
		row.ClassMatch = fr.Pattern == w.Pattern
		row.ClassNC = fr.Pattern == analysis.PatternNC
	}

	histRep, err := HistDiscOnlyWorkers(b, workers)
	if err != nil {
		return row, err
	}
	row.HistDisc = histRep.Rank(w.RootFunc)

	target := b.Target()
	row.Gprof = baselines.Gprof(target).Rank(w.RootFunc)
	row.Perf = baselines.Perf(target).Rank(w.RootFunc)
	row.PerfPT = baselines.PerfPT(target).Rank(w.RootFunc)
	coz := baselines.Coz(target)
	row.Coz = coz.Rank(w.RootFunc)
	row.CozFailure = coz.Failure
	if coz.Failure != "" {
		row.Coz = 0
	}
	row.StatDebug = baselines.StatDebug(target).Rank(w.RootFunc)
	return row, nil
}

// HistDiscOnly runs vProf with zero variables monitored, leaving only the
// hist-discounter (Table 3's hist-disc column).
func HistDiscOnly(b *bugs.Built) (*analysis.Report, error) {
	return HistDiscOnlyWorkers(b, 0)
}

// HistDiscOnlyWorkers is HistDiscOnly on an explicit worker pool.
func HistDiscOnlyWorkers(b *bugs.Built, workers int) (*analysis.Report, error) {
	workers = parallel.Workers(workers)
	type pair struct{ normal, buggy *sampler.Profile }
	pairs := parallel.Map(workers, Runs, func(i int) pair {
		return pair{profileNoVars(b, i, false), profileNoVars(b, i, true)}
	})
	in := analysis.Input{Debug: b.Prog.Debug, Schema: b.Schema}
	for _, pr := range pairs {
		in.Normal = append(in.Normal, pr.normal)
		in.Buggy = append(in.Buggy, pr.buggy)
	}
	p := analysis.DefaultParams()
	p.Workers = workers
	return analysis.Analyze(in, p)
}

// profileNoVars profiles one run with an empty monitoring schema.
func profileNoVars(b *bugs.Built, run int, buggy bool) *sampler.Profile {
	prog := b.NormalProg
	cfg := b.W.NormalConfig(run)
	if buggy {
		prog = b.Prog
		cfg = b.W.BuggyConfig(run)
	}
	res := sampler.ProfileRun(prog, nil, cfg, sampler.Options{Interval: bugs.DefaultInterval})
	return sampler.MergeProfiles(res.Profiles)
}

// FalsePositiveRatio computes the paper's §6.1 metric for one diagnosis:
// the number of top-5 functions ranked above the root cause that are
// *unrelated* to the performance issue, divided by five. Related functions
// are the root cause itself plus its call-graph ancestors and descendants
// (the paper counts callers/callees of the root cause as helpful, e.g.
// dummy_connection for HTTPD-54852, and genuinely-costly-either-way or
// side-effect functions as the false positives).
func FalsePositiveRatio(rep *analysis.Report, b *bugs.Built) float64 {
	related := relatedFunctions(b.Prog.CallGraph, b.W.RootFunc)
	rootRank := rep.Rank(b.W.RootFunc)
	if rootRank == 0 || rootRank > 5 {
		return 1
	}
	unrelated := 0
	for _, fr := range rep.Funcs {
		if fr.Rank >= rootRank {
			break
		}
		if !related[fr.Name] {
			unrelated++
		}
	}
	return float64(unrelated) / 5
}

// relatedFunctions returns the call-graph neighborhood of root: root, every
// transitive caller, and every transitive callee.
func relatedFunctions(callGraph map[string][]string, root string) map[string]bool {
	related := map[string]bool{root: true}
	// Descendants.
	var down func(fn string)
	down = func(fn string) {
		for _, callee := range callGraph[fn] {
			if !related[callee] {
				related[callee] = true
				down(callee)
			}
		}
	}
	down(root)
	// Ancestors: invert the graph.
	parents := map[string][]string{}
	for caller, callees := range callGraph {
		for _, callee := range callees {
			parents[callee] = append(parents[callee], caller)
		}
	}
	var up func(fn string)
	up = func(fn string) {
		for _, caller := range parents[fn] {
			if !related[caller] {
				related[caller] = true
				up(caller)
			}
		}
	}
	up(root)
	return related
}

// Table3 diagnoses every resolved workload and renders the table.
func Table3() (string, []Table3Row, error) {
	return Table3Workers(0)
}

// Table3Workers is Table3 with per-workload diagnoses fanned out over an
// explicit worker pool. Rows land in registry order and every row is
// deterministic, so the rendered table is byte-for-byte identical to the
// sequential run.
func Table3Workers(workers int) (string, []Table3Row, error) {
	workers = parallel.Workers(workers)
	all := bugs.All()
	rows, err := parallel.MapErr(workers, len(all), func(i int) (Table3Row, error) {
		row, err := DiagnoseWorkloadWorkers(all[i], workers)
		if err != nil {
			return row, fmt.Errorf("%s: %w", all[i].ID, err)
		}
		return row, nil
	})
	if err != nil {
		return "", nil, err
	}
	return RenderTable3(rows), rows, nil
}
