// Package harness drives the paper's evaluation: it regenerates every table
// and figure of §6 from the workloads in package bugs, running vProf and the
// five baseline tools on each issue and formatting results next to the
// paper's published numbers.
package harness

import (
	"fmt"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
)

// Runs is the per-side profiling-run count (Table 2: 5 normal and 5 buggy).
const Runs = 5

// RankString renders a rank the way Table 3 does (1st, 2nd, 3rd, 4th, ...);
// 0 renders as NR.
func RankString(r int) string {
	if r <= 0 {
		return "NR"
	}
	switch r % 100 {
	case 11, 12, 13:
		return fmt.Sprintf("%dth", r)
	}
	switch r % 10 {
	case 1:
		return fmt.Sprintf("%dst", r)
	case 2:
		return fmt.Sprintf("%dnd", r)
	case 3:
		return fmt.Sprintf("%drd", r)
	default:
		return fmt.Sprintf("%dth", r)
	}
}

// Table1 renders the reproduced-issues inventory.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Reproduced real-world performance issues.\n\n")
	fmt.Fprintf(&b, "%-4s %-16s %-14s %-18s %s\n", "ID", "Ticket", "App", "Bug Pattern", "Description")
	for _, w := range bugs.All() {
		fmt.Fprintf(&b, "%-4s %-16s %-14s %-18s %s\n",
			w.ID, w.Ticket, w.App, w.Pattern, w.Description)
	}
	return b.String()
}

// Table2 renders the tool-configuration table.
func Table2() string {
	rows := []struct{ name, desc string }{
		{"gprof", "Flat PC-sample profile of the buggy run; no dynamic-library or child-process samples; default options."},
		{"perf", "System-wide PC-sample profile of the buggy run (children and library code visible); default options."},
		{"perf-PT", "perf with top-10 functions re-ranked by control-flow profiling: branch-count differences between normal and buggy runs scale each function's cost."},
		{"COZ", "Causal profiling: each basic block is virtually sped up and the end-to-end runtime change measured; observes the parent process only."},
		{"stat-debug", "Statistical debugging over predicates (branch outcomes, return values) from 5 normal and 5 buggy runs; no cost information."},
		{"vProf", "Value-assisted cost profiling: 5 normal + 5 buggy runs feed the hist-discounter, run 0 of each feeds the variable-discounter; variables restricted to the component containing the root cause."},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Configurations of tools to diagnose performance issues.\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %s\n", r.name, r.desc)
	}
	return b.String()
}

// Table3Row is one workload's diagnosis outcome across all tools.
type Table3Row struct {
	ID, Ticket string

	VProfRank int
	// FalsePositive is the paper's §6.1 ratio: unrelated functions ranked
	// above the root cause, out of five.
	FalsePositive float64
	BBMean        float64
	BBMin         float64
	BBOK          bool
	Pattern       analysis.Pattern
	ClassMatch    bool // inferred pattern matches ground truth
	ClassNC       bool // inferred pattern is NC

	// Baseline ranks; 0 = NR. Failures carry the annotation instead.
	Gprof, Perf, PerfPT, Coz, StatDebug, HistDisc int
	CozFailure                                    string

	Paper map[string]string
}

// Render formats rows in the paper's Table 3 layout, appending the paper's
// published values in brackets for comparison.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Diagnosis effectiveness of tools (this reproduction vs [paper]).\n\n")
	fmt.Fprintf(&b, "%-4s | %-12s %-10s %-6s | %-13s %-12s %-13s %-13s %-13s %-12s\n",
		"ID", "vProf", "bb-dist", "class", "gprof", "perf", "perf-PT", "COZ", "stat-debug", "hist-disc")
	line := strings.Repeat("-", 130)
	fmt.Fprintln(&b, line)
	for _, r := range rows {
		bb := "n/a"
		if r.BBOK {
			bb = fmt.Sprintf("%.0f, %.0f", r.BBMean, r.BBMin)
		}
		class := "x"
		if r.ClassMatch {
			class = "ok"
		} else if r.ClassNC {
			class = "NC"
		}
		coz := RankString(r.Coz)
		if r.CozFailure != "" {
			coz = r.CozFailure
		}
		cell := func(mine string, tool string) string {
			return fmt.Sprintf("%s [%s]", mine, r.Paper[tool])
		}
		fmt.Fprintf(&b, "%-4s | %-12s %-10s %-6s | %-13s %-12s %-13s %-13s %-13s %-12s\n",
			r.ID,
			cell(RankString(r.VProfRank), "vprof"),
			bb,
			class,
			cell(RankString(r.Gprof), "gprof"),
			cell(RankString(r.Perf), "perf"),
			cell(RankString(r.PerfPT), "perf-PT"),
			cell(coz, "COZ"),
			cell(RankString(r.StatDebug), "stat-debug"),
			cell(RankString(r.HistDisc), "hist-disc"),
		)
	}
	fmt.Fprintln(&b, line)
	top5 := func(get func(Table3Row) int) int {
		n := 0
		for _, r := range rows {
			if v := get(r); v >= 1 && v <= 5 {
				n++
			}
		}
		return n
	}
	var fpSum float64
	for _, r := range rows {
		fpSum += r.FalsePositive
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "average false positive ratio (vProf, paper §6.1): %.1f%% [10.6%%]\n",
			100*fpSum/float64(len(rows)))
	}
	fmt.Fprintf(&b, "root cause in top-5: vProf %d/15 [15], gprof %d [6], perf %d [3], perf-PT %d [2], COZ %d [3], stat-debug %d [2], hist-disc %d [3]\n",
		top5(func(r Table3Row) int { return r.VProfRank }),
		top5(func(r Table3Row) int { return r.Gprof }),
		top5(func(r Table3Row) int { return r.Perf }),
		top5(func(r Table3Row) int { return r.PerfPT }),
		top5(func(r Table3Row) int { return r.Coz }),
		top5(func(r Table3Row) int { return r.StatDebug }),
		top5(func(r Table3Row) int { return r.HistDisc }),
	)
	return b.String()
}
