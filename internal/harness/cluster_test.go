package harness

import (
	"testing"

	"vprof/internal/bugs"
)

// TestClusterReplaySubset is the CI-budget variant of the full cluster
// replay: a reduced workload set through the identical three-phase pipeline
// (healthy, one replica down, recovered). The nightly-equivalent full matrix
// is TestClusterReplayAllWorkloads.
func TestClusterReplaySubset(t *testing.T) {
	if raceEnabled {
		t.Skip("cluster replay is minutes-slow under the race detector; internal/cluster carries the -race coverage")
	}
	workloads := bugs.All()[:4]
	rows, err := ReplayCluster(t.TempDir(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads) {
		t.Fatalf("replayed %d workloads, want %d", len(rows), len(workloads))
	}
	for _, r := range rows {
		if !r.RenderMatch || !r.SketchMatch || !r.DegradedMatch || !r.RecoveredMatch {
			t.Errorf("%s: match=%v sketch=%v degraded=%v recovered=%v, want all true",
				r.ID, r.RenderMatch, r.SketchMatch, r.DegradedMatch, r.RecoveredMatch)
		}
	}
	t.Logf("\n%s", RenderClusterReplay(rows))
}

// TestClusterReplayAllWorkloads is the cluster tentpole's acceptance test:
// all 18 bug workloads replayed through the routing front end of a 3-node
// replicated cluster must diagnose byte-for-byte like the offline pipeline —
// in full mode, in sketch mode (with the coordinator's decode-cache counters
// flat), with one node lost, and again after the node recovered.
func TestClusterReplayAllWorkloads(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("3-node cluster replay is minutes-slow; reduced variant and -race cluster coverage run in CI")
	}
	workloads := append(bugs.All(), bugs.UnresolvedIssues()...)
	rows, err := ReplayCluster(t.TempDir(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("replayed %d workloads, want 18", len(rows))
	}
	for _, r := range rows {
		if r.Pushes != 2*Runs || r.Dups != 0 {
			t.Errorf("%s: pushes=%d dups=%d, want %d/0", r.ID, r.Pushes, r.Dups, 2*Runs)
		}
		if !r.RenderMatch {
			t.Errorf("%s: cluster service report differs from offline report", r.ID)
		}
		if r.ServiceRank != r.OfflineRank {
			t.Errorf("%s: service rank %d != offline rank %d", r.ID, r.ServiceRank, r.OfflineRank)
		}
		if !r.SketchMatch {
			t.Errorf("%s: cluster sketch report differs from offline sketch report", r.ID)
		}
		if !r.CachedSecond {
			t.Errorf("%s: second diagnosis was not served from the memo cache", r.ID)
		}
		if !r.DegradedMatch {
			t.Errorf("%s: diagnosis diverged while a replica was down", r.ID)
		}
		if !r.RecoveredMatch {
			t.Errorf("%s: diagnosis diverged after the replica recovered", r.ID)
		}
	}
	t.Logf("\n%s", RenderClusterReplay(rows))
}
