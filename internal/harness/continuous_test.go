package harness

import (
	"testing"

	"vprof/internal/bugs"
)

// TestContinuousReplayAllWorkloads is the tentpole's acceptance test: all 18
// bug workloads (15 resolved + 3 unresolved) replayed through the HTTP
// service with concurrent pushes must produce byte-for-byte the same
// diagnosis as the offline Table 3 path, and a second diagnosis of each
// unchanged workload must be served from the memo cache.
func TestContinuousReplayAllWorkloads(t *testing.T) {
	workloads := append(bugs.All(), bugs.UnresolvedIssues()...)
	rows, err := ReplayContinuous(t.TempDir(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("replayed %d workloads, want 18", len(rows))
	}
	for _, r := range rows {
		if r.Pushes != 2*Runs || r.Dups != 0 {
			t.Errorf("%s: pushes=%d dups=%d, want %d/0", r.ID, r.Pushes, r.Dups, 2*Runs)
		}
		if !r.RenderMatch {
			t.Errorf("%s: service report differs from offline report", r.ID)
		}
		if r.ServiceRank != r.OfflineRank {
			t.Errorf("%s: service rank %d != offline rank %d", r.ID, r.ServiceRank, r.OfflineRank)
		}
		if !r.CachedSecond {
			t.Errorf("%s: second diagnosis was not served from the memo cache", r.ID)
		}
	}
	t.Logf("\n%s", RenderReplay(rows))
}
