//go:build !race

package harness

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
