package harness_test

import (
	"strings"
	"testing"

	"vprof/internal/harness"
)

// expectedCausalRanks pins the root cause's causal-impact rank per workload.
// These are deterministic (tick VM, fixed seeds), so any drift is a real
// behavior change in the causal engine and must be reviewed.
var expectedCausalRanks = map[string]int{
	"b1": 3, "b2": 4, "b3": 1, "b4": 1, "b5": 1, "b6": 2,
	"b7": 2, "b8": 1, "b9": 1, "b10": 1, "b11": 1, "b12": 1,
	"b13": 3, "b14": 1, "b15": 7, "u1": 5, "u2": 2, "u3": 1,
}

func TestCausalValidation(t *testing.T) {
	table, rows, err := harness.CausalValidationWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	top3 := 0
	for _, r := range rows {
		if want := expectedCausalRanks[r.ID]; r.CausalRank != want {
			t.Errorf("%s: causal rank = %d, want %d", r.ID, r.CausalRank, want)
		}
		if r.CausalRank >= 1 && r.CausalRank <= 3 {
			top3++
		}
		if r.CalibratedRank == 0 {
			t.Errorf("%s: calibrated diagnosis did not rank the root cause", r.ID)
		}
		if r.Overlap >= 2 && (r.Spearman < -1 || r.Spearman > 1) {
			t.Errorf("%s: spearman %v out of [-1,1]", r.ID, r.Spearman)
		}
	}
	// ISSUE acceptance: root cause in the causal top-3 on >= 14 of 18.
	if top3 < 14 {
		t.Errorf("causal top-3 agreement = %d/18, want >= 14", top3)
	}
	if !strings.Contains(table, "root cause in causal top-3: 15/18") {
		t.Errorf("table footer missing agreement count:\n%s", table)
	}
}

func TestCausalValidationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full validation sweeps")
	}
	// Two worker counts plus a repeat: byte-for-byte identical tables.
	t1, _, err := harness.CausalValidationWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	t8, _, err := harness.CausalValidationWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t8 {
		t.Fatal("workers=1 vs workers=8 tables differ")
	}
	t8b, _, err := harness.CausalValidationWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	if t8 != t8b {
		t.Fatal("repeated runs produced different tables")
	}
}
