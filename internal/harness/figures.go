package harness

import (
	"fmt"
	"strings"
	"time"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
)

// Figure6Series is one variable's value samples over time for the normal and
// buggy executions (paper Figure 6).
type Figure6Series struct {
	ID, Func, Variable string
	NormalTicks        []int64
	NormalValues       []int64
	BuggyTicks         []int64
	BuggyValues        []int64
}

// Figure6 extracts the paper's two example series: available_mem for b1
// (MDEV-21826) and numclients for b12 (Redis-8668).
func Figure6() ([]Figure6Series, error) {
	specs := []struct {
		id, fn, name string
	}{
		{"b1", "recv_group_scan_log_recs", "available_mem"},
		{"b12", "#global", "numclients"},
	}
	var out []Figure6Series
	for _, sp := range specs {
		w := bugs.ByID(sp.id)
		b, err := w.Build()
		if err != nil {
			return nil, err
		}
		np, _ := b.ProfileNormal(0)
		bp, _ := b.ProfileBuggy(0)
		s := Figure6Series{ID: sp.id, Func: sp.fn, Variable: sp.name}
		s.NormalTicks, s.NormalValues = seriesOf(np, sp.fn, sp.name)
		s.BuggyTicks, s.BuggyValues = seriesOf(bp, sp.fn, sp.name)
		out = append(out, s)
	}
	return out, nil
}

// seriesOf extracts per-alarm (tick, value) pairs of one variable.
func seriesOf(p *sampler.Profile, fn, name string) ([]int64, []int64) {
	var ticks, vals []int64
	var last int64 = -1
	for _, s := range p.VarSamples(fn, name) {
		if s.Tick == last {
			continue
		}
		last = s.Tick
		ticks = append(ticks, s.Tick)
		vals = append(vals, s.Value)
	}
	return ticks, vals
}

// RenderFigure6 prints each series as an ASCII scatter sketch plus summary
// statistics — the textual equivalent of the paper's scatter plots.
func RenderFigure6(series []Figure6Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6. Value samples for a variable for two performance issues.\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\n(%s) samples of %s in %s\n", s.ID, s.Variable, s.Func)
		fmt.Fprintf(&b, "  normal: %s\n", sketch(s.NormalValues))
		fmt.Fprintf(&b, "  buggy:  %s\n", sketch(s.BuggyValues))
	}
	return b.String()
}

func sketch(vals []int64) string {
	if len(vals) == 0 {
		return "(no samples)"
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Downsample to 60 columns, mapping values to a 0-9 scale.
	const cols = 60
	out := make([]byte, 0, cols)
	for c := 0; c < cols && c < len(vals); c++ {
		idx := c * len(vals) / cols
		if len(vals) < cols {
			idx = c
		}
		v := vals[idx]
		level := int64(0)
		if hi > lo {
			level = (v - lo) * 9 / (hi - lo)
		}
		out = append(out, byte('0'+level))
	}
	return fmt.Sprintf("n=%-6d min=%-8d max=%-8d [%s]", len(vals), lo, hi, out)
}

// Figure7Row is one workload's runtime-overhead measurement: wall-clock time
// without profiling, with gprof-style PC sampling only, and with full vProf
// value sampling, normalized to the unprofiled run (paper Figure 7).
type Figure7Row struct {
	ID          string
	BaseMs      float64
	GprofRatio  float64
	VProfRatio  float64
	SampleCount int
}

// Figure7 measures profiling overhead per workload. reps > 1 averages
// wall-clock noise.
func Figure7(reps int) ([]Figure7Row, error) {
	if reps <= 0 {
		reps = 3
	}
	var rows []Figure7Row
	for _, w := range bugs.All() {
		b, err := w.Build()
		if err != nil {
			return nil, err
		}
		base := measureWall(reps, func() {
			sampler.Run(b.Prog, w.BuggyConfig(0))
		})
		var lastProf *sampler.Profile
		gprof := measureWall(reps, func() {
			res := sampler.ProfileRun(b.Prog, nil, w.BuggyConfig(0), sampler.Options{Interval: bugs.DefaultInterval})
			lastProf = res.Profiles[0]
		})
		vprof := measureWall(reps, func() {
			res := sampler.ProfileRun(b.Prog, b.Meta, w.BuggyConfig(0), sampler.Options{Interval: bugs.DefaultInterval})
			lastProf = sampler.MergeProfiles(res.Profiles)
		})
		row := Figure7Row{ID: w.ID, BaseMs: base}
		if base > 0 {
			row.GprofRatio = gprof / base
			row.VProfRatio = vprof / base
		}
		if lastProf != nil {
			row.SampleCount = len(lastProf.Samples)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure7 formats the normalized-overhead series.
func RenderFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7. Profiling overhead for performance issues (wall time, normalized to no profiling).\n\n")
	fmt.Fprintf(&b, "%-4s %12s %12s %12s %10s\n", "ID", "base(ms)", "w/ gprof", "w/ vProf", "samples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %12.2f %12.2f %12.2f %10d\n", r.ID, r.BaseMs, r.GprofRatio, r.VProfRatio, r.SampleCount)
	}
	return b.String()
}

// Figure8Point is one sensitivity measurement: a parameter value, the
// number of issues whose root cause ranked in the top five, and the mean
// root-cause rank (a finer-grained sensitivity signal).
type Figure8Point struct {
	Setting   float64
	Diagnosed int
	MeanRank  float64
}

// Figure8Result holds both parameter sweeps.
type Figure8Result struct {
	DefaultDiscount []Figure8Point
	ValidDiscount   []Figure8Point
}

// Figure8 reproduces the sensitivity study: profiles are collected once per
// workload and re-analyzed under each parameter setting (the sweep varies
// only post-profiling analysis).
func Figure8() (*Figure8Result, error) {
	return Figure8Workers(0)
}

// Figure8Workers is Figure8 with profile collection and per-workload
// re-analysis fanned out over an explicit worker pool. Ranks are integers
// and accumulate in workload order, so both sweeps are identical for any
// worker count. (Figure7 deliberately has no parallel variant: it measures
// wall-clock overhead, which concurrent load would skew.)
func Figure8Workers(workers int) (*Figure8Result, error) {
	workers = parallel.Workers(workers)
	type captured struct {
		w  *bugs.Workload
		in analysis.Input
	}
	all := bugs.All()
	inputs, err := parallel.MapErr(workers, len(all), func(idx int) (captured, error) {
		w := all[idx]
		b, err := w.Build()
		if err != nil {
			return captured{}, err
		}
		in := analysis.Input{Debug: b.Prog.Debug, Schema: b.Schema}
		for i := 0; i < Runs; i++ {
			np, _ := b.ProfileNormal(i)
			bp, _ := b.ProfileBuggy(i)
			in.Normal = append(in.Normal, np)
			in.Buggy = append(in.Buggy, bp)
		}
		return captured{w, in}, nil
	})
	if err != nil {
		return nil, err
	}

	measureAt := func(p analysis.Params) (Figure8Point, error) {
		type verdict struct {
			rank int
			n    int
		}
		verdicts, err := parallel.MapErr(workers, len(inputs), func(i int) (verdict, error) {
			c := inputs[i]
			rep, err := analysis.Analyze(c.in, p)
			if err != nil {
				return verdict{}, err
			}
			return verdict{rep.Rank(c.w.RootFunc), len(rep.Funcs)}, nil
		})
		if err != nil {
			return Figure8Point{}, err
		}
		pt := Figure8Point{}
		var rankSum, ranked float64
		for _, v := range verdicts {
			r := v.rank
			if r >= 1 && r <= 5 {
				pt.Diagnosed++
			}
			if r == 0 {
				r = v.n + 1 // NR: pessimistic rank
			}
			rankSum += float64(r)
			ranked++
		}
		pt.MeanRank = rankSum / ranked
		return pt, nil
	}

	res := &Figure8Result{}
	for dd := 0.1; dd <= 1.001; dd += 0.1 {
		p := analysis.DefaultParams()
		p.DefaultDiscount = dd
		p.Workers = 1 // measureAt already fans out per workload
		pt, err := measureAt(p)
		if err != nil {
			return nil, err
		}
		pt.Setting = dd
		res.DefaultDiscount = append(res.DefaultDiscount, pt)
	}
	for vd := 0.1; vd <= 1.001; vd += 0.1 {
		p := analysis.DefaultParams()
		p.ValidDiscount = vd
		p.Workers = 1
		pt, err := measureAt(p)
		if err != nil {
			return nil, err
		}
		pt.Setting = vd
		res.ValidDiscount = append(res.ValidDiscount, pt)
	}
	return res, nil
}

// RenderFigure8 formats the sensitivity sweeps.
func RenderFigure8(r *Figure8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8. Sensitivity of settings for discount parameters (issues with root cause in top-5, out of 15).\n\n")
	fmt.Fprintf(&b, "%-18s", "setting")
	for _, p := range r.DefaultDiscount {
		fmt.Fprintf(&b, "%5.1f", p.Setting)
	}
	fmt.Fprintf(&b, "\n%-18s", "DefaultDiscount")
	for _, p := range r.DefaultDiscount {
		fmt.Fprintf(&b, "%5d", p.Diagnosed)
	}
	fmt.Fprintf(&b, "\n%-18s", "  mean rank")
	for _, p := range r.DefaultDiscount {
		fmt.Fprintf(&b, "%5.1f", p.MeanRank)
	}
	fmt.Fprintf(&b, "\n%-18s", "ValidDiscount")
	for _, p := range r.ValidDiscount {
		fmt.Fprintf(&b, "%5d", p.Diagnosed)
	}
	fmt.Fprintf(&b, "\n%-18s", "  mean rank")
	for _, p := range r.ValidDiscount {
		fmt.Fprintf(&b, "%5.1f", p.MeanRank)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// measureWall times fn over reps repetitions and returns the mean in
// milliseconds.
func measureWall(reps int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Microseconds()) / float64(reps) / 1000
}
