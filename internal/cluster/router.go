package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"vprof/internal/analysis"
	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
	"vprof/internal/store"
)

// NodeRef names one cluster member and where to reach it.
type NodeRef struct {
	ID   string `json:"id"`
	Base string `json:"base"` // http://host:port, no trailing slash
}

// RouterConfig wires the coordinator.
type RouterConfig struct {
	Nodes []NodeRef
	// Replicas is the desired copy count per shard (default 3, clamped to
	// the live node count).
	Replicas int
	// WriteQuorum is the ack count an ingest needs before it is
	// acknowledged to the client (default: majority of effective replicas).
	WriteQuorum int
	// Shards is the keyspace partition count (default DefaultShards); every
	// router and node in a cluster must agree on it.
	Shards int
	// BaselineCap bounds the merged rolling baseline corpus per workload
	// (default 16, mirroring store.Options).
	BaselineCap int
	// CacheCap bounds the coordinator's decoded-profile and sketch caches
	// (default 64 each).
	CacheCap int
	// HTTP is the transport to the nodes (default: 5s timeout client, so a
	// hung node degrades a request instead of wedging it).
	HTTP    *http.Client
	Metrics *obs.Registry
	Logger  *slog.Logger
}

// Router implements the service Backend over a set of cluster nodes:
// quorum-replicated writes, merged reads with read-repair, and
// coordinator-side corpus folding for cross-node sketch diagnoses.
type Router struct {
	shards      int
	desired     int // configured replica target
	quorumCfg   int // 0 = majority of effective replicas
	baselineCap int

	mu     sync.RWMutex
	nodes  map[string]*nodeClient
	layout Layout

	http *http.Client
	log  *slog.Logger

	cmu        sync.Mutex
	cache      map[string]*sampler.Profile
	cacheOrder []string
	sketches   map[string]*sketch.Profile
	sketchOrd  []string
	cacheCap   int
	hints      map[string]string // blob id → node id that served it last
	cacheHits  int64
	cacheMiss  int64
	sketchHits int64
	sketchMiss int64

	m routerMetrics
}

type routerMetrics struct {
	replicasHealthy *obs.GaugeVec
	readRepairs     *obs.Counter
	repairFailures  *obs.Counter
	quorumFailures  *obs.Counter
	nodeErrors      *obs.CounterVec
	ingestBytes     *obs.Counter
	rebalanceCopies *obs.Counter
}

// NewRouter validates the config and computes the initial layout.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one node")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.BaselineCap <= 0 {
		cfg.BaselineCap = 16
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 64
	}
	if cfg.HTTP == nil {
		// Generous by default: a quorum write blocks on replica fsyncs, and
		// a put that times out client-side still lands server-side, turning
		// a slow disk into spurious divergence. Unreachable nodes fail fast
		// on connect regardless of this ceiling.
		cfg.HTTP = &http.Client{Timeout: 30 * time.Second}
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Nop()
	}
	r := &Router{
		shards:      cfg.Shards,
		desired:     cfg.Replicas,
		quorumCfg:   cfg.WriteQuorum,
		baselineCap: cfg.BaselineCap,
		nodes:       map[string]*nodeClient{},
		http:        cfg.HTTP,
		log:         log,
		cache:       map[string]*sampler.Profile{},
		sketches:    map[string]*sketch.Profile{},
		cacheCap:    cfg.CacheCap,
		hints:       map[string]string{},
		m: routerMetrics{
			replicasHealthy: cfg.Metrics.GaugeVec("vprof_replicas_healthy",
				"Reachable replicas per shard, refreshed on every health probe.", "shard"),
			readRepairs: cfg.Metrics.Counter("vprof_cluster_read_repairs_total",
				"Divergent or missing replica copies repaired during reads."),
			repairFailures: cfg.Metrics.Counter("vprof_cluster_read_repair_failures_total",
				"Read-repair copy attempts that failed (reads still served)."),
			quorumFailures: cfg.Metrics.Counter("vprof_cluster_quorum_failures_total",
				"Ingest writes rejected for missing the write quorum."),
			nodeErrors: cfg.Metrics.CounterVec("vprof_cluster_node_errors_total",
				"Internal-API failures per node.", "node"),
			ingestBytes: cfg.Metrics.Counter("vprof_cluster_ingest_bytes_total",
				"Bytes accepted by quorum-acked cluster ingests."),
			rebalanceCopies: cfg.Metrics.Counter("vprof_cluster_rebalance_copies_total",
				"Entries copied onto owners during rebalance passes."),
		},
	}
	for _, ref := range cfg.Nodes {
		if ref.ID == "" || ref.Base == "" {
			return nil, fmt.Errorf("cluster: node ref needs id and base, got %+v", ref)
		}
		if _, dup := r.nodes[ref.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", ref.ID)
		}
		r.nodes[ref.ID] = &nodeClient{ref: ref, http: cfg.HTTP}
	}
	r.recomputeLayoutLocked()
	return r, nil
}

// recomputeLayoutLocked re-evaluates placement for the current member set.
// Caller holds r.mu (or has exclusive access during construction).
func (r *Router) recomputeLayoutLocked() {
	ids := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	r.layout = ComputeLayout(ids, r.shards, r.desired)
}

// AddNode joins a member and recomputes placement. The caller runs
// Rebalance afterwards to populate the newcomer.
func (r *Router) AddNode(ref NodeRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[ref.ID] = &nodeClient{ref: ref, http: r.http}
	r.recomputeLayoutLocked()
}

// RemoveNode drops a member (leave or crash) and recomputes placement.
func (r *Router) RemoveNode(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.nodes, id)
	r.recomputeLayoutLocked()
}

// Nodes lists the current members, sorted by ID.
func (r *Router) Nodes() []NodeRef {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeRef, 0, len(r.nodes))
	for _, nc := range r.nodes {
		out = append(out, nc.ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Layout returns a snapshot of the current placement.
func (r *Router) Layout() Layout {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.layout
}

// quorum returns the effective write quorum for the current layout.
func (r *Router) quorum(l Layout) int {
	if r.quorumCfg > 0 {
		if r.quorumCfg > l.Replicas {
			return l.Replicas
		}
		return r.quorumCfg
	}
	return l.Replicas/2 + 1
}

func (r *Router) snapshot() (Layout, map[string]*nodeClient) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nodes := make(map[string]*nodeClient, len(r.nodes))
	for id, nc := range r.nodes {
		nodes[id] = nc
	}
	return r.layout, nodes
}

func (r *Router) nodeErr(id string, err error) {
	r.m.nodeErrors.With(id).Inc()
	r.log.Debug("cluster node error", "node", id, "err", err)
}

// ---- Backend: writes -------------------------------------------------------

// PutBlob replicates one profile to the shard's owners and acknowledges once
// the write quorum holds it. Dup is reported only when every acking replica
// already had the identical entry. Validation is deterministic, so a single
// replica rejecting the bundle rejects the write. Fewer than quorum acks
// wrap store.ErrUnavailable (the service maps it to 503 + Retry-After).
func (r *Router) PutBlob(workload string, label store.Label, run string, blob []byte) (*store.Entry, bool, error) {
	layout, nodes := r.snapshot()
	shard := ShardOf(workload, label, run, r.shards)
	owners := layout.Owners[shard]
	if len(owners) == 0 {
		return nil, false, fmt.Errorf("cluster: no owners for shard %d: %w", shard, store.ErrUnavailable)
	}

	type ack struct {
		node  string
		entry *store.Entry
		dup   bool
		err   error
	}
	acks := make([]ack, len(owners))
	var wg sync.WaitGroup
	for i, id := range owners {
		nc, ok := nodes[id]
		if !ok {
			acks[i] = ack{node: id, err: fmt.Errorf("cluster: owner %s not a member", id)}
			continue
		}
		wg.Add(1)
		go func(i int, id string, nc *nodeClient) {
			defer wg.Done()
			entry, dup, err := nc.put(workload, string(label), run, blob)
			acks[i] = ack{node: id, entry: entry, dup: dup, err: err}
		}(i, id, nc)
	}
	wg.Wait()

	var (
		got      int
		dupAll   = true
		winner   *store.Entry
		firstErr error
	)
	for _, a := range acks {
		if a.err != nil {
			if errors.Is(a.err, store.ErrInvalidProfile) {
				// Deterministic validation: one replica rejecting the bundle
				// means all would; surface the typed client error.
				return nil, false, a.err
			}
			r.nodeErr(a.node, a.err)
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		got++
		dupAll = dupAll && a.dup
		if winner == nil {
			winner = a.entry
		}
	}
	q := r.quorum(layout)
	if got < q {
		r.m.quorumFailures.Inc()
		return nil, false, fmt.Errorf("cluster: write quorum not reached for %s/%s/%s (%d/%d acks, first error: %v): %w",
			workload, label, run, got, q, firstErr, store.ErrUnavailable)
	}
	r.m.ingestBytes.Add(float64(len(blob)))
	r.cmu.Lock()
	for _, a := range acks {
		if a.err == nil {
			r.hints[winner.ID] = a.node
			break
		}
	}
	r.cmu.Unlock()
	cp := *winner
	cp.Seq = 0 // Seq is a per-node manifest position; meaningless cluster-wide
	return &cp, dupAll, nil
}

// ---- Backend: blob + sketch reads ------------------------------------------

// fetchOrder returns node ids to try for a blob id: the last node that
// served it first, then every member in sorted order.
func (r *Router) fetchOrder(id string, nodes map[string]*nodeClient) []string {
	ids := make([]string, 0, len(nodes))
	for nid := range nodes {
		ids = append(ids, nid)
	}
	sort.Strings(ids)
	r.cmu.Lock()
	hint, ok := r.hints[id]
	r.cmu.Unlock()
	if ok {
		ordered := []string{hint}
		for _, nid := range ids {
			if nid != hint {
				ordered = append(ordered, nid)
			}
		}
		return ordered
	}
	return ids
}

// Get returns the decoded profile stored under id, via the coordinator's
// decode cache. Sketch-mode diagnoses never call it, which is what keeps the
// decode-cache counters flat.
func (r *Router) Get(id string) (*sampler.Profile, error) {
	r.cmu.Lock()
	if p, ok := r.cache[id]; ok {
		r.cacheHits++
		r.cmu.Unlock()
		return p, nil
	}
	r.cacheMiss++
	r.cmu.Unlock()

	_, nodes := r.snapshot()
	var lastErr error
	for _, nid := range r.fetchOrder(id, nodes) {
		nc := nodes[nid]
		blob, err := nc.blob(id)
		if err != nil {
			lastErr = err
			continue
		}
		sum := sha256.Sum256(blob)
		if hex.EncodeToString(sum[:]) != id {
			lastErr = fmt.Errorf("cluster: node %s served corrupt blob %s", nid, id)
			r.nodeErr(nid, lastErr)
			continue
		}
		p, err := profilefmt.Unmarshal(blob)
		if err != nil {
			lastErr = err
			continue
		}
		r.cmu.Lock()
		r.hints[id] = nid
		if _, ok := r.cache[id]; !ok {
			for len(r.cache) >= r.cacheCap && len(r.cacheOrder) > 0 {
				delete(r.cache, r.cacheOrder[0])
				r.cacheOrder = r.cacheOrder[1:]
			}
			r.cache[id] = p
			r.cacheOrder = append(r.cacheOrder, id)
		}
		r.cmu.Unlock()
		return p, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no nodes")
	}
	return nil, fmt.Errorf("cluster: blob %s unavailable: %w", id, lastErr)
}

// GetSketch returns the per-variable sketch of a stored blob, fetched from
// whichever replica holds it and cached at the coordinator.
func (r *Router) GetSketch(id string) (*sketch.Profile, error) {
	r.cmu.Lock()
	if sk, ok := r.sketches[id]; ok {
		r.sketchHits++
		r.cmu.Unlock()
		return sk, nil
	}
	r.sketchMiss++
	r.cmu.Unlock()

	_, nodes := r.snapshot()
	var lastErr error
	for _, nid := range r.fetchOrder(id, nodes) {
		nc := nodes[nid]
		raw, err := nc.sketch(id)
		if err != nil {
			lastErr = err
			continue
		}
		sk, err := profilefmt.UnmarshalSketch(raw)
		if err != nil {
			lastErr = fmt.Errorf("cluster: node %s served bad sketch %s: %w", nid, id, err)
			r.nodeErr(nid, lastErr)
			continue
		}
		r.cmu.Lock()
		r.hints[id] = nid
		if _, ok := r.sketches[id]; !ok {
			for len(r.sketches) >= r.cacheCap && len(r.sketchOrd) > 0 {
				delete(r.sketches, r.sketchOrd[0])
				r.sketchOrd = r.sketchOrd[1:]
			}
			r.sketches[id] = sk
			r.sketchOrd = append(r.sketchOrd, id)
		}
		r.cmu.Unlock()
		return sk, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no nodes")
	}
	return nil, fmt.Errorf("cluster: sketch %s unavailable: %w", id, lastErr)
}

// CacheStats reports the coordinator's decode-cache counters.
func (r *Router) CacheStats() store.CacheStats {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return store.CacheStats{Hits: r.cacheHits, Misses: r.cacheMiss, Entries: len(r.cache)}
}

// SketchStats reports the coordinator's sketch-cache counters. Rebuilds
// happen node-side, so only hit/miss/indexed are meaningful here.
func (r *Router) SketchStats() store.SketchStats {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return store.SketchStats{Hits: r.sketchHits, Misses: r.sketchMiss, Indexed: len(r.sketches)}
}

// ---- Backend: merged entry reads + read-repair -----------------------------

// entryCopies is one (workload,label,run) key's copies across the cluster.
type entryCopies struct {
	byNode map[string]*store.Entry
}

// resolveWinner picks the authoritative copy of a divergent key: the blob ID
// held by the most nodes, ties broken toward the lexicographically greatest
// ID so every router converges on the same answer with no coordination.
func resolveWinner(byNode map[string]*store.Entry) *store.Entry {
	counts := map[string]int{}
	for _, e := range byNode {
		counts[e.ID]++
	}
	bestID, bestN := "", 0
	for id, n := range counts {
		if n > bestN || (n == bestN && id > bestID) {
			bestID, bestN = id, n
		}
	}
	for _, e := range byNode {
		if e.ID == bestID {
			cp := *e
			cp.Seq = 0
			return &cp
		}
	}
	return nil
}

// sweep queries every member for its entries of one workload ("" = all).
// Unreachable nodes are skipped — availability over completeness; repair and
// health reporting cover the gap.
func (r *Router) sweep(workload string) map[string]*entryCopies {
	_, nodes := r.snapshot()
	type result struct {
		node    string
		entries []*store.Entry
		err     error
	}
	results := make(chan result, len(nodes))
	for id, nc := range nodes {
		go func(id string, nc *nodeClient) {
			entries, err := nc.entries(workload)
			results <- result{node: id, entries: entries, err: err}
		}(id, nc)
	}
	keys := map[string]*entryCopies{}
	for range nodes {
		res := <-results
		if res.err != nil {
			r.nodeErr(res.node, res.err)
			continue
		}
		for _, e := range res.entries {
			k := e.Workload + "\x00" + string(e.Label) + "\x00" + e.Run
			c := keys[k]
			if c == nil {
				c = &entryCopies{byNode: map[string]*store.Entry{}}
				keys[k] = c
			}
			c.byNode[res.node] = e
		}
	}
	return keys
}

// repairKey pushes the winning copy of a key to every owner that lacks it.
// Repair is strictly best-effort: failures are counted and logged, never
// surfaced to the read that triggered them.
func (r *Router) repairKey(winner *store.Entry, byNode map[string]*store.Entry) {
	layout, nodes := r.snapshot()
	shard := ShardOf(winner.Workload, winner.Label, winner.Run, r.shards)
	var lagging []string
	for _, owner := range layout.Owners[shard] {
		if e, ok := byNode[owner]; !ok || e.ID != winner.ID {
			lagging = append(lagging, owner)
		}
	}
	if len(lagging) == 0 {
		return
	}
	blob, err := r.blobFromHolders(winner.ID, byNode, nodes)
	if err != nil {
		r.m.repairFailures.Inc()
		r.log.Warn("read-repair: winner blob unavailable", "id", winner.ID, "err", err)
		return
	}
	for _, owner := range lagging {
		nc, ok := nodes[owner]
		if !ok {
			continue
		}
		if _, _, err := nc.put(winner.Workload, string(winner.Label), winner.Run, blob); err != nil {
			r.m.repairFailures.Inc()
			r.nodeErr(owner, err)
			continue
		}
		r.m.readRepairs.Inc()
		r.log.Info("read-repair", "workload", winner.Workload, "label", winner.Label,
			"run", winner.Run, "node", owner)
	}
}

// blobFromHolders fetches the winner's bytes from a node known to hold it.
func (r *Router) blobFromHolders(id string, byNode map[string]*store.Entry, nodes map[string]*nodeClient) ([]byte, error) {
	holders := make([]string, 0, len(byNode))
	for nid, e := range byNode {
		if e.ID == id {
			holders = append(holders, nid)
		}
	}
	sort.Strings(holders)
	var lastErr error
	for _, nid := range holders {
		nc, ok := nodes[nid]
		if !ok {
			continue
		}
		blob, err := nc.blob(id)
		if err != nil {
			lastErr = err
			continue
		}
		sum := sha256.Sum256(blob)
		if hex.EncodeToString(sum[:]) == id {
			return blob, nil
		}
		lastErr = fmt.Errorf("cluster: node %s served corrupt blob %s", nid, id)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no reachable holder for %s", id)
	}
	return nil, lastErr
}

// mergedEntries resolves the cluster-wide view of one workload's entries,
// repairing divergent owner copies along the way.
func (r *Router) mergedEntries(workload string) []*store.Entry {
	keys := r.sweep(workload)
	var out []*store.Entry
	for _, c := range keys {
		winner := resolveWinner(c.byNode)
		if winner == nil {
			continue
		}
		r.repairKey(winner, c.byNode)
		out = append(out, winner)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return runLess(out[i].Run, out[j].Run)
	})
	return out
}

// runLess mirrors the store's natural run ordering (shorter first, then
// lexicographic) so cluster reads return baselines in the same order a
// single-node store would.
func runLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Lookup resolves one (workload, label, run) key cluster-wide.
func (r *Router) Lookup(workload string, label store.Label, run string) (*store.Entry, bool) {
	for _, e := range r.mergedEntries(workload) {
		if e.Label == label && e.Run == run {
			return e, true
		}
	}
	return nil, false
}

// Baselines returns the merged rolling baseline corpus in run order.
// Cluster-wide there is no total manifest order, so when the corpus
// overflows the cap the highest run IDs are kept (run IDs grow
// monotonically under the continuous-profiling agents).
func (r *Router) Baselines(workload string) []*store.Entry {
	var out []*store.Entry
	for _, e := range r.mergedEntries(workload) {
		if e.Label == store.LabelNormal {
			out = append(out, e)
		}
	}
	if len(out) > r.baselineCap {
		out = out[len(out)-r.baselineCap:]
	}
	return out
}

// Candidates returns the merged candidate entries in run order.
func (r *Router) Candidates(workload string) []*store.Entry {
	var out []*store.Entry
	for _, e := range r.mergedEntries(workload) {
		if e.Label == store.LabelCandidate {
			out = append(out, e)
		}
	}
	return out
}

// Workloads lists every workload any member holds, with merged counts.
func (r *Router) Workloads() []store.WorkloadInfo {
	names := map[string]bool{}
	for k := range r.sweep("") {
		wl, _, _ := splitKey(k)
		names[wl] = true
	}
	sorted := make([]string, 0, len(names))
	for wl := range names {
		sorted = append(sorted, wl)
	}
	sort.Strings(sorted)
	out := make([]store.WorkloadInfo, 0, len(sorted))
	for _, wl := range sorted {
		info := store.WorkloadInfo{Workload: wl}
		for _, e := range r.mergedEntries(wl) {
			switch e.Label {
			case store.LabelNormal:
				info.Normals++
			case store.LabelCandidate:
				info.Candidates++
			}
		}
		info.Baselines = info.Normals
		if info.Baselines > r.baselineCap {
			info.Baselines = r.baselineCap
		}
		out = append(out, info)
	}
	return out
}

func splitKey(k string) (workload, label, run string) {
	parts := bytes.SplitN([]byte(k), []byte{0}, 3)
	if len(parts) != 3 {
		return k, "", ""
	}
	return string(parts[0]), string(parts[1]), string(parts[2])
}

// ---- Backend: cross-node corpus folding ------------------------------------

// Corpus folds the baseline sketch corpus for a workload across the cluster:
// each member folds the subset of ids it holds locally and returns a partial
// corpus; the coordinator merges them (Corpus.Merge is associative and
// commutative, so the result is byte-for-byte the single-node fold). IDs no
// member can fold wrap store.ErrUnavailable and the caller falls back to
// fetching raw sketches.
func (r *Router) Corpus(workload string, ids []string) (*analysis.Corpus, error) {
	_, nodes := r.snapshot()
	order := make([]string, 0, len(nodes))
	for id := range nodes {
		order = append(order, id)
	}
	sort.Strings(order)

	corpus := analysis.NewCorpus()
	remaining := ids
	for _, nid := range order {
		if len(remaining) == 0 {
			break
		}
		resp, err := nodes[nid].corpus(workload, remaining)
		if err != nil {
			r.nodeErr(nid, err)
			continue
		}
		folded := len(remaining) - len(resp.Missing)
		if folded > 0 {
			corpus.Merge(&analysis.Corpus{Runs: resp.Runs, Ranks: resp.Ranks})
		}
		remaining = resp.Missing
	}
	if len(remaining) > 0 {
		return nil, fmt.Errorf("cluster: %d corpus sketch(es) not foldable on any member: %w",
			len(remaining), store.ErrUnavailable)
	}
	return corpus, nil
}

// ---- Backend: health + lifecycle -------------------------------------------

// HealthDetail probes every member and classifies the cluster:
// "ok" when all replicas of all shards are reachable and clean,
// "degraded" when replicas are lost or recovered dirty but every shard still
// meets its write quorum, "unavailable" once any shard drops below quorum.
// It refreshes the vprof_replicas_healthy gauge per shard.
func (r *Router) HealthDetail() (string, map[string]string) {
	layout, nodes := r.snapshot()
	checks := map[string]string{}
	healthy := map[string]bool{}
	degraded := false
	for id, nc := range nodes {
		h, err := nc.health()
		switch {
		case err != nil:
			checks["node_"+id] = "unreachable: " + err.Error()
			degraded = true
		case h.Status != "ok":
			checks["node_"+id] = h.Status + ": " + h.Error
			degraded = true
		case h.Recovered:
			checks["node_"+id] = "ok (recovered from dirty shutdown)"
			healthy[id] = true
			degraded = true
		default:
			checks["node_"+id] = "ok"
			healthy[id] = true
		}
	}
	q := r.quorum(layout)
	worst, worstShard := len(nodes)+1, -1
	for s := 0; s < layout.Shards; s++ {
		up := 0
		for _, owner := range layout.Owners[s] {
			if healthy[owner] {
				up++
			}
		}
		r.m.replicasHealthy.With(shardLabel(s)).Set(float64(up))
		if up < worst {
			worst, worstShard = up, s
		}
	}
	if worstShard >= 0 && worst < layout.Replicas {
		checks["replicas"] = fmt.Sprintf("shard %d has %d/%d replicas", worstShard, worst, layout.Replicas)
		degraded = true
	}
	if worstShard >= 0 && worst < q {
		checks["replicas"] = fmt.Sprintf("shard %d below write quorum (%d/%d)", worstShard, worst, q)
		return "unavailable", checks
	}
	if degraded {
		return "degraded", checks
	}
	return "ok", checks
}

// Health reports an error only when the cluster cannot take quorum writes —
// replica loss degrades, it does not fail.
func (r *Router) Health() error {
	status, checks := r.HealthDetail()
	if status == "unavailable" {
		return fmt.Errorf("cluster: %s: %w", checks["replicas"], store.ErrUnavailable)
	}
	return nil
}

// Flush asks every reachable member to fsync; unreachable members are
// skipped (they have nothing buffered for us to lose).
func (r *Router) Flush() error {
	_, nodes := r.snapshot()
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var firstErr error
	for _, id := range ids {
		if err := nodes[id].flush(); err != nil {
			if isUnreachable(err) {
				continue
			}
			r.nodeErr(id, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: flush %s: %w", id, err)
			}
		}
	}
	return firstErr
}

// isUnreachable reports whether an internal-API error is a transport
// failure (node down) rather than a served error.
func isUnreachable(err error) bool {
	var se *statusError
	return !errors.As(err, &se)
}

// ---- node client -----------------------------------------------------------

// statusError is an error the node actually served (vs a transport failure).
type statusError struct {
	status int
	code   string
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("node returned %d (%s): %s", e.status, e.code, e.msg)
}

type nodeClient struct {
	ref  NodeRef
	http *http.Client
}

func (nc *nodeClient) url(path string) string { return nc.ref.Base + path }

func (nc *nodeClient) decodeError(resp *http.Response) error {
	var ne nodeError
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &ne); err != nil || ne.Error == "" {
		ne.Error = string(body)
	}
	return &statusError{status: resp.StatusCode, code: ne.Code, msg: ne.Error}
}

func (nc *nodeClient) getJSON(path string, out any) error {
	resp, err := nc.http.Get(nc.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nc.decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (nc *nodeClient) getRaw(path string) ([]byte, error) {
	resp, err := nc.http.Get(nc.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nc.decodeError(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxPutBytes+1))
}

func (nc *nodeClient) put(workload, label, run string, blob []byte) (*store.Entry, bool, error) {
	q := url.Values{"workload": {workload}, "label": {label}, "run": {run}}
	resp, err := nc.http.Post(nc.url("/internal/v1/put?"+q.Encode()), "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := nc.decodeError(resp)
		var se *statusError
		if errors.As(err, &se) && se.code == "invalid" {
			// Re-wrap so the service's existing 400 mapping applies.
			return nil, false, fmt.Errorf("cluster: node %s: %s: %w", nc.ref.ID, se.msg, store.ErrInvalidProfile)
		}
		return nil, false, err
	}
	var pr putResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, false, err
	}
	return pr.Entry, pr.Dup, nil
}

func (nc *nodeClient) blob(id string) ([]byte, error) {
	return nc.getRaw("/internal/v1/blob/" + url.PathEscape(id))
}

func (nc *nodeClient) sketch(id string) ([]byte, error) {
	return nc.getRaw("/internal/v1/sketch/" + url.PathEscape(id))
}

func (nc *nodeClient) entries(workload string) ([]*store.Entry, error) {
	path := "/internal/v1/entries"
	if workload != "" {
		path += "?workload=" + url.QueryEscape(workload)
	}
	var out []*store.Entry
	if err := nc.getJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (nc *nodeClient) corpus(workload string, ids []string) (*corpusResponse, error) {
	body, err := json.Marshal(corpusRequest{Workload: workload, IDs: ids})
	if err != nil {
		return nil, err
	}
	resp, err := nc.http.Post(nc.url("/internal/v1/corpus"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nc.decodeError(resp)
	}
	var out corpusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (nc *nodeClient) health() (*nodeHealth, error) {
	resp, err := nc.http.Get(nc.url("/internal/v1/health"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h nodeHealth
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return nil, nc.decodeError(resp)
	}
	return &h, nil
}

func (nc *nodeClient) flush() error {
	resp, err := nc.http.Post(nc.url("/internal/v1/flush"), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return nc.decodeError(resp)
	}
	return nil
}
