package cluster

import (
	"context"
	"fmt"
	"sort"

	"vprof/internal/store"
)

// RebalanceReport summarizes one anti-entropy pass.
type RebalanceReport struct {
	Shards        int   // shards scanned
	SyncedShards  int   // shards that needed at least one copy
	CopiedEntries int   // (entry, owner) copies performed
	CopiedBytes   int64 // blob bytes moved
	Errors        int   // copy failures (pass is rerun until zero)
}

func (rep *RebalanceReport) String() string {
	return fmt.Sprintf("rebalance: %d shard(s) scanned, %d synced, %d entr(ies) copied (%d bytes), %d error(s)",
		rep.Shards, rep.SyncedShards, rep.CopiedEntries, rep.CopiedBytes, rep.Errors)
}

// Rebalance runs one full anti-entropy pass against the current layout:
// every entry anywhere in the cluster is copied to every current owner that
// lacks the winning copy. The pass is a pure function of (cluster contents,
// layout) — no old-placement bookkeeping — so it is idempotent and safe to
// rerun after any interruption, including a node crash mid-pass: the next
// pass simply finds less work. Shards sync in ascending order (the
// deterministic "state machine" tests pin: scan → sync → done per shard).
//
// A nonzero Errors count is returned as an error so operators rerun the
// pass; everything already copied stays copied.
func (r *Router) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	layout, nodes := r.snapshot()
	rep := &RebalanceReport{Shards: layout.Shards}

	// Scan: one sweep of every member's full entry list, bucketed by shard.
	byShard := make(map[int][]*entryCopies, layout.Shards)
	keyOf := map[*entryCopies]string{}
	for k, copies := range r.sweep("") {
		wl, label, run := splitKey(k)
		s := ShardOf(wl, store.Label(label), run, r.shards)
		byShard[s] = append(byShard[s], copies)
		keyOf[copies] = k
	}

	var firstErr error
	for s := 0; s < layout.Shards; s++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		work := byShard[s]
		// Deterministic sync order within the shard.
		sort.Slice(work, func(i, j int) bool { return keyOf[work[i]] < keyOf[work[j]] })
		synced := false
		for _, copies := range work {
			winner := resolveWinner(copies.byNode)
			if winner == nil {
				continue
			}
			var lagging []string
			for _, owner := range layout.Owners[s] {
				if e, ok := copies.byNode[owner]; !ok || e.ID != winner.ID {
					lagging = append(lagging, owner)
				}
			}
			if len(lagging) == 0 {
				continue
			}
			blob, err := r.blobFromHolders(winner.ID, copies.byNode, nodes)
			if err != nil {
				rep.Errors++
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: rebalance shard %d: fetch %s: %w", s, winner.ID, err)
				}
				continue
			}
			for _, owner := range lagging {
				nc, ok := nodes[owner]
				if !ok {
					continue
				}
				if _, _, err := nc.put(winner.Workload, string(winner.Label), winner.Run, blob); err != nil {
					rep.Errors++
					r.nodeErr(owner, err)
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: rebalance shard %d: copy %s/%s/%s to %s: %w",
							s, winner.Workload, winner.Label, winner.Run, owner, err)
					}
					continue
				}
				synced = true
				rep.CopiedEntries++
				rep.CopiedBytes += int64(len(blob))
				r.m.rebalanceCopies.Inc()
			}
		}
		if synced {
			rep.SyncedShards++
			r.log.Info("rebalance: shard synced", "shard", s)
		}
	}
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}
