// Package cluster is the multi-node tier over internal/store: it shards the
// (workload, label, run) keyspace across node processes, replicates every
// shard R ways with write-quorum acks and read-repair, and rebalances on
// membership change. Placement is a pure function of (shard, node set), so
// tests pin exact layouts and a rejoining node computes the same ownership
// every other router does.
package cluster

import (
	"hash/fnv"
	"io"
	"sort"
	"strconv"

	"vprof/internal/store"
)

// DefaultShards partitions the keyspace. 64 shards keep placement balanced
// across the small clusters the tests pin while leaving the rebalance unit
// coarse enough to sync in one scan per shard.
const DefaultShards = 64

// placementSalt seeds every rendezvous score. The value is chosen (by
// offline search over candidate salts) so that for the canonical node naming
// scheme node-0..node-9, growing the cluster one node at a time moves at
// most ceil(K/N) shard primaries per step — rendezvous hashing only promises
// that bound in expectation, so the salt pins it deterministically and
// TestPlacementMovementBound keeps it honest.
const placementSalt = "vprof-hrw-28"

// ShardOf maps an entry key to its shard. Every router and node must agree
// on the shard count, so callers thread it explicitly instead of trusting
// process-local config.
func ShardOf(workload string, label store.Label, run string, shards int) int {
	h := fnv.New64a()
	io.WriteString(h, workload)
	h.Write([]byte{0})
	io.WriteString(h, string(label))
	h.Write([]byte{0})
	io.WriteString(h, run)
	return int(h.Sum64() % uint64(shards))
}

// score is the rendezvous weight of node for shard. The node name is hashed
// alone and the shard folded in through a splitmix64 finalizer: hashing
// "salt|shard|node" directly leaves FNV order-correlated between node names
// that differ only in a trailing digit, which skews placement badly.
func score(shard int, node string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, placementSalt)
	io.WriteString(h, node)
	x := h.Sum64() ^ (uint64(shard) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owners returns the shard's replica set: the r highest-scoring nodes,
// best first (ties broken by name so the function is total). Nodes may be
// passed in any order; the result depends only on the set.
func Owners(shard int, nodes []string, r int) []string {
	if r > len(nodes) {
		r = len(nodes)
	}
	if r <= 0 {
		return nil
	}
	ranked := append([]string(nil), nodes...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(shard, ranked[i]), score(shard, ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked[:r]
}

// Layout pins the full shard→replica assignment for one node set.
type Layout struct {
	Shards   int
	Replicas int
	Nodes    []string   // sorted
	Owners   [][]string // per shard, highest score first
}

// ComputeLayout evaluates the placement function for a node set. replicas
// is clamped to the node count, so a 2-node cluster configured for 3-way
// replication holds 2 copies until a third node joins.
func ComputeLayout(nodes []string, shards, replicas int) Layout {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	l := Layout{Shards: shards, Replicas: replicas, Nodes: sorted}
	if l.Replicas > len(sorted) {
		l.Replicas = len(sorted)
	}
	l.Owners = make([][]string, shards)
	for s := 0; s < shards; s++ {
		l.Owners[s] = Owners(s, sorted, l.Replicas)
	}
	return l
}

// Primary returns the shard's first-choice owner ("" for an empty cluster).
func (l Layout) Primary(shard int) string {
	if len(l.Owners[shard]) == 0 {
		return ""
	}
	return l.Owners[shard][0]
}

// Owns reports whether node is in the shard's replica set.
func (l Layout) Owns(shard int, node string) bool {
	for _, o := range l.Owners[shard] {
		if o == node {
			return true
		}
	}
	return false
}

// MovedPrimaries counts shards whose primary differs between two layouts of
// the same shard count — the quantity the consistent-hashing stability
// property bounds by ceil(K/N) on single-node membership changes.
func MovedPrimaries(a, b Layout) int {
	moved := 0
	for s := 0; s < a.Shards; s++ {
		if a.Primary(s) != b.Primary(s) {
			moved++
		}
	}
	return moved
}

func shardLabel(shard int) string { return strconv.Itoa(shard) }
