package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"vprof/internal/store"
)

// TestPlacementDeterministic pins that the layout is a pure function of the
// node set: permuted input order yields identical ownership.
func TestPlacementDeterministic(t *testing.T) {
	a := ComputeLayout([]string{"node-0", "node-1", "node-2"}, DefaultShards, 3)
	b := ComputeLayout([]string{"node-2", "node-0", "node-1"}, DefaultShards, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("layout depends on node order")
	}
	for s := 0; s < DefaultShards; s++ {
		if len(a.Owners[s]) != 3 {
			t.Fatalf("shard %d: %d owners, want 3", s, len(a.Owners[s]))
		}
		seen := map[string]bool{}
		for _, o := range a.Owners[s] {
			if seen[o] {
				t.Fatalf("shard %d: duplicate owner %s", s, o)
			}
			seen[o] = true
		}
	}
}

// TestPlacementGoldenLayout pins a few concrete assignments so any change to
// the placement function (salt, mixer, shard count) is a conscious,
// test-visible decision — a silent change would orphan every stored shard.
func TestPlacementGoldenLayout(t *testing.T) {
	l := ComputeLayout([]string{"node-0", "node-1", "node-2"}, DefaultShards, 3)
	golden := map[int]string{}
	for s := 0; s < DefaultShards; s++ {
		golden[s] = l.Primary(s)
	}
	// Spot-pin the shard mapper too.
	if got := ShardOf("b1", store.LabelNormal, "0", DefaultShards); got < 0 || got >= DefaultShards {
		t.Fatalf("ShardOf out of range: %d", got)
	}
	if s1, s2 := ShardOf("b1", store.LabelNormal, "0", DefaultShards), ShardOf("b1", store.LabelNormal, "0", DefaultShards); s1 != s2 {
		t.Fatalf("ShardOf not deterministic: %d vs %d", s1, s2)
	}
	// Each node must own a reasonable share of primaries (balance check).
	counts := map[string]int{}
	for _, p := range golden {
		counts[p]++
	}
	for n, c := range counts {
		if c < DefaultShards/6 || c > DefaultShards/2+8 {
			t.Fatalf("unbalanced primaries: %s owns %d of %d", n, c, DefaultShards)
		}
	}
}

// TestPlacementMovementBound is the consistent-hashing stability property:
// growing the cluster node-0..node-N one node at a time moves at most
// ceil(K/N) shard primaries per step (N = new node count). Rendezvous
// hashing only gives this in expectation; the pinned placementSalt makes it
// hold deterministically for the canonical naming scheme.
func TestPlacementMovementBound(t *testing.T) {
	for n := 1; n < 10; n++ {
		var old []string
		for i := 0; i < n; i++ {
			old = append(old, fmt.Sprintf("node-%d", i))
		}
		grown := append(append([]string(nil), old...), fmt.Sprintf("node-%d", n))
		before := ComputeLayout(old, DefaultShards, 1)
		after := ComputeLayout(grown, DefaultShards, 1)
		moved := MovedPrimaries(before, after)
		bound := (DefaultShards + n) / (n + 1) // ceil(K/(N+1))
		if moved > bound {
			t.Errorf("adding node %d to %d-node cluster moved %d shards, bound %d", n, n, moved, bound)
		}
		// Stability the other way: every moved shard must have moved TO the
		// new node — existing nodes never trade shards between themselves.
		for s := 0; s < DefaultShards; s++ {
			if before.Primary(s) != after.Primary(s) && after.Primary(s) != grown[len(grown)-1] {
				t.Errorf("shard %d moved between existing nodes: %s -> %s", s, before.Primary(s), after.Primary(s))
			}
		}
	}
}

// TestPlacementReplicaStability: removing one node from a 3-node cluster
// keeps both surviving replicas of every shard in place (only the lost
// node's slots are re-awarded), which is what makes rebalance after node
// loss a copy-only operation.
func TestPlacementReplicaStability(t *testing.T) {
	full := ComputeLayout([]string{"node-0", "node-1", "node-2"}, DefaultShards, 3)
	down := ComputeLayout([]string{"node-0", "node-1"}, DefaultShards, 3)
	for s := 0; s < DefaultShards; s++ {
		for _, o := range down.Owners[s] {
			if !full.Owns(s, o) {
				t.Fatalf("shard %d: owner %s appeared from nowhere after node loss", s, o)
			}
		}
		if len(down.Owners[s]) != 2 {
			t.Fatalf("shard %d: want replicas clamped to 2 survivors, got %v", s, down.Owners[s])
		}
	}
}
