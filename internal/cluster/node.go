package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"vprof/internal/analysis"
	"vprof/internal/debuginfo"
	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/schema"
	"vprof/internal/store"
)

// maxPutBytes bounds one replicated blob upload (matches the service's
// single-profile upload limit).
const maxPutBytes = 64 << 20

// DebugResolver maps a workload name to its debug info, which nodes need to
// fold corpus sketches locally (rank extraction is debug-info dependent).
// service.Resolver satisfies it structurally.
type DebugResolver interface {
	Resolve(workload string) (*debuginfo.Info, *schema.Schema, error)
}

// NodeConfig wires one cluster node.
type NodeConfig struct {
	// ID is the node's stable name; placement hashes it, so renaming a node
	// reassigns its shards.
	ID string
	// Store is the node's durability layer, opened by the caller so tests
	// can inject a faultfs crash injector underneath.
	Store *store.Store
	// Resolver, when set, enables node-side corpus folding (POST corpus).
	// Without it the coordinator falls back to fetching raw sketches.
	Resolver DebugResolver
	Logger   *slog.Logger
	Metrics  *obs.Registry
}

// Node serves one shard-holding store over the internal cluster API.
type Node struct {
	id       string
	st       *store.Store
	resolver DebugResolver
	log      *slog.Logger
	reg      *obs.Registry

	puts    *obs.Counter
	corpora *obs.Counter
}

// NewNode validates the config and returns a servable node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: node needs an ID")
	}
	if cfg.Store == nil {
		return nil, errors.New("cluster: node needs a store")
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Nop()
	}
	return &Node{
		id:       cfg.ID,
		st:       cfg.Store,
		resolver: cfg.Resolver,
		log:      log.With("node", cfg.ID),
		reg:      cfg.Metrics,
		puts:     cfg.Metrics.Counter("vprof_node_puts_total", "Replicated blob writes accepted by this node."),
		corpora:  cfg.Metrics.Counter("vprof_node_corpus_folds_total", "Node-side corpus folds served."),
	}, nil
}

// ID returns the node's placement name.
func (n *Node) ID() string { return n.id }

// Store exposes the underlying store (tests reach through it).
func (n *Node) Store() *store.Store { return n.st }

// nodeError is the wire shape of an internal-API failure.
type nodeError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeNodeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeNodeError(w http.ResponseWriter, status int, code string, err error) {
	writeNodeJSON(w, status, nodeError{Error: err.Error(), Code: code})
}

// putResponse acknowledges one replicated write.
type putResponse struct {
	Entry *store.Entry `json:"entry"`
	Dup   bool         `json:"dup"`
}

// corpusRequest asks the node to fold whichever of ids it holds locally.
type corpusRequest struct {
	Workload string   `json:"workload"`
	IDs      []string `json:"ids"`
}

// corpusResponse returns the partial corpus plus the ids this node could not
// serve (the coordinator forwards those to the next replica).
type corpusResponse struct {
	Runs    int              `json:"runs"`
	Ranks   map[string][]int `json:"ranks"`
	Missing []string         `json:"missing,omitempty"`
}

// nodeHealth reports liveness plus whether the store came up from a dirty
// recovery (the router degrades /healthz on it).
type nodeHealth struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
	Recovered bool   `json:"recovered"`
}

// Handler returns the node's internal API. It is intentionally minimal and
// trusted: routers are the only clients, so there is no auth or shedding
// tier here — the public surface stays in internal/service.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/v1/put", n.handlePut)
	mux.HandleFunc("GET /internal/v1/blob/{id}", n.handleBlob)
	mux.HandleFunc("GET /internal/v1/sketch/{id}", n.handleSketch)
	mux.HandleFunc("GET /internal/v1/entries", n.handleEntries)
	mux.HandleFunc("GET /internal/v1/workloads", n.handleWorkloads)
	mux.HandleFunc("POST /internal/v1/corpus", n.handleCorpus)
	mux.HandleFunc("GET /internal/v1/health", n.handleHealth)
	mux.HandleFunc("GET /internal/v1/stats", n.handleStats)
	mux.HandleFunc("POST /internal/v1/flush", n.handleFlush)
	if n.reg != nil {
		mux.Handle("GET /metrics", n.reg.Handler())
	}
	return mux
}

func (n *Node) handlePut(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	label, err := store.ParseLabel(q.Get("label"))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid", err)
		return
	}
	workload, run := q.Get("workload"), q.Get("run")
	if workload == "" || run == "" {
		writeNodeError(w, http.StatusBadRequest, "invalid", errors.New("cluster: put needs workload and run"))
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxPutBytes+1))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid", err)
		return
	}
	if len(blob) > maxPutBytes {
		writeNodeError(w, http.StatusRequestEntityTooLarge, "invalid", errors.New("cluster: blob too large"))
		return
	}
	entry, dup, err := n.st.PutBlob(workload, label, run, blob)
	if err != nil {
		if errors.Is(err, store.ErrInvalidProfile) {
			writeNodeError(w, http.StatusBadRequest, "invalid", err)
			return
		}
		writeNodeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	n.puts.Inc()
	writeNodeJSON(w, http.StatusOK, putResponse{Entry: entry, Dup: dup})
}

func (n *Node) handleBlob(w http.ResponseWriter, r *http.Request) {
	blob, err := n.st.GetBlob(r.PathValue("id"))
	if err != nil {
		writeNodeError(w, http.StatusNotFound, "not_found", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

func (n *Node) handleSketch(w http.ResponseWriter, r *http.Request) {
	sk, err := n.st.GetSketch(r.PathValue("id"))
	if err != nil {
		writeNodeError(w, http.StatusNotFound, "not_found", err)
		return
	}
	blob, err := profilefmt.MarshalSketch(sk)
	if err != nil {
		writeNodeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

func (n *Node) handleEntries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	entries := n.st.Entries(q.Get("workload"))
	// Optional shard filter: the caller passes its shard count so a router
	// and node with skewed configs fail loudly (different K → different
	// filtering) instead of silently disagreeing on ownership.
	if shardStr := q.Get("shard"); shardStr != "" {
		shard, err1 := strconv.Atoi(shardStr)
		shards, err2 := strconv.Atoi(q.Get("shards"))
		if err1 != nil || err2 != nil || shards <= 0 || shard < 0 || shard >= shards {
			writeNodeError(w, http.StatusBadRequest, "invalid", errors.New("cluster: bad shard filter"))
			return
		}
		filtered := entries[:0]
		for _, e := range entries {
			if ShardOf(e.Workload, e.Label, e.Run, shards) == shard {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}
	writeNodeJSON(w, http.StatusOK, entries)
}

func (n *Node) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeNodeJSON(w, http.StatusOK, n.st.Workloads())
}

func (n *Node) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if n.resolver == nil {
		writeNodeError(w, http.StatusNotImplemented, "no_resolver", errors.New("cluster: node has no resolver"))
		return
	}
	var req corpusRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid", err)
		return
	}
	dbg, _, err := n.resolver.Resolve(req.Workload)
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("cluster: resolve %s: %w", req.Workload, err))
		return
	}
	corpus := analysis.NewCorpus()
	var missing []string
	for _, id := range req.IDs {
		sk, err := n.st.GetSketch(id)
		if err != nil {
			missing = append(missing, id)
			continue
		}
		corpus.AddSketch(sk, dbg)
	}
	n.corpora.Inc()
	writeNodeJSON(w, http.StatusOK, corpusResponse{Runs: corpus.Runs, Ranks: corpus.Ranks, Missing: missing})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := nodeHealth{ID: n.id, Status: "ok"}
	if rep := n.st.Recovery(); rep != nil && !rep.Clean() {
		h.Recovered = true
	}
	if err := n.st.Health(); err != nil {
		h.Status = "unavailable"
		h.Error = err.Error()
		writeNodeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeNodeJSON(w, http.StatusOK, h)
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	writeNodeJSON(w, http.StatusOK, map[string]any{
		"decode_cache": n.st.CacheStats(),
		"sketch_cache": n.st.SketchStats(),
	})
}

func (n *Node) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := n.st.Flush(); err != nil {
		writeNodeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
