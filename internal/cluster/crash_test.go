package cluster_test

// Whole-node-loss crash matrices: the third replica's filesystem is driven
// by a faultfs injector and "the machine dies" at every single mutating
// disk operation — mid-ingest, mid-rebalance, and mid-read-repair. After
// each loss the node's directory is reopened like a process restart (store
// recovery runs), one anti-entropy pass converges the cluster, and every
// quorum-acked push must be back on every owner with a clean fsck.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"vprof/internal/cluster"
	"vprof/internal/faultfs"
	"vprof/internal/obs"
	"vprof/internal/store"
)

// ackKey records one push the router acknowledged (quorum held it).
type ackKey struct {
	workload string
	label    store.Label
	run      string
	id       string
}

// crashCluster builds a 3-node cluster whose node-2 ("the victim") persists
// through inj. A crash during the victim's own store open leaves it down —
// exactly what a node that dies while recovering looks like to the router.
func crashCluster(t *testing.T, inj *faultfs.Injector) *env {
	t.Helper()
	e := &env{reg: obs.NewRegistry()}
	refs := make([]cluster.NodeRef, 3)
	for i := 0; i < 3; i++ {
		en := &envNode{id: fmt.Sprintf("node-%d", i), dir: filepath.Join(t.TempDir(), "store")}
		en.srv = httptest.NewServer(en)
		t.Cleanup(en.srv.Close)
		opts := store.Options{}
		if i == 2 && inj != nil {
			en.inj = inj
			opts.FS = inj
		}
		if err := en.tryRestart(opts, nil); err == nil {
			t.Cleanup(func() { en.kill(t) })
		}
		e.nodes = append(e.nodes, en)
		refs[i] = cluster.NodeRef{ID: en.id, Base: en.srv.URL}
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{Nodes: refs, Metrics: e.reg})
	if err != nil {
		t.Fatal(err)
	}
	e.router = router
	return e
}

// crashIngest replays a fixed ingest sequence through the router. Every
// push must ack: two of three replicas are always healthy, which meets the
// majority write quorum regardless of where the victim dies.
func crashIngest(t *testing.T, e *env) []ackKey {
	t.Helper()
	var acked []ackKey
	for i := 0; i < 6; i++ {
		wl := "redis"
		if i%2 == 1 {
			wl = "mysql"
		}
		label := store.LabelNormal
		if i >= 4 {
			label = store.LabelCandidate
		}
		run := fmt.Sprint(i / 2)
		entry, _, err := e.router.PutBlob(wl, label, run, mustBlob(t, int64(i)))
		if err != nil {
			t.Fatalf("push %d must reach quorum with 2/3 replicas healthy: %v", i, err)
		}
		acked = append(acked, ackKey{workload: wl, label: label, run: run, id: entry.ID})
	}
	return acked
}

// recoverVictim plays the restart: close whatever is left of the crashed
// process, reopen the directory through the real filesystem (recovery runs),
// and rejoin at the same address.
func recoverVictim(t *testing.T, e *env) *envNode {
	t.Helper()
	victim := e.nodes[2]
	victim.kill(t)
	victim.setInjector(nil)
	victim.restart(t, store.Options{}, nil)
	return victim
}

// verifyConverged asserts every acked push is on every owner, readable and
// intact, and that the victim's directory fscks clean once closed.
func verifyConverged(t *testing.T, e *env, acked []ackKey) {
	t.Helper()
	for _, a := range acked {
		winner, ok := e.router.Lookup(a.workload, a.label, a.run)
		if !ok {
			t.Fatalf("acked push %v lost after node loss", a)
		}
		if winner.ID != a.id {
			t.Fatalf("acked push %v came back as %s", a, winner.ID)
		}
		for _, en := range e.owners(a.workload, a.label, a.run) {
			got, ok := en.lookup(t, a.workload, a.label, a.run)
			if !ok || got.ID != a.id {
				t.Fatalf("owner %s of %v: ok=%v, want id %s", en.id, a, ok, a.id)
			}
			en.mu.Lock()
			_, err := en.st.Get(a.id)
			en.mu.Unlock()
			if err != nil {
				t.Fatalf("owner %s: acked blob %s unreadable: %v", en.id, a.id, err)
			}
		}
	}
	victim := e.nodes[2]
	victim.kill(t)
	rep, err := store.Fsck(victim.dir)
	if err != nil {
		t.Fatalf("fsck victim after recovery: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("victim store not clean after recovery:\n%s", rep.Render())
	}
}

// TestNodeLossMidIngestMatrix kills the third replica at every mutating disk
// operation of the ingest sequence. Quorum-acked pushes must survive the
// loss, the recovered cluster must converge in one rebalance pass, and the
// victim's store must fsck clean.
func TestNodeLossMidIngestMatrix(t *testing.T) {
	dry := faultfs.NewInjector(nil)
	e := crashCluster(t, dry)
	crashIngest(t, e)
	total := dry.Mutations()
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			inj := faultfs.NewInjector(nil)
			inj.CrashAt(n)
			inj.SetTorn(n%2 == 0)
			e := crashCluster(t, inj)
			acked := crashIngest(t, e)
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", n)
			}
			recoverVictim(t, e)
			if _, err := e.router.Rebalance(context.Background()); err != nil {
				t.Fatalf("rebalance after node loss: %v", err)
			}
			verifyConverged(t, e, acked)
		})
	}
}

// midRebalanceSetup stages the rebalance crash: the victim misses the whole
// ingest (down), then rejoins with inj under its filesystem, so the
// anti-entropy copies onto it are what the crash interrupts.
func midRebalanceSetup(t *testing.T, inj *faultfs.Injector) (*env, []ackKey) {
	t.Helper()
	e := crashCluster(t, nil)
	e.nodes[2].kill(t)
	acked := crashIngest(t, e)
	e.nodes[2].setInjector(inj)
	// The rejoin may itself die mid-open; the matrix covers those points too.
	_ = e.nodes[2].tryRestart(store.Options{FS: inj}, nil)
	return e, acked
}

// TestNodeLossMidRebalanceMatrix kills the rejoining replica at every
// mutating disk operation of the anti-entropy pass. The pass is idempotent:
// after recovery a rerun must converge with zero errors.
func TestNodeLossMidRebalanceMatrix(t *testing.T) {
	dry := faultfs.NewInjector(nil)
	e, _ := midRebalanceSetup(t, dry)
	if _, err := e.router.Rebalance(context.Background()); err != nil {
		t.Fatalf("fault-free rebalance: %v", err)
	}
	total := dry.Mutations()
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			inj := faultfs.NewInjector(nil)
			inj.CrashAt(n)
			inj.SetTorn(n%2 == 0)
			e, acked := midRebalanceSetup(t, inj)
			// The interrupted pass reports its failures; whatever it copied
			// before the crash stays copied.
			_, _ = e.router.Rebalance(context.Background())
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", n)
			}
			recoverVictim(t, e)
			if _, err := e.router.Rebalance(context.Background()); err != nil {
				t.Fatalf("rebalance rerun after node loss: %v", err)
			}
			verifyConverged(t, e, acked)
		})
	}
}

// midRepairSetup stages the read-repair crash: four baseline runs ingested
// while the victim is down, victim back with inj underneath, so the repairs
// a merged read triggers are what the crash interrupts.
func midRepairSetup(t *testing.T, inj *faultfs.Injector) (*env, []ackKey) {
	t.Helper()
	e := crashCluster(t, nil)
	e.nodes[2].kill(t)
	var acked []ackKey
	for i := 0; i < 4; i++ {
		run := fmt.Sprint(i)
		entry, _, err := e.router.PutBlob("redis", store.LabelNormal, run, mustBlob(t, int64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, ackKey{workload: "redis", label: store.LabelNormal, run: run, id: entry.ID})
	}
	e.nodes[2].setInjector(inj)
	_ = e.nodes[2].tryRestart(store.Options{FS: inj}, nil)
	return e, acked
}

// TestNodeLossMidReadRepairMatrix kills the lagging replica at every
// mutating disk operation of the read-repair writes. Repair is best-effort:
// the reads that trigger it must keep succeeding through the loss.
func TestNodeLossMidReadRepairMatrix(t *testing.T) {
	dry := faultfs.NewInjector(nil)
	e, _ := midRepairSetup(t, dry)
	e.router.Baselines("redis") // triggers the repair writes the matrix interrupts
	total := dry.Mutations()
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			inj := faultfs.NewInjector(nil)
			inj.CrashAt(n)
			inj.SetTorn(n%2 == 0)
			e, acked := midRepairSetup(t, inj)

			// Reads ride through the node loss: repair failures are counted,
			// never surfaced.
			got := e.router.Baselines("redis")
			if len(got) != len(acked) {
				t.Fatalf("read during node loss: %d baselines, want %d", len(got), len(acked))
			}
			for i, a := range acked {
				if got[i].ID != a.id {
					t.Fatalf("baseline %d: id %s, want %s", i, got[i].ID, a.id)
				}
			}
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", n)
			}
			if _, ok := e.router.Lookup("redis", store.LabelNormal, "0"); !ok {
				t.Fatal("lookup failed during node loss")
			}

			recoverVictim(t, e)
			if _, err := e.router.Rebalance(context.Background()); err != nil {
				t.Fatalf("rebalance after node loss: %v", err)
			}
			verifyConverged(t, e, acked)
		})
	}
}
