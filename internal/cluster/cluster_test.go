package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"strings"

	"vprof/internal/analysis"
	"vprof/internal/cluster"
	"vprof/internal/faultfs"
	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

func testProfile(seed int64) *sampler.Profile {
	p := &sampler.Profile{
		Pid:        int(seed%7) + 1,
		File:       "prog.vp",
		Interval:   97,
		TotalTicks: 10000 + seed,
		NumAlarms:  100 + seed%13,
		Hist:       make([]int64, 64),
		Layout: []sampler.LayoutEntry{
			{Func: "scan", Name: "n"},
			{Func: "#global", Name: "buf", IsPointer: true},
		},
	}
	for i := range p.Hist {
		p.Hist[i] = (seed*31 + int64(i)*7) % 5
	}
	for i := int64(0); i < 20; i++ {
		p.Samples = append(p.Samples, sampler.Sample{
			Layout: int32(i % 2), PC: int32(i % 64), Value: seed + i, Tick: 97 * i, Link: -1,
		})
	}
	return p
}

func mustBlob(t *testing.T, seed int64) []byte {
	t.Helper()
	blob, err := profilefmt.Marshal(testProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// envNode is one cluster member under test: a real store and Node behind a
// stable base URL whose backing process can be "killed" (connections abort
// like a dead machine's would) and later replaced by a recovered store.
type envNode struct {
	id  string
	dir string

	mu   sync.Mutex
	down bool
	st   *store.Store
	node *cluster.Node
	srv  *httptest.Server
	inj  *faultfs.Injector // when set, a tripped crash point kills the node's transport too
}

func (e *envNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	down, node, inj := e.down, e.node, e.inj
	e.mu.Unlock()
	if down || node == nil || (inj != nil && inj.Crashed()) {
		panic(http.ErrAbortHandler) // connection dies with no response, like a lost node
	}
	node.Handler().ServeHTTP(w, r)
}

// setInjector swaps the node's crash injector (nil = healthy disk again).
func (e *envNode) setInjector(inj *faultfs.Injector) {
	e.mu.Lock()
	e.inj = inj
	e.mu.Unlock()
}

// kill simulates whole-node loss: the store is closed and every subsequent
// request aborts at the transport layer.
func (e *envNode) kill(t *testing.T) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.down = true
	if e.st != nil {
		_ = e.st.Close()
		e.st = nil
		e.node = nil
	}
}

// tryRestart reopens the node's directory (recovery runs) and brings the
// same base URL back up. A failed open (e.g. a crash injector tripping
// during recovery) leaves the node down.
func (e *envNode) tryRestart(opts store.Options, resolver cluster.DebugResolver) error {
	st, err := store.Open(e.dir, opts)
	if err != nil {
		return err
	}
	node, err := cluster.NewNode(cluster.NodeConfig{ID: e.id, Store: st, Resolver: resolver})
	if err != nil {
		st.Close()
		return err
	}
	e.mu.Lock()
	e.down = false
	e.st = st
	e.node = node
	e.mu.Unlock()
	return nil
}

func (e *envNode) restart(t *testing.T, opts store.Options, resolver cluster.DebugResolver) {
	t.Helper()
	if err := e.tryRestart(opts, resolver); err != nil {
		t.Fatalf("restart %s: %v", e.id, err)
	}
}

// lookup reads the node's local store state directly (bypassing the router).
func (e *envNode) lookup(t *testing.T, workload string, label store.Label, run string) (*store.Entry, bool) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == nil {
		t.Fatalf("node %s is down", e.id)
	}
	return e.st.Lookup(workload, label, run)
}

type env struct {
	nodes  []*envNode
	router *cluster.Router
	reg    *obs.Registry
}

// newEnv spins up n nodes and a router over them. cfg tweaks the router
// config after the node refs are filled in.
func newEnv(t *testing.T, n int, resolver cluster.DebugResolver, cfg func(*cluster.RouterConfig)) *env {
	t.Helper()
	e := &env{reg: obs.NewRegistry()}
	refs := make([]cluster.NodeRef, n)
	for i := 0; i < n; i++ {
		en := &envNode{id: fmt.Sprintf("node-%d", i), dir: filepath.Join(t.TempDir(), "store")}
		en.srv = httptest.NewServer(en)
		t.Cleanup(en.srv.Close)
		en.restart(t, store.Options{}, resolver)
		t.Cleanup(func() {
			en.mu.Lock()
			defer en.mu.Unlock()
			if en.st != nil {
				en.st.Close()
			}
		})
		e.nodes = append(e.nodes, en)
		refs[i] = cluster.NodeRef{ID: en.id, Base: en.srv.URL}
	}
	rc := cluster.RouterConfig{Nodes: refs, Metrics: e.reg}
	if cfg != nil {
		cfg(&rc)
	}
	router, err := cluster.NewRouter(rc)
	if err != nil {
		t.Fatal(err)
	}
	e.router = router
	return e
}

// owners resolves the member nodes owning one key under the current layout.
func (e *env) owners(workload string, label store.Label, run string) []*envNode {
	layout := e.router.Layout()
	shard := cluster.ShardOf(workload, label, run, layout.Shards)
	var out []*envNode
	for _, id := range layout.Owners[shard] {
		for _, en := range e.nodes {
			if en.id == id {
				out = append(out, en)
			}
		}
	}
	return out
}

// TestQuorumWriteReplication: an acked write is on every owner; re-pushing
// the identical blob reports dup; losing one of three replicas still acks
// (W=2), losing two rejects with the retryable sentinel.
func TestQuorumWriteReplication(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	blob := mustBlob(t, 1)

	entry, dup, err := e.router.PutBlob("redis", store.LabelNormal, "0", blob)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Fatal("first write reported dup")
	}
	if entry.Seq != 0 {
		t.Fatalf("cluster entry leaked a per-node Seq: %d", entry.Seq)
	}
	owners := e.owners("redis", store.LabelNormal, "0")
	if len(owners) != 3 {
		t.Fatalf("want 3 owners with 3 nodes, got %d", len(owners))
	}
	for _, en := range owners {
		got, ok := en.lookup(t, "redis", store.LabelNormal, "0")
		if !ok || got.ID != entry.ID {
			t.Fatalf("owner %s missing replicated entry (ok=%v)", en.id, ok)
		}
	}

	if _, dup, err = e.router.PutBlob("redis", store.LabelNormal, "0", blob); err != nil || !dup {
		t.Fatalf("identical re-push: dup=%v err=%v, want true/nil", dup, err)
	}

	// One replica down: the write still reaches quorum and is NOT a full dup
	// (the dead node can't confirm).
	e.nodes[1].kill(t)
	if _, _, err := e.router.PutBlob("redis", store.LabelNormal, "1", mustBlob(t, 2)); err != nil {
		t.Fatalf("write with 2/3 replicas up: %v", err)
	}

	// Two replicas down: below quorum, the typed sentinel surfaces so the
	// service can serve 503 + Retry-After.
	e.nodes[2].kill(t)
	_, _, err = e.router.PutBlob("redis", store.LabelNormal, "2", mustBlob(t, 3))
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("write with 1/3 replicas up: err=%v, want ErrUnavailable", err)
	}
}

// TestInvalidBundleRejectedTyped: one replica rejecting a malformed bundle
// rejects the write with the typed validation error (not a quorum failure),
// so the service's 400 mapping applies.
func TestInvalidBundleRejected(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	_, _, err := e.router.PutBlob("redis", store.LabelNormal, "0", []byte("not a profile"))
	if !errors.Is(err, store.ErrInvalidProfile) {
		t.Fatalf("garbage blob: err=%v, want ErrInvalidProfile", err)
	}
	if errors.Is(err, store.ErrUnavailable) {
		t.Fatal("validation failure misclassified as unavailability")
	}
}

// TestDivergenceResolutionAndReadRepair: when owner copies of a key diverge,
// every read resolves the same winner (majority blob, ties to the greatest
// ID) and lagging owners are repaired in place.
func TestDivergenceResolutionAndReadRepair(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	blob := mustBlob(t, 10)
	entry, _, err := e.router.PutBlob("redis", store.LabelNormal, "0", blob)
	if err != nil {
		t.Fatal(err)
	}

	// Scribble a different (valid) blob over one owner's copy, directly in
	// its store: a divergent replica, as a replayed partial write would leave.
	owners := e.owners("redis", store.LabelNormal, "0")
	lagging := owners[len(owners)-1]
	lagging.mu.Lock()
	divergent, _, err := lagging.st.PutBlob("redis", store.LabelNormal, "0", mustBlob(t, 11))
	lagging.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if divergent.ID == entry.ID {
		t.Fatal("test setup: divergent blob hashed identically")
	}

	got, ok := e.router.Lookup("redis", store.LabelNormal, "0")
	if !ok {
		t.Fatal("lookup lost the key")
	}
	if got.ID != entry.ID {
		t.Fatalf("winner %s, want majority copy %s", got.ID, entry.ID)
	}
	// The read repaired the divergent owner back to the winner.
	repaired, ok := lagging.lookup(t, "redis", store.LabelNormal, "0")
	if !ok || repaired.ID != entry.ID {
		t.Fatalf("lagging owner not repaired: ok=%v id=%s want %s", ok, repaired.ID, entry.ID)
	}
}

// TestReadRepairBackfillsMissingReplica: an owner that was down during
// ingest receives its copies on the first read after it returns.
func TestReadRepairBackfillsMissingReplica(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	victim := e.nodes[2]
	victim.kill(t)

	type key struct{ run string }
	var acked []key
	for i := 0; i < 4; i++ {
		run := fmt.Sprint(i)
		if _, _, err := e.router.PutBlob("redis", store.LabelNormal, run, mustBlob(t, int64(20+i))); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, key{run})
	}
	victim.restart(t, store.Options{}, nil)

	// Reads must serve immediately (repair is best-effort and synchronous
	// here, so one merged read converges the cluster).
	baselines := e.router.Baselines("redis")
	if len(baselines) != len(acked) {
		t.Fatalf("baselines: got %d, want %d", len(baselines), len(acked))
	}
	for _, k := range acked {
		if _, ok := victim.lookup(t, "redis", store.LabelNormal, k.run); !ok {
			t.Fatalf("victim missing run %s after read-repair", k.run)
		}
	}
}

// TestCorpusFoldMatchesLocal: the coordinator's cross-node corpus fold is
// byte-for-byte the corpus a single store would fold from the same sketches.
func TestCorpusFoldMatchesLocal(t *testing.T) {
	resolver := service.NewBugsResolver()
	e := newEnv(t, 3, resolver, nil)
	for i := 0; i < 5; i++ {
		if _, _, err := e.router.PutBlob("b1", store.LabelNormal, fmt.Sprint(i), mustBlob(t, int64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	baselines := e.router.Baselines("b1")
	ids := make([]string, 0, len(baselines))
	for _, b := range baselines {
		ids = append(ids, b.ID)
	}

	folded, err := e.router.Corpus("b1", ids)
	if err != nil {
		t.Fatal(err)
	}

	dbg, _, err := resolver.Resolve("b1")
	if err != nil {
		t.Fatal(err)
	}
	local := analysis.NewCorpus()
	for _, id := range ids {
		sk, err := e.router.GetSketch(id)
		if err != nil {
			t.Fatal(err)
		}
		local.AddSketch(sk, dbg)
	}
	if folded.Runs != local.Runs {
		t.Fatalf("folded corpus runs %d != local %d", folded.Runs, local.Runs)
	}
	if !reflect.DeepEqual(folded.Ranks, local.Ranks) {
		t.Fatalf("folded corpus ranks diverge from local fold\nfolded: %v\nlocal:  %v", folded.Ranks, local.Ranks)
	}

	// With one replica lost, the fold still completes from the survivors.
	e.nodes[0].kill(t)
	partial, err := e.router.Corpus("b1", ids)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Runs != local.Runs || !reflect.DeepEqual(partial.Ranks, local.Ranks) {
		t.Fatal("corpus fold changed after single-replica loss")
	}
}

// TestConcurrentReadRepairVsIngest runs merged reads (each of which may
// repair) against concurrent quorum writes; under -race this is the proof
// the router's caches, hints and layout snapshots are safely shared.
func TestConcurrentReadRepairVsIngest(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	// Seed divergence so reads have repairs to do.
	for i := 0; i < 4; i++ {
		run := fmt.Sprint(i)
		if _, _, err := e.router.PutBlob("redis", store.LabelNormal, run, mustBlob(t, int64(i))); err != nil {
			t.Fatal(err)
		}
		owners := e.owners("redis", store.LabelNormal, run)
		en := owners[i%len(owners)]
		en.mu.Lock()
		_, _, err := en.st.PutBlob("redis", store.LabelNormal, run, mustBlob(t, int64(100+i)))
		en.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				run := fmt.Sprintf("w%d-%d", g, i)
				if _, _, err := e.router.PutBlob("mysql", store.LabelCandidate, run, mustBlob(t, int64(g*10+i))); err != nil {
					errs <- fmt.Errorf("ingest %s: %w", run, err)
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if got := e.router.Baselines("redis"); len(got) != 4 {
					errs <- fmt.Errorf("read saw %d baselines, want 4", len(got))
				}
				e.router.Workloads()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything converged: every owner of every redis run holds the winner.
	for i := 0; i < 4; i++ {
		run := fmt.Sprint(i)
		winner, ok := e.router.Lookup("redis", store.LabelNormal, run)
		if !ok {
			t.Fatalf("run %s lost", run)
		}
		for _, en := range e.owners("redis", store.LabelNormal, run) {
			if got, ok := en.lookup(t, "redis", store.LabelNormal, run); !ok || got.ID != winner.ID {
				t.Errorf("owner %s of run %s: ok=%v id=%v, want %s", en.id, run, ok, got, winner.ID)
			}
		}
	}
}

// TestHealthDegradesNotFails: replica loss degrades /healthz (reads and
// quorum writes still flow) and only a shard below write quorum flips the
// cluster to unavailable. The per-shard replica gauge tracks both.
func TestHealthDegradesNotFails(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	if status, checks := e.router.HealthDetail(); status != "ok" {
		t.Fatalf("fresh cluster: status %q, checks %v", status, checks)
	}
	if err := e.router.Health(); err != nil {
		t.Fatal(err)
	}

	e.nodes[1].kill(t)
	status, checks := e.router.HealthDetail()
	if status != "degraded" {
		t.Fatalf("one node lost: status %q, want degraded (checks %v)", status, checks)
	}
	if err := e.router.Health(); err != nil {
		t.Fatalf("degraded cluster must not fail health: %v", err)
	}

	e.nodes[2].kill(t)
	status, _ = e.router.HealthDetail()
	if status != "unavailable" {
		t.Fatalf("two nodes lost: status %q, want unavailable", status)
	}
	if err := e.router.Health(); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("below-quorum health error = %v, want ErrUnavailable", err)
	}

	// The gauge is registered and carries per-shard series.
	rec := httptest.NewRecorder()
	e.reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, "vprof_replicas_healthy") {
		t.Fatal("metrics exposition missing vprof_replicas_healthy")
	}
}

// TestRebalancePopulatesNewNode: adding a member and rebalancing copies
// exactly its owned shards onto it; a second pass is an idempotent no-op.
func TestRebalancePopulatesNewNode(t *testing.T) {
	e := newEnv(t, 3, nil, nil)
	for i := 0; i < 8; i++ {
		if _, _, err := e.router.PutBlob("redis", store.LabelNormal, fmt.Sprint(i), mustBlob(t, int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	joiner := &envNode{id: "node-3", dir: filepath.Join(t.TempDir(), "store")}
	joiner.srv = httptest.NewServer(joiner)
	t.Cleanup(joiner.srv.Close)
	joiner.restart(t, store.Options{}, nil)
	t.Cleanup(func() { joiner.kill(t) })
	e.nodes = append(e.nodes, joiner)
	e.router.AddNode(cluster.NodeRef{ID: joiner.id, Base: joiner.srv.URL})

	rep, err := e.router.Rebalance(context.Background())
	if err != nil {
		t.Fatalf("rebalance: %v (%s)", err, rep)
	}
	if rep.CopiedEntries == 0 {
		t.Fatal("rebalance copied nothing onto the joiner")
	}
	// Every key the joiner now owns is present locally.
	for i := 0; i < 8; i++ {
		run := fmt.Sprint(i)
		owned := false
		for _, en := range e.owners("redis", store.LabelNormal, run) {
			if en.id == joiner.id {
				owned = true
			}
		}
		if !owned {
			continue
		}
		if _, ok := joiner.lookup(t, "redis", store.LabelNormal, run); !ok {
			t.Errorf("joiner missing owned run %s after rebalance", run)
		}
	}

	again, err := e.router.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.CopiedEntries != 0 {
		t.Fatalf("second rebalance copied %d entries, want 0 (idempotent)", again.CopiedEntries)
	}
}
