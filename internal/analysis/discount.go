package analysis

import (
	"context"
	"sort"

	"vprof/internal/debuginfo"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/stats"
)

// tickSeries collapses a variable's samples to one observation per alarm
// tick (virtual unwinding can record the same variable several times within
// one alarm at different stack depths; the variable has a single value at
// that moment).
func tickSeries(samples []sampler.Sample) []float64 {
	var out []float64
	var lastTick int64 = -1
	for _, s := range samples {
		if s.Tick == lastTick {
			continue
		}
		lastTick = s.Tick
		out = append(out, float64(s.Value))
	}
	return out
}

// dimSeries is one candidate dimension's pair of observation series, fed to
// the shared selection loop by both analysis front ends (raw profiles in
// discountVariable, sketches in discountVariableSketch).
type dimSeries struct {
	d    Dimension
	n, b []float64
}

// trimDims applies the paper's dimension restrictions: pointer values
// (addresses) carry no meaning across runs, so only the processing-cost
// dimension applies (§5.1); DimensionsValueOnly is the ablation switch.
func trimDims(p Params, isPointer bool, dims []dimSeries) []dimSeries {
	if isPointer {
		return dims[2:]
	}
	if p.DimensionsValueOnly {
		return dims[:1]
	}
	return dims
}

// selectDiscount runs discountOneDim over the candidate dimensions and
// returns the verdict with the minimum raw ratio (raw, not floored —
// dimension selection compares raw ratios, per the paper's Redis-8668
// walkthrough) plus the dimension that produced it.
func selectDiscount(p Params, dims []dimSeries) (float64, Dimension, bool) {
	best, bestRaw := 1.0, 2.0
	bestDim := DimNone
	tested := false
	for _, dm := range dims {
		r, raw, ok := discountOneDim(p, dm.n, dm.b)
		if !ok {
			continue
		}
		tested = true
		if raw < bestRaw || bestDim == DimNone {
			best, bestRaw = r, raw
			bestDim = dm.d
		}
	}
	if !tested {
		return 1, DimNone, false
	}
	return best, bestDim, true
}

// discountVariable computes the discount ratio for one variable across the
// paper's three dimensions, returning the minimum and the dimension that
// produced it.
func discountVariable(p Params, isPointer bool, normal, buggy []float64) (float64, Dimension, bool) {
	return selectDiscount(p, trimDims(p, isPointer, []dimSeries{
		{DimValue, normal, buggy},
		{DimDelta, stats.ChangeDeltas(normal), stats.ChangeDeltas(buggy)},
		{DimCost, stats.RunLengths(normal), stats.RunLengths(buggy)},
	}))
}

// discountOneDim computes the discount ratio for a single dimension,
// returning both the floored ratio and the raw ratio before the
// ValidDiscount floor (dimension selection compares raw ratios, per the
// paper's Redis-8668 walkthrough: value 0.12 vs cost 0, cost wins). ok is
// false when there is not enough information in either execution.
func discountOneDim(p Params, normal, buggy []float64) (ratio, raw float64, ok bool) {
	nN, nB := len(normal), len(buggy)
	switch {
	case nN == 0 && nB == 0:
		return 1, 1, false
	case nN < p.MinSamples && nB < p.MinSamples:
		// Too little data on both sides: no information.
		return 1, 1, false
	case nN < p.MinSamples || nB < p.MinSamples:
		// One side has data, the other (almost) none. If the
		// populated side is substantial this is itself anomalous —
		// the paper's MDEV-16289 case (0 normal vs 30+ buggy samples
		// of clust_index gave a zero discount).
		if nN >= p.OneSidedSamples || nB >= p.OneSidedSamples {
			return 0, 0, true
		}
		return p.DefaultDiscount, p.DefaultDiscount, true
	}

	res, err := stats.ADKSample(normal, buggy)
	if err != nil {
		// Degenerate: e.g. the variable holds the same constant in
		// both runs. Indistinguishable distributions.
		return p.DefaultDiscount, p.DefaultDiscount, true
	}
	if res.P >= p.PValue {
		// Cannot reject "same distribution" with confidence: apply the
		// default discount.
		return p.DefaultDiscount, p.DefaultDiscount, true
	}
	raw = 1 - stats.Hellinger(normal, buggy)
	ratio = raw
	if ratio < p.ValidDiscount {
		ratio = 0
	}
	return ratio, raw, true
}

// abnormalPCs identifies buggy samples that are anomalous along the given
// dimension and returns their PCs (with multiplicity), used by the
// classifier to localize basic blocks.
func abnormalPCs(dim Dimension, normal []float64, buggy []sampler.Sample) []int {
	series := tickSeries(buggy)
	marks := abnormalPositions(dim, normal, series)
	if len(marks) == 0 {
		return nil
	}
	// Map marked tick positions back to sample PCs: walk buggy samples,
	// tracking the per-tick index.
	var out []int
	pos := -1
	var lastTick int64 = -1
	for _, s := range buggy {
		if s.Tick != lastTick {
			lastTick = s.Tick
			pos++
		}
		if marks[pos] {
			out = append(out, int(s.PC))
		}
	}
	return out
}

// abnormalPositions marks the indices of buggy per-tick observations that
// fall outside what the normal execution exhibited.
func abnormalPositions(dim Dimension, normal, buggy []float64) map[int]bool {
	marks := map[int]bool{}
	switch dim {
	case DimValue, DimNone:
		lo, hi, ok := stats.MinMax(normal)
		for i, v := range buggy {
			if !ok || v < lo || v > hi {
				marks[i] = true
			}
		}
	case DimDelta:
		lo, hi, ok := stats.MinMax(stats.ChangeDeltas(normal))
		last := 0 // index of the last distinct value
		for i := 1; i < len(buggy); i++ {
			if buggy[i] == buggy[last] {
				continue
			}
			d := buggy[i] - buggy[last]
			last = i
			if !ok || d < lo || d > hi {
				marks[i] = true
			}
		}
	case DimCost:
		_, maxRun, ok := stats.MinMax(stats.RunLengths(normal))
		run := 1
		for i := 1; i < len(buggy); i++ {
			if buggy[i] == buggy[i-1] {
				run++
			} else {
				run = 1
			}
			if !ok || float64(run) > maxRun {
				marks[i] = true
			}
		}
		if len(buggy) == 1 && !ok {
			marks[0] = true
		}
	}
	return marks
}

// analyzeVariables runs the variable-discounter over every monitored
// variable appearing in either profile, returning reports keyed by
// "func\x00name". Variables are independent, so the per-variable statistics
// fan out over the worker pool; each index writes only its own report, and
// the merge below walks the sorted key list, so the result is identical to
// the sequential computation regardless of the worker count. Cancellation
// drains the pool and surfaces ctx.Err().
func analyzeVariables(ctx context.Context, p Params, in Input) (map[string]*VariableReport, error) {
	normal, buggy := in.Normal[0], in.Buggy[0]
	keys := map[string]sampler.LayoutEntry{}
	for _, l := range normal.Layout {
		keys[l.Func+"\x00"+l.Name] = l
	}
	for _, l := range buggy.Layout {
		keys[l.Func+"\x00"+l.Name] = l
	}
	names := make([]string, 0, len(keys))
	for key := range keys {
		names = append(names, key)
	}
	sort.Strings(names)

	// Group each profile's samples by variable once, instead of scanning
	// the whole sample array per variable (VarSamples is O(samples) per
	// call, which made the discounter quadratic in practice).
	nByVar := samplesByVar(normal)
	bByVar := samplesByVar(buggy)

	reports, err := parallel.MapCtx(ctx, parallel.Workers(p.Workers), len(names), func(i int) *VariableReport {
		key := names[i]
		l := keys[key]
		nSeries := tickSeries(nByVar[key])
		bSamples := bByVar[key]
		bSeries := tickSeries(bSamples)
		vr := &VariableReport{
			Func:        l.Func,
			Name:        l.Name,
			IsPointer:   l.IsPointer,
			NormalCount: len(nSeries),
			BuggyCount:  len(bSeries),
		}
		if e := in.Schema.Lookup(l.Func, l.Name); e != nil {
			vr.Tags = e.Tags
		}
		vr.Discount, vr.Dimension, vr.Tested = discountVariable(p, l.IsPointer, nSeries, bSeries)
		_, vr.MaxRunNormal, _ = stats.MinMax(stats.RunLengths(nSeries))
		buggyRuns := stats.RunLengths(bSeries)
		_, vr.MaxRunBuggy, _ = stats.MinMax(buggyRuns)
		vr.RunsBuggy = len(buggyRuns)
		if vr.Tested && vr.Discount < p.DefaultDiscount {
			vr.AbnormalPCs = abnormalPCs(vr.Dimension, nSeries, bSamples)
		}
		return vr
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*VariableReport, len(names))
	for i, key := range names {
		out[key] = reports[i]
	}
	return out, nil
}

// samplesByVar groups a profile's samples by "func\x00name", preserving
// recording order. Matching VarSamples, duplicate layout entries for the
// same variable resolve to the first layout index.
func samplesByVar(pr *sampler.Profile) map[string][]sampler.Sample {
	first := make(map[string]int32, len(pr.Layout))
	for i, l := range pr.Layout {
		key := l.Func + "\x00" + l.Name
		if _, ok := first[key]; !ok {
			first[key] = int32(i)
		}
	}
	counts := make([]int, len(pr.Layout))
	for _, s := range pr.Samples {
		if s.Layout >= 0 && int(s.Layout) < len(counts) {
			counts[s.Layout]++
		}
	}
	byLayout := make([][]sampler.Sample, len(pr.Layout))
	for i, c := range counts {
		if c > 0 {
			byLayout[i] = make([]sampler.Sample, 0, c)
		}
	}
	for _, s := range pr.Samples {
		if s.Layout >= 0 && int(s.Layout) < len(byLayout) {
			byLayout[s.Layout] = append(byLayout[s.Layout], s)
		}
	}
	out := make(map[string][]sampler.Sample, len(first))
	for key, i := range first {
		out[key] = byLayout[i]
	}
	return out
}

// attributeVariables maps variable reports to functions: locals to their
// declaring function; globals to every function containing a PC at which the
// global was sampled in the buggy profile (paper §5.1).
func attributeVariables(vars map[string]*VariableReport, buggy *sampler.Profile, info *debuginfo.Info) map[string][]*VariableReport {
	out := map[string][]*VariableReport{}
	// Globals: find the functions where each global's samples occurred.
	globalFuncs := map[string]map[string]bool{}
	layoutKey := make([]string, len(buggy.Layout))
	for i, l := range buggy.Layout {
		layoutKey[i] = l.Func + "\x00" + l.Name
	}
	for _, s := range buggy.Samples {
		l := buggy.Layout[s.Layout]
		if l.Func != debuginfo.GlobalScope {
			continue
		}
		fn := info.FuncAt(int(s.PC))
		if fn == nil {
			continue
		}
		key := layoutKey[s.Layout]
		if globalFuncs[key] == nil {
			globalFuncs[key] = map[string]bool{}
		}
		globalFuncs[key][fn.Name] = true
	}
	for key, vr := range vars {
		if vr.Func == debuginfo.GlobalScope {
			for fn := range globalFuncs[key] {
				out[fn] = append(out[fn], vr)
			}
			continue
		}
		out[vr.Func] = append(out[vr.Func], vr)
	}
	for _, list := range out {
		sortAttributed(list)
	}
	return out
}

// sortAttributed is the deterministic per-function ordering of attributed
// variables shared by both analysis front ends: most anomalous first; on
// ties, tagged variables (more diagnostic signal) and locals before
// globals, then by name.
func sortAttributed(list []*VariableReport) {
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.Discount != b.Discount {
			return a.Discount < b.Discount
		}
		aTag, bTag := a.Tags != schema.TagNone, b.Tags != schema.TagNone
		if aTag != bTag {
			return aTag
		}
		aLocal, bLocal := a.Func != debuginfo.GlobalScope, b.Func != debuginfo.GlobalScope
		if aLocal != bLocal {
			return aLocal
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Name < b.Name
	})
}
