package analysis

import (
	"context"
	"sort"

	"vprof/internal/debuginfo"
	"vprof/internal/parallel"
	"vprof/internal/sampler"
	"vprof/internal/stats"
)

// pcCostApp returns the gprof-view PC cost per *application* function:
// library-function PCs are excluded (gprof records no samples outside the
// profiled executable, and vProf inherits this) as are synthetic functions.
func pcCostApp(p *sampler.Profile, info *debuginfo.Info) map[string]float64 {
	out := map[string]float64{}
	for pc, n := range p.Hist {
		if n == 0 {
			continue
		}
		fn := info.FuncAt(pc)
		if fn == nil || fn.Library || isSynthetic(fn.Name) {
			continue
		}
		out[fn.Name] += float64(n * p.Interval)
	}
	return out
}

func isSynthetic(name string) bool {
	return len(name) >= 2 && name[0] == '_' && name[1] == '_'
}

// histDiscounter computes discount ratios by cross-comparing a function's
// cost rank between every (buggy, normal) profile pair (paper §5.1): with n
// buggy and m normal profiles, r = h/c where h counts comparisons in which
// the function ranks higher (more costly) in the normal profile, and c is
// the number of comparisons in which the function appeared at all.
// Per-profile rankings and the n×m per-function comparisons are independent,
// so both fan out over the worker pool; the ratios are exact integer counts,
// making the result identical for any worker count.
func histDiscounter(ctx context.Context, p Params, normal, buggy []*sampler.Profile, info *debuginfo.Info) (map[string]float64, error) {
	workers := parallel.Workers(p.Workers)
	normalRanks, err := parallel.MapCtx(ctx, workers, len(normal), func(j int) map[string]int {
		return stats.Ranks(pcCostApp(normal[j], info))
	})
	if err != nil {
		return nil, err
	}
	buggyRanks, err := parallel.MapCtx(ctx, workers, len(buggy), func(i int) map[string]int {
		return stats.Ranks(pcCostApp(buggy[i], info))
	})
	if err != nil {
		return nil, err
	}

	funcs := map[string]bool{}
	for _, r := range normalRanks {
		for f := range r {
			funcs[f] = true
		}
	}
	for _, r := range buggyRanks {
		for f := range r {
			funcs[f] = true
		}
	}
	names := make([]string, 0, len(funcs))
	for f := range funcs {
		names = append(names, f)
	}
	sort.Strings(names)

	type verdict struct {
		r  float64
		ok bool
	}
	verdicts, err := parallel.MapCtx(ctx, workers, len(names), func(i int) verdict {
		f := names[i]
		h, c := 0, 0
		for _, br := range buggyRanks {
			bRank, bOK := br[f]
			for _, nr := range normalRanks {
				nRank, nOK := nr[f]
				if !bOK && !nOK {
					continue
				}
				c++
				switch {
				case !bOK:
					// Only seen in normal: costlier there.
					h++
				case !nOK:
					// Only seen in buggy: elevated by the bug.
				case nRank < bRank:
					// Smaller rank number = more costly.
					h++
				}
			}
		}
		if c == 0 {
			return verdict{}
		}
		r := float64(h) / float64(c)
		if r < p.ValidDiscount {
			r = 0
		}
		return verdict{r, true}
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]float64, len(names))
	for i, f := range names {
		if verdicts[i].ok {
			out[f] = verdicts[i].r
		}
	}
	return out, nil
}
