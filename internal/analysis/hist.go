package analysis

import (
	"vprof/internal/debuginfo"
	"vprof/internal/sampler"
	"vprof/internal/stats"
)

// pcCostApp returns the gprof-view PC cost per *application* function:
// library-function PCs are excluded (gprof records no samples outside the
// profiled executable, and vProf inherits this) as are synthetic functions.
func pcCostApp(p *sampler.Profile, info *debuginfo.Info) map[string]float64 {
	out := map[string]float64{}
	for pc, n := range p.Hist {
		if n == 0 {
			continue
		}
		fn := info.FuncAt(pc)
		if fn == nil || fn.Library || isSynthetic(fn.Name) {
			continue
		}
		out[fn.Name] += float64(n * p.Interval)
	}
	return out
}

func isSynthetic(name string) bool {
	return len(name) >= 2 && name[0] == '_' && name[1] == '_'
}

// histDiscounter computes discount ratios by cross-comparing a function's
// cost rank between every (buggy, normal) profile pair (paper §5.1): with n
// buggy and m normal profiles, r = h/c where h counts comparisons in which
// the function ranks higher (more costly) in the normal profile, and c is
// the number of comparisons in which the function appeared at all.
func histDiscounter(p Params, normal, buggy []*sampler.Profile, info *debuginfo.Info) map[string]float64 {
	normalRanks := make([]map[string]int, len(normal))
	for j, np := range normal {
		normalRanks[j] = stats.Ranks(pcCostApp(np, info))
	}
	buggyRanks := make([]map[string]int, len(buggy))
	for i, bp := range buggy {
		buggyRanks[i] = stats.Ranks(pcCostApp(bp, info))
	}

	funcs := map[string]bool{}
	for _, r := range normalRanks {
		for f := range r {
			funcs[f] = true
		}
	}
	for _, r := range buggyRanks {
		for f := range r {
			funcs[f] = true
		}
	}

	out := map[string]float64{}
	for f := range funcs {
		h, c := 0, 0
		for _, br := range buggyRanks {
			bRank, bOK := br[f]
			for _, nr := range normalRanks {
				nRank, nOK := nr[f]
				if !bOK && !nOK {
					continue
				}
				c++
				switch {
				case !bOK:
					// Only seen in normal: costlier there.
					h++
				case !nOK:
					// Only seen in buggy: elevated by the bug.
				case nRank < bRank:
					// Smaller rank number = more costly.
					h++
				}
			}
		}
		if c == 0 {
			continue
		}
		r := float64(h) / float64(c)
		if r < p.ValidDiscount {
			r = 0
		}
		out[f] = r
	}
	return out
}
