package analysis_test

import (
	"math/rand"
	"reflect"
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
	"vprof/internal/stats"
)

func sketchesOf(profiles []*sampler.Profile) []*sketch.Profile {
	out := make([]*sketch.Profile, len(profiles))
	for i, p := range profiles {
		out[i] = sketch.FromProfile(p)
	}
	return out
}

// TestSketchAnalysisMatchesFull is the determinism golden for the sketch
// path: on the reproduced-issue workloads every sampled value is a small
// integer, so the sketch buckets are exact and AnalyzeSketchesContext must
// reproduce AnalyzeContext bit for bit — same ranking, same calibrated
// costs, same per-variable verdicts — with only the PC-trail-derived fields
// (AbnormalPCs, Blocks) absent.
func TestSketchAnalysisMatchesFull(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	normal := tb.profileRuns(t, 3, 40)
	buggy := tb.profileRuns(t, 3, 90)
	p := analysis.DefaultParams()

	full, err := analysis.Analyze(analysis.Input{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
		Normal: normal,
		Buggy:  buggy,
	}, p)
	if err != nil {
		t.Fatal(err)
	}

	nsk, bsk := sketchesOf(normal), sketchesOf(buggy)
	sk, err := analysis.AnalyzeSketches(analysis.SketchInput{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
		Normal: nsk[0],
		Corpus: analysis.CorpusOfSketches(nsk, tb.prog.Debug),
		Buggy:  bsk,
	}, p)
	if err != nil {
		t.Fatal(err)
	}

	if len(sk.Funcs) != len(full.Funcs) {
		t.Fatalf("sketch report has %d funcs, full has %d", len(sk.Funcs), len(full.Funcs))
	}
	for i := range full.Funcs {
		f, s := &full.Funcs[i], &sk.Funcs[i]
		if f.Name != s.Name || f.Rank != s.Rank {
			t.Fatalf("rank %d: full %q vs sketch %q", i+1, f.Name, s.Name)
		}
		if f.PCCost != s.PCCost || f.VarCost != s.VarCost || f.RawCost != s.RawCost {
			t.Errorf("%s: costs differ: full (%v,%v,%v) sketch (%v,%v,%v)",
				f.Name, f.PCCost, f.VarCost, f.RawCost, s.PCCost, s.VarCost, s.RawCost)
		}
		if f.Discount != s.Discount || f.DiscountSource != s.DiscountSource || f.Calibrated != s.Calibrated {
			t.Errorf("%s: discount differs: full (%v,%s,%v) sketch (%v,%s,%v)",
				f.Name, f.Discount, f.DiscountSource, f.Calibrated, s.Discount, s.DiscountSource, s.Calibrated)
		}
		if f.Pattern != s.Pattern {
			t.Errorf("%s: pattern %v vs %v", f.Name, f.Pattern, s.Pattern)
		}
		switch {
		case (f.TopVariable == nil) != (s.TopVariable == nil):
			t.Errorf("%s: TopVariable presence differs", f.Name)
		case f.TopVariable != nil:
			ft, st := f.TopVariable, s.TopVariable
			if ft.Func != st.Func || ft.Name != st.Name || ft.Discount != st.Discount || ft.Dimension != st.Dimension {
				t.Errorf("%s: top variable differs: %s.%s(%v,%v) vs %s.%s(%v,%v)", f.Name,
					ft.Func, ft.Name, ft.Discount, ft.Dimension, st.Func, st.Name, st.Discount, st.Dimension)
			}
		}
	}

	if len(sk.Variables) != len(full.Variables) {
		t.Fatalf("sketch analyzed %d variables, full %d", len(sk.Variables), len(full.Variables))
	}
	for key, fv := range full.Variables {
		sv := sk.Variables[key]
		if sv == nil {
			t.Fatalf("variable %q missing from sketch report", key)
		}
		if fv.Discount != sv.Discount || fv.Dimension != sv.Dimension || fv.Tested != sv.Tested {
			t.Errorf("%q: verdict differs: full (%v,%v,%v) sketch (%v,%v,%v)", key,
				fv.Discount, fv.Dimension, fv.Tested, sv.Discount, sv.Dimension, sv.Tested)
		}
		if fv.NormalCount != sv.NormalCount || fv.BuggyCount != sv.BuggyCount {
			t.Errorf("%q: counts differ: (%d,%d) vs (%d,%d)", key,
				fv.NormalCount, fv.BuggyCount, sv.NormalCount, sv.BuggyCount)
		}
		if fv.MaxRunNormal != sv.MaxRunNormal || fv.MaxRunBuggy != sv.MaxRunBuggy || fv.RunsBuggy != sv.RunsBuggy {
			t.Errorf("%q: run stats differ: (%v,%v,%d) vs (%v,%v,%d)", key,
				fv.MaxRunNormal, fv.MaxRunBuggy, fv.RunsBuggy, sv.MaxRunNormal, sv.MaxRunBuggy, sv.RunsBuggy)
		}
		if fv.Tags != sv.Tags || fv.IsPointer != sv.IsPointer {
			t.Errorf("%q: tags/pointer differ", key)
		}
	}
}

// TestCorpusIncrementalMatchesBatch: folding normal runs into a corpus one
// at a time — or shard-wise with Merge — yields the same hist-discounter
// verdicts as the batch AnalyzeContext computation.
func TestCorpusIncrementalMatchesBatch(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	normal := tb.profileRuns(t, 5, 40)
	nsk := sketchesOf(normal)

	batch := analysis.CorpusOfSketches(nsk, tb.prog.Debug)

	inc := analysis.NewCorpus()
	for _, s := range nsk {
		inc.AddSketch(s, tb.prog.Debug)
	}
	if !reflect.DeepEqual(batch, inc) {
		t.Fatalf("incremental corpus != batch:\n%+v\n%+v", batch, inc)
	}

	shardA := analysis.CorpusOfSketches(nsk[:2], tb.prog.Debug)
	shardB := analysis.CorpusOfSketches(nsk[2:], tb.prog.Debug)
	shardA.Merge(shardB)
	if !reflect.DeepEqual(batch, shardA) {
		t.Fatalf("merged shard corpora != batch:\n%+v\n%+v", batch, shardA)
	}

	clone := batch.Clone()
	clone.AddRanks(map[string]int{"bogus": 1})
	if reflect.DeepEqual(batch, clone) {
		t.Fatal("Clone aliases the original")
	}
}

// TestSketchFoldPreservesUnits: the sketch's per-PC unit counts reproduce
// FuncValueSampleUnits exactly, so variable-based raw costs are identical in
// sketch mode.
func TestSketchFoldPreservesUnits(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	prof := tb.profileRuns(t, 1, 90)[0]
	sk := sketch.FromProfile(prof)

	want := prof.FuncValueSampleUnits(tb.prog.Debug)
	got := map[string]int64{}
	for pc, n := range sk.UnitsByPC {
		if fn := tb.prog.Debug.FuncAt(int(pc)); fn != nil {
			got[fn.Name] += n
		}
	}
	for fn, w := range want {
		if got[fn] != w {
			t.Errorf("%s: sketch units %d, profile units %d", fn, got[fn], w)
		}
	}
	for fn, g := range got {
		if want[fn] == 0 && g != 0 {
			t.Errorf("%s: sketch has %d units, profile none", fn, g)
		}
	}
}

// TestSketchRanksMatchProfile: the per-run cost ranking derived from a
// sketch's sparse PC histogram matches the full profile's.
func TestSketchRanksMatchProfile(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	for _, inputs := range [][]int64{{40}, {90}} {
		prof := tb.profileRuns(t, 1, inputs...)[0]
		sk := sketch.FromProfile(prof)
		c := analysis.NewCorpus()
		c.AddSketch(sk, tb.prog.Debug)

		full, err := analysis.Analyze(analysis.Input{
			Debug:  tb.prog.Debug,
			Schema: tb.sch,
			Normal: []*sampler.Profile{prof},
			Buggy:  []*sampler.Profile{prof},
		}, analysis.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ranks := stats.Ranks(pcCostOf(full))
		for f, r := range ranks {
			lst := c.Ranks[f]
			if len(lst) != 1 || lst[0] != r {
				t.Errorf("inputs %v: %s rank %v in corpus, want [%d]", inputs, f, lst, r)
			}
		}
	}
}

// pcCostOf recovers the PC-cost map from a report's rows.
func pcCostOf(rep *analysis.Report) map[string]float64 {
	out := map[string]float64{}
	for i := range rep.Funcs {
		if rep.Funcs[i].PCCost > 0 {
			out[rep.Funcs[i].Name] = rep.Funcs[i].PCCost
		}
	}
	return out
}

// TestAnalyzeSketchesValidation mirrors AnalyzeContext's input checks.
func TestAnalyzeSketchesValidation(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	sk := sketch.FromProfile(tb.profileRuns(t, 1, 40)[0])
	if _, err := analysis.AnalyzeSketches(analysis.SketchInput{
		Debug: tb.prog.Debug, Schema: tb.sch, Normal: sk,
	}, analysis.DefaultParams()); err != analysis.ErrNoProfiles {
		t.Errorf("no buggy sketches: err = %v, want ErrNoProfiles", err)
	}
	if _, err := analysis.AnalyzeSketches(analysis.SketchInput{
		Debug: tb.prog.Debug, Schema: tb.sch, Buggy: []*sketch.Profile{sk},
	}, analysis.DefaultParams()); err != analysis.ErrNoProfiles {
		t.Errorf("no normal sketch: err = %v, want ErrNoProfiles", err)
	}
}

// TestSketchAnalysisDeterministicAcrossWorkers: the sketch path inherits
// the full path's worker-count independence.
func TestSketchAnalysisDeterministicAcrossWorkers(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	nsk := sketchesOf(tb.profileRuns(t, 3, 40))
	bsk := sketchesOf(tb.profileRuns(t, 3, 90))
	in := analysis.SketchInput{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
		Normal: nsk[0],
		Corpus: analysis.CorpusOfSketches(nsk, tb.prog.Debug),
		Buggy:  bsk,
	}
	var base string
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		p := analysis.DefaultParams()
		p.Workers = 1 + rng.Intn(8)
		rep, err := analysis.AnalyzeSketches(in, p)
		if err != nil {
			t.Fatal(err)
		}
		r := rep.Render(0)
		if trial == 0 {
			base = r
		} else if r != base {
			t.Fatalf("workers=%d renders differently:\n%s\nvs\n%s", p.Workers, r, base)
		}
	}
}
