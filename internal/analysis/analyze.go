package analysis

import (
	"context"
	"errors"
	"sort"

	"vprof/internal/debuginfo"
	"vprof/internal/parallel"
	"vprof/internal/schema"
)

// ErrNoProfiles is returned when Analyze lacks a normal or buggy profile.
var ErrNoProfiles = errors.New("analysis: need at least one normal and one buggy profile")

// Analyze runs the complete post-profiling analysis and returns the
// calibrated function ranking with bug-pattern annotations.
func Analyze(in Input, p Params) (*Report, error) {
	return AnalyzeContext(context.Background(), in, p)
}

// AnalyzeContext is Analyze with cooperative cancellation: every fan-out
// stage (variable discounter, hist discounter, per-function attribution,
// classification) checks ctx and drains its workers once it is canceled,
// returning ctx.Err(). With a never-canceled context the computation — and
// its output, byte for byte — is identical to Analyze.
func AnalyzeContext(ctx context.Context, in Input, p Params) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(in.Normal) == 0 || len(in.Buggy) == 0 {
		return nil, ErrNoProfiles
	}
	buggy := in.Buggy[0]

	// Variable-discounter over run 0 of each side.
	vars, err := analyzeVariables(ctx, p, in)
	if err != nil {
		return nil, err
	}
	attributed := attributeVariables(vars, buggy, in.Debug)

	// Raw costs from the buggy profile: max of PC-sample cost and
	// variable-based cost (paper §5.1).
	pcCost := pcCostApp(buggy, in.Debug)
	varCost := map[string]float64{}
	if !p.DisableVarCost {
		for fn, units := range buggy.FuncValueSampleUnits(in.Debug) {
			f := in.Debug.FuncNamed(fn)
			if f == nil || f.Library || isSynthetic(fn) {
				continue
			}
			varCost[fn] = float64(units * buggy.Interval)
		}
	}

	// Hist-discounter for functions with no variable verdict.
	var hist map[string]float64
	if !p.DisableHistDiscounter {
		hist, err = histDiscounter(ctx, p, in.Normal, in.Buggy, in.Debug)
		if err != nil {
			return nil, err
		}
	}

	return assemble(ctx, p, in.Debug, costInputs{
		vars:       vars,
		attributed: attributed,
		pcCost:     pcCost,
		varCost:    varCost,
		hist:       hist,
	})
}

// costInputs bundles the per-side evidence both analysis front ends — full
// profiles (AnalyzeContext) and sketches (AnalyzeSketchesContext) — hand to
// the shared ranking back end.
type costInputs struct {
	vars       map[string]*VariableReport
	attributed map[string][]*VariableReport
	pcCost     map[string]float64
	varCost    map[string]float64
	// hist is nil when the hist-discounter is disabled.
	hist map[string]float64
}

// assemble is the shared back half of the analysis: build the function
// universe, attribute costs and discounts per function, sort into the
// calibrated ranking, and classify bug patterns. Identical for any worker
// count.
func assemble(ctx context.Context, p Params, info *debuginfo.Info, in costInputs) (*Report, error) {
	pcCost, varCost, hist := in.pcCost, in.varCost, in.hist
	attributed := in.attributed
	universe := make([]string, 0, len(pcCost)+len(varCost))
	seen := map[string]bool{}
	for fn := range pcCost {
		seen[fn] = true
		universe = append(universe, fn)
	}
	for fn := range varCost {
		if !seen[fn] {
			universe = append(universe, fn)
		}
	}
	sort.Strings(universe)

	// Per-function cost attribution fans out over the worker pool; every
	// input (cost maps, attributed variables, hist ratios) is read-only
	// from here on and each index fills only its own row, so the rows —
	// and after the deterministic sort, the whole ranking — are identical
	// for any worker count.
	workers := parallel.Workers(p.Workers)
	report := &Report{Params: p, Variables: in.vars}
	funcs, err := parallel.MapCtx(ctx, workers, len(universe), func(i int) FuncReport {
		fn := universe[i]
		fr := FuncReport{
			Name:    fn,
			PCCost:  pcCost[fn],
			VarCost: varCost[fn],
		}
		fr.RawCost = fr.PCCost
		if fr.VarCost > fr.RawCost {
			fr.RawCost = fr.VarCost
		}

		// Function discount: the minimum discount among its tested
		// variables; hist-discounter only when no variable verdict
		// exists (paper §5.1). Attributed variables are pre-sorted, so
		// ties resolve deterministically (and in favor of tagged,
		// locally-declared variables, which carry more diagnostic
		// signal for the classifier).
		for _, vr := range attributed[fn] {
			if !vr.Tested {
				continue
			}
			if fr.TopVariable == nil || vr.Discount < fr.TopVariable.Discount {
				fr.TopVariable = vr
			}
		}
		switch {
		case fr.TopVariable != nil:
			fr.Discount = fr.TopVariable.Discount
			fr.DiscountSource = "variable"
		case hist != nil:
			if r, ok := hist[fn]; ok {
				fr.Discount = r
				fr.DiscountSource = "hist"
			} else {
				fr.DiscountSource = "none"
			}
		default:
			fr.DiscountSource = "none"
		}
		fr.Calibrated = fr.RawCost * (1 - fr.Discount)
		return fr
	})
	if err != nil {
		return nil, err
	}
	report.Funcs = funcs

	sort.Slice(report.Funcs, func(i, j int) bool {
		a, b := &report.Funcs[i], &report.Funcs[j]
		if a.Calibrated != b.Calibrated {
			return a.Calibrated > b.Calibrated
		}
		if a.RawCost != b.RawCost {
			return a.RawCost > b.RawCost
		}
		return a.Name < b.Name
	})
	for i := range report.Funcs {
		report.Funcs[i].Rank = i + 1
	}

	// Bug-pattern inference and block localization for every ranked
	// function (the paper reports them for top-ranked functions; having
	// them everywhere costs nothing and helps the harness). Rows are
	// disjoint, so this fans out too.
	if err := parallel.ForEachCtx(ctx, workers, len(report.Funcs), func(i int) {
		fr := &report.Funcs[i]
		var match *VariableReport
		fr.Pattern, match = classify(p, attributed[fr.Name], fr.TopVariable, fr.Rank == 1)
		if match != nil {
			fr.TopVariable = match
		}
		fr.Blocks = localizeBlocks(info, fr)
	}); err != nil {
		return nil, err
	}
	return report, nil
}

// localizeBlocks maps the top variable's abnormal sample PCs to basic
// blocks, most-hit first.
func localizeBlocks(info *debuginfo.Info, fr *FuncReport) []BlockHit {
	if fr.TopVariable == nil || len(fr.TopVariable.AbnormalPCs) == 0 {
		return nil
	}
	counts := map[string]*BlockHit{}
	for _, pc := range fr.TopVariable.AbnormalPCs {
		fn, blk := info.BlockAt(pc)
		if fn == nil || blk == nil || fn.Name != fr.Name {
			continue
		}
		if h, ok := counts[blk.Label]; ok {
			h.Count++
			continue
		}
		counts[blk.Label] = &BlockHit{Block: blk.Label, Line: info.LineAt(pc), Count: 1}
	}
	out := make([]BlockHit, 0, len(counts))
	for _, h := range counts {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// classify applies the paper's root-cause pattern rules (§5.2) in order,
// checking each rule against every anomalous variable attributed to the
// function. It returns the inferred pattern and the variable that matched
// (nil when no rule fired).
func classify(p Params, vars []*VariableReport, topVar *VariableReport, topRanked bool) (Pattern, *VariableReport) {
	var anomalous []*VariableReport
	for _, v := range vars {
		if v.Tested && v.Discount < p.DefaultDiscount {
			anomalous = append(anomalous, v)
		}
	}
	// Rule 1: a loop/conditional variable stays the same *abnormally*
	// long — a stuck streak well beyond anything the normal execution
	// exhibited -> Missing Constraint. The streak is the processing-cost
	// evidence even when another dimension produced the minimum ratio (a
	// single stuck value is one giant run-length observation, which
	// distribution tests dilute).
	for _, v := range anomalous {
		if (v.Tags.Has(schema.TagLoop) || v.Tags.Has(schema.TagCond)) && v.Stuck(p) {
			return PatternMissingConstraint, v
		}
	}
	// Rule 2: a loop induction variable has abnormal values or deltas ->
	// Scalability.
	for _, v := range anomalous {
		if v.Tags.Has(schema.TagLoop) && (v.Dimension == DimValue || v.Dimension == DimDelta) {
			return PatternScalability, v
		}
	}
	// Rule 3: a conditional-expression variable is abnormal -> Wrong
	// Constraint.
	for _, v := range anomalous {
		if v.Tags.Has(schema.TagCond) {
			return PatternWrongConstraint, v
		}
	}
	// Rule 4: the most costly function looks normal and only
	// non-basic-type (pointer) variables were sampled: without basic
	// values there is not enough information for the other patterns ->
	// Scalability.
	if topRanked && topVar != nil && topVar.IsPointer &&
		topVar.Dimension == DimCost && topVar.Discount >= p.DefaultDiscount {
		return PatternScalability, topVar
	}
	return PatternNC, nil
}
