package analysis

import (
	"fmt"
	"strings"
)

// Render formats the report as the annotated profile vProf prints (paper
// Figure 2's output stage): rank, calibrated cost, function, discount and
// its source, the most anomalous variable, the suspicious basic block, and
// the inferred bug pattern. topN <= 0 renders every function.
func (r *Report) Render(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-12s %-34s %-9s %-8s %-28s %-10s %s\n",
		"rank", "adj-cost", "function", "discount", "source", "variable", "block", "pattern")
	n := len(r.Funcs)
	if topN > 0 && topN < n {
		n = topN
	}
	for _, fr := range r.Funcs[:n] {
		varName := "-"
		if fr.TopVariable != nil {
			varName = fr.TopVariable.Name
			if fr.TopVariable.Func != fr.Name {
				varName = fr.TopVariable.Func + "." + fr.TopVariable.Name
			}
			varName += fmt.Sprintf(" [%s]", fr.TopVariable.Dimension)
		}
		block := "-"
		if len(fr.Blocks) > 0 {
			block = fmt.Sprintf("%s:%d", fr.Blocks[0].Block, fr.Blocks[0].Line)
		}
		pattern := "-"
		if fr.Pattern != PatternNC {
			pattern = fr.Pattern.String()
		}
		fmt.Fprintf(&b, "%-4d %-12.0f %-34s %-9.2f %-8s %-28s %-10s %s\n",
			fr.Rank, fr.Calibrated, fr.Name, fr.Discount, fr.DiscountSource, varName, block, pattern)
	}
	return b.String()
}
