package analysis_test

import (
	"sync"
	"testing"

	"vprof/internal/analysis"
)

// TestConcurrentAnalyzeSharedInput runs several parallel-discounter analyses
// over one shared Input — same Schema pointer, same profiles — from multiple
// goroutines at once. Under -race this exercises the lazy Schema.Lookup
// index, the pooled stats scratch buffers, and the worker-pool fan-out; all
// reports must render identically.
func TestConcurrentAnalyzeSharedInput(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	in := analysis.Input{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
		Normal: tb.profileRuns(t, 3, 40),
		Buggy:  tb.profileRuns(t, 3, 90),
	}
	p := analysis.DefaultParams()
	p.Workers = 4

	const goroutines = 6
	renders := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep, err := analysis.Analyze(in, p)
			if err != nil {
				errs[g] = err
				return
			}
			renders[g] = rep.Render(0)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Sequential reference with Workers=1 — concurrency and pool size must
	// not change a single byte.
	seq := p
	seq.Workers = 1
	ref, err := analysis.Analyze(in, seq)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render(0)
	for g, got := range renders {
		if got != want {
			t.Errorf("goroutine %d render differs from sequential reference:\n--- sequential ---\n%s\n--- goroutine %d ---\n%s", g, want, g, got)
		}
	}
}
