package analysis_test

import (
	"strings"
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/stats"
	"vprof/internal/vm"
)

// recoverySrc models the paper's Figure 1 (MDEV-21826): recv_sys_init
// mis-sizes recv_n_pool_free_frames; recv_group_scan_log_recs derives a zero
// available_mem from it; recv_scan_log_recs then never reports "finished",
// so recovery keeps rescanning the same LSN range forever, wasting time in
// the costly recv_apply_hashed_log_recs. The buggy run is stopped by the
// tick budget, as a hung recovery would be killed by the operator.
//
// input(0) = buffer pool pages (divisible by 3 => available_mem == 0).
const recoverySrc = `
var recv_n_pool_free_frames;
var srv_page_size = 8;
var log_end = 40;

func buf_pool_get_n_pages() {
	return input(0);
}

func recv_sys_init() {
	recv_n_pool_free_frames = buf_pool_get_n_pages() / 3;
}

func recv_parse_log_recs(available_mem, batch) {
	work(150);
	if (available_mem <= 0) {
		return false;
	}
	if (batch >= log_end) {
		return true;
	}
	return false;
}

func recv_apply_hashed_log_recs() {
	work(450);
	return 0;
}

func recv_scan_log_recs(available_mem, batch) {
	if (recv_parse_log_recs(available_mem, batch)) {
		return true;
	}
	return false;
}

func recv_group_scan_log_recs(ckpt) {
	var available_mem = srv_page_size * (buf_pool_get_n_pages() - recv_n_pool_free_frames * 3);
	var batch = ckpt;
	while (!recv_scan_log_recs(available_mem, batch)) {
		recv_apply_hashed_log_recs();
		batch = batch + 1;
		if (batch > log_end) {
			batch = 0;
		}
	}
	return batch;
}

func main() {
	recv_sys_init();
	recv_group_scan_log_recs(0);
}
`

type testBench struct {
	prog *compiler.Program
	sch  *schema.Schema
	meta []debuginfo.VarLoc
}

func buildBench(t *testing.T, src string) *testBench {
	t.Helper()
	f, err := lang.Parse("log0recv.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Generate(f, schema.Options{})
	return &testBench{prog: prog, sch: sch, meta: schema.Translate(sch, prog.Debug)}
}

// profileRuns profiles `runs` executions with distinct alarm phases and
// returns merged per-run profiles.
func (tb *testBench) profileRuns(t *testing.T, runs int, inputs ...int64) []*sampler.Profile {
	t.Helper()
	var out []*sampler.Profile
	for i := 0; i < runs; i++ {
		res := sampler.ProfileRun(tb.prog, tb.meta,
			vm.Config{Inputs: inputs, AlarmPhase: int64(7 * i), Seed: uint64(i + 1), MaxTicks: 150000},
			sampler.Options{Interval: 37})
		out = append(out, sampler.MergeProfiles(res.Profiles))
	}
	return out
}

func (tb *testBench) analyze(t *testing.T, p analysis.Params, normalInputs, buggyInputs []int64) *analysis.Report {
	t.Helper()
	in := analysis.Input{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
		Normal: tb.profileRuns(t, 3, normalInputs...),
		Buggy:  tb.profileRuns(t, 3, buggyInputs...),
	}
	rep, err := analysis.Analyze(in, p)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCalibrationPromotesRootCause(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})

	rootRank := rep.Rank("recv_group_scan_log_recs")
	if rootRank == 0 {
		t.Fatal("root cause function not ranked at all")
	}
	if rootRank > 2 {
		t.Errorf("vProf ranks root cause %dth, want top-2\n%s", rootRank, rep.Render(0))
	}
	// The costly callee must rank below the root cause.
	applyRank := rep.Rank("recv_apply_hashed_log_recs")
	if applyRank != 0 && applyRank < rootRank {
		t.Errorf("costly callee (%d) above root cause (%d)\n%s", applyRank, rootRank, rep.Render(0))
	}
	// gprof's raw ranking would NOT put the root cause on top: verify the
	// baseline view for contrast.
	root := rep.Func("recv_group_scan_log_recs")
	apply := rep.Func("recv_apply_hashed_log_recs")
	if apply == nil || root == nil {
		t.Fatal("missing report rows")
	}
	if root.PCCost >= apply.PCCost {
		t.Errorf("test workload flaw: root PC cost %v >= callee %v (gprof would already win)",
			root.PCCost, apply.PCCost)
	}
}

func TestVariableDiscountZeroForAnomalous(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	vr := rep.Variables["recv_group_scan_log_recs\x00available_mem"]
	if vr == nil {
		t.Fatal("available_mem not analyzed")
	}
	if !vr.Tested {
		t.Fatalf("available_mem not tested: %+v", vr)
	}
	if vr.Discount != 0 {
		t.Errorf("available_mem discount = %v, want 0 (8 vs 0 everywhere)", vr.Discount)
	}
}

func TestVariableBasedCostInheritsCalleeCost(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	root := rep.Func("recv_group_scan_log_recs")
	if root.VarCost <= root.PCCost {
		t.Errorf("VarCost %v <= PCCost %v; unwinding-based cost not working", root.VarCost, root.PCCost)
	}
	if root.RawCost != root.VarCost {
		t.Errorf("RawCost %v != max(VarCost %v)", root.RawCost, root.VarCost)
	}
}

func TestWrongConstraintClassification(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	root := rep.Func("recv_group_scan_log_recs")
	if root.Pattern != analysis.PatternWrongConstraint {
		t.Errorf("pattern = %v, want WrongConstraint (top var %+v)", root.Pattern, root.TopVariable)
	}
}

func TestBlockLocalization(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	root := rep.Func("recv_group_scan_log_recs")
	if len(root.Blocks) == 0 {
		t.Fatal("no abnormal blocks localized")
	}
	// The abnormal samples occur at PCs inside recv_group_scan_log_recs;
	// the top block must belong to it and carry a plausible line number.
	if root.Blocks[0].Line == 0 {
		t.Errorf("block has no line: %+v", root.Blocks[0])
	}
	fn := tb.prog.Debug.FuncNamed("recv_group_scan_log_recs")
	if fn.Block(root.Blocks[0].Block) == nil {
		t.Errorf("block %s not in root cause function", root.Blocks[0].Block)
	}
}

func TestScalabilityClassification(t *testing.T) {
	// A loop whose induction variable reaches far larger values in the
	// buggy run: the paper's Scalability pattern (MDEV-23399-like).
	src := `
func scan_list(len) {
	var scanned = 0;
	while (scanned < len) {
		work(11);
		scanned++;
	}
	return scanned;
}
func main() {
	scan_list(input(0));
}
`
	tb := buildBench(t, src)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{4000})
	fr := rep.Func("scan_list")
	if fr == nil {
		t.Fatal("scan_list missing")
	}
	if fr.Pattern != analysis.PatternScalability {
		t.Errorf("pattern = %v (var %+v), want Scalability", fr.Pattern, fr.TopVariable)
	}
	if fr.Rank != 1 {
		t.Errorf("rank = %d, want 1", fr.Rank)
	}
}

func TestMissingConstraintClassification(t *testing.T) {
	// A conditional/loop variable stuck at one value for abnormally long
	// (processing-cost dimension): the paper's Missing Constraint pattern.
	// In the buggy run the status variable stops advancing, so the loop
	// keeps re-processing the same element.
	src := `
func drain(stuck) {
	var remaining = 24;
	while (remaining > 0) {
		work(40);
		if (stuck > 0 && remaining % 2 == 0) {
			work(4000);
		}
		remaining--;
	}
	return 0;
}
func main() {
	drain(input(0));
}
`
	tb := buildBench(t, src)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{0}, []int64{1})
	fr := rep.Func("drain")
	if fr == nil {
		t.Fatal("drain missing")
	}
	if fr.TopVariable == nil || fr.TopVariable.Name != "remaining" {
		t.Fatalf("top variable = %+v, want remaining", fr.TopVariable)
	}
	if fr.TopVariable.Dimension != analysis.DimCost {
		t.Errorf("dimension = %v, want cost", fr.TopVariable.Dimension)
	}
	if fr.Pattern != analysis.PatternMissingConstraint {
		t.Errorf("pattern = %v, want MissingConstraint", fr.Pattern)
	}
}

func TestPointerVariablesUseCostDimensionOnly(t *testing.T) {
	src := `
func lookup(n) {
	var entry = alloc();
	var i = 0;
	while (i < n) {
		if (entry != 0) {
			work(37);
		}
		i++;
	}
	return 0;
}
func main() { lookup(input(0)); }
`
	tb := buildBench(t, src)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{30}, []int64{600})
	vr := rep.Variables["lookup\x00entry"]
	if vr == nil {
		t.Fatal("entry not analyzed")
	}
	if !vr.IsPointer {
		t.Fatal("entry not flagged as pointer")
	}
	if vr.Tested && vr.Dimension != analysis.DimCost {
		t.Errorf("pointer variable used dimension %v, want cost", vr.Dimension)
	}
}

func TestHistDiscounterDemotesStableCost(t *testing.T) {
	// Variables restricted away from every function (SkipGlobals +
	// filter): only the hist-discounter remains. A function whose cost
	// rank is the same in both runs gets discounted; one that only
	// appears in the buggy run does not.
	src := `
func steady() { work(4000); return 0; }
func spike(n) { var i = 0; while (i < n) { work(500); i++; } return 0; }
func main() {
	steady();
	spike(input(0));
}
`
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Generate(f, schema.Options{SkipGlobals: true, FuncFilter: func(string) bool { return false }})
	meta := schema.Translate(sch, prog.Debug)
	runs := func(inputs ...int64) []*sampler.Profile {
		var out []*sampler.Profile
		for i := 0; i < 5; i++ {
			res := sampler.ProfileRun(prog, meta,
				vm.Config{Inputs: inputs, AlarmPhase: int64(11 * i)},
				sampler.Options{Interval: 37})
			out = append(out, sampler.MergeProfiles(res.Profiles))
		}
		return out
	}
	rep, err := analysis.Analyze(analysis.Input{
		Debug:  prog.Debug,
		Schema: sch,
		Normal: runs(1),
		Buggy:  runs(40),
	}, analysis.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	steady := rep.Func("steady")
	spike := rep.Func("spike")
	if steady == nil || spike == nil {
		t.Fatalf("missing rows:\n%s", rep.Render(0))
	}
	if steady.DiscountSource != "hist" {
		t.Errorf("steady discount source = %s, want hist", steady.DiscountSource)
	}
	if steady.Discount == 0 {
		t.Error("steady not discounted despite identical rank in both runs")
	}
	if spike.Rank >= steady.Rank {
		t.Errorf("spike (%d) should outrank steady (%d)\n%s", spike.Rank, steady.Rank, rep.Render(0))
	}
}

func TestDisableHistDiscounter(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	p := analysis.DefaultParams()
	p.DisableHistDiscounter = true
	rep := tb.analyze(t, p, []int64{40}, []int64{90})
	for _, fr := range rep.Funcs {
		if fr.DiscountSource == "hist" {
			t.Fatalf("hist discount applied despite being disabled: %+v", fr)
		}
	}
}

func TestDisableVarCost(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	p := analysis.DefaultParams()
	p.DisableVarCost = true
	rep := tb.analyze(t, p, []int64{40}, []int64{90})
	for _, fr := range rep.Funcs {
		if fr.VarCost != 0 {
			t.Fatalf("VarCost nonzero with DisableVarCost: %+v", fr)
		}
	}
}

func TestDefaultDiscountAppliedToUnchangedVariables(t *testing.T) {
	// batch sweeps the same 0..log_end range in both runs, so its
	// distribution shape matches -> a high discount (DefaultDiscount from
	// the AD test accepting, or 1-Hellinger of two near-identical
	// distributions).
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	vr := rep.Variables["recv_group_scan_log_recs\x00batch"]
	if vr == nil {
		t.Fatal("batch not analyzed")
	}
	if !vr.Tested {
		t.Fatal("batch not tested")
	}
	if vr.Discount < rep.Params.DefaultDiscount {
		t.Errorf("batch discount %v < DefaultDiscount (same distribution shape)", vr.Discount)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	_, err := analysis.Analyze(analysis.Input{
		Debug:  tb.prog.Debug,
		Schema: tb.sch,
	}, analysis.DefaultParams())
	if err == nil {
		t.Fatal("expected error without profiles")
	}
}

func TestRenderOutput(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	text := rep.Render(5)
	if !strings.Contains(text, "recv_group_scan_log_recs") {
		t.Errorf("render lacks root cause:\n%s", text)
	}
	if !strings.Contains(text, "available_mem") {
		t.Errorf("render lacks variable annotation:\n%s", text)
	}
	lines := strings.Count(text, "\n")
	if lines > 6 {
		t.Errorf("render(5) produced %d lines", lines)
	}
}

func TestGprofViewForContrast(t *testing.T) {
	// Sanity: the raw PC cost ranking (gprof's view) puts a costly callee
	// above the root cause in the buggy run — the premise of the paper.
	tb := buildBench(t, recoverySrc)
	buggy := tb.profileRuns(t, 1, 90)[0]
	cost := map[string]float64{}
	for pc, n := range buggy.Hist {
		if n == 0 {
			continue
		}
		if fn := tb.prog.Debug.FuncAt(pc); fn != nil && !fn.Library {
			cost[fn.Name] += float64(n)
		}
	}
	ranks := stats.Ranks(cost)
	if ranks["recv_apply_hashed_log_recs"] != 1 {
		t.Errorf("gprof view: apply rank = %d, want 1 (%v)", ranks["recv_apply_hashed_log_recs"], ranks)
	}
	if ranks["recv_group_scan_log_recs"] <= ranks["recv_apply_hashed_log_recs"] {
		t.Error("gprof view already favors root cause; workload loses its point")
	}
}

func TestParamsEdgeCases(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	base := func() analysis.Params { return analysis.DefaultParams() }

	// PValue 1: every test "rejects", so discounts come from Hellinger.
	p := base()
	p.PValue = 1.0
	rep := tb.analyze(t, p, []int64{40}, []int64{90})
	if rep.Rank("recv_group_scan_log_recs") > 5 {
		t.Errorf("pvalue=1: root rank %d", rep.Rank("recv_group_scan_log_recs"))
	}

	// PValue 0: nothing rejects, every tested variable gets
	// DefaultDiscount; the root cause survives on raw var-cost.
	p = base()
	p.PValue = 0
	rep = tb.analyze(t, p, []int64{40}, []int64{90})
	for _, vr := range rep.Variables {
		if vr.Tested && vr.Discount != p.DefaultDiscount && vr.Discount != 0 {
			// One-sided variables bypass the AD test and may be 0.
			t.Errorf("pvalue=0: %s.%s discount %v", vr.Func, vr.Name, vr.Discount)
		}
	}

	// DefaultDiscount 1.0: non-anomalous functions are erased entirely.
	p = base()
	p.DefaultDiscount = 1.0
	rep = tb.analyze(t, p, []int64{40}, []int64{90})
	if r := rep.Rank("recv_group_scan_log_recs"); r > 3 {
		t.Errorf("dd=1.0: root rank %d\n%s", r, rep.Render(6))
	}
}

func TestReportLookupsMissing(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	if rep.Rank("no_such_function") != 0 {
		t.Error("Rank of unknown function should be 0")
	}
	if rep.Func("no_such_function") != nil {
		t.Error("Func of unknown function should be nil")
	}
}

func TestRanksAreDense(t *testing.T) {
	tb := buildBench(t, recoverySrc)
	rep := tb.analyze(t, analysis.DefaultParams(), []int64{40}, []int64{90})
	for i, fr := range rep.Funcs {
		if fr.Rank != i+1 {
			t.Fatalf("rank %d at position %d", fr.Rank, i)
		}
		if i > 0 && rep.Funcs[i-1].Calibrated < fr.Calibrated {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestStuckCriterion(t *testing.T) {
	p := analysis.DefaultParams()
	cases := []struct {
		name string
		vr   analysis.VariableReport
		want bool
	}{
		{"classic stuck", analysis.VariableReport{MaxRunNormal: 2, MaxRunBuggy: 50, RunsBuggy: 10}, true},
		{"constant (one run)", analysis.VariableReport{MaxRunNormal: 100, MaxRunBuggy: 4000, RunsBuggy: 1}, false},
		{"init transient (two runs)", analysis.VariableReport{MaxRunNormal: 100, MaxRunBuggy: 4000, RunsBuggy: 2}, false},
		{"no normal baseline", analysis.VariableReport{MaxRunNormal: 0, MaxRunBuggy: 50, RunsBuggy: 10}, false},
		{"uniformly slower", analysis.VariableReport{MaxRunNormal: 10, MaxRunBuggy: 30, RunsBuggy: 10}, false},
		{"boundary 5x", analysis.VariableReport{MaxRunNormal: 10, MaxRunBuggy: 50, RunsBuggy: 10}, false},
		{"just past 5x", analysis.VariableReport{MaxRunNormal: 10, MaxRunBuggy: 51, RunsBuggy: 10}, true},
	}
	for _, c := range cases {
		if got := c.vr.Stuck(p); got != c.want {
			t.Errorf("%s: Stuck = %v, want %v", c.name, got, c.want)
		}
	}
}
