package analysis

// Sketch-aware analysis kernels: the same calibrated diagnosis computed
// from mergeable per-variable sketches (internal/sketch) instead of decoded
// profiles. Where sketch buckets are exact (integral values up to 1<<20 —
// run lengths, change deltas, and the value ranges of the reproduced
// issues) the verdicts are bit-for-bit identical to AnalyzeContext: the
// Anderson-Darling and Hellinger statistics are order-invariant, so the
// histogram expansion loses nothing, and the hist-discounter's pairwise
// rank cross-comparison is recomputed exactly from the Corpus rank
// multisets. Sketches carry no ordered per-tick PC trail, so
// VariableReport.AbnormalPCs (and the derived block localization) stay
// empty in sketch mode; classification and ranking do not depend on them.

import (
	"context"
	"sort"

	"vprof/internal/debuginfo"
	"vprof/internal/parallel"
	"vprof/internal/schema"
	"vprof/internal/sketch"
	"vprof/internal/stats"
)

// Corpus summarizes a baseline (normal) run set for the hist-discounter:
// per function, the sorted multiset of its per-run cost ranks. Adding a run
// is O(functions); merging two corpora is associative and commutative, so a
// shard can answer with a partial corpus and the coordinator folds them.
type Corpus struct {
	// Runs is the number of runs folded in.
	Runs int
	// Ranks maps a function name to its dense cost rank in each run where
	// it appeared, ascending.
	Ranks map[string][]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return &Corpus{Ranks: map[string][]int{}} }

// AddSketch folds one run's sketch into the corpus.
func (c *Corpus) AddSketch(s *sketch.Profile, info *debuginfo.Info) {
	c.AddRanks(stats.Ranks(pcCostAppSketch(s, info)))
}

// AddRanks folds one run's per-function cost ranking into the corpus.
func (c *Corpus) AddRanks(ranks map[string]int) {
	c.Runs++
	for f, r := range ranks {
		lst := c.Ranks[f]
		i := sort.SearchInts(lst, r)
		lst = append(lst, 0)
		copy(lst[i+1:], lst[i:])
		lst[i] = r
		c.Ranks[f] = lst
	}
}

// Merge folds other into c (associative and commutative).
func (c *Corpus) Merge(other *Corpus) {
	c.Runs += other.Runs
	for f, rs := range other.Ranks {
		merged := append(append([]int(nil), c.Ranks[f]...), rs...)
		sort.Ints(merged)
		c.Ranks[f] = merged
	}
}

// Clone returns a deep copy.
func (c *Corpus) Clone() *Corpus {
	out := &Corpus{Runs: c.Runs, Ranks: make(map[string][]int, len(c.Ranks))}
	for f, rs := range c.Ranks {
		out.Ranks[f] = append([]int(nil), rs...)
	}
	return out
}

// CorpusOfSketches builds a corpus from a baseline run set.
func CorpusOfSketches(sketches []*sketch.Profile, info *debuginfo.Info) *Corpus {
	c := NewCorpus()
	for _, s := range sketches {
		c.AddSketch(s, info)
	}
	return c
}

// SketchInput bundles the inputs of the sketch-mode analysis.
type SketchInput struct {
	Debug  *debuginfo.Info
	Schema *schema.Schema
	// Normal is run 0 of the normal side (the variable-discounter's
	// baseline); Corpus summarizes every normal run's cost ranking for
	// the hist-discounter. A nil Corpus is rebuilt from Normal alone.
	Normal *sketch.Profile
	Corpus *Corpus
	// Buggy are the candidate runs' sketches: Buggy[0] feeds the
	// variable-discounter, all feed the hist cross-comparison.
	Buggy []*sketch.Profile
}

// AnalyzeSketches is AnalyzeSketchesContext with a background context.
func AnalyzeSketches(in SketchInput, p Params) (*Report, error) {
	return AnalyzeSketchesContext(context.Background(), in, p)
}

// AnalyzeSketchesContext runs the calibrated diagnosis over sketches. The
// report matches AnalyzeContext bit-for-bit where sketch buckets are exact,
// except that AbnormalPCs/Blocks localization is unavailable (sketches keep
// no ordered PC trail). Cancellation mirrors AnalyzeContext.
func AnalyzeSketchesContext(ctx context.Context, in SketchInput, p Params) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if in.Normal == nil || len(in.Buggy) == 0 {
		return nil, ErrNoProfiles
	}
	corpus := in.Corpus
	if corpus == nil {
		corpus = CorpusOfSketches([]*sketch.Profile{in.Normal}, in.Debug)
	}
	buggy := in.Buggy[0]

	vars, err := analyzeVariablesSketch(ctx, p, in)
	if err != nil {
		return nil, err
	}
	attributed := attributeVariablesSketch(vars, buggy, in.Debug)

	pcCost := pcCostAppSketch(buggy, in.Debug)
	varCost := map[string]float64{}
	if !p.DisableVarCost {
		units := map[string]int64{}
		for pc, n := range buggy.UnitsByPC {
			if fn := in.Debug.FuncAt(int(pc)); fn != nil {
				units[fn.Name] += n
			}
		}
		for fn, u := range units {
			f := in.Debug.FuncNamed(fn)
			if f == nil || f.Library || isSynthetic(fn) {
				continue
			}
			varCost[fn] = float64(u * buggy.Interval)
		}
	}

	var hist map[string]float64
	if !p.DisableHistDiscounter {
		hist, err = histDiscounterSketch(ctx, p, corpus, in.Buggy, in.Debug)
		if err != nil {
			return nil, err
		}
	}

	return assemble(ctx, p, in.Debug, costInputs{
		vars:       vars,
		attributed: attributed,
		pcCost:     pcCost,
		varCost:    varCost,
		hist:       hist,
	})
}

// pcCostAppSketch is pcCostApp over a sketch's sparse PC histogram.
func pcCostAppSketch(s *sketch.Profile, info *debuginfo.Info) map[string]float64 {
	out := map[string]float64{}
	for pc, n := range s.Hist {
		if n == 0 {
			continue
		}
		fn := info.FuncAt(int(pc))
		if fn == nil || fn.Library || isSynthetic(fn.Name) {
			continue
		}
		out[fn.Name] += float64(n * s.Interval)
	}
	return out
}

// analyzeVariablesSketch is the variable-discounter over the run-0 sketches
// of each side: per variable, the three dimension histograms expand to
// sorted observation series and feed the same one-dimension test.
func analyzeVariablesSketch(ctx context.Context, p Params, in SketchInput) (map[string]*VariableReport, error) {
	normal, buggy := in.Normal, in.Buggy[0]
	type varPair struct{ n, b *sketch.VarSummary }
	pairs := map[string]varPair{}
	for i := range normal.Vars {
		v := &normal.Vars[i]
		pairs[v.Key()] = varPair{n: v}
	}
	for i := range buggy.Vars {
		v := &buggy.Vars[i]
		pr := pairs[v.Key()]
		pr.b = v
		pairs[v.Key()] = pr
	}
	names := make([]string, 0, len(pairs))
	for key := range pairs {
		names = append(names, key)
	}
	sort.Strings(names)

	empty := &sketch.VarSummary{}
	reports, err := parallel.MapCtx(ctx, parallel.Workers(p.Workers), len(names), func(i int) *VariableReport {
		key := names[i]
		pr := pairs[key]
		// The buggy side's layout entry wins when both sides carry the
		// variable, matching analyzeVariables' key map construction.
		l := pr.b
		if l == nil {
			l = pr.n
		}
		nv, bv := pr.n, pr.b
		if nv == nil {
			nv = empty
		}
		if bv == nil {
			bv = empty
		}
		vr := &VariableReport{
			Func:        l.Func,
			Name:        l.Name,
			IsPointer:   l.IsPointer,
			NormalCount: int(nv.Count),
			BuggyCount:  int(bv.Count),
		}
		if e := in.Schema.Lookup(l.Func, l.Name); e != nil {
			vr.Tags = e.Tags
		}
		vr.Discount, vr.Dimension, vr.Tested = selectDiscount(p, trimDims(p, l.IsPointer, []dimSeries{
			{DimValue, nv.Values.Expand(), bv.Values.Expand()},
			{DimDelta, nv.Deltas.Expand(), bv.Deltas.Expand()},
			{DimCost, nv.Runs.Expand(), bv.Runs.Expand()},
		}))
		vr.MaxRunNormal = nv.MaxRun
		vr.MaxRunBuggy = bv.MaxRun
		vr.RunsBuggy = int(bv.NumRuns)
		// AbnormalPCs intentionally left empty: sketches keep no ordered
		// per-tick trail to mark abnormal instants on.
		return vr
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*VariableReport, len(names))
	for i, key := range names {
		out[key] = reports[i]
	}
	return out, nil
}

// attributeVariablesSketch mirrors attributeVariables: locals to their
// declaring function, globals to every function containing a PC at which
// the global was sampled in the buggy run (the sketch's per-variable PC
// set).
func attributeVariablesSketch(vars map[string]*VariableReport, buggy *sketch.Profile, info *debuginfo.Info) map[string][]*VariableReport {
	out := map[string][]*VariableReport{}
	for key, vr := range vars {
		if vr.Func != debuginfo.GlobalScope {
			out[vr.Func] = append(out[vr.Func], vr)
			continue
		}
		bv := buggy.Var(key)
		if bv == nil {
			continue
		}
		fns := map[string]bool{}
		for _, pc := range bv.PCs {
			if fn := info.FuncAt(int(pc)); fn != nil {
				fns[fn.Name] = true
			}
		}
		for fn := range fns {
			out[fn] = append(out[fn], vr)
		}
	}
	for _, list := range out {
		sortAttributed(list)
	}
	return out
}

// histDiscounterSketch recomputes histDiscounter's pairwise rank
// cross-comparison from the corpus rank multisets, exactly: for a function
// ranked bRank in a buggy run, the normal runs that outrank it are the
// corpus entries < bRank (one binary search), and runs where it never
// appeared contribute the same h/c increments as the original pair loop.
func histDiscounterSketch(ctx context.Context, p Params, corpus *Corpus, buggy []*sketch.Profile, info *debuginfo.Info) (map[string]float64, error) {
	workers := parallel.Workers(p.Workers)
	buggyRanks, err := parallel.MapCtx(ctx, workers, len(buggy), func(i int) map[string]int {
		return stats.Ranks(pcCostAppSketch(buggy[i], info))
	})
	if err != nil {
		return nil, err
	}

	funcs := map[string]bool{}
	for f := range corpus.Ranks {
		funcs[f] = true
	}
	for _, r := range buggyRanks {
		for f := range r {
			funcs[f] = true
		}
	}
	names := make([]string, 0, len(funcs))
	for f := range funcs {
		names = append(names, f)
	}
	sort.Strings(names)

	type verdict struct {
		r  float64
		ok bool
	}
	verdicts, err := parallel.MapCtx(ctx, workers, len(names), func(i int) verdict {
		f := names[i]
		nList := corpus.Ranks[f]
		h, c := 0, 0
		for _, br := range buggyRanks {
			if bRank, bOK := br[f]; bOK {
				// Every normal run pairs up; the ones where f ranked
				// more costly (smaller rank) add to h, absences add
				// nothing.
				c += corpus.Runs
				h += sort.SearchInts(nList, bRank)
			} else {
				// Only normal runs where f appeared pair up, each as
				// "costlier in normal".
				c += len(nList)
				h += len(nList)
			}
		}
		if c == 0 {
			return verdict{}
		}
		r := float64(h) / float64(c)
		if r < p.ValidDiscount {
			r = 0
		}
		return verdict{r, true}
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]float64, len(names))
	for i, f := range names {
		if verdicts[i].ok {
			out[f] = verdicts[i].r
		}
	}
	return out, nil
}
