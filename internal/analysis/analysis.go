// Package analysis implements vProf's post-profiling analysis (paper §5):
// cost calibration — the variable-discounter, hist-discounter and
// variable-based execution cost that together re-rank functions so that the
// root cause of a performance issue surfaces — and bug-pattern inference.
//
// Inputs are profiles of at least one normal and one buggy execution
// (paper's Table 2 configuration: 5 of each feed the hist-discounter, the
// first of each feeds the variable-discounter), plus the program's debug
// info and the monitoring schema (for variable tags).
package analysis

import (
	"vprof/internal/debuginfo"
	"vprof/internal/sampler"
	"vprof/internal/schema"
)

// Params are the tunables of the analysis, with the paper's defaults.
type Params struct {
	// DefaultDiscount is applied to variables whose normal/buggy sample
	// distributions are statistically indistinguishable (paper: 0.8).
	DefaultDiscount float64
	// ValidDiscount floors small discounts to zero so noisy value samples
	// do not reorder similarly suspicious functions (paper: 0.1).
	ValidDiscount float64
	// PValue is the Anderson-Darling significance threshold (paper: 0.05).
	PValue float64
	// MinSamples is the minimum per-side sample count for the statistical
	// tests; below it a side counts as "no information".
	MinSamples int
	// OneSidedSamples is the count at which samples appearing *only* in
	// the buggy (or only in the normal) execution are themselves
	// anomalous (the paper's MDEV-16289 diagnosis: 0 normal samples vs
	// 30+ buggy samples gave a zero discount).
	OneSidedSamples int
	// StuckFactor quantifies the classifier's "stays the same for an
	// abnormally long time" (rule 1): a variable counts as stuck when
	// its longest buggy-run value streak exceeds StuckFactor times the
	// longest streak seen in the normal execution.
	StuckFactor float64
	// Workers bounds the analysis worker pool that fans out per-variable
	// discounts, per-function cost attribution and hist-discounter
	// cross-comparisons: 0 resolves a default via VPROF_WORKERS then
	// GOMAXPROCS (see internal/parallel), 1 forces the sequential legacy
	// path. The report is byte-for-byte identical for every value.
	Workers int
	// DisableVarCost turns off the variable-based execution cost
	// (ablation).
	DisableVarCost bool
	// DisableHistDiscounter turns off the hist-discounter (Table 3's
	// "vProf without hist-discounter" configuration).
	DisableHistDiscounter bool
	// DimensionsValueOnly restricts the discounter to the value dimension
	// (ablation; the paper motivates deltas and processing costs).
	DimensionsValueOnly bool
}

// DefaultParams returns the paper's default parameters.
func DefaultParams() Params {
	return Params{
		DefaultDiscount: 0.8,
		ValidDiscount:   0.1,
		PValue:          0.05,
		MinSamples:      3,
		OneSidedSamples: 5,
		StuckFactor:     5,
	}
}

// Dimension identifies which anomaly dimension produced a discount.
type Dimension int

// The paper's three dimensions (§5.1): raw values, deltas of adjacent
// values, and processing costs (alarm intervals a value stays unchanged).
const (
	DimNone Dimension = iota
	DimValue
	DimDelta
	DimCost
)

func (d Dimension) String() string {
	switch d {
	case DimValue:
		return "value"
	case DimDelta:
		return "delta"
	case DimCost:
		return "cost"
	}
	return "none"
}

// Pattern is an inferred root-cause pattern (paper §5.2).
type Pattern int

// Patterns; PatternNC is the paper's "could not classify".
const (
	PatternNC Pattern = iota
	PatternWrongConstraint
	PatternMissingConstraint
	PatternScalability
)

func (p Pattern) String() string {
	switch p {
	case PatternWrongConstraint:
		return "WrongConstraint"
	case PatternMissingConstraint:
		return "MissingConstraint"
	case PatternScalability:
		return "Scalability"
	}
	return "NC"
}

// VariableReport is the discounter's verdict on one monitored variable.
type VariableReport struct {
	Func string // declaring function or debuginfo.GlobalScope
	Name string
	Tags schema.Tag
	// IsPointer marks non-basic-type pointers (only DimCost applies).
	IsPointer bool
	// Discount is the variable's discount ratio in [0,1]; lower is more
	// anomalous.
	Discount float64
	// Dimension achieved the minimum discount.
	Dimension Dimension
	// NormalCount/BuggyCount are per-tick deduplicated sample counts.
	NormalCount, BuggyCount int
	// AbnormalPCs are buggy-profile sample PCs whose values fall outside
	// the normal execution's range (or whose runs exceed normal run
	// lengths, for DimCost).
	AbnormalPCs []int
	// Tested reports whether enough data existed to run the statistics.
	Tested bool
	// MaxRunNormal/MaxRunBuggy are the longest same-value streaks (in
	// alarms) observed on each side, and RunsBuggy the number of buggy
	// streaks; together the classifier's stuck criterion.
	MaxRunNormal, MaxRunBuggy float64
	RunsBuggy                 int
}

// Stuck reports whether the variable stayed at one value abnormally long in
// the buggy execution (classifier rule 1's "stays the same for an abnormally
// long time"). Three conditions: the variable genuinely cycles during the
// buggy run (>= 3 streaks — a constant, or a value set once at
// initialization, carries no stuck signal); the normal execution provides
// baseline streaks to compare against; and the longest buggy streak exceeds
// StuckFactor times the longest normal streak.
func (v *VariableReport) Stuck(p Params) bool {
	if v.RunsBuggy < 3 || v.MaxRunNormal < 1 {
		return false
	}
	return v.MaxRunBuggy > p.StuckFactor*v.MaxRunNormal
}

// BlockHit localizes abnormal samples to a basic block.
type BlockHit struct {
	Block string // bb label
	Line  int
	Count int
}

// FuncReport is one row of the final ranking.
type FuncReport struct {
	Name string
	// PCCost is the gprof-style execution cost (non-library PC samples x
	// interval); VarCost is the variable-based execution cost; RawCost is
	// their max (paper §5.1).
	PCCost, VarCost, RawCost float64
	// Discount in [0,1] and where it came from: "variable", "hist" or
	// "none".
	Discount       float64
	DiscountSource string
	// Calibrated = RawCost * (1 - Discount).
	Calibrated float64
	// Rank is the 1-based position in the calibrated ranking.
	Rank int
	// TopVariable is the most anomalous variable attributed to the
	// function, if any.
	TopVariable *VariableReport
	// Pattern is the inferred bug pattern for top-ranked functions.
	Pattern Pattern
	// Blocks are the basic blocks containing abnormal samples, most hit
	// first.
	Blocks []BlockHit
}

// Report is the complete analysis output.
type Report struct {
	Params Params
	// Funcs are sorted by calibrated cost, highest (most suspicious)
	// first.
	Funcs []FuncReport
	// Variables holds every monitored variable's verdict, keyed by
	// "func\x00name".
	Variables map[string]*VariableReport
}

// Rank returns the 1-based rank of a function in the report, or 0 if the
// function does not appear.
func (r *Report) Rank(fn string) int {
	for _, f := range r.Funcs {
		if f.Name == fn {
			return f.Rank
		}
	}
	return 0
}

// Func returns the report row for fn, or nil.
func (r *Report) Func(fn string) *FuncReport {
	for i := range r.Funcs {
		if r.Funcs[i].Name == fn {
			return &r.Funcs[i]
		}
	}
	return nil
}

// Input bundles everything Analyze needs.
type Input struct {
	Debug  *debuginfo.Info
	Schema *schema.Schema
	// Normal and Buggy each hold one merged profile per run (use
	// sampler.MergeProfiles for multi-process runs). At least one of
	// each; run 0 feeds the variable-discounter.
	Normal []*sampler.Profile
	Buggy  []*sampler.Profile
}
