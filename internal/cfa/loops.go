package cfa

import "sort"

// Loop is a natural loop: the blocks reachable backwards from a back edge's
// source without leaving the header's dominance region. Multiple back edges
// to the same header are merged into one loop.
type Loop struct {
	Header  int
	Blocks  []int // sorted ascending; includes Header
	Latches []int // back-edge sources, sorted
	Exits   []int // member blocks with an edge leaving the loop, sorted
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Depth is the nesting depth: 1 for top-level loops, 2 for loops
	// nested inside one loop, and so on.
	Depth int

	member map[int]bool
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.member[b] }

// Loops detects the natural loops of g using the dominator tree: every edge
// u->h where h dominates u is a back edge, and the loop body is found by a
// reverse flood fill from u stopping at h. The result is sorted by header
// index, with Parent/Depth describing the nesting forest.
func Loops(g *Graph, d *DomTree) []*Loop {
	byHeader := map[int]*Loop{}
	for u := 0; u < g.NumBlocks(); u++ {
		for _, h := range g.Succs[u] {
			if !d.Dominates(h, u) {
				continue // not a back edge (includes unreachable u)
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, member: map[int]bool{h: true}}
				byHeader[h] = l
			}
			l.Latches = append(l.Latches, u)
			// Reverse flood fill from the latch.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.member[b] {
					continue
				}
				l.member[b] = true
				for _, p := range g.Preds[b] {
					if !l.member[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		for b := range l.member {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Ints(l.Blocks)
		sort.Ints(l.Latches)
		for _, b := range l.Blocks {
			exits := false
			for _, s := range g.Succs[b] {
				if !l.member[s] {
					exits = true
				}
			}
			if exits {
				l.Exits = append(l.Exits, b)
			}
		}
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })

	// Nesting: the parent of a loop is the smallest other loop containing
	// its header. Processing by ascending size makes depths well-defined.
	bySize := append([]*Loop(nil), loops...)
	sort.SliceStable(bySize, func(i, j int) bool { return len(bySize[i].Blocks) < len(bySize[j].Blocks) })
	for i, l := range bySize {
		for _, outer := range bySize[i+1:] {
			if outer != l && outer.Contains(l.Header) {
				l.Parent = outer
				break
			}
		}
	}
	for _, l := range loops {
		depth := 1
		for p := l.Parent; p != nil; p = p.Parent {
			depth++
		}
		l.Depth = depth
	}
	return loops
}

// BlockDepths returns, for every block of g, the nesting depth of the
// innermost loop containing it (0 for blocks outside all loops).
func BlockDepths(g *Graph, loops []*Loop) []int {
	depth := make([]int, g.NumBlocks())
	for _, l := range loops {
		for _, b := range l.Blocks {
			if l.Depth > depth[b] {
				depth[b] = l.Depth
			}
		}
	}
	return depth
}
