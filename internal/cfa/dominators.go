package cfa

// DomTree is the dominator tree of a Graph. Unreachable blocks have no
// dominator information (Idom -1, dominated by nothing, dominating nothing).
type DomTree struct {
	// Idom is the immediate dominator per block; the entry maps to itself
	// and unreachable blocks map to -1.
	Idom []int

	g *Graph
	// Pre/post numbering of a DFS over the dominator tree, giving O(1)
	// Dominates queries.
	pre, post []int
}

// Dominators computes the dominator tree with the iterative
// Cooper–Harvey–Kennedy algorithm ("A Simple, Fast Dominance Algorithm"):
// reverse-postorder sweeps intersecting predecessor dominators until a
// fixed point.
func Dominators(g *Graph) *DomTree {
	n := g.NumBlocks()
	d := &DomTree{Idom: make([]int, n), g: g}
	for i := range d.Idom {
		d.Idom[i] = -1
	}
	if n == 0 {
		return d
	}
	rpo := g.ReversePostorder()
	order := make([]int, n) // block -> rpo index; -1 unreachable
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	d.Idom[g.Entry] = g.Entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = d.Idom[a]
			}
			for order[b] > order[a] {
				b = d.Idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if order[p] < 0 || d.Idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.number()
	return d
}

// number assigns DFS pre/post intervals over the dominator tree.
func (d *DomTree) number() {
	n := len(d.Idom)
	children := make([][]int, n)
	for b, id := range d.Idom {
		if id >= 0 && b != d.g.Entry {
			children[id] = append(children[id], b)
		}
	}
	d.pre = make([]int, n)
	d.post = make([]int, n)
	for i := range d.pre {
		d.pre[i], d.post[i] = -1, -1
	}
	clock := 0
	var dfs func(b int)
	dfs = func(b int) {
		d.pre[b] = clock
		clock++
		for _, c := range children[b] {
			dfs(c)
		}
		d.post[b] = clock
		clock++
	}
	if n > 0 && d.Idom[d.g.Entry] == d.g.Entry {
		dfs(d.g.Entry)
	}
}

// Dominates reports whether a dominates b (reflexively). Unreachable
// blocks dominate nothing and are dominated by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if d.pre[a] < 0 || d.pre[b] < 0 {
		return false
	}
	return d.pre[a] <= d.pre[b] && d.post[b] <= d.post[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (d *DomTree) StrictlyDominates(a, b int) bool {
	return a != b && d.Dominates(a, b)
}

// ImmediateDominator returns b's immediate dominator, or -1 for the entry
// and for unreachable blocks.
func (d *DomTree) ImmediateDominator(b int) int {
	if b == d.g.Entry || d.Idom[b] < 0 {
		return -1
	}
	return d.Idom[b]
}
