package cfa

import (
	"sort"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
)

// FuncAnalysis bundles the control- and data-flow analyses of one compiled
// function. Variables are identified by dense ids: ids [0, NumSlots) are
// the function's frame slots (parameters and locals), ids NumSlots+gi are
// the program's globals.
type FuncAnalysis struct {
	Prog   *compiler.Program
	Fn     *compiler.FuncInfo
	Blocks []debuginfo.BlockRange
	Graph  *Graph
	Dom    *DomTree
	Loops  []*Loop
	// Depths holds the loop-nesting depth per block (0 outside loops).
	Depths []int
}

// AnalyzeFunc builds the CFG of fn and runs the dominator and loop
// analyses. It returns nil for functions without blocks.
func AnalyzeFunc(prog *compiler.Program, fn *compiler.FuncInfo) *FuncAnalysis {
	blocks, succs := prog.BlockSuccessors(fn)
	if len(blocks) == 0 {
		return nil
	}
	g := NewGraph(0, succs)
	d := Dominators(g)
	loops := Loops(g, d)
	return &FuncAnalysis{
		Prog:   prog,
		Fn:     fn,
		Blocks: blocks,
		Graph:  g,
		Dom:    d,
		Loops:  loops,
		Depths: BlockDepths(g, loops),
	}
}

// NumVars returns the size of the variable universe (slots + globals).
func (a *FuncAnalysis) NumVars() int { return a.Fn.NumSlots + a.Prog.NumGlobals() }

// GlobalVar returns the variable id of global index gi.
func (a *FuncAnalysis) GlobalVar(gi int) int { return a.Fn.NumSlots + gi }

// VarName returns the source name of a variable id and whether it names a
// global. Unnamed slots return "".
func (a *FuncAnalysis) VarName(id int) (name string, global bool) {
	if id < a.Fn.NumSlots {
		if id < len(a.Fn.SlotNames) {
			return a.Fn.SlotNames[id], false
		}
		return "", false
	}
	return a.Prog.GlobalNames[id-a.Fn.NumSlots], true
}

// BlockOf returns the index of the block containing pc, or -1.
func (a *FuncAnalysis) BlockOf(pc int) int {
	for i := range a.Blocks {
		if pc >= a.Blocks[i].Start && pc < a.Blocks[i].End {
			return i
		}
	}
	return -1
}

// varAt maps a load/store instruction to its variable id, or -1.
func (a *FuncAnalysis) varAt(ins compiler.Instr) int {
	switch ins.Op {
	case compiler.OpLoadL, compiler.OpStoreL:
		return int(ins.A)
	case compiler.OpLoadG, compiler.OpStoreG:
		return a.GlobalVar(int(ins.A))
	}
	return -1
}

// UseDef extracts the per-block use (read before any write in the block)
// and def (written) sets feeding Liveness.
func (a *FuncAnalysis) UseDef() (use, def []BitSet) {
	n := len(a.Blocks)
	nv := a.NumVars()
	use = make([]BitSet, n)
	def = make([]BitSet, n)
	for b := 0; b < n; b++ {
		use[b], def[b] = NewBitSet(nv), NewBitSet(nv)
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			ins := a.Prog.Instrs[pc]
			v := a.varAt(ins)
			if v < 0 {
				continue
			}
			switch ins.Op {
			case compiler.OpLoadL, compiler.OpLoadG:
				if !def[b].Has(v) {
					use[b].Set(v)
				}
			case compiler.OpStoreL, compiler.OpStoreG:
				def[b].Set(v)
			}
		}
	}
	return use, def
}

// DefSite is one store instruction: a definition of Var at PC in Block.
// Const marks stores whose operand is a literal constant (the preceding
// instruction pushes OpConst), with Value the constant stored.
type DefSite struct {
	PC    int
	Block int
	Var   int
	Const bool
	Value int64
}

// DefSites lists the function's definition sites in program (PC) order,
// ready for ReachingDefs.
func (a *FuncAnalysis) DefSites() []DefSite {
	var out []DefSite
	for b := range a.Blocks {
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			ins := a.Prog.Instrs[pc]
			if ins.Op != compiler.OpStoreL && ins.Op != compiler.OpStoreG {
				continue
			}
			d := DefSite{PC: pc, Block: b, Var: a.varAt(ins)}
			if pc > a.Blocks[b].Start {
				if prev := a.Prog.Instrs[pc-1]; prev.Op == compiler.OpConst {
					d.Const = true
					d.Value = a.Prog.Consts[prev.A]
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// ReachingDefs runs reaching definitions over the function's def sites.
func (a *FuncAnalysis) ReachingDefs() (sites []DefSite, in, out []BitSet) {
	sites = a.DefSites()
	defs := make([]Def, len(sites))
	for i, s := range sites {
		defs[i] = Def{Block: s.Block, Var: s.Var}
	}
	in, out = ReachingDefs(a.Graph, defs)
	return sites, in, out
}

// Liveness runs live-variable analysis over the function's blocks.
func (a *FuncAnalysis) Liveness() (liveIn, liveOut []BitSet) {
	use, def := a.UseDef()
	return Liveness(a.Graph, use, def, a.NumVars())
}

// InductionVar is a loop induction variable in the paper's sense: assigned
// inside the loop and read by the loop's exit condition.
type InductionVar struct {
	Var  int
	Loop *Loop
}

// InductionVars detects induction variables per natural loop on the IR.
//
// The structured compiler emits a loop's condition first (the back edge
// targets the condition's first block) and its conditional exit jump last,
// so the condition region is the PC-interval of loop blocks from the header
// through the loop's conditional exiting block — short-circuit sub-blocks
// included. A variable read in that region and written anywhere in the loop
// is an induction variable. Loops with no conditional exit dominated by the
// header (for(;;) with breaks, or no exit at all) have no condition and
// yield none, matching the source-level definition.
func (a *FuncAnalysis) InductionVars() []InductionVar {
	var out []InductionVar
	for _, l := range a.Loops {
		exit := a.condExit(l)
		if exit < 0 {
			continue
		}
		read := map[int]bool{}
		for _, b := range l.Blocks {
			if b < l.Header || b > exit {
				continue
			}
			// Only loads past the block's last store feed the condition:
			// when an if-break shares its block with preceding body
			// statements, their operand loads must not count as
			// condition reads.
			from := a.Blocks[b].Start
			for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
				op := a.Prog.Instrs[pc].Op
				if op == compiler.OpStoreL || op == compiler.OpStoreG {
					from = pc + 1
				}
			}
			for pc := from; pc < a.Blocks[b].End; pc++ {
				ins := a.Prog.Instrs[pc]
				if ins.Op == compiler.OpLoadL || ins.Op == compiler.OpLoadG {
					read[a.varAt(ins)] = true
				}
			}
		}
		written := map[int]bool{}
		for _, b := range l.Blocks {
			for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
				ins := a.Prog.Instrs[pc]
				if ins.Op == compiler.OpStoreL || ins.Op == compiler.OpStoreG {
					written[a.varAt(ins)] = true
				}
			}
		}
		var vars []int
		for v := range read {
			if written[v] {
				vars = append(vars, v)
			}
		}
		sort.Ints(vars)
		for _, v := range vars {
			out = append(out, InductionVar{Var: v, Loop: l})
		}
	}
	return out
}

// CondExit returns the index of l's conditional exiting block dominated by
// the header — the block evaluating the loop condition's final test — or -1
// when the loop has none. Trip-count inference in internal/absint keys on
// this block's terminal comparison.
func (a *FuncAnalysis) CondExit(l *Loop) int { return a.condExit(l) }

// condExit returns the index of l's conditional exiting block dominated by
// the header — the block evaluating the loop condition's final test — or -1
// when the loop has none.
func (a *FuncAnalysis) condExit(l *Loop) int {
	for _, b := range l.Exits {
		last := a.Prog.Instrs[a.Blocks[b].End-1]
		if last.Op != compiler.OpJZ && last.Op != compiler.OpJNZ {
			continue
		}
		if a.Dom.Dominates(l.Header, b) {
			return b
		}
	}
	return -1
}

// MaxAccessDepth returns the maximum loop-nesting depth over the blocks
// where variable id is loaded or stored (0 when only accessed outside
// loops or never accessed).
func (a *FuncAnalysis) MaxAccessDepth(id int) int {
	max := 0
	for b := range a.Blocks {
		if a.Depths[b] <= max {
			continue
		}
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			if a.varAt(a.Prog.Instrs[pc]) == id {
				max = a.Depths[b]
				break
			}
		}
	}
	return max
}
