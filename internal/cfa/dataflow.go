package cfa

// BitSet is a fixed-capacity bit vector used by the dataflow analyses.
type BitSet []uint64

// NewBitSet returns a bit set able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone returns a copy of the set.
func (b BitSet) Clone() BitSet { return append(BitSet(nil), b...) }

// OrWith sets b |= c and reports whether b changed.
func (b BitSet) OrWith(c BitSet) bool {
	changed := false
	for i := range b {
		if n := b[i] | c[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Def is one definition site for reaching-definitions analysis: a write to
// variable Var inside block Block. Definitions must be listed in program
// order within each block (later defs of a variable kill earlier ones).
type Def struct {
	Block int
	Var   int
}

// ReachingDefs computes, per block, which definition sites (indices into
// defs) reach the block's entry (in) and exit (out) — the classic forward
// may-analysis: out[b] = gen[b] ∪ (in[b] − kill[b]), in[b] = ∪ out[preds].
func ReachingDefs(g *Graph, defs []Def) (in, out []BitSet) {
	n := g.NumBlocks()
	nd := len(defs)
	// defsOf groups definition indices by variable for kill sets.
	defsOf := map[int][]int{}
	for i, d := range defs {
		defsOf[d.Var] = append(defsOf[d.Var], i)
	}
	gen := make([]BitSet, n)
	kill := make([]BitSet, n)
	for b := 0; b < n; b++ {
		gen[b], kill[b] = NewBitSet(nd), NewBitSet(nd)
	}
	// Walk defs in program order: a def kills every other def of its
	// variable and replaces any earlier gen in the same block.
	for i, d := range defs {
		for _, j := range defsOf[d.Var] {
			if j != i {
				kill[d.Block].Set(j)
				gen[d.Block].Clear(j)
			}
		}
		gen[d.Block].Set(i)
		kill[d.Block].Clear(i)
	}

	in = make([]BitSet, n)
	out = make([]BitSet, n)
	for b := 0; b < n; b++ {
		in[b], out[b] = NewBitSet(nd), NewBitSet(nd)
	}
	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			for _, p := range g.Preds[b] {
				if in[b].OrWith(out[p]) {
					changed = true
				}
			}
			// out = gen ∪ (in − kill)
			for w := range out[b] {
				n := gen[b][w] | (in[b][w] &^ kill[b][w])
				if n != out[b][w] {
					out[b][w] = n
					changed = true
				}
			}
		}
	}
	return in, out
}

// Liveness computes per-block live-in/live-out variable sets by backward
// iteration: liveIn[b] = use[b] ∪ (liveOut[b] − def[b]), liveOut[b] =
// ∪ liveIn[succs]. use[b] must hold the variables read in b before any
// write in b; def[b] the variables written in b. nvars is the variable
// universe size.
func Liveness(g *Graph, use, def []BitSet, nvars int) (liveIn, liveOut []BitSet) {
	n := g.NumBlocks()
	liveIn = make([]BitSet, n)
	liveOut = make([]BitSet, n)
	for b := 0; b < n; b++ {
		liveIn[b], liveOut[b] = NewBitSet(nvars), NewBitSet(nvars)
	}
	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		// Postorder (reverse of rpo) converges fastest for backward flow.
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			for _, s := range g.Succs[b] {
				if liveOut[b].OrWith(liveIn[s]) {
					changed = true
				}
			}
			for w := range liveIn[b] {
				n := use[b][w] | (liveOut[b][w] &^ def[b][w])
				if n != liveIn[b][w] {
					liveIn[b][w] = n
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
