// Package cfa implements control- and data-flow analyses over the compiled
// basic-block IR (package compiler): CFG construction, dominator trees
// (the iterative Cooper–Harvey–Kennedy algorithm), natural-loop detection
// with nesting depth, reaching definitions, and liveness.
//
// The paper's schema generator is an LLVM IR pass (§3.1); this package is
// the analysis layer that lets our reproduction work at the same level.
// Package schema uses it to detect loop induction variables from dominators
// instead of an AST heuristic, to score schema entries by performance
// relevance (loop-nesting-depth weighting, constant and dead variable
// pruning), and to verify schema/DWARF location coverage.
//
// The Graph type is deliberately independent of the compiler so analyses
// can be unit-tested on hand-built CFGs; FuncGraph/AnalyzeFunc adapt a
// compiled function.
package cfa

// Graph is a control-flow graph over basic blocks identified by dense
// indices [0, NumBlocks).
type Graph struct {
	Entry int
	Succs [][]int
	Preds [][]int
}

// NewGraph builds a graph from per-block successor lists, deriving
// predecessor lists. succs may contain nil entries for blocks without
// successors.
func NewGraph(entry int, succs [][]int) *Graph {
	g := &Graph{Entry: entry, Succs: succs, Preds: make([][]int, len(succs))}
	for b, ss := range succs {
		for _, s := range ss {
			g.Preds[s] = append(g.Preds[s], b)
		}
	}
	return g
}

// NumBlocks returns the number of blocks in the graph.
func (g *Graph) NumBlocks() int { return len(g.Succs) }

// Reachable reports, per block, whether it is reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, g.NumBlocks())
	if g.NumBlocks() == 0 {
		return seen
	}
	stack := []int{g.Entry}
	seen[g.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder of a depth-first traversal. Unreachable blocks are absent.
func (g *Graph) ReversePostorder() []int {
	n := g.NumBlocks()
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	var post []int
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
