package cfa_test

import (
	"reflect"
	"testing"

	"vprof/internal/cfa"
)

// diamond:   0 -> 1, 2 ; 1 -> 3 ; 2 -> 3
func diamond() *cfa.Graph {
	return cfa.NewGraph(0, [][]int{{1, 2}, {3}, {3}, nil})
}

// nestedLoops: 0 -> 1 (outer header) -> 2 (inner header) -> 3 -> {2, 4}
// 4 -> {1, 5}; 5 exit.
func nestedLoops() *cfa.Graph {
	return cfa.NewGraph(0, [][]int{{1}, {2}, {3}, {2, 4}, {1, 5}, nil})
}

// unreachable: 0 -> 1 -> 3; 2 -> 3 but 2 is never reached.
func unreachable() *cfa.Graph {
	return cfa.NewGraph(0, [][]int{{1}, {3}, {3}, nil})
}

func TestDominatorsDiamond(t *testing.T) {
	g := diamond()
	d := cfa.Dominators(g)
	if got := d.Idom[3]; got != 0 {
		t.Errorf("idom(3) = %d, want 0 (merge point dominated by branch, not arms)", got)
	}
	if d.Idom[1] != 0 || d.Idom[2] != 0 {
		t.Errorf("idom(1,2) = %d,%d, want 0,0", d.Idom[1], d.Idom[2])
	}
	for _, b := range []int{0, 1, 2, 3} {
		if !d.Dominates(0, b) {
			t.Errorf("entry must dominate %d", b)
		}
		if !d.Dominates(b, b) {
			t.Errorf("Dominates not reflexive for %d", b)
		}
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("an arm of the diamond must not dominate the merge")
	}
	if d.StrictlyDominates(3, 3) {
		t.Error("StrictlyDominates must be irreflexive")
	}
	if d.ImmediateDominator(0) != -1 {
		t.Error("entry has no immediate dominator")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := unreachable()
	d := cfa.Dominators(g)
	if d.Idom[2] != -1 {
		t.Errorf("unreachable block idom = %d, want -1", d.Idom[2])
	}
	if d.Dominates(2, 3) || d.Dominates(0, 2) {
		t.Error("unreachable block must not participate in dominance")
	}
	// 3 has preds {1, 2}; the unreachable pred must be ignored: 1 idoms 3.
	if d.Idom[3] != 1 {
		t.Errorf("idom(3) = %d, want 1 (unreachable predecessor ignored)", d.Idom[3])
	}
	reach := g.Reachable()
	if reach[2] || !reach[0] || !reach[1] || !reach[3] {
		t.Errorf("Reachable = %v", reach)
	}
}

func TestReversePostorder(t *testing.T) {
	g := diamond()
	rpo := g.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != 0 || rpo[3] != 3 {
		t.Errorf("rpo = %v, want entry first and merge last", rpo)
	}
	if got := unreachable().ReversePostorder(); len(got) != 3 {
		t.Errorf("rpo with unreachable block = %v, want 3 blocks", got)
	}
}

func TestLoopsNested(t *testing.T) {
	g := nestedLoops()
	d := cfa.Dominators(g)
	loops := cfa.Loops(g, d)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers = %d,%d, want 1,2", outer.Header, inner.Header)
	}
	if !reflect.DeepEqual(outer.Blocks, []int{1, 2, 3, 4}) {
		t.Errorf("outer blocks = %v", outer.Blocks)
	}
	if !reflect.DeepEqual(inner.Blocks, []int{2, 3}) {
		t.Errorf("inner blocks = %v", inner.Blocks)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d,%d, want 1,2", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer || outer.Parent != nil {
		t.Error("nesting parents wrong")
	}
	if !reflect.DeepEqual(inner.Latches, []int{3}) || !reflect.DeepEqual(outer.Latches, []int{4}) {
		t.Errorf("latches = %v / %v", inner.Latches, outer.Latches)
	}
	if !reflect.DeepEqual(inner.Exits, []int{3}) || !reflect.DeepEqual(outer.Exits, []int{4}) {
		t.Errorf("exits = %v / %v", inner.Exits, outer.Exits)
	}
	depths := cfa.BlockDepths(g, loops)
	if !reflect.DeepEqual(depths, []int{0, 1, 2, 2, 1, 0}) {
		t.Errorf("block depths = %v", depths)
	}
}

func TestLoopsNoneInDiamond(t *testing.T) {
	g := diamond()
	if loops := cfa.Loops(g, cfa.Dominators(g)); len(loops) != 0 {
		t.Errorf("diamond has %d loops, want 0", len(loops))
	}
}

// Self-loop: 0 -> 1 -> {1, 2}.
func TestLoopsSelfLoop(t *testing.T) {
	g := cfa.NewGraph(0, [][]int{{1}, {1, 2}, nil})
	loops := cfa.Loops(g, cfa.Dominators(g))
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || !reflect.DeepEqual(l.Blocks, []int{1}) || !reflect.DeepEqual(l.Latches, []int{1}) {
		t.Errorf("self loop = %+v", l)
	}
}

func TestReachingDefsDiamond(t *testing.T) {
	g := diamond()
	// Var 0 defined in block 0 (def 0) and redefined in block 1 (def 1);
	// var 1 defined only in block 2 (def 2).
	defs := []cfa.Def{{Block: 0, Var: 0}, {Block: 1, Var: 0}, {Block: 2, Var: 1}}
	in, out := cfa.ReachingDefs(g, defs)
	// Merge block: def 0 survives via block 2's path, def 1 via block 1,
	// def 2 via block 2.
	for i := 0; i < 3; i++ {
		if !in[3].Has(i) {
			t.Errorf("def %d does not reach merge entry", i)
		}
	}
	// Block 1 kills def 0: its out contains def 1, not def 0.
	if out[1].Has(0) || !out[1].Has(1) {
		t.Errorf("block 1 out = {0:%v 1:%v}, want def 0 killed", out[1].Has(0), out[1].Has(1))
	}
	// Entry of block 1 sees only def 0.
	if !in[1].Has(0) || in[1].Has(1) || in[1].Has(2) {
		t.Errorf("block 1 in wrong")
	}
}

func TestReachingDefsIntraBlockKill(t *testing.T) {
	// Two defs of the same var in one block: only the later escapes.
	g := cfa.NewGraph(0, [][]int{{1}, nil})
	defs := []cfa.Def{{Block: 0, Var: 0}, {Block: 0, Var: 0}}
	_, out := cfa.ReachingDefs(g, defs)
	if out[0].Has(0) || !out[0].Has(1) {
		t.Errorf("intra-block kill broken: out = %v,%v", out[0].Has(0), out[0].Has(1))
	}
}

func TestLivenessLoop(t *testing.T) {
	// 0 -> 1 -> {1, 2}: var 0 defined in 0, used in 1; var 1 defined in 1
	// never used.
	g := cfa.NewGraph(0, [][]int{{1}, {1, 2}, nil})
	nv := 2
	use := []cfa.BitSet{cfa.NewBitSet(nv), cfa.NewBitSet(nv), cfa.NewBitSet(nv)}
	def := []cfa.BitSet{cfa.NewBitSet(nv), cfa.NewBitSet(nv), cfa.NewBitSet(nv)}
	def[0].Set(0)
	use[1].Set(0)
	def[1].Set(1)
	liveIn, liveOut := cfa.Liveness(g, use, def, nv)
	if !liveOut[0].Has(0) {
		t.Error("var 0 must be live out of its defining block")
	}
	if !liveIn[1].Has(0) || !liveOut[1].Has(0) {
		t.Error("loop-carried variable must be live around the loop")
	}
	if liveIn[0].Has(0) {
		t.Error("var 0 not live before its definition")
	}
	for b := 0; b < 3; b++ {
		if liveIn[b].Has(1) || liveOut[b].Has(1) {
			t.Errorf("dead var live at block %d", b)
		}
	}
}

func TestBitSetOps(t *testing.T) {
	b := cfa.NewBitSet(130)
	b.Set(0)
	b.Set(129)
	if !b.Has(0) || !b.Has(129) || b.Has(64) {
		t.Error("Set/Has broken")
	}
	if b.Count() != 2 {
		t.Errorf("Count = %d", b.Count())
	}
	c := b.Clone()
	c.Clear(129)
	if !b.Has(129) || c.Has(129) {
		t.Error("Clone/Clear broken")
	}
	if changed := c.OrWith(b); !changed || !c.Has(129) {
		t.Error("OrWith broken")
	}
	if changed := c.OrWith(b); changed {
		t.Error("OrWith reported change on no-op")
	}
}
