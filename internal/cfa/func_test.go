package cfa_test

import (
	"testing"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/lang"
)

func analyze(t *testing.T, src, fn string) *cfa.FuncAnalysis {
	t.Helper()
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	a := cfa.AnalyzeFunc(p, p.FuncNamed(fn))
	if a == nil {
		t.Fatalf("no analysis for %s", fn)
	}
	return a
}

// names maps induction-variable results to source names.
func inductionNames(a *cfa.FuncAnalysis) map[string]int {
	out := map[string]int{}
	for _, iv := range a.InductionVars() {
		name, _ := a.VarName(iv.Var)
		if d := iv.Loop.Depth; d > out[name] {
			out[name] = d
		}
	}
	return out
}

func TestInductionForLoop(t *testing.T) {
	a := analyze(t, `
func main() {
	var n = input(0);
	for (var i = 0; i < n; i++) {
		work(1);
	}
}`, "main")
	iv := inductionNames(a)
	if iv["i"] != 1 {
		t.Errorf("induction vars = %v, want i at depth 1", iv)
	}
	if _, ok := iv["n"]; ok {
		t.Error("loop bound n wrongly detected as induction variable")
	}
}

func TestInductionNestedLoops(t *testing.T) {
	a := analyze(t, `
func main() {
	var n = input(0);
	for (var i = 0; i < n; i++) {
		for (var j = 0; j < i; j++) {
			work(1);
		}
	}
}`, "main")
	iv := inductionNames(a)
	if iv["i"] != 1 || iv["j"] != 2 {
		t.Errorf("induction vars = %v, want i@1 j@2", iv)
	}
	if len(a.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(a.Loops))
	}
}

func TestInductionWhileShortCircuit(t *testing.T) {
	// Both operands of the && condition must count as condition reads,
	// even though short-circuiting splits them across basic blocks.
	a := analyze(t, `
func main() {
	var a = input(0);
	var b = input(1);
	while (a > 0 && b > 0) {
		a = a - 1;
		b = b - 2;
	}
}`, "main")
	iv := inductionNames(a)
	if iv["a"] != 1 || iv["b"] != 1 {
		t.Errorf("induction vars = %v, want a and b", iv)
	}
}

func TestInductionGlobal(t *testing.T) {
	a := analyze(t, `
var cursor;
func main() {
	var n = input(0);
	while (cursor < n) {
		cursor = cursor + 1;
	}
}`, "main")
	iv := inductionNames(a)
	if _, ok := iv["cursor"]; !ok {
		t.Errorf("global induction variable missed: %v", iv)
	}
}

func TestInductionInfiniteLoopWithBreak(t *testing.T) {
	// for(;;) with an if-break is IR-identical to a while loop: the break
	// condition is the loop's conditional exit, so its variable IS an
	// induction variable here — a strict improvement over the AST
	// heuristic, which sees no loop condition.
	a := analyze(t, `
func main() {
	var x = input(0);
	for (;;) {
		x = x - 1;
		if (x < 0) { break; }
	}
}`, "main")
	if iv := inductionNames(a); iv["x"] != 1 {
		t.Errorf("induction vars = %v, want x at depth 1", iv)
	}
	if len(a.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(a.Loops))
	}
}

func TestInductionPureInfiniteLoop(t *testing.T) {
	// A loop with no exit at all has no condition and no induction vars.
	a := analyze(t, `
func main() {
	var x = 0;
	for (;;) {
		x = x + 1;
		work(1);
	}
}`, "main")
	if iv := inductionNames(a); len(iv) != 0 {
		t.Errorf("exit-less loop produced induction vars %v", iv)
	}
}

func TestMaxAccessDepth(t *testing.T) {
	a := analyze(t, `
func main() {
	var n = input(0);
	var total = 0;
	for (var i = 0; i < n; i++) {
		for (var j = 0; j < i; j++) {
			total = total + 1;
		}
	}
	out(total);
}`, "main")
	find := func(name string) int {
		for slot, n := range a.Fn.SlotNames {
			if n == name {
				return slot
			}
		}
		t.Fatalf("no slot for %s", name)
		return -1
	}
	if d := a.MaxAccessDepth(find("total")); d != 2 {
		t.Errorf("total depth = %d, want 2", d)
	}
	if d := a.MaxAccessDepth(find("i")); d != 2 {
		// i is read in the inner loop's condition (j < i): depth 2.
		t.Errorf("i depth = %d, want 2", d)
	}
	if d := a.MaxAccessDepth(find("n")); d != 1 {
		t.Errorf("n depth = %d, want 1", d)
	}
}

func TestFuncLiveness(t *testing.T) {
	a := analyze(t, `
func main() {
	var n = input(0);
	var acc = 0;
	while (n > 0) {
		acc = acc + n;
		n = n - 1;
	}
	out(acc);
}`, "main")
	liveIn, _ := a.Liveness()
	// At the loop header (block containing the condition), both n and acc
	// are live.
	slot := func(name string) int {
		for s, sn := range a.Fn.SlotNames {
			if sn == name {
				return s
			}
		}
		return -1
	}
	header := -1
	for _, l := range a.Loops {
		header = l.Header
	}
	if header < 0 {
		t.Fatal("no loop found")
	}
	if !liveIn[header].Has(slot("n")) || !liveIn[header].Has(slot("acc")) {
		t.Error("loop-carried variables not live at header")
	}
}

func TestFuncReachingDefsConst(t *testing.T) {
	a := analyze(t, `
func main() {
	var k = 7;
	var x = input(0);
	x = x + k;
	out(x);
}`, "main")
	sites, _, out := a.ReachingDefs()
	// k has exactly one def, a constant 7; x has two defs, non-const.
	kConst, xDefs := 0, 0
	for _, s := range sites {
		name, _ := a.VarName(s.Var)
		switch name {
		case "k":
			if s.Const && s.Value == 7 {
				kConst++
			}
		case "x":
			xDefs++
		}
	}
	if kConst != 1 || xDefs != 2 {
		t.Errorf("kConst=%d xDefs=%d, want 1 and 2", kConst, xDefs)
	}
	if len(out) != len(a.Blocks) {
		t.Errorf("out sets = %d, want one per block", len(out))
	}
}
