package sketch_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vprof/internal/sketch"
	"vprof/internal/stats"
)

func TestBucketIdentityRange(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 7, 42, -99, 1 << 20, -(1 << 20), 1048575} {
		if got := sketch.Bucket(v); got != v {
			t.Errorf("Bucket(%v) = %v, want identity", v, got)
		}
	}
}

func TestBucketIdempotentAndMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []float64{1 << 21, -(1 << 21), 3.5e7, 1e12, -2.75e9, 1234567.89}
	for i := 0; i < 2000; i++ {
		vals = append(vals, (rng.Float64()-0.5)*math.Ldexp(1, rng.Intn(60)))
	}
	for _, v := range vals {
		b := sketch.Bucket(v)
		if bb := sketch.Bucket(b); bb != b {
			t.Fatalf("Bucket not idempotent: %v -> %v -> %v", v, b, bb)
		}
		// The representative stays within one sub-bucket (1/16 octave) of
		// the value.
		if v != 0 && math.Abs(b-v)/math.Abs(v) > 1.0/16 {
			t.Fatalf("Bucket(%v) = %v: relative error %v", v, b, math.Abs(b-v)/math.Abs(v))
		}
		if math.Signbit(b) != math.Signbit(v) && b != 0 {
			t.Fatalf("Bucket(%v) = %v: sign flipped", v, b)
		}
	}
	// Monotonic: bucketing preserves (non-strict) order.
	a, b := rng.Float64()*1e9, 0.0
	for i := 0; i < 2000; i++ {
		b = a + rng.Float64()*1e8
		if sketch.Bucket(a) > sketch.Bucket(b) {
			t.Fatalf("Bucket not monotonic: %v < %v but %v > %v", a, b, sketch.Bucket(a), sketch.Bucket(b))
		}
		a = b
	}
}

func TestBucketSpecials(t *testing.T) {
	if !math.IsNaN(sketch.Bucket(math.NaN())) {
		t.Error("NaN should pass through")
	}
	if !math.IsInf(sketch.Bucket(math.Inf(1)), 1) || !math.IsInf(sketch.Bucket(math.Inf(-1)), -1) {
		t.Error("Inf should pass through")
	}
}

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Small integral values (the exact range) with occasional runs,
		// like real tick-collapsed series.
		if i > 0 && rng.Intn(3) == 0 {
			out[i] = out[i-1]
		} else {
			out[i] = float64(rng.Intn(2000) - 300)
		}
	}
	return out
}

// TestHistMergeEqualsBatch: merging per-shard histograms equals bucketing
// the concatenated raw series — the core mergeability property.
func TestHistMergeEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := randSeries(rng, rng.Intn(40))
		b := randSeries(rng, rng.Intn(40))
		merged := sketch.MergeHist(sketch.HistOf(a), sketch.HistOf(b))
		batch := sketch.HistOf(append(append([]float64(nil), a...), b...))
		if !reflect.DeepEqual(merged, batch) {
			t.Fatalf("merge != batch:\nmerge %v\nbatch %v", merged, batch)
		}
	}
}

func TestHistMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 200; i++ {
		a := sketch.HistOf(randSeries(rng, rng.Intn(30)))
		b := sketch.HistOf(randSeries(rng, rng.Intn(30)))
		c := sketch.HistOf(randSeries(rng, rng.Intn(30)))
		ab_c := sketch.MergeHist(sketch.MergeHist(a, b), c)
		a_bc := sketch.MergeHist(a, sketch.MergeHist(b, c))
		if !reflect.DeepEqual(ab_c, a_bc) {
			t.Fatalf("merge not associative")
		}
		if !reflect.DeepEqual(sketch.MergeHist(a, b), sketch.MergeHist(b, a)) {
			t.Fatalf("merge not commutative")
		}
	}
}

func TestHistExpandSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 100; i++ {
		s := randSeries(rng, rng.Intn(50))
		h := sketch.HistOf(s)
		ex := h.Expand()
		if int64(len(ex)) != h.Total() || len(ex) != len(s) {
			t.Fatalf("Expand lost observations: %d vs %d", len(ex), len(s))
		}
		for j := 1; j < len(ex); j++ {
			if ex[j] < ex[j-1] {
				t.Fatal("Expand not sorted")
			}
		}
		// In the exact range, Expand reproduces the sorted multiset.
		want := append([]float64(nil), s...)
		for j := range want {
			want[j] = sketch.Bucket(want[j])
		}
		sortFloats(want)
		if len(ex) > 0 && !reflect.DeepEqual(ex, want) {
			t.Fatalf("Expand != sorted bucketed multiset")
		}
	}
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func mkVar(rng *rand.Rand, fn, name string, n int) sketch.VarSummary {
	series := randSeries(rng, n)
	vs := sketch.VarSummary{Func: fn, Name: name, Count: int64(len(series))}
	if len(series) > 0 {
		vs.Min, vs.Max, _ = stats.MinMax(series)
		for _, v := range series {
			vs.Sum += v
		}
	}
	vs.Values = sketch.HistOf(series)
	vs.Deltas = sketch.HistOf(stats.ChangeDeltas(series))
	runs := stats.RunLengths(series)
	vs.Runs = sketch.HistOf(runs)
	vs.NumRuns = int64(len(runs))
	_, vs.MaxRun, _ = stats.MinMax(runs)
	for i := 0; i < rng.Intn(5); i++ {
		vs.PCs = append(vs.PCs, int32(i*3+rng.Intn(2)))
	}
	dedupPCs(&vs)
	return vs
}

func dedupPCs(vs *sketch.VarSummary) {
	seen := map[int32]bool{}
	var out []int32
	for _, pc := range vs.PCs {
		if !seen[pc] {
			seen[pc] = true
			out = append(out, pc)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	vs.PCs = out
}

func mkProfile(rng *rand.Rand, nvars int) *sketch.Profile {
	p := &sketch.Profile{
		Interval:   37,
		TotalTicks: int64(rng.Intn(100000)),
		NumAlarms:  int64(rng.Intn(1000)),
		HistLen:    256,
		Hist:       map[int32]int64{},
		UnitsByPC:  map[int32]int64{},
	}
	for i := 0; i < rng.Intn(20); i++ {
		p.Hist[int32(rng.Intn(256))] += int64(rng.Intn(50) + 1)
	}
	for i := 0; i < rng.Intn(20); i++ {
		p.UnitsByPC[int32(rng.Intn(256))] += int64(rng.Intn(50) + 1)
	}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	funcs := []string{"f", "g", "h"}
	seen := map[string]bool{}
	for i := 0; i < nvars; i++ {
		fn := funcs[rng.Intn(len(funcs))]
		nm := names[rng.Intn(len(names))]
		if seen[fn+"\x00"+nm] {
			continue
		}
		seen[fn+"\x00"+nm] = true
		p.Vars = append(p.Vars, mkVar(rng, fn, nm, rng.Intn(30)))
	}
	sortVars(p)
	return p
}

func sortVars(p *sketch.Profile) {
	for i := 1; i < len(p.Vars); i++ {
		for j := i; j > 0 && p.Vars[j].Key() < p.Vars[j-1].Key(); j-- {
			p.Vars[j], p.Vars[j-1] = p.Vars[j-1], p.Vars[j]
		}
	}
}

func mergeOf(ps ...*sketch.Profile) *sketch.Profile {
	out := ps[0].Clone()
	for _, p := range ps[1:] {
		out.Merge(p)
	}
	return out
}

// TestProfileMergeAssociativeCommutative: (a+b)+c == a+(b+c) and a+b == b+a
// for full profile sketches, including the index-ordered variable lists.
func TestProfileMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 50; i++ {
		a, b, c := mkProfile(rng, 6), mkProfile(rng, 6), mkProfile(rng, 6)
		left := mergeOf(mergeOf(a, b), c)
		right := mergeOf(a, mergeOf(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("Profile.Merge not associative:\n%+v\n%+v", left, right)
		}
		ab, ba := mergeOf(a, b), mergeOf(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("Profile.Merge not commutative")
		}
		// Inputs must not be mutated by merging.
		if !reflect.DeepEqual(a, mkProfileClone(a)) {
			t.Fatal("Merge mutated an input via aliasing")
		}
	}
}

func mkProfileClone(p *sketch.Profile) *sketch.Profile { return p.Clone() }

func TestVarSummaryMergeMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 100; i++ {
		sa := randSeries(rng, rng.Intn(20))
		sb := randSeries(rng, rng.Intn(20))
		a := summaryOf(sa)
		b := summaryOf(sb)
		a.Merge(&b)
		both := append(append([]float64(nil), sa...), sb...)
		if a.Count != int64(len(both)) {
			t.Fatalf("Count %d != %d", a.Count, len(both))
		}
		if len(both) > 0 {
			lo, hi, _ := stats.MinMax(both)
			var sum float64
			for _, v := range both {
				sum += v
			}
			if a.Min != lo || a.Max != hi || a.Sum != sum {
				t.Fatalf("moments: got (%v,%v,%v) want (%v,%v,%v)", a.Min, a.Max, a.Sum, lo, hi, sum)
			}
		}
		if !reflect.DeepEqual(a.Values, sketch.HistOf(both)) {
			t.Fatal("merged Values != batch histogram")
		}
	}
}

func summaryOf(series []float64) sketch.VarSummary {
	vs := sketch.VarSummary{Func: "f", Name: "x", Count: int64(len(series))}
	if len(series) > 0 {
		vs.Min, vs.Max, _ = stats.MinMax(series)
		for _, v := range series {
			vs.Sum += v
		}
	}
	vs.Values = sketch.HistOf(series)
	vs.Deltas = sketch.HistOf(stats.ChangeDeltas(series))
	runs := stats.RunLengths(series)
	vs.Runs = sketch.HistOf(runs)
	vs.NumRuns = int64(len(runs))
	_, vs.MaxRun, _ = stats.MinMax(runs)
	return vs
}

func TestProfileVarLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := mkProfile(rng, 8)
	for i := range p.Vars {
		v := p.Var(p.Vars[i].Key())
		if v != &p.Vars[i] {
			t.Fatalf("Var(%q) lookup failed", p.Vars[i].Key())
		}
	}
	if p.Var("zzz\x00nope") != nil {
		t.Fatal("Var of unknown key should be nil")
	}
}
