// Package sketch provides mergeable per-variable summaries of value-assisted
// profiles: fixed-bucket value histograms, change-delta and run-length
// summaries, and count/sum/min/max moments, folded from a decoded profile
// once at ingest time. Sketches are the store's derived "summary section":
// diagnosing a new run against a stored baseline corpus reads only sketches
// (O(new runs)), never re-decoding old profile blobs, and sketch merge is
// associative, commutative and deterministic (fixed bucket boundaries,
// index-ordered variable lists), so a sharded store can combine partial
// sketches into one answer.
//
// Exactness: bucket boundaries are the identity for integral values with
// |v| <= 1<<20 — which covers run lengths, change deltas and the value
// ranges of the reproduced issues — so the analysis kernels in
// internal/analysis recompute the variable-discounter verdicts bit-for-bit
// from sketches in that range. Larger magnitudes collapse into logarithmic
// buckets (16 per octave); there the rank-identity goldens in
// internal/harness gate the diagnosis instead of byte-for-byte equality.
package sketch

import (
	"math"
	"sort"

	"vprof/internal/sampler"
	"vprof/internal/stats"
)

const (
	// exactMax bounds the identity range: integral values with magnitude
	// up to exactMax are their own bucket.
	exactMax = 1 << 20
	// subBuckets is the number of logarithmic buckets per power of two
	// outside the identity range (relative error <= 1/16).
	subBuckets = 16
)

// Bucket maps a value to its fixed bucket representative. The mapping is
// idempotent (Bucket(Bucket(v)) == Bucket(v)) and sign-symmetric; Inf and
// NaN pass through untouched (the codec rejects NaN at decode time).
func Bucket(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	a := math.Abs(v)
	if a <= exactMax && a == math.Trunc(a) {
		return v
	}
	frac, exp := math.Frexp(a) // a = frac * 2^exp, frac in [0.5, 1)
	k := int((frac*2 - 1) * subBuckets)
	if k < 0 {
		k = 0
	} else if k >= subBuckets {
		k = subBuckets - 1
	}
	rep := math.Ldexp(1+float64(k)/subBuckets, exp-1)
	if v < 0 {
		rep = -rep
	}
	return rep
}

// Hist is a fixed-bucket histogram: bucket representative -> observation
// count. The zero value (nil) is an empty histogram; Observe requires a
// non-nil map.
type Hist map[float64]int64

// Observe adds one observation of v to its bucket.
func (h Hist) Observe(v float64) { h[Bucket(v)]++ }

// Total returns the number of observations.
func (h Hist) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// Max returns the largest bucket representative; ok is false when empty.
func (h Hist) Max() (v float64, ok bool) {
	for k := range h {
		if !ok || k > v {
			v, ok = k, true
		}
	}
	return v, ok
}

// Keys returns the bucket representatives in ascending order.
func (h Hist) Keys() []float64 {
	out := make([]float64, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

// Expand reconstructs the bucketed observation multiset as an ascending
// series (each representative repeated by its count). The analysis kernels
// feed these to the order-invariant Anderson-Darling and Hellinger tests.
func (h Hist) Expand() []float64 {
	out := make([]float64, 0, h.Total())
	for _, k := range h.Keys() {
		for i := int64(0); i < h[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}

// Clone returns a deep copy (nil stays nil).
func (h Hist) Clone() Hist {
	if h == nil {
		return nil
	}
	out := make(Hist, len(h))
	for k, c := range h {
		out[k] = c
	}
	return out
}

// MergeHist returns the bucket-wise sum of two histograms. Either argument
// may be nil; the inputs are not mutated.
func MergeHist(a, b Hist) Hist {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(Hist, len(a)+len(b))
	for k, c := range a {
		out[k] += c
	}
	for k, c := range b {
		out[k] += c
	}
	return out
}

// HistOf buckets a raw series into a histogram (nil for an empty series).
func HistOf(series []float64) Hist {
	if len(series) == 0 {
		return nil
	}
	h := make(Hist)
	for _, v := range series {
		h.Observe(v)
	}
	return h
}

// VarSummary is the mergeable summary of one monitored variable in one (or
// a merged set of) profiled executions: the three discounter dimensions as
// histograms plus the plain moments.
type VarSummary struct {
	Func      string
	Name      string
	IsPointer bool

	// Count is the number of tick-collapsed observations (== Values
	// total); NumRuns the number of equal-value runs (== Runs total).
	Count   int64
	NumRuns int64
	// MaxRun is the longest equal-value run; Min/Max/Sum are exact
	// moments of the raw (unbucketed) observations, valid when Count > 0.
	MaxRun float64
	Min    float64
	Max    float64
	Sum    float64

	// Values, Deltas and Runs are the per-dimension histograms: the
	// tick-collapsed value series, its change deltas
	// (stats.ChangeDeltas), and its equal-value run lengths
	// (stats.RunLengths), all computed from the ordered series at fold
	// time and then bucketed.
	Values Hist
	Deltas Hist
	Runs   Hist

	// PCs are the distinct PCs at which the variable was sampled,
	// ascending (globals attribute to the functions containing them).
	PCs []int32
}

// Key returns the variable's identity ("func\x00name"), the sort key of
// Profile.Vars.
func (v *VarSummary) Key() string { return v.Func + "\x00" + v.Name }

// Merge folds other into v (same variable; callers must not merge summaries
// with different keys). Counts add, extrema combine, histograms sum, PC
// sets union.
func (v *VarSummary) Merge(other *VarSummary) {
	if other.Count > 0 {
		if v.Count == 0 || other.Min < v.Min {
			v.Min = other.Min
		}
		if v.Count == 0 || other.Max > v.Max {
			v.Max = other.Max
		}
	}
	v.Count += other.Count
	v.NumRuns += other.NumRuns
	v.Sum += other.Sum
	if other.MaxRun > v.MaxRun {
		v.MaxRun = other.MaxRun
	}
	v.IsPointer = v.IsPointer || other.IsPointer
	v.Values = MergeHist(v.Values, other.Values)
	v.Deltas = MergeHist(v.Deltas, other.Deltas)
	v.Runs = MergeHist(v.Runs, other.Runs)
	v.PCs = unionPCs(v.PCs, other.PCs)
}

func unionPCs(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Profile is the mergeable sketch of one profiled execution (or, after
// Merge, of several tick-disjoint executions summed — the corpus view a
// shard returns). It carries everything the analysis kernels need: the
// sparse PC histogram, per-PC value-sample units, and per-variable
// summaries, index-ordered by variable key.
type Profile struct {
	// BlobID is the content address of the profile blob the sketch was
	// folded from ("" for merged sketches).
	BlobID string

	Interval   int64
	TotalTicks int64
	NumAlarms  int64
	// HistLen is the PC-histogram length of the source profile (PCs in
	// Hist and UnitsByPC are < HistLen).
	HistLen int64

	// Hist is the sparse PC-sample histogram (zero counts omitted).
	Hist map[int32]int64
	// UnitsByPC counts distinct (tick, pc) value-sample units per PC:
	// summing over a function's PCs reproduces
	// sampler.Profile.FuncValueSampleUnits exactly.
	UnitsByPC map[int32]int64

	// Vars is sorted ascending by VarSummary.Key.
	Vars []VarSummary
}

// FromProfile folds a decoded profile into its sketch. The fold is
// deterministic: variable grouping, tick collapsing and dimension series
// mirror the analysis package's per-variable pipeline exactly.
func FromProfile(p *sampler.Profile) *Profile {
	s := &Profile{
		Interval:   p.Interval,
		TotalTicks: p.TotalTicks,
		NumAlarms:  p.NumAlarms,
		HistLen:    int64(len(p.Hist)),
		Hist:       make(map[int32]int64),
		UnitsByPC:  make(map[int32]int64),
	}
	for pc, n := range p.Hist {
		if n != 0 {
			s.Hist[int32(pc)] = n
		}
	}
	type unit struct {
		tick int64
		pc   int32
	}
	seen := make(map[unit]bool, len(p.Samples))
	for _, smp := range p.Samples {
		u := unit{smp.Tick, smp.PC}
		if !seen[u] {
			seen[u] = true
			s.UnitsByPC[smp.PC]++
		}
	}

	// Group samples by variable with the analysis package's first-layout-
	// index dedup, then summarize each group's tick-collapsed series.
	first := make(map[string]int32, len(p.Layout))
	order := make([]string, 0, len(p.Layout))
	for i, l := range p.Layout {
		key := l.Func + "\x00" + l.Name
		if _, ok := first[key]; !ok {
			first[key] = int32(i)
			order = append(order, key)
		}
	}
	sort.Strings(order)
	byLayout := make([][]sampler.Sample, len(p.Layout))
	for _, smp := range p.Samples {
		if smp.Layout >= 0 && int(smp.Layout) < len(byLayout) {
			byLayout[smp.Layout] = append(byLayout[smp.Layout], smp)
		}
	}
	s.Vars = make([]VarSummary, 0, len(order))
	for _, key := range order {
		li := first[key]
		l := p.Layout[li]
		s.Vars = append(s.Vars, summarizeVar(l, byLayout[li]))
	}
	return s
}

// summarizeVar folds one variable's samples (recording order) into its
// summary.
func summarizeVar(l sampler.LayoutEntry, samples []sampler.Sample) VarSummary {
	vs := VarSummary{Func: l.Func, Name: l.Name, IsPointer: l.IsPointer}

	// Tick-collapse: one observation per alarm tick (first sample wins),
	// exactly like the analysis package's tickSeries.
	var series []float64
	var lastTick int64 = -1
	pcSet := map[int32]bool{}
	for _, smp := range samples {
		pcSet[smp.PC] = true
		if smp.Tick == lastTick {
			continue
		}
		lastTick = smp.Tick
		series = append(series, float64(smp.Value))
	}
	vs.Count = int64(len(series))
	if len(series) > 0 {
		vs.Min, vs.Max, _ = stats.MinMax(series)
		for _, v := range series {
			vs.Sum += v
		}
	}
	vs.Values = HistOf(series)
	vs.Deltas = HistOf(stats.ChangeDeltas(series))
	runs := stats.RunLengths(series)
	vs.Runs = HistOf(runs)
	vs.NumRuns = int64(len(runs))
	_, vs.MaxRun, _ = stats.MinMax(runs)
	if len(pcSet) > 0 {
		vs.PCs = make([]int32, 0, len(pcSet))
		for pc := range pcSet {
			vs.PCs = append(vs.PCs, pc)
		}
		sort.Slice(vs.PCs, func(i, j int) bool { return vs.PCs[i] < vs.PCs[j] })
	}
	return vs
}

// Var returns the summary for a variable key ("func\x00name"), or nil.
func (s *Profile) Var(key string) *VarSummary {
	i := sort.Search(len(s.Vars), func(i int) bool { return s.Vars[i].Key() >= key })
	if i < len(s.Vars) && s.Vars[i].Key() == key {
		return &s.Vars[i]
	}
	return nil
}

// Clone returns a deep copy of the sketch.
func (s *Profile) Clone() *Profile {
	out := &Profile{
		BlobID:     s.BlobID,
		Interval:   s.Interval,
		TotalTicks: s.TotalTicks,
		NumAlarms:  s.NumAlarms,
		HistLen:    s.HistLen,
		Hist:       make(map[int32]int64, len(s.Hist)),
		UnitsByPC:  make(map[int32]int64, len(s.UnitsByPC)),
		Vars:       make([]VarSummary, len(s.Vars)),
	}
	for pc, n := range s.Hist {
		out.Hist[pc] = n
	}
	for pc, n := range s.UnitsByPC {
		out.UnitsByPC[pc] = n
	}
	for i := range s.Vars {
		v := s.Vars[i]
		v.Values = v.Values.Clone()
		v.Deltas = v.Deltas.Clone()
		v.Runs = v.Runs.Clone()
		v.PCs = append([]int32(nil), v.PCs...)
		out.Vars[i] = v
	}
	return out
}

// Merge folds other into s: counts sum and variable lists merge-join in key
// order, so the operation is associative, commutative (up to the symmetric
// BlobID/Interval carry-over below) and deterministic. Merging models
// summing tick-disjoint executions (shards of one corpus); both sketches
// should share Interval — the receiver's is kept, or adopted when the
// receiver is empty.
func (s *Profile) Merge(other *Profile) {
	if s.Interval == 0 {
		s.Interval = other.Interval
	}
	s.BlobID = "" // merged sketches no longer address a single blob
	s.TotalTicks += other.TotalTicks
	s.NumAlarms += other.NumAlarms
	if other.HistLen > s.HistLen {
		s.HistLen = other.HistLen
	}
	if s.Hist == nil {
		s.Hist = make(map[int32]int64, len(other.Hist))
	}
	for pc, n := range other.Hist {
		s.Hist[pc] += n
	}
	if s.UnitsByPC == nil {
		s.UnitsByPC = make(map[int32]int64, len(other.UnitsByPC))
	}
	for pc, n := range other.UnitsByPC {
		s.UnitsByPC[pc] += n
	}

	merged := make([]VarSummary, 0, len(s.Vars)+len(other.Vars))
	i, j := 0, 0
	for i < len(s.Vars) && j < len(other.Vars) {
		a, b := &s.Vars[i], &other.Vars[j]
		ak, bk := a.Key(), b.Key()
		switch {
		case ak < bk:
			merged = append(merged, *a)
			i++
		case ak > bk:
			merged = append(merged, cloneVar(b))
			j++
		default:
			// VarSummary.Merge builds fresh histograms and PC slices, so
			// the copied struct never aliases other's maps.
			v := *a
			v.Merge(b)
			merged = append(merged, v)
			i++
			j++
		}
	}
	merged = append(merged, s.Vars[i:]...)
	for ; j < len(other.Vars); j++ {
		merged = append(merged, cloneVar(&other.Vars[j]))
	}
	s.Vars = merged
}

func cloneVar(v *VarSummary) VarSummary {
	out := *v
	out.Values = v.Values.Clone()
	out.Deltas = v.Deltas.Clone()
	out.Runs = v.Runs.Clone()
	out.PCs = append([]int32(nil), v.PCs...)
	return out
}
