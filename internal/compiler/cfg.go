package compiler

import "vprof/internal/debuginfo"

// BlockSuccessors returns f's basic blocks (as recorded in the debug
// information) together with, for each block, the indices of its successor
// blocks within f. This is the raw material for control-flow analyses
// (package cfa): a block's successors are derived from its terminator —
// jump targets, the fall-through block after a conditional jump, nothing
// after a return or halt. Control transfers leaving the function's PC range
// produce no edge.
func (p *Program) BlockSuccessors(f *FuncInfo) ([]debuginfo.BlockRange, [][]int) {
	fr := p.Debug.FuncNamed(f.Name)
	if fr == nil || len(fr.Blocks) == 0 {
		return nil, nil
	}
	blocks := fr.Blocks
	// Block index by start PC for terminator-target resolution.
	blockAt := func(pc int) int {
		for i := range blocks {
			if pc >= blocks[i].Start && pc < blocks[i].End {
				return i
			}
		}
		return -1
	}
	succs := make([][]int, len(blocks))
	for i := range blocks {
		last := p.Instrs[blocks[i].End-1]
		add := func(pc int) {
			if t := blockAt(pc); t >= 0 {
				for _, s := range succs[i] {
					if s == t {
						return
					}
				}
				succs[i] = append(succs[i], t)
			}
		}
		switch last.Op {
		case OpJump:
			add(int(last.A))
		case OpJZ, OpJNZ:
			add(blocks[i].End) // fall through
			add(int(last.A))
		case OpRet, OpHalt:
			// no successors
		default:
			add(blocks[i].End)
		}
	}
	return blocks, succs
}
