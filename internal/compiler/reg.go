package compiler

// Register-based IR: a second, faster encoding of a compiled Program,
// produced by CompileRegister and executed by the vm package's register
// engine. The stack-machine IR (Instrs) stays the source of truth for
// debug info, static analysis, and the tree-walking engine; this file
// lowers it to register operations with superinstruction fusion while
// preserving the tick-for-tick observable semantics the tree walker
// defines.
//
// The determinism contract both engines satisfy (see DESIGN.md §11):
//
//   - Every stack instruction costs exactly one tick (OpCall two), charged
//     in program order, with budget prechecks at each instruction start.
//   - Alarm callbacks observe the VM paused at the *stack* PC whose tick
//     crossed the alarm boundary, with named frame slots and globals
//     exactly as the tree walker would show them at that instant.
//
// To honor that contract each RegOp carries PCs, its constituent tick
// schedule: one entry per stack-IR tick it accounts for, in program order.
// An entry e >= 0 is an instruction-start tick at stack pc e (budget
// precheck + InstrCount increment before the charge); an entry e < 0 is a
// continuation tick at stack pc ^e (OpCall's second tick, charged with no
// precheck). The engine batches the whole schedule into one addition when
// no scaling hook is active and no alarm or budget boundary falls inside
// it, and replays it tick by tick otherwise.
//
// Register file layout (per frame, offsets from the frame base):
//
//   [0, NumSlots)            named slots, identical to tree-walker frames;
//                            this range is what FrameView.Slot exposes.
//   NumSlots + d             the canonical register for operand-stack
//                            depth d. At block boundaries every live stack
//                            value is materialized into its canonical
//                            register, making merge points trivially
//                            consistent.
//
// Within a block the compiler runs an abstract interpretation of the
// operand stack: each entry is either canonical or an alias of a slot, a
// global, or a constant. Aliasing gives copy propagation for free — loads
// and constants usually emit no code, only deferring their tick into the
// next emitted op's schedule. Aliases are invalidated (materialized) when
// their source may change: slot aliases before a store to that slot,
// global aliases before a store to that global and before any call.
//
// Fusion safety rules:
//
//   - At most one observable effect (slot/global write, output, branch,
//     builtin side effect) per RegOp, applied after all its ticks are
//     charged — mirroring the tree walker, where an instruction's effect
//     follows its charge.
//   - Trapping ops (div/mod) terminate a fusion group: nothing may charge
//     after a tick whose instruction can trap, so a following store is
//     emitted as a separate move.

import (
	"fmt"
	"sort"

	"vprof/internal/lang"
)

// RegCode is a register-IR opcode.
type RegCode uint8

// Register opcodes. R[i] denotes the frame-relative register file.
const (
	RNop    RegCode = iota
	RMove           // R[A] = R[B]
	RConst          // R[A] = Imm
	RLoadG          // R[A] = globals[B]
	RStoreG         // globals[A] = R[B] (B < 0: Imm)
	RBin            // R[A] = R[B] <binop D> R[C]
	RBinI           // R[A] = R[B] <binop D> Imm
	RUn             // R[A] = <unop D> R[B]
	RJump           // rpc = A
	RBrZ            // if R[B] is zero: rpc = A (B < 0: test Imm)
	RBrNZ           // if R[B] is nonzero: rpc = A (B < 0: test Imm)
	RBrCmp          // if (R[B] <cmp D&0xffff> R[C]) != (D>>16 != 0): rpc = A
	RBrCmpI         // same with Imm as the right operand
	RCall           // call Funcs[A] with Args; result in R[D]
	RRet            // return R[A] (A < 0: Imm)
	RHalt           // stop the process
	RWork           // R[A] = work(src B/Imm)
	RBlockB         // R[A] = block(src B/Imm)
	RRand           // R[A] = rand(src B/Imm)
	RInput          // R[A] = input(src B/Imm)
	RNow            // R[A] = now()
	RAlloc          // R[A] = alloc()
	ROut            // R[A] = out(src B/Imm)
	RAbs            // R[A] = abs(src B/Imm)
	RMin            // R[A] = min(src B/Imm, src C/Imm)
	RMax            // R[A] = max(src B/Imm, src C/Imm)
	RSpawn          // R[A] = spawn(Args...)
)

var regNames = [...]string{
	"nop", "move", "const", "loadg", "storeg", "bin", "bini", "un",
	"jump", "brz", "brnz", "brcmp", "brcmpi", "call", "ret", "halt",
	"work", "block", "rand", "input", "now", "alloc", "out", "abs",
	"min", "max", "spawn",
}

func (c RegCode) String() string {
	if int(c) < len(regNames) {
		return regNames[c]
	}
	return fmt.Sprintf("rop(%d)", int(c))
}

// RegOp is one register instruction plus its constituent tick schedule.
type RegOp struct {
	Code       RegCode
	A, B, C, D int32
	Imm        int64
	// XPC is the stack PC reported for this op's observable event: the
	// trap PC for div/mod, the branch PC for OnBranch, the call PC for
	// frame RetPC, the callb PC the VM is paused at while work/block
	// charge. -1 when the op has no such event.
	XPC int32
	// Cost is the total tick cost (== len(PCs)); N is the InstrCount
	// delta (the number of instruction-start entries in PCs).
	Cost, N int32
	// PCs is the tick schedule; see the package comment.
	PCs []int32
	// Args lists call/spawn argument sources: an entry a >= 0 is caller
	// register a, a < 0 is the constant RegProgram.Consts[^a].
	Args []int32
}

// RegFunc is the register code for one function.
type RegFunc struct {
	// Code holds the function's register ops; execution enters at 0.
	Code []RegOp
	// NumSlots mirrors FuncInfo.NumSlots (the FrameView-visible range).
	NumSlots int32
	// FrameSize is the per-frame register count: NumSlots plus the
	// maximum operand-stack depth. A callee's frame base is its caller's
	// base plus the caller's FrameSize.
	FrameSize int32
}

// RegProgram is the register-IR lowering of a Program.
type RegProgram struct {
	Prog *Program
	// Funcs is parallel to Prog.Funcs.
	Funcs []RegFunc
	// Consts is the immediate pool referenced by negative Args entries.
	Consts []int64
}

// CompileRegister lowers a compiled program to register IR. It fails only
// on internal inconsistencies (e.g. unbalanced stack depths), which would
// indicate a compiler bug; callers should treat an error as fatal rather
// than falling back silently.
func CompileRegister(p *Program) (*RegProgram, error) {
	rc := &regCompiler{p: p, constIx: map[int64]int32{}}
	rp := &RegProgram{Prog: p, Funcs: make([]RegFunc, len(p.Funcs))}
	for i, f := range p.Funcs {
		rf, err := rc.compileFunc(f)
		if err != nil {
			return nil, fmt.Errorf("regcompile %s: %w", f.Name, err)
		}
		rp.Funcs[i] = rf
	}
	rp.Consts = rc.consts
	return rp, nil
}

// regCompiler holds program-level lowering state (the immediate pool).
type regCompiler struct {
	p       *Program
	consts  []int64
	constIx map[int64]int32
}

func (rc *regCompiler) constRef(v int64) int32 {
	if i, ok := rc.constIx[v]; ok {
		return ^i
	}
	i := int32(len(rc.consts))
	rc.consts = append(rc.consts, v)
	rc.constIx[v] = i
	return ^i
}

// absKind classifies an abstract operand-stack entry.
type absKind uint8

const (
	aCanon absKind = iota // value is in the canonical register for its depth
	aSlot                 // value equals slots[idx]
	aGlob                 // value equals globals[idx]
	aConst                // value is the constant c
)

type absEntry struct {
	kind absKind
	idx  int32
	c    int64
}

// regFn compiles one function.
type regFn struct {
	*regCompiler
	fn      *FuncInfo
	leaders map[int]bool
	depthAt map[int]int
	reach   map[int]bool

	code    []RegOp
	blockIx map[int]int
	fixups  []int

	stack   []absEntry
	pending []int32
	maxObs  int
}

func (rc *regCompiler) compileFunc(f *FuncInfo) (RegFunc, error) {
	fc := &regFn{
		regCompiler: rc,
		fn:          f,
		leaders:     map[int]bool{},
		depthAt:     map[int]int{},
		blockIx:     map[int]int{},
	}
	fc.scanLeaders()
	if err := fc.scanDepths(); err != nil {
		return RegFunc{}, err
	}
	var starts []int
	for pc := range fc.reach {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	for _, start := range starts {
		fc.blockIx[start] = len(fc.code)
		if err := fc.emitBlock(start); err != nil {
			return RegFunc{}, err
		}
	}
	for _, ix := range fc.fixups {
		target := int(fc.code[ix].A)
		bi, ok := fc.blockIx[target]
		if !ok {
			return RegFunc{}, fmt.Errorf("jump to unreachable pc %d", target)
		}
		fc.code[ix].A = int32(bi)
	}
	return RegFunc{
		Code:      fc.code,
		NumSlots:  int32(f.NumSlots),
		FrameSize: int32(f.NumSlots + fc.maxObs),
	}, nil
}

func (fc *regFn) scanLeaders() {
	f := fc.fn
	fc.leaders[f.Entry] = true
	for pc := f.Entry; pc < f.End; pc++ {
		switch ins := fc.p.Instrs[pc]; ins.Op {
		case OpJump, OpJZ, OpJNZ:
			fc.leaders[int(ins.A)] = true
			if pc+1 < f.End {
				fc.leaders[pc+1] = true
			}
		case OpRet, OpHalt:
			if pc+1 < f.End {
				fc.leaders[pc+1] = true
			}
		}
	}
}

// scanDepths propagates operand-stack entry depths to every reachable
// block. Single-pass stack codegen guarantees consistency; a mismatch is
// an internal error.
func (fc *regFn) scanDepths() error {
	f := fc.fn
	fc.depthAt[f.Entry] = 0
	fc.reach = map[int]bool{}
	work := []int{f.Entry}
	flow := func(target, d int) error {
		if od, ok := fc.depthAt[target]; ok {
			if od != d {
				return fmt.Errorf("inconsistent stack depth at pc %d: %d vs %d", target, od, d)
			}
		} else {
			fc.depthAt[target] = d
		}
		work = append(work, target)
		return nil
	}
	for len(work) > 0 {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		if fc.reach[start] {
			continue
		}
		fc.reach[start] = true
		d := fc.depthAt[start]
		pc := start
	block:
		for pc < f.End {
			if pc != start && fc.leaders[pc] {
				if err := flow(pc, d); err != nil {
					return err
				}
				break
			}
			ins := fc.p.Instrs[pc]
			switch ins.Op {
			case OpConst, OpLoadG, OpLoadL:
				d++
			case OpStoreG, OpStoreL, OpPop, OpBin:
				d--
			case OpUn:
			case OpCall, OpCallB:
				d += 1 - int(ins.B)
			case OpJump:
				if err := flow(int(ins.A), d); err != nil {
					return err
				}
				break block
			case OpJZ, OpJNZ:
				d--
				if err := flow(int(ins.A), d); err != nil {
					return err
				}
				if err := flow(pc+1, d); err != nil {
					return err
				}
				break block
			case OpRet, OpHalt:
				break block
			default:
				return fmt.Errorf("unknown opcode %v at pc %d", ins.Op, pc)
			}
			if d < 0 {
				return fmt.Errorf("stack underflow at pc %d", pc)
			}
			pc++
		}
	}
	return nil
}

func (fc *regFn) canonReg(pos int) int32 { return int32(fc.fn.NumSlots + pos) }

func (fc *regFn) push(e absEntry) {
	fc.stack = append(fc.stack, e)
	if len(fc.stack) > fc.maxObs {
		fc.maxObs = len(fc.stack)
	}
}

func (fc *regFn) pop() absEntry {
	e := fc.stack[len(fc.stack)-1]
	fc.stack = fc.stack[:len(fc.stack)-1]
	return e
}

func (fc *regFn) pend(pc int) { fc.pending = append(fc.pending, int32(pc)) }

// out emits op with a tick schedule of the deferred pending ticks followed
// by pcs.
func (fc *regFn) out(op RegOp, pcs ...int32) {
	if n := len(fc.pending) + len(pcs); n > 0 {
		all := make([]int32, 0, n)
		all = append(all, fc.pending...)
		all = append(all, pcs...)
		op.PCs = all
		op.Cost = int32(n)
		for _, e := range all {
			if e >= 0 {
				op.N++
			}
		}
	}
	fc.pending = fc.pending[:0]
	fc.code = append(fc.code, op)
}

// branchOut emits a control-transfer op whose A field holds a stack-PC
// target to be fixed up once all blocks are placed.
func (fc *regFn) branchOut(op RegOp, targetPC int, pcs ...int32) {
	op.A = int32(targetPC)
	fc.out(op, pcs...)
	fc.fixups = append(fc.fixups, len(fc.code)-1)
}

// matAt materializes stack entry i into its canonical register.
func (fc *regFn) matAt(i int) {
	e := fc.stack[i]
	if e.kind == aCanon {
		return
	}
	dst := fc.canonReg(i)
	switch e.kind {
	case aSlot:
		fc.out(RegOp{Code: RMove, A: dst, B: e.idx, XPC: -1})
	case aGlob:
		fc.out(RegOp{Code: RLoadG, A: dst, B: e.idx, XPC: -1})
	case aConst:
		fc.out(RegOp{Code: RConst, A: dst, Imm: e.c, XPC: -1})
	}
	fc.stack[i] = absEntry{kind: aCanon}
}

func (fc *regFn) matAll() {
	for i := range fc.stack {
		fc.matAt(i)
	}
}

func (fc *regFn) invalidateSlot(s int32) {
	for i, e := range fc.stack {
		if e.kind == aSlot && e.idx == s {
			fc.matAt(i)
		}
	}
}

func (fc *regFn) invalidateGlob(g int32) {
	for i, e := range fc.stack {
		if e.kind == aGlob && e.idx == g {
			fc.matAt(i)
		}
	}
}

// entryReg returns a register holding e (a popped entry whose stack
// position was pos), materializing globals/constants into the scratch
// canonical register for pos when necessary.
func (fc *regFn) entryReg(e absEntry, pos int) int32 {
	switch e.kind {
	case aCanon:
		return fc.canonReg(pos)
	case aSlot:
		return e.idx
	case aGlob:
		dst := fc.canonReg(pos)
		fc.out(RegOp{Code: RLoadG, A: dst, B: e.idx, XPC: -1})
		return dst
	default: // aConst
		dst := fc.canonReg(pos)
		fc.out(RegOp{Code: RConst, A: dst, Imm: e.c, XPC: -1})
		return dst
	}
}

// srcOperand encodes e as a (register, immediate) operand pair: reg < 0
// means "use imm".
func (fc *regFn) srcOperand(e absEntry, pos int) (reg int32, imm int64) {
	if e.kind == aConst {
		return -1, e.c
	}
	return fc.entryReg(e, pos), 0
}

func isCmpOp(op lang.BinaryOp) bool { return op >= lang.BinEq && op <= lang.BinGe }

// emitBlock lowers the block starting at stack pc start.
func (fc *regFn) emitBlock(start int) error {
	d := fc.depthAt[start]
	fc.stack = fc.stack[:0]
	for i := 0; i < d; i++ {
		fc.stack = append(fc.stack, absEntry{kind: aCanon})
	}
	if d > fc.maxObs {
		fc.maxObs = d
	}
	fc.pending = fc.pending[:0]
	end := fc.fn.End
	pc := start
	for pc < end {
		if pc != start && fc.leaders[pc] {
			// Fallthrough boundary: blocks are emitted in pc order, so
			// the successor is next; only deferred ticks force a jump.
			fc.matAll()
			if len(fc.pending) > 0 {
				fc.branchOut(RegOp{Code: RJump, XPC: -1}, pc)
			}
			return nil
		}
		ins := fc.p.Instrs[pc]
		var next Instr
		haveNext := pc+1 < end && !fc.leaders[pc+1]
		if haveNext {
			next = fc.p.Instrs[pc+1]
		}
		switch ins.Op {
		case OpConst:
			fc.push(absEntry{kind: aConst, c: fc.p.Consts[ins.A]})
			fc.pend(pc)
			pc++
		case OpLoadG:
			fc.push(absEntry{kind: aGlob, idx: ins.A})
			fc.pend(pc)
			pc++
		case OpLoadL:
			fc.push(absEntry{kind: aSlot, idx: ins.A})
			fc.pend(pc)
			pc++
		case OpStoreL:
			e := fc.pop()
			fc.invalidateSlot(ins.A)
			pos := len(fc.stack)
			op := RegOp{A: ins.A, XPC: -1}
			switch e.kind {
			case aCanon:
				op.Code, op.B = RMove, fc.canonReg(pos)
			case aSlot:
				op.Code, op.B = RMove, e.idx
			case aGlob:
				op.Code, op.B = RLoadG, e.idx
			case aConst:
				op.Code, op.Imm = RConst, e.c
			}
			fc.out(op, int32(pc))
			pc++
		case OpStoreG:
			e := fc.pop()
			fc.invalidateGlob(ins.A)
			pos := len(fc.stack)
			op := RegOp{Code: RStoreG, A: ins.A, XPC: -1}
			op.B, op.Imm = fc.srcOperand(e, pos)
			fc.out(op, int32(pc))
			pc++
		case OpBin:
			bop := lang.BinaryOp(ins.A)
			y := fc.pop()
			x := fc.pop()
			xpos, ypos := len(fc.stack), len(fc.stack)+1
			trapping := bop == lang.BinDiv || bop == lang.BinMod
			if isCmpOp(bop) && haveNext && (next.Op == OpJZ || next.Op == OpJNZ) {
				// Fused compare-branch; ends the block.
				fc.matAll()
				xr := fc.entryReg(x, xpos)
				dd := ins.A
				if next.Op == OpJZ {
					dd |= 1 << 16
				}
				op := RegOp{B: xr, D: dd, XPC: int32(pc + 1)}
				if y.kind == aConst {
					op.Code, op.Imm = RBrCmpI, y.c
				} else {
					op.Code, op.C = RBrCmp, fc.entryReg(y, ypos)
				}
				fc.branchOut(op, int(next.A), int32(pc), int32(pc+1))
				return nil
			}
			if !trapping && haveNext && next.Op == OpStoreL {
				// Fused arith-store: the bin result lands directly in
				// the named slot. Trapping ops are excluded — the store
				// tick must not be charged before a trap.
				fc.invalidateSlot(next.A)
				xr := fc.entryReg(x, xpos)
				op := RegOp{A: next.A, B: xr, D: ins.A, XPC: -1}
				if y.kind == aConst {
					op.Code, op.Imm = RBinI, y.c
				} else {
					op.Code, op.C = RBin, fc.entryReg(y, ypos)
				}
				fc.out(op, int32(pc), int32(pc+1))
				pc += 2
				continue
			}
			xr := fc.entryReg(x, xpos)
			op := RegOp{A: fc.canonReg(xpos), B: xr, D: ins.A, XPC: -1}
			if trapping {
				op.XPC = int32(pc)
			}
			if y.kind == aConst {
				op.Code, op.Imm = RBinI, y.c
			} else {
				op.Code, op.C = RBin, fc.entryReg(y, ypos)
			}
			fc.out(op, int32(pc))
			fc.push(absEntry{kind: aCanon})
			pc++
		case OpUn:
			x := fc.pop()
			xpos := len(fc.stack)
			if haveNext && next.Op == OpStoreL {
				fc.invalidateSlot(next.A)
				xr := fc.entryReg(x, xpos)
				fc.out(RegOp{Code: RUn, A: next.A, B: xr, D: ins.A, XPC: -1}, int32(pc), int32(pc+1))
				pc += 2
				continue
			}
			xr := fc.entryReg(x, xpos)
			fc.out(RegOp{Code: RUn, A: fc.canonReg(xpos), B: xr, D: ins.A, XPC: -1}, int32(pc))
			fc.push(absEntry{kind: aCanon})
			pc++
		case OpJump:
			fc.matAll()
			fc.branchOut(RegOp{Code: RJump, XPC: -1}, int(ins.A), int32(pc))
			return nil
		case OpJZ, OpJNZ:
			e := fc.pop()
			fc.matAll()
			pos := len(fc.stack)
			code := RBrZ
			if ins.Op == OpJNZ {
				code = RBrNZ
			}
			op := RegOp{Code: code, XPC: int32(pc)}
			op.B, op.Imm = fc.srcOperand(e, pos)
			fc.branchOut(op, int(ins.A), int32(pc))
			return nil
		case OpCall:
			argc := int(ins.B)
			base := len(fc.stack) - argc
			// The callee may write any global: materialize global
			// aliases that outlive the call.
			for i := 0; i < base; i++ {
				if fc.stack[i].kind == aGlob {
					fc.matAt(i)
				}
			}
			args := make([]int32, argc)
			for j := 0; j < argc; j++ {
				e := fc.stack[base+j]
				if e.kind == aConst {
					args[j] = fc.constRef(e.c)
				} else {
					args[j] = fc.entryReg(e, base+j)
				}
			}
			fc.stack = fc.stack[:base]
			dst := fc.canonReg(base)
			fc.out(RegOp{Code: RCall, A: ins.A, D: dst, Args: args, XPC: int32(pc)},
				int32(pc), ^int32(pc))
			fc.push(absEntry{kind: aCanon})
			pc++
		case OpCallB:
			if err := fc.emitBuiltin(pc, ins); err != nil {
				return err
			}
			pc++
		case OpRet:
			e := fc.pop()
			pos := len(fc.stack)
			op := RegOp{Code: RRet, XPC: int32(pc)}
			op.A, op.Imm = fc.srcOperand(e, pos)
			fc.out(op, int32(pc))
			return nil
		case OpPop:
			fc.pop()
			fc.pend(pc)
			pc++
		case OpHalt:
			fc.out(RegOp{Code: RHalt, XPC: int32(pc)}, int32(pc))
			return nil
		default:
			return fmt.Errorf("unknown opcode %v at pc %d", ins.Op, pc)
		}
	}
	return nil
}

// emitBuiltin lowers one OpCallB instruction.
func (fc *regFn) emitBuiltin(pc int, ins Instr) error {
	argc := int(ins.B)
	b := Builtin(ins.A)
	if b == BSpawn {
		base := len(fc.stack) - argc
		args := make([]int32, argc)
		for j := 0; j < argc; j++ {
			e := fc.stack[base+j]
			if e.kind == aConst {
				args[j] = fc.constRef(e.c)
			} else {
				args[j] = fc.entryReg(e, base+j)
			}
		}
		fc.stack = fc.stack[:base]
		fc.out(RegOp{Code: RSpawn, A: fc.canonReg(base), Args: args, XPC: int32(pc)}, int32(pc))
		fc.push(absEntry{kind: aCanon})
		return nil
	}
	var code RegCode
	switch b {
	case BWork:
		code = RWork
	case BBlock:
		code = RBlockB
	case BRand:
		code = RRand
	case BInput:
		code = RInput
	case BNow:
		code = RNow
	case BAlloc:
		code = RAlloc
	case BOut:
		code = ROut
	case BAbs:
		code = RAbs
	case BMin:
		code = RMin
	case BMax:
		code = RMax
	default:
		return fmt.Errorf("unknown builtin %d at pc %d", int(b), pc)
	}
	op := RegOp{Code: code, XPC: int32(pc)}
	switch argc {
	case 0:
	case 1:
		e := fc.pop()
		op.B, op.Imm = fc.srcOperand(e, len(fc.stack))
	case 2:
		y := fc.pop()
		x := fc.pop()
		xpos, ypos := len(fc.stack), len(fc.stack)+1
		// One Imm field: with two constant operands, materialize the
		// left one.
		if x.kind == aConst && y.kind == aConst {
			op.B = fc.entryReg(x, xpos)
			op.C, op.Imm = -1, y.c
		} else {
			if x.kind == aConst {
				op.B, op.Imm = -1, x.c
			} else {
				op.B = fc.entryReg(x, xpos)
			}
			if y.kind == aConst {
				op.C, op.Imm = -1, y.c
			} else {
				op.C = fc.entryReg(y, ypos)
			}
		}
	default:
		return fmt.Errorf("builtin %s with %d args at pc %d", BuiltinName(b), argc, pc)
	}
	op.A = fc.canonReg(len(fc.stack))
	fc.out(op, int32(pc))
	fc.push(absEntry{kind: aCanon})
	return nil
}

// String renders one register op for the disassembler.
func (o RegOp) String() string {
	var body string
	src := func(reg int32, imm int64) string {
		if reg < 0 {
			return fmt.Sprintf("#%d", imm)
		}
		return fmt.Sprintf("r%d", reg)
	}
	switch o.Code {
	case RMove:
		body = fmt.Sprintf("r%d = r%d", o.A, o.B)
	case RConst:
		body = fmt.Sprintf("r%d = #%d", o.A, o.Imm)
	case RLoadG:
		body = fmt.Sprintf("r%d = g%d", o.A, o.B)
	case RStoreG:
		body = fmt.Sprintf("g%d = %s", o.A, src(o.B, o.Imm))
	case RBin:
		body = fmt.Sprintf("r%d = r%d %s r%d", o.A, o.B, lang.BinaryOp(o.D), o.C)
	case RBinI:
		body = fmt.Sprintf("r%d = r%d %s #%d", o.A, o.B, lang.BinaryOp(o.D), o.Imm)
	case RUn:
		body = fmt.Sprintf("r%d = %s r%d", o.A, lang.UnaryOp(o.D), o.B)
	case RJump:
		body = fmt.Sprintf("jump %d", o.A)
	case RBrZ:
		body = fmt.Sprintf("brz %s -> %d", src(o.B, o.Imm), o.A)
	case RBrNZ:
		body = fmt.Sprintf("brnz %s -> %d", src(o.B, o.Imm), o.A)
	case RBrCmp, RBrCmpI:
		cmp := lang.BinaryOp(o.D & 0xffff)
		neg := ""
		if o.D>>16 != 0 {
			neg = "!"
		}
		rhs := fmt.Sprintf("r%d", o.C)
		if o.Code == RBrCmpI {
			rhs = fmt.Sprintf("#%d", o.Imm)
		}
		body = fmt.Sprintf("br %s(r%d %s %s) -> %d", neg, o.B, cmp, rhs, o.A)
	case RCall:
		body = fmt.Sprintf("r%d = call f%d %v", o.D, o.A, o.Args)
	case RRet:
		body = fmt.Sprintf("ret %s", src(o.A, o.Imm))
	case RHalt:
		body = "halt"
	case RSpawn:
		body = fmt.Sprintf("r%d = spawn %v", o.A, o.Args)
	case RNow, RAlloc:
		body = fmt.Sprintf("r%d = %s()", o.A, o.Code)
	case RMin, RMax:
		body = fmt.Sprintf("r%d = %s(%s, %s)", o.A, o.Code, src(o.B, 0), src(o.C, o.Imm))
	default:
		body = fmt.Sprintf("r%d = %s(%s)", o.A, o.Code, src(o.B, o.Imm))
	}
	return fmt.Sprintf("%-28s ; cost=%d n=%d pcs=%v", body, o.Cost, o.N, o.PCs)
}

// DisasmRegister renders the register code of every function, for
// debugging and the CLI disassembler.
func (rp *RegProgram) Disasm() string {
	var sb []byte
	for i, f := range rp.Prog.Funcs {
		sb = append(sb, fmt.Sprintf("func %s (slots=%d frame=%d)\n",
			f.Name, rp.Funcs[i].NumSlots, rp.Funcs[i].FrameSize)...)
		for j, op := range rp.Funcs[i].Code {
			sb = append(sb, fmt.Sprintf("  %3d  %s\n", j, op)...)
		}
	}
	return string(sb)
}
