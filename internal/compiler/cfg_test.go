package compiler_test

import (
	"testing"

	"vprof/internal/compiler"
)

func TestBlockSuccessorsIf(t *testing.T) {
	p := compileSrc(t, `
func f(x) {
	if (x > 0) {
		work(1);
	} else {
		work(2);
	}
	return x;
}
func main() { f(1); }
`)
	fn := p.FuncNamed("f")
	blocks, succs := p.BlockSuccessors(fn)
	if len(blocks) != len(succs) {
		t.Fatalf("blocks %d != succs %d", len(blocks), len(succs))
	}
	// The condition block must have two successors (then, else).
	if len(succs[0]) != 2 {
		t.Fatalf("cond block successors = %v, want 2", succs[0])
	}
	// Every successor index must be valid, and a block ending in ret has none.
	for i, ss := range succs {
		for _, s := range ss {
			if s < 0 || s >= len(blocks) {
				t.Fatalf("block %d: bad successor %d", i, s)
			}
		}
		last := p.Instrs[blocks[i].End-1]
		if last.Op == compiler.OpRet && len(ss) != 0 {
			t.Errorf("ret block %d has successors %v", i, ss)
		}
	}
}

func TestBlockSuccessorsLoop(t *testing.T) {
	p := compileSrc(t, `
func main() {
	var n = input(0);
	for (var i = 0; i < n; i++) {
		work(1);
	}
}
`)
	fn := p.FuncNamed("main")
	blocks, succs := p.BlockSuccessors(fn)
	// There must be a back edge: some block with a successor whose start PC
	// is <= its own start PC.
	back := false
	for i, ss := range succs {
		for _, s := range ss {
			if blocks[s].Start <= blocks[i].Start {
				back = true
			}
		}
	}
	if !back {
		t.Error("loop produced no back edge")
	}
}

func TestSlotLinesRecorded(t *testing.T) {
	p := compileSrc(t, `
func f(a) {
	var b = 1;
	return a + b;
}
func main() { f(1); }
`)
	fn := p.FuncNamed("f")
	if len(fn.SlotLines) != len(fn.SlotNames) {
		t.Fatalf("SlotLines %d entries, SlotNames %d", len(fn.SlotLines), len(fn.SlotNames))
	}
	for slot, name := range fn.SlotNames {
		if name != "" && fn.SlotLines[slot] <= 0 {
			t.Errorf("slot %d (%s): line %d", slot, name, fn.SlotLines[slot])
		}
	}
}
