package compiler

import (
	"fmt"
	"sort"

	"vprof/internal/debuginfo"
)

// buildDebugInfo computes the line table, basic blocks and variable-location
// entries for a fully compiled program, attaching the result to c.prog.Debug.
func buildDebugInfo(c *state) {
	prog := c.prog
	info := &debuginfo.Info{
		File:    prog.File,
		TextLen: len(prog.Instrs),
		Lines:   make([]int32, len(prog.Instrs)),
	}
	for pc, ins := range prog.Instrs {
		info.Lines[pc] = ins.Line
	}

	// Function ranges, sorted by entry PC (they already are: functions are
	// emitted sequentially).
	for _, f := range prog.Funcs {
		fr := debuginfo.FuncRange{
			Name:     f.Name,
			File:     prog.File,
			DeclLine: f.DeclLine,
			Entry:    f.Entry,
			End:      f.End,
			Library:  f.Library,
			Blocks:   basicBlocks(prog, f),
		}
		info.Funcs = append(info.Funcs, fr)
	}
	sort.Slice(info.Funcs, func(i, j int) bool { return info.Funcs[i].Entry < info.Funcs[j].Entry })

	// Variable locations.
	for _, meta := range c.funcMeta {
		emitVarLocs(prog, info, meta)
	}
	// Globals live in memory and are *described* only within the PC
	// ranges of the functions that reference them — the analogue of a
	// DWARF global being scoped to its compilation unit's code range
	// (the paper's Figure 3 shows recv_n_pool_free_frames covering
	// 0x9b0e30:0x9bc6bb, not the whole binary). One metadata entry per
	// referencing function.
	for gi, name := range prog.GlobalNames {
		isPtr := prog.IsPointerVar(debuginfo.GlobalScope, name)
		for _, f := range prog.Funcs {
			if f.Synthetic || !funcReferencesGlobal(prog, f, gi) {
				continue
			}
			info.Vars = append(info.Vars, debuginfo.VarLoc{
				Name:      name,
				Func:      debuginfo.GlobalScope,
				PCStart:   f.Entry,
				PCEnd:     f.End,
				Loc:       debuginfo.LocMem,
				Addr:      GlobalBase + 8*gi,
				Size:      8,
				IsPointer: isPtr,
			})
		}
	}
	prog.Debug = info
}

// funcReferencesGlobal reports whether f's code loads or stores global gi.
func funcReferencesGlobal(prog *Program, f *FuncInfo, gi int) bool {
	for pc := f.Entry; pc < f.End; pc++ {
		ins := prog.Instrs[pc]
		if (ins.Op == OpLoadG || ins.Op == OpStoreG) && int(ins.A) == gi {
			return true
		}
	}
	return false
}

// basicBlocks computes the basic blocks of one function using the classic
// leader algorithm: the entry, every jump target, and every instruction
// following a control transfer start a block.
func basicBlocks(prog *Program, f *FuncInfo) []debuginfo.BlockRange {
	if f.End <= f.Entry {
		return nil
	}
	leaders := map[int]bool{f.Entry: true}
	for pc := f.Entry; pc < f.End; pc++ {
		ins := prog.Instrs[pc]
		switch ins.Op {
		case OpJump, OpJZ, OpJNZ:
			if t := int(ins.A); t >= f.Entry && t < f.End {
				leaders[t] = true
			}
			if pc+1 < f.End {
				leaders[pc+1] = true
			}
		case OpRet, OpHalt:
			if pc+1 < f.End {
				leaders[pc+1] = true
			}
		}
	}
	starts := make([]int, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	blocks := make([]debuginfo.BlockRange, len(starts))
	for i, start := range starts {
		end := f.End
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		blocks[i] = debuginfo.BlockRange{
			Label: fmt.Sprintf("bb%d", i),
			Index: i,
			Start: start,
			End:   end,
			Line:  int(prog.Instrs[start].Line),
		}
	}
	return blocks
}

// emitVarLocs produces the VarLoc entries for one function's parameters and
// locals according to the register model:
//
//   - slots < NumCalleeSaved: one entry spanning [live, scope end)
//   - slots < NumRegSlots: entries broken at user-call PCs (the register is
//     caller-saved; DWARF does not describe the spill slot)
//   - slots >= NumRegSlots: no entries (incomplete debug info)
//
// Liveness ends at the enclosing lexical scope's last PC, as DWARF block
// scoping does.
func emitVarLocs(prog *Program, info *debuginfo.Info, meta funcDebugMeta) {
	f := meta.fn
	if f.Synthetic {
		return
	}
	for slot, name := range meta.slotNames {
		if name == "" || slot >= NumRegSlots {
			continue
		}
		live := meta.slotDecl[slot]
		scopeEnd := f.End
		if meta.slotEnd[slot] >= 0 && meta.slotEnd[slot] < f.End {
			scopeEnd = meta.slotEnd[slot]
		}
		isPtr := prog.IsPointerVar(f.Name, name)
		base := debuginfo.VarLoc{
			Name:      name,
			Func:      f.Name,
			Loc:       debuginfo.LocReg,
			Reg:       slot,
			Size:      8,
			IsPointer: isPtr,
			DeclLine:  meta.slotLine[slot],
		}
		if slot < NumCalleeSaved {
			v := base
			v.PCStart, v.PCEnd = live, scopeEnd
			if v.PCStart < v.PCEnd {
				info.Vars = append(info.Vars, v)
			}
			continue
		}
		// Caller-saved: split [live, scopeEnd) around user-call PCs.
		start := live
		for _, callPC := range meta.callPCs {
			if callPC < live || callPC >= scopeEnd {
				continue
			}
			if start < callPC {
				v := base
				v.PCStart, v.PCEnd = start, callPC
				info.Vars = append(info.Vars, v)
			}
			start = callPC + 1
		}
		if start < scopeEnd {
			v := base
			v.PCStart, v.PCEnd = start, scopeEnd
			info.Vars = append(info.Vars, v)
		}
	}
}
