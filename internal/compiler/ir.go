// Package compiler lowers the source language (package lang) to a compact
// stack-machine IR executed by package vm, and emits the DWARF-like debug
// information (package debuginfo) that vProf's binary static analysis
// consumes.
//
// The compilation model mirrors what matters to a PC-sampling profiler:
//
//   - A flat text section: PC is an index into Program.Instrs, and every
//     function occupies a contiguous [Entry, End) PC range.
//   - A line table: every instruction carries its source line.
//   - Virtual registers: each function's parameters and locals occupy frame
//     slots. Slots 0..3 model callee-saved registers (locatable across
//     calls); slots 4..7 model caller-saved registers (location entries have
//     gaps at call instructions, reproducing the paper's DWARF-gap
//     phenomenon); slots >= 8 model stack spills with no DWARF location at
//     all (the paper's "incomplete debugging information" case).
package compiler

import (
	"fmt"

	"vprof/internal/debuginfo"
	"vprof/internal/lang"
)

// Register-allocation model constants.
const (
	// NumCalleeSaved is the number of callee-saved virtual registers per
	// frame; variables in these slots are locatable across calls.
	NumCalleeSaved = 4
	// NumRegSlots is the total number of virtual registers per frame;
	// variables in slots [NumCalleeSaved, NumRegSlots) are caller-saved
	// and unlocatable at call-instruction PCs. Variables beyond
	// NumRegSlots live on the stack and have no debug location entries.
	NumRegSlots = 8
	// GlobalBase is the modeled memory address of global index 0;
	// global i lives at GlobalBase + 8*i.
	GlobalBase = 0x1000
)

// Op is an IR opcode.
type Op uint8

// Opcodes.
const (
	OpConst  Op = iota // push Consts[A]
	OpLoadG            // push globals[A]
	OpStoreG           // globals[A] = pop
	OpLoadL            // push slots[A]
	OpStoreL           // slots[A] = pop
	OpBin              // pop y, x; push x <binop A> y
	OpUn               // pop x; push <unop A> x
	OpJump             // pc = A
	OpJZ               // pop; if zero pc = A
	OpJNZ              // pop; if nonzero pc = A
	OpCall             // call Funcs[A] with B args popped from the stack
	OpCallB            // call builtin A with B args popped from the stack
	OpRet              // pop return value, pop frame, push value in caller
	OpPop              // pop and discard
	OpHalt             // stop the process
)

var opNames = [...]string{
	"const", "loadg", "storeg", "loadl", "storel", "bin", "un",
	"jump", "jz", "jnz", "call", "callb", "ret", "pop", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Builtin identifies an intrinsic function provided by the VM.
type Builtin int

// Builtins callable from source programs.
const (
	BWork  Builtin = iota // work(n): consume n ticks of CPU, return n
	BAlloc                // alloc(): return a fresh pointer value
	BInput                // input(k): k-th workload input parameter
	BRand                 // rand(n): deterministic uniform int in [0, n)
	BNow                  // now(): current tick count
	BSpawn                // spawn("fn", args...): fork a child process
	BOut                  // out(v): append v to the VM output log, return v
	BAbs                  // abs(n)
	BMin                  // min(a, b)
	BMax                  // max(a, b)
	BBlock                // block(n): wait off-CPU for n wall-clock ticks

	NumBuiltins = int(BBlock) + 1
)

var builtinNames = map[string]Builtin{
	"work":  BWork,
	"alloc": BAlloc,
	"input": BInput,
	"rand":  BRand,
	"now":   BNow,
	"spawn": BSpawn,
	"out":   BOut,
	"abs":   BAbs,
	"min":   BMin,
	"max":   BMax,
	"block": BBlock,
}

var builtinArity = map[Builtin]int{
	BWork: 1, BAlloc: 0, BInput: 1, BRand: 1, BNow: 0,
	BSpawn: -1, // variadic: function index + args
	BOut:   1, BAbs: 1, BMin: 2, BMax: 2, BBlock: 1,
}

// BuiltinName returns the source-level name of b.
func BuiltinName(b Builtin) string {
	for n, id := range builtinNames {
		if id == b {
			return n
		}
	}
	return fmt.Sprintf("builtin(%d)", int(b))
}

// IsBuiltinName reports whether name refers to a VM builtin.
func IsBuiltinName(name string) bool {
	_, ok := builtinNames[name]
	return ok
}

// Instr is a single IR instruction. Every instruction costs one tick of
// simulated CPU (builtins may add more).
type Instr struct {
	Op   Op
	A, B int32
	Line int32
}

func (i Instr) String() string {
	switch i.Op {
	case OpBin:
		return fmt.Sprintf("bin %s", lang.BinaryOp(i.A))
	case OpUn:
		return fmt.Sprintf("un %s", lang.UnaryOp(i.A))
	case OpCall, OpCallB, OpConst, OpLoadG, OpStoreG, OpLoadL, OpStoreL, OpJump, OpJZ, OpJNZ:
		return fmt.Sprintf("%s %d %d", i.Op, i.A, i.B)
	default:
		return i.Op.String()
	}
}

// FuncInfo describes a compiled function.
type FuncInfo struct {
	Name      string
	Index     int
	NumParams int
	NumSlots  int
	SlotNames []string // slot -> source name ("" for temporaries; none used)
	SlotLines []int    // slot -> declaration line (parallel to SlotNames)
	// [Entry, End) PC range in the text section.
	Entry, End int
	Library    bool
	Synthetic  bool // true for the generated __init entry shim
	DeclLine   int
}

// Contains reports whether pc lies in the function's range.
func (f *FuncInfo) Contains(pc int) bool { return pc >= f.Entry && pc < f.End }

// StaticCost is a per-basic-block static cost bound computed by
// internal/absint and persisted alongside the IR: Ticks is the guaranteed
// constant part of one execution of the block (callee costs included),
// Bound the full symbolic polynomial rendered for display. Consumers that
// need cost estimates without running the analyzer (threaded-code VM,
// causal mode) read these.
type StaticCost struct {
	Func       string
	Block      int
	Start, End int // [Start, End) PC range
	Ticks      int64
	Bound      string
}

// Program is a compiled program: the text section plus symbol and debug
// metadata.
type Program struct {
	File        string
	Instrs      []Instr
	Consts      []int64
	Funcs       []*FuncInfo
	GlobalNames []string
	// EntryPC is where execution starts (the __init shim, which runs
	// global initializers then calls main).
	EntryPC int
	// MainIndex is the function index of main.
	MainIndex int
	Debug     *debuginfo.Info
	// CallGraph maps each function name to the distinct user functions it
	// calls, in first-call order.
	CallGraph map[string][]string
	// PointerVars maps "func\x00name" (or "#global\x00name") to true for
	// variables inferred to hold non-basic-type pointers.
	PointerVars map[string]bool
	// StaticCosts holds per-block static cost annotations in (function,
	// block) order; populated by internal/absint.Annotate, nil until then.
	StaticCosts []StaticCost

	funcIndex   map[string]int
	globalIndex map[string]int
}

// FuncNamed returns the function with the given name, or nil.
func (p *Program) FuncNamed(name string) *FuncInfo {
	if i, ok := p.funcIndex[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc int) *FuncInfo {
	for _, f := range p.Funcs {
		if f.Contains(pc) {
			return f
		}
	}
	return nil
}

// GlobalIndex returns the index of the named global and whether it exists.
func (p *Program) GlobalIndex(name string) (int, bool) {
	i, ok := p.globalIndex[name]
	return i, ok
}

// NumGlobals returns the number of global variables.
func (p *Program) NumGlobals() int { return len(p.GlobalNames) }

// IsPointerVar reports whether the variable was inferred to hold a pointer.
// fn is the declaring function name or debuginfo.GlobalScope.
func (p *Program) IsPointerVar(fn, name string) bool {
	return p.PointerVars[fn+"\x00"+name]
}
