package compiler_test

// Property-based testing of the compiler+VM expression pipeline: random
// expression trees are rendered to source, compiled, executed on the VM, and
// compared against a direct reference evaluation of the same tree.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

// expr is a random expression tree over three pre-set variables a, b, c.
type expr interface {
	render(sb *strings.Builder)
	eval(env map[string]int64) (int64, bool) // ok=false on div/mod by zero
}

type litExpr int64

func (l litExpr) render(sb *strings.Builder) { fmt.Fprintf(sb, "%d", int64(l)) }
func (l litExpr) eval(map[string]int64) (int64, bool) {
	return int64(l), true
}

type varExpr string

func (v varExpr) render(sb *strings.Builder) { sb.WriteString(string(v)) }
func (v varExpr) eval(env map[string]int64) (int64, bool) {
	return env[string(v)], true
}

type unExpr struct {
	op string
	x  expr
}

func (u unExpr) render(sb *strings.Builder) {
	sb.WriteString(u.op)
	sb.WriteString("(")
	u.x.render(sb)
	sb.WriteString(")")
}

func (u unExpr) eval(env map[string]int64) (int64, bool) {
	x, ok := u.x.eval(env)
	if !ok {
		return 0, false
	}
	switch u.op {
	case "-":
		return -x, true
	case "!":
		if x == 0 {
			return 1, true
		}
		return 0, true
	}
	panic("bad unop")
}

type binExpr struct {
	op   string
	x, y expr
}

func (b binExpr) render(sb *strings.Builder) {
	sb.WriteString("(")
	b.x.render(sb)
	sb.WriteString(" " + b.op + " ")
	b.y.render(sb)
	sb.WriteString(")")
}

func boolToInt(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func (b binExpr) eval(env map[string]int64) (int64, bool) {
	x, ok := b.x.eval(env)
	if !ok {
		return 0, false
	}
	// Short-circuit operators must not evaluate the right side (a
	// division by zero there must not trap).
	switch b.op {
	case "&&":
		if x == 0 {
			return 0, true
		}
		y, ok := b.y.eval(env)
		if !ok {
			return 0, false
		}
		return boolToInt(y != 0), true
	case "||":
		if x != 0 {
			return 1, true
		}
		y, ok := b.y.eval(env)
		if !ok {
			return 0, false
		}
		return boolToInt(y != 0), true
	}
	y, ok := b.y.eval(env)
	if !ok {
		return 0, false
	}
	switch b.op {
	case "+":
		return x + y, true
	case "-":
		return x - y, true
	case "*":
		return x * y, true
	case "/":
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case "%":
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case "==":
		return boolToInt(x == y), true
	case "!=":
		return boolToInt(x != y), true
	case "<":
		return boolToInt(x < y), true
	case "<=":
		return boolToInt(x <= y), true
	case ">":
		return boolToInt(x > y), true
	case ">=":
		return boolToInt(x >= y), true
	}
	panic("bad binop")
}

var binOps = []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func genExpr(rng *rand.Rand, depth int) expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return litExpr(rng.Int63n(41) - 20)
		}
		return varExpr([]string{"a", "b", "c"}[rng.Intn(3)])
	}
	if rng.Intn(5) == 0 {
		return unExpr{op: []string{"-", "!"}[rng.Intn(2)], x: genExpr(rng, depth-1)}
	}
	return binExpr{
		op: binOps[rng.Intn(len(binOps))],
		x:  genExpr(rng, depth-1),
		y:  genExpr(rng, depth-1),
	}
}

// TestExpressionSemanticsQuick compiles random expressions and checks the VM
// agrees with the reference evaluator, including trap behavior.
func TestExpressionSemanticsQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		env := map[string]int64{
			"a": rng.Int63n(21) - 10,
			"b": rng.Int63n(21) - 10,
			"c": rng.Int63n(7) - 3,
		}
		var sb strings.Builder
		e.render(&sb)
		src := fmt.Sprintf(`
func main() {
	var a = %d;
	var b = %d;
	var c = %d;
	out(%s);
}`, env["a"], env["b"], env["c"], sb.String())

		f, err := lang.Parse("quick.vp", src)
		if err != nil {
			t.Logf("seed %d: parse error: %v\nsrc: %s", seed, err, src)
			return false
		}
		prog, err := compiler.Compile(f)
		if err != nil {
			t.Logf("seed %d: compile error: %v\nsrc: %s", seed, err, src)
			return false
		}
		m := vm.New(prog, vm.Config{})
		runErr := m.Run()

		want, ok := e.eval(env)
		if !ok {
			// The reference traps: the VM must too.
			if runErr == nil {
				t.Logf("seed %d: expected trap, got %v\nsrc: %s", seed, m.Outputs, src)
				return false
			}
			return true
		}
		if runErr != nil {
			t.Logf("seed %d: unexpected trap %v\nsrc: %s", seed, runErr, src)
			return false
		}
		// Boolean-producing roots normalize to 0/1 in both evaluators.
		if len(m.Outputs) != 1 || m.Outputs[0] != want {
			t.Logf("seed %d: vm=%v want=%d\nsrc: %s", seed, m.Outputs, want, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramsTerminate generates small random loop programs and
// checks the VM always terminates within its budget and never panics.
func TestRandomProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bound := rng.Intn(50) + 1
		step := rng.Intn(3) + 1
		var cond strings.Builder
		genExpr(rng, 2).render(&cond)
		src := fmt.Sprintf(`
func helper(x) {
	work(%d);
	return x + 1;
}
func main() {
	var a = %d;
	var b = %d;
	var c = %d;
	var acc = 0;
	for (var i = 0; i < %d; i = i + %d) {
		if ((%s) > 0) {
			acc = acc + helper(i);
		} else {
			acc = acc - 1;
		}
	}
	out(acc);
}`, rng.Intn(40)+1, rng.Int63n(9)-4, rng.Int63n(9)-4, rng.Int63n(9)-4, bound, step, cond.String())
		f, err := lang.Parse("rand.vp", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := compiler.Compile(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := vm.New(prog, vm.Config{MaxTicks: 100000})
		if err := m.Run(); err != nil && err != vm.ErrTicksExceeded {
			if _, isTrap := err.(*vm.RuntimeError); !isTrap {
				t.Fatalf("seed %d: unexpected error %v", seed, err)
			}
		}
	}
}
