package compiler_test

// Structural tests for the register lowering (CompileRegister): static
// invariants of the emitted code — tick-schedule conservation against
// the stack IR, branch-target sanity, frame sizing — plus presence of
// the superinstruction fusions the lowering promises. Behavioral
// equivalence is enforced separately by internal/vm's differential suite.

import (
	"strings"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/lang"
)

func compileRegSrc(t *testing.T, src string) (*compiler.Program, *compiler.RegProgram) {
	t.Helper()
	p := compileSrc(t, src)
	rp, err := compiler.CompileRegister(p)
	if err != nil {
		t.Fatalf("CompileRegister: %v", err)
	}
	return p, rp
}

// checkRegInvariants asserts, for every function:
//   - Cost == len(PCs) and N == number of instruction-start entries;
//   - every branch/jump target is a valid code index;
//   - every reachable stack PC in the function appears EXACTLY once as
//     an instruction-start entry across the function's tick schedules
//     (tick conservation: the register code charges the same ticks at
//     the same stack PCs as the tree walker);
//   - every continuation entry ^e names an OpCall instruction;
//   - FrameSize covers the named slots.
func checkRegInvariants(t *testing.T, p *compiler.Program, rp *compiler.RegProgram) {
	t.Helper()
	for fi := range rp.Funcs {
		rf := &rp.Funcs[fi]
		info := p.Funcs[fi]
		if rf.FrameSize < rf.NumSlots {
			t.Errorf("%s: FrameSize %d < NumSlots %d", info.Name, rf.FrameSize, rf.NumSlots)
		}
		if int(rf.NumSlots) != info.NumSlots {
			t.Errorf("%s: NumSlots %d != FuncInfo.NumSlots %d", info.Name, rf.NumSlots, info.NumSlots)
		}
		seen := map[int32]int{}
		for i, op := range rf.Code {
			if int(op.Cost) != len(op.PCs) {
				t.Errorf("%s[%d] %v: Cost %d != len(PCs) %d", info.Name, i, op.Code, op.Cost, len(op.PCs))
			}
			n := int32(0)
			for _, e := range op.PCs {
				if e >= 0 {
					n++
					seen[e]++
					if !info.Contains(int(e)) {
						t.Errorf("%s[%d] %v: schedule pc %d outside [%d,%d)",
							info.Name, i, op.Code, e, info.Entry, info.End)
					}
				} else {
					pc := ^e
					if !info.Contains(int(pc)) || p.Instrs[pc].Op != compiler.OpCall {
						t.Errorf("%s[%d] %v: continuation ^%d is not an OpCall in-function",
							info.Name, i, op.Code, pc)
					}
				}
			}
			if n != op.N {
				t.Errorf("%s[%d] %v: N %d != instruction-start entries %d", info.Name, i, op.Code, op.N, n)
			}
			switch op.Code {
			case compiler.RJump, compiler.RBrZ, compiler.RBrNZ, compiler.RBrCmp, compiler.RBrCmpI:
				if op.A < 0 || int(op.A) >= len(rf.Code) {
					t.Errorf("%s[%d] %v: target %d out of range", info.Name, i, op.Code, op.A)
				}
			case compiler.RCall:
				if int(op.A) < 0 || int(op.A) >= len(rp.Funcs) {
					t.Errorf("%s[%d]: callee %d out of range", info.Name, i, op.A)
				}
			}
		}
		for pc, count := range seen {
			if count != 1 {
				t.Errorf("%s: stack pc %d charged %d times, want exactly once", info.Name, pc, count)
			}
		}
	}
}

func TestCompileRegisterInvariantsAllPrograms(t *testing.T) {
	srcs := map[string]string{}
	for _, w := range append(bugs.All(), bugs.UnresolvedIssues()...) {
		srcs[w.ID] = w.Source
		if w.NormalSource != "" {
			srcs[w.ID+"-normal"] = w.NormalSource
		}
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p, rp := compileRegSrc(t, src)
			checkRegInvariants(t, p, rp)
		})
	}
}

func countOps(rp *compiler.RegProgram, code compiler.RegCode) int {
	n := 0
	for _, rf := range rp.Funcs {
		for _, op := range rf.Code {
			if op.Code == code {
				n++
			}
		}
	}
	return n
}

// TestRegisterFusion asserts the promised superinstructions actually
// fire on their canonical patterns.
func TestRegisterFusion(t *testing.T) {
	// A counted loop: the `i < n` + conditional jump pair must fuse into
	// a compare-branch, and `s = s + i` into an arith-with-slot-dest.
	src := `
func main() {
	var n = input(0);
	var s = 0;
	for (var i = 0; i < n; i++) {
		s = s + i;
	}
	out(s);
}`
	p, rp := compileRegSrc(t, src)
	checkRegInvariants(t, p, rp)
	if countOps(rp, compiler.RBrCmp)+countOps(rp, compiler.RBrCmpI) == 0 {
		t.Errorf("no fused compare-branch emitted:\n%s", rp.Disasm())
	}
	mainFn := p.FuncNamed("main")
	found := false
	for _, op := range rp.Funcs[p.MainIndex].Code {
		if (op.Code == compiler.RBin || op.Code == compiler.RBinI) && int(op.A) < mainFn.NumSlots {
			found = true
		}
	}
	if !found {
		t.Errorf("no arith-store fusion into a named slot:\n%s", rp.Disasm())
	}
}

// TestRegisterConstRHSFusion: a constant right operand folds into the
// immediate form rather than materializing a register.
func TestRegisterConstRHSFusion(t *testing.T) {
	_, rp := compileRegSrc(t, `
func main() {
	var x = input(0);
	while (x > 3) {
		x = x - 7;
	}
	out(x);
}`)
	if countOps(rp, compiler.RBinI) == 0 && countOps(rp, compiler.RBrCmpI) == 0 {
		t.Errorf("constant operands not folded to immediate forms:\n%s", rp.Disasm())
	}
}

// TestRegisterTrapsNotFused: a trapping division must terminate its
// fusion group — the following store happens on a separate op so a trap
// never charges the store's tick.
func TestRegisterTrapsNotFused(t *testing.T) {
	p, rp := compileRegSrc(t, `
func main() {
	var a = input(0);
	var b = input(1);
	var q = a / b;
	out(q);
}`)
	checkRegInvariants(t, p, rp)
	for _, rf := range rp.Funcs {
		for _, op := range rf.Code {
			if op.Code != compiler.RBin && op.Code != compiler.RBinI {
				continue
			}
			// Division results must land in a scratch register first
			// (dst >= NumSlots) — never fused into a named slot store.
			if op.D == int32(lang.BinDiv) && op.A < rf.NumSlots {
				t.Errorf("division fused into slot store: %s", op.String())
			}
		}
	}
}

func TestRegisterDisasm(t *testing.T) {
	_, rp := compileRegSrc(t, `func main() { out(1 + 2); }`)
	d := rp.Disasm()
	for _, want := range []string{"func main", "func __init", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q:\n%s", want, d)
		}
	}
}
