package compiler_test

import (
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

// compileSrc parses and compiles src, failing the test on error.
func compileSrc(t *testing.T, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse("test.vp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// runSrc compiles and executes src, returning the out() log.
func runSrc(t *testing.T, src string, inputs ...int64) []int64 {
	t.Helper()
	p := compileSrc(t, src)
	m := vm.New(p, vm.Config{Inputs: inputs})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Outputs
}

func wantOutputs(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outputs[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	out := runSrc(t, `
func main() {
	out(1 + 2 * 3);
	out(10 - 4 / 2);
	out(17 % 5);
	out(-(3 - 10));
	out((2 + 3) * 4);
}`)
	wantOutputs(t, out, []int64{7, 8, 2, 7, 20})
}

func TestComparisonsAndLogic(t *testing.T) {
	out := runSrc(t, `
func main() {
	out(3 < 4);
	out(4 <= 3);
	out(5 == 5);
	out(5 != 5);
	out(9 > 2 && 2 > 9);
	out(9 > 2 || 2 > 9);
	out(!0);
	out(!7);
	out(true);
	out(false);
}`)
	wantOutputs(t, out, []int64{1, 0, 1, 0, 0, 1, 1, 0, 1, 0})
}

func TestShortCircuit(t *testing.T) {
	// side() must not run when short-circuited.
	out := runSrc(t, `
var calls = 0;
func side() { calls++; return 1; }
func main() {
	var a = 0 && side();
	var b = 1 || side();
	out(calls);
	var c = 1 && side();
	var d = 0 || side();
	out(calls);
	out(a + b + c + d);
}`)
	// a = 0&&… = 0, b = 1||… = 1, c = 1&&side() = 1, d = 0||side() = 1.
	wantOutputs(t, out, []int64{0, 2, 3})
}

func TestGlobalsAndInit(t *testing.T) {
	out := runSrc(t, `
var base = 100;
var derived = 0;
func main() {
	derived = base * 2;
	out(derived);
	base += 1;
	out(base);
}`)
	wantOutputs(t, out, []int64{200, 101})
}

func TestGlobalInitCallsFunction(t *testing.T) {
	out := runSrc(t, `
var pages = npages() / 3;
func npages() { return 30; }
func main() { out(pages); }`)
	wantOutputs(t, out, []int64{10})
}

func TestWhileLoop(t *testing.T) {
	out := runSrc(t, `
func main() {
	var i = 0;
	var sum = 0;
	while (i < 5) {
		sum += i;
		i++;
	}
	out(sum);
}`)
	wantOutputs(t, out, []int64{10})
}

func TestForLoopBreakContinue(t *testing.T) {
	out := runSrc(t, `
func main() {
	var sum = 0;
	for (var i = 0; i < 10; i++) {
		if (i % 2 == 0) { continue; }
		if (i > 7) { break; }
		sum += i;
	}
	out(sum);
}`)
	wantOutputs(t, out, []int64{1 + 3 + 5 + 7})
}

func TestNestedLoops(t *testing.T) {
	out := runSrc(t, `
func main() {
	var count = 0;
	for (var i = 0; i < 4; i++) {
		for (var j = 0; j < 4; j++) {
			if (j == 2) { break; }
			count++;
		}
	}
	out(count);
}`)
	wantOutputs(t, out, []int64{8})
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	out := runSrc(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { out(fib(10)); }`)
	wantOutputs(t, out, []int64{55})
}

func TestImplicitReturnZero(t *testing.T) {
	out := runSrc(t, `
func noret() { var x = 3; }
func main() { out(noret()); }`)
	wantOutputs(t, out, []int64{0})
}

func TestShadowing(t *testing.T) {
	out := runSrc(t, `
var x = 1;
func main() {
	out(x);
	var x = 2;
	out(x);
	{
		var x = 3;
		out(x);
	}
	out(x);
}`)
	wantOutputs(t, out, []int64{1, 2, 3, 2})
}

func TestBuiltins(t *testing.T) {
	out := runSrc(t, `
func main() {
	out(input(0));
	out(input(1));
	out(input(9));
	out(abs(-4));
	out(min(3, 8));
	out(max(3, 8));
	out(work(5));
}`, 42, 7)
	wantOutputs(t, out, []int64{42, 7, 0, 4, 3, 8, 5})
}

func TestWorkConsumesTicks(t *testing.T) {
	p := compileSrc(t, `func main() { work(1000); }`)
	m := vm.New(p, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Ticks() < 1000 {
		t.Fatalf("ticks = %d, want >= 1000", m.Ticks())
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `func main() { out(rand(100)); out(rand(100)); out(rand(100)); }`
	a := runSrc(t, src)
	b := runSrc(t, src)
	wantOutputs(t, a, b)
	p := compileSrc(t, src)
	m := vm.New(p, vm.Config{Seed: 99})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if m.Outputs[i] != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seed produced identical rand sequence")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	p := compileSrc(t, `func main() { var x = 0; out(1 / x); }`)
	m := vm.New(p, vm.Config{})
	err := m.Run()
	var rte *vm.RuntimeError
	if err == nil {
		t.Fatal("expected runtime error")
	}
	if ok := errorsAs(err, &rte); !ok {
		t.Fatalf("err = %T %v, want *RuntimeError", err, err)
	}
	if rte.Line == 0 {
		t.Error("runtime error lacks line")
	}
}

func errorsAs(err error, target **vm.RuntimeError) bool {
	for err != nil {
		if e, ok := err.(*vm.RuntimeError); ok {
			*target = e
			return true
		}
		return false
	}
	return false
}

func TestTickBudget(t *testing.T) {
	p := compileSrc(t, `func main() { while (true) { work(10); } }`)
	m := vm.New(p, vm.Config{MaxTicks: 10000})
	err := m.Run()
	if err != vm.ErrTicksExceeded {
		t.Fatalf("err = %v, want ErrTicksExceeded", err)
	}
	if m.Ticks() < 10000 {
		t.Fatalf("ticks = %d", m.Ticks())
	}
}

func TestAlloc(t *testing.T) {
	out := runSrc(t, `
func main() {
	var p = alloc();
	var q = alloc();
	out(p == q);
	out(p == p);
	out(p != q);
	out(!p);
}`)
	wantOutputs(t, out, []int64{0, 1, 1, 0})
}

func TestSpawnQueuesChildren(t *testing.T) {
	p := compileSrc(t, `
var g = 5;
func child(a, b) { out(a + b + g); }
func main() {
	g = 7;
	spawn("child", 1, 2);
	g = 9;
	spawn("child", 3, 4);
}`)
	procs := vm.RunProcesses(p, func(pid int) vm.Config { return vm.Config{} })
	if len(procs) != 3 {
		t.Fatalf("%d processes, want 3", len(procs))
	}
	// Children observe the globals snapshot at spawn time.
	if got := procs[1].VM.Outputs[0]; got != 1+2+7 {
		t.Errorf("child1 out = %d, want 10", got)
	}
	if got := procs[2].VM.Outputs[0]; got != 3+4+9 {
		t.Errorf("child2 out = %d, want 16", got)
	}
	if procs[1].ParentPid != 1 || procs[2].ParentPid != 1 {
		t.Errorf("parent pids: %d %d", procs[1].ParentPid, procs[2].ParentPid)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`func f() {}`,                              // no main
		`func main(x) {}`,                          // main with params
		`func main() { undeclared = 1; }`,          // assign undeclared
		`func main() { out(undeclared); }`,         // read undeclared
		`func main() { nofn(); }`,                  // unknown function
		`func main() { work(1, 2); }`,              // builtin arity
		`func f(a) {} func main() { f(); }`,        // user arity
		`func main() {} func main() {}`,            // dup function
		`var g; var g; func main() {}`,             // dup global
		`func main() { break; }`,                   // break outside loop
		`func main() { continue; }`,                // continue outside loop
		`func work() {} func main() {}`,            // shadow builtin
		`func main() { spawn("nope"); }`,           // spawn unknown
		`func f(a) {} func main() { spawn("f"); }`, // spawn arity
		`func main() { var s = "str"; }`,           // string outside spawn
		`func main() { var x = 1; var x = 2; }`,    // dup in same scope
	}
	for _, src := range cases {
		f, err := lang.Parse("t.vp", src)
		if err != nil {
			t.Errorf("parse(%q): %v", src, err)
			continue
		}
		if _, err := compiler.Compile(f); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestFunctionRangesContiguous(t *testing.T) {
	p := compileSrc(t, `
func a() { work(1); }
func b() { a(); }
func main() { b(); }`)
	for _, f := range p.Funcs {
		if f.End <= f.Entry {
			t.Errorf("func %s: empty range [%d,%d)", f.Name, f.Entry, f.End)
		}
	}
	// Ranges must not overlap and must cover all instructions.
	covered := make([]bool, len(p.Instrs))
	for _, f := range p.Funcs {
		for pc := f.Entry; pc < f.End; pc++ {
			if covered[pc] {
				t.Fatalf("pc %d covered twice", pc)
			}
			covered[pc] = true
		}
	}
	for pc, c := range covered {
		if !c {
			t.Errorf("pc %d not in any function", pc)
		}
	}
}

func TestDebugLineTable(t *testing.T) {
	p := compileSrc(t, "func main() {\n\tvar x = 1;\n\tx = 2;\n}")
	d := p.Debug
	if d.TextLen != len(p.Instrs) {
		t.Fatalf("TextLen = %d, want %d", d.TextLen, len(p.Instrs))
	}
	mainFn := d.FuncNamed("main")
	if mainFn == nil {
		t.Fatal("no main in debug info")
	}
	sawLine2, sawLine3 := false, false
	for pc := mainFn.Entry; pc < mainFn.End; pc++ {
		switch d.LineAt(pc) {
		case 2:
			sawLine2 = true
		case 3:
			sawLine3 = true
		}
	}
	if !sawLine2 || !sawLine3 {
		t.Errorf("line table misses lines: 2=%v 3=%v", sawLine2, sawLine3)
	}
}

func TestBasicBlocks(t *testing.T) {
	p := compileSrc(t, `
func main() {
	var i = 0;
	while (i < 3) {
		i++;
	}
	out(i);
}`)
	fn := p.Debug.FuncNamed("main")
	if len(fn.Blocks) < 3 {
		t.Fatalf("main has %d blocks, want >= 3 (loop head, body, exit)", len(fn.Blocks))
	}
	// Blocks tile the function range exactly.
	pc := fn.Entry
	for _, b := range fn.Blocks {
		if b.Start != pc {
			t.Fatalf("block %s starts at %d, want %d", b.Label, b.Start, pc)
		}
		if b.End <= b.Start {
			t.Fatalf("block %s empty", b.Label)
		}
		pc = b.End
	}
	if pc != fn.End {
		t.Fatalf("blocks end at %d, function ends at %d", pc, fn.End)
	}
	// BlockAt agrees with the tiling.
	for _, b := range fn.Blocks {
		if got := fn.BlockAt(b.Start); got == nil || got.Label != b.Label {
			t.Errorf("BlockAt(%d) = %v, want %s", b.Start, got, b.Label)
		}
	}
}

func TestDebugVarLocations(t *testing.T) {
	p := compileSrc(t, `
func callee(v) { return v + 1; }
func main() {
	var a = 1;
	var b = 2;
	var c = 3;
	var d = 4;
	var e = 5;
	callee(a);
	out(a + b + c + d + e);
}`)
	d := p.Debug
	// a..d occupy callee-saved slots 0..3: single range each.
	for _, name := range []string{"a", "b", "c", "d"} {
		entries := d.VarEntries("main", name)
		if len(entries) != 1 {
			t.Errorf("%s: %d entries, want 1", name, len(entries))
			continue
		}
		if entries[0].Loc != debuginfo.LocReg {
			t.Errorf("%s: loc %v, want reg", name, entries[0].Loc)
		}
	}
	// e is caller-saved (slot 4) and main contains one user call after its
	// declaration: its range must be split with a gap at the call PC.
	eEntries := d.VarEntries("main", "e")
	if len(eEntries) != 2 {
		t.Fatalf("e: %d entries, want 2 (split around call): %v", len(eEntries), eEntries)
	}
	gapStart := eEntries[0].PCEnd
	if eEntries[1].PCStart != gapStart+1 {
		t.Errorf("gap is [%d,%d), want width 1", eEntries[0].PCEnd, eEntries[1].PCStart)
	}
	// The gap PC must be the call instruction.
	if p.Instrs[gapStart].Op != compiler.OpCall {
		t.Errorf("gap instr = %v, want call", p.Instrs[gapStart].Op)
	}
}

func TestDebugGlobalsScopedToReferencingFunctions(t *testing.T) {
	p := compileSrc(t, `
var g1 = 1;
var g2;
func uses_both() { g2 = g1; return g2; }
func uses_none() { return 7; }
func main() { uses_both(); uses_none(); }`)
	both := p.Debug.FuncNamed("uses_both")
	for _, name := range []string{"g1", "g2"} {
		entries := p.Debug.VarEntries(debuginfo.GlobalScope, name)
		if len(entries) != 1 {
			t.Fatalf("%s: %d entries, want 1 (only uses_both references it)", name, len(entries))
		}
		e := entries[0]
		if e.PCStart != both.Entry || e.PCEnd != both.End {
			t.Errorf("%s covers [%d,%d), want uses_both [%d,%d)", name, e.PCStart, e.PCEnd, both.Entry, both.End)
		}
		if e.Loc != debuginfo.LocMem {
			t.Errorf("%s in %v, want memory", name, e.Loc)
		}
	}
}

func TestTooManyLocalsHaveNoDebugInfo(t *testing.T) {
	src := `func main() {
	var v0 = 0; var v1 = 1; var v2 = 2; var v3 = 3; var v4 = 4;
	var v5 = 5; var v6 = 6; var v7 = 7; var v8 = 8; var v9 = 9;
	out(v0+v1+v2+v3+v4+v5+v6+v7+v8+v9);
}`
	p := compileSrc(t, src)
	if got := len(p.Debug.VarEntries("main", "v9")); got != 0 {
		t.Errorf("v9 (slot 9) has %d debug entries, want 0 (incomplete DWARF model)", got)
	}
	if got := len(p.Debug.VarEntries("main", "v0")); got != 1 {
		t.Errorf("v0 has %d entries, want 1", got)
	}
}

func TestPointerInference(t *testing.T) {
	p := compileSrc(t, `
var gptr;
func get_block() { return alloc(); }
func use(q) { return q; }
func main() {
	var block = get_block();
	var copy2 = block;
	var n = 7;
	gptr = alloc();
	use(block);
}`)
	cases := []struct {
		fn, name string
		want     bool
	}{
		{"main", "block", true},
		{"main", "copy2", true},
		{"main", "n", false},
		{debuginfo.GlobalScope, "gptr", true},
		{"use", "q", true},
	}
	for _, c := range cases {
		if got := p.IsPointerVar(c.fn, c.name); got != c.want {
			t.Errorf("IsPointerVar(%s, %s) = %v, want %v", c.fn, c.name, got, c.want)
		}
	}
}

func TestCallGraph(t *testing.T) {
	p := compileSrc(t, `
func leaf() { work(1); }
func mid() { leaf(); leaf(); }
func main() { mid(); leaf(); }`)
	got := p.CallGraph["main"]
	if len(got) != 2 || got[0] != "mid" || got[1] != "leaf" {
		t.Errorf("CallGraph[main] = %v", got)
	}
	if cg := p.CallGraph["mid"]; len(cg) != 1 || cg[0] != "leaf" {
		t.Errorf("CallGraph[mid] = %v", cg)
	}
}

func TestLibraryFlag(t *testing.T) {
	p := compileSrc(t, `
extfunc libread(n) { work(n); return n; }
func main() { libread(5); }`)
	if !p.Debug.FuncNamed("libread").Library {
		t.Error("libread not marked Library in debug info")
	}
	if p.Debug.FuncNamed("main").Library {
		t.Error("main wrongly marked Library")
	}
}

func TestAlarmFires(t *testing.T) {
	p := compileSrc(t, `func main() { work(1000); }`)
	var fires int
	var pcs []int
	m := vm.New(p, vm.Config{
		AlarmInterval: 100,
		OnAlarm: func(v *vm.VM) {
			fires++
			pcs = append(pcs, v.PC())
		},
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if fires < 9 || fires > 12 {
		t.Fatalf("alarm fired %d times for ~1000 ticks at interval 100", fires)
	}
	// During work() the PC must be inside main (at the callb instruction).
	mainFn := p.FuncNamed("main")
	inMain := 0
	for _, pc := range pcs {
		if mainFn.Contains(pc) {
			inMain++
		}
	}
	if inMain < fires-2 {
		t.Errorf("only %d/%d alarm PCs inside main", inMain, fires)
	}
}

func TestAlarmPhase(t *testing.T) {
	p := compileSrc(t, `func main() { work(1000); }`)
	run := func(phase int64) []int64 {
		var at []int64
		m := vm.New(p, vm.Config{
			AlarmInterval: 100,
			AlarmPhase:    phase,
			OnAlarm:       func(v *vm.VM) { at = append(at, v.Ticks()) },
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	a, b := run(0), run(37)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no alarms fired")
	}
	if b[0]%100 != 37 {
		t.Errorf("first phased alarm at tick %d, want ≡37 (mod 100)", b[0])
	}
	if a[0] == b[0] {
		t.Error("phase had no effect")
	}
}

func TestUnwindFrameViews(t *testing.T) {
	p := compileSrc(t, `
func inner(x) { work(500); return x; }
func outer(y) { return inner(y + 1); }
func main() { var start = 3; outer(start); }`)
	sawStack := false
	m := vm.New(p, vm.Config{
		AlarmInterval: 50,
		OnAlarm: func(v *vm.VM) {
			if v.Depth() < 3 {
				return
			}
			f0, ok0 := v.Frame(0)
			f1, ok1 := v.Frame(1)
			if !ok0 || !ok1 {
				t.Error("Frame() failed at depth >= 3")
				return
			}
			innerFn := p.FuncNamed("inner")
			outerFn := p.FuncNamed("outer")
			if f0.FuncIndex != innerFn.Index {
				return
			}
			if f1.FuncIndex != outerFn.Index {
				t.Errorf("caller frame func = %d, want outer(%d)", f1.FuncIndex, outerFn.Index)
				return
			}
			// The caller PC (f0.RetPC) must lie inside outer.
			if !outerFn.Contains(f0.RetPC) {
				t.Errorf("retPC %d not inside outer [%d,%d)", f0.RetPC, outerFn.Entry, outerFn.End)
			}
			// outer's param y (slot 0) is start == 3; inner's param x
			// (slot 0) is y+1 == 4.
			if got := f1.Slot(0); got.I != 3 {
				t.Errorf("outer.y = %d, want 3", got.I)
			}
			if got := f0.Slot(0); got.I != 4 {
				t.Errorf("inner.x = %d, want 4", got.I)
			}
			sawStack = true
		},
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawStack {
		t.Fatal("never observed inner<-outer<-main stack at an alarm")
	}
}

func TestBranchCounting(t *testing.T) {
	p := compileSrc(t, `
func looper(n) {
	var i = 0;
	while (i < n) { i++; }
	return i;
}
func main() { looper(50); }`)
	m := vm.New(p, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	li := p.FuncNamed("looper").Index
	if m.BranchTaken[li] == 0 {
		t.Error("no branches recorded for looper")
	}
}

func TestDeterministicExecution(t *testing.T) {
	src := `
func busy(n) { var s = 0; for (var i = 0; i < n; i++) { s += rand(10); } return s; }
func main() { out(busy(200)); out(now()); }`
	a := runSrc(t, src, 5)
	b := runSrc(t, src, 5)
	wantOutputs(t, a, b)
}

func TestIRStringers(t *testing.T) {
	p := compileSrc(t, `
var g;
func f(a) { if (a > 0) { return -a; } return a; }
func main() { g = f(3); }`)
	for _, ins := range p.Instrs {
		if s := ins.String(); s == "" {
			t.Fatalf("empty instruction string for %v", ins.Op)
		}
	}
	if compiler.OpCall.String() != "call" || compiler.OpHalt.String() != "halt" {
		t.Error("op names wrong")
	}
	if compiler.Op(200).String() == "" {
		t.Error("unknown op should still render")
	}
	if compiler.BuiltinName(compiler.BWork) != "work" {
		t.Errorf("BuiltinName = %q", compiler.BuiltinName(compiler.BWork))
	}
	if compiler.BuiltinName(compiler.Builtin(99)) == "" {
		t.Error("unknown builtin should still render")
	}
	if gi, ok := p.GlobalIndex("g"); !ok || gi != 0 {
		t.Errorf("GlobalIndex(g) = %d, %v", gi, ok)
	}
	if _, ok := p.GlobalIndex("nope"); ok {
		t.Error("GlobalIndex of unknown global reported ok")
	}
	var ce error = &compiler.CompileError{Msg: "boom"}
	if ce.Error() == "" {
		t.Error("CompileError.Error empty")
	}
}
