package compiler

import (
	"fmt"
	"strings"

	"vprof/internal/debuginfo"
	"vprof/internal/lang"
)

// A CompileError reports a semantic error at a source position.
type CompileError struct {
	Pos lang.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos lang.Pos, format string, args ...any) error {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile lowers a parsed file to an executable Program with debug info.
// The file must define a zero-parameter function named main.
func Compile(f *lang.File) (*Program, error) {
	c := &state{
		prog: &Program{
			File:        f.Path,
			funcIndex:   map[string]int{},
			globalIndex: map[string]int{},
			CallGraph:   map[string][]string{},
		},
		constIndex: map[int64]int{},
	}

	for _, g := range f.Globals() {
		if _, dup := c.prog.globalIndex[g.Name]; dup {
			return nil, errf(g.Pos, "duplicate global %q", g.Name)
		}
		c.prog.globalIndex[g.Name] = len(c.prog.GlobalNames)
		c.prog.GlobalNames = append(c.prog.GlobalNames, g.Name)
	}
	for _, fn := range f.Funcs() {
		if _, dup := c.prog.funcIndex[fn.Name]; dup {
			return nil, errf(fn.Pos, "duplicate function %q", fn.Name)
		}
		if IsBuiltinName(fn.Name) {
			return nil, errf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		info := &FuncInfo{
			Name:      fn.Name,
			Index:     len(c.prog.Funcs),
			NumParams: len(fn.Params),
			Library:   fn.Library,
			DeclLine:  fn.Pos.Line,
		}
		c.prog.funcIndex[fn.Name] = info.Index
		c.prog.Funcs = append(c.prog.Funcs, info)
	}
	mainIdx, ok := c.prog.funcIndex["main"]
	if !ok {
		return nil, errf(lang.Pos{File: f.Path, Line: 1, Col: 1}, "no main function")
	}
	if c.prog.Funcs[mainIdx].NumParams != 0 {
		return nil, errf(f.Func("main").Pos, "main must take no parameters")
	}
	c.prog.MainIndex = mainIdx

	// Compile user functions in declaration order.
	for _, fn := range f.Funcs() {
		fc := &funcCompiler{state: c, info: c.prog.Funcs[c.prog.funcIndex[fn.Name]], decl: fn}
		if err := fc.compile(); err != nil {
			return nil, err
		}
		c.funcMeta = append(c.funcMeta, fc.meta())
	}

	// Synthesize the __init entry shim: run global initializers, call
	// main, halt.
	if err := c.emitInit(f); err != nil {
		return nil, err
	}

	c.prog.PointerVars = InferPointers(f)
	buildDebugInfo(c)
	return c.prog, nil
}

// state carries shared compilation state.
type state struct {
	prog       *Program
	constIndex map[int64]int
	funcMeta   []funcDebugMeta
}

func (c *state) constIdx(v int64) int32 {
	if i, ok := c.constIndex[v]; ok {
		return int32(i)
	}
	i := len(c.prog.Consts)
	c.prog.Consts = append(c.prog.Consts, v)
	c.constIndex[v] = i
	return int32(i)
}

func (c *state) emit(op Op, a, b int32, line int) int {
	c.prog.Instrs = append(c.prog.Instrs, Instr{Op: op, A: a, B: b, Line: int32(line)})
	return len(c.prog.Instrs) - 1
}

func (c *state) patch(pc int, target int) {
	c.prog.Instrs[pc].A = int32(target)
}

func (c *state) here() int { return len(c.prog.Instrs) }

// recordCallee appends callee to caller's call-graph edge list if new.
func (c *state) recordCallee(caller, callee string) {
	for _, e := range c.prog.CallGraph[caller] {
		if e == callee {
			return
		}
	}
	c.prog.CallGraph[caller] = append(c.prog.CallGraph[caller], callee)
}

func (c *state) emitInit(f *lang.File) error {
	info := &FuncInfo{
		Name:      "__init",
		Index:     len(c.prog.Funcs),
		Synthetic: true,
	}
	c.prog.funcIndex["__init"] = info.Index
	c.prog.Funcs = append(c.prog.Funcs, info)
	c.prog.EntryPC = c.here()
	info.Entry = c.here()

	fc := &funcCompiler{state: c, info: info}
	fc.pushScope()
	for _, g := range f.Globals() {
		gi := c.prog.globalIndex[g.Name]
		if g.Init != nil {
			if err := fc.expr(g.Init); err != nil {
				return err
			}
		} else {
			c.emit(OpConst, c.constIdx(0), 0, g.Pos.Line)
		}
		c.emit(OpStoreG, int32(gi), 0, g.Pos.Line)
	}
	line := 0
	if m := f.Func("main"); m != nil {
		line = m.Pos.Line
	}
	c.emit(OpCall, int32(c.prog.MainIndex), 0, line)
	c.emit(OpPop, 0, 0, line)
	c.emit(OpHalt, 0, 0, line)
	info.End = c.here()
	info.NumSlots = fc.nextSlot
	c.funcMeta = append(c.funcMeta, fc.meta())
	c.recordCallee("__init", "main")
	return nil
}

// funcDebugMeta is per-function bookkeeping consumed by debug-info emission.
type funcDebugMeta struct {
	fn        *FuncInfo
	slotDecl  []int    // slot -> PC at which the variable becomes live
	slotEnd   []int    // slot -> PC at which its scope ends (-1: function end)
	slotLine  []int    // slot -> declaration line
	slotNames []string // slot -> name
	callPCs   []int    // PCs of OpCall instructions within the function
}

// funcCompiler compiles one function body.
type funcCompiler struct {
	*state
	info *FuncInfo
	decl *lang.FuncDecl

	scopes    []map[string]int
	nextSlot  int
	slotDecl  []int
	slotEnd   []int
	slotLine  []int
	slotNames []string
	callPCs   []int
	loops     []*loopCtx
}

type loopCtx struct {
	breakPCs []int // JUMPs to patch to loop end
	contPC   int   // PC to jump to on continue (condition or post)
	contPCs  []int // JUMPs to patch when contPC is not yet known
}

func (fc *funcCompiler) meta() funcDebugMeta {
	return funcDebugMeta{
		fn:        fc.info,
		slotDecl:  fc.slotDecl,
		slotEnd:   fc.slotEnd,
		slotLine:  fc.slotLine,
		slotNames: fc.slotNames,
		callPCs:   fc.callPCs,
	}
}

func (fc *funcCompiler) pushScope() { fc.scopes = append(fc.scopes, map[string]int{}) }

// popScope closes the innermost scope, recording the end-of-liveness PC for
// every variable declared in it (DWARF scopes a block variable to its
// lexical block, not the whole function).
func (fc *funcCompiler) popScope() {
	scope := fc.scopes[len(fc.scopes)-1]
	for _, slot := range scope {
		fc.slotEnd[slot] = fc.here()
	}
	fc.scopes = fc.scopes[:len(fc.scopes)-1]
}

// declare allocates a fresh slot for name in the innermost scope.
func (fc *funcCompiler) declare(name string, declPC, line int) (int, error) {
	scope := fc.scopes[len(fc.scopes)-1]
	if _, dup := scope[name]; dup {
		return 0, errf(lang.Pos{File: fc.prog.File, Line: line}, "duplicate variable %q in scope", name)
	}
	slot := fc.nextSlot
	fc.nextSlot++
	scope[name] = slot
	fc.slotDecl = append(fc.slotDecl, declPC)
	fc.slotEnd = append(fc.slotEnd, -1)
	fc.slotLine = append(fc.slotLine, line)
	fc.slotNames = append(fc.slotNames, name)
	return slot, nil
}

// lookupLocal resolves name to a slot, innermost scope first.
func (fc *funcCompiler) lookupLocal(name string) (int, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if s, ok := fc.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

func (fc *funcCompiler) compile() error {
	fc.info.Entry = fc.here()
	fc.pushScope()
	for _, p := range fc.decl.Params {
		if _, err := fc.declare(p.Name, fc.info.Entry, p.Pos.Line); err != nil {
			return err
		}
	}
	if err := fc.block(fc.decl.Body); err != nil {
		return err
	}
	// Implicit "return 0" if control can fall off the end.
	endLine := fc.decl.Pos.Line
	fc.emit(OpConst, fc.constIdx(0), 0, endLine)
	fc.emit(OpRet, 0, 0, endLine)
	fc.popScope()
	fc.info.End = fc.here()
	fc.info.NumSlots = fc.nextSlot
	fc.info.SlotNames = fc.slotNames
	fc.info.SlotLines = fc.slotLine
	return nil
}

func (fc *funcCompiler) block(b *lang.BlockStmt) error {
	fc.pushScope()
	defer fc.popScope()
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.BlockStmt:
		return fc.block(st)
	case *lang.DeclStmt:
		d := st.Decl
		if d.Init != nil {
			if err := fc.expr(d.Init); err != nil {
				return err
			}
		} else {
			fc.emit(OpConst, fc.constIdx(0), 0, d.Pos.Line)
		}
		// The variable becomes live at the StoreL instruction.
		slot, err := fc.declare(d.Name, fc.here(), d.Pos.Line)
		if err != nil {
			return err
		}
		fc.emit(OpStoreL, int32(slot), 0, d.Pos.Line)
		return nil
	case *lang.AssignStmt:
		return fc.assign(st)
	case *lang.IfStmt:
		return fc.ifStmt(st)
	case *lang.WhileStmt:
		return fc.whileStmt(st)
	case *lang.ForStmt:
		return fc.forStmt(st)
	case *lang.ReturnStmt:
		if st.Value != nil {
			if err := fc.expr(st.Value); err != nil {
				return err
			}
		} else {
			fc.emit(OpConst, fc.constIdx(0), 0, st.Pos.Line)
		}
		fc.emit(OpRet, 0, 0, st.Pos.Line)
		return nil
	case *lang.BreakStmt:
		if len(fc.loops) == 0 {
			return errf(st.Pos, "break outside loop")
		}
		l := fc.loops[len(fc.loops)-1]
		l.breakPCs = append(l.breakPCs, fc.emit(OpJump, -1, 0, st.Pos.Line))
		return nil
	case *lang.ContinueStmt:
		if len(fc.loops) == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		l := fc.loops[len(fc.loops)-1]
		if l.contPC >= 0 {
			fc.emit(OpJump, int32(l.contPC), 0, st.Pos.Line)
		} else {
			l.contPCs = append(l.contPCs, fc.emit(OpJump, -1, 0, st.Pos.Line))
		}
		return nil
	case *lang.ExprStmt:
		if err := fc.expr(st.X); err != nil {
			return err
		}
		fc.emit(OpPop, 0, 0, st.Pos.Line)
		return nil
	}
	return errf(s.NodePos(), "unsupported statement %T", s)
}

// binOpFor maps compound-assignment operators to binary operators.
var compoundBin = map[lang.AssignOp]lang.BinaryOp{
	lang.AssignAdd: lang.BinAdd,
	lang.AssignSub: lang.BinSub,
	lang.AssignMul: lang.BinMul,
	lang.AssignDiv: lang.BinDiv,
	lang.AssignMod: lang.BinMod,
}

func (fc *funcCompiler) assign(st *lang.AssignStmt) error {
	slot, isLocal := fc.lookupLocal(st.Name)
	var gidx int
	isGlobal := false
	if !isLocal {
		if gi, ok := fc.prog.globalIndex[st.Name]; ok {
			gidx, isGlobal = gi, true
		}
	}
	if !isLocal && !isGlobal {
		return errf(st.Pos, "assignment to undeclared variable %q", st.Name)
	}
	if st.Op != lang.AssignSet {
		if isLocal {
			fc.emit(OpLoadL, int32(slot), 0, st.Pos.Line)
		} else {
			fc.emit(OpLoadG, int32(gidx), 0, st.Pos.Line)
		}
	}
	if err := fc.expr(st.Value); err != nil {
		return err
	}
	if st.Op != lang.AssignSet {
		fc.emit(OpBin, int32(compoundBin[st.Op]), 0, st.Pos.Line)
	}
	if isLocal {
		fc.emit(OpStoreL, int32(slot), 0, st.Pos.Line)
	} else {
		fc.emit(OpStoreG, int32(gidx), 0, st.Pos.Line)
	}
	return nil
}

func (fc *funcCompiler) ifStmt(st *lang.IfStmt) error {
	if err := fc.expr(st.Cond); err != nil {
		return err
	}
	jz := fc.emit(OpJZ, -1, 0, st.Pos.Line)
	if err := fc.block(st.Then); err != nil {
		return err
	}
	if st.Else == nil {
		fc.patch(jz, fc.here())
		return nil
	}
	jend := fc.emit(OpJump, -1, 0, st.Pos.Line)
	fc.patch(jz, fc.here())
	if err := fc.stmt(st.Else); err != nil {
		return err
	}
	fc.patch(jend, fc.here())
	return nil
}

func (fc *funcCompiler) whileStmt(st *lang.WhileStmt) error {
	condPC := fc.here()
	if err := fc.expr(st.Cond); err != nil {
		return err
	}
	jz := fc.emit(OpJZ, -1, 0, st.Pos.Line)
	l := &loopCtx{contPC: condPC}
	fc.loops = append(fc.loops, l)
	if err := fc.block(st.Body); err != nil {
		return err
	}
	fc.loops = fc.loops[:len(fc.loops)-1]
	fc.emit(OpJump, int32(condPC), 0, st.Pos.Line)
	end := fc.here()
	fc.patch(jz, end)
	for _, pc := range l.breakPCs {
		fc.patch(pc, end)
	}
	return nil
}

func (fc *funcCompiler) forStmt(st *lang.ForStmt) error {
	fc.pushScope() // for-clause scope (init variable)
	defer fc.popScope()
	if st.Init != nil {
		if err := fc.stmt(st.Init); err != nil {
			return err
		}
	}
	condPC := fc.here()
	var jz int = -1
	if st.Cond != nil {
		if err := fc.expr(st.Cond); err != nil {
			return err
		}
		jz = fc.emit(OpJZ, -1, 0, st.Pos.Line)
	}
	// continue jumps to the post statement, whose PC is unknown until the
	// body has been compiled.
	l := &loopCtx{contPC: -1}
	fc.loops = append(fc.loops, l)
	if err := fc.block(st.Body); err != nil {
		return err
	}
	fc.loops = fc.loops[:len(fc.loops)-1]
	postPC := fc.here()
	if st.Post != nil {
		if err := fc.stmt(st.Post); err != nil {
			return err
		}
	}
	fc.emit(OpJump, int32(condPC), 0, st.Pos.Line)
	end := fc.here()
	if jz >= 0 {
		fc.patch(jz, end)
	}
	for _, pc := range l.breakPCs {
		fc.patch(pc, end)
	}
	for _, pc := range l.contPCs {
		fc.patch(pc, postPC)
	}
	return nil
}

func (fc *funcCompiler) expr(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.NumberLit:
		fc.emit(OpConst, fc.constIdx(x.Value), 0, x.Pos.Line)
		return nil
	case *lang.BoolLit:
		v := int64(0)
		if x.Value {
			v = 1
		}
		fc.emit(OpConst, fc.constIdx(v), 0, x.Pos.Line)
		return nil
	case *lang.StringLit:
		return errf(x.Pos, "string literal only allowed as the first argument of spawn")
	case *lang.Ident:
		if slot, ok := fc.lookupLocal(x.Name); ok {
			fc.emit(OpLoadL, int32(slot), 0, x.Pos.Line)
			return nil
		}
		if gi, ok := fc.prog.globalIndex[x.Name]; ok {
			fc.emit(OpLoadG, int32(gi), 0, x.Pos.Line)
			return nil
		}
		return errf(x.Pos, "undeclared variable %q", x.Name)
	case *lang.UnaryExpr:
		if err := fc.expr(x.X); err != nil {
			return err
		}
		fc.emit(OpUn, int32(x.Op), 0, x.Pos.Line)
		return nil
	case *lang.BinaryExpr:
		if x.Op == lang.BinAnd || x.Op == lang.BinOr {
			return fc.shortCircuit(x)
		}
		if err := fc.expr(x.X); err != nil {
			return err
		}
		if err := fc.expr(x.Y); err != nil {
			return err
		}
		fc.emit(OpBin, int32(x.Op), 0, x.Pos.Line)
		return nil
	case *lang.CallExpr:
		return fc.call(x)
	}
	return errf(e.NodePos(), "unsupported expression %T", e)
}

// shortCircuit compiles && and || with jump-based evaluation, producing a
// normalized 0/1 result.
func (fc *funcCompiler) shortCircuit(x *lang.BinaryExpr) error {
	line := x.Pos.Line
	if err := fc.expr(x.X); err != nil {
		return err
	}
	var early int
	if x.Op == lang.BinAnd {
		early = fc.emit(OpJZ, -1, 0, line)
	} else {
		early = fc.emit(OpJNZ, -1, 0, line)
	}
	if err := fc.expr(x.Y); err != nil {
		return err
	}
	var second int
	if x.Op == lang.BinAnd {
		second = fc.emit(OpJZ, -1, 0, line)
		fc.emit(OpConst, fc.constIdx(1), 0, line)
	} else {
		second = fc.emit(OpJNZ, -1, 0, line)
		fc.emit(OpConst, fc.constIdx(0), 0, line)
	}
	jend := fc.emit(OpJump, -1, 0, line)
	shortPC := fc.here()
	if x.Op == lang.BinAnd {
		fc.emit(OpConst, fc.constIdx(0), 0, line)
	} else {
		fc.emit(OpConst, fc.constIdx(1), 0, line)
	}
	fc.patch(early, shortPC)
	fc.patch(second, shortPC)
	fc.patch(jend, fc.here())
	return nil
}

func (fc *funcCompiler) call(x *lang.CallExpr) error {
	// User function?
	if fi, ok := fc.prog.funcIndex[x.Name]; ok {
		fn := fc.prog.Funcs[fi]
		if len(x.Args) != fn.NumParams {
			return errf(x.Pos, "call to %s with %d args, want %d", x.Name, len(x.Args), fn.NumParams)
		}
		for _, a := range x.Args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		pc := fc.emit(OpCall, int32(fi), int32(len(x.Args)), x.Pos.Line)
		fc.callPCs = append(fc.callPCs, pc)
		fc.recordCallee(fc.info.Name, x.Name)
		return nil
	}
	b, ok := builtinNames[x.Name]
	if !ok {
		return errf(x.Pos, "call to undefined function %q", x.Name)
	}
	if b == BSpawn {
		return fc.spawn(x)
	}
	if want := builtinArity[b]; len(x.Args) != want {
		return errf(x.Pos, "%s takes %d args, got %d", x.Name, want, len(x.Args))
	}
	for _, a := range x.Args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	fc.emit(OpCallB, int32(b), int32(len(x.Args)), x.Pos.Line)
	return nil
}

func (fc *funcCompiler) spawn(x *lang.CallExpr) error {
	if len(x.Args) < 1 {
		return errf(x.Pos, "spawn requires a function name")
	}
	name, ok := x.Args[0].(*lang.StringLit)
	if !ok {
		return errf(x.Args[0].NodePos(), `spawn's first argument must be a string literal naming a function`)
	}
	fi, ok := fc.prog.funcIndex[name.Value]
	if !ok {
		return errf(name.Pos, "spawn of undefined function %q", name.Value)
	}
	fn := fc.prog.Funcs[fi]
	if len(x.Args)-1 != fn.NumParams {
		return errf(x.Pos, "spawn %s with %d args, want %d", name.Value, len(x.Args)-1, fn.NumParams)
	}
	fc.emit(OpConst, fc.constIdx(int64(fi)), 0, name.Pos.Line)
	for _, a := range x.Args[1:] {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	fc.emit(OpCallB, int32(BSpawn), int32(len(x.Args)), x.Pos.Line)
	fc.recordCallee(fc.info.Name, name.Value)
	return nil
}

// InferPointers runs a small flow-insensitive fixpoint analysis marking
// variables that may hold pointers (results of alloc()). Keys are
// "func\x00var" or "#global\x00var"; function returns use "ret\x00func".
func InferPointers(f *lang.File) map[string]bool {
	ptr := map[string]bool{}
	// edges[dst] = sources that flow into dst.
	edges := map[string][]string{}
	addEdge := func(dst, src string) { edges[dst] = append(edges[dst], src) }

	globals := map[string]bool{}
	for _, g := range f.Globals() {
		globals[g.Name] = true
	}
	key := func(fn *lang.FuncDecl, name string) string {
		if fn != nil {
			isParam := false
			for _, p := range fn.Params {
				if p.Name == name {
					isParam = true
				}
			}
			if !isParam && globals[name] && !declaredLocally(fn, name) {
				return debuginfo.GlobalScope + "\x00" + name
			}
			return fn.Name + "\x00" + name
		}
		return debuginfo.GlobalScope + "\x00" + name
	}

	// exprSource returns the flow key of an expression's value, "" if it
	// cannot carry a pointer, or "ALLOC" for alloc() calls.
	var exprSource func(fn *lang.FuncDecl, e lang.Expr) string
	exprSource = func(fn *lang.FuncDecl, e lang.Expr) string {
		switch x := e.(type) {
		case *lang.Ident:
			return key(fn, x.Name)
		case *lang.CallExpr:
			if x.Name == "alloc" {
				return "ALLOC"
			}
			if f.Func(x.Name) != nil {
				return "ret\x00" + x.Name
			}
			return ""
		default:
			return ""
		}
	}
	connect := func(dst string, src string) {
		switch src {
		case "":
		case "ALLOC":
			ptr[dst] = true
		default:
			addEdge(dst, src)
		}
	}

	for _, fn := range f.Funcs() {
		fn := fn
		lang.Walk(fn.Body, func(n lang.Node) bool {
			switch x := n.(type) {
			case *lang.DeclStmt:
				if x.Decl.Init != nil {
					connect(key(fn, x.Decl.Name), exprSource(fn, x.Decl.Init))
				}
			case *lang.AssignStmt:
				if x.Op == lang.AssignSet {
					connect(key(fn, x.Name), exprSource(fn, x.Value))
				}
			case *lang.ReturnStmt:
				if x.Value != nil {
					connect("ret\x00"+fn.Name, exprSource(fn, x.Value))
				}
			case *lang.CallExpr:
				callee := f.Func(x.Name)
				if callee != nil {
					for i, a := range x.Args {
						if i < len(callee.Params) {
							connect(key(callee, callee.Params[i].Name), exprSource(fn, a))
						}
					}
				}
			}
			return true
		})
	}
	for _, g := range f.Globals() {
		if g.Init != nil {
			connect(debuginfo.GlobalScope+"\x00"+g.Name, exprSource(nil, g.Init))
		}
	}

	// Fixpoint propagation.
	for changed := true; changed; {
		changed = false
		for dst, srcs := range edges {
			if ptr[dst] {
				continue
			}
			for _, s := range srcs {
				if ptr[s] {
					ptr[dst] = true
					changed = true
					break
				}
			}
		}
	}
	// Drop synthetic "ret" keys.
	out := map[string]bool{}
	for k, v := range ptr {
		if v && !strings.HasPrefix(k, "ret\x00") {
			out[k] = true
		}
	}
	return out
}

// declaredLocally reports whether name is declared as a local anywhere in fn.
func declaredLocally(fn *lang.FuncDecl, name string) bool {
	found := false
	lang.Walk(fn.Body, func(n lang.Node) bool {
		if d, ok := n.(*lang.DeclStmt); ok && d.Decl.Name == name {
			found = true
		}
		return !found
	})
	return found
}
