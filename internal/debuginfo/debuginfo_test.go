package debuginfo

import (
	"strings"
	"testing"
)

func sampleInfo() *Info {
	return &Info{
		File:    "t.vp",
		TextLen: 100,
		Lines:   mkLines(100),
		Funcs: []FuncRange{
			{Name: "alpha", Entry: 0, End: 40, Blocks: []BlockRange{
				{Label: "bb0", Index: 0, Start: 0, End: 10, Line: 2},
				{Label: "bb1", Index: 1, Start: 10, End: 25, Line: 4},
				{Label: "bb2", Index: 2, Start: 25, End: 40, Line: 7},
			}},
			{Name: "beta", Entry: 40, End: 90, Library: true, Blocks: []BlockRange{
				{Label: "bb0", Index: 0, Start: 40, End: 90, Line: 12},
			}},
			{Name: "gamma", Entry: 90, End: 100},
		},
		Vars: []VarLoc{
			{Name: "x", Func: "alpha", PCStart: 5, PCEnd: 40, Loc: LocReg, Reg: 1, Size: 8},
			{Name: "x", Func: "alpha", PCStart: 0, PCEnd: 3, Loc: LocReg, Reg: 2, Size: 8},
			{Name: "g", Func: GlobalScope, PCStart: 0, PCEnd: 100, Loc: LocMem, Addr: 0x1000, Size: 8},
		},
	}
}

func mkLines(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i/10 + 1)
	}
	return out
}

func TestFuncAt(t *testing.T) {
	in := sampleInfo()
	cases := []struct {
		pc   int
		want string
	}{
		{0, "alpha"}, {39, "alpha"}, {40, "beta"}, {89, "beta"}, {90, "gamma"}, {99, "gamma"},
	}
	for _, c := range cases {
		fn := in.FuncAt(c.pc)
		if fn == nil || fn.Name != c.want {
			t.Errorf("FuncAt(%d) = %v, want %s", c.pc, fn, c.want)
		}
	}
	if in.FuncAt(100) != nil || in.FuncAt(-1) != nil {
		t.Error("out-of-range pc should return nil")
	}
}

func TestFuncNamedAndBlocks(t *testing.T) {
	in := sampleInfo()
	alpha := in.FuncNamed("alpha")
	if alpha == nil {
		t.Fatal("alpha missing")
	}
	if b := alpha.BlockAt(12); b == nil || b.Label != "bb1" {
		t.Errorf("BlockAt(12) = %v", b)
	}
	if b := alpha.Block("bb2"); b == nil || b.Start != 25 {
		t.Errorf("Block(bb2) = %v", b)
	}
	if alpha.Block("bb9") != nil {
		t.Error("unknown label should be nil")
	}
	if in.FuncNamed("nope") != nil {
		t.Error("unknown function should be nil")
	}
	fn, blk := in.BlockAt(30)
	if fn.Name != "alpha" || blk.Label != "bb2" {
		t.Errorf("BlockAt(30) = %s/%v", fn.Name, blk)
	}
}

func TestLineAt(t *testing.T) {
	in := sampleInfo()
	if l := in.LineAt(25); l != 3 {
		t.Errorf("LineAt(25) = %d", l)
	}
	if in.LineAt(-1) != 0 || in.LineAt(1000) != 0 {
		t.Error("out-of-range LineAt should be 0")
	}
}

func TestVarQueries(t *testing.T) {
	in := sampleInfo()
	if got := len(in.VarsOf("alpha")); got != 2 {
		t.Errorf("VarsOf(alpha) = %d entries", got)
	}
	if got := len(in.VarEntries("alpha", "x")); got != 2 {
		t.Errorf("VarEntries(alpha, x) = %d", got)
	}
	if got := len(in.VarsOf(GlobalScope)); got != 1 {
		t.Errorf("VarsOf(#global) = %d", got)
	}
	v := in.Vars[0]
	if !v.Contains(5) || !v.Contains(39) || v.Contains(40) || v.Contains(4) {
		t.Error("Contains boundary behavior wrong")
	}
}

func TestBlockDistance(t *testing.T) {
	in := sampleInfo()
	if d := in.BlockDistance("alpha", "bb0", "bb2"); d != 2 {
		t.Errorf("distance bb0..bb2 = %d", d)
	}
	if d := in.BlockDistance("alpha", "bb2", "bb0"); d != 2 {
		t.Errorf("distance symmetric: %d", d)
	}
	if d := in.BlockDistance("alpha", "bb1", "bb1"); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := in.BlockDistance("alpha", "bb0", "bb9"); d != -1 {
		t.Errorf("unknown block = %d", d)
	}
	if d := in.BlockDistance("nope", "bb0", "bb1"); d != -1 {
		t.Errorf("unknown function = %d", d)
	}
}

func TestVarLocString(t *testing.T) {
	reg := VarLoc{PCStart: 0x10, PCEnd: 0x20, Loc: LocReg, Reg: 3, Size: 8}
	if s := reg.String(); !strings.Contains(s, "0x10:0x20:r3:0:8:false") {
		t.Errorf("reg format: %s", s)
	}
	mem := VarLoc{PCStart: 0, PCEnd: 5, Loc: LocMem, Addr: 4096, Size: 8, BasicTypePtr: true}
	if s := mem.String(); !strings.Contains(s, "addr:4096:8:true") {
		t.Errorf("mem format: %s", s)
	}
	if LocReg.String() != "reg" || LocMem.String() != "addr" {
		t.Error("LocKind strings wrong")
	}
}
