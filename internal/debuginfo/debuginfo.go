// Package debuginfo models the DWARF debugging information that vProf's
// binary static analysis extracts from a -pg executable (paper §3.2).
//
// The compiler emits an Info per program. Each monitored variable is
// described by one or more VarLoc entries, the analogue of the paper's
// variable metadata lines:
//
//	pc_start:pc_end:location:offset:size:basic_type_ptr
//
// A variable may have several entries (its runtime location changes over the
// function body), and — exactly as the paper observes for available_mem —
// there may be *gaps*: PC ranges where the variable exists in the source but
// has no location entry, because a caller-saved register was spilled across a
// call and the spill slot is not described. vProf treats such PCs as "not
// accessible".
package debuginfo

import (
	"fmt"
	"sort"
)

// GlobalScope is the function-name placeholder for global variables, matching
// the paper's #global schema keyword.
const GlobalScope = "#global"

// LocKind says where a variable lives at runtime.
type LocKind uint8

const (
	// LocReg places the variable in a virtual register (a frame slot).
	LocReg LocKind = iota
	// LocMem places the variable at a fixed memory address (globals).
	LocMem
)

func (k LocKind) String() string {
	if k == LocMem {
		return "addr"
	}
	return "reg"
}

// VarLoc is one variable-metadata entry: a contiguous PC range in which the
// variable can be read from a specific location.
type VarLoc struct {
	Name string
	Func string // declaring function, or GlobalScope
	// [PCStart, PCEnd) is the half-open PC range covered by this entry.
	PCStart, PCEnd int
	Loc            LocKind
	Reg            int // register (frame-slot) number when Loc == LocReg
	Addr           int // memory address when Loc == LocMem
	Size           int // size in bytes (always 8 in this model)
	// BasicTypePtr marks a pointer to a basic type that should be
	// dereferenced to obtain the value (paper's basic_type_ptr flag).
	BasicTypePtr bool
	// IsPointer marks a variable holding a pointer to a non-basic type;
	// the discounter uses only the processing-cost dimension for these.
	IsPointer bool
	DeclLine  int
}

// Contains reports whether pc falls inside the entry's PC range.
func (v *VarLoc) Contains(pc int) bool { return pc >= v.PCStart && pc < v.PCEnd }

// String renders the entry in the paper's metadata format.
func (v *VarLoc) String() string {
	loc := fmt.Sprintf("r%d", v.Reg)
	off := 0
	if v.Loc == LocMem {
		loc = "addr"
		off = v.Addr
	}
	return fmt.Sprintf("0x%x:0x%x:%s:%d:%d:%v", v.PCStart, v.PCEnd, loc, off, v.Size, v.BasicTypePtr)
}

// BlockRange describes one basic block of a function.
type BlockRange struct {
	Label string // bb0, bb1, ... in PC order
	Index int    // ordinal within the function
	// [Start, End) PC range.
	Start, End int
	Line       int // source line of the block's first instruction
}

// FuncRange describes one function's place in the text section.
type FuncRange struct {
	Name     string
	File     string
	DeclLine int
	// [Entry, End) PC range.
	Entry, End int
	// Library marks code living outside the profiled executable (the
	// paper's dynamic-library case: gprof records no samples there).
	Library bool
	Blocks  []BlockRange
}

// Contains reports whether pc falls inside the function's range.
func (f *FuncRange) Contains(pc int) bool { return pc >= f.Entry && pc < f.End }

// Block returns the block with the given label, or nil.
func (f *FuncRange) Block(label string) *BlockRange {
	for i := range f.Blocks {
		if f.Blocks[i].Label == label {
			return &f.Blocks[i]
		}
	}
	return nil
}

// BlockAt returns the block containing pc, or nil.
func (f *FuncRange) BlockAt(pc int) *BlockRange {
	for i := range f.Blocks {
		if pc >= f.Blocks[i].Start && pc < f.Blocks[i].End {
			return &f.Blocks[i]
		}
	}
	return nil
}

// Info is the complete debug information for a compiled program.
type Info struct {
	File    string
	TextLen int
	Funcs   []FuncRange // sorted by Entry
	Lines   []int32     // pc -> source line (len == TextLen)
	Vars    []VarLoc
}

// FuncAt returns the function containing pc, or nil.
func (in *Info) FuncAt(pc int) *FuncRange {
	i := sort.Search(len(in.Funcs), func(i int) bool { return in.Funcs[i].End > pc })
	if i < len(in.Funcs) && in.Funcs[i].Contains(pc) {
		return &in.Funcs[i]
	}
	return nil
}

// FuncNamed returns the function with the given name, or nil.
func (in *Info) FuncNamed(name string) *FuncRange {
	for i := range in.Funcs {
		if in.Funcs[i].Name == name {
			return &in.Funcs[i]
		}
	}
	return nil
}

// LineAt returns the source line for pc, or 0 if out of range.
func (in *Info) LineAt(pc int) int {
	if pc < 0 || pc >= len(in.Lines) {
		return 0
	}
	return int(in.Lines[pc])
}

// BlockAt returns the function and basic block containing pc.
func (in *Info) BlockAt(pc int) (*FuncRange, *BlockRange) {
	fn := in.FuncAt(pc)
	if fn == nil {
		return nil, nil
	}
	return fn, fn.BlockAt(pc)
}

// VarsOf returns the metadata entries for variables declared in the named
// function (use GlobalScope for globals).
func (in *Info) VarsOf(fn string) []VarLoc {
	var out []VarLoc
	for _, v := range in.Vars {
		if v.Func == fn {
			out = append(out, v)
		}
	}
	return out
}

// VarEntries returns all metadata entries for a specific variable of a
// function.
func (in *Info) VarEntries(fn, name string) []VarLoc {
	var out []VarLoc
	for _, v := range in.Vars {
		if v.Func == fn && v.Name == name {
			out = append(out, v)
		}
	}
	return out
}

// BlockDistance returns the absolute distance, in basic-block ordinals,
// between two blocks of the same function. This is the paper's bb-dist
// metric (Table 3): distance between the block vProf reports and the block
// where developers fixed the bug. It returns -1 if either block is unknown.
func (in *Info) BlockDistance(fn, labelA, labelB string) int {
	f := in.FuncNamed(fn)
	if f == nil {
		return -1
	}
	a, b := f.Block(labelA), f.Block(labelB)
	if a == nil || b == nil {
		return -1
	}
	d := a.Index - b.Index
	if d < 0 {
		d = -d
	}
	return d
}
