// Package obs is the observability layer of the continuous-profiling
// service: a dependency-free metrics registry (counters, gauges, histograms
// with fixed bucket layouts) with Prometheus text exposition, a structured
// leveled logger built on log/slog, and HTTP middleware that instruments a
// request path without touching its behavior.
//
// Design constraints, in order:
//
//   - Free. Instrumented code must produce byte-for-byte the output of
//     uninstrumented code: metrics are side channels (atomic counters,
//     wall-clock histograms) that never feed back into analysis results.
//   - Nil-safe. Every metric method no-ops on a nil receiver, so packages
//     can be instrumented unconditionally and pay one nil check when no
//     registry is installed.
//   - Deterministic exposition. WritePrometheus renders families sorted by
//     name and series sorted by label values, so scrapes diff cleanly.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Methods on a nil *Counter
// are no-ops.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are dropped (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a metric that can go up and down. Methods on a nil *Gauge are
// no-ops.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.set(v)
}

// Add shifts the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram counts observations into a fixed bucket layout. Methods on a nil
// *Histogram are no-ops.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound contains v; len(upper) = +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// DefBuckets is a latency bucket layout in seconds, matching the Prometheus
// client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns n buckets starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n buckets starting at start, each factor times
// the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metric kinds, also the Prometheus TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric name: a type, a label schema, and a series per label
// value combination (a single unlabeled series for plain metrics).
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64

	mu     sync.Mutex
	series map[string]any // label-values key → *Counter | *Gauge | *Histogram
}

func (f *family) get(key string) (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	return m, ok
}

func (f *family) getOrCreate(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.series[key] = m
	return m
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry. All
// methods are safe for concurrent use. Registration is idempotent:
// re-requesting an existing (name, kind, labels) returns the same metric,
// and a kind or label-schema mismatch panics (a programming error, caught
// at startup).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help, kind string, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q label mismatch: %v vs %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: map[string]any{}}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil).getOrCreate("").(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil).getOrCreate("").(*Gauge)
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindHistogram, nil, buckets).getOrCreate("").(*Histogram)
}

// CounterVec is a counter family partitioned by labels. Methods on a nil
// *CounterVec are no-ops.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.getOrCreate(labelKey(v.f, values)).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.getOrCreate(labelKey(v.f, values)).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.getOrCreate(labelKey(v.f, values)).(*Histogram)
}

// labelKey joins label values into the series key; \x00 cannot appear in a
// reasonable label value, so the join is unambiguous.
func labelKey(f *family, values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	return strings.Join(values, "\x00")
}

// labelPairs renders {k="v",...} for a series key; extra appends additional
// pairs (the histogram le label).
func labelPairs(labels []string, key string, extra ...string) string {
	var pairs []string
	if len(labels) > 0 {
		values := strings.Split(key, "\x00")
		for i, l := range labels {
			pairs = append(pairs, l+`="`+escapeLabel(values[i])+`"`)
		}
	}
	pairs = append(pairs, extra...)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// escapeLabel applies the three exposition-format label escapes: backslash,
// newline, double quote.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text exposition
// format, deterministically ordered (families by name, series by label
// values).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			switch m := f.series[k].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, k), formatFloat(m.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, k), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, ub := range m.upper {
					cum += m.counts[i].Load()
					le := fmt.Sprintf("le=%q", formatFloat(ub))
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, k, le), cum)
				}
				cum += m.counts[len(m.upper)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, k, `le="+Inf"`), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPairs(f.labels, k), formatFloat(m.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, k), cum)
			}
		}
		f.mu.Unlock()
	}
}

// Handler serves the registry in the Prometheus text exposition format
// (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
