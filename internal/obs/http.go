package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments HTTP handlers: a per-route latency histogram, an
// in-flight gauge, and a requests counter partitioned by route and status
// class. A nil *HTTPMetrics passes handlers through untouched.
type HTTPMetrics struct {
	requests *CounterVec   // route, code class ("2xx", ...)
	duration *HistogramVec // route
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP metric families on reg under the given
// namespace prefix (e.g. "vprof" → vprof_http_requests_total).
func NewHTTPMetrics(reg *Registry, namespace string) *HTTPMetrics {
	if reg == nil {
		return nil
	}
	if namespace != "" {
		namespace += "_"
	}
	return &HTTPMetrics{
		requests: reg.CounterVec(namespace+"http_requests_total",
			"HTTP requests served, by route and status class.", "route", "code"),
		duration: reg.HistogramVec(namespace+"http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", DefBuckets, "route"),
		inflight: reg.Gauge(namespace+"http_requests_in_flight",
			"HTTP requests currently being served."),
	}
}

// statusRecorder captures the status code written by the wrapped handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Wrap instruments next under the given route label.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Inc()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			m.inflight.Dec()
			m.duration.With(route).Observe(time.Since(start).Seconds())
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			m.requests.With(route, strconv.Itoa(status/100)+"xx").Inc()
		}()
		next.ServeHTTP(rec, r)
	})
}
