package obs

import (
	"bytes"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestRegistryIdempotentAndMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter returned a different metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 5 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	// 0.05 and 0.1 land in le=0.1 (upper bounds are inclusive), cumulative
	// counts follow.
	for _, line := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestWritePrometheusDeterministicAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("b_total", "b", "route").With(`p"q\r` + "\n").Inc()
	r.Counter("a_total", "a").Inc()
	r.GaugeVec("c", "c", "k").With("z").Set(1)
	r.GaugeVec("c", "c", "k").With("a").Set(2)

	var first bytes.Buffer
	r.WritePrometheus(&first)
	for i := 0; i < 3; i++ {
		var again bytes.Buffer
		r.WritePrometheus(&again)
		if first.String() != again.String() {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	out := first.String()
	if !strings.Contains(out, `b_total{route="p\"q\\r\n"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	// Families sorted by name, series by label value.
	ai := strings.Index(out, "a_total 1")
	bi := strings.Index(out, "b_total{")
	ca := strings.Index(out, `c{k="a"} 2`)
	cz := strings.Index(out, `c{k="z"} 1`)
	if ai < 0 || bi < 0 || ca < 0 || cz < 0 || !(ai < bi && bi < ca && ca < cz) {
		t.Errorf("ordering wrong (a=%d b=%d ca=%d cz=%d):\n%s", ai, bi, ca, cz, out)
	}
}

func TestNilRegistryAndMetricsAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "x").Inc()
	r.Gauge("y", "y").Set(3)
	r.Histogram("z", "z", DefBuckets).Observe(1)
	r.CounterVec("cv", "cv", "l").With("v").Add(1)
	r.GaugeVec("gv", "gv", "l").With("v").Dec()
	r.HistogramVec("hv", "hv", DefBuckets, "l").With("v").Observe(1)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote output: %q", buf.String())
	}
	var m *HTTPMetrics
	h := m.Wrap("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	if h == nil {
		t.Fatal("nil HTTPMetrics.Wrap returned nil handler")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("d", "d", []float64{1, 2})
	v := r.CounterVec("l_total", "l", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 3))
				v.With("ab"[g%2 : g%2+1]).Inc()
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != 8000 {
		t.Fatalf("vec sum = %v, want 8000", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "served").Add(4)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "served_total 4") {
		t.Errorf("body missing series:\n%s", buf.String())
	}
}

func TestHTTPMetricsMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t")
	h := m.Wrap("/v1/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := m.requests.With("/v1/x", "2xx").Value(); got != 3 {
		t.Errorf("2xx = %v, want 3", got)
	}
	if got := m.requests.With("/v1/x", "4xx").Value(); got != 1 {
		t.Errorf("4xx = %v, want 1", got)
	}
	if got := m.duration.With("/v1/x").Count(); got != 4 {
		t.Errorf("duration count = %d, want 4", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("in-flight after completion = %v, want 0", got)
	}
}

func TestParseLevelAndLoggerFormats(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) succeeded")
	}

	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelWarn, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"msg":"shown"`) {
		t.Errorf("json logger output wrong: %q", out)
	}
	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Error("NewLogger(yaml) succeeded")
	}
	Nop().Error("dropped") // must not panic or write anywhere visible
}
