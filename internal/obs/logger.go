package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog level. Accepted values
// are debug, info, warn, and error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a leveled structured logger writing to w. Format is
// "text" (logfmt-style, the default) or "json" (one JSON object per line).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// Nop returns a logger that discards everything; use it as the default when
// no logger is configured so call sites never nil-check.
func Nop() *slog.Logger {
	// Level above Error so even error records are skipped without formatting.
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
}
