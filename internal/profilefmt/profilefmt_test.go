package profilefmt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
)

func sampleProfile() *sampler.Profile {
	return &sampler.Profile{
		Pid:        3,
		File:       "prog.vp",
		Interval:   97,
		TotalTicks: 123456,
		NumAlarms:  1272,
		Hist:       []int64{0, 5, 0, 0, 9, 1, 0, 0, 0, 2},
		Samples: []sampler.Sample{
			{Layout: 0, VarNode: 0, PC: 4, StackDepth: 0, Value: 42, Tick: 97, Link: -1},
			{Layout: 1, VarNode: 2, PC: 5, StackDepth: 1, Value: -7, Ptr: true, Tick: 194, Link: -1},
			{Layout: 0, VarNode: 0, PC: 4, StackDepth: 0, Value: 43, Tick: 291, Link: 0},
		},
		Layout: []sampler.LayoutEntry{
			{Func: "scan", Name: "available_mem"},
			{Func: "#global", Name: "buf_ptr", IsPointer: true},
		},
	}
}

func TestRoundTripInMemory(t *testing.T) {
	p := sampleProfile()
	var hb, vb, lb bytes.Buffer
	if err := profilefmt.EncodeHist(&hb, p); err != nil {
		t.Fatal(err)
	}
	if err := profilefmt.EncodeSamples(&vb, p); err != nil {
		t.Fatal(err)
	}
	if err := profilefmt.EncodeLayout(&lb, p); err != nil {
		t.Fatal(err)
	}
	q, err := profilefmt.DecodeHist(&hb)
	if err != nil {
		t.Fatal(err)
	}
	if err := profilefmt.DecodeSamples(&vb, q); err != nil {
		t.Fatal(err)
	}
	if err := profilefmt.DecodeLayout(&lb, q); err != nil {
		t.Fatal(err)
	}
	assertEqualProfiles(t, p, q)
}

func assertEqualProfiles(t *testing.T, p, q *sampler.Profile) {
	t.Helper()
	if q.Pid != p.Pid || q.File != p.File || q.Interval != p.Interval ||
		q.TotalTicks != p.TotalTicks || q.NumAlarms != p.NumAlarms {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Hist) != len(p.Hist) {
		t.Fatalf("hist length %d vs %d", len(q.Hist), len(p.Hist))
	}
	for i := range p.Hist {
		if q.Hist[i] != p.Hist[i] {
			t.Fatalf("hist[%d] = %d, want %d", i, q.Hist[i], p.Hist[i])
		}
	}
	if len(q.Samples) != len(p.Samples) {
		t.Fatalf("samples %d vs %d", len(q.Samples), len(p.Samples))
	}
	for i := range p.Samples {
		if q.Samples[i] != p.Samples[i] {
			t.Fatalf("sample %d: %+v vs %+v", i, q.Samples[i], p.Samples[i])
		}
	}
	if len(q.Layout) != len(p.Layout) {
		t.Fatalf("layout %d vs %d", len(q.Layout), len(p.Layout))
	}
	for i := range p.Layout {
		if q.Layout[i] != p.Layout[i] {
			t.Fatalf("layout %d: %+v vs %+v", i, q.Layout[i], p.Layout[i])
		}
	}
}

func TestWriteReadDir(t *testing.T) {
	dir := t.TempDir()
	p1 := sampleProfile()
	p2 := sampleProfile()
	p2.Pid = 1
	p2.Samples = p2.Samples[:1]
	if err := profilefmt.WriteDir(dir, p1); err != nil {
		t.Fatal(err)
	}
	if err := profilefmt.WriteDir(dir, p2); err != nil {
		t.Fatal(err)
	}
	profiles, err := profilefmt.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("read %d profiles, want 2", len(profiles))
	}
	// pid order.
	if profiles[0].Pid != 1 || profiles[1].Pid != 3 {
		t.Fatalf("pids = %d, %d", profiles[0].Pid, profiles[1].Pid)
	}
	assertEqualProfiles(t, p2, profiles[0])
	assertEqualProfiles(t, p1, profiles[1])
}

func TestBadMagic(t *testing.T) {
	p := sampleProfile()
	var hb bytes.Buffer
	if err := profilefmt.EncodeHist(&hb, p); err != nil {
		t.Fatal(err)
	}
	// Samples decoder must reject a histogram stream.
	if err := profilefmt.DecodeSamples(&hb, p); err == nil {
		t.Fatal("expected magic mismatch error")
	} else if !strings.Contains(err.Error(), "magic") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	p := sampleProfile()
	var vb bytes.Buffer
	if err := profilefmt.EncodeSamples(&vb, p); err != nil {
		t.Fatal(err)
	}
	raw := vb.Bytes()
	trunc := bytes.NewReader(raw[:len(raw)-5])
	q := &sampler.Profile{}
	if err := profilefmt.DecodeSamples(trunc, q); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestEncodedSize(t *testing.T) {
	p := sampleProfile()
	n, err := profilefmt.EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	var hb, vb, lb bytes.Buffer
	profilefmt.EncodeHist(&hb, p)
	profilefmt.EncodeSamples(&vb, p)
	profilefmt.EncodeLayout(&lb, p)
	want := int64(hb.Len() + vb.Len() + lb.Len())
	if n != want {
		t.Fatalf("EncodedSize = %d, want %d", n, want)
	}
}

func TestReadDirMissingArtifacts(t *testing.T) {
	dir := t.TempDir()
	p := sampleProfile()
	if err := profilefmt.WriteDir(dir, p); err != nil {
		t.Fatal(err)
	}
	// Remove one artifact: ReadDir must fail cleanly.
	if err := removeFile(dir, "layout.3.out"); err != nil {
		t.Fatal(err)
	}
	if _, err := profilefmt.ReadDir(dir); err == nil {
		t.Fatal("expected error with missing layout file")
	}
}

func removeFile(dir, name string) error {
	return os.Remove(filepath.Join(dir, name))
}
