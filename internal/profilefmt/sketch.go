package profilefmt

// Sketch codec: the store persists per-blob sketches (internal/sketch) in a
// CRC-framed log next to the segments. The encoding mirrors the profile
// bundle's conventions — magic + version header, length-prefixed strings,
// sparse (key, count) pair sections — and is canonical: map sections are
// written in strictly ascending key order and decoders reject out-of-order
// or duplicate keys, so a sketch has exactly one byte representation and
// re-encoding a decoded sketch reproduces the input bit for bit.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"vprof/internal/sketch"
)

// MagicSketch identifies a sketch section.
const MagicSketch = "VPRS"

// maxHistBucketTotal caps the observation total of one decoded bucket
// histogram, bounding what Expand() can be made to allocate.
const maxHistBucketTotal = MaxSamples

// EncodeSketch writes a sketch in canonical form.
func EncodeSketch(w io.Writer, s *sketch.Profile) error {
	if err := writeHeader(w, MagicSketch); err != nil {
		return err
	}
	if err := writeString(w, s.BlobID); err != nil {
		return err
	}
	hdr := []int64{s.Interval, s.TotalTicks, s.NumAlarms, s.HistLen, int64(len(s.Vars))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := writePCCounts(w, s.Hist); err != nil {
		return err
	}
	if err := writePCCounts(w, s.UnitsByPC); err != nil {
		return err
	}
	for i := range s.Vars {
		if err := encodeVarSummary(w, &s.Vars[i]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSketch reads one sketch, validating every count and key order
// before allocating or indexing (the store replays this over untrusted
// on-disk bytes after a crash).
func DecodeSketch(r io.Reader) (*sketch.Profile, error) {
	if err := readHeader(r, MagicSketch); err != nil {
		return nil, err
	}
	blobID, err := readString(r)
	if err != nil {
		return nil, err
	}
	var hdr [5]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[0] < 0 || hdr[1] < 0 || hdr[2] < 0 {
		return nil, fmt.Errorf("profilefmt: negative sketch counters (interval %d, ticks %d, alarms %d)",
			hdr[0], hdr[1], hdr[2])
	}
	if hdr[3] < 0 || hdr[3] > MaxHistLen {
		return nil, fmt.Errorf("profilefmt: sketch hist length %d out of range", hdr[3])
	}
	if hdr[4] < 0 || hdr[4] > MaxLayout {
		return nil, fmt.Errorf("profilefmt: sketch variable count %d out of range", hdr[4])
	}
	s := &sketch.Profile{
		BlobID:     blobID,
		Interval:   hdr[0],
		TotalTicks: hdr[1],
		NumAlarms:  hdr[2],
		HistLen:    hdr[3],
	}
	if s.Hist, err = readPCCounts(r, hdr[3]); err != nil {
		return nil, err
	}
	if s.UnitsByPC, err = readPCCounts(r, hdr[3]); err != nil {
		return nil, err
	}
	s.Vars = make([]sketch.VarSummary, 0, prealloc(hdr[4]))
	prevKey := ""
	for i := int64(0); i < hdr[4]; i++ {
		vs, err := decodeVarSummary(r, hdr[3])
		if err != nil {
			return nil, err
		}
		key := vs.Key()
		if i > 0 && key <= prevKey {
			return nil, fmt.Errorf("profilefmt: sketch variables out of order at %q", key)
		}
		prevKey = key
		s.Vars = append(s.Vars, vs)
	}
	return s, nil
}

// MarshalSketch renders a sketch as one blob.
func MarshalSketch(s *sketch.Profile) ([]byte, error) {
	var b bytes.Buffer
	if err := EncodeSketch(&b, s); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// UnmarshalSketch parses a sketch blob, rejecting trailing garbage.
func UnmarshalSketch(blob []byte) (*sketch.Profile, error) {
	r := bytes.NewReader(blob)
	s, err := DecodeSketch(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("profilefmt: %d trailing bytes after sketch", r.Len())
	}
	return s, nil
}

func encodeVarSummary(w io.Writer, v *sketch.VarSummary) error {
	if err := writeString(w, v.Func); err != nil {
		return err
	}
	if err := writeString(w, v.Name); err != nil {
		return err
	}
	flags := int32(0)
	if v.IsPointer {
		flags = 1
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, [2]int64{v.Count, v.NumRuns}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, [4]float64{v.MaxRun, v.Min, v.Max, v.Sum}); err != nil {
		return err
	}
	for _, h := range []sketch.Hist{v.Values, v.Deltas, v.Runs} {
		if err := writeBucketHist(w, h); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(v.PCs))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, v.PCs)
}

func decodeVarSummary(r io.Reader, histLen int64) (sketch.VarSummary, error) {
	var v sketch.VarSummary
	var err error
	if v.Func, err = readString(r); err != nil {
		return v, err
	}
	if v.Name, err = readString(r); err != nil {
		return v, err
	}
	var flags int32
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return v, err
	}
	v.IsPointer = flags != 0
	var counts [2]int64
	if err := binary.Read(r, binary.LittleEndian, &counts); err != nil {
		return v, err
	}
	if counts[0] < 0 || counts[0] > MaxSamples || counts[1] < 0 || counts[1] > MaxSamples {
		return v, fmt.Errorf("profilefmt: sketch variable counts (%d, %d) out of range", counts[0], counts[1])
	}
	v.Count, v.NumRuns = counts[0], counts[1]
	var moments [4]float64
	if err := binary.Read(r, binary.LittleEndian, &moments); err != nil {
		return v, err
	}
	for _, m := range moments {
		if math.IsNaN(m) {
			return v, fmt.Errorf("profilefmt: NaN sketch moment for %s.%s", v.Func, v.Name)
		}
	}
	v.MaxRun, v.Min, v.Max, v.Sum = moments[0], moments[1], moments[2], moments[3]
	for _, dst := range []*sketch.Hist{&v.Values, &v.Deltas, &v.Runs} {
		h, err := readBucketHist(r)
		if err != nil {
			return v, err
		}
		*dst = h
	}
	var npcs int64
	if err := binary.Read(r, binary.LittleEndian, &npcs); err != nil {
		return v, err
	}
	if npcs < 0 || npcs > MaxHistLen {
		return v, fmt.Errorf("profilefmt: sketch PC count %d out of range", npcs)
	}
	if npcs > 0 {
		v.PCs = make([]int32, npcs)
		if err := binary.Read(r, binary.LittleEndian, v.PCs); err != nil {
			return v, err
		}
		for i, pc := range v.PCs {
			if int64(pc) < 0 || int64(pc) >= histLen {
				return v, fmt.Errorf("profilefmt: sketch PC %d out of range", pc)
			}
			if i > 0 && pc <= v.PCs[i-1] {
				return v, fmt.Errorf("profilefmt: sketch PCs out of order at %d", pc)
			}
		}
	}
	return v, nil
}

// writePCCounts writes a sparse pc -> count map as ascending (pc, count)
// pairs.
func writePCCounts(w io.Writer, m map[int32]int64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(m))); err != nil {
		return err
	}
	pcs := make([]int32, 0, len(m))
	for pc := range m {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		if err := binary.Write(w, binary.LittleEndian, [2]int64{int64(pc), m[pc]}); err != nil {
			return err
		}
	}
	return nil
}

func readPCCounts(r io.Reader, histLen int64) (map[int32]int64, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > histLen {
		return nil, fmt.Errorf("profilefmt: sketch pc-count entries %d out of range", n)
	}
	out := make(map[int32]int64, prealloc(n))
	prev := int64(-1)
	for i := int64(0); i < n; i++ {
		var pair [2]int64
		if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
			return nil, err
		}
		if pair[0] < 0 || pair[0] >= histLen {
			return nil, fmt.Errorf("profilefmt: sketch pc %d out of range", pair[0])
		}
		if pair[0] <= prev {
			return nil, fmt.Errorf("profilefmt: sketch pcs out of order at %d", pair[0])
		}
		if pair[1] <= 0 {
			return nil, fmt.Errorf("profilefmt: sketch pc count %d not positive", pair[1])
		}
		prev = pair[0]
		out[int32(pair[0])] = pair[1]
	}
	return out, nil
}

// writeBucketHist writes a bucket histogram as ascending (bucket, count)
// pairs.
func writeBucketHist(w io.Writer, h sketch.Hist) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(h))); err != nil {
		return err
	}
	for _, k := range h.Keys() {
		if err := binary.Write(w, binary.LittleEndian, k); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, h[k]); err != nil {
			return err
		}
	}
	return nil
}

func readBucketHist(r io.Reader) (sketch.Hist, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > MaxSamples {
		return nil, fmt.Errorf("profilefmt: sketch bucket entries %d out of range", n)
	}
	if n == 0 {
		return nil, nil
	}
	h := make(sketch.Hist, prealloc(n))
	prev := math.Inf(-1)
	var total int64
	for i := int64(0); i < n; i++ {
		var k float64
		if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
			return nil, err
		}
		var c int64
		if err := binary.Read(r, binary.LittleEndian, &c); err != nil {
			return nil, err
		}
		if math.IsNaN(k) {
			return nil, fmt.Errorf("profilefmt: NaN sketch bucket")
		}
		if sketch.Bucket(k) != k {
			return nil, fmt.Errorf("profilefmt: non-canonical sketch bucket %g", k)
		}
		if k <= prev {
			return nil, fmt.Errorf("profilefmt: sketch buckets out of order at %g", k)
		}
		if c <= 0 {
			return nil, fmt.Errorf("profilefmt: sketch bucket count %d not positive", c)
		}
		total += c
		if total > maxHistBucketTotal {
			return nil, fmt.Errorf("profilefmt: sketch bucket total exceeds %d", int64(maxHistBucketTotal))
		}
		prev = k
		h[k] = c
	}
	return h, nil
}
