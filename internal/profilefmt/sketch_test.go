package profilefmt_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"vprof/internal/profilefmt"
	"vprof/internal/sketch"
	"vprof/internal/stats"
)

func randSketchSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i > 0 && rng.Intn(3) == 0 {
			out[i] = out[i-1]
		} else {
			out[i] = float64(rng.Intn(2000) - 300)
		}
	}
	return out
}

func randSketch(rng *rand.Rand) *sketch.Profile {
	p := &sketch.Profile{
		BlobID:     "blob-test",
		Interval:   37,
		TotalTicks: int64(rng.Intn(100000)),
		NumAlarms:  int64(rng.Intn(500)),
		HistLen:    128,
		Hist:       map[int32]int64{},
		UnitsByPC:  map[int32]int64{},
	}
	for i := 0; i < rng.Intn(15); i++ {
		p.Hist[int32(rng.Intn(128))] += int64(rng.Intn(40) + 1)
	}
	for i := 0; i < rng.Intn(15); i++ {
		p.UnitsByPC[int32(rng.Intn(128))] += int64(rng.Intn(40) + 1)
	}
	keys := []struct{ fn, nm string }{
		{"f", "a"}, {"f", "b"}, {"g", "a"}, {"", "glob"},
	}
	for _, k := range keys[:1+rng.Intn(len(keys))] {
		series := randSketchSeries(rng, rng.Intn(25))
		vs := sketch.VarSummary{
			Func: k.fn, Name: k.nm,
			IsPointer: rng.Intn(4) == 0,
			Count:     int64(len(series)),
		}
		if len(series) > 0 {
			vs.Min, vs.Max, _ = stats.MinMax(series)
			for _, v := range series {
				vs.Sum += v
			}
		}
		vs.Values = sketch.HistOf(series)
		vs.Deltas = sketch.HistOf(stats.ChangeDeltas(series))
		runs := stats.RunLengths(series)
		vs.Runs = sketch.HistOf(runs)
		vs.NumRuns = int64(len(runs))
		_, vs.MaxRun, _ = stats.MinMax(runs)
		for pc := int32(0); pc < 128 && len(vs.PCs) < 6; pc += int32(13 + rng.Intn(9)) {
			vs.PCs = append(vs.PCs, pc)
		}
		p.Vars = append(p.Vars, vs)
	}
	// Vars must be in key order; the fixture list above already is for any
	// prefix except the global ("" sorts first), so sort explicitly.
	for i := 1; i < len(p.Vars); i++ {
		for j := i; j > 0 && p.Vars[j].Key() < p.Vars[j-1].Key(); j-- {
			p.Vars[j], p.Vars[j-1] = p.Vars[j-1], p.Vars[j]
		}
	}
	return p
}

func TestSketchRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		want := randSketch(rng)
		blob, err := profilefmt.MarshalSketch(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := profilefmt.UnmarshalSketch(blob)
		if err != nil {
			t.Fatalf("roundtrip decode: %v", err)
		}
		// Empty maps decode as empty (non-nil) maps; normalize for compare.
		if len(want.Hist) == 0 {
			want.Hist = map[int32]int64{}
		}
		if len(want.UnitsByPC) == 0 {
			want.UnitsByPC = map[int32]int64{}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", want, got)
		}
	}
}

// TestSketchEncodingCanonical: one sketch, one byte representation —
// re-encoding a decoded sketch reproduces the input exactly, and encoding
// is deterministic across runs despite map-backed sections.
func TestSketchEncodingCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		s := randSketch(rng)
		a, err := profilefmt.MarshalSketch(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := profilefmt.MarshalSketch(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("encoding not deterministic")
		}
		dec, err := profilefmt.UnmarshalSketch(a)
		if err != nil {
			t.Fatal(err)
		}
		c, err := profilefmt.MarshalSketch(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Fatal("re-encoding a decoded sketch changed bytes")
		}
	}
}

func TestSketchDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randSketch(rng)
	blob, err := profilefmt.MarshalSketch(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profilefmt.UnmarshalSketch(append(blob, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := profilefmt.UnmarshalSketch(blob[:len(blob)-1]); err == nil {
		t.Error("truncated sketch accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := profilefmt.UnmarshalSketch(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func FuzzSketchDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 4; i++ {
		blob, err := profilefmt.MarshalSketch(randSketch(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte("VPRS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := profilefmt.UnmarshalSketch(data)
		if err != nil {
			return
		}
		// Any accepted sketch must be canonical: re-encoding reproduces
		// the input bytes, and its histograms expand within bounds.
		re, err := profilefmt.MarshalSketch(s)
		if err != nil {
			t.Fatalf("re-encode of accepted sketch failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted sketch is not canonical: %d vs %d bytes", len(re), len(data))
		}
		for i := range s.Vars {
			for _, h := range []sketch.Hist{s.Vars[i].Values, s.Vars[i].Deltas, s.Vars[i].Runs} {
				_ = h.Expand()
			}
		}
	})
}
