// Package profilefmt serializes profiles to disk, mirroring vProf's
// artifact layout: for each profiled process (pid) it writes
//
//	gmon.<pid>.out     — the PC cost histogram (gprof's data)
//	gmon_var.<pid>.out — the value samples (vProf's addition)
//	layout.<pid>.out   — the layout log mapping samples to variables
//
// The format is a compact little-endian binary encoding with a magic header
// and version, so a profile written by one session can be analyzed offline
// by another (cmd/vprof's profile/analyze split).
package profilefmt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"vprof/internal/sampler"
)

// Magic numbers identify the three artifact kinds plus the single-blob
// bundle used for transport (store segments, HTTP ingestion).
const (
	MagicHist   = "VPRH"
	MagicVar    = "VPRV"
	MagicLayout = "VPRL"
	MagicBundle = "VPRB"
	// Version of the encoding.
	Version = 1
)

// Decode limits. Untrusted input (the ingestion endpoint) must not be able
// to make a decoder allocate unbounded memory or index out of range; every
// count read off the wire is checked against these before use.
const (
	MaxHistLen    = 1 << 22
	MaxSamples    = 1 << 26
	MaxLayout     = 1 << 20
	maxPreallocCP = 1 << 16 // cap on trusted-count preallocation
)

func prealloc(n int64) int64 {
	if n > maxPreallocCP {
		return maxPreallocCP
	}
	return n
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, magic string) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(Version))
}

func readHeader(r io.Reader, magic string) error {
	buf := make([]byte, 4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if string(buf) != magic {
		return fmt.Errorf("profilefmt: bad magic %q, want %q", buf, magic)
	}
	var v uint32
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("profilefmt: unsupported version %d", v)
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("profilefmt: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// EncodeHist writes the PC histogram section of a profile.
func EncodeHist(w io.Writer, p *sampler.Profile) error {
	if err := writeHeader(w, MagicHist); err != nil {
		return err
	}
	if err := writeString(w, p.File); err != nil {
		return err
	}
	hdr := []int64{int64(p.Pid), p.Interval, p.TotalTicks, p.NumAlarms, int64(len(p.Hist))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	// Sparse encoding: (pc, count) pairs for nonzero buckets.
	var nz int64
	for _, n := range p.Hist {
		if n != 0 {
			nz++
		}
	}
	if err := binary.Write(w, binary.LittleEndian, nz); err != nil {
		return err
	}
	for pc, n := range p.Hist {
		if n == 0 {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, [2]int64{int64(pc), n}); err != nil {
			return err
		}
	}
	return nil
}

// DecodeHist reads a histogram section into a fresh profile shell.
func DecodeHist(r io.Reader) (*sampler.Profile, error) {
	if err := readHeader(r, MagicHist); err != nil {
		return nil, err
	}
	file, err := readString(r)
	if err != nil {
		return nil, err
	}
	var hdr [5]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[4] < 0 || hdr[4] > MaxHistLen {
		return nil, fmt.Errorf("profilefmt: hist length %d out of range", hdr[4])
	}
	p := &sampler.Profile{
		File:       file,
		Pid:        int(hdr[0]),
		Interval:   hdr[1],
		TotalTicks: hdr[2],
		NumAlarms:  hdr[3],
		Hist:       make([]int64, hdr[4]),
	}
	var nz int64
	if err := binary.Read(r, binary.LittleEndian, &nz); err != nil {
		return nil, err
	}
	if nz < 0 || nz > hdr[4] {
		return nil, fmt.Errorf("profilefmt: nonzero-bucket count %d out of range", nz)
	}
	for i := int64(0); i < nz; i++ {
		var pair [2]int64
		if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
			return nil, err
		}
		if pair[0] < 0 || pair[0] >= int64(len(p.Hist)) {
			return nil, fmt.Errorf("profilefmt: pc %d out of range", pair[0])
		}
		p.Hist[pair[0]] = pair[1]
	}
	return p, nil
}

// EncodeSamples writes the value-sample section.
func EncodeSamples(w io.Writer, p *sampler.Profile) error {
	if err := writeHeader(w, MagicVar); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(p.Samples))); err != nil {
		return err
	}
	for _, s := range p.Samples {
		ptr := int32(0)
		if s.Ptr {
			ptr = 1
		}
		rec := []int64{int64(s.Layout), int64(s.VarNode), int64(s.PC), int64(s.StackDepth), s.Value, int64(ptr), s.Tick, int64(s.Link)}
		if err := binary.Write(w, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSamples reads the value-sample section into p.
func DecodeSamples(r io.Reader, p *sampler.Profile) error {
	if err := readHeader(r, MagicVar); err != nil {
		return err
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > MaxSamples {
		return fmt.Errorf("profilefmt: sample count %d out of range", n)
	}
	p.Samples = make([]sampler.Sample, 0, prealloc(n))
	for i := int64(0); i < n; i++ {
		var rec [8]int64
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return err
		}
		p.Samples = append(p.Samples, sampler.Sample{
			Layout:     int32(rec[0]),
			VarNode:    int32(rec[1]),
			PC:         int32(rec[2]),
			StackDepth: int32(rec[3]),
			Value:      rec[4],
			Ptr:        rec[5] != 0,
			Tick:       rec[6],
			Link:       int32(rec[7]),
		})
	}
	return nil
}

// EncodeLayout writes the layout log.
func EncodeLayout(w io.Writer, p *sampler.Profile) error {
	if err := writeHeader(w, MagicLayout); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(p.Layout))); err != nil {
		return err
	}
	for _, l := range p.Layout {
		if err := writeString(w, l.Func); err != nil {
			return err
		}
		if err := writeString(w, l.Name); err != nil {
			return err
		}
		ptr := int32(0)
		if l.IsPointer {
			ptr = 1
		}
		if err := binary.Write(w, binary.LittleEndian, ptr); err != nil {
			return err
		}
	}
	return nil
}

// DecodeLayout reads the layout log into p.
func DecodeLayout(r io.Reader, p *sampler.Profile) error {
	if err := readHeader(r, MagicLayout); err != nil {
		return err
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > MaxLayout {
		return fmt.Errorf("profilefmt: layout count %d out of range", n)
	}
	p.Layout = make([]sampler.LayoutEntry, 0, prealloc(n))
	for i := int64(0); i < n; i++ {
		fn, err := readString(r)
		if err != nil {
			return err
		}
		name, err := readString(r)
		if err != nil {
			return err
		}
		var ptr int32
		if err := binary.Read(r, binary.LittleEndian, &ptr); err != nil {
			return err
		}
		p.Layout = append(p.Layout, sampler.LayoutEntry{Func: fn, Name: name, IsPointer: ptr != 0})
	}
	return nil
}

// EncodeProfile writes all three sections of a profile as one blob:
// a bundle header followed by the hist, sample and layout sections. This is
// the transport encoding used by the profile store and the ingestion API,
// where a profile travels as a single opaque, content-addressable byte
// string rather than three files.
func EncodeProfile(w io.Writer, p *sampler.Profile) error {
	if err := writeHeader(w, MagicBundle); err != nil {
		return err
	}
	if err := EncodeHist(w, p); err != nil {
		return err
	}
	if err := EncodeSamples(w, p); err != nil {
		return err
	}
	return EncodeLayout(w, p)
}

// DecodeProfile reads a bundle written by EncodeProfile and validates the
// cross-section invariants (sample indices in range), so a successfully
// decoded profile is safe to hand to the analyzer.
func DecodeProfile(r io.Reader) (*sampler.Profile, error) {
	if err := readHeader(r, MagicBundle); err != nil {
		return nil, err
	}
	p, err := DecodeHist(r)
	if err != nil {
		return nil, err
	}
	if err := DecodeSamples(r, p); err != nil {
		return nil, err
	}
	if err := DecodeLayout(r, p); err != nil {
		return nil, err
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Marshal renders a profile as a single bundle blob (EncodeProfile to bytes).
func Marshal(p *sampler.Profile) ([]byte, error) {
	var b bytes.Buffer
	if err := EncodeProfile(&b, p); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Unmarshal parses a bundle blob, rejecting trailing garbage.
func Unmarshal(blob []byte) (*sampler.Profile, error) {
	r := bytes.NewReader(blob)
	p, err := DecodeProfile(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("profilefmt: %d trailing bytes after bundle", r.Len())
	}
	return p, nil
}

// Validate checks a decoded profile's internal consistency: every value
// sample must reference an existing layout entry, and the hist/alarm counters
// must be non-negative. Decoders run it before returning untrusted input.
func Validate(p *sampler.Profile) error {
	if p.Interval < 0 || p.TotalTicks < 0 || p.NumAlarms < 0 {
		return fmt.Errorf("profilefmt: negative counters (interval %d, ticks %d, alarms %d)",
			p.Interval, p.TotalTicks, p.NumAlarms)
	}
	for i, s := range p.Samples {
		if s.Layout < 0 || int(s.Layout) >= len(p.Layout) {
			return fmt.Errorf("profilefmt: sample %d references layout %d of %d", i, s.Layout, len(p.Layout))
		}
		if s.Link < -1 || int(s.Link) >= len(p.Samples) {
			return fmt.Errorf("profilefmt: sample %d has link %d of %d", i, s.Link, len(p.Samples))
		}
	}
	return nil
}

// WriteDir writes one profile's three artifacts into dir using the paper's
// pid-suffixed names.
func WriteDir(dir string, p *sampler.Profile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, enc func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := enc(bw); err != nil {
			f.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(fmt.Sprintf("gmon.%d.out", p.Pid), func(w io.Writer) error { return EncodeHist(w, p) }); err != nil {
		return err
	}
	if err := write(fmt.Sprintf("gmon_var.%d.out", p.Pid), func(w io.Writer) error { return EncodeSamples(w, p) }); err != nil {
		return err
	}
	return write(fmt.Sprintf("layout.%d.out", p.Pid), func(w io.Writer) error { return EncodeLayout(w, p) })
}

// ReadDir loads every profile found in dir (one per pid), in pid order.
func ReadDir(dir string) ([]*sampler.Profile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pids []int
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "gmon.") && strings.HasSuffix(name, ".out") && !strings.HasPrefix(name, "gmon_var.") {
			pidStr := strings.TrimSuffix(strings.TrimPrefix(name, "gmon."), ".out")
			pid, err := strconv.Atoi(pidStr)
			if err != nil {
				continue
			}
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	var out []*sampler.Profile
	for _, pid := range pids {
		p, err := ReadPid(dir, pid)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ReadPid loads the three artifacts of one pid from dir.
func ReadPid(dir string, pid int) (*sampler.Profile, error) {
	open := func(name string) (*os.File, error) {
		return os.Open(filepath.Join(dir, name))
	}
	hf, err := open(fmt.Sprintf("gmon.%d.out", pid))
	if err != nil {
		return nil, err
	}
	defer hf.Close()
	p, err := DecodeHist(bufio.NewReader(hf))
	if err != nil {
		return nil, fmt.Errorf("decode hist pid %d: %w", pid, err)
	}
	vf, err := open(fmt.Sprintf("gmon_var.%d.out", pid))
	if err != nil {
		return nil, err
	}
	defer vf.Close()
	if err := DecodeSamples(bufio.NewReader(vf), p); err != nil {
		return nil, fmt.Errorf("decode samples pid %d: %w", pid, err)
	}
	lf, err := open(fmt.Sprintf("layout.%d.out", pid))
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	if err := DecodeLayout(bufio.NewReader(lf), p); err != nil {
		return nil, fmt.Errorf("decode layout pid %d: %w", pid, err)
	}
	return p, nil
}

// EncodedSize returns the total encoded byte size of a profile (used by the
// overhead tables without touching the filesystem).
func EncodedSize(p *sampler.Profile) (int64, error) {
	cw := &countingWriter{w: io.Discard}
	if err := EncodeHist(cw, p); err != nil {
		return 0, err
	}
	if err := EncodeSamples(cw, p); err != nil {
		return 0, err
	}
	if err := EncodeLayout(cw, p); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// Timestamp formats a time for artifact logging; isolated here so tests can
// exercise it.
func Timestamp(t time.Time) string { return t.UTC().Format("2006-01-02T15:04:05Z") }
