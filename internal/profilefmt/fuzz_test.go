package profilefmt_test

import (
	"bytes"
	"testing"

	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
)

// fuzzSeeds are valid encodings of the shared test profile: the full bundle
// plus each stand-alone section, so the fuzzer starts from well-formed input
// and mutates toward the interesting truncation/corruption boundaries.
func fuzzSeeds(f *testing.F) {
	p := sampleProfile()
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	var hb, vb, lb bytes.Buffer
	if err := profilefmt.EncodeHist(&hb, p); err != nil {
		f.Fatal(err)
	}
	if err := profilefmt.EncodeSamples(&vb, p); err != nil {
		f.Fatal(err)
	}
	if err := profilefmt.EncodeLayout(&lb, p); err != nil {
		f.Fatal(err)
	}
	f.Add(hb.Bytes())
	f.Add(vb.Bytes())
	f.Add(lb.Bytes())
	// Truncations of the bundle exercise every mid-record EOF path.
	for _, n := range []int{0, 3, 7, 8, 15, len(blob) / 2, len(blob) - 1} {
		if n <= len(blob) {
			f.Add(blob[:n])
		}
	}
	// A bundle with trailing garbage must be rejected, not accepted.
	f.Add(append(append([]byte{}, blob...), 0xde, 0xad))
}

// FuzzDecode asserts that no decode path panics or over-allocates on
// arbitrary input (the ingestion endpoint feeds untrusted uploads straight
// into these decoders), and that anything DecodeProfile accepts survives a
// re-encode/re-decode round trip.
func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := profilefmt.Unmarshal(data); err == nil {
			if err := profilefmt.Validate(p); err != nil {
				t.Fatalf("Unmarshal accepted a profile Validate rejects: %v", err)
			}
			blob, err := profilefmt.Marshal(p)
			if err != nil {
				t.Fatalf("re-encode of accepted profile failed: %v", err)
			}
			q, err := profilefmt.Unmarshal(blob)
			if err != nil {
				t.Fatalf("re-decode of re-encoded profile failed: %v", err)
			}
			assertEqualProfiles(t, p, q)
		}
		// The stand-alone section decoders must be panic-free too.
		if p, err := profilefmt.DecodeHist(bytes.NewReader(data)); err == nil {
			_ = profilefmt.DecodeSamples(bytes.NewReader(data), p)
			_ = profilefmt.DecodeLayout(bytes.NewReader(data), p)
		} else {
			shell := &sampler.Profile{}
			_ = profilefmt.DecodeSamples(bytes.NewReader(data), shell)
			_ = profilefmt.DecodeLayout(bytes.NewReader(data), shell)
		}
	})
}
