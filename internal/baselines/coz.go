package baselines

import (
	"vprof/internal/causal"
	"vprof/internal/vm"
)

// CozSpeedup is the virtual speedup factor applied to each candidate block.
const CozSpeedup = 0.5

// Coz implements COZ-style causal profiling (Table 2): for every basic block
// in the scoped functions it re-runs the buggy workload with that block
// virtually sped up and measures the change in end-to-end runtime. Blocks
// whose speedup shortens the run the most are where optimization pays off;
// functions are ranked by their best block.
//
// The per-block virtual-speedup machinery is the shared engine in
// internal/causal (causal.SpanScaler / causal.RootCPUTicks), with COZ's
// historical truncating arithmetic preserved so Table 2 is unchanged.
//
// Failure modes from the paper are reproduced: COZ only observes the parent
// process (its runtime injects into one process), so a root cause that
// executes solely in children yields FailChild for the harness to notice;
// and one evaluated workload crashed the tool (Target.CrashesCOZ).
func Coz(t *Target) *Result {
	if t.CrashesCOZ {
		return &Result{Tool: "COZ", Failure: FailCrash}
	}
	cfg := cfgWithPhase(t.BuggyCfg, 0)
	baseline := causal.RootCPUTicks(t.Prog, cfg)

	// COZ's runtime injects into one process and does not follow forks:
	// when the bulk of execution happens in children, its experiments see
	// almost nothing (the paper's "child" failures).
	var treeTicks int64
	for _, p := range vm.RunProcesses(t.Prog, func(int) vm.Config { return cfg }) {
		treeTicks += p.VM.Ticks()
	}
	childBlind := treeTicks > 0 && baseline*10 < treeTicks

	scores := map[string]float64{}
	for _, fn := range t.Prog.Debug.Funcs {
		if fn.Library || isSyntheticName(fn.Name) || !t.inScope(fn.Name) {
			continue
		}
		for _, blk := range fn.Blocks {
			ecfg := cfg
			ecfg.CostScale = causal.SpanScaler(
				[]causal.Span{{Start: blk.Start, End: blk.End}}, CozSpeedup)
			runtime := causal.RootCPUTicks(t.Prog, ecfg)
			gain := float64(baseline - runtime)
			// Gains within measurement noise are not findings: a
			// tick-budget-bounded (hung) workload has the same
			// runtime whatever is sped up, and COZ reports nothing.
			if gain < float64(baseline)*0.01 {
				continue
			}
			if gain > scores[fn.Name] {
				scores[fn.Name] = gain
			}
		}
	}
	res := &Result{Tool: "COZ", Funcs: rankingFromScores(scores)}
	if childBlind {
		res.Failure = FailChild
	}
	return res
}

func isSyntheticName(name string) bool {
	return len(name) >= 2 && name[0] == '_' && name[1] == '_'
}
