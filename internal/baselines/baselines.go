// Package baselines implements the five comparison tools of the paper's
// Table 2 — gprof, perf, perf-PT, COZ and statistical debugging — on the
// same simulated substrate vProf runs on, so that Table 3's diagnosis
// effectiveness comparison can be regenerated.
//
// Each tool profiles the target itself (with whatever instrumentation it
// uses in reality), and reports a ranked list of suspicious functions. Each
// tool also reproduces its real-world failure modes: gprof loses samples in
// dynamic libraries and in child processes, COZ cannot follow children and
// crashes on one workload, perf-PT only re-ranks perf's top ten.
package baselines

import (
	"sort"

	"vprof/internal/compiler"
	"vprof/internal/vm"
)

// Failure kinds, matching Table 3's annotations.
const (
	FailNone  = ""
	FailCrash = "crash" // the tool crashed on this workload
	FailChild = "child" // root cause ran in a child process the tool cannot see
)

// RankedFunc is one row of a tool's output.
type RankedFunc struct {
	Name  string
	Score float64
}

// Result is a tool's ranking for one diagnosis attempt.
type Result struct {
	Tool    string
	Funcs   []RankedFunc // most suspicious first
	Failure string
}

// Rank returns the 1-based rank of fn, or 0 when the tool did not rank it
// (the paper's "NR").
func (r *Result) Rank(fn string) int {
	for i, f := range r.Funcs {
		if f.Name == fn {
			return i + 1
		}
	}
	return 0
}

// Target describes one diagnosis task: a program plus configurations
// reproducing the buggy and normal executions.
type Target struct {
	Prog *compiler.Program
	// NormalProg is the program used for normal runs; usually Prog, but
	// a different program version for upgrade-regression issues.
	NormalProg *compiler.Program
	NormalCfg  vm.Config
	BuggyCfg   vm.Config
	// Runs is the number of profiling runs per side for tools that use
	// repetition (default 1; Table 2 uses 5 for stat-debug).
	Runs int
	// Interval is the PC-sampling alarm period in ticks.
	Interval int64
	// CrashesCOZ reproduces the paper's b7, where COZ crashed.
	CrashesCOZ bool
	// Scope restricts line/predicate-level tools (COZ, stat-debug) to
	// the functions of the component the user identified; nil = all.
	Scope func(funcName string) bool
}

func (t *Target) normalProg() *compiler.Program {
	if t.NormalProg != nil {
		return t.NormalProg
	}
	return t.Prog
}

func (t *Target) interval() int64 {
	if t.Interval > 0 {
		return t.Interval
	}
	return 97
}

func (t *Target) runs() int {
	if t.Runs > 0 {
		return t.Runs
	}
	return 1
}

func (t *Target) inScope(fn string) bool {
	if t.Scope == nil {
		return true
	}
	return t.Scope(fn)
}

// rankingFromScores converts a score map to a sorted ranking, dropping
// non-positive scores.
func rankingFromScores(scores map[string]float64) []RankedFunc {
	out := make([]RankedFunc, 0, len(scores))
	for fn, s := range scores {
		if s <= 0 {
			continue
		}
		out = append(out, RankedFunc{Name: fn, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// cfgWithPhase returns cfg with a run-dependent alarm phase and seed so
// repeated runs sample differently, deterministically.
func cfgWithPhase(cfg vm.Config, run int) vm.Config {
	cfg.AlarmPhase = int64(7*run + 3)
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Seed += uint64(run * 1000003)
	return cfg
}

// histogram collects a PC histogram over a full process tree.
type histogram struct {
	counts []int64
	ticks  int64
}

// runWithHistogram executes the program's process tree, PC-sampling every
// process at the given interval. onlyRoot drops samples from child
// processes (gprof's unfixed multi-process behavior).
func runWithHistogram(prog *compiler.Program, cfg vm.Config, interval int64, onlyRoot bool) *histogram {
	h := &histogram{counts: make([]int64, len(prog.Instrs))}
	pid := 0
	procs := vm.RunProcesses(prog, func(p int) vm.Config {
		pid = p
		c := cfg
		c.AlarmInterval = interval
		record := !(onlyRoot && pid != 1)
		c.OnAlarm = func(m *vm.VM) {
			if record {
				pc := m.PC()
				if pc >= 0 && pc < len(h.counts) {
					h.counts[pc]++
				}
			}
		}
		return c
	})
	for _, p := range procs {
		h.ticks += p.VM.Ticks()
	}
	return h
}

// funcCosts aggregates a histogram per function. includeLibrary controls
// whether dynamic-library PCs are visible (perf sees them; gprof does not).
func (h *histogram) funcCosts(prog *compiler.Program, includeLibrary bool) map[string]float64 {
	out := map[string]float64{}
	for pc, n := range h.counts {
		if n == 0 {
			continue
		}
		fn := prog.FuncAt(pc)
		if fn == nil || fn.Synthetic {
			continue
		}
		if fn.Library && !includeLibrary {
			continue
		}
		out[fn.Name] += float64(n)
	}
	return out
}
