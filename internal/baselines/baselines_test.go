package baselines_test

import (
	"strings"
	"testing"

	"vprof/internal/baselines"
	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

// A caller-is-root-cause workload: wrongly-zero threshold makes the cheap
// driver loop call the costly worker far more often.
const loopSrc = `
var threshold;

func expensive_worker(n) {
	work(500);
	return n - 1;
}

func driver() {
	var todo = 30;
	while (todo > threshold) {
		todo = expensive_worker(todo);
		if (todo <= 0) {
			todo = 30;
			if (threshold <= 0) {
				if (now() > 60000) { return 0; }
			}
		}
	}
	return todo;
}

func main() {
	threshold = input(0);
	driver();
}
`

func compile(t *testing.T, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func loopTarget(t *testing.T) *baselines.Target {
	return &baselines.Target{
		Prog:      compile(t, loopSrc),
		NormalCfg: vm.Config{Inputs: []int64{25}, MaxTicks: 100000},
		BuggyCfg:  vm.Config{Inputs: []int64{0}, MaxTicks: 100000},
	}
}

func TestGprofRanksCostlyCallee(t *testing.T) {
	res := baselines.Gprof(loopTarget(t))
	if len(res.Funcs) == 0 {
		t.Fatal("empty ranking")
	}
	if res.Funcs[0].Name != "expensive_worker" {
		t.Errorf("gprof top = %s, want expensive_worker", res.Funcs[0].Name)
	}
	if res.Rank("driver") == 0 {
		t.Error("driver not ranked")
	}
	if res.Rank("driver") < res.Rank("expensive_worker") {
		t.Error("gprof should favor the costly callee over the root cause")
	}
}

func TestGprofMissesLibraryAndChildren(t *testing.T) {
	src := `
extfunc lib_poll(n) { work(n); return n; }
func child_main(n) { var i = 0; while (i < n) { work(400); i++; } }
func parent_side() { work(3000); return 0; }
func main() {
	spawn("child_main", 50);
	lib_poll(4000);
	parent_side();
}
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{},
		BuggyCfg:  vm.Config{},
	}
	g := baselines.Gprof(target)
	if g.Rank("lib_poll") != 0 {
		t.Error("gprof ranked a dynamic-library function")
	}
	if g.Rank("child_main") != 0 {
		t.Error("gprof ranked a child-process function")
	}
	if g.Rank("parent_side") == 0 {
		t.Error("gprof missed parent-process work")
	}
	p := baselines.Perf(target)
	if p.Rank("lib_poll") == 0 {
		t.Error("perf missed library function")
	}
	if p.Rank("child_main") == 0 {
		t.Error("perf missed child process")
	}
}

func TestPerfPTTopTenOnly(t *testing.T) {
	res := baselines.PerfPT(loopTarget(t))
	if len(res.Funcs) == 0 {
		t.Fatal("empty ranking")
	}
	// perf-PT must produce a permutation of perf's functions.
	perf := baselines.Perf(loopTarget(t))
	if len(res.Funcs) != len(perf.Funcs) {
		t.Errorf("perf-PT has %d funcs, perf has %d", len(res.Funcs), len(perf.Funcs))
	}
	seen := map[string]bool{}
	for _, f := range res.Funcs {
		seen[f.Name] = true
	}
	for _, f := range perf.Funcs {
		if !seen[f.Name] {
			t.Errorf("perf-PT dropped %s", f.Name)
		}
	}
}

func TestCozFindsImpactfulBlock(t *testing.T) {
	// Single-process program where one block dominates: COZ must rank its
	// function first.
	src := `
func hot() { work(2000); return 0; }
func cold() { work(50); return 0; }
func main() { hot(); cold(); }
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{},
		BuggyCfg:  vm.Config{},
	}
	res := baselines.Coz(target)
	if res.Failure != baselines.FailNone {
		t.Fatalf("unexpected failure %q", res.Failure)
	}
	if len(res.Funcs) == 0 || res.Funcs[0].Name != "hot" {
		t.Fatalf("COZ ranking = %+v, want hot first", res.Funcs)
	}
}

func TestCozCrashFlag(t *testing.T) {
	target := loopTarget(t)
	target.CrashesCOZ = true
	res := baselines.Coz(target)
	if res.Failure != baselines.FailCrash {
		t.Fatalf("failure = %q, want crash", res.Failure)
	}
}

func TestCozChildFailure(t *testing.T) {
	// All real work happens in a child process: the parent does almost
	// nothing, so no virtual speedup helps and COZ reports child failure.
	src := `
func child_main(n) { var i = 0; while (i < n) { work(500); i++; } }
func main() { spawn("child_main", 60); }
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{},
		BuggyCfg:  vm.Config{},
	}
	res := baselines.Coz(target)
	if res.Failure != baselines.FailChild {
		t.Fatalf("failure = %q, want child (funcs: %+v)", res.Failure, res.Funcs)
	}
}

func TestCozScope(t *testing.T) {
	src := `
func hot() { work(2000); return 0; }
func alsohot() { work(1500); return 0; }
func main() { hot(); alsohot(); }
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{},
		BuggyCfg:  vm.Config{},
		Scope:     func(fn string) bool { return fn == "alsohot" },
	}
	res := baselines.Coz(target)
	if res.Rank("hot") != 0 {
		t.Error("COZ ranked out-of-scope function")
	}
	if res.Rank("alsohot") != 1 {
		t.Errorf("alsohot rank = %d, want 1", res.Rank("alsohot"))
	}
}

func TestStatDebugFindsFlippedPredicate(t *testing.T) {
	// The branch outcome in checker flips between normal and buggy runs.
	src := `
func checker(v) {
	if (v > 0) {
		work(100);
		return 1;
	}
	work(100);
	return 0;
}
func steady() { work(1000); return 1; }
func main() {
	var r = checker(input(0));
	steady();
}
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{Inputs: []int64{5}},
		BuggyCfg:  vm.Config{Inputs: []int64{0}},
	}
	res := baselines.StatDebug(target)
	if res.Rank("checker") == 0 {
		t.Fatalf("checker not ranked: %+v", res.Funcs)
	}
	if res.Rank("checker") > res.Rank("steady") && res.Rank("steady") != 0 {
		t.Errorf("checker (%d) should outrank steady (%d): predicates flipped",
			res.Rank("checker"), res.Rank("steady"))
	}
}

func TestStatDebugIgnoresCost(t *testing.T) {
	// A function that merely becomes slower (same control flow, same
	// predicates) is invisible to statistical debugging.
	src := `
func slowburn(n) {
	work(n);
	return 1;
}
func main() { slowburn(input(0)); }
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{Inputs: []int64{100}},
		BuggyCfg:  vm.Config{Inputs: []int64{50000}},
	}
	res := baselines.StatDebug(target)
	if r := res.Rank("slowburn"); r != 0 {
		// It may appear with score ~0 filtered out; any ranking here
		// means predicate distributions differed, which they must not.
		t.Errorf("slowburn ranked %d by stat-debug despite identical predicates", r)
	}
}

func TestResultRank(t *testing.T) {
	r := &baselines.Result{Funcs: []baselines.RankedFunc{{Name: "a"}, {Name: "b"}}}
	if r.Rank("a") != 1 || r.Rank("b") != 2 || r.Rank("zzz") != 0 {
		t.Errorf("Rank results wrong: %d %d %d", r.Rank("a"), r.Rank("b"), r.Rank("zzz"))
	}
}

func TestGprofCallGraph(t *testing.T) {
	// The call graph attributes callee time to callers by call counts:
	// the driver inherits most of expensive_worker's time.
	target := loopTarget(t)
	cg := baselines.GprofCallGraph(target)
	if len(cg.Rows) == 0 {
		t.Fatal("empty call graph")
	}
	if r := cg.Rank("main"); r < 1 || r > 2 {
		// main's inclusive time ties with driver's (its only callee),
		// so it ranks first or second.
		t.Errorf("main rank = %d, want 1-2:\n%s", r, cg.Render(0))
	}
	var driver, worker *baselines.CallGraphRow
	for i := range cg.Rows {
		switch cg.Rows[i].Name {
		case "driver":
			driver = &cg.Rows[i]
		case "expensive_worker":
			worker = &cg.Rows[i]
		}
	}
	if driver == nil || worker == nil {
		t.Fatalf("missing rows:\n%s", cg.Render(0))
	}
	// The worker's cost is nearly all self; the driver's is nearly all
	// inherited children time.
	if worker.Children > worker.Self/4 {
		t.Errorf("worker children %v vs self %v", worker.Children, worker.Self)
	}
	if driver.Children < driver.Self {
		t.Errorf("driver should inherit its callee's cost: self %v children %v", driver.Self, driver.Children)
	}
	if worker.Calls == 0 || driver.Calls == 0 {
		t.Error("call counts missing")
	}
	// Inclusive ordering: driver's total >= worker's total (it calls it).
	if driver.Total < worker.Total {
		t.Errorf("driver total %v < worker total %v", driver.Total, worker.Total)
	}
	if !strings.Contains(cg.Render(3), "children") {
		t.Error("render header missing")
	}
}

func TestGprofCallGraphRecursion(t *testing.T) {
	src := `
func recurse(n) {
	work(50);
	if (n > 0) {
		recurse(n - 1);
	}
	return n;
}
func main() { recurse(40); }
`
	target := &baselines.Target{
		Prog:      compile(t, src),
		NormalCfg: vm.Config{},
		BuggyCfg:  vm.Config{},
	}
	cg := baselines.GprofCallGraph(target)
	var rec *baselines.CallGraphRow
	for i := range cg.Rows {
		if cg.Rows[i].Name == "recurse" {
			rec = &cg.Rows[i]
		}
	}
	if rec == nil {
		t.Fatalf("recurse missing:\n%s", cg.Render(0))
	}
	// The cycle must not inflate the total beyond the program's runtime.
	if rec.Total > float64(3*50*41) {
		t.Errorf("cycle inflated total: %v", rec.Total)
	}
	if rec.Calls != 41 {
		t.Errorf("calls = %d, want 41", rec.Calls)
	}
}
