package baselines_test

import (
	"reflect"
	"sort"
	"testing"

	"vprof/internal/baselines"
	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/vm"
)

// legacyCoz is a verbatim replica of the hand-rolled block-scaling loop that
// Coz used before it was rewired onto internal/causal's shared
// virtual-speedup engine. It gates the rewire: Table 2 baseline output must
// stay byte-for-byte identical.
func legacyCoz(t *baselines.Target) *baselines.Result {
	if t.CrashesCOZ {
		return &baselines.Result{Tool: "COZ", Failure: baselines.FailCrash}
	}
	cfg := t.BuggyCfg
	cfg.AlarmPhase = 3
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	baseline := legacyRootRuntime(t.Prog, cfg, nil)

	var treeTicks int64
	for _, p := range vm.RunProcesses(t.Prog, func(int) vm.Config { return cfg }) {
		treeTicks += p.VM.Ticks()
	}
	childBlind := treeTicks > 0 && baseline*10 < treeTicks

	scores := map[string]float64{}
	for _, fn := range t.Prog.Debug.Funcs {
		if fn.Library || len(fn.Name) >= 2 && fn.Name[0] == '_' && fn.Name[1] == '_' {
			continue
		}
		for _, blk := range fn.Blocks {
			start, end := blk.Start, blk.End
			scale := func(pc int, cost int64) int64 {
				if pc >= start && pc < end {
					return int64(float64(cost) * baselines.CozSpeedup)
				}
				return cost
			}
			runtime := legacyRootRuntime(t.Prog, cfg, scale)
			gain := float64(baseline - runtime)
			if gain < float64(baseline)*0.01 {
				continue
			}
			if gain > scores[fn.Name] {
				scores[fn.Name] = gain
			}
		}
	}
	ranked := make([]baselines.RankedFunc, 0, len(scores))
	for fn, s := range scores {
		if s <= 0 {
			continue
		}
		ranked = append(ranked, baselines.RankedFunc{Name: fn, Score: s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Name < ranked[j].Name
	})
	res := &baselines.Result{Tool: "COZ", Funcs: ranked}
	if childBlind {
		res.Failure = baselines.FailChild
	}
	return res
}

func legacyRootRuntime(prog *compiler.Program, cfg vm.Config, scale func(int, int64) int64) int64 {
	cfg.CostScale = scale
	m := vm.New(prog, cfg)
	_ = m.Run()
	return m.Ticks()
}

// TestCozRewireGolden runs both implementations over a spread of reproduced
// issues (including a CrashesCOZ workload and a child-heavy workload) and
// requires identical results.
func TestCozRewireGolden(t *testing.T) {
	for _, id := range []string{"b1", "b2", "b3", "b5", "b7", "b11", "b13", "u1"} {
		w := bugs.ByID(id)
		if w == nil {
			t.Fatalf("unknown workload %s", id)
		}
		b, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		tgt := b.Target()
		got := baselines.Coz(tgt)
		want := legacyCoz(tgt)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: rewired Coz diverged from legacy\n got: %+v\nwant: %+v", id, got, want)
		}
	}
}
