package baselines

import (
	"sort"

	"vprof/internal/compiler"
	"vprof/internal/vm"
)

// PerfPT enhances perf with Intel-PT-style control-flow profiling (Table 2):
// profile normal and buggy executions, count branches taken per function,
// and re-rank perf's top-10 functions by scaling each one's cost with the
// ratio of its branch-count difference over total branches.
//
// The paper's observation — that control flow is noisy and a performance bug
// often shows the *same* control flow executed more often — emerges
// naturally: a loop iterating 100x more keeps the same branch *mix*, so the
// difference ratio stays small for everything and the re-ranking barely
// moves the root cause.
func PerfPT(t *Target) *Result {
	perf := Perf(t)
	top := perf.Funcs
	if len(top) > 10 {
		top = top[:10]
	}

	buggyBr := branchCounts(t.Prog, cfgWithPhase(t.BuggyCfg, 0))
	normalBr := branchCounts(t.normalProg(), cfgWithPhase(t.NormalCfg, 0))
	var total float64
	for _, n := range buggyBr {
		total += float64(n)
	}
	for _, n := range normalBr {
		total += float64(n)
	}
	if total == 0 {
		total = 1
	}

	rescored := make([]RankedFunc, len(top))
	for i, f := range top {
		diff := float64(buggyBr[f.Name]) - float64(normalBr[f.Name])
		if diff < 0 {
			diff = -diff
		}
		rescored[i] = RankedFunc{Name: f.Name, Score: f.Score * (diff / total)}
	}
	sort.Slice(rescored, func(i, j int) bool {
		if rescored[i].Score != rescored[j].Score {
			return rescored[i].Score > rescored[j].Score
		}
		return rescored[i].Name < rescored[j].Name
	})
	// Functions below the top-10 keep their perf order after the
	// re-ranked head.
	out := append(rescored, perf.Funcs[len(top):]...)
	return &Result{Tool: "perf-PT", Funcs: out}
}

// branchCounts runs the full process tree and sums taken-branch counts per
// function name.
func branchCounts(prog *compiler.Program, cfg vm.Config) map[string]int64 {
	out := map[string]int64{}
	procs := vm.RunProcesses(prog, func(int) vm.Config { return cfg })
	for _, p := range procs {
		for fi, n := range p.VM.BranchTaken {
			if n != 0 {
				out[prog.Funcs[fi].Name] += n
			}
		}
	}
	return out
}
