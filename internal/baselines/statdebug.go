package baselines

import (
	"vprof/internal/compiler"
	"vprof/internal/vm"
)

// StatDebug implements statistical performance debugging (Song & Lu, Table
// 2): it records *predicates* — conditional-branch outcomes and function
// return values — over several normal and buggy executions and ranks
// functions by how different their predicate distributions are. No execution
// costs are considered, which is the paper's point of contrast: predicates
// locate where behavior diverges (often the symptom), not where the time
// went wrong.
//
// Per Table 2, five normal and five buggy runs are used and predicates are
// restricted to the functions of the user-identified component.
func StatDebug(t *Target) *Result {
	runs := t.runs()
	if runs < 5 {
		runs = 5
	}
	normal := make([]*predicateTrace, runs)
	buggy := make([]*predicateTrace, runs)
	for i := 0; i < runs; i++ {
		normal[i] = tracePredicates(t.normalProg(), cfgWithPhase(t.NormalCfg, i))
		buggy[i] = tracePredicates(t.Prog, cfgWithPhase(t.BuggyCfg, i))
	}

	// Mean truth probability per predicate on each side.
	preds := map[predKey]bool{}
	for _, tr := range normal {
		for k := range tr.branch {
			preds[k] = true
		}
	}
	for _, tr := range buggy {
		for k := range tr.branch {
			preds[k] = true
		}
	}

	scores := map[string]float64{}
	for k := range preds {
		fn := t.Prog.FuncAt(k.pc)
		if fn == nil && t.NormalProg != nil {
			fn = t.NormalProg.FuncAt(k.pc)
		}
		if fn == nil || fn.Synthetic || !t.inScope(fn.Name) {
			continue
		}
		d := meanProb(buggy, k) - meanProb(normal, k)
		if d < 0 {
			d = -d
		}
		if d > scores[fn.Name] {
			scores[fn.Name] = d
		}
	}
	// Return-value predicates: P(return > 0) per function.
	retFuncs := map[string]bool{}
	for _, tr := range append(normal, buggy...) {
		for fn := range tr.retPos {
			retFuncs[fn] = true
		}
	}
	for fn := range retFuncs {
		if !t.inScope(fn) || isSyntheticName(fn) {
			continue
		}
		d := meanRetProb(buggy, fn) - meanRetProb(normal, fn)
		if d < 0 {
			d = -d
		}
		if d > scores[fn] {
			scores[fn] = d
		}
	}
	return &Result{Tool: "stat-debug", Funcs: rankingFromScores(scores)}
}

type predKey struct {
	pc int
}

type branchStat struct {
	taken, total int64
}

type predicateTrace struct {
	branch map[predKey]*branchStat
	// retPos / retTotal count positive and total returns per function.
	retPos   map[string]int64
	retTotal map[string]int64
}

func tracePredicates(prog *compiler.Program, cfg vm.Config) *predicateTrace {
	tr := &predicateTrace{
		branch:   map[predKey]*branchStat{},
		retPos:   map[string]int64{},
		retTotal: map[string]int64{},
	}
	procs := vm.RunProcesses(prog, func(int) vm.Config {
		c := cfg
		c.OnBranch = func(pc int, taken bool) {
			k := predKey{pc}
			s := tr.branch[k]
			if s == nil {
				s = &branchStat{}
				tr.branch[k] = s
			}
			s.total++
			if taken {
				s.taken++
			}
		}
		c.OnReturn = func(fi int, v vm.Value) {
			name := prog.Funcs[fi].Name
			tr.retTotal[name]++
			if v.I > 0 || v.Ptr {
				tr.retPos[name]++
			}
		}
		return c
	})
	_ = procs
	return tr
}

func meanProb(traces []*predicateTrace, k predKey) float64 {
	var sum float64
	var n int
	for _, tr := range traces {
		s := tr.branch[k]
		if s == nil || s.total == 0 {
			continue
		}
		sum += float64(s.taken) / float64(s.total)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func meanRetProb(traces []*predicateTrace, fn string) float64 {
	var sum float64
	var n int
	for _, tr := range traces {
		total := tr.retTotal[fn]
		if total == 0 {
			continue
		}
		sum += float64(tr.retPos[fn]) / float64(total)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
