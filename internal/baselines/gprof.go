package baselines

// Gprof ranks functions by flat PC-sample cost of the buggy execution, as
// gprof 2.34 does (Table 2): no normal-run comparison, no samples from
// dynamic libraries, and — unlike vProf's fixed gmon handling — samples only
// from the parent process (stock gprof's gmon.out is overwritten by each
// exiting process; in practice the children's data is lost).
func Gprof(t *Target) *Result {
	h := runWithHistogram(t.Prog, cfgWithPhase(t.BuggyCfg, 0), t.interval(), true)
	return &Result{
		Tool:  "gprof",
		Funcs: rankingFromScores(h.funcCosts(t.Prog, false)),
	}
}

// Perf ranks functions by flat PC-sample cost like gprof, but profiles
// system-wide: child processes and dynamic-library code are visible
// (Table 2: perf 5.11, default options).
func Perf(t *Target) *Result {
	h := runWithHistogram(t.Prog, cfgWithPhase(t.BuggyCfg, 0), t.interval(), false)
	return &Result{
		Tool:  "perf",
		Funcs: rankingFromScores(h.funcCosts(t.Prog, true)),
	}
}
