package baselines

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/vm"
)

// CallGraphRow is one function in a gprof-style call-graph profile.
type CallGraphRow struct {
	Name string
	// Self is the function's own sampled cost (flat profile).
	Self float64
	// Children is the cost inherited from callees, attributed by call
	// counts (gprof's propagation).
	Children float64
	// Total = Self + Children.
	Total float64
	// Calls is the number of times the function was called.
	Calls int64
}

// CallGraphProfile is gprof's call-graph output: the flat histogram plus
// mcount call counts, with callee time propagated to callers.
type CallGraphProfile struct {
	Rows []CallGraphRow // sorted by Total, descending
}

// Rank returns the 1-based rank of fn by total (inclusive) cost, or 0.
func (p *CallGraphProfile) Rank(fn string) int {
	for i, r := range p.Rows {
		if r.Name == fn {
			return i + 1
		}
	}
	return 0
}

// Render formats the profile like gprof's call-graph listing header.
func (p *CallGraphProfile) Render(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %12s %12s %12s %10s  %s\n", "rank", "total", "self", "children", "calls", "function")
	n := len(p.Rows)
	if topN > 0 && topN < n {
		n = topN
	}
	for i, r := range p.Rows[:n] {
		fmt.Fprintf(&b, "%-4d %12.0f %12.0f %12.0f %10d  %s\n", i+1, r.Total, r.Self, r.Children, r.Calls, r.Name)
	}
	return b.String()
}

// GprofCallGraph produces gprof's call-graph profile of the buggy execution:
// PC samples give self time, mcount-style call counts distribute each
// callee's total time over its callers proportionally. Like gprof, only the
// parent process is observed, library PCs are invisible, and cycles are
// collapsed (a back edge contributes no inherited time — gprof lumps cycle
// members instead; this simplification keeps attribution finite).
func GprofCallGraph(t *Target) *CallGraphProfile {
	prog := t.Prog
	cfg := cfgWithPhase(t.BuggyCfg, 0)
	cfg.CountCalls = true

	hist := make([]int64, len(prog.Instrs))
	edges := map[[2]int32]int64{}
	procs := vm.RunProcesses(prog, func(pid int) vm.Config {
		c := cfg
		record := pid == 1 // parent only, as stock gprof
		c.AlarmInterval = t.interval()
		c.OnAlarm = func(m *vm.VM) {
			if record {
				pc := m.PC()
				if pc >= 0 && pc < len(hist) {
					hist[pc]++
				}
			}
		}
		return c
	})
	for _, proc := range procs {
		if proc.Pid != 1 {
			continue
		}
		for e, n := range proc.VM.CallEdges {
			edges[e] += n
		}
	}

	// Self cost per function index (application functions only).
	self := make([]float64, len(prog.Funcs))
	for pc, n := range hist {
		if n == 0 {
			continue
		}
		fn := prog.FuncAt(pc)
		if fn == nil || fn.Library || fn.Synthetic {
			continue
		}
		self[fn.Index] += float64(n * t.interval())
	}

	// callsTo[i] totals incoming calls to function i.
	callsTo := make([]int64, len(prog.Funcs))
	for e, n := range edges {
		callsTo[int(e[1])] += n
	}

	// Total time: self plus inherited callee time, computed by memoized
	// DFS over the call graph; members of a cycle contribute nothing
	// across the back edge.
	total := make([]float64, len(prog.Funcs))
	state := make([]int, len(prog.Funcs)) // 0 unvisited, 1 visiting, 2 done
	children := make(map[int][][2]int64)
	for e, n := range edges {
		children[int(e[0])] = append(children[int(e[0])], [2]int64{int64(e[1]), n})
	}
	var dfs func(i int) float64
	dfs = func(i int) float64 {
		switch state[i] {
		case 1:
			return 0 // cycle back edge
		case 2:
			return total[i]
		}
		state[i] = 1
		sum := self[i]
		for _, c := range children[i] {
			callee := int(c[0])
			calleeTotal := dfs(callee)
			if callsTo[callee] > 0 {
				sum += calleeTotal * float64(c[1]) / float64(callsTo[callee])
			}
		}
		state[i] = 2
		total[i] = sum
		return sum
	}

	out := &CallGraphProfile{}
	for _, f := range prog.Funcs {
		if f.Library || f.Synthetic {
			continue
		}
		tot := dfs(f.Index)
		if tot == 0 && callsTo[f.Index] == 0 {
			continue
		}
		out.Rows = append(out.Rows, CallGraphRow{
			Name:     f.Name,
			Self:     self[f.Index],
			Children: tot - self[f.Index],
			Total:    tot,
			Calls:    callsTo[f.Index],
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Total != out.Rows[j].Total {
			return out.Rows[i].Total > out.Rows[j].Total
		}
		return out.Rows[i].Name < out.Rows[j].Name
	})
	return out
}
