package stats

import (
	"math"
	"sort"
)

// DefaultHellingerBins is the bin count used when two samples have too many
// distinct values to compare value-by-value.
const DefaultHellingerBins = 32

// Hellinger returns the Hellinger distance between the empirical
// distributions of two samples, in [0, 1]. 0 means identical distributions,
// 1 means disjoint support.
//
// The samples are discretized onto a common set of bins: exact values when
// the combined number of distinct values is small, equal-width bins over the
// combined range otherwise. An empty sample is treated as disjoint from a
// non-empty one (distance 1); two empty samples have distance 0.
func Hellinger(a, b []float64) float64 {
	return HellingerBins(a, b, DefaultHellingerBins)
}

// HellingerBins is Hellinger with an explicit bin budget (minimum 2).
func HellingerBins(a, b []float64, bins int) float64 {
	switch {
	case len(a) == 0 && len(b) == 0:
		return 0
	case len(a) == 0 || len(b) == 0:
		return 1
	}
	if bins < 2 {
		bins = 2
	}

	distinct := distinctValues(a, b)
	var pa, pb []float64
	if len(distinct) <= bins {
		pa = exactPMF(a, distinct)
		pb = exactPMF(b, distinct)
	} else {
		lo, hi := combinedRange(a, b)
		pa = binnedPMF(a, lo, hi, bins)
		pb = binnedPMF(b, lo, hi, bins)
	}

	// H^2 = 1 - sum sqrt(p_i * q_i)  (Bhattacharyya coefficient).
	var bc float64
	for i := range pa {
		bc += math.Sqrt(pa[i] * pb[i])
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

func distinctValues(a, b []float64) []float64 {
	all := make([]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	sort.Float64s(all)
	out := all[:0]
	for i, v := range all {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func exactPMF(s, distinct []float64) []float64 {
	p := make([]float64, len(distinct))
	for _, v := range s {
		i := sort.SearchFloat64s(distinct, v)
		p[i]++
	}
	for i := range p {
		p[i] /= float64(len(s))
	}
	return p
}

func combinedRange(a, b []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range [][]float64{a, b} {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

func binnedPMF(s []float64, lo, hi float64, bins int) []float64 {
	p := make([]float64, bins)
	width := (hi - lo) / float64(bins)
	if width <= 0 {
		p[0] = 1
		return p
	}
	for _, v := range s {
		i := int((v - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		p[i]++
	}
	for i := range p {
		p[i] /= float64(len(s))
	}
	return p
}
