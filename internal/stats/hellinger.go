package stats

import (
	"math"
	"sort"
	"sync"
)

// DefaultHellingerBins is the bin count used when two samples have too many
// distinct values to compare value-by-value.
const DefaultHellingerBins = 32

// hellScratch pools the working buffers of HellingerBins: two sorted copies
// of the inputs, the distinct-value list and the two PMFs. The kernel is
// called once per (variable, dimension) across every workload and was
// allocation-bound; pooling removes the steady-state allocations without
// touching the arithmetic (counts are exact integers in float64, so the
// counting order cannot change a result bit).
type hellScratch struct {
	a, b     []float64
	distinct []float64
	pa, pb   []float64
}

var hellScratchPool = sync.Pool{New: func() any { return new(hellScratch) }}

// Hellinger returns the Hellinger distance between the empirical
// distributions of two samples, in [0, 1]. 0 means identical distributions,
// 1 means disjoint support. It is safe for concurrent use.
//
// The samples are discretized onto a common set of bins: exact values when
// the combined number of distinct values is small, equal-width bins over the
// combined range otherwise. An empty sample is treated as disjoint from a
// non-empty one (distance 1); two empty samples have distance 0.
func Hellinger(a, b []float64) float64 {
	return HellingerBins(a, b, DefaultHellingerBins)
}

// HellingerBins is Hellinger with an explicit bin budget (minimum 2).
func HellingerBins(a, b []float64, bins int) float64 {
	switch {
	case len(a) == 0 && len(b) == 0:
		return 0
	case len(a) == 0 || len(b) == 0:
		return 1
	}
	if bins < 2 {
		bins = 2
	}

	sc := hellScratchPool.Get().(*hellScratch)
	defer hellScratchPool.Put(sc)
	sa := append(grow(sc.a, len(a))[:0], a...)
	sb := append(grow(sc.b, len(b))[:0], b...)
	sc.a, sc.b = sa, sb
	sort.Float64s(sa)
	sort.Float64s(sb)

	distinct := mergeDistinct(sa, sb, grow(sc.distinct, len(a)+len(b))[:0])
	sc.distinct = distinct

	var pa, pb []float64
	if len(distinct) <= bins {
		pa = sortedPMF(sa, distinct, grow(sc.pa, len(distinct)))
		pb = sortedPMF(sb, distinct, grow(sc.pb, len(distinct)))
	} else {
		lo, hi := distinct[0], distinct[len(distinct)-1]
		pa = binnedPMF(sa, lo, hi, bins, grow(sc.pa, bins))
		pb = binnedPMF(sb, lo, hi, bins, grow(sc.pb, bins))
	}
	sc.pa, sc.pb = pa, pb

	// H^2 = 1 - sum sqrt(p_i * q_i)  (Bhattacharyya coefficient).
	var bc float64
	for i := range pa {
		bc += math.Sqrt(pa[i] * pb[i])
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// mergeDistinct appends the sorted distinct union of two sorted slices to
// out.
func mergeDistinct(sa, sb, out []float64) []float64 {
	i, j := 0, 0
	for i < len(sa) || j < len(sb) {
		var v float64
		switch {
		case j >= len(sb) || (i < len(sa) && sa[i] <= sb[j]):
			v = sa[i]
			i++
		default:
			v = sb[j]
			j++
		}
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// sortedPMF computes the empirical PMF of a sorted sample over the distinct
// support in one merged walk (the sample's values are a subset of distinct).
func sortedPMF(s, distinct, p []float64) []float64 {
	for i := range p {
		p[i] = 0
	}
	d := 0
	for _, v := range s {
		for distinct[d] != v {
			d++
		}
		p[d]++
	}
	inv := float64(len(s))
	for i := range p {
		p[i] /= inv
	}
	return p
}

func binnedPMF(s []float64, lo, hi float64, bins int, p []float64) []float64 {
	for i := range p {
		p[i] = 0
	}
	width := (hi - lo) / float64(bins)
	if width <= 0 {
		p[0] = 1
		return p
	}
	for _, v := range s {
		i := int((v - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		p[i]++
	}
	for i := range p {
		p[i] /= float64(len(s))
	}
	return p
}
