package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestADNominalRejectionRate draws many same-distribution sample pairs and
// checks the Anderson-Darling test rejects at roughly the nominal p=0.05
// rate: under the null hypothesis, P(p < 0.05) ≈ 0.05. The p-value comes
// from a quadratic interpolation of tabulated critical values (clamped to
// [0.001, 0.25]), so the achieved rate is approximate; the bounds below are
// ±4 binomial standard deviations around the nominal 5%.
func TestADNominalRejectionRate(t *testing.T) {
	const (
		trials  = 400
		n       = 40
		nominal = 0.05
	)
	rng := rand.New(rand.NewSource(20230427))
	rejected := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			// Integer-valued samples, like real variable samples; ties
			// exercise the midrank statistic.
			a[i] = float64(rng.Intn(25))
			b[i] = float64(rng.Intn(25))
		}
		res, err := ADKSample(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.P < nominal {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	sd := math.Sqrt(nominal * (1 - nominal) / trials)
	lo, hi := nominal-4*sd, nominal+4*sd
	if rate < lo || rate > hi {
		t.Errorf("null rejection rate = %.3f (%d/%d), want within [%.3f, %.3f]",
			rate, rejected, trials, lo, hi)
	}
}

// TestADDetectsShiftedDistribution is the power-side complement: clearly
// different distributions must reject far above the nominal rate.
func TestADDetectsShiftedDistribution(t *testing.T) {
	const trials = 100
	rng := rand.New(rand.NewSource(7))
	rejected := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for i := range a {
			a[i] = float64(rng.Intn(25))
			b[i] = float64(rng.Intn(25) + 18)
		}
		res, err := ADKSample(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.P < 0.05 {
			rejected++
		}
	}
	if rejected < trials*9/10 {
		t.Errorf("shifted distributions rejected only %d/%d times", rejected, trials)
	}
}

// clampSample maps arbitrary quick-generated values into a small integer
// domain so properties are exercised with heavy ties, like real value
// samples.
func clampSample(raw []int16) []float64 {
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = float64(v % 32)
	}
	return out
}

func TestHellingerPropertyRangeAndSymmetry(t *testing.T) {
	prop := func(ra, rb []int16) bool {
		a, b := clampSample(ra), clampSample(rb)
		d1 := Hellinger(a, b)
		d2 := Hellinger(b, a)
		if math.Abs(d1-d2) > 1e-12 {
			t.Logf("asymmetric: %v vs %v", d1, d2)
			return false
		}
		if d1 < 0 || d1 > 1 || math.IsNaN(d1) {
			t.Logf("out of range: %v", d1)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestHellingerPropertyIdenticalIsZero(t *testing.T) {
	prop := func(ra []int16) bool {
		a := clampSample(ra)
		d := Hellinger(a, a)
		// Identical samples have identical PMFs; sqrt(p*p) can land an ulp
		// off p, so BC sums to 1 within a few ulps and the distance to 0
		// within sqrt of that.
		return d < 1e-7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

func TestHellingerPropertyDisjointIsOne(t *testing.T) {
	prop := func(ra, rb []int16) bool {
		if len(ra) == 0 || len(rb) == 0 {
			return true
		}
		a := make([]float64, len(ra))
		b := make([]float64, len(rb))
		for i, v := range ra {
			a[i] = float64(v%32)*2 + 1 // odd support
		}
		for i, v := range rb {
			b[i] = float64(v%32) * 2 // even support
		}
		d := HellingerBins(a, b, 1<<20) // exact path: supports never share a bin
		return math.Abs(d-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

// TestRunLengthRoundTrip checks that Compress and RunLengths together are a
// lossless encoding of a series: repeating each distinct value by its run
// length reconstructs the original exactly.
func TestRunLengthRoundTrip(t *testing.T) {
	prop := func(raw []int16) bool {
		s := make([]float64, len(raw))
		for i, v := range raw {
			s[i] = float64(v % 4) // small alphabet → long runs
		}
		values := Compress(s)
		lengths := RunLengths(s)
		if len(values) != len(lengths) {
			t.Logf("len(Compress)=%d != len(RunLengths)=%d", len(values), len(lengths))
			return false
		}
		var rebuilt []float64
		for i, v := range values {
			for j := 0; j < int(lengths[i]); j++ {
				rebuilt = append(rebuilt, v)
			}
		}
		if len(rebuilt) != len(s) {
			return false
		}
		for i := range s {
			if rebuilt[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Error(err)
	}
}

// TestADKSampleConcurrentPooledScratch hammers the pooled-scratch path from
// many goroutines with differently-sized inputs and checks results match the
// single-goroutine answers bit-for-bit (run under -race this also proves the
// pool and memoization are safe).
func TestADKSampleConcurrentPooledScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type c struct{ a, b []float64 }
	cases := make([]c, 64)
	want := make([]ADResult, len(cases))
	for i := range cases {
		n := 5 + rng.Intn(60)
		m := 5 + rng.Intn(60)
		a := make([]float64, n)
		b := make([]float64, m)
		for j := range a {
			a[j] = float64(rng.Intn(30))
		}
		for j := range b {
			b[j] = float64(rng.Intn(40))
		}
		cases[i] = c{a, b}
		res, err := ADKSample(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for rep := 0; rep < 20; rep++ {
				for i, tc := range cases {
					res, err := ADKSample(tc.a, tc.b)
					if err != nil {
						done <- err
						return
					}
					if res != want[i] {
						done <- errMismatch
						return
					}
					if d := Hellinger(tc.a, tc.b); d < 0 || d > 1 {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent result differs from sequential")

type errorString string

func (e errorString) Error() string { return string(e) }
