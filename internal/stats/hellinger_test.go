package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHellingerIdentical(t *testing.T) {
	a := []float64{1, 2, 2, 3, 3, 3}
	if d := Hellinger(a, a); d > 1e-9 {
		t.Errorf("Hellinger(a,a) = %v, want 0", d)
	}
}

func TestHellingerDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	if d := Hellinger(a, b); math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint distance = %v, want 1", d)
	}
}

func TestHellingerEmpty(t *testing.T) {
	if d := Hellinger(nil, nil); d != 0 {
		t.Errorf("both empty: %v, want 0", d)
	}
	if d := Hellinger(nil, []float64{1}); d != 1 {
		t.Errorf("one empty: %v, want 1", d)
	}
}

func TestHellingerPartialOverlap(t *testing.T) {
	a := []float64{1, 1, 2, 2}
	b := []float64{2, 2, 3, 3}
	d := Hellinger(a, b)
	if d <= 0.1 || d >= 0.95 {
		t.Errorf("partial overlap distance = %v, want intermediate", d)
	}
}

func TestHellingerBinnedLargeRange(t *testing.T) {
	// Many distinct values forces binning.
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64() * 100
		b[i] = rng.NormFloat64() * 100
	}
	if d := Hellinger(a, b); d > 0.35 {
		t.Errorf("same-distribution binned distance = %v, want small", d)
	}
	for i := range b {
		b[i] += 1000
	}
	if d := Hellinger(a, b); d < 0.95 {
		t.Errorf("shifted binned distance = %v, want ~1", d)
	}
}

// Properties: range [0,1] and symmetry.
func TestHellingerPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = float64(rng.Intn(20) - 10)
		}
		for i := range b {
			b[i] = float64(rng.Intn(20) - 10)
		}
		d1 := Hellinger(a, b)
		d2 := Hellinger(b, a)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeltas(t *testing.T) {
	got := Deltas([]float64{3, 6, 6, 9, 5})
	want := []float64{3, 0, 3, -4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if Deltas([]float64{1}) != nil {
		t.Error("single-element deltas should be nil")
	}
}

func TestRunLengths(t *testing.T) {
	got := RunLengths([]float64{3, 6, 6, 6, 6, 9})
	want := []float64{1, 4, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if RunLengths(nil) != nil {
		t.Error("empty input should give nil")
	}
}

// Property: run lengths sum to the series length.
func TestRunLengthsSumQuick(t *testing.T) {
	f := func(vals []uint8) bool {
		s := make([]float64, len(vals))
		for i, v := range vals {
			s[i] = float64(v % 4) // force runs
		}
		var sum float64
		for _, r := range RunLengths(s) {
			sum += r
		}
		return sum == float64(len(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	s := []float64{4, -2, 10, 0}
	if m := Mean(s); m != 3 {
		t.Errorf("mean = %v", m)
	}
	lo, hi, ok := MinMax(s)
	if !ok || lo != -2 || hi != 10 {
		t.Errorf("minmax = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) should report !ok")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestRanks(t *testing.T) {
	r := Ranks(map[string]float64{"a": 10, "b": 30, "c": 20, "d": 20})
	if r["b"] != 1 {
		t.Errorf("b rank = %d", r["b"])
	}
	if r["c"] != 2 || r["d"] != 2 {
		t.Errorf("tied ranks: c=%d d=%d", r["c"], r["d"])
	}
	if r["a"] != 3 {
		t.Errorf("a rank = %d", r["a"])
	}
}
