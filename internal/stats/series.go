package stats

import "sort"

// Deltas returns successive differences s[i+1]-s[i] of a time-ordered sample
// series.
func Deltas(s []float64) []float64 {
	if len(s) < 2 {
		return nil
	}
	out := make([]float64, len(s)-1)
	for i := 1; i < len(s); i++ {
		out[i-1] = s[i] - s[i-1]
	}
	return out
}

// Compress collapses a time-ordered series to one entry per run of equal
// consecutive values.
func Compress(s []float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	runs := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			runs++
		}
	}
	out := make([]float64, 0, runs)
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ChangeDeltas returns the differences between successive *distinct* values
// of a time-ordered series: the discounter's "how much the values change"
// dimension (§5.1). Zero-deltas from a value merely persisting across alarms
// are excluded — persistence is measured by RunLengths, the "how often"
// dimension — so the two dimensions stay orthogonal.
func ChangeDeltas(s []float64) []float64 {
	return Deltas(Compress(s))
}

// RunLengths returns the lengths of maximal runs of equal consecutive values
// in a time-ordered series: the discounter's "processing cost" dimension
// (how many alarm intervals a value stays the same).
func RunLengths(s []float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	runs := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			runs++
		}
	}
	out := make([]float64, 0, runs)
	run := 1.0
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			run++
			continue
		}
		out = append(out, run)
		run = 1
	}
	return append(out, run)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// MinMax returns the smallest and largest values; ok is false when s is
// empty.
func MinMax(s []float64) (lo, hi float64, ok bool) {
	if len(s) == 0 {
		return 0, 0, false
	}
	lo, hi = s[0], s[0]
	for _, v := range s[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// Ranks converts per-key costs into dense 1-based ranks, highest cost first.
// Keys with equal cost receive the same rank.
func Ranks(cost map[string]float64) map[string]int {
	type kv struct {
		k string
		v float64
	}
	all := make([]kv, 0, len(cost))
	for k, v := range cost {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	ranks := make(map[string]int, len(all))
	rank := 0
	var prev float64
	for i, e := range all {
		if i == 0 || e.v != prev {
			rank++
			prev = e.v
		}
		ranks[e.k] = rank
	}
	return ranks
}
