package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestADIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	r, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.25 {
		t.Errorf("identical samples: p = %v, want 0.25 (cannot reject null)", r.P)
	}
}

func TestADSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.05 {
		t.Errorf("same-distribution samples rejected: p = %v, stat = %v", r.P, r.Stat)
	}
}

func TestADDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()         // normal(0,1)
		b[i] = rng.Float64()*20.0 - 10.0 // uniform(-10,10)
	}
	r, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 0.01 {
		t.Errorf("clearly different samples not rejected: p = %v, stat = %v", r.P, r.Stat)
	}
}

// The paper's shape-not-location property: two same-shape distributions with
// different means are different under AD (it is a general distribution test),
// but a mean shift of a wide distribution by a small fraction of its spread
// is not flagged. Verify the directional behavior on a large shift.
func TestADMeanShiftDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 8 // far-separated means
	}
	r, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 0.001 {
		t.Errorf("disjoint samples: p = %v, want 0.001", r.P)
	}
}

func TestADThreeSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(shift float64) []float64 {
		s := make([]float64, 100)
		for i := range s {
			s[i] = rng.NormFloat64() + shift
		}
		return s
	}
	same, err := ADKSample(mk(0), mk(0), mk(0))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := ADKSample(mk(0), mk(0), mk(6))
	if err != nil {
		t.Fatal(err)
	}
	if same.P < 0.05 {
		t.Errorf("3 same samples rejected: p=%v", same.P)
	}
	if diff.P > 0.01 {
		t.Errorf("3rd shifted sample not detected: p=%v", diff.P)
	}
}

func TestADWithHeavyTies(t *testing.T) {
	// Induction-variable style samples: small integer values, many ties.
	a := []float64{3, 6, 6, 6, 6, 9, 3, 6, 6, 6, 6, 9}
	b := []float64{3, 6, 8, 3, 6, 8, 3, 6, 8, 3, 6, 8}
	r, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Stat) || math.IsInf(r.Stat, 0) {
		t.Fatalf("stat not finite with ties: %v", r.Stat)
	}
}

func TestADDegenerateInputs(t *testing.T) {
	cases := [][][]float64{
		{{1, 2, 3}},      // one sample
		{{}, {1, 2, 3}},  // empty sample
		{{1, 1}, {1, 1}}, // all pooled equal
		{{1}, {1}},       // too few observations
	}
	for i, c := range cases {
		if _, err := ADKSample(c...); err == nil {
			t.Errorf("case %d: expected ErrDegenerate", i)
		}
	}
}

func TestADOrderInvariance(t *testing.T) {
	a := []float64{5, 1, 4, 2, 8, 9, 7, 7, 3}
	b := []float64{10, 2, 2, 6, 4, 12, 11, 3, 5}
	r1, err := ADKSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ADKSample(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Stat-r2.Stat) > 1e-9 {
		t.Errorf("statistic depends on sample order: %v vs %v", r1.Stat, r2.Stat)
	}
}

// Property: the AD statistic is rank-based, so any strictly increasing
// transform of all observations leaves it unchanged.
func TestADMonotoneInvarianceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(15))
			b[i] = float64(rng.Intn(15) + rng.Intn(3))
		}
		r1, err1 := ADKSample(a, b)
		ta := make([]float64, n)
		tb := make([]float64, n)
		for i := range a {
			ta[i] = math.Exp(a[i] / 3)
			tb[i] = math.Exp(b[i] / 3)
		}
		r2, err2 := ADKSample(ta, tb)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(r1.A2akN-r2.A2akN) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuadFit(t *testing.T) {
	// Fit an exact quadratic and recover its coefficients.
	x := []float64{-2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 1.5 - 2*xi + 0.5*xi*xi
	}
	c0, c1, c2 := quadFit(x, y)
	if math.Abs(c0-1.5) > 1e-9 || math.Abs(c1+2) > 1e-9 || math.Abs(c2-0.5) > 1e-9 {
		t.Errorf("quadFit = %v %v %v, want 1.5 -2 0.5", c0, c1, c2)
	}
}

func TestADPValueMonotone(t *testing.T) {
	// Larger standardized statistics must not yield larger p-values.
	prev := 1.0
	for stat := -2.0; stat < 6; stat += 0.25 {
		p := adPValue(stat, 1)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at stat=%v: %v > %v", stat, p, prev)
		}
		prev = p
	}
}
