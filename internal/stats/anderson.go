// Package stats implements the statistics that vProf's post-profiling
// analysis relies on (paper §5.1): the k-sample Anderson-Darling test used
// to decide whether value-sample distributions from normal and buggy
// executions differ, and the Hellinger distance used to quantify how much
// they differ. It also provides the histogram, delta and run-length helpers
// the variable-discounter builds its three anomaly dimensions from.
//
// Everything is implemented from scratch on the standard library; the
// Anderson-Darling implementation follows Scholz & Stephens (1987), "K-Sample
// Anderson-Darling Tests", using the midrank (tie-aware) statistic and the
// same critical-value interpolation SciPy's anderson_ksamp uses — the paper's
// analysis was written in Python on top of SciPy.
package stats

import (
	"errors"
	"math"
	"sort"
	"sync"
)

// ErrDegenerate is returned by ADKSample when the test is undefined: fewer
// than two samples, an empty sample, or all pooled observations equal.
var ErrDegenerate = errors.New("stats: anderson-darling test undefined for input")

// ADResult is the outcome of a k-sample Anderson-Darling test.
type ADResult struct {
	// A2akN is the tie-adjusted rank statistic.
	A2akN float64
	// Stat is the standardized statistic (A2akN - (k-1)) / sigma.
	Stat float64
	// P is the approximate significance level at which the null
	// hypothesis (all samples drawn from a common distribution) can be
	// rejected. It is clamped to [0.001, 0.25] outside the interpolation
	// range, as in SciPy.
	P float64
}

// adScratch holds the per-call working buffers of ADKSample. Calls are hot
// (one per variable per dimension, across every workload of a table run) and
// were allocation-bound; the buffers are pooled and resized in place so the
// steady state allocates nothing. Pooling only changes where the memory
// comes from — the arithmetic and its order are untouched, keeping results
// bit-identical to the original implementation.
type adScratch struct {
	pooled []float64
	sorted []float64
	zstar  []float64
	lj, bj []float64
	n      []int
}

var adScratchPool = sync.Pool{New: func() any { return new(adScratch) }}

// grow returns buf with length n, reusing its backing array when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ADKSample runs the k-sample Anderson-Darling test on the given samples.
// It is safe for concurrent use.
func ADKSample(samples ...[]float64) (ADResult, error) {
	k := len(samples)
	if k < 2 {
		return ADResult{}, ErrDegenerate
	}
	sc := adScratchPool.Get().(*adScratch)
	defer adScratchPool.Put(sc)
	if cap(sc.n) < k {
		sc.n = make([]int, k)
	}
	n := sc.n[:k]
	N := 0
	for i, s := range samples {
		if len(s) == 0 {
			return ADResult{}, ErrDegenerate
		}
		n[i] = len(s)
		N += len(s)
	}
	if N < 4 {
		return ADResult{}, ErrDegenerate
	}
	pooled := grow(sc.pooled, N)[:0]
	for _, s := range samples {
		pooled = append(pooled, s...)
	}
	sc.pooled = pooled
	sort.Float64s(pooled)
	if pooled[0] == pooled[N-1] {
		return ADResult{}, ErrDegenerate
	}

	// Distinct pooled values and their multiplicities.
	zstar := grow(sc.zstar, N)[:1]
	zstar[0] = pooled[0]
	for _, v := range pooled[1:] {
		if v != zstar[len(zstar)-1] {
			zstar = append(zstar, v)
		}
	}
	sc.zstar = zstar
	L := len(zstar)

	searchLeft := func(s []float64, v float64) int {
		return sort.SearchFloat64s(s, v)
	}
	searchRight := func(s []float64, v float64) int {
		return sort.Search(len(s), func(i int) bool { return s[i] > v })
	}

	lj := grow(sc.lj, L) // multiplicity of zstar[j] in pooled
	bj := grow(sc.bj, L) // midrank position
	sc.lj, sc.bj = lj, bj
	for j, v := range zstar {
		l := searchLeft(pooled, v)
		r := searchRight(pooled, v)
		lj[j] = float64(r - l)
		bj[j] = float64(l) + lj[j]/2
	}

	fN := float64(N)
	var a2akN float64
	for i := 0; i < k; i++ {
		s := append(grow(sc.sorted, len(samples[i]))[:0], samples[i]...)
		sc.sorted = s
		sort.Float64s(s)
		var inner float64
		for j, v := range zstar {
			right := float64(searchRight(s, v))
			fij := right - float64(searchLeft(s, v))
			mij := right - fij/2
			denom := bj[j]*(fN-bj[j]) - fN*lj[j]/4
			if denom <= 0 {
				continue
			}
			num := fN*mij - bj[j]*float64(n[i])
			inner += lj[j] / fN * num * num / denom
		}
		a2akN += inner / float64(n[i])
	}
	a2akN *= (fN - 1) / fN

	// Variance of the statistic under the null (Scholz & Stephens eq. 7).
	var H float64
	for _, ni := range n {
		H += 1 / float64(ni)
	}
	h, g := harmonicTerms(N)
	fk := float64(k)
	a := (4*g-6)*(fk-1) + (10-6*g)*H
	b := (2*g-4)*fk*fk + 8*h*fk + (2*g-14*h-4)*H - 8*h + 4*g - 6
	c := (6*h+2*g-2)*fk*fk + (4*h-4*g+6)*fk + (2*h-6)*H + 4*h
	d := (2*h+6)*fk*fk - 4*h*fk
	sigmaSq := (a*fN*fN*fN + b*fN*fN + c*fN + d) /
		((fN - 1) * (fN - 2) * (fN - 3))
	if sigmaSq <= 0 {
		return ADResult{}, ErrDegenerate
	}
	m := fk - 1
	stat := (a2akN - m) / math.Sqrt(sigmaSq)

	return ADResult{A2akN: a2akN, Stat: stat, P: adPValue(stat, m)}, nil
}

// harmonicTerms returns the h and g terms of the Scholz & Stephens variance
// formula for a pooled size of N. g is quadratic in N to compute and both
// depend on nothing but N, while the analysis pipeline calls ADKSample with
// the same handful of sample sizes thousands of times per table run — so the
// terms are memoized. The cached values are produced by exactly the
// summation loops (and summation order) of the direct computation, so
// memoization cannot perturb a single bit of any result.
func harmonicTerms(N int) (h, g float64) {
	harmonicMu.Lock()
	defer harmonicMu.Unlock()
	if t, ok := harmonicCache[N]; ok {
		return t[0], t[1]
	}
	for i := 1; i < N; i++ {
		h += 1 / float64(i)
	}
	for i := 1; i <= N-2; i++ {
		for j := i + 1; j <= N-1; j++ {
			g += 1 / (float64(N-i) * float64(j))
		}
	}
	if len(harmonicCache) >= harmonicCacheCap {
		// Unbounded growth guard; distinct Ns per process are few, so
		// resetting (rather than evicting) keeps the code trivial.
		harmonicCache = make(map[int][2]float64, harmonicCacheCap)
	}
	harmonicCache[N] = [2]float64{h, g}
	return h, g
}

const harmonicCacheCap = 1 << 14

var (
	harmonicMu    sync.Mutex
	harmonicCache = map[int][2]float64{}
)

// Interpolation tables from Scholz & Stephens (1987), Table 2, as used by
// SciPy: critical values at the listed significance levels are approximated
// by b0 + b1/sqrt(m) + b2/m, then log(sig) is fit quadratically in the
// critical value and evaluated at the observed statistic.
var (
	adSig = []float64{0.25, 0.10, 0.05, 0.025, 0.01, 0.005, 0.001}
	adB0  = []float64{0.675, 1.281, 1.645, 1.960, 2.326, 2.573, 3.085}
	adB1  = []float64{-0.245, 0.250, 0.678, 1.149, 1.822, 2.364, 3.615}
	adB2  = []float64{-0.105, -0.305, -0.362, -0.391, -0.396, -0.345, -0.154}

	// adLogSig is log(adSig), fixed at init so the hot p-value path takes
	// no logarithms and allocates nothing.
	adLogSig = func() [7]float64 {
		var out [7]float64
		for i, s := range adSig {
			out[i] = math.Log(s)
		}
		return out
	}()
)

func adPValue(stat, m float64) float64 {
	var crit [7]float64
	for i := range adSig {
		crit[i] = adB0[i] + adB1[i]/math.Sqrt(m) + adB2[i]/m
	}
	c0, c1, c2 := quadFit(crit[:], adLogSig[:])
	p := math.Exp(c0 + c1*stat + c2*stat*stat)
	// Clamp outside the table range, as SciPy does.
	if stat < crit[0] {
		return 0.25
	}
	if stat > crit[len(crit)-1] {
		return 0.001
	}
	if p > 0.25 {
		p = 0.25
	}
	if p < 0.001 {
		p = 0.001
	}
	return p
}

// quadFit fits y ~= c0 + c1*x + c2*x^2 by least squares.
func quadFit(x, y []float64) (c0, c1, c2 float64) {
	var s0, s1, s2, s3, s4 float64
	var t0, t1, t2 float64
	for i := range x {
		xi, yi := x[i], y[i]
		x2 := xi * xi
		s0++
		s1 += xi
		s2 += x2
		s3 += x2 * xi
		s4 += x2 * x2
		t0 += yi
		t1 += xi * yi
		t2 += x2 * yi
	}
	// Solve the 3x3 normal equations with Cramer's rule.
	det := s0*(s2*s4-s3*s3) - s1*(s1*s4-s2*s3) + s2*(s1*s3-s2*s2)
	if det == 0 {
		return 0, 0, 0
	}
	c0 = (t0*(s2*s4-s3*s3) - s1*(t1*s4-t2*s3) + s2*(t1*s3-t2*s2)) / det
	c1 = (s0*(t1*s4-t2*s3) - t0*(s1*s4-s2*s3) + s2*(s1*t2-s2*t1)) / det
	c2 = (s0*(s2*t2-s3*t1) - s1*(s1*t2-s2*t1) + t0*(s1*s3-s2*s2)) / det
	return c0, c1, c2
}
