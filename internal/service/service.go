// Package service is the continuous-profiling daemon: an HTTP front end
// over the profile store that accepts concurrent profile uploads and serves
// differential diagnoses of candidate runs against each workload's stored
// baseline corpus, using the same calibrated ranking + root-cause classifier
// as the offline pipeline (internal/analysis).
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/profiles?workload=w&label=normal|candidate&run=id
//	     body: one profilefmt bundle (binary). Validated, deduplicated.
//	GET  /v1/workloads
//	POST /v1/diagnose        {"workload": w, "candidates": ["0"], "top": 10}
//	POST /v1/check           {"workload": w} or {"source": text, "path": p}
//	POST /v1/causal          {"workload": w, "speedups": [10,50,95], "granularity": "func"}
//	GET  /v1/report/{id}
//	GET  /v1/stats
//
// Ingestion and diagnosis share a bounded worker pool, so N clients can
// push concurrently without unbounded decode/analysis work in flight.
// Diagnosis results are memoized by the content hashes of the exact
// (candidate-set, baseline-set) pair, so re-diagnosing an unchanged
// workload is a cache hit (observable via the stats counters).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vprof/internal/analysis"
	"vprof/internal/obs"
	"vprof/internal/sampler"
	"vprof/internal/store"
)

// MaxUploadBytes bounds one profile upload.
const MaxUploadBytes = 64 << 20

// Config assembles a server.
type Config struct {
	// Store is the single-node backend. Exactly one of Store and Backend
	// must be set.
	Store *store.Store
	// Backend is a pluggable storage tier (the cluster router). When set it
	// takes precedence over Store.
	Backend  Backend
	Resolver Resolver
	// Workers bounds concurrently executing ingest/diagnose work
	// (default 4).
	Workers int
	// AnalysisWorkers bounds the per-diagnosis analysis worker pool
	// (internal/parallel): 0 resolves a default via VPROF_WORKERS then
	// GOMAXPROCS, 1 forces the sequential legacy path. Reports are
	// byte-for-byte identical for every value.
	AnalysisWorkers int
	// Params are the analysis tunables (zero value → DefaultParams).
	Params *analysis.Params
	// Top is the default row count of rendered reports (default 10).
	Top int
	// Metrics receives the service's instrumentation and backs GET
	// /metrics. Nil allocates a private registry, so /metrics always
	// works; pass a shared registry to combine with store/sampler/pool
	// series.
	Metrics *obs.Registry
	// Logger receives structured request/diagnosis logs (nil = discard).
	Logger *slog.Logger
	// RequestTimeout bounds each request's total handling time, including
	// its wait for a worker slot (0 = no per-request deadline).
	RequestTimeout time.Duration
	// MaxQueue bounds how many requests may wait for a worker slot; past
	// that the service sheds load with 429 + Retry-After instead of
	// building an unbounded backlog (default 64).
	MaxQueue int
	// Sketches serves every diagnosis from the store's persisted
	// per-variable sketches by default (the incremental path: no raw blob
	// is re-decoded). Individual requests can also opt in per call.
	Sketches bool
}

// Machine-readable error codes carried in the JSON error body alongside the
// message; the client maps them to typed sentinel errors.
const (
	CodeBadRequest      = "bad_request"
	CodeInvalidBundle   = "invalid_bundle"
	CodeNotFound        = "not_found"
	CodeBaselineMissing = "baseline_missing"
	CodeNoCandidates    = "no_candidates"
	CodeAnalysisFailed  = "analysis_failed"
	CodeCanceled        = "canceled"
	CodeInternal        = "internal"
	CodeOverloaded      = "overloaded"  // admission queue full: retry later
	CodeTimeout         = "timeout"     // per-request deadline exceeded
	CodeUnavailable     = "unavailable" // draining for shutdown
)

// retryAfterSeconds is the Retry-After hint sent with 429/503 responses;
// the client's backoff honors it.
const retryAfterSeconds = "1"

// StatusClientClosedRequest reports a diagnosis aborted because its client
// disconnected (nginx's non-standard 499; never actually written to the
// closed connection, but visible in Diagnose's status return and metrics).
const StatusClientClosedRequest = 499

// codedError pairs an error with its machine-readable code so HTTP handlers
// can emit both without string matching.
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

func withCode(code string, err error) error {
	return &codedError{code: code, err: err}
}

// errCode extracts the machine-readable code (CodeInternal when untyped).
func errCode(err error) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return CodeInternal
}

// serviceMetrics holds the request-path instrumentation handles (all
// nil-safe obs metrics).
type serviceMetrics struct {
	http        *obs.HTTPMetrics
	duration    *obs.Histogram // diagnose wall time, computed only
	diagnoses   *obs.CounterVec
	memoHits    *obs.Counter
	poolSlots   *obs.Gauge
	poolInUse   *obs.Gauge
	poolWaiting *obs.Gauge
	panics      *obs.Counter
	shed        *obs.Counter

	causal            *obs.CounterVec
	causalExperiments *obs.Counter
	causalDuration    *obs.Histogram
	causalMemoHits    *obs.Counter
}

func newServiceMetrics(reg *obs.Registry) serviceMetrics {
	return serviceMetrics{
		http: obs.NewHTTPMetrics(reg, "vprof"),
		duration: reg.Histogram("vprof_diagnose_duration_seconds",
			"Wall time of computed (non-memoized) diagnoses.", obs.DefBuckets),
		diagnoses: reg.CounterVec("vprof_diagnose_requests_total",
			"Diagnose requests, by outcome.", "outcome"),
		memoHits: reg.Counter("vprof_diagnose_memo_hits_total",
			"Diagnose requests served from the memo cache."),
		poolSlots: reg.Gauge("vprof_pool_slots",
			"Capacity of the ingest/diagnose worker pool."),
		poolInUse: reg.Gauge("vprof_pool_in_use",
			"Worker-pool slots currently held."),
		poolWaiting: reg.Gauge("vprof_pool_queue_depth",
			"Requests blocked waiting for a worker-pool slot."),
		panics: reg.Counter("vprof_panics_total",
			"Handler panics recovered by the HTTP middleware (served as 500s)."),
		shed: reg.Counter("vprof_shed_total",
			"Requests shed with 429 because the admission queue was full."),
		causal: reg.CounterVec("vprof_causal_requests_total",
			"Causal-profiling requests, by outcome.", "outcome"),
		causalExperiments: reg.Counter("vprof_causal_experiments_total",
			"Virtual-speedup experiments executed by computed causal sweeps."),
		causalDuration: reg.Histogram("vprof_causal_duration_seconds",
			"Wall time of computed (non-memoized) causal sweeps.", obs.DefBuckets),
		causalMemoHits: reg.Counter("vprof_causal_memo_hits_total",
			"Causal requests served from the memo cache."),
	}
}

// Server implements the HTTP API. Create with New.
type Server struct {
	store      Backend
	resolver   Resolver
	params     analysis.Params
	top        int
	sem        chan struct{}
	maxQueue   int
	reqTimeout time.Duration
	reg        *obs.Registry
	m          serviceMetrics
	log        *slog.Logger

	queued atomic.Int64 // requests waiting for a worker slot

	drainMu  sync.Mutex
	draining bool
	inFlight sync.WaitGroup // admitted requests not yet finished

	sketches bool // default every diagnosis to the sketch path

	// mu guards reports, the endpoints' memo/inflight maps, and corpora.
	mu      sync.Mutex
	reports map[string]*DiagnoseResponse // report id → result
	// corpora caches one hist-discounter corpus per workload, keyed by the
	// exact baseline id set; an unchanged baseline set re-uses it, so an
	// incremental diagnosis folds only the new candidates' sketches.
	corpora map[string]*corpusEntry

	diagEP   *endpoint[DiagnoseResponse]
	causalEP *endpoint[CausalResponse]

	ingested  atomic.Int64
	deduped   atomic.Int64
	rejected  atomic.Int64
	diagnoses atomic.Int64
	memoHits  atomic.Int64
}

// New builds a server over an open store (or any other Backend).
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil && cfg.Store != nil {
		backend = cfg.Store
	}
	if backend == nil {
		return nil, fmt.Errorf("service: Config.Store or Config.Backend is required")
	}
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("service: Config.Resolver is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	top := cfg.Top
	if top <= 0 {
		top = 10
	}
	params := analysis.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	if cfg.AnalysisWorkers != 0 {
		params.Workers = cfg.AnalysisWorkers
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Nop()
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 64
	}
	s := &Server{
		store:      backend,
		resolver:   cfg.Resolver,
		params:     params,
		top:        top,
		sem:        make(chan struct{}, workers),
		maxQueue:   maxQueue,
		reqTimeout: cfg.RequestTimeout,
		reg:        reg,
		m:          newServiceMetrics(reg),
		log:        logger,
		sketches:   cfg.Sketches,
		reports:    map[string]*DiagnoseResponse{},
		corpora:    map[string]*corpusEntry{},
	}
	s.m.poolSlots.Set(float64(workers))

	s.diagEP = newEndpoint[DiagnoseResponse](s, "diagnose", s.m.diagnoses, s.m.memoHits, s.m.duration)
	s.diagEP.onHit = func(resp *DiagnoseResponse) *DiagnoseResponse {
		s.memoHits.Add(1)
		return s.cachedCopy(resp)
	}
	s.diagEP.onStore = func(resp *DiagnoseResponse) { s.reports[resp.ReportID] = resp }
	s.diagEP.finish = func(resp *DiagnoseResponse) (*DiagnoseResponse, []any) {
		s.diagnoses.Add(1)
		out := *resp
		out.MemoHits = s.memoHits.Load()
		return &out, []any{"report", resp.ReportID,
			"baselines", len(resp.Baselines), "candidates", len(resp.Candidates)}
	}

	s.causalEP = newEndpoint[CausalResponse](s, "causal", s.m.causal, s.m.causalMemoHits, s.m.causalDuration)
	s.causalEP.onHit = func(resp *CausalResponse) *CausalResponse {
		out := *resp
		out.Cached = true
		return &out
	}
	s.causalEP.finish = func(resp *CausalResponse) (*CausalResponse, []any) {
		s.m.causalExperiments.Add(float64(resp.Experiments))
		out := *resp
		return &out, []any{"report", resp.ReportID, "granularity", resp.Granularity,
			"experiments", resp.Experiments, "capped", resp.Capped}
	}
	return s, nil
}

// Metrics returns the server's registry (the one behind GET /metrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the routed HTTP handler. Every /v1 route is wrapped in
// the HTTP metrics middleware plus the admission guard (drain check +
// per-request timeout); /metrics and /healthz are left bare so scraping
// does not perturb the request-path series and keeps working while the
// server drains. The whole mux sits behind panic recovery, so a handler
// bug costs one 500 (and a vprof_panics_total tick), not the process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, s.m.http.Wrap(label, s.guard(h)))
	}
	route("POST /v1/profiles", "/v1/profiles", s.handleIngest)
	route("POST /v1/profiles:batch", "/v1/profiles:batch", s.handleBatch)
	route("GET /v1/workloads", "/v1/workloads", s.handleWorkloads)
	// r.Context() ends when the client disconnects, so an abandoned
	// request aborts its analysis fan-out and releases its pool slot.
	route("POST /v1/diagnose", "/v1/diagnose", handleJSON(func(ctx context.Context, req DiagnoseRequest) (any, int, error) {
		return s.DiagnoseContext(ctx, req)
	}))
	route("POST /v1/check", "/v1/check", handleJSON(func(ctx context.Context, req CheckRequest) (any, int, error) {
		return s.Check(req)
	}))
	route("POST /v1/causal", "/v1/causal", handleJSON(func(ctx context.Context, req CausalRequest) (any, int, error) {
		return s.CausalContext(ctx, req)
	}))
	route("GET /v1/report/{id}", "/v1/report", s.handleReport)
	route("GET /v1/stats", "/v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.recoverPanics(mux)
}

// admittedKey marks a context that already passed the admission guard, so
// DiagnoseContext does not double-register the request for draining.
type admittedKey struct{}

// guard is the admission middleware: reject new work while draining, track
// the request for Shutdown, and apply the per-request deadline.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		done, err := s.beginRequest()
		if err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeErr(w, http.StatusServiceUnavailable, errCode(err), "%v", err)
			return
		}
		defer done()
		ctx := context.WithValue(r.Context(), admittedKey{}, true)
		if s.reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
			defer cancel()
		}
		h(w, r.WithContext(ctx))
	}
}

// recoverPanics turns a handler panic into a 500 + metric instead of a
// dead process.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler { // deliberate connection abort
				panic(p)
			}
			s.m.panics.Inc()
			s.log.Error("panic recovered", "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote headers this is a
			// no-op on a broken response, which is all a 500 would be too.
			writeErr(w, http.StatusInternalServerError, CodeInternal, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// beginRequest admits one request for the drain accounting; it fails once
// Shutdown has started. The returned func marks the request finished.
func (s *Server) beginRequest() (func(), error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return nil, withCode(CodeUnavailable, errors.New("service: shutting down"))
	}
	s.inFlight.Add(1)
	return func() { s.inFlight.Done() }, nil
}

// Shutdown drains the server: new requests are rejected with 503 +
// Retry-After, in-flight requests and diagnoses run to completion (bounded
// by ctx), and the store is flushed. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
	if err := s.store.Flush(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// acquireCtx hands out a worker slot. A free slot is taken immediately;
// otherwise the request queues — but only up to MaxQueue deep. Past that
// the request is shed with CodeOverloaded (HTTP 429 + Retry-After) so an
// overloaded server stays responsive instead of accumulating an unbounded
// backlog. The returned func releases the slot.
func (s *Server) acquireCtx(ctx context.Context) (func(), error) {
	grab := func() func() {
		s.m.poolInUse.Inc()
		return func() {
			s.m.poolInUse.Dec()
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return grab(), nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.maxQueue) {
		s.queued.Add(-1)
		s.m.shed.Inc()
		return nil, withCode(CodeOverloaded,
			fmt.Errorf("service: admission queue full (%d waiting)", n-1))
	}
	defer s.queued.Add(-1)
	s.m.poolWaiting.Inc()
	defer s.m.poolWaiting.Dec()
	select {
	case s.sem <- struct{}{}:
		return grab(), nil
	case <-ctx.Done():
		return nil, cancelErr(ctx.Err())
	}
}

// cancelErr types a context error: a blown deadline is a timeout (504), a
// client disconnect a cancellation (499).
func cancelErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return withCode(CodeTimeout, err)
	}
	return withCode(CodeCanceled, err)
}

// statusFor maps a coded error to its HTTP status.
func statusFor(err error) int {
	switch errCode(err) {
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeCanceled:
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errBody is the JSON error envelope: a human-readable message plus a
// machine-readable code.
type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// PushResult is the ingestion response.
type PushResult struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Label    string `json:"label"`
	Run      string `json:"run"`
	Dup      bool   `json:"dup"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	workload := q.Get("workload")
	run := q.Get("run")
	label, err := store.ParseLabel(q.Get("label"))
	if err != nil {
		s.rejected.Add(1)
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if workload == "" || run == "" {
		s.rejected.Add(1)
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "workload and run query parameters are required")
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, MaxUploadBytes+1))
	if err != nil {
		s.rejected.Add(1)
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "read body: %v", err)
		return
	}
	if len(blob) > MaxUploadBytes {
		s.rejected.Add(1)
		writeErr(w, http.StatusRequestEntityTooLarge, CodeInvalidBundle, "profile exceeds %d bytes", MaxUploadBytes)
		return
	}
	release, err := s.acquireCtx(r.Context())
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeErr(w, status, errCode(err), "%v", err)
		return
	}
	entry, dup, err := s.store.PutBlob(workload, label, run, blob)
	release()
	if err != nil {
		if errors.Is(err, store.ErrUnavailable) {
			// Cluster write quorum not reached: a retryable infrastructure
			// fault, not a client error — don't count it as a rejection.
			s.log.Warn("ingest unavailable", "workload", workload, "run", run, "err", err)
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, "%v", err)
			return
		}
		s.rejected.Add(1)
		code := CodeBadRequest
		if errors.Is(err, store.ErrInvalidProfile) {
			code = CodeInvalidBundle
		}
		s.log.Warn("ingest rejected", "workload", workload, "run", run, "err", err)
		writeErr(w, http.StatusBadRequest, code, "%v", err)
		return
	}
	if dup {
		s.deduped.Add(1)
	} else {
		s.ingested.Add(1)
	}
	s.log.Debug("ingest", "workload", workload, "label", label, "run", run, "bytes", len(blob), "dup", dup)
	writeJSON(w, http.StatusOK, PushResult{
		ID: entry.ID, Workload: entry.Workload, Label: string(entry.Label), Run: entry.Run, Dup: dup,
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Workloads())
}

// DiagnoseRequest asks for a differential diagnosis of a workload's
// candidate runs against its baseline corpus.
type DiagnoseRequest struct {
	Workload string `json:"workload"`
	// Candidates optionally names candidate run ids; empty means every
	// stored candidate run.
	Candidates []string `json:"candidates,omitempty"`
	// Top bounds the rendered report (default: server's Top).
	Top int `json:"top,omitempty"`
	// Sketches opts this diagnosis into the incremental sketch path: the
	// analysis reads the store's persisted per-variable sketches instead of
	// re-decoding raw profile blobs. Implied when the server was configured
	// with Config.Sketches.
	Sketches bool `json:"sketches,omitempty"`
}

// RankEntry is one row of the calibrated ranking.
type RankEntry struct {
	Rank       int     `json:"rank"`
	Func       string  `json:"func"`
	RawCost    float64 `json:"raw_cost"`
	Discount   float64 `json:"discount"`
	Source     string  `json:"source"`
	Calibrated float64 `json:"calibrated"`
	Pattern    string  `json:"pattern"`
}

// DiagnoseResponse is both the diagnosis reply and the stored report.
type DiagnoseResponse struct {
	ReportID   string      `json:"report_id"`
	Workload   string      `json:"workload"`
	Baselines  []string    `json:"baselines"`  // entry ids, corpus order
	Candidates []string    `json:"candidates"` // entry ids, run order
	Ranks      []RankEntry `json:"ranks"`
	Render     string      `json:"render"`
	// Cached is true when this reply was served from the memo cache.
	Cached bool `json:"cached"`
	// Sketches is true when this diagnosis ran on the incremental sketch
	// path instead of decoded profiles.
	Sketches bool `json:"sketches,omitempty"`
	// MemoHits snapshots the server-wide diagnosis cache-hit counter.
	MemoHits int64 `json:"memo_hits"`
}

// Diagnose runs (or recalls) one differential diagnosis. Exported so the
// CLI and harness can drive it without HTTP plumbing in tests.
func (s *Server) Diagnose(req DiagnoseRequest) (*DiagnoseResponse, int, error) {
	return s.DiagnoseContext(context.Background(), req)
}

// DiagnoseContext is Diagnose with cooperative cancellation: the context
// gates the worker-pool slot wait, the in-flight dedup wait, and the
// analysis fan-out itself. A canceled diagnosis reports
// StatusClientClosedRequest and is not memoized.
func (s *Server) DiagnoseContext(ctx context.Context, req DiagnoseRequest) (*DiagnoseResponse, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Direct callers (CLI, harness) register with the drain accounting
	// here; HTTP requests already did in the admission guard.
	if ctx.Value(admittedKey{}) == nil {
		done, err := s.beginRequest()
		if err != nil {
			return nil, statusFor(err), err
		}
		defer done()
	}
	if req.Workload == "" {
		return nil, http.StatusBadRequest, withCode(CodeBadRequest, fmt.Errorf("workload is required"))
	}
	top := req.Top
	if top <= 0 {
		top = s.top
	}
	baselines := s.store.Baselines(req.Workload)
	if len(baselines) == 0 {
		s.m.diagnoses.With("error").Inc()
		return nil, http.StatusConflict, withCode(CodeBaselineMissing, fmt.Errorf("workload %q has no baseline runs", req.Workload))
	}
	var candidates []*store.Entry
	if len(req.Candidates) == 0 {
		candidates = s.store.Candidates(req.Workload)
	} else {
		for _, run := range req.Candidates {
			e, ok := s.store.Lookup(req.Workload, store.LabelCandidate, run)
			if !ok {
				s.m.diagnoses.With("error").Inc()
				return nil, http.StatusNotFound, withCode(CodeNotFound, fmt.Errorf("workload %q has no candidate run %q", req.Workload, run))
			}
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		s.m.diagnoses.With("error").Inc()
		return nil, http.StatusConflict, withCode(CodeNoCandidates, fmt.Errorf("workload %q has no candidate runs", req.Workload))
	}

	// Memoization and in-flight dedup live in the shared endpoint; the key
	// carries the sketch flag because sketch-mode renders localize no
	// blocks, so the two modes must not share results.
	sketches := req.Sketches || s.sketches
	key := memoKey(req.Workload, top, baselines, candidates, sketches)
	return s.diagEP.run(ctx, req.Workload, key, func(ctx context.Context) (*DiagnoseResponse, int, error) {
		if sketches {
			return s.computeSketches(ctx, req.Workload, top, key, baselines, candidates)
		}
		return s.compute(ctx, req.Workload, top, key, baselines, candidates)
	})
}

// outcomeFor buckets a diagnose failure for the outcome counter.
func outcomeFor(err error) string {
	switch errCode(err) {
	case CodeCanceled:
		return "canceled"
	case CodeTimeout:
		return "timeout"
	case CodeOverloaded:
		return "shed"
	default:
		return "error"
	}
}

func (s *Server) cachedCopy(resp *DiagnoseResponse) *DiagnoseResponse {
	out := *resp
	out.Cached = true
	out.MemoHits = s.memoHits.Load()
	return &out
}

// memoKey hashes the exact diagnosis inputs: every blob id on both sides,
// in order, plus the render bound and the analysis mode. Any new push that
// changes either set changes the key.
func memoKey(workload string, top int, baselines, candidates []*store.Entry, sketches bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", workload, top)
	if sketches {
		fmt.Fprintf(h, "sk\x00")
	}
	for _, e := range baselines {
		fmt.Fprintf(h, "b:%s\x00", e.ID)
	}
	for _, e := range candidates {
		fmt.Fprintf(h, "c:%s\x00", e.ID)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) compute(ctx context.Context, workload string, top int, key string, baselines, candidates []*store.Entry) (*DiagnoseResponse, int, error) {
	release, err := s.acquireCtx(ctx)
	if err != nil {
		return nil, statusFor(err), err
	}
	defer release()

	dbg, sch, err := s.resolver.Resolve(workload)
	if err != nil {
		return nil, http.StatusNotFound, withCode(CodeNotFound, fmt.Errorf("resolve workload %q: %w", workload, err))
	}
	if err := ctx.Err(); err != nil {
		cerr := cancelErr(err)
		return nil, statusFor(cerr), cerr
	}
	load := func(entries []*store.Entry) ([]*sampler.Profile, []string, error) {
		var ps []*sampler.Profile
		var ids []string
		for _, e := range entries {
			p, err := s.store.Get(e.ID)
			if err != nil {
				return nil, nil, err
			}
			ps = append(ps, p)
			ids = append(ids, e.ID)
		}
		return ps, ids, nil
	}
	normal, bIDs, err := load(baselines)
	if err != nil {
		return nil, http.StatusInternalServerError, withCode(CodeInternal, err)
	}
	buggy, cIDs, err := load(candidates)
	if err != nil {
		return nil, http.StatusInternalServerError, withCode(CodeInternal, err)
	}
	report, err := analysis.AnalyzeContext(ctx, analysis.Input{
		Debug:  dbg,
		Schema: sch,
		Normal: normal,
		Buggy:  buggy,
	}, s.params)
	if err != nil {
		if ctx.Err() != nil {
			cerr := cancelErr(ctx.Err())
			return nil, statusFor(cerr), cerr
		}
		return nil, http.StatusUnprocessableEntity, withCode(CodeAnalysisFailed, fmt.Errorf("analyze %q: %w", workload, err))
	}
	return diagnoseResponse(report, key, workload, top, bIDs, cIDs), http.StatusOK, nil
}

// diagnoseResponse shapes an analysis report into the API response; shared
// by the decoded-profile and sketch compute paths.
func diagnoseResponse(report *analysis.Report, key, workload string, top int, bIDs, cIDs []string) *DiagnoseResponse {
	resp := &DiagnoseResponse{
		ReportID:   "r-" + key[:16],
		Workload:   workload,
		Baselines:  bIDs,
		Candidates: cIDs,
		Render:     report.Render(top),
	}
	for i, fr := range report.Funcs {
		if i >= top {
			break
		}
		resp.Ranks = append(resp.Ranks, RankEntry{
			Rank:       fr.Rank,
			Func:       fr.Name,
			RawCost:    fr.RawCost,
			Discount:   fr.Discount,
			Source:     fr.DiscountSource,
			Calibrated: fr.Calibrated,
			Pattern:    fr.Pattern.String(),
		})
	}
	return resp
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	resp, ok := s.reports[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "no report %q", id)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Health is the /healthz body: overall status plus per-check detail.
// Status is "ok" when the store is writable, the resolver knows at least
// one workload, and at least one baseline corpus is loaded; "degraded" when
// only baselines are missing (a fresh server that cannot diagnose yet, but
// can ingest); anything else is "unavailable" with HTTP 503.
type Health struct {
	Status            string            `json:"status"`
	Checks            map[string]string `json:"checks"`
	Workloads         int               `json:"workloads"`
	BaselineWorkloads int               `json:"baseline_workloads"`
}

// HealthSnapshot evaluates the health checks.
func (s *Server) HealthSnapshot() Health {
	h := Health{Status: "ok", Checks: map[string]string{}}
	if hd, ok := s.store.(healthDetailer); ok {
		// Cluster backend: it classifies itself (replica loss and
		// dirty-recovered nodes degrade; a shard below write quorum is
		// unavailable) and names the failing checks.
		status, checks := hd.HealthDetail()
		for k, v := range checks {
			h.Checks[k] = v
		}
		switch status {
		case "unavailable":
			h.Status = "unavailable"
		case "degraded":
			h.Status = "degraded"
		}
	} else {
		if err := s.store.Health(); err != nil {
			h.Checks["store_writable"] = err.Error()
			h.Status = "unavailable"
		} else {
			h.Checks["store_writable"] = "ok"
		}
		// A store that came up from a dirty shutdown serves reads and
		// writes, but signals the repair until a clean restart.
		if rr, ok := s.store.(recoveryReporter); ok {
			if rep := rr.Recovery(); rep != nil && !rep.Clean() {
				h.Checks["store_recovery"] = fmt.Sprintf("recovered from dirty shutdown (%d issue(s) repaired)", len(rep.Issues))
				if h.Status == "ok" {
					h.Status = "degraded"
				}
			}
		}
	}
	if known := s.resolver.Known(); len(known) == 0 {
		h.Checks["resolver"] = "no workloads resolvable"
		h.Status = "unavailable"
	} else {
		h.Checks["resolver"] = "ok"
	}
	for _, wl := range s.store.Workloads() {
		h.Workloads++
		if wl.Baselines > 0 {
			h.BaselineWorkloads++
		}
	}
	if h.BaselineWorkloads == 0 {
		h.Checks["baselines"] = "no baseline corpus loaded"
		if h.Status == "ok" {
			h.Status = "degraded"
		}
	} else {
		h.Checks["baselines"] = "ok"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.HealthSnapshot()
	status := http.StatusOK
	if h.Status == "unavailable" {
		status = http.StatusServiceUnavailable
		s.log.Error("health check failed", "checks", fmt.Sprint(h.Checks))
	}
	writeJSON(w, status, h)
}

// Stats is the observability snapshot, including the diagnosis cache-hit
// counter the end-to-end harness asserts on.
type Stats struct {
	Ingested          int64             `json:"ingested"`
	Deduped           int64             `json:"deduped"`
	Rejected          int64             `json:"rejected"`
	Diagnoses         int64             `json:"diagnoses"`
	DiagnoseCacheHits int64             `json:"diagnose_cache_hits"`
	DecodeCache       store.CacheStats  `json:"decode_cache"`
	SketchCache       store.SketchStats `json:"sketch_cache"`
	Workers           int               `json:"workers"`
	Workloads         int               `json:"workloads"`
}

// StatsSnapshot returns current counters.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		Ingested:          s.ingested.Load(),
		Deduped:           s.deduped.Load(),
		Rejected:          s.rejected.Load(),
		Diagnoses:         s.diagnoses.Load(),
		DiagnoseCacheHits: s.memoHits.Load(),
		DecodeCache:       s.store.CacheStats(),
		SketchCache:       s.store.SketchStats(),
		Workers:           cap(s.sem),
		Workloads:         len(s.store.Workloads()),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// RootRank scans a response's rank rows for fn (the ground-truth root
// cause); 0 means not ranked within the returned rows.
func (r *DiagnoseResponse) RootRank(fn string) int {
	for _, e := range r.Ranks {
		if e.Func == fn {
			return e.Rank
		}
	}
	return 0
}

// Summary renders a one-line description for CLI output.
func (r *DiagnoseResponse) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "report %s: workload %s, %d baselines, %d candidates",
		r.ReportID, r.Workload, len(r.Baselines), len(r.Candidates))
	if r.Cached {
		b.WriteString(" (cached)")
	}
	return b.String()
}
