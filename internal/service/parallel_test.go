package service_test

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

// newServerWithAnalysisWorkers is newTestServer with an explicit per-diagnosis
// analysis pool size, for the workers=1 vs workers=8 determinism comparison.
func newServerWithAnalysisWorkers(t *testing.T, analysisWorkers int) *service.Client {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{
		Store:           st,
		Resolver:        service.NewBugsResolver(),
		Workers:         3,
		AnalysisWorkers: analysisWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return service.NewClient(hs.URL)
}

// b1Profiles generates a fixed corpus of normal and candidate profiles once,
// so both servers under comparison see byte-identical inputs.
func b1Profiles(t *testing.T, normals, candidates int) ([]*sampler.Profile, []*sampler.Profile) {
	t.Helper()
	w := bugs.ByID("b1")
	if w == nil {
		t.Fatal("no b1 workload")
	}
	b := w.MustBuild()
	ns := make([]*sampler.Profile, normals)
	cs := make([]*sampler.Profile, candidates)
	for i := range ns {
		ns[i], _ = b.ProfileNormal(i)
	}
	for i := range cs {
		cs[i], _ = b.ProfileBuggy(i)
	}
	return ns, cs
}

func pushAll(t *testing.T, c *service.Client, ns, cs []*sampler.Profile) {
	t.Helper()
	for i, p := range ns {
		if _, err := c.Push("b1", store.LabelNormal, fmt.Sprint(i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range cs {
		if _, err := c.Push("b1", store.LabelCandidate, fmt.Sprint(i), p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServiceDiagnoseDeterministicAcrossWorkers feeds the same profile corpus
// to a sequential-analysis server and an 8-way-parallel one and requires the
// /v1/diagnose responses — rendered report and structured ranking — to be
// identical.
func TestServiceDiagnoseDeterministicAcrossWorkers(t *testing.T) {
	ns, cs := b1Profiles(t, 3, 2)
	seqClient := newServerWithAnalysisWorkers(t, 1)
	parClient := newServerWithAnalysisWorkers(t, 8)
	pushAll(t, seqClient, ns, cs)
	pushAll(t, parClient, ns, cs)

	req := service.DiagnoseRequest{Workload: "b1"}
	seq, err := seqClient.Diagnose(req)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parClient.Diagnose(req)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render != par.Render {
		t.Errorf("rendered diagnosis differs between analysis workers 1 and 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq.Render, par.Render)
	}
	if !reflect.DeepEqual(seq.Ranks, par.Ranks) {
		t.Errorf("rank entries differ:\nworkers=1: %+v\nworkers=8: %+v", seq.Ranks, par.Ranks)
	}
	if !reflect.DeepEqual(seq.Baselines, par.Baselines) || !reflect.DeepEqual(seq.Candidates, par.Candidates) {
		t.Errorf("entry id sets differ: %+v/%+v vs %+v/%+v", seq.Baselines, seq.Candidates, par.Baselines, par.Candidates)
	}
}

// TestServiceConcurrentDiagnose hammers one store-backed server with parallel
// Diagnose requests (each running the parallel discounter underneath) and
// checks every reply is identical. Run under -race this exercises the
// bounded diagnosis semaphore, the memo cache, and the shared-schema Lookup
// path concurrently.
func TestServiceConcurrentDiagnose(t *testing.T) {
	ns, cs := b1Profiles(t, 3, 2)
	c := newServerWithAnalysisWorkers(t, 4)
	pushAll(t, c, ns, cs)

	// Fire all requests concurrently — no warm-up, so the first arrivals for
	// each memo key race on the actual compute path (inflight dedup, bounded
	// semaphore, parallel discounter). Ranks are truncated to Top, so group
	// responses by Top and require identity within each group.
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	got := make([]*service.DiagnoseResponse, goroutines)
	tops := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		// Alternate Top so the requests hit two distinct memo keys.
		tops[g] = 0
		if g%2 == 1 {
			tops[g] = 7
		}
		go func(g int) {
			defer wg.Done()
			resp, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1", Top: tops[g]})
			if err != nil {
				errs <- err
				return
			}
			got[g] = resp
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	first := map[int]*service.DiagnoseResponse{}
	for g, resp := range got {
		ref, ok := first[tops[g]]
		if !ok {
			first[tops[g]] = resp
			continue
		}
		if resp.Render != ref.Render || !reflect.DeepEqual(resp.Ranks, ref.Ranks) {
			t.Errorf("goroutine %d (top=%d): diagnosis diverged from its group", g, tops[g])
		}
	}
}
