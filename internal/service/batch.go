package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"vprof/internal/store"
)

// BatchItem is one profile in a POST /v1/profiles:batch request. Blob is
// base64 in the JSON wire form (encoding/json's []byte convention).
type BatchItem struct {
	Workload string `json:"workload"`
	Label    string `json:"label"`
	Run      string `json:"run"`
	Blob     []byte `json:"blob"`
}

// BatchRequest is the POST /v1/profiles:batch body.
type BatchRequest struct {
	Profiles []BatchItem `json:"profiles"`
}

// BatchItemResult reports one item's outcome. Items are independent: a
// rejected bundle fails its slot, not the batch.
type BatchItemResult struct {
	PushResult
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchResponse mirrors the request order item-for-item.
type BatchResponse struct {
	Results []BatchItemResult `json:"results"`
}

// handleBatch ingests many profiles in one round trip, amortizing
// connection and admission cost for fleets of agents pushing every few
// seconds. One worker slot covers the whole batch (items are stored
// sequentially — ingest cost is dominated by fsync, which batches well).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "decode batch: %v", err)
		return
	}
	if len(req.Profiles) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	release, err := s.acquireCtx(r.Context())
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeErr(w, status, errCode(err), "%v", err)
		return
	}
	defer release()

	resp := BatchResponse{Results: make([]BatchItemResult, len(req.Profiles))}
	unavailable := 0
	for i, item := range req.Profiles {
		res := &resp.Results[i]
		label, err := store.ParseLabel(item.Label)
		if err != nil {
			s.rejected.Add(1)
			res.Error, res.Code = err.Error(), CodeBadRequest
			continue
		}
		if item.Workload == "" || item.Run == "" {
			s.rejected.Add(1)
			res.Error, res.Code = "workload and run are required", CodeBadRequest
			continue
		}
		if len(item.Blob) == 0 {
			s.rejected.Add(1)
			res.Error, res.Code = "empty blob", CodeInvalidBundle
			continue
		}
		entry, dup, err := s.store.PutBlob(item.Workload, label, item.Run, item.Blob)
		if err != nil {
			switch {
			case errors.Is(err, store.ErrUnavailable):
				unavailable++
				res.Error, res.Code = err.Error(), CodeUnavailable
			case errors.Is(err, store.ErrInvalidProfile):
				s.rejected.Add(1)
				res.Error, res.Code = err.Error(), CodeInvalidBundle
			default:
				s.rejected.Add(1)
				res.Error, res.Code = err.Error(), CodeBadRequest
			}
			continue
		}
		if dup {
			s.deduped.Add(1)
		} else {
			s.ingested.Add(1)
		}
		res.PushResult = PushResult{
			ID: entry.ID, Workload: entry.Workload, Label: string(entry.Label), Run: entry.Run, Dup: dup,
		}
	}
	// If every item failed on backend unavailability, surface it as a
	// retryable 503 (idempotent ingest makes the whole batch safe to
	// replay); partial success stays 200 with per-item codes.
	if unavailable == len(req.Profiles) {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.log.Debug("batch ingest", "items", len(req.Profiles))
	writeJSON(w, http.StatusOK, resp)
}
