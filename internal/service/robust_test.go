package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/debuginfo"
	"vprof/internal/faultfs"
	"vprof/internal/obs"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/service"
	"vprof/internal/store"
)

// newRobustServer builds a service with full access to the *service.Server
// (the obs_test helper hides it), so robustness tests can drive Shutdown.
func newRobustServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	if cfg.Resolver == nil {
		cfg.Resolver = service.NewBugsResolver()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs, st
}

// seedB1 pushes one baseline and one candidate of the b1 registry bug.
func seedB1(t *testing.T, c *service.Client) {
	t.Helper()
	b := bugs.ByID("b1").MustBuild()
	np, _ := b.ProfileNormal(0)
	bp, _ := b.ProfileBuggy(0)
	if _, err := c.Push("b1", store.LabelNormal, "0", np); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push("b1", store.LabelCandidate, "0", bp); err != nil {
		t.Fatal(err)
	}
}

// rawDiagnose posts a diagnose request without any client-side retrying,
// returning the raw response for header/status assertions.
func rawDiagnose(t *testing.T, base string, req service.DiagnoseRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestOverloadShedsAndClientRetries saturates a Workers=1, MaxQueue=1
// server: the next request must be shed with 429 + Retry-After, and a
// retrying client must ride the backoff through the congestion and
// eventually succeed once the gate opens.
func TestOverloadShedsAndClientRetries(t *testing.T) {
	gate := newGateResolver()
	srv, hs, _ := newRobustServer(t, service.Config{
		Resolver: gate,
		Workers:  1,
		MaxQueue: 1,
	})
	_ = srv
	plain := service.NewClient(hs.URL)
	seedB1(t, plain)

	// Distinct Top values make distinct memo keys, so the requests cannot
	// coalesce on the in-flight dedup path.
	first := make(chan error, 1)
	go func() {
		_, err := plain.Diagnose(service.DiagnoseRequest{Workload: "b1", Top: 3})
		first <- err
	}()
	<-gate.entered // holds the only worker slot, parked in Resolve

	queued := make(chan error, 1)
	go func() {
		_, err := plain.Diagnose(service.DiagnoseRequest{Workload: "b1", Top: 4})
		queued <- err
	}()
	// Wait until the second diagnose occupies the queue slot.
	waitSeries(t, hs.URL, "vprof_pool_queue_depth", 1)

	// Queue full: a third distinct diagnose must be shed, not queued.
	resp := rawDiagnose(t, hs.URL, service.DiagnoseRequest{Workload: "b1", Top: 5})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated diagnose = HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response has no Retry-After header")
	}
	resp.Body.Close()
	if got := seriesValue(t, scrape(t, hs.URL), "vprof_shed_total"); got < 1 {
		t.Fatalf("vprof_shed_total = %v, want >= 1", got)
	}

	// A retrying client keeps knocking; open the gate after its first shed
	// and it must get through.
	clientReg := obs.NewRegistry()
	retrying := service.NewClient(hs.URL).Instrument(clientReg)
	retrying.Retry = service.RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	retried := make(chan error, 1)
	go func() {
		_, err := retrying.Diagnose(service.DiagnoseRequest{Workload: "b1", Top: 6})
		retried <- err
	}()
	waitRegistrySeries(t, clientReg, "vprof_client_retries_total", 1)
	close(gate.release)

	for name, ch := range map[string]chan error{"first": first, "queued": queued, "retried": retried} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s diagnose failed: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s diagnose never finished", name)
		}
	}
	var buf bytes.Buffer
	clientReg.WritePrometheus(&buf)
	if got := seriesValue(t, buf.String(), "vprof_client_throttled_total"); got < 1 {
		t.Fatalf("vprof_client_throttled_total = %v, want >= 1\n%s", got, buf.String())
	}
}

// waitSeries polls /metrics until series reaches at least want (bounded).
func waitSeries(t *testing.T, base, series string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if seriesValue(t, scrape(t, base), series) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %v:\n%s", series, want, scrape(t, base))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitRegistrySeries is waitSeries against an unserved registry.
func waitRegistrySeries(t *testing.T, reg *obs.Registry, series string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		if seriesValue(t, buf.String(), series) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %v:\n%s", series, want, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownDrainsInFlight: Shutdown must reject new work with 503 +
// Retry-After, wait for the in-flight diagnosis to finish, and only then
// return — the SIGTERM discipline `vprof serve` wires up.
func TestShutdownDrainsInFlight(t *testing.T) {
	gate := newGateResolver()
	srv, hs, _ := newRobustServer(t, service.Config{Resolver: gate, Workers: 2})
	c := service.NewClient(hs.URL)
	seedB1(t, c)

	inflight := make(chan error, 1)
	go func() {
		resp, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
		if err == nil && resp.Render == "" {
			err = errors.New("empty render")
		}
		inflight <- err
	}()
	<-gate.entered

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- srv.Shutdown(ctx)
	}()

	// New work is refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := rawDiagnose(t, hs.URL, service.DiagnoseRequest{Workload: "b1", Top: 4})
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("draining 503 has no Retry-After header")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server kept accepting work while draining (HTTP %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shutdown must still be waiting on the parked diagnosis.
	select {
	case err := <-shutdown:
		t.Fatalf("Shutdown returned before the in-flight diagnosis finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight diagnosis was not drained cleanly: %v", err)
	}
	select {
	case err := <-shutdown:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the drain completed")
	}
}

// panicOnceResolver panics on its first Resolve and then behaves.
type panicOnceResolver struct {
	inner service.Resolver
	fired atomic.Bool
}

func (p *panicOnceResolver) Resolve(workload string) (*debuginfo.Info, *schema.Schema, error) {
	if p.fired.CompareAndSwap(false, true) {
		panic("resolver exploded")
	}
	return p.inner.Resolve(workload)
}

func (p *panicOnceResolver) Known() []string { return p.inner.Known() }

// TestPanicRecoveryMiddleware: a handler panic costs one 500 and a
// vprof_panics_total tick — not the process — and the poisoned in-flight
// diagnosis entry is cleaned up so the retry computes normally.
func TestPanicRecoveryMiddleware(t *testing.T) {
	_, hs, _ := newRobustServer(t, service.Config{
		Resolver: &panicOnceResolver{inner: service.NewBugsResolver()},
	})
	c := service.NewClient(hs.URL)
	seedB1(t, c)

	resp := rawDiagnose(t, hs.URL, service.DiagnoseRequest{Workload: "b1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking diagnose = HTTP %d, want 500", resp.StatusCode)
	}
	if got := seriesValue(t, scrape(t, hs.URL), "vprof_panics_total"); got != 1 {
		t.Fatalf("vprof_panics_total = %v, want 1", got)
	}

	// Identical request (same memo key): must compute, not hang on the dead
	// attempt's in-flight entry.
	out, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatalf("diagnose after panic: %v", err)
	}
	if out.Cached || out.Render == "" {
		t.Fatalf("diagnose after panic: cached=%v render=%d bytes", out.Cached, len(out.Render))
	}
}

// TestRequestTimeout: with RequestTimeout set, a request stuck waiting for
// a worker slot times out as 504/timeout instead of queueing forever.
func TestRequestTimeout(t *testing.T) {
	gate := newGateResolver()
	_, hs, _ := newRobustServer(t, service.Config{
		Resolver:       gate,
		Workers:        1,
		RequestTimeout: 100 * time.Millisecond,
	})
	c := service.NewClient(hs.URL)
	seedB1(t, c)

	blocked := make(chan struct{})
	go func() {
		resp := rawDiagnose(t, hs.URL, service.DiagnoseRequest{Workload: "b1", Top: 3})
		resp.Body.Close()
		close(blocked)
	}()
	<-gate.entered

	// The slot is held; this one waits in the queue until its deadline.
	resp := rawDiagnose(t, hs.URL, service.DiagnoseRequest{Workload: "b1", Top: 4})
	var body struct {
		Code string `json:"code"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || body.Code != service.CodeTimeout {
		t.Fatalf("queued-past-deadline diagnose = HTTP %d code %q, want 504 %q",
			resp.StatusCode, body.Code, service.CodeTimeout)
	}
	close(gate.release)
	<-blocked
}

// TestClientExpiredContextDoesNotDial: the already-expired-context
// satellite — Push and Diagnose must return ctx.Err() without sending
// anything.
func TestClientExpiredContextDoesNotDial(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(hs.Close)
	c := service.NewClient(hs.URL)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PushBlobContext(ctx, "w", store.LabelNormal, "0", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-ctx push = %v, want context.Canceled", err)
	}
	if _, err := c.DiagnoseContext(ctx, service.DiagnoseRequest{Workload: "w"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-ctx diagnose = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := c.PushContext(dctx, "w", store.LabelNormal, "0", testServiceProfile(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past-deadline push = %v, want context.DeadlineExceeded", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("expired-context requests reached the server %d time(s)", got)
	}
}

func testServiceProfile(seed int64) *sampler.Profile {
	p := &sampler.Profile{
		Pid: 1, File: "prog.vp", Interval: 97, TotalTicks: 1000 + seed, NumAlarms: 10,
		Hist:   make([]int64, 8),
		Layout: []sampler.LayoutEntry{{Func: "f", Name: "n"}},
	}
	p.Samples = append(p.Samples, sampler.Sample{Layout: 0, PC: 1, Value: seed, Tick: 97, Link: -1})
	return p
}

// TestClientRetriesHonorRetryAfter: a flaky endpoint that sheds twice with
// Retry-After and then succeeds must cost exactly two retries.
func TestClientRetriesHonorRetryAfter(t *testing.T) {
	var calls atomic.Int64
	started := time.Now()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":"busy","code":%q}`, service.CodeOverloaded)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode([]store.WorkloadInfo{{Workload: "w"}})
	}))
	t.Cleanup(hs.Close)

	reg := obs.NewRegistry()
	c := service.NewClient(hs.URL).Instrument(reg)
	c.Retry = service.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	wls, err := c.Workloads()
	if err != nil || len(wls) != 1 {
		t.Fatalf("retried workloads = %v, %v", wls, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if elapsed := time.Since(started); elapsed > 5*time.Second {
		t.Fatalf("retries took %v", elapsed)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	exp := buf.String()
	if got := seriesValue(t, exp, "vprof_client_retries_total"); got != 2 {
		t.Fatalf("vprof_client_retries_total = %v, want 2\n%s", got, exp)
	}
	if got := seriesValue(t, exp, "vprof_client_throttled_total"); got != 2 {
		t.Fatalf("vprof_client_throttled_total = %v, want 2\n%s", got, exp)
	}

	// Exhausting the budget maps to ErrOverloaded.
	calls.Store(-1000)
	c.Retry = service.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if _, err := c.Workloads(); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	var buf2 bytes.Buffer
	reg.WritePrometheus(&buf2)
	if got := seriesValue(t, buf2.String(), "vprof_client_giveups_total"); got != 1 {
		t.Fatalf("vprof_client_giveups_total = %v, want 1", got)
	}
}

// TestCrashRecoveryDiagnosisByteForByte is the tentpole's end-to-end
// invariant: ingest crashes mid-stream, the store recovers, the remaining
// profiles are re-pushed (idempotent), and the service's diagnosis is
// byte-for-byte identical to the offline pipeline over the same profiles.
func TestCrashRecoveryDiagnosisByteForByte(t *testing.T) {
	b := bugs.ByID("b1").MustBuild()
	type push struct {
		label store.Label
		run   string
		p     *sampler.Profile
	}
	var pushes []push
	var normals, buggies []*sampler.Profile
	for i := 0; i < 3; i++ {
		p, _ := b.ProfileNormal(i)
		normals = append(normals, p)
		pushes = append(pushes, push{store.LabelNormal, fmt.Sprint(i), p})
	}
	bp, _ := b.ProfileBuggy(0)
	buggies = append(buggies, bp)
	pushes = append(pushes, push{store.LabelCandidate, "0", bp})

	// The offline pipeline's render over the exact same profiles.
	resolver := service.NewBugsResolver()
	dbg, sch, err := resolver.Resolve("b1")
	if err != nil {
		t.Fatal(err)
	}
	params := analysis.DefaultParams()
	report, err := analysis.AnalyzeContext(context.Background(), analysis.Input{
		Debug: dbg, Schema: sch, Normal: normals, Buggy: buggies,
	}, params)
	if err != nil {
		t.Fatal(err)
	}
	offline := report.Render(10)

	// Size the crash matrix sample from a dry run.
	dry := faultfs.NewInjector(nil)
	s, err := store.Open(t.TempDir(), store.Options{FS: dry})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range pushes {
		if _, _, err := s.Put("b1", ps.label, ps.run, ps.p); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	total := dry.Mutations()

	for _, n := range []int{2, total / 2, total - 1} {
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil)
			inj.CrashAt(n)
			inj.SetTorn(n%2 == 1)
			if s, err := store.Open(dir, store.Options{FS: inj}); err == nil {
				for _, ps := range pushes {
					if _, _, err := s.Put("b1", ps.label, ps.run, ps.p); err != nil {
						break
					}
				}
				s.Close()
			}

			// Restart over the recovered directory and re-push everything:
			// survivors dedup, casualties are re-ingested.
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer st.Close()
			srv, err := service.New(service.Config{Store: st, Resolver: resolver})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv.Handler())
			defer hs.Close()
			c := service.NewClient(hs.URL)
			for _, ps := range pushes {
				if _, err := c.Push("b1", ps.label, ps.run, ps.p); err != nil {
					t.Fatalf("re-push after recovery: %v", err)
				}
			}
			resp, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Render != offline {
				t.Fatalf("crash at %d: service render diverged from offline pipeline\n--- offline ---\n%s\n--- service ---\n%s",
					n, offline, resp.Render)
			}
		})
	}
}
