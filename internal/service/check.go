package service

import (
	"fmt"
	"net/http"

	"vprof/internal/absint"
	"vprof/internal/compiler"
	"vprof/internal/diag"
	"vprof/internal/lang"
)

// CheckRequest asks for a static perf-smell analysis: either a registered
// workload by name (the resolver supplies the source) or an inline program.
type CheckRequest struct {
	// Workload names a registered workload; its source comes from the
	// resolver (SourceResolver). Mutually exclusive with Source.
	Workload string `json:"workload,omitempty"`
	// Source is an inline program text; Path names it in findings
	// (default "input.vp").
	Source string `json:"source,omitempty"`
	Path   string `json:"path,omitempty"`
}

// CheckFinding is one perf-smell diagnostic, JSON-shaped.
type CheckFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Function string `json:"function,omitempty"`
	Variable string `json:"variable,omitempty"`
	Message  string `json:"message"`
}

// CheckResponse carries the checker's findings, the rendered report, and
// the per-function static cost bounds.
type CheckResponse struct {
	Workload string            `json:"workload,omitempty"`
	Path     string            `json:"path"`
	Findings []CheckFinding    `json:"findings"`
	Costs    map[string]string `json:"costs"`
	Render   string            `json:"render"`
	// ExitCode mirrors the CLI convention: 1 when any finding is at
	// warning severity or above, 0 otherwise.
	ExitCode int `json:"exit_code"`
}

// Check resolves the request's source, compiles it, and runs the abstract
// interpreter. Exported so the CLI and tests can drive it without HTTP.
func (s *Server) Check(req CheckRequest) (*CheckResponse, int, error) {
	var path, src string
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, http.StatusBadRequest, withCode(CodeBadRequest,
			fmt.Errorf("workload and source are mutually exclusive"))
	case req.Workload != "":
		sr, ok := s.resolver.(SourceResolver)
		if !ok {
			return nil, http.StatusNotFound, withCode(CodeNotFound,
				fmt.Errorf("resolver cannot provide workload sources"))
		}
		var err error
		path, src, err = sr.Source(req.Workload)
		if err != nil {
			return nil, http.StatusNotFound, withCode(CodeNotFound,
				fmt.Errorf("source of workload %q: %w", req.Workload, err))
		}
	case req.Source != "":
		path, src = req.Path, req.Source
		if path == "" {
			path = "input.vp"
		}
	default:
		return nil, http.StatusBadRequest, withCode(CodeBadRequest,
			fmt.Errorf("workload or source is required"))
	}

	f, err := lang.Parse(path, src)
	if err != nil {
		return nil, http.StatusBadRequest, withCode(CodeBadRequest, fmt.Errorf("parse: %w", err))
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		return nil, http.StatusBadRequest, withCode(CodeBadRequest, fmt.Errorf("compile: %w", err))
	}
	an := absint.AnalyzeProgram(prog)
	rep := an.Check()
	resp := &CheckResponse{
		Workload: req.Workload,
		Path:     path,
		Findings: make([]CheckFinding, 0, len(rep.Findings)),
		Costs:    an.FunctionCosts(),
		Render:   rep.Render(),
		ExitCode: rep.ExitCode(),
	}
	for _, fd := range rep.Findings {
		resp.Findings = append(resp.Findings, checkFinding(fd))
	}
	return resp, http.StatusOK, nil
}

func checkFinding(f diag.Finding) CheckFinding {
	return CheckFinding{
		Rule:     f.Rule,
		Severity: f.Severity.String(),
		File:     f.File,
		Line:     f.Line,
		Function: f.Function,
		Variable: f.Variable,
		Message:  f.Message,
	}
}
