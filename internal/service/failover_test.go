package service_test

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

// deadEndpoint returns a URL nothing is listening on (the port was bound
// and released, so dialing it is refused immediately).
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func marshalProfile(t *testing.T, seed int64) []byte {
	t.Helper()
	p := &sampler.Profile{
		File: "prog.vp", Interval: 97, TotalTicks: 10000 + seed, Hist: make([]int64, 8),
		Layout: []sampler.LayoutEntry{{Func: "scan", Name: "n"}},
	}
	for i := int64(0); i < 5; i++ {
		p.Samples = append(p.Samples, sampler.Sample{Layout: 0, PC: int32(i), Value: seed + i, Tick: 97 * i, Link: -1})
	}
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestClientFailoverNoDuplicates: a push against a cluster client whose
// preferred front end is dead fails over to the live one; re-sending the
// same run (as a retrying agent would after a failover) dedups instead of
// double-ingesting.
func TestClientFailoverNoDuplicates(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{Store: st, Resolver: service.NewBugsResolver(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	reg := obs.NewRegistry()
	client := service.NewClusterClient(deadEndpoint(t), hs.URL).Instrument(reg)
	blob := marshalProfile(t, 7)

	first, err := client.PushBlob("b1", store.LabelNormal, "0", blob)
	if err != nil {
		t.Fatalf("push via failover: %v", err)
	}
	if first.Dup {
		t.Fatal("first delivery reported dup")
	}
	// The agent's replay after the failover: same workload/label/run/bytes.
	second, err := client.PushBlob("b1", store.LabelNormal, "0", blob)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Dup || second.ID != first.ID {
		t.Fatalf("replayed push: dup=%v id=%s, want dup of %s", second.Dup, second.ID, first.ID)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != 1 || stats.Deduped != 1 {
		t.Fatalf("stats after failover replay: ingested=%d deduped=%d, want 1/1", stats.Ingested, stats.Deduped)
	}
	if got := reg.Counter("vprof_client_failovers_total", "").Value(); got < 1 {
		t.Fatalf("vprof_client_failovers_total = %v, want >= 1", got)
	}
	if entries := st.Baselines("b1"); len(entries) != 1 {
		t.Fatalf("store holds %d baseline runs after failover replay, want 1", len(entries))
	}
}

// unavailableBackend wraps a real store but refuses writes the way a
// below-quorum cluster router does.
type unavailableBackend struct {
	*store.Store
}

func (b *unavailableBackend) PutBlob(workload string, label store.Label, run string, blob []byte) (*store.Entry, bool, error) {
	return nil, false, fmt.Errorf("cluster: write quorum not reached: %w", store.ErrUnavailable)
}

// TestIngestUnavailableMapsTo503: a backend below write quorum turns pushes
// into retryable 503s (Retry-After set, CodeUnavailable body) — not 4xx
// rejections, and not counted as such.
func TestIngestUnavailableMapsTo503(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{
		Backend:  &unavailableBackend{st},
		Resolver: service.NewBugsResolver(),
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	resp, err := http.Post(hs.URL+"/v1/profiles?workload=b1&label=normal&run=0",
		"application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unavailable backend: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// The typed client surfaces it as the retryable sentinel.
	client := service.NewClient(hs.URL)
	client.Retry.MaxAttempts = 2
	client.Retry.BaseDelay = 1 // don't sleep a real Retry-After in tests
	_, err = client.PushBlob("b1", store.LabelNormal, "0", marshalProfile(t, 1))
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("client error = %v, want ErrOverloaded", err)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 0 {
		t.Fatalf("unavailability counted as %d rejection(s)", stats.Rejected)
	}
}

// TestBatchIngest: one round trip carries many profiles; items are
// independent (a bad one fails its slot, not the batch), and replaying the
// whole batch dedups every item.
func TestBatchIngest(t *testing.T) {
	c, hs := newTestServer(t)

	items := []service.BatchItem{
		{Workload: "b1", Label: "normal", Run: "0", Blob: marshalProfile(t, 1)},
		{Workload: "b1", Label: "normal", Run: "1", Blob: marshalProfile(t, 2)},
		{Workload: "b1", Label: "candidate", Run: "0", Blob: marshalProfile(t, 3)},
		{Workload: "b1", Label: "wat", Run: "2", Blob: marshalProfile(t, 4)},    // bad label
		{Workload: "b1", Label: "normal", Run: "3", Blob: []byte("not a blob")}, // invalid bundle
	}
	results, err := c.PushBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	for i := 0; i < 3; i++ {
		if results[i].Error != "" || results[i].ID == "" || results[i].Dup {
			t.Fatalf("item %d: %+v, want clean ingest", i, results[i])
		}
	}
	if results[3].Code != service.CodeBadRequest {
		t.Fatalf("bad-label item: code %q, want %q", results[3].Code, service.CodeBadRequest)
	}
	if results[4].Code != service.CodeInvalidBundle {
		t.Fatalf("garbage item: code %q, want %q", results[4].Code, service.CodeInvalidBundle)
	}

	// Replaying the batch (e.g. after a failover mid-response) is harmless.
	again, err := c.PushBatch(items[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if !r.Dup || r.ID != results[i].ID {
			t.Fatalf("replayed item %d: dup=%v id=%s, want dup of %s", i, r.Dup, r.ID, results[i].ID)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != 3 || stats.Deduped != 3 || stats.Rejected != 2 {
		t.Fatalf("stats after batches: %+v, want ingested=3 deduped=3 rejected=2", stats)
	}

	// An empty batch is a client bug, not a no-op.
	if _, err := c.PushBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}

	// The endpoint speaks plain JSON for agents without the Go client.
	resp, err := http.Post(hs.URL+"/v1/profiles:batch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body batch: HTTP %d, want 400", resp.StatusCode)
	}
}
