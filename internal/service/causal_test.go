package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/causal"
	"vprof/internal/obs"
	"vprof/internal/service"
	"vprof/internal/store"
)

func TestCausalEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{
		Store:    st,
		Resolver: service.NewBugsResolver(),
		Workers:  3,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := service.NewClient(hs.URL)

	// b3 is a small workload whose root cause tops the causal ranking.
	w := bugs.ByID("b3")
	resp, err := c.Causal(service.CausalRequest{Workload: "b3", Speedups: []float64{50, 95}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first sweep claims to be cached")
	}
	if resp.Granularity != "func" || len(resp.Curves) == 0 || resp.Render == "" {
		t.Fatalf("causal response = %+v", resp)
	}
	if got := resp.RootRank(w.RootFunc); got != 1 {
		t.Fatalf("b3 root rank = %d, want 1", got)
	}

	// The offline engine over the identical inputs must agree exactly.
	b := w.MustBuild()
	offline, err := causal.Run(context.Background(), b.Prog, w.BuggyConfig(0), causal.Options{
		Speedups: []float64{0.50, 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := causal.Render(offline, 10); resp.Render != want {
		t.Fatalf("service render differs from offline render.\nservice:\n%s\noffline:\n%s", resp.Render, want)
	}
	if resp.Experiments != offline.Experiments || resp.Baseline != offline.BaselineWall {
		t.Fatalf("service sweep diverged: %d experiments/%d baseline, offline %d/%d",
			resp.Experiments, resp.Baseline, offline.Experiments, offline.BaselineWall)
	}

	// Second identical request: memoized, and the experiment counter does
	// not advance.
	exp := scrape(t, hs.URL)
	before := seriesValue(t, exp, "vprof_causal_experiments_total")
	if before != float64(offline.Experiments) {
		t.Fatalf("vprof_causal_experiments_total = %v, want %d", before, offline.Experiments)
	}
	resp2, err := c.Causal(service.CausalRequest{Workload: "b3", Speedups: []float64{50, 95}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.Render != resp.Render || resp2.ReportID != resp.ReportID {
		t.Fatalf("second sweep not a faithful cache hit: %+v", resp2)
	}
	exp = scrape(t, hs.URL)
	if after := seriesValue(t, exp, "vprof_causal_experiments_total"); after != before {
		t.Fatalf("experiment counter advanced on a memo hit: %v -> %v", before, after)
	}
	if hits := seriesValue(t, exp, "vprof_causal_memo_hits_total"); hits != 1 {
		t.Fatalf("vprof_causal_memo_hits_total = %v, want 1", hits)
	}
	if v := seriesValue(t, exp, `vprof_causal_requests_total{outcome="computed"}`); v != 1 {
		t.Fatalf("computed outcome count = %v, want 1", v)
	}
	if v := seriesValue(t, exp, `vprof_causal_requests_total{outcome="cached"}`); v != 1 {
		t.Fatalf("cached outcome count = %v, want 1", v)
	}

	// A different option set is a different memo key.
	resp3, err := c.Causal(service.CausalRequest{Workload: "b3", Speedups: []float64{50, 95}, Granularity: "block"})
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Cached || resp3.Granularity != "block" {
		t.Fatalf("block sweep = %+v, want freshly computed", resp3)
	}

	// Error paths: unknown workload, bad speedup, bad granularity, bad body.
	if _, err := c.Causal(service.CausalRequest{Workload: "nope"}); !errors.Is(err, service.ErrNotFound) {
		t.Errorf("unknown workload: err = %v, want ErrNotFound", err)
	}
	if _, err := c.Causal(service.CausalRequest{Workload: "b3", Speedups: []float64{120}}); err == nil {
		t.Error("speedup 120%% accepted")
	}
	if _, err := c.Causal(service.CausalRequest{Workload: "b3", Granularity: "line"}); err == nil {
		t.Error("granularity line accepted")
	}
	if _, err := c.Causal(service.CausalRequest{}); err == nil {
		t.Error("empty request accepted")
	}
	hresp, err := http.Post(hs.URL+"/v1/causal", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", hresp.StatusCode)
	}
}

func TestCausalCancellation(t *testing.T) {
	// A long-grinding program served by a program resolver; cancellation
	// must land mid-sweep and abort with 499, without memoizing.
	dir := t.TempDir()
	src := `
func grind() { var i = 0; while (i < 2000) { work(1000); i = i + 1; } return 0; }
func main() { grind(); }`
	path := filepath.Join(dir, "grind.vp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	resolver, err := service.NewProgramResolver([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{Store: st, Resolver: resolver, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		_, status, err := srv.CausalContext(ctx, service.CausalRequest{Workload: "grind"})
		done <- result{status, err}
	}()
	cancel()
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("mid-sweep cancel: err = %v, want context.Canceled", res.err)
	}
	if res.status != service.StatusClientClosedRequest {
		t.Fatalf("mid-sweep cancel: status = %d, want %d", res.status, service.StatusClientClosedRequest)
	}

	// The canceled sweep must not have been memoized: a fresh request
	// computes (and succeeds).
	resp, _, err := srv.Causal(service.CausalRequest{Workload: "grind", Speedups: []float64{50}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("sweep after cancellation served from cache")
	}
	if len(resp.Curves) == 0 || resp.Curves[0].Name != "grind" {
		t.Fatalf("curves = %+v, want grind ranked", resp.Curves)
	}
}
