package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/store"
)

// Typed sentinel errors mapped from the service's error responses. Callers
// branch with errors.Is instead of matching message strings; the full server
// message (and HTTP status) stays available via Error().
var (
	// ErrNotFound: unknown workload, candidate run, or report id.
	ErrNotFound = errors.New("service: not found")
	// ErrInvalidBundle: the uploaded profile bundle failed validation
	// (malformed encoding or oversized).
	ErrInvalidBundle = errors.New("service: invalid profile bundle")
	// ErrBaselineMissing: the workload has no baseline corpus to diagnose
	// against.
	ErrBaselineMissing = errors.New("service: baseline corpus missing")
	// ErrOverloaded: the server shed the request (429) or was draining
	// (503) and the retry budget ran out.
	ErrOverloaded = errors.New("service: overloaded")
)

// sentinelFor maps an error-body code (primary) or HTTP status (fallback,
// for older servers that send no code) to a sentinel.
func sentinelFor(code string, status int) error {
	switch code {
	case CodeNotFound:
		return ErrNotFound
	case CodeInvalidBundle:
		return ErrInvalidBundle
	case CodeBaselineMissing:
		return ErrBaselineMissing
	case CodeOverloaded, CodeUnavailable:
		return ErrOverloaded
	}
	if code == "" {
		switch status {
		case http.StatusNotFound:
			return ErrNotFound
		case http.StatusRequestEntityTooLarge:
			return ErrInvalidBundle
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return ErrOverloaded
		}
	}
	return nil
}

// RetryPolicy shapes the client's retry loop. Retries apply only to
// idempotent-safe failures: transport errors and 429/502/503/504 responses
// — pushes are idempotent on the server (content-addressed) and diagnoses
// are memoized, so re-sending is harmless.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first included (default 4; 1
	// disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter scatters each delay by ±Jitter (fraction, default 0.2) so
	// shed clients do not stampede back in lockstep.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// delay computes the backoff before attempt n (1-based count of failures
// so far), honoring a server-provided Retry-After when larger.
func (p RetryPolicy) delay(n int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	jit := 1 + p.Jitter*(2*rand.Float64()-1)
	d = time.Duration(float64(d) * jit)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// clientMetrics counts the retry loop's behavior (nil-safe).
type clientMetrics struct {
	retries   *obs.Counter
	throttled *obs.Counter
	giveups   *obs.Counter
	failovers *obs.Counter
}

// Client talks to a running vprof service (vprof push / vprof query, and
// the end-to-end harness). Requests that fail transiently — transport
// errors, 429 shed, 503 drain, 502/504 — are retried with exponential
// backoff + jitter, honoring the server's Retry-After hint and the
// caller's context deadline.
type Client struct {
	Base string // server base URL, e.g. http://127.0.0.1:7070
	// Failover lists alternate base URLs (replica front ends). A transport
	// failure — connection refused, reset, DNS — rotates the next attempt to
	// the next endpoint instead of hammering the dead one. Served errors
	// (429/503) retry the same endpoint, honoring its Retry-After: the node
	// is alive and asking for patience. Pushes stay safe across failover
	// because ingest is content-addressed and deduplicated server-side.
	Failover []string
	HTTP     *http.Client
	Retry    RetryPolicy

	m clientMetrics
}

// NewClient wraps a base URL with the default HTTP client and retry policy.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// NewClusterClient wraps a set of equivalent front-end URLs: the first is
// preferred, the rest are failover targets.
func NewClusterClient(bases ...string) *Client {
	c := NewClient(bases[0])
	c.Failover = bases[1:]
	return c
}

// endpoints returns the rotation list (Base first).
func (c *Client) endpoints() []string {
	return append([]string{c.Base}, c.Failover...)
}

// Instrument registers the client's retry counters on reg (the "recovery"
// side of the fault-tolerance instrumentation; asserted by the replay
// harness).
func (c *Client) Instrument(reg *obs.Registry) *Client {
	c.m = clientMetrics{
		retries: reg.Counter("vprof_client_retries_total",
			"Requests re-sent after a transient failure."),
		throttled: reg.Counter("vprof_client_throttled_total",
			"429/503 responses received (server shedding or draining)."),
		giveups: reg.Counter("vprof_client_giveups_total",
			"Requests abandoned after exhausting the retry budget."),
		failovers: reg.Counter("vprof_client_failovers_total",
			"Attempts rotated to a failover endpoint after a transport error."),
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the service's {"error", "code"} body into an error that
// wraps the matching sentinel (when one applies), so errors.Is works while
// the server's message is preserved.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	var err error
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		err = fmt.Errorf("service: %s (HTTP %d)", e.Error, resp.StatusCode)
	} else {
		err = fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if sentinel := sentinelFor(e.Code, resp.StatusCode); sentinel != nil {
		return fmt.Errorf("%w: %w", sentinel, err)
	}
	return err
}

// retryableStatus reports whether a response status is worth re-sending
// the request for.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header (seconds form; HTTP dates are
// rarer than this client needs).
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// do runs one request with the retry loop against path (e.g. "/v1/stats").
// The body is a byte slice (not a stream) precisely so every attempt can
// replay it. A context that is already done short-circuits before anything
// is sent. Transport failures rotate subsequent attempts through the
// Failover endpoints; served errors stay on the endpoint that answered.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	policy := c.Retry.withDefaults()
	eps := c.endpoints()
	ep := 0
	var lastErr error
	for attempt := 1; ; attempt++ {
		// Never dial on a dead context — an expired deadline means the
		// caller already gave up.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, method, eps[ep]+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient().Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err // transport failure: retryable
			if len(eps) > 1 {
				ep = (ep + 1) % len(eps)
				c.m.failovers.Inc()
			}
		case retryableStatus(resp.StatusCode):
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				c.m.throttled.Inc()
			}
			wait = retryAfter(resp)
			lastErr = apiError(resp) // drains and closes the body
		default:
			return resp, nil
		}
		if attempt >= policy.MaxAttempts {
			c.m.giveups.Inc()
			return nil, fmt.Errorf("service: giving up after %d attempt(s): %w", attempt, lastErr)
		}
		c.m.retries.Inc()
		t := time.NewTimer(policy.delay(attempt, wait))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// doJSON runs a request and decodes a 200 JSON body into out.
func (c *Client) doJSON(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, contentType, body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// PushBlobContext uploads one encoded profile bundle. Safe to retry: the
// server stores blobs content-addressed, so a duplicate delivery is a
// no-op dedup hit.
func (c *Client) PushBlobContext(ctx context.Context, workload string, label store.Label, run string, blob []byte) (*PushResult, error) {
	q := url.Values{"workload": {workload}, "label": {string(label)}, "run": {run}}
	var out PushResult
	if err := c.doJSON(ctx, http.MethodPost, "/v1/profiles?"+q.Encode(),
		"application/octet-stream", blob, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PushBlob is PushBlobContext without a deadline.
func (c *Client) PushBlob(workload string, label store.Label, run string, blob []byte) (*PushResult, error) {
	return c.PushBlobContext(context.Background(), workload, label, run, blob)
}

// PushBatchContext uploads many profiles in one round trip. Items are
// independent server-side; the returned slice mirrors the request order.
// Safe to retry (and to replay after a failover): every item is
// content-addressed and deduplicated.
func (c *Client) PushBatchContext(ctx context.Context, items []BatchItem) ([]BatchItemResult, error) {
	body, err := json.Marshal(BatchRequest{Profiles: items})
	if err != nil {
		return nil, err
	}
	var out BatchResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/profiles:batch", "application/json", body, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// PushBatch uploads many profiles in one round trip.
func (c *Client) PushBatch(items []BatchItem) ([]BatchItemResult, error) {
	return c.PushBatchContext(context.Background(), items)
}

// PushContext encodes and uploads a profile.
func (c *Client) PushContext(ctx context.Context, workload string, label store.Label, run string, p *sampler.Profile) (*PushResult, error) {
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		return nil, err
	}
	return c.PushBlobContext(ctx, workload, label, run, blob)
}

// Push encodes and uploads a profile.
func (c *Client) Push(workload string, label store.Label, run string, p *sampler.Profile) (*PushResult, error) {
	return c.PushContext(context.Background(), workload, label, run, p)
}

// WorkloadsContext lists the server's stored workloads.
func (c *Client) WorkloadsContext(ctx context.Context) ([]store.WorkloadInfo, error) {
	var out []store.WorkloadInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/workloads", "", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Workloads lists the server's stored workloads.
func (c *Client) Workloads() ([]store.WorkloadInfo, error) {
	return c.WorkloadsContext(context.Background())
}

// DiagnoseContext requests a differential diagnosis. Safe to retry: the
// server memoizes diagnoses by their exact inputs, so a re-sent request
// that already computed is a cache hit.
func (c *Client) DiagnoseContext(ctx context.Context, req DiagnoseRequest) (*DiagnoseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out DiagnoseResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/diagnose", "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Diagnose requests a differential diagnosis.
func (c *Client) Diagnose(req DiagnoseRequest) (*DiagnoseResponse, error) {
	return c.DiagnoseContext(context.Background(), req)
}

// CheckContext requests a static perf-smell analysis of a workload or an
// inline program.
func (c *Client) CheckContext(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out CheckResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/check", "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Check requests a static perf-smell analysis.
func (c *Client) Check(req CheckRequest) (*CheckResponse, error) {
	return c.CheckContext(context.Background(), req)
}

// CausalContext requests a Coz-style virtual-speedup sweep. Safe to retry:
// the server memoizes sweeps by their exact inputs, so a re-sent request
// that already computed is a cache hit.
func (c *Client) CausalContext(ctx context.Context, req CausalRequest) (*CausalResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out CausalResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/causal", "application/json", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Causal requests a Coz-style virtual-speedup sweep.
func (c *Client) Causal(req CausalRequest) (*CausalResponse, error) {
	return c.CausalContext(context.Background(), req)
}

// ReportContext fetches a stored diagnosis by report id.
func (c *Client) ReportContext(ctx context.Context, id string) (*DiagnoseResponse, error) {
	var out DiagnoseResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/report/"+url.PathEscape(id), "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report fetches a stored diagnosis by report id.
func (c *Client) Report(id string) (*DiagnoseResponse, error) {
	return c.ReportContext(context.Background(), id)
}

// StatsContext fetches the server counters.
func (c *Client) StatsContext(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", "", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*Stats, error) {
	return c.StatsContext(context.Background())
}
