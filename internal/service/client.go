package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/store"
)

// Typed sentinel errors mapped from the service's error responses. Callers
// branch with errors.Is instead of matching message strings; the full server
// message (and HTTP status) stays available via Error().
var (
	// ErrNotFound: unknown workload, candidate run, or report id.
	ErrNotFound = errors.New("service: not found")
	// ErrInvalidBundle: the uploaded profile bundle failed validation
	// (malformed encoding or oversized).
	ErrInvalidBundle = errors.New("service: invalid profile bundle")
	// ErrBaselineMissing: the workload has no baseline corpus to diagnose
	// against.
	ErrBaselineMissing = errors.New("service: baseline corpus missing")
)

// sentinelFor maps an error-body code (primary) or HTTP status (fallback,
// for older servers that send no code) to a sentinel.
func sentinelFor(code string, status int) error {
	switch code {
	case CodeNotFound:
		return ErrNotFound
	case CodeInvalidBundle:
		return ErrInvalidBundle
	case CodeBaselineMissing:
		return ErrBaselineMissing
	}
	if code == "" {
		switch status {
		case http.StatusNotFound:
			return ErrNotFound
		case http.StatusRequestEntityTooLarge:
			return ErrInvalidBundle
		}
	}
	return nil
}

// Client talks to a running vprof service (vprof push / vprof query, and
// the end-to-end harness).
type Client struct {
	Base string // server base URL, e.g. http://127.0.0.1:7070
	HTTP *http.Client
}

// NewClient wraps a base URL with the default HTTP client.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the service's {"error", "code"} body into an error that
// wraps the matching sentinel (when one applies), so errors.Is works while
// the server's message is preserved.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	var err error
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		err = fmt.Errorf("service: %s (HTTP %d)", e.Error, resp.StatusCode)
	} else {
		err = fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if sentinel := sentinelFor(e.Code, resp.StatusCode); sentinel != nil {
		return fmt.Errorf("%w: %w", sentinel, err)
	}
	return err
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// PushBlob uploads one encoded profile bundle.
func (c *Client) PushBlob(workload string, label store.Label, run string, blob []byte) (*PushResult, error) {
	q := url.Values{"workload": {workload}, "label": {string(label)}, "run": {run}}
	resp, err := c.httpClient().Post(c.Base+"/v1/profiles?"+q.Encode(), "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out PushResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Push encodes and uploads a profile.
func (c *Client) Push(workload string, label store.Label, run string, p *sampler.Profile) (*PushResult, error) {
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		return nil, err
	}
	return c.PushBlob(workload, label, run, blob)
}

// Workloads lists the server's stored workloads.
func (c *Client) Workloads() ([]store.WorkloadInfo, error) {
	var out []store.WorkloadInfo
	if err := c.getJSON("/v1/workloads", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Diagnose requests a differential diagnosis.
func (c *Client) Diagnose(req DiagnoseRequest) (*DiagnoseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(c.Base+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out DiagnoseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report fetches a stored diagnosis by report id.
func (c *Client) Report(id string) (*DiagnoseResponse, error) {
	var out DiagnoseResponse
	if err := c.getJSON("/v1/report/"+url.PathEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*Stats, error) {
	var out Stats
	if err := c.getJSON("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
