package service

// The incremental diagnose path: instead of re-decoding every stored
// profile blob, the analysis reads the per-variable sketches the store
// folded at ingest (internal/sketch) plus one cached hist-discounter corpus
// per workload. Diagnosing a workload that just received one new candidate
// run touches only that run's sketch and the cached corpus — the baseline
// blobs are never re-read, which the service tests assert via the store's
// decode-cache counters.

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"vprof/internal/analysis"
	"vprof/internal/debuginfo"
	"vprof/internal/sketch"
	"vprof/internal/store"
)

// corpusEntry caches one workload's hist-discounter corpus together with
// the exact baseline id set it was folded from.
type corpusEntry struct {
	ids    string // "\x00"-joined baseline blob ids, in corpus order
	corpus *analysis.Corpus
}

// corpusFor returns the workload's baseline corpus, rebuilding it only when
// the baseline id set changed since the cached fold. The corpus is treated
// as immutable once published; the sketch analysis only reads it.
func (s *Server) corpusFor(workload string, baselines []*store.Entry, dbg *debuginfo.Info) (*analysis.Corpus, []string, error) {
	ids := make([]string, 0, len(baselines))
	for _, e := range baselines {
		ids = append(ids, e.ID)
	}
	idKey := strings.Join(ids, "\x00")

	s.mu.Lock()
	if ce, ok := s.corpora[workload]; ok && ce.ids == idKey {
		s.mu.Unlock()
		return ce.corpus, ids, nil
	}
	s.mu.Unlock()

	// A cluster backend folds the corpus shard-local on each node and
	// merges the partials at the coordinator (Corpus.Merge is associative
	// and commutative, so the result is identical to the local fold). On
	// any failure, fall back to fetching raw sketches below.
	var corpus *analysis.Corpus
	if cb, ok := s.store.(CorpusBackend); ok {
		if folded, err := cb.Corpus(workload, ids); err == nil {
			corpus = folded
		} else {
			s.log.Warn("cluster corpus fold failed, folding locally", "workload", workload, "err", err)
		}
	}
	if corpus == nil {
		corpus = analysis.NewCorpus()
		for _, e := range baselines {
			sk, err := s.store.GetSketch(e.ID)
			if err != nil {
				return nil, nil, withCode(CodeInternal, err)
			}
			corpus.AddSketch(sk, dbg)
		}
	}
	s.mu.Lock()
	s.corpora[workload] = &corpusEntry{ids: idKey, corpus: corpus}
	s.mu.Unlock()
	return corpus, ids, nil
}

// computeSketches is compute's incremental twin: same validation, worker
// slot, and response shape, but the inputs are the store's persisted
// sketches and the cached corpus — no raw profile blob is decoded.
func (s *Server) computeSketches(ctx context.Context, workload string, top int, key string, baselines, candidates []*store.Entry) (*DiagnoseResponse, int, error) {
	release, err := s.acquireCtx(ctx)
	if err != nil {
		return nil, statusFor(err), err
	}
	defer release()

	dbg, sch, err := s.resolver.Resolve(workload)
	if err != nil {
		return nil, http.StatusNotFound, withCode(CodeNotFound, fmt.Errorf("resolve workload %q: %w", workload, err))
	}
	if err := ctx.Err(); err != nil {
		cerr := cancelErr(err)
		return nil, statusFor(cerr), cerr
	}
	corpus, bIDs, err := s.corpusFor(workload, baselines, dbg)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	normal, err := s.store.GetSketch(baselines[0].ID)
	if err != nil {
		return nil, http.StatusInternalServerError, withCode(CodeInternal, err)
	}
	buggy := make([]*sketch.Profile, 0, len(candidates))
	cIDs := make([]string, 0, len(candidates))
	for _, e := range candidates {
		sk, err := s.store.GetSketch(e.ID)
		if err != nil {
			return nil, http.StatusInternalServerError, withCode(CodeInternal, err)
		}
		buggy = append(buggy, sk)
		cIDs = append(cIDs, e.ID)
	}
	report, err := analysis.AnalyzeSketchesContext(ctx, analysis.SketchInput{
		Debug:  dbg,
		Schema: sch,
		Normal: normal,
		Corpus: corpus,
		Buggy:  buggy,
	}, s.params)
	if err != nil {
		if ctx.Err() != nil {
			cerr := cancelErr(ctx.Err())
			return nil, statusFor(cerr), cerr
		}
		return nil, http.StatusUnprocessableEntity, withCode(CodeAnalysisFailed, fmt.Errorf("analyze %q: %w", workload, err))
	}
	resp := diagnoseResponse(report, key, workload, top, bIDs, cIDs)
	resp.Sketches = true
	return resp, http.StatusOK, nil
}
