package service_test

import (
	"fmt"
	"reflect"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/service"
	"vprof/internal/store"
)

// sketchFixture pushes a b1 corpus (3 normals, 1 candidate) straight into a
// store and returns a server over it.
func sketchFixture(t *testing.T, cfg service.Config) (*service.Server, *store.Store, *bugs.Built) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	w := bugs.ByID("b1")
	if w == nil {
		t.Fatal("no b1 workload")
	}
	b := w.MustBuild()
	for i := 0; i < 3; i++ {
		p, _ := b.ProfileNormal(i)
		if _, _, err := st.Put("b1", store.LabelNormal, fmt.Sprint(i), p); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := b.ProfileBuggy(0)
	if _, _, err := st.Put("b1", store.LabelCandidate, "0", p); err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.Resolver = service.NewBugsResolver()
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, st, b
}

// TestSketchDiagnoseMatchesFull: the sketch path returns the identical rank
// table (costs, discounts, patterns) as the decoded-profile path, under a
// memo key of its own.
func TestSketchDiagnoseMatchesFull(t *testing.T) {
	srv, _, _ := sketchFixture(t, service.Config{})

	full, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	sk, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1", Sketches: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Sketches || full.Sketches {
		t.Fatalf("mode flags: full.Sketches=%v sketch.Sketches=%v", full.Sketches, sk.Sketches)
	}
	if sk.Cached {
		t.Fatal("first sketch diagnosis claims to be cached: modes share a memo key")
	}
	if !reflect.DeepEqual(sk.Ranks, full.Ranks) {
		t.Fatalf("sketch ranks differ from full analysis:\nfull:   %+v\nsketch: %+v", full.Ranks, sk.Ranks)
	}
	// Same request again: served from the sketch-mode memo entry.
	again, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1", Sketches: true})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !again.Sketches {
		t.Fatalf("repeat sketch diagnosis: cached=%v sketches=%v", again.Cached, again.Sketches)
	}
}

// TestSketchDiagnoseIncremental is the acceptance check for the incremental
// path: with a warm baseline (corpus cached, sketches persisted), diagnosing
// a freshly pushed candidate run must not decode any stored profile blob —
// the store's decode-cache counters stay flat.
func TestSketchDiagnoseIncremental(t *testing.T) {
	srv, st, b := sketchFixture(t, service.Config{Sketches: true})

	// Warm the baseline: Config.Sketches defaults the mode, so no
	// per-request flag is needed.
	warm, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Sketches {
		t.Fatal("Config.Sketches did not default the diagnosis to the sketch path")
	}

	// A new candidate run arrives.
	p, _ := b.ProfileBuggy(1)
	if _, _, err := st.Put("b1", store.LabelCandidate, "1", p); err != nil {
		t.Fatal(err)
	}

	before := st.CacheStats()
	resp, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1", Candidates: []string{"1"}})
	if err != nil {
		t.Fatal(err)
	}
	after := st.CacheStats()
	if resp.Cached || !resp.Sketches {
		t.Fatalf("incremental diagnosis: cached=%v sketches=%v", resp.Cached, resp.Sketches)
	}
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("incremental sketch diagnosis decoded profile blobs: %+v -> %+v", before, after)
	}
	if sst := st.SketchStats(); sst.Rebuilds != 0 {
		t.Fatalf("incremental diagnosis rebuilt sketches from blobs: %+v", sst)
	}

	// The stats snapshot surfaces the sketch counters for the harness.
	stats := srv.StatsSnapshot()
	if stats.SketchCache.Indexed == 0 {
		t.Fatalf("stats do not surface sketch counters: %+v", stats.SketchCache)
	}
}
