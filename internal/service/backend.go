package service

import (
	"vprof/internal/analysis"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
	"vprof/internal/store"
)

// Backend is the storage surface the server runs over. *store.Store
// satisfies it natively (the single-node deployment); cluster.Router
// satisfies it structurally (the sharded, replicated deployment), which
// keeps the service package free of a cluster dependency.
type Backend interface {
	PutBlob(workload string, label store.Label, run string, blob []byte) (*store.Entry, bool, error)
	Get(id string) (*sampler.Profile, error)
	GetSketch(id string) (*sketch.Profile, error)
	Lookup(workload string, label store.Label, run string) (*store.Entry, bool)
	Baselines(workload string) []*store.Entry
	Candidates(workload string) []*store.Entry
	Workloads() []store.WorkloadInfo
	CacheStats() store.CacheStats
	SketchStats() store.SketchStats
	Health() error
	Flush() error
}

// CorpusBackend is an optional Backend refinement: a backend that can fold
// the baseline sketch corpus itself (the cluster router does it shard-local
// on each node and merges at the coordinator). When the fold fails the
// server falls back to fetching raw sketches one by one.
type CorpusBackend interface {
	Corpus(workload string, ids []string) (*analysis.Corpus, error)
}

// healthDetailer is an optional Backend refinement: a backend that can
// classify its own health as ok/degraded/unavailable with named checks
// (the cluster router reports replica loss and dirty-recovered nodes as
// degraded). Declared structurally so implementing packages need no service
// import.
type healthDetailer interface {
	HealthDetail() (status string, checks map[string]string)
}

// recoveryReporter matches *store.Store's Recovery accessor; a single-node
// backend that came up from a dirty shutdown degrades /healthz until a
// clean restart.
type recoveryReporter interface {
	Recovery() *store.FsckReport
}
