package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vprof/internal/bugs"
	"vprof/internal/debuginfo"
	"vprof/internal/obs"
	"vprof/internal/schema"
	"vprof/internal/service"
	"vprof/internal/store"
)

// newObsServer builds a service with a fresh metrics registry and an
// optional resolver override, returning the pieces the observability tests
// poke at directly.
func newObsServer(t *testing.T, resolver service.Resolver) (*service.Client, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: nil})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if resolver == nil {
		resolver = service.NewBugsResolver()
	}
	srv, err := service.New(service.Config{
		Store:    st,
		Resolver: resolver,
		Workers:  2,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return service.NewClient(hs.URL), hs, st
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValue extracts one sample's value from an exposition body, or -1
// when the series is absent.
func seriesValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	return -1
}

func TestMetricsExpositionMonotonic(t *testing.T) {
	_, hs, _ := newObsServer(t, nil)

	// Drive the instrumented request path: two listings, then three more.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(hs.URL + "/v1/workloads")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	exp := scrape(t, hs.URL)
	series := `vprof_http_requests_total{route="/v1/workloads",code="2xx"}`
	if got := seriesValue(t, exp, series); got != 2 {
		t.Fatalf("%s = %v after 2 requests, want 2\n%s", series, got, exp)
	}
	// Exposition must carry the format scaffolding.
	for _, want := range []string{
		"# HELP vprof_http_requests_total",
		"# TYPE vprof_http_requests_total counter",
		"# TYPE vprof_http_request_duration_seconds histogram",
		`vprof_http_request_duration_seconds_bucket{route="/v1/workloads",le="+Inf"}`,
		"vprof_http_request_duration_seconds_count",
		"vprof_http_requests_in_flight 0",
		"vprof_pool_slots 2",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}

	for i := 0; i < 3; i++ {
		resp, err := http.Get(hs.URL + "/v1/workloads")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := seriesValue(t, scrape(t, hs.URL), series); got != 5 {
		t.Fatalf("%s = %v after 5 requests, want 5 (monotonic)", series, got)
	}
}

func TestHealthzTriState(t *testing.T) {
	c, hs, st := newObsServer(t, nil)

	getHealth := func() (int, service.Health) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h service.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	// Fresh server: writable and resolvable, but no baseline corpus yet —
	// degraded, still HTTP 200 so ingestion keeps flowing.
	code, h := getHealth()
	if code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("fresh healthz = %d %+v, want 200 degraded", code, h)
	}

	// One baseline push flips it to ok.
	b := bugs.ByID("b1").MustBuild()
	p, _ := b.ProfileNormal(0)
	if _, err := c.Push("b1", store.LabelNormal, "0", p); err != nil {
		t.Fatal(err)
	}
	code, h = getHealth()
	if code != http.StatusOK || h.Status != "ok" || h.BaselineWorkloads != 1 {
		t.Fatalf("healthz after baseline = %d %+v, want 200 ok", code, h)
	}

	// A broken store makes the service unavailable.
	st.Close()
	code, h = getHealth()
	if code != http.StatusServiceUnavailable || h.Status != "unavailable" {
		t.Fatalf("healthz after store close = %d %+v, want 503 unavailable", code, h)
	}
	if h.Checks["store_writable"] == "ok" {
		t.Fatalf("store_writable check still ok: %+v", h)
	}
}

// gateResolver signals when a diagnosis reaches Resolve and holds it there
// until released, so a test can cancel the request at a known point inside
// compute.
type gateResolver struct {
	inner   service.Resolver
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateResolver() *gateResolver {
	return &gateResolver{
		inner:   service.NewBugsResolver(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gateResolver) Resolve(workload string) (*debuginfo.Info, *schema.Schema, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.inner.Resolve(workload)
}

func (g *gateResolver) Known() []string { return g.inner.Known() }

func TestDiagnoseCancellation(t *testing.T) {
	gate := newGateResolver()
	c, hs, _ := newObsServer(t, gate)

	b := bugs.ByID("b1").MustBuild()
	np, _ := b.ProfileNormal(0)
	bp, _ := b.ProfileBuggy(0)
	if _, err := c.Push("b1", store.LabelNormal, "0", np); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push("b1", store.LabelCandidate, "0", bp); err != nil {
		t.Fatal(err)
	}

	// Issue a diagnosis whose client disconnects while the server is mid
	// compute (parked in Resolve behind the gate).
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(service.DiagnoseRequest{Workload: "b1"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/diagnose", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("canceled diagnose returned HTTP %d", resp.StatusCode)
		}
		done <- err
	}()

	<-gate.entered // the server is now inside compute, holding a pool slot
	cancel()       // client walks away
	close(gate.release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	// The server must observe the abort: the canceled-outcome counter ticks
	// once the handler unwinds. Poll briefly — the handler finishes after
	// the client has already gone.
	canceled := `vprof_diagnose_requests_total{outcome="canceled"}`
	deadline := time.Now().Add(5 * time.Second)
	for {
		if seriesValue(t, scrape(t, hs.URL), canceled) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s sample after cancellation:\n%s", canceled, scrape(t, hs.URL))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The pool slot was released: a fresh diagnosis of the same workload
	// completes (the gate is open now) and was computed, not memoized —
	// canceled results must never enter the memo cache.
	resp, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("diagnosis after cancellation served from cache")
	}
	exp := scrape(t, hs.URL)
	if got := seriesValue(t, exp, `vprof_diagnose_requests_total{outcome="computed"}`); got != 1 {
		t.Fatalf("computed outcome = %v, want 1\n%s", got, exp)
	}
	if got := seriesValue(t, exp, "vprof_pool_in_use"); got != 0 {
		t.Fatalf("pool_in_use = %v after requests drained, want 0", got)
	}
}

// TestDiagnoseContextCanceled exercises the embedded (non-HTTP) API: a
// pre-canceled context fails with the client-closed status, is never
// memoized, and leaves the server fully usable.
func TestDiagnoseContextCanceled(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{Store: st, Resolver: service.NewBugsResolver(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := service.NewClient(hs.URL)
	b := bugs.ByID("b1").MustBuild()
	np, _ := b.ProfileNormal(0)
	bp, _ := b.ProfileBuggy(0)
	if _, err := c.Push("b1", store.LabelNormal, "0", np); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push("b1", store.LabelCandidate, "0", bp); err != nil {
		t.Fatal(err)
	}

	ctx, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, status, err := srv.DiagnoseContext(ctx, service.DiagnoseRequest{Workload: "b1"}); err == nil {
		t.Fatal("pre-canceled DiagnoseContext succeeded")
	} else if status != service.StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (err %v)", status, service.StatusClientClosedRequest, err)
	}
	// Same server, live context: the full diagnosis still works and is a
	// fresh computation (the canceled attempt was not memoized).
	resp, status, err := srv.DiagnoseContext(context.Background(), service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatalf("diagnosis after canceled attempt: %d %v", status, err)
	}
	if resp.Cached {
		t.Fatal("diagnosis after canceled attempt claims to be cached")
	}
}

func TestClientErrorMapping(t *testing.T) {
	c, _, _ := newObsServer(t, nil)

	// Invalid bundle: garbage bytes are rejected with a typed sentinel.
	_, err := c.PushBlob("b1", store.LabelNormal, "0", []byte("not a profile"))
	if !errors.Is(err, service.ErrInvalidBundle) {
		t.Fatalf("garbage push error = %v, want ErrInvalidBundle", err)
	}

	// Baseline missing: diagnosing an empty workload.
	_, err = c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if !errors.Is(err, service.ErrBaselineMissing) {
		t.Fatalf("empty diagnose error = %v, want ErrBaselineMissing", err)
	}

	// Not found: unknown report id and unknown candidate run.
	_, err = c.Report("r-nope")
	if !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("missing report error = %v, want ErrNotFound", err)
	}
	b := bugs.ByID("b1").MustBuild()
	np, _ := b.ProfileNormal(0)
	if _, err := c.Push("b1", store.LabelNormal, "0", np); err != nil {
		t.Fatal(err)
	}
	_, err = c.Diagnose(service.DiagnoseRequest{Workload: "b1", Candidates: []string{"9"}})
	if !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("unknown candidate error = %v, want ErrNotFound", err)
	}
	// Sentinels are distinct: a not-found is not an invalid bundle.
	if errors.Is(err, service.ErrInvalidBundle) {
		t.Fatalf("unknown candidate error matched ErrInvalidBundle: %v", err)
	}
}
