package service_test

import (
	"fmt"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

// BenchmarkIncrementalDiagnose measures the service-side latency of
// diagnosing one newly pushed candidate run against a warm 16-run baseline
// corpus, full path vs sketch path. The full path decodes stored profile
// blobs and recomputes corpus statistics per diagnosis (the decode cache is
// deliberately smaller than the corpus, as it would be in production); the
// sketch path reads persisted per-variable sketches and reuses the cached
// corpus sketch, touching only the new run. Each iteration pushes a fresh
// candidate (timer stopped) so every diagnosis misses the memo and does
// real work. Run with -benchtime Nx, N < 64: the pool of distinct candidate
// profiles is 64, and recycled blob IDs would start hitting the memo.
func BenchmarkIncrementalDiagnose(b *testing.B) {
	w := bugs.ByID("b1")
	if w == nil {
		b.Fatal("no b1 workload")
	}
	built := w.MustBuild()
	const numBaselines = 16
	normals := make([]*sampler.Profile, numBaselines)
	for i := range normals {
		normals[i], _ = built.ProfileNormal(i)
	}
	cands := make([]*sampler.Profile, 64)
	for i := range cands {
		cands[i], _ = built.ProfileBuggy(i + 1)
	}

	for _, mode := range []struct {
		name     string
		sketches bool
	}{{"full", false}, {"sketch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{
				BaselineCap: numBaselines, CacheCap: 8, NoSync: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			for i, p := range normals {
				if _, _, err := st.Put("b1", store.LabelNormal, fmt.Sprint(i), p); err != nil {
					b.Fatal(err)
				}
			}
			srv, err := service.New(service.Config{
				Store: st, Resolver: service.NewBugsResolver(), Sketches: mode.sketches,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the baseline: resolve debug info, and (sketch mode) fold
			// and cache the corpus sketch.
			warm, _ := built.ProfileBuggy(0)
			if _, _, err := st.Put("b1", store.LabelCandidate, "warm", warm); err != nil {
				b.Fatal(err)
			}
			if _, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1", Candidates: []string{"warm"}}); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := fmt.Sprintf("c%d", i)
				if _, _, err := st.Put("b1", store.LabelCandidate, id, cands[i%len(cands)]); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				resp, _, err := srv.Diagnose(service.DiagnoseRequest{Workload: "b1", Candidates: []string{id}})
				if err != nil {
					b.Fatal(err)
				}
				if resp.Cached {
					b.Fatal("memo hit: candidate pool exhausted, use a smaller -benchtime")
				}
				if resp.Sketches != mode.sketches {
					b.Fatalf("mode mismatch: resp.Sketches=%v want %v", resp.Sketches, mode.sketches)
				}
			}
			b.StopTimer()
			if mode.sketches {
				if sst := st.SketchStats(); sst.Rebuilds != 0 {
					b.Fatalf("sketch path rebuilt sketches from blobs: %+v", sst)
				}
			}
		})
	}
}
