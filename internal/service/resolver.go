package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/schema"
	"vprof/internal/vm"
)

// Resolver maps a workload name to the debug info and monitoring schema its
// diagnosis needs — what the offline pipeline gets from compiling the
// program next to its profiles.
type Resolver interface {
	Resolve(workload string) (*debuginfo.Info, *schema.Schema, error)
	// Known lists resolvable workload names (for diagnostics; a resolver
	// may accept names beyond this list).
	Known() []string
}

// SourceResolver is an optional Resolver extension: endpoints that analyze
// the program itself rather than its profiles (POST /v1/check) need the
// workload's source text. Resolvers that cannot provide it simply do not
// implement the interface.
type SourceResolver interface {
	// Source returns the workload's source path and text.
	Source(workload string) (path, src string, err error)
}

// RunnableResolver is an optional Resolver extension: endpoints that
// re-execute the workload (POST /v1/causal's virtual-speedup experiments)
// need the compiled program and the VM configuration it runs under, not
// just its debug info.
type RunnableResolver interface {
	// Runnable returns the workload's compiled program and run config.
	Runnable(workload string) (*compiler.Program, vm.Config, error)
}

// bugsResolver serves the built-in bug registry: workload name = bug id
// (b1..b15, u1..u3). Builds are cached; building compiles and
// schema-analyzes the workload exactly as the offline harness does.
type bugsResolver struct {
	mu    sync.Mutex
	built map[string]*bugs.Built
}

// NewBugsResolver resolves the 18 reproduced issues of internal/bugs.
func NewBugsResolver() Resolver {
	return &bugsResolver{built: map[string]*bugs.Built{}}
}

func (r *bugsResolver) Resolve(workload string) (*debuginfo.Info, *schema.Schema, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.built[workload]
	if !ok {
		w := bugs.ByID(workload)
		if w == nil {
			return nil, nil, fmt.Errorf("no bug workload %q", workload)
		}
		var err error
		b, err = w.Build()
		if err != nil {
			return nil, nil, err
		}
		r.built[workload] = b
	}
	return b.Prog.Debug, b.Schema, nil
}

// Source returns the workload's buggy source (the reproduced issue, noise
// injection excluded — the same text the offline checker goldens cover).
func (r *bugsResolver) Source(workload string) (string, string, error) {
	w := bugs.ByID(workload)
	if w == nil {
		return "", "", fmt.Errorf("no bug workload %q", workload)
	}
	path := w.SourceFile
	if path == "" {
		path = w.ID + ".vp"
	}
	return path, w.Source, nil
}

// Runnable returns the bug's compiled program and its buggy run config
// (run 0), the same pair the harness's causal validation uses.
func (r *bugsResolver) Runnable(workload string) (*compiler.Program, vm.Config, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := bugs.ByID(workload)
	if w == nil {
		return nil, vm.Config{}, fmt.Errorf("no bug workload %q", workload)
	}
	b, ok := r.built[workload]
	if !ok {
		var err error
		b, err = w.Build()
		if err != nil {
			return nil, vm.Config{}, err
		}
		r.built[workload] = b
	}
	return b.Prog, w.BuggyConfig(0), nil
}

func (r *bugsResolver) Known() []string {
	var out []string
	for _, w := range bugs.All() {
		out = append(out, w.ID)
	}
	for _, w := range bugs.UnresolvedIssues() {
		out = append(out, w.ID)
	}
	return out
}

// programResolver serves workloads compiled from .vp source files: the
// workload name is the file's base name without extension.
type programResolver struct {
	mu       sync.Mutex
	paths    map[string]string // name → source path
	compiled map[string]*compiledProgram
}

type compiledProgram struct {
	prog  *compiler.Program
	debug *debuginfo.Info
	sch   *schema.Schema
}

// NewProgramResolver resolves each listed .vp file as a workload named
// after its base name (db/scan.vp → "scan").
func NewProgramResolver(files []string) (Resolver, error) {
	paths := map[string]string{}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), filepath.Ext(f))
		if name == "" {
			return nil, fmt.Errorf("cannot derive a workload name from %q", f)
		}
		if prev, ok := paths[name]; ok {
			return nil, fmt.Errorf("workload %q named by both %s and %s", name, prev, f)
		}
		paths[name] = f
	}
	return &programResolver{paths: paths, compiled: map[string]*compiledProgram{}}, nil
}

func (r *programResolver) Resolve(workload string) (*debuginfo.Info, *schema.Schema, error) {
	c, err := r.compile(workload)
	if err != nil {
		return nil, nil, err
	}
	return c.debug, c.sch, nil
}

// Runnable returns the compiled program under a zero VM config: plain .vp
// workloads run with defaults (no fault injection, no tick cap beyond the
// causal engine's own budget).
func (r *programResolver) Runnable(workload string) (*compiler.Program, vm.Config, error) {
	c, err := r.compile(workload)
	if err != nil {
		return nil, vm.Config{}, err
	}
	return c.prog, vm.Config{}, nil
}

func (r *programResolver) compile(workload string) (*compiledProgram, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.compiled[workload]; ok {
		return c, nil
	}
	path, ok := r.paths[workload]
	if !ok {
		return nil, fmt.Errorf("no program registered for workload %q", workload)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := lang.Parse(path, string(src))
	if err != nil {
		return nil, err
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		return nil, err
	}
	c := &compiledProgram{prog: prog, debug: prog.Debug, sch: schema.GenerateIR(f, prog, schema.Options{})}
	r.compiled[workload] = c
	return c, nil
}

// Source re-reads the workload's registered file.
func (r *programResolver) Source(workload string) (string, string, error) {
	r.mu.Lock()
	path, ok := r.paths[workload]
	r.mu.Unlock()
	if !ok {
		return "", "", fmt.Errorf("no program registered for workload %q", workload)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	return path, string(src), nil
}

func (r *programResolver) Known() []string {
	var out []string
	for name := range r.paths {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// multiResolver tries resolvers in order (programs first, then the bug
// registry, say).
type multiResolver []Resolver

// NewMultiResolver chains resolvers; Resolve returns the first success.
func NewMultiResolver(rs ...Resolver) Resolver {
	return multiResolver(rs)
}

func (m multiResolver) Resolve(workload string) (*debuginfo.Info, *schema.Schema, error) {
	var firstErr error
	for _, r := range m {
		debug, sch, err := r.Resolve(workload)
		if err == nil {
			return debug, sch, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no resolver for workload %q", workload)
	}
	return nil, nil, firstErr
}

// Source delegates to the first chained resolver that both implements
// SourceResolver and knows the workload.
func (m multiResolver) Source(workload string) (string, string, error) {
	var firstErr error
	for _, r := range m {
		sr, ok := r.(SourceResolver)
		if !ok {
			continue
		}
		path, src, err := sr.Source(workload)
		if err == nil {
			return path, src, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no source for workload %q", workload)
	}
	return "", "", firstErr
}

// Runnable delegates to the first chained resolver that both implements
// RunnableResolver and knows the workload.
func (m multiResolver) Runnable(workload string) (*compiler.Program, vm.Config, error) {
	var firstErr error
	for _, r := range m {
		rr, ok := r.(RunnableResolver)
		if !ok {
			continue
		}
		prog, cfg, err := rr.Runnable(workload)
		if err == nil {
			return prog, cfg, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no runnable program for workload %q", workload)
	}
	return nil, vm.Config{}, firstErr
}

func (m multiResolver) Known() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range m {
		for _, name := range r.Known() {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}
