package service_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/bugs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

func newTestServer(t *testing.T) (*service.Client, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{
		Store:    st,
		Resolver: service.NewBugsResolver(),
		Workers:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return service.NewClient(hs.URL), hs
}

func TestIngestValidation(t *testing.T) {
	c, hs := newTestServer(t)

	// Malformed body: must be rejected, not crash the daemon.
	if _, err := c.PushBlob("b1", store.LabelNormal, "0", []byte("not a profile")); err == nil {
		t.Fatal("garbage blob accepted")
	}
	// Bad label.
	resp, err := http.Post(hs.URL+"/v1/profiles?workload=b1&label=wat&run=0", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad label: HTTP %d, want 400", resp.StatusCode)
	}
	// Missing run.
	resp, err = http.Post(hs.URL+"/v1/profiles?workload=b1&label=normal", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing run: HTTP %d, want 400", resp.StatusCode)
	}
	// A truncated but magic-prefixed bundle.
	p := &sampler.Profile{File: "x.vp", Hist: []int64{1, 2}}
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushBlob("b1", store.LabelNormal, "0", blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < 3 || st.Ingested != 0 {
		t.Fatalf("stats after rejects = %+v", st)
	}
}

func TestServiceDiagnoseMatchesOffline(t *testing.T) {
	c, _ := newTestServer(t)
	w := bugs.ByID("b1")
	if w == nil {
		t.Fatal("no b1 workload")
	}
	b := w.MustBuild()

	// Push 3 normal + 2 candidate runs concurrently.
	const normals, candidates = 3, 2
	normalPs := make([]*sampler.Profile, normals)
	buggyPs := make([]*sampler.Profile, candidates)
	var wg sync.WaitGroup
	errs := make(chan error, normals+candidates)
	for i := 0; i < normals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _ := b.ProfileNormal(i)
			normalPs[i] = p
			if _, err := c.Push("b1", store.LabelNormal, fmt.Sprint(i), p); err != nil {
				errs <- err
			}
		}(i)
	}
	for i := 0; i < candidates; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _ := b.ProfileBuggy(i)
			buggyPs[i] = p
			if _, err := c.Push("b1", store.LabelCandidate, fmt.Sprint(i), p); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	infos, err := c.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Workload != "b1" || infos[0].Normals != normals || infos[0].Candidates != candidates {
		t.Fatalf("workloads = %+v", infos)
	}

	resp, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first diagnosis claims to be cached")
	}

	// The offline path over the identical profiles must agree byte for
	// byte on the rendered report.
	offline, err := analysis.Analyze(analysis.Input{
		Debug:  b.Prog.Debug,
		Schema: b.Schema,
		Normal: normalPs,
		Buggy:  buggyPs,
	}, analysis.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if want := offline.Render(10); resp.Render != want {
		t.Fatalf("service render differs from offline render.\nservice:\n%s\noffline:\n%s", resp.Render, want)
	}
	if got, want := resp.RootRank(w.RootFunc), offline.Rank(w.RootFunc); got != want || got == 0 {
		t.Fatalf("root rank: service %d, offline %d", got, want)
	}

	// Second identical diagnosis: memoized.
	resp2, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.MemoHits < 1 {
		t.Fatalf("second diagnosis not cached: %+v", resp2)
	}
	if resp2.Render != resp.Render || resp2.ReportID != resp.ReportID {
		t.Fatal("cached diagnosis differs from original")
	}

	// The stored report is fetchable by id.
	rep, err := c.Report(resp.ReportID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render != resp.Render {
		t.Fatal("report by id differs from diagnosis")
	}

	// A new candidate push invalidates the memo key.
	p, _ := b.ProfileBuggy(candidates)
	if _, err := c.Push("b1", store.LabelCandidate, fmt.Sprint(candidates), p); err != nil {
		t.Fatal(err)
	}
	resp3, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Cached {
		t.Fatal("diagnosis after new push served from stale cache")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Diagnoses != 2 || st.DiagnoseCacheHits != 1 || st.Ingested != normals+candidates+1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckEndpoint(t *testing.T) {
	c, hs := newTestServer(t)

	// A registered workload, resolved to its buggy source. b9's quadratic
	// scan is one of the statically caught patterns.
	resp, err := c.Check(service.CheckRequest{Workload: "b9"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 1 || len(resp.Findings) == 0 {
		t.Fatalf("b9 check = exit %d, %d findings; want flagged", resp.ExitCode, len(resp.Findings))
	}
	found := false
	for _, f := range resp.Findings {
		if f.Rule == "quadratic-nest" {
			found = true
		}
	}
	if !found {
		t.Errorf("b9 findings missing quadratic-nest: %+v", resp.Findings)
	}
	if len(resp.Costs) == 0 {
		t.Error("no cost bounds returned")
	}

	// Inline source: clean program, exit 0, named by the request path.
	resp, err = c.Check(service.CheckRequest{
		Source: "func main() { work(5); return 0; }",
		Path:   "tiny.vp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 0 || len(resp.Findings) != 0 || resp.Path != "tiny.vp" {
		t.Fatalf("inline check = %+v, want clean", resp)
	}
	if resp.Costs["main"] == "" {
		t.Errorf("inline check missing main's cost bound: %+v", resp.Costs)
	}

	// Error paths: unknown workload, source that does not compile, neither.
	if _, err := c.Check(service.CheckRequest{Workload: "nope"}); !errors.Is(err, service.ErrNotFound) {
		t.Errorf("unknown workload: err = %v, want ErrNotFound", err)
	}
	if _, err := c.Check(service.CheckRequest{Source: "func {"}); err == nil {
		t.Error("uncompilable source accepted")
	}
	if _, err := c.Check(service.CheckRequest{}); err == nil {
		t.Error("empty check request accepted")
	}

	// Malformed JSON body.
	hresp, err := http.Post(hs.URL+"/v1/check", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", hresp.StatusCode)
	}
}

func TestDiagnoseErrors(t *testing.T) {
	c, _ := newTestServer(t)
	// No baselines at all.
	if _, err := c.Diagnose(service.DiagnoseRequest{Workload: "b1"}); err == nil {
		t.Fatal("diagnosis with empty store succeeded")
	}
	// Baseline but no candidates.
	b := bugs.ByID("b2").MustBuild()
	p, _ := b.ProfileNormal(0)
	if _, err := c.Push("b2", store.LabelNormal, "0", p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Diagnose(service.DiagnoseRequest{Workload: "b2"}); err == nil {
		t.Fatal("diagnosis without candidates succeeded")
	}
	// Named candidate run that does not exist.
	bp, _ := b.ProfileBuggy(0)
	if _, err := c.Push("b2", store.LabelCandidate, "0", bp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Diagnose(service.DiagnoseRequest{Workload: "b2", Candidates: []string{"7"}}); err == nil {
		t.Fatal("diagnosis of unknown candidate run succeeded")
	}
	// Workload the resolver does not know.
	if _, err := c.Push("not-a-bug", store.LabelNormal, "0", p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push("not-a-bug", store.LabelCandidate, "0", bp); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Diagnose(service.DiagnoseRequest{Workload: "not-a-bug"}); err == nil {
		t.Fatal("diagnosis of unresolvable workload succeeded")
	}
	// Missing report id.
	if _, err := c.Report("r-nope"); err == nil {
		t.Fatal("missing report served")
	}
}
