package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"

	"vprof/internal/causal"
)

// CausalRequest asks for Coz-style virtual-speedup experiments on a
// registered workload: for each candidate function (or basic block), re-run
// the workload with that candidate's tick costs scaled down and measure the
// end-to-end runtime change.
type CausalRequest struct {
	// Workload names a registered workload whose resolver can supply a
	// runnable program (RunnableResolver).
	Workload string `json:"workload"`
	// Speedups lists virtual speedup percentages, each in (0,100); empty
	// uses the engine's default sweep.
	Speedups []float64 `json:"speedups,omitempty"`
	// Granularity is "func" (default) or "block".
	Granularity string `json:"granularity,omitempty"`
	// Funcs restricts (and force-admits) candidates by function name.
	Funcs []string `json:"funcs,omitempty"`
	// Top bounds the rendered table (default: server's Top).
	Top int `json:"top,omitempty"`
}

// CausalResponse carries the speedup curves, impact ranking, and rendered
// table for one causal-profiling run.
type CausalResponse struct {
	ReportID    string         `json:"report_id"`
	Workload    string         `json:"workload"`
	Granularity string         `json:"granularity"`
	Speedups    []float64      `json:"speedups"` // fractions, ascending
	Baseline    int64          `json:"baseline_wall_ticks"`
	Budget      int64          `json:"budget_ticks"`
	Capped      bool           `json:"capped"`
	Experiments int            `json:"experiments"`
	Curves      []causal.Curve `json:"curves"`
	Render      string         `json:"render"`
	// Cached is true when this reply was served from the memo cache.
	Cached bool `json:"cached"`
}

// Causal runs (or recalls) one causal-profiling sweep. Exported so the CLI
// and harness can drive it without HTTP plumbing.
func (s *Server) Causal(req CausalRequest) (*CausalResponse, int, error) {
	return s.CausalContext(context.Background(), req)
}

// CausalContext is Causal with cooperative cancellation: the context gates
// the worker-pool slot wait, the in-flight dedup wait, and every
// virtual-speedup experiment (the VM polls it at a tick-free alarm). A
// canceled sweep reports StatusClientClosedRequest and is not memoized.
//
// The tick VM is deterministic, so a workload's sweep is a pure function of
// the request; results are memoized by (workload, options) and repeated
// requests are cache hits.
func (s *Server) CausalContext(ctx context.Context, req CausalRequest) (*CausalResponse, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Value(admittedKey{}) == nil {
		done, err := s.beginRequest()
		if err != nil {
			return nil, statusFor(err), err
		}
		defer done()
	}
	if req.Workload == "" {
		return nil, http.StatusBadRequest, withCode(CodeBadRequest, fmt.Errorf("workload is required"))
	}
	gran, err := causal.ParseGranularity(req.Granularity)
	if err != nil {
		s.m.causal.With("error").Inc()
		return nil, http.StatusBadRequest, withCode(CodeBadRequest, err)
	}
	var speedups []float64
	for _, p := range req.Speedups {
		if p <= 0 || p >= 100 {
			s.m.causal.With("error").Inc()
			return nil, http.StatusBadRequest, withCode(CodeBadRequest,
				fmt.Errorf("speedup percentage %v outside (0,100)", p))
		}
		speedups = append(speedups, p/100)
	}
	top := req.Top
	if top <= 0 {
		top = s.top
	}

	key := causalMemoKey(req.Workload, gran, speedups, req.Funcs, top)
	return s.causalEP.run(ctx, req.Workload, key, func(ctx context.Context) (*CausalResponse, int, error) {
		return s.computeCausal(ctx, req.Workload, gran, speedups, req.Funcs, top, key)
	})
}

func (s *Server) computeCausal(ctx context.Context, workload string, gran causal.Granularity, speedups []float64, funcs []string, top int, key string) (*CausalResponse, int, error) {
	release, err := s.acquireCtx(ctx)
	if err != nil {
		return nil, statusFor(err), err
	}
	defer release()

	rr, ok := s.resolver.(RunnableResolver)
	if !ok {
		return nil, http.StatusNotFound, withCode(CodeNotFound,
			fmt.Errorf("resolver cannot provide runnable workloads"))
	}
	prog, cfg, err := rr.Runnable(workload)
	if err != nil {
		return nil, http.StatusNotFound, withCode(CodeNotFound,
			fmt.Errorf("runnable workload %q: %w", workload, err))
	}
	rep, err := causal.Run(ctx, prog, cfg, causal.Options{
		Speedups:    speedups,
		Granularity: gran,
		Funcs:       funcs,
		Workers:     s.params.Workers,
	})
	if err != nil {
		if ctx.Err() != nil {
			cerr := cancelErr(ctx.Err())
			return nil, statusFor(cerr), cerr
		}
		return nil, http.StatusBadRequest, withCode(CodeBadRequest,
			fmt.Errorf("causal sweep of %q: %w", workload, err))
	}
	return &CausalResponse{
		ReportID:    "c-" + key[:16],
		Workload:    workload,
		Granularity: string(rep.Granularity),
		Speedups:    rep.Speedups,
		Baseline:    rep.BaselineWall,
		Budget:      rep.Budget,
		Capped:      rep.Capped,
		Experiments: rep.Experiments,
		Curves:      rep.Curves,
		Render:      causal.Render(rep, top),
	}, http.StatusOK, nil
}

// causalMemoKey hashes the exact sweep inputs. Programs are resolved by
// name from static registries and the VM is deterministic, so the request
// fields fully determine the result.
func causalMemoKey(workload string, gran causal.Granularity, speedups []float64, funcs []string, top int) string {
	h := sha256.New()
	fmt.Fprintf(h, "causal\x00%s\x00%s\x00%d\x00", workload, gran, top)
	for _, p := range speedups {
		fmt.Fprintf(h, "s:%v\x00", p)
	}
	for _, fn := range funcs {
		fmt.Fprintf(h, "f:%s\x00", fn)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RootRank scans the impact ranking for fn; 0 means not ranked.
func (r *CausalResponse) RootRank(fn string) int {
	for i, c := range r.Curves {
		if c.Name == fn {
			return i + 1
		}
	}
	return 0
}
