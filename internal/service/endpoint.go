package service

// endpoint is the compute-endpoint chassis shared by diagnose and causal
// (and any future memoized analysis route): one result memo keyed by the
// exact request inputs, single-flight dedup of identical concurrent
// requests, typed-error outcome counting (including 499-on-cancel), a
// computed-only duration histogram, and the "<name> computed"/"<name>
// failed" log lines. The per-endpoint differences — how a memo hit is
// decorated, what a fresh result must update, which attributes the computed
// log line carries — are hooks, so both endpoints keep byte-identical HTTP
// behavior while sharing one implementation.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"vprof/internal/obs"
)

// endpoint owns the memo + single-flight machinery for one compute route.
// All maps are guarded by the server's mu.
type endpoint[T any] struct {
	s        *Server
	name     string          // log-line prefix: "diagnose", "causal"
	requests *obs.CounterVec // per-outcome counter for this route
	memoHits *obs.Counter
	duration *obs.Histogram // wall time of computed (non-memoized) results

	memo     map[string]*T
	inflight map[string]chan struct{}

	// onHit decorates a memoized result for return (mark Cached, bump
	// endpoint-specific hit counters). Must copy, never mutate the memo.
	onHit func(*T) *T
	// onStore indexes a freshly computed result under the server lock
	// (e.g. the diagnose report registry). May be nil.
	onStore func(*T)
	// finish decorates a computed result for return and supplies the
	// middle attributes of the "<name> computed" log line.
	finish func(*T) (*T, []any)
}

func newEndpoint[T any](s *Server, name string, requests *obs.CounterVec, memoHits *obs.Counter, duration *obs.Histogram) *endpoint[T] {
	return &endpoint[T]{
		s:        s,
		name:     name,
		requests: requests,
		memoHits: memoHits,
		duration: duration,
		memo:     map[string]*T{},
		inflight: map[string]chan struct{}{},
	}
}

// run serves one request: memo fast path, single-flight wait (aborted by
// ctx with the typed cancel error), else compute — memoizing on success,
// counting the outcome either way.
func (e *endpoint[T]) run(ctx context.Context, workload, key string, compute func(context.Context) (*T, int, error)) (*T, int, error) {
	for {
		e.s.mu.Lock()
		if resp, ok := e.memo[key]; ok {
			e.s.mu.Unlock()
			e.memoHits.Inc()
			e.requests.With("cached").Inc()
			return e.onHit(resp), http.StatusOK, nil
		}
		ch, busy := e.inflight[key]
		if !busy {
			ch = make(chan struct{})
			e.inflight[key] = ch
			e.s.mu.Unlock()
			break
		}
		e.s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			cerr := cancelErr(ctx.Err())
			e.requests.With(outcomeFor(cerr)).Inc()
			return nil, statusFor(cerr), cerr
		}
	}
	start := time.Now()
	resp, status, err := e.computeGuarded(ctx, key, compute)
	e.s.mu.Lock()
	if err == nil {
		e.memo[key] = resp
		if e.onStore != nil {
			e.onStore(resp)
		}
	}
	ch := e.inflight[key]
	delete(e.inflight, key)
	e.s.mu.Unlock()
	close(ch)
	if err != nil {
		e.requests.With(outcomeFor(err)).Inc()
		e.s.log.Warn(e.name+" failed", "workload", workload, "status", status, "err", err)
		return nil, status, err
	}
	e.requests.With("computed").Inc()
	e.duration.Observe(time.Since(start).Seconds())
	out, attrs := e.finish(resp)
	args := append([]any{"workload", workload}, attrs...)
	args = append(args, "duration", time.Since(start))
	e.s.log.Info(e.name+" computed", args...)
	return out, http.StatusOK, nil
}

// computeGuarded protects the single-flight entry against panics: whatever
// happens, waiters on this key are released and the key freed for the next
// attempt before the panic continues up to the recovery middleware.
func (e *endpoint[T]) computeGuarded(ctx context.Context, key string, compute func(context.Context) (*T, int, error)) (resp *T, status int, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.s.mu.Lock()
			ch := e.inflight[key]
			delete(e.inflight, key)
			e.s.mu.Unlock()
			if ch != nil {
				close(ch)
			}
			panic(p)
		}
	}()
	return compute(ctx)
}

// handleJSON is the HTTP shim every JSON compute endpoint shares: bounded
// request decode (400 on garbage), typed-error rendering with Retry-After
// on backpressure statuses, and the 200 envelope.
func handleJSON[Req any](serve func(context.Context, Req) (any, int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "decode request: %v", err)
			return
		}
		resp, status, err := serve(r.Context(), req)
		if err != nil {
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", retryAfterSeconds)
			}
			writeErr(w, status, errCode(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}
