// Package causal runs COZ-style virtual-speedup experiments on the
// deterministic tick VM: re-execute a workload with one candidate's cost
// scaled down by a sweep of speedup factors and measure the end-to-end
// runtime delta, producing "optimizing f by p% yields q% speedup" curves
// and an impact ranking.
//
// Where the original COZ perturbs a live execution with sampling-based
// delays (and therefore reports noisy estimates), the deterministic VM
// makes every experiment exact and byte-for-byte reproducible: the
// experiment schedule is a pure function of the workload and candidate
// set — no wall clock, no RNG — so results are cacheable and identical at
// any worker count.
//
// Two granularities are supported:
//
//   - GranBlock scales the ticks charged at PCs inside one basic block
//     (classic COZ attribution: "this code runs faster"). The Table 2
//     COZ baseline (internal/baselines) runs on this engine.
//   - GranFunc scales every tick charged while the candidate function is
//     on the call stack (inclusive attribution: "optimizing f, including
//     the work it delegates, shrinks its whole dynamic extent"). This is
//     the mode that answers the developer's question for the paper's
//     bugs, where a cheap root-cause function drives a costly callee.
package causal

import (
	"context"
	"errors"

	"vprof/internal/compiler"
	"vprof/internal/vm"
)

// Span is a half-open PC range [Start, End).
type Span struct {
	Start, End int
}

// SpanScaler returns a vm.Config.CostScale hook that rescales every tick
// charged at a PC inside any span by factor, leaving other PCs untouched.
// The arithmetic (int64(float64(cost)*factor)) is the one the hand-rolled
// COZ baseline always used, so rewired callers stay byte-for-byte.
func SpanScaler(spans []Span, factor float64) func(pc int, cost int64) int64 {
	return func(pc int, cost int64) int64 {
		for _, s := range spans {
			if pc >= s.Start && pc < s.End {
				return int64(float64(cost) * factor)
			}
		}
		return cost
	}
}

// RootCPUTicks runs only the root process — the view COZ's single-process
// runtime has (it does not follow forks) — and returns its CPU tick count.
// Budget exhaustion is not an error: the measured time stands, exactly as
// an operator killing a hung run keeps the profile gathered so far.
func RootCPUTicks(prog *compiler.Program, cfg vm.Config) int64 {
	m := vm.New(prog, cfg)
	_ = m.Run()
	t := m.Ticks()
	m.Recycle()
	return t
}

// Measurement is the end-to-end outcome of one experiment run.
type Measurement struct {
	// CPU and Wall are tick totals summed over the whole process tree
	// (wall = CPU + off-CPU blocked time).
	CPU, Wall int64
	// Capped reports that at least one process exhausted its tick budget,
	// so Wall is a floor, not the true runtime.
	Capped bool
}

// cancelCheckInterval is how often (in ticks) an experiment polls its
// context. Alarms consume no ticks, so the poll never perturbs the
// measured runtime.
const cancelCheckInterval = 4096

// MeasureTree executes prog's full process tree under cfg and measures
// end-to-end runtime. A cancelable ctx is polled at a tick-free alarm so a
// canceled caller aborts mid-experiment; the partial measurement is then
// meaningless and ctx.Err() is returned.
func MeasureTree(ctx context.Context, prog *compiler.Program, cfg vm.Config) (Measurement, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil && cfg.OnAlarm == nil {
		cfg.AlarmInterval = cancelCheckInterval
		cfg.OnAlarm = func(m *vm.VM) {
			if err := ctx.Err(); err != nil {
				m.Interrupt(err)
			}
		}
	}
	var m Measurement
	for _, p := range vm.RunProcesses(prog, func(int) vm.Config { return cfg }) {
		m.CPU += p.VM.Ticks()
		m.Wall += p.VM.WallTicks()
		if errors.Is(p.Err, vm.ErrTicksExceeded) {
			m.Capped = true
		}
		// Experiments run by the thousand; recycling the arenas keeps
		// per-experiment allocation flat.
		p.VM.Recycle()
	}
	if err := ctx.Err(); err != nil {
		return Measurement{}, err
	}
	return m, nil
}
