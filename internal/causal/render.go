package causal

import (
	"fmt"
	"strings"
)

// Render formats the impact ranking as a fixed-width table, one row per
// candidate, limited to the top n curves (n <= 0 means all). Output is a
// pure function of the report, so goldens can gate it byte-for-byte.
func Render(r *Report, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "causal profile (%s granularity): baseline %d wall ticks, %d experiments",
		r.Granularity, r.BaselineWall, r.Experiments)
	if r.Capped {
		fmt.Fprintf(&b, " [baseline capped at %d-tick budget]", r.Budget)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%4s  %-28s %9s  %s\n", "rank", "candidate", "impact", "speedup curve")
	n := len(r.Curves)
	if top > 0 && top < n {
		n = top
	}
	for i := 0; i < n; i++ {
		c := &r.Curves[i]
		fmt.Fprintf(&b, "%4d  %-28s %8.1f%%  %s\n", i+1, c.Name, c.Impact*100, sparkline(c))
	}
	if n < len(r.Curves) {
		fmt.Fprintf(&b, "      ... %d more candidates\n", len(r.Curves)-n)
	}
	return b.String()
}

// RenderCurve formats one candidate's full speedup curve, one experiment
// per line with a proportional bar — the "optimizing %s by p%% yields q%%
// end-to-end speedup" view.
func RenderCurve(c *Curve) string {
	var b strings.Builder
	loc := ""
	if c.File != "" {
		loc = fmt.Sprintf(" (%s:%d)", c.File, c.Line)
	}
	fmt.Fprintf(&b, "%s%s\n", c.Name, loc)
	for i := range c.Points {
		p := &c.Points[i]
		capped := ""
		if p.Capped {
			capped = " [capped]"
		}
		fmt.Fprintf(&b, "  optimize %3.0f%% -> %+6.1f%% end-to-end  %s%s\n",
			p.Speedup*100, p.Delta*100, bar(p.Delta), capped)
	}
	return b.String()
}

// sparkline compresses a curve into one glyph per point for table rows.
func sparkline(c *Curve) string {
	glyphs := []rune("._-=*#")
	out := make([]rune, len(c.Points))
	for i := range c.Points {
		d := c.Points[i].Delta
		switch {
		case d <= 0:
			out[i] = glyphs[0]
		case d >= 1:
			out[i] = glyphs[len(glyphs)-1]
		default:
			out[i] = glyphs[1+int(d*float64(len(glyphs)-2))]
		}
	}
	return string(out)
}

// bar draws a 40-column proportional bar for one curve point.
func bar(delta float64) string {
	if delta <= 0 {
		return ""
	}
	if delta > 1 {
		delta = 1
	}
	return strings.Repeat("#", int(delta*40+0.5))
}
