package causal_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"vprof/internal/causal"
	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/vm"
)

func compile(t *testing.T, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// twoPhase spends ~80% of its time under hot and ~20% under cold, with a
// cheap driver delegating to both.
const twoPhase = `
func hot() { work(8000); return 0; }
func cold() { work(5000); return 0; }
func driver() {
  var i = 0;
  while (i < 5) { hot(); i = i + 1; }
  cold(); cold();
}
func main() { driver(); }`

func TestRunFuncGranularity(t *testing.T) {
	p := compile(t, twoPhase)
	rep, err := causal.Run(context.Background(), p, vm.Config{}, causal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Granularity != causal.GranFunc {
		t.Fatalf("granularity = %q", rep.Granularity)
	}
	if rep.Capped {
		t.Fatal("unexpected capped baseline")
	}
	if got, want := rep.Experiments, len(rep.Curves)*len(causal.DefaultSpeedups)+1; got != want {
		t.Fatalf("experiments = %d, want %d", got, want)
	}
	byName := map[string]causal.Curve{}
	for _, c := range rep.Curves {
		byName[c.Name] = c
	}
	hot, ok := byName["hot"]
	if !ok {
		t.Fatalf("no curve for hot; have %v", names(rep))
	}
	cold := byName["cold"]
	// hot is ~40k of ~50k ticks: its 95% point should approach 0.76.
	if hot.Impact < 0.7 || hot.Impact > 0.8 {
		t.Errorf("hot impact = %v, want ~0.76", hot.Impact)
	}
	if cold.Impact > hot.Impact {
		t.Errorf("cold impact %v > hot impact %v", cold.Impact, hot.Impact)
	}
	if rep.Curves[0].Name != "hot" {
		t.Errorf("top-ranked = %s, want hot", rep.Curves[0].Name)
	}
	// Curves are monotone in the speedup factor for this workload.
	for i := 1; i < len(hot.Points); i++ {
		if hot.Points[i].Delta < hot.Points[i-1].Delta {
			t.Errorf("hot curve not monotone at %d: %+v", i, hot.Points)
		}
	}
	// driver is a pure delegator: the exclusive-share gate drops it.
	if _, ok := byName["driver"]; ok {
		t.Error("driver passed the own-share gate despite delegating everything")
	}
}

func TestOwnShareGateBypass(t *testing.T) {
	p := compile(t, twoPhase)
	rep, err := causal.Run(context.Background(), p, vm.Config{}, causal.Options{
		Funcs: []string{"driver"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 1 || rep.Curves[0].Name != "driver" {
		t.Fatalf("curves = %v, want [driver]", names(rep))
	}
	// Inclusive scaling of driver's whole extent removes nearly everything.
	if rep.Curves[0].Impact < 0.9 {
		t.Errorf("driver inclusive impact = %v, want ~0.95", rep.Curves[0].Impact)
	}
	// A disabled gate admits every function.
	all, err := causal.Run(context.Background(), p, vm.Config{}, causal.Options{MinOwnShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Curves) != 4 {
		t.Fatalf("ungated curves = %v, want 4 functions", names(all))
	}
}

func TestRunBlockGranularity(t *testing.T) {
	p := compile(t, twoPhase)
	rep, err := causal.Run(context.Background(), p, vm.Config{}, causal.Options{
		Granularity: causal.GranBlock,
		Speedups:    []float64{0.5, 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) == 0 {
		t.Fatal("no block curves")
	}
	top := rep.Curves[0]
	if !strings.HasPrefix(top.Name, "hot@") {
		t.Errorf("top block = %s, want a hot block", top.Name)
	}
	for _, c := range rep.Curves {
		if !strings.Contains(c.Name, "@") {
			t.Errorf("block curve name %q lacks func@label form", c.Name)
		}
		if len(c.Points) != 2 {
			t.Errorf("%s: %d points, want 2", c.Name, len(c.Points))
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	p := compile(t, twoPhase)
	cfg := vm.Config{Seed: 42}
	var reports []*causal.Report
	for _, workers := range []int{1, 8, 1} {
		rep, err := causal.Run(context.Background(), p, cfg, causal.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("report %d differs from report 0", i)
		}
	}
	a, _ := json.Marshal(reports[0])
	b, _ := json.Marshal(reports[1])
	if string(a) != string(b) {
		t.Fatal("workers=1 vs workers=8 reports not byte-for-byte identical")
	}
}

func TestRunCancellation(t *testing.T) {
	p := compile(t, twoPhase)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := causal.Run(done, p, vm.Config{}, causal.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestRunCancellationMidExperiment(t *testing.T) {
	// A long workload whose experiments are individually slow enough that
	// cancellation lands mid-run; the VM polls the context at a tick-free
	// alarm, so Run must return promptly with context.Canceled.
	p := compile(t, `
func grind() { var i = 0; while (i < 2000) { work(1000); i = i + 1; } return 0; }
func main() { grind(); }`)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Workers: 4})
		errc <- err
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}

func TestRunValidation(t *testing.T) {
	p := compile(t, twoPhase)
	ctx := context.Background()
	if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Speedups: []float64{1.5}}); err == nil {
		t.Error("speedup 1.5 accepted")
	}
	if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Speedups: []float64{0}}); err == nil {
		t.Error("speedup 0 accepted")
	}
	if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Granularity: "line"}); err == nil {
		t.Error("granularity line accepted")
	}
	if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Funcs: []string{"nope"}}); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{BudgetMultiplier: -1}); err == nil {
		t.Error("negative budget multiplier accepted")
	}
	if _, err := causal.Run(ctx, nil, vm.Config{}, causal.Options{}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := causal.ParseGranularity("word"); err == nil {
		t.Error("ParseGranularity accepted junk")
	}
	if g, err := causal.ParseGranularity(""); err != nil || g != causal.GranFunc {
		t.Errorf("ParseGranularity(\"\") = %v, %v", g, err)
	}
}

func TestSpanScalerMatchesCozArithmetic(t *testing.T) {
	s := causal.SpanScaler([]causal.Span{{Start: 10, End: 20}}, 0.5)
	if got := s(15, 7); got != 3 {
		t.Errorf("in-span: got %d, want 3", got)
	}
	if got := s(9, 7); got != 7 {
		t.Errorf("out-of-span: got %d, want 7", got)
	}
	if got := s(20, 7); got != 7 {
		t.Errorf("end is exclusive: got %d, want 7", got)
	}
}

func TestBudgetEscalation(t *testing.T) {
	// A workload that caps at the 4x budget but completes under the
	// escalated one: ~100k ticks with a 10k configured budget (4x = 40k,
	// escalated = 400k).
	p := compile(t, `
func slow() { work(100000); return 0; }
func main() { slow(); }`)
	rep, err := causal.Run(context.Background(), p, vm.Config{MaxTicks: 10_000}, causal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capped {
		t.Fatal("escalation did not lift the cap")
	}
	if rep.Budget != 400_000 {
		t.Errorf("budget = %d, want 400000", rep.Budget)
	}
	// A genuinely unbounded workload stays capped at the original budget.
	inf := compile(t, `
func spin() { var i = 0; while (i < 2) { i = 0; } return 0; }
func main() { spin(); }`)
	rep, err = causal.Run(context.Background(), inf, vm.Config{MaxTicks: 10_000}, causal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Capped {
		t.Fatal("infinite loop not reported as capped")
	}
	if rep.Budget != 40_000 {
		t.Errorf("budget = %d, want 40000 (no escalation kept)", rep.Budget)
	}
	for _, c := range rep.Curves {
		if c.Impact != 0 {
			t.Errorf("%s: nonzero impact %v on an unbounded workload", c.Name, c.Impact)
		}
	}
}

func names(r *causal.Report) []string {
	var out []string
	for _, c := range r.Curves {
		out = append(out, c.Name)
	}
	return out
}

// BenchmarkCausalSweep measures one full func-granularity sweep (default
// factors) over the twoPhase program.
func BenchmarkCausalSweep(b *testing.B) {
	f, err := lang.Parse("t.vp", twoPhase)
	if err != nil {
		b.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := causal.Run(ctx, p, vm.Config{}, causal.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
