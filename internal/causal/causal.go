package causal

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"vprof/internal/compiler"
	"vprof/internal/parallel"
	"vprof/internal/vm"
)

// Granularity selects what a virtual-speedup experiment scales.
type Granularity string

const (
	// GranFunc scales a function's whole dynamic extent (inclusive).
	GranFunc Granularity = "func"
	// GranBlock scales one basic block's PC span (exclusive, COZ-style).
	GranBlock Granularity = "block"
)

// ParseGranularity validates a user-supplied granularity string.
func ParseGranularity(s string) (Granularity, error) {
	switch Granularity(s) {
	case GranFunc, GranBlock:
		return Granularity(s), nil
	case "":
		return GranFunc, nil
	}
	return "", fmt.Errorf("unknown granularity %q (want func or block)", s)
}

// DefaultSpeedups is the standard sweep: the fraction of the candidate's
// cost removed in each experiment.
var DefaultSpeedups = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95}

// DefaultBudgetMultiplier stretches the workload's tick budget for
// experiment runs. Several reproduced issues are configured to hit their
// budget (that is the bug); with the budget also capping every perturbed
// run, no experiment could measure a delta. Running experiments under a
// generous multiple of the configured budget lets slowdowns that finish
// late — rather than never — differentiate.
const DefaultBudgetMultiplier = 4

// budgetEscalation is the one-shot extra stretch applied when the
// baseline still exhausts the multiplied budget: the budget grows by this
// factor and the baseline is re-measured once. If the escalated baseline
// completes (a very slow but finite workload), experiments run under the
// escalated budget; if it still caps (a genuinely unbounded workload,
// e.g. an infinite loop), the original budget is kept and the report's
// Capped flag records that no virtual speedup can be measured.
const budgetEscalation = 10

// DefaultMinOwnShare gates experiment candidates on measured exclusive
// CPU time: a candidate must account for at least this fraction of the
// baseline's CPU ticks at its own PCs. This mirrors COZ, which only runs
// experiments on lines where profile samples actually land — a pure
// delegator (main, thin wrappers) executes almost no instructions of its
// own, and "optimizing" it is not an actionable experiment: its inclusive
// impact merely restates its callees'.
const DefaultMinOwnShare = 0.002

// Options configures a causal profiling run.
type Options struct {
	// Speedups are the virtual-speedup fractions to sweep, each in (0,1).
	// They are sorted and deduplicated; empty means DefaultSpeedups.
	Speedups []float64
	// Granularity selects func (inclusive) or block (exclusive) scaling.
	// Empty means GranFunc.
	Granularity Granularity
	// Funcs optionally restricts candidates to the named functions.
	Funcs []string
	// Workers bounds experiment parallelism (see parallel.Workers).
	Workers int
	// BudgetMultiplier stretches cfg.MaxTicks (and MaxWallTicks) for
	// experiment runs; 0 means DefaultBudgetMultiplier, 1 disables.
	BudgetMultiplier int
	// MinOwnShare gates candidates on exclusive CPU share measured from
	// the baseline run; 0 means DefaultMinOwnShare, negative disables
	// the gate. Functions named in Funcs bypass the gate.
	MinOwnShare float64
}

// Point is one experiment outcome on a candidate's speedup curve.
type Point struct {
	// Speedup is the fraction of the candidate's cost virtually removed.
	Speedup float64 `json:"speedup"`
	// Wall is the measured end-to-end wall-tick total of the process tree.
	Wall int64 `json:"wall"`
	// Delta is the resulting program speedup: (baseline-Wall)/baseline.
	Delta float64 `json:"delta"`
	// Capped marks an experiment run that exhausted its tick budget.
	Capped bool `json:"capped,omitempty"`
}

// Curve is one candidate's full speedup curve.
type Curve struct {
	// Name is the function name, or "func@label" at block granularity.
	Name string `json:"name"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	// Points holds one entry per sweep factor, ascending by Speedup.
	Points []Point `json:"points"`
	// Impact is the program speedup at the most aggressive factor — the
	// causal answer to "how much does optimizing this buy end to end?".
	Impact float64 `json:"impact"`
	// OwnShare is the candidate's exclusive CPU share in the baseline
	// run (the gate that admitted it as a candidate).
	OwnShare float64 `json:"own_share"`
}

// Report is the result of a causal profiling run.
type Report struct {
	Granularity Granularity `json:"granularity"`
	Speedups    []float64   `json:"speedups"`
	// BaselineWall/BaselineCPU are the unperturbed process-tree totals.
	BaselineWall int64 `json:"baseline_wall"`
	BaselineCPU  int64 `json:"baseline_cpu"`
	// Budget is the per-process tick budget experiments ran under
	// (after any one-shot escalation of a capped baseline).
	Budget int64 `json:"budget"`
	// MinOwnShare is the exclusive-CPU-share gate candidates had to pass.
	MinOwnShare float64 `json:"min_own_share"`
	// Capped marks a baseline that exhausted the budget: deltas then
	// measure escape from the cap, not true runtime, and curves for a
	// genuinely unbounded workload are all-zero.
	Capped bool `json:"capped,omitempty"`
	// Experiments counts VM executions (baseline + one per point).
	Experiments int `json:"experiments"`
	// Curves is every candidate's curve, ranked by Impact descending
	// (ties broken by name) — the impact ranking.
	Curves []Curve `json:"curves"`
}

// candidate is one schedulable experiment target.
type candidate struct {
	name     string
	file     string
	line     int
	ownShare float64
	marked   []bool // func granularity: function-index flags
	span     Span   // block granularity: PC range
}

// Run executes the full experiment schedule for prog under cfg and returns
// the speedup curves and impact ranking.
//
// The schedule is deterministic: candidates are enumerated in text order
// from the program's debug info, factors are sorted ascending, and the
// flat candidate×factor job list is merged back in index order, so the
// report is byte-for-byte identical at any worker count and across runs.
// Run owns cfg's scaling hooks (CostScale, ScaleStack); any caller-set
// value is overwritten per experiment.
func Run(ctx context.Context, prog *compiler.Program, cfg vm.Config, opts Options) (*Report, error) {
	if prog == nil || prog.Debug == nil {
		return nil, fmt.Errorf("causal: program has no debug info")
	}
	gran := opts.Granularity
	if gran == "" {
		gran = GranFunc
	}
	if gran != GranFunc && gran != GranBlock {
		return nil, fmt.Errorf("causal: unknown granularity %q", gran)
	}
	speedups, err := normalizeSpeedups(opts.Speedups)
	if err != nil {
		return nil, err
	}

	mult := opts.BudgetMultiplier
	if mult == 0 {
		mult = DefaultBudgetMultiplier
	}
	if mult < 1 {
		return nil, fmt.Errorf("causal: budget multiplier %d < 1", mult)
	}
	if cfg.MaxTicks > 0 {
		cfg.MaxTicks *= int64(mult)
	}
	if cfg.MaxWallTicks > 0 {
		cfg.MaxWallTicks *= int64(mult)
	}
	cfg.CostScale = nil
	cfg.ScaleStack = nil
	cfg.ScaleSpan = nil

	// The baseline run doubles as the exclusive-time profile: an identity
	// CostScale hook sees every (pc, cost) charge without altering it.
	measureBaseline := func(c vm.Config) (Measurement, []int64, int64, error) {
		excl := make([]int64, len(prog.Instrs))
		var total int64
		c.CostScale = func(pc int, cost int64) int64 {
			if pc >= 0 && pc < len(excl) {
				excl[pc] += cost
			}
			total += cost
			return cost
		}
		m, err := MeasureTree(ctx, prog, c)
		return m, excl, total, err
	}
	base, excl, totalCPU, err := measureBaseline(cfg)
	if err != nil {
		return nil, err
	}
	if base.Capped {
		// One escalation attempt separates "very slow but finite" from
		// "unbounded": only a completed escalated baseline is kept.
		ecfg := cfg
		if ecfg.MaxTicks > 0 {
			ecfg.MaxTicks *= budgetEscalation
		}
		if ecfg.MaxWallTicks > 0 {
			ecfg.MaxWallTicks *= budgetEscalation
		}
		ebase, eexcl, etotal, err := measureBaseline(ecfg)
		if err != nil {
			return nil, err
		}
		if !ebase.Capped {
			cfg, base, excl, totalCPU = ecfg, ebase, eexcl, etotal
		}
	}

	minShare := opts.MinOwnShare
	if minShare == 0 {
		minShare = DefaultMinOwnShare
	}
	cands, err := candidates(prog, gran, opts.Funcs, excl, totalCPU, minShare)
	if err != nil {
		return nil, err
	}

	// Flat candidate×factor schedule, fanned out with index-ordered merge.
	type job struct {
		cand    int
		speedup float64
	}
	jobs := make([]job, 0, len(cands)*len(speedups))
	for ci := range cands {
		for _, p := range speedups {
			jobs = append(jobs, job{cand: ci, speedup: p})
		}
	}
	points, err := parallel.MapErrCtx(ctx, opts.Workers, len(jobs), func(i int) (Point, error) {
		j := jobs[i]
		c := cands[j.cand]
		factor := 1 - j.speedup
		ecfg := cfg
		if gran == GranFunc {
			ecfg.ScaleStack = &vm.StackScale{Marked: c.marked, Factor: factor}
		} else {
			ecfg.ScaleSpan = &vm.SpanScale{Start: c.span.Start, End: c.span.End, Factor: factor}
		}
		m, err := MeasureTree(ctx, prog, ecfg)
		if err != nil {
			return Point{}, err
		}
		pt := Point{Speedup: j.speedup, Wall: m.Wall, Capped: m.Capped}
		if base.Wall > 0 {
			pt.Delta = float64(base.Wall-m.Wall) / float64(base.Wall)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	curves := make([]Curve, len(cands))
	for ci, c := range cands {
		cv := Curve{Name: c.name, File: c.file, Line: c.line, OwnShare: c.ownShare}
		cv.Points = points[ci*len(speedups) : (ci+1)*len(speedups)]
		cv.Impact = cv.Points[len(cv.Points)-1].Delta
		curves[ci] = cv
	}
	sort.SliceStable(curves, func(i, j int) bool {
		if curves[i].Impact != curves[j].Impact {
			return curves[i].Impact > curves[j].Impact
		}
		return curves[i].Name < curves[j].Name
	})

	budget := cfg.MaxTicks
	if budget == 0 {
		// The VM applies its own default cap when no budget is configured;
		// report the limit runs actually executed under.
		budget = vm.DefaultMaxTicks
	}
	return &Report{
		Granularity:  gran,
		Speedups:     speedups,
		BaselineWall: base.Wall,
		BaselineCPU:  base.CPU,
		Budget:       budget,
		MinOwnShare:  minShare,
		Capped:       base.Capped,
		Experiments:  len(jobs) + 1,
		Curves:       curves,
	}, nil
}

// normalizeSpeedups sorts, deduplicates, and validates the sweep.
func normalizeSpeedups(in []float64) ([]float64, error) {
	if len(in) == 0 {
		in = DefaultSpeedups
	}
	out := make([]float64, 0, len(in))
	for _, p := range in {
		if math.IsNaN(p) || p <= 0 || p >= 1 {
			return nil, fmt.Errorf("causal: speedup %v outside (0,1)", p)
		}
		out = append(out, p)
	}
	sort.Float64s(out)
	uniq := out[:1]
	for _, p := range out[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq, nil
}

// candidates enumerates experiment targets in text order, skipping library
// code (no experiments outside the profiled executable, matching the
// paper's gprof blind spot discussion) and synthetic shims, and gating on
// exclusive CPU share from the baseline profile (excl, totalCPU) unless
// the function was explicitly requested.
func candidates(prog *compiler.Program, gran Granularity, only []string, excl []int64, totalCPU int64, minShare float64) ([]candidate, error) {
	var want map[string]bool
	if len(only) > 0 {
		want = make(map[string]bool, len(only))
		for _, n := range only {
			want[n] = true
		}
	}
	share := func(start, end int) float64 {
		if totalCPU <= 0 {
			return 0
		}
		var own int64
		for pc := start; pc < end && pc < len(excl); pc++ {
			own += excl[pc]
		}
		return float64(own) / float64(totalCPU)
	}
	var cands []candidate
	for fi := range prog.Debug.Funcs {
		fr := &prog.Debug.Funcs[fi]
		if fr.Library || strings.HasPrefix(fr.Name, "__") {
			continue
		}
		if want != nil && !want[fr.Name] {
			continue
		}
		requested := want != nil
		if requested {
			delete(want, fr.Name)
		}
		switch gran {
		case GranFunc:
			fn := prog.FuncNamed(fr.Name)
			if fn == nil {
				continue
			}
			s := share(fr.Entry, fr.End)
			if s < minShare && !requested {
				continue
			}
			marked := make([]bool, len(prog.Funcs))
			marked[fn.Index] = true
			cands = append(cands, candidate{
				name:     fr.Name,
				file:     fr.File,
				line:     fr.DeclLine,
				ownShare: s,
				marked:   marked,
			})
		case GranBlock:
			for bi := range fr.Blocks {
				blk := &fr.Blocks[bi]
				s := share(blk.Start, blk.End)
				if s < minShare && !requested {
					continue
				}
				cands = append(cands, candidate{
					name:     fr.Name + "@" + blk.Label,
					file:     fr.File,
					line:     blk.Line,
					ownShare: s,
					span:     Span{Start: blk.Start, End: blk.End},
				})
			}
		}
	}
	for n := range want {
		return nil, fmt.Errorf("causal: unknown function %q", n)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("causal: no candidate functions")
	}
	return cands, nil
}
