package absint_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vprof/internal/absint"
	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/diag"
	"vprof/internal/lang"
)

var update = flag.Bool("update", false, "rewrite golden files")

func compileSrc(t testing.TB, file, src string) *compiler.Program {
	t.Helper()
	f, err := lang.Parse(file, src)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatalf("compile %s: %v", file, err)
	}
	return prog
}

// allWorkloads returns all 18 reproduced issues: the 15 resolved bugs plus
// the 3 unresolved (Table 4) ones.
func allWorkloads() []*bugs.Workload {
	return append(bugs.All(), bugs.UnresolvedIssues()...)
}

// checkPrograms enumerates every analyzer input the goldens cover: all
// testdata/*.vp programs plus the raw (noise-free) source of each of the 18
// reproduced bugs — and, for the three upgrade regressions with distinct
// patched sources, the patched variant as "<id>-normal".
func checkPrograms(t testing.TB) (names []string, progs map[string]*compiler.Program) {
	t.Helper()
	progs = map[string]*compiler.Program{}
	vps, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.vp"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(vps)
	for _, path := range vps {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".vp")
		names = append(names, name)
		progs[name] = compileSrc(t, filepath.Base(path), string(src))
	}
	for _, w := range allWorkloads() {
		file := w.SourceFile
		if file == "" {
			file = w.ID + ".vp"
		}
		names = append(names, w.ID)
		progs[w.ID] = compileSrc(t, file, w.Source)
		if w.NormalSource != "" {
			name := w.ID + "-normal"
			names = append(names, name)
			progs[name] = compileSrc(t, file, w.NormalSource)
		}
	}
	return names, progs
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// TestCheckGolden locks the checker's report for every program byte-for-byte.
func TestCheckGolden(t *testing.T) {
	names, progs := checkPrograms(t)
	for _, name := range names {
		got := absint.CheckProgram(progs[name]).Render()
		path := goldenPath(name)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create goldens)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: check output drifted\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}
}

// TestCheckDeterminism reruns the analyzer on fresh compilations and
// asserts byte-identical output: no map-iteration order or pointer identity
// may reach the report.
func TestCheckDeterminism(t *testing.T) {
	names, progs := checkPrograms(t)
	first := map[string]string{}
	for _, name := range names {
		first[name] = absint.CheckProgram(progs[name]).Render()
	}
	for round := 0; round < 3; round++ {
		_, again := checkPrograms(t)
		for _, name := range names {
			if got := absint.CheckProgram(again[name]).Render(); got != first[name] {
				t.Fatalf("round %d: %s output not deterministic\n--- first ---\n%s--- now ---\n%s",
					round, name, first[name], got)
			}
		}
	}
}

// TestCheckFlagsKnownBugs asserts the acceptance floor: the checker
// statically flags the known-inefficient pattern (a warning-severity
// finding) in at least 6 of the 18 reproduced issue programs.
func TestCheckFlagsKnownBugs(t *testing.T) {
	var flagged []string
	for _, w := range allWorkloads() {
		file := w.SourceFile
		if file == "" {
			file = w.ID + ".vp"
		}
		prog := compileSrc(t, file, w.Source)
		if absint.CheckProgram(prog).ExitCode() != 0 {
			flagged = append(flagged, w.ID)
		}
	}
	t.Logf("flagged %d/18: %v", len(flagged), flagged)
	if len(flagged) < 6 {
		t.Fatalf("checker flagged only %d of 18 bug programs (%v), want >= 6", len(flagged), flagged)
	}
}

// TestCheckCleanOnPatched asserts zero false positives on the patched
// variants: the three upgrade-regression workloads whose normal source
// differs from the buggy one must produce no warning-severity findings.
func TestCheckCleanOnPatched(t *testing.T) {
	for _, w := range allWorkloads() {
		if w.NormalSource == "" {
			continue
		}
		file := w.SourceFile
		if file == "" {
			file = w.ID + ".vp"
		}
		prog := compileSrc(t, file, w.NormalSource)
		rep := absint.CheckProgram(prog)
		var warns []diag.Finding
		for _, f := range rep.Findings {
			if f.Severity >= diag.SevWarn {
				warns = append(warns, f)
			}
		}
		if len(warns) > 0 {
			t.Errorf("%s patched variant has %d warning findings (want 0):\n%s",
				w.ID, len(warns), rep.Render())
		}
	}
}

// BenchmarkCheckAllBugs measures analyzer throughput over all 18 bug
// programs (compilation excluded).
func BenchmarkCheckAllBugs(b *testing.B) {
	var progs []*compiler.Program
	for _, w := range allWorkloads() {
		file := w.SourceFile
		if file == "" {
			file = w.ID + ".vp"
		}
		progs = append(progs, compileSrc(b, file, w.Source))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			absint.CheckProgram(p)
		}
	}
}
