package absint

import (
	"fmt"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/lang"
)

// widenDelay is how many joins a loop-head variable absorbs before the
// extrapolation to ±inf kicks in: one pass of plain joins keeps bounds like
// "i starts at 0" exact, widening then guarantees termination.
const widenDelay = 2

// narrowRounds bounds the descending (narrowing) iteration that claws back
// precision lost to widening. Narrow only improves sentinel bounds, so the
// sequence is finite regardless; two rounds settle the loop nests the
// structured compiler emits.
const narrowRounds = 2

// absVal is one abstract operand-stack value: its interval plus the
// provenance the checker rules and trip-count inference need.
type absVal struct {
	iv     Interval
	varID  int      // var id of an unmodified load, else -1 (drives refinement)
	depVar int      // single var the value is derived from, else -1
	sym    string   // symbolic display form ("n_rows", "input(0)", "row*3")
	stable bool     // derived only from constants and input(k): run-invariant
	cmp    *cmpExpr // set when the value is a comparison result
}

type cmpExpr struct {
	op   CmpOp
	x, y absVal
}

func topVal() absVal { return absVal{iv: Top(), varID: -1, depVar: -1} }

// state is the abstract machine state at a block boundary: one interval per
// cfa variable id plus the abstract operand stack (structured lowering
// keeps stack depth equal across join predecessors; short-circuit && / ||
// results cross block boundaries on it).
type state struct {
	vars  []Interval
	stack []absVal
}

func (s *state) clone() *state {
	n := &state{vars: make([]Interval, len(s.vars)), stack: make([]absVal, len(s.stack))}
	copy(n.vars, s.vars)
	copy(n.stack, s.stack)
	return n
}

func joinVal(a, b absVal) absVal {
	out := absVal{iv: Join(a.iv, b.iv), varID: -1, depVar: -1}
	if a.varID == b.varID {
		out.varID = a.varID
	}
	if a.depVar == b.depVar {
		out.depVar = a.depVar
	}
	if a.sym == b.sym {
		out.sym = a.sym
	}
	out.stable = a.stable && b.stable
	return out
}

// joinInto merges src into dst (dst may be nil = bottom), reporting change.
// widen applies the loop-head extrapolation on variable intervals.
func joinInto(dst *state, src *state, widen bool) (*state, bool) {
	if dst == nil {
		return src.clone(), true
	}
	changed := false
	for i := range dst.vars {
		var next Interval
		if widen {
			next = Widen(dst.vars[i], Join(dst.vars[i], src.vars[i]))
		} else {
			next = Join(dst.vars[i], src.vars[i])
		}
		if next != dst.vars[i] {
			dst.vars[i] = next
			changed = true
		}
	}
	if len(dst.stack) != len(src.stack) {
		// Unbalanced stacks cannot happen with the structured compiler;
		// degrade to an empty stack (pops read Top) rather than guess.
		if len(dst.stack) != 0 {
			dst.stack = nil
			changed = true
		}
		return dst, changed
	}
	for i := range dst.stack {
		j := joinVal(dst.stack[i], src.stack[i])
		if widen {
			j.iv = Widen(dst.stack[i].iv, j.iv)
		}
		if j != dst.stack[i] && (j.iv != dst.stack[i].iv || j.varID != dst.stack[i].varID ||
			j.depVar != dst.stack[i].depVar || j.sym != dst.stack[i].sym || j.stable != dst.stack[i].stable) {
			dst.stack[i] = j
			changed = true
		} else {
			// Comparison provenance does not survive joins.
			if dst.stack[i].cmp != nil {
				dst.stack[i].cmp = nil
			}
		}
	}
	return dst, changed
}

// workSite is one work()/block() builtin call with its abstract argument.
type workSite struct {
	PC      int
	Arg     absVal
	Blocked bool // block(n): wall time, not CPU ticks
}

// callSite is one OpCall with its abstract arguments (in parameter order).
type callSite struct {
	PC     int
	Callee int
	Args   []absVal
}

// blockFacts is what one final simulation pass records per basic block.
type blockFacts struct {
	Works     []workSite
	Calls     []callSite
	Branch    absVal // value popped by a terminal JZ/JNZ
	HasBranch bool
}

// FuncResult is the abstract interpretation of one function: block-entry
// states, per-loop trip bounds, and per-block/total cost polynomials.
type FuncResult struct {
	A     *cfa.FuncAnalysis
	In    []*state // nil = value-unreachable
	Facts []blockFacts
	// Bounds maps each loop's header block to its inferred trip bound.
	Bounds map[int]Bound
	// BlockCost is the single-execution cost bound per block, callee
	// costs included.
	BlockCost []Poly
	// Cost is the function's total static cost bound: block costs
	// composed through the loop nest.
	Cost Poly
}

// Reached reports whether block b is reachable at the value level (some
// feasible path gives it a non-bottom entry state).
func (r *FuncResult) Reached(b int) bool { return r.In[b] != nil }

// Analysis is the whole-program abstract interpretation.
type Analysis struct {
	Prog  *compiler.Program
	Funcs []*FuncResult // non-synthetic functions, program order

	byName      map[string]*FuncResult
	constGlobal map[int]int64 // global index -> program-wide constant value
	impure      map[int]bool  // func index -> may store a global (transitively)
	hoistable   map[int]bool  // func index -> pure, deterministic, global-free
}

// Result returns the analysis of the named function, nil when absent.
func (an *Analysis) Result(name string) *FuncResult { return an.byName[name] }

// AnalyzeProgram runs the abstract interpreter over every non-synthetic
// function of prog: interval fixpoints with widening/narrowing, loop trip
// bounds, and static cost polynomials composed bottom-up over the call
// graph. The result is deterministic: no map iteration order reaches any
// output.
func AnalyzeProgram(prog *compiler.Program) *Analysis {
	an := &Analysis{
		Prog:        prog,
		byName:      map[string]*FuncResult{},
		constGlobal: constGlobals(prog),
	}
	an.classifyFuncs()
	for _, fn := range prog.Funcs {
		if fn.Synthetic {
			continue
		}
		a := cfa.AnalyzeFunc(prog, fn)
		if a == nil {
			continue
		}
		r := an.analyzeFunc(a)
		an.Funcs = append(an.Funcs, r)
		an.byName[fn.Name] = r
	}
	an.computeCosts()
	return an
}

// constGlobals finds globals whose every store writes the same literal
// (including the synthetic __init initializer); a global with no stores
// holds its zero value forever. These keep their constant value across
// call havoc — any callee store rewrites the same literal.
func constGlobals(prog *compiler.Program) map[int]int64 {
	out := map[int]int64{}
	for gi := range prog.GlobalNames {
		val, stores, konst := int64(0), 0, true
		for pc, ins := range prog.Instrs {
			if ins.Op != compiler.OpStoreG || int(ins.A) != gi {
				continue
			}
			if pc == 0 || prog.Instrs[pc-1].Op != compiler.OpConst {
				konst = false
				break
			}
			v := prog.Consts[prog.Instrs[pc-1].A]
			if stores > 0 && v != val {
				konst = false
				break
			}
			val = v
			stores++
		}
		if konst {
			out[gi] = val
		}
	}
	return out
}

// classifyFuncs computes two call-graph-transitive function properties:
//
//   - impure: the function may store a global, so calls to it havoc the
//     non-constant globals of the caller's abstract state;
//   - hoistable: the function is a pure deterministic computation (no
//     global access, no rand/now/alloc/spawn/out/block), so a call with
//     loop-invariant arguments returns the same value every iteration.
func (an *Analysis) classifyFuncs() {
	prog := an.Prog
	an.impure = map[int]bool{}
	an.hoistable = map[int]bool{}
	// Direct facts per function.
	for _, fn := range prog.Funcs {
		hoist := true
		for pc := fn.Entry; pc < fn.End; pc++ {
			ins := prog.Instrs[pc]
			switch ins.Op {
			case compiler.OpStoreG:
				an.impure[fn.Index] = true
				hoist = false
			case compiler.OpLoadG:
				hoist = false
			case compiler.OpCallB:
				switch compiler.Builtin(ins.A) {
				case compiler.BRand, compiler.BNow, compiler.BAlloc,
					compiler.BSpawn, compiler.BOut, compiler.BBlock:
					hoist = false
				}
			}
		}
		an.hoistable[fn.Index] = hoist
	}
	// Transitive closure over the call graph (name-based; deterministic
	// because the fixpoint result is order-independent).
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			for _, callee := range prog.CallGraph[fn.Name] {
				cf := prog.FuncNamed(callee)
				if cf == nil {
					continue
				}
				if an.impure[cf.Index] && !an.impure[fn.Index] {
					an.impure[fn.Index] = true
					changed = true
				}
				if !an.hoistable[cf.Index] && an.hoistable[fn.Index] {
					an.hoistable[fn.Index] = false
					changed = true
				}
			}
		}
	}
}

// entryState builds the state at function entry: parameters unknown,
// locals zero (the VM zero-initializes frame slots), globals at their
// program-wide constant value or unknown.
func (an *Analysis) entryState(a *cfa.FuncAnalysis) *state {
	s := &state{vars: make([]Interval, a.NumVars())}
	for i := range s.vars {
		switch {
		case i < a.Fn.NumParams:
			s.vars[i] = Top()
		case i < a.Fn.NumSlots:
			s.vars[i] = Const(0)
		default:
			s.vars[i] = an.globalEntry(i - a.Fn.NumSlots)
		}
	}
	return s
}

func (an *Analysis) globalEntry(gi int) Interval {
	if v, ok := an.constGlobal[gi]; ok {
		return Const(v)
	}
	return Top()
}

// analyzeFunc runs the worklist fixpoint over one function.
func (an *Analysis) analyzeFunc(a *cfa.FuncAnalysis) *FuncResult {
	n := len(a.Blocks)
	r := &FuncResult{A: a, In: make([]*state, n), Facts: make([]blockFacts, n), Bounds: map[int]Bound{}}

	headers := map[int]bool{}
	for _, l := range a.Loops {
		headers[l.Header] = true
	}
	rpo := a.Graph.ReversePostorder()
	rpoIndex := make([]int, n)
	for i, b := range rpo {
		rpoIndex[b] = i
	}

	r.In[a.Graph.Entry] = an.entryState(a)
	visits := make([]int, n)
	inQueue := make([]bool, n)
	queue := []int{a.Graph.Entry}
	inQueue[a.Graph.Entry] = true
	for len(queue) > 0 {
		// Pop the queued block earliest in reverse postorder: the
		// canonical iteration order, and one that makes the fixpoint
		// independent of insertion order.
		best := 0
		for i := 1; i < len(queue); i++ {
			if rpoIndex[queue[i]] < rpoIndex[queue[best]] {
				best = i
			}
		}
		b := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		inQueue[b] = false
		if r.In[b] == nil {
			continue
		}
		out, branch, _ := an.execBlock(a, b, r.In[b], nil)
		for _, e := range an.succEdges(a, b, out, branch) {
			if e.state == nil {
				continue
			}
			widen := headers[e.to] && visits[e.to] >= widenDelay
			merged, changed := joinInto(r.In[e.to], e.state, widen)
			r.In[e.to] = merged
			if changed {
				visits[e.to]++
				if !inQueue[e.to] {
					queue = append(queue, e.to)
					inQueue[e.to] = true
				}
			}
		}
	}

	// Narrowing: recompute block entries from the stabilized states; only
	// the sentinel bounds widening introduced may improve.
	for round := 0; round < narrowRounds; round++ {
		next := make([]*state, n)
		next[a.Graph.Entry] = an.entryState(a)
		for _, b := range rpo {
			if r.In[b] == nil {
				continue
			}
			out, branch, _ := an.execBlock(a, b, r.In[b], nil)
			for _, e := range an.succEdges(a, b, out, branch) {
				if e.state == nil {
					continue
				}
				next[e.to], _ = joinInto(next[e.to], e.state, false)
			}
		}
		for b := 0; b < n; b++ {
			if r.In[b] == nil || next[b] == nil {
				continue
			}
			if headers[b] {
				for i := range r.In[b].vars {
					r.In[b].vars[i] = Narrow(r.In[b].vars[i], next[b].vars[i])
				}
			} else {
				r.In[b] = next[b]
			}
		}
	}

	// Final pass: record per-block facts from the settled states.
	for b := 0; b < n; b++ {
		if r.In[b] == nil {
			continue
		}
		_, branch, facts := an.execBlock(a, b, r.In[b], &blockFacts{})
		facts.Branch = branch
		facts.HasBranch = an.blockEndsInBranch(a, b)
		r.Facts[b] = *facts
	}

	an.inferBounds(r)
	return r
}

func (an *Analysis) blockEndsInBranch(a *cfa.FuncAnalysis, b int) bool {
	last := an.Prog.Instrs[a.Blocks[b].End-1]
	return last.Op == compiler.OpJZ || last.Op == compiler.OpJNZ
}

// edge is one outgoing CFG edge with its refined state (nil = infeasible).
type edge struct {
	to    int
	state *state
}

// succEdges computes the refined outgoing states of block b. Conditional
// edges meet the branch condition into the operand variables; an edge whose
// refinement is contradictory (or whose branch value excludes it) is
// reported infeasible, which is what makes value-level dead code visible.
func (an *Analysis) succEdges(a *cfa.FuncAnalysis, b int, out *state, branch absVal) []edge {
	succs := a.Graph.Succs[b]
	if len(succs) == 0 {
		return nil
	}
	last := an.Prog.Instrs[a.Blocks[b].End-1]
	if last.Op != compiler.OpJZ && last.Op != compiler.OpJNZ {
		edges := make([]edge, len(succs))
		for i, s := range succs {
			st := out
			if i > 0 {
				st = out.clone()
			}
			edges[i] = edge{to: s, state: st}
		}
		return edges
	}
	// Conditional: successor order from BlockSuccessors is
	// [fallthrough, target] for JZ/JNZ. The fallthrough edge is the one
	// NOT taken: JZ falls through when the value is nonzero, JNZ when it
	// is zero.
	target := a.BlockOf(int(last.A))
	var edges []edge
	for _, s := range succs {
		onZero := s == target
		if last.Op == compiler.OpJNZ {
			onZero = s != target
		}
		edges = append(edges, edge{to: s, state: refineEdge(out, branch, !onZero)})
	}
	return edges
}

// refineEdge narrows state for the edge where the branch value is truthy
// (nonzero) or falsy (zero); nil when the edge is infeasible.
func refineEdge(out *state, branch absVal, truthy bool) *state {
	if truthy && branch.iv == Const(0) {
		return nil
	}
	if !truthy && !branch.iv.Contains(0) && !branch.iv.IsBottom() {
		return nil
	}
	st := out.clone()
	apply := func(v absVal, iv Interval) bool {
		if v.varID < 0 {
			return true
		}
		m := Meet(st.vars[v.varID], iv)
		st.vars[v.varID] = m
		return !m.IsBottom()
	}
	if branch.cmp != nil {
		c := branch.cmp
		op := c.op
		if !truthy {
			op = op.Negate()
		}
		rx, ry := Refine(op, c.x.iv, c.y.iv)
		if rx.IsBottom() || ry.IsBottom() {
			return nil
		}
		if !apply(c.x, rx) || !apply(c.y, ry) {
			return nil
		}
	}
	if truthy {
		if !apply(branch, excludeZero(branch.iv)) {
			return nil
		}
	} else {
		if !apply(branch, Const(0)) {
			return nil
		}
	}
	return st
}

// excludeZero trims a zero-valued edge bound off the interval (interior
// zeros are not expressible).
func excludeZero(iv Interval) Interval {
	if iv.Lo == 0 {
		return Range(1, iv.Hi)
	}
	if iv.Hi == 0 {
		return Range(iv.Lo, -1)
	}
	return iv
}

// execBlock abstractly executes block b from entry state in, returning the
// exit state and the value consumed by a terminal conditional jump. When
// facts is non-nil, work()/call sites are recorded into it.
func (an *Analysis) execBlock(a *cfa.FuncAnalysis, b int, in *state, facts *blockFacts) (*state, absVal, *blockFacts) {
	prog := an.Prog
	st := in.clone()
	stack := append([]absVal(nil), st.stack...)
	pop := func() absVal {
		if len(stack) == 0 {
			return topVal()
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v absVal) { stack = append(stack, v) }
	// invalidate drops load provenance for var v (or all globals when
	// v == -1) from the pending stack: a store or call havoc means those
	// values no longer mirror the variable.
	invalidate := func(v int) {
		for i := range stack {
			if stack[i].varID < 0 {
				continue
			}
			if stack[i].varID == v || (v == -1 && stack[i].varID >= a.Fn.NumSlots) {
				stack[i].varID = -1
			}
		}
	}
	var branch absVal

	for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
		ins := prog.Instrs[pc]
		switch ins.Op {
		case compiler.OpConst:
			c := prog.Consts[ins.A]
			push(absVal{iv: Const(c), varID: -1, depVar: -1, stable: true})
		case compiler.OpLoadL, compiler.OpLoadG:
			id := int(ins.A)
			if ins.Op == compiler.OpLoadG {
				id = a.GlobalVar(int(ins.A))
			}
			name, _ := a.VarName(id)
			push(absVal{iv: st.vars[id], varID: id, depVar: id, sym: name})
		case compiler.OpStoreL, compiler.OpStoreG:
			id := int(ins.A)
			if ins.Op == compiler.OpStoreG {
				id = a.GlobalVar(int(ins.A))
			}
			val := pop()
			st.vars[id] = val.iv
			invalidate(id)
		case compiler.OpBin:
			y := pop()
			x := pop()
			push(binTransfer(lang.BinaryOp(ins.A), x, y))
		case compiler.OpUn:
			x := pop()
			if ins.A == 0 { // not
				push(notTransfer(x))
			} else { // neg
				nv := absVal{iv: Neg(x.iv), varID: -1, depVar: x.depVar, stable: x.stable}
				if x.sym != "" {
					nv.sym = symCombine("-", "", x.sym)
				}
				push(nv)
			}
		case compiler.OpJump:
			// unconditional terminator
		case compiler.OpJZ, compiler.OpJNZ:
			branch = pop()
		case compiler.OpCall:
			argc := int(ins.B)
			args := make([]absVal, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = pop()
			}
			if facts != nil {
				facts.Calls = append(facts.Calls, callSite{PC: pc, Callee: int(ins.A), Args: args})
			}
			if an.impure[int(ins.A)] {
				for gi := range prog.GlobalNames {
					st.vars[a.GlobalVar(gi)] = an.globalEntry(gi)
				}
				invalidate(-1)
			}
			push(topVal())
		case compiler.OpCallB:
			an.builtinTransfer(compiler.Builtin(ins.A), int(ins.B), pc, &stack, facts)
		case compiler.OpRet:
			pop()
		case compiler.OpPop:
			pop()
		case compiler.OpHalt:
			// terminator
		}
	}
	st.stack = stack
	return st, branch, facts
}

func (an *Analysis) builtinTransfer(b compiler.Builtin, argc, pc int, stack *[]absVal, facts *blockFacts) {
	pop := func() absVal {
		s := *stack
		if len(s) == 0 {
			return topVal()
		}
		v := s[len(s)-1]
		*stack = s[:len(s)-1]
		return v
	}
	push := func(v absVal) { *stack = append(*stack, v) }
	switch b {
	case compiler.BWork, compiler.BBlock:
		arg := pop()
		if facts != nil {
			facts.Works = append(facts.Works, workSite{PC: pc, Arg: arg, Blocked: b == compiler.BBlock})
		}
		iv := arg.iv
		if !iv.IsBottom() {
			iv = Interval{max64(0, iv.Lo), max64(0, iv.Hi)}
		}
		push(absVal{iv: iv, varID: -1, depVar: arg.depVar, sym: arg.sym, stable: arg.stable})
	case compiler.BRand:
		n := pop()
		hi := int64(0)
		if n.iv.Hi > 0 {
			hi = decBound(n.iv.Hi)
		}
		push(absVal{iv: Range(0, hi), varID: -1, depVar: -1})
	case compiler.BInput:
		k := pop()
		v := topVal()
		if c, ok := k.iv.ConstValue(); ok {
			v.sym = fmt.Sprintf("input(%d)", c)
			v.stable = true
		}
		push(v)
	case compiler.BNow:
		push(absVal{iv: Range(0, PosInf), varID: -1, depVar: -1})
	case compiler.BAlloc:
		push(topVal())
	case compiler.BOut:
		v := pop()
		v.varID = -1
		push(v)
	case compiler.BAbs:
		x := pop()
		push(absVal{iv: absTransfer(x.iv), varID: -1, depVar: x.depVar, stable: x.stable})
	case compiler.BMin:
		y := pop()
		x := pop()
		push(absVal{iv: Range(min64(x.iv.Lo, y.iv.Lo), min64(x.iv.Hi, y.iv.Hi)), varID: -1, depVar: -1, stable: x.stable && y.stable})
	case compiler.BMax:
		y := pop()
		x := pop()
		push(absVal{iv: Range(max64(x.iv.Lo, y.iv.Lo), max64(x.iv.Hi, y.iv.Hi)), varID: -1, depVar: -1, stable: x.stable && y.stable})
	case compiler.BSpawn:
		for i := 0; i < argc; i++ {
			pop()
		}
		push(topVal())
	default:
		for i := 0; i < argc; i++ {
			pop()
		}
		push(topVal())
	}
}

func absTransfer(iv Interval) Interval {
	switch {
	case iv.IsBottom():
		return iv
	case iv.Lo >= 0:
		return iv
	case iv.Hi <= 0:
		return Neg(iv)
	case iv.Lo == NegInf:
		return Range(0, PosInf)
	}
	return Range(0, max64(-iv.Lo, iv.Hi))
}

// binTransfer is the OpBin transfer function.
func binTransfer(op lang.BinaryOp, x, y absVal) absVal {
	out := absVal{varID: -1, depVar: -1, stable: x.stable && y.stable}
	switch op {
	case lang.BinAdd, lang.BinSub, lang.BinMul, lang.BinDiv, lang.BinMod:
		switch op {
		case lang.BinAdd:
			out.iv = Add(x.iv, y.iv)
		case lang.BinSub:
			out.iv = Sub(x.iv, y.iv)
		case lang.BinMul:
			out.iv = Mul(x.iv, y.iv)
		case lang.BinDiv:
			out.iv = Div(x.iv, y.iv)
		case lang.BinMod:
			out.iv = Mod(x.iv, y.iv)
		}
		// Single-variable provenance survives combination with
		// constants or run-stable values.
		_, xc := x.iv.ConstValue()
		_, yc := y.iv.ConstValue()
		if x.depVar >= 0 && (yc || y.stable || y.depVar == x.depVar) {
			out.depVar = x.depVar
		} else if y.depVar >= 0 && (xc || x.stable) {
			out.depVar = y.depVar
		}
		out.sym = symCombine(opSym(op), symOf(x), symOf(y))
	case lang.BinEq, lang.BinNeq, lang.BinLt, lang.BinLe, lang.BinGt, lang.BinGe:
		cop := cmpOpFor(op)
		out.iv = Cmp(cop, x.iv, y.iv)
		out.cmp = &cmpExpr{op: cop, x: x, y: y}
	default:
		// BinAnd/BinOr are lowered to jumps; anything else is Top.
		out.iv = Top()
	}
	return out
}

func notTransfer(x absVal) absVal {
	out := absVal{iv: bool01(), varID: -1, depVar: -1, stable: x.stable}
	switch {
	case x.iv == Const(0):
		out.iv = Const(1)
	case !x.iv.Contains(0):
		out.iv = Const(0)
	}
	if x.cmp != nil {
		out.cmp = &cmpExpr{op: x.cmp.op.Negate(), x: x.cmp.x, y: x.cmp.y}
	} else if x.varID >= 0 {
		zero := absVal{iv: Const(0), varID: -1, depVar: -1, stable: true}
		out.cmp = &cmpExpr{op: CmpEq, x: x, y: zero}
	}
	return out
}

func cmpOpFor(op lang.BinaryOp) CmpOp {
	switch op {
	case lang.BinEq:
		return CmpEq
	case lang.BinNeq:
		return CmpNeq
	case lang.BinLt:
		return CmpLt
	case lang.BinLe:
		return CmpLe
	case lang.BinGt:
		return CmpGt
	}
	return CmpGe
}

func opSym(op lang.BinaryOp) string {
	switch op {
	case lang.BinAdd:
		return "+"
	case lang.BinSub:
		return "-"
	case lang.BinMul:
		return "*"
	case lang.BinDiv:
		return "/"
	case lang.BinMod:
		return "%"
	}
	return "?"
}

// symOf renders an operand for symbolic display: its symbol, or its
// constant value.
func symOf(v absVal) string {
	if v.sym != "" {
		return v.sym
	}
	if c, ok := v.iv.ConstValue(); ok {
		return fmt.Sprint(c)
	}
	return ""
}

// symCombine builds a compact symbolic form, or "" when either side is
// unknown or the result grows unwieldy.
func symCombine(op, a, b string) string {
	if op == "-" && a == "" && b != "" { // unary minus
		if len(b) < 20 {
			return "-" + b
		}
		return ""
	}
	if a == "" || b == "" {
		return ""
	}
	s := a + op + b
	if len(s) > 24 {
		return ""
	}
	return s
}
