package absint

import (
	"fmt"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/lang"
)

// BoundKind classifies a loop trip bound.
type BoundKind int

const (
	// BoundConst: the trip count has a concrete upper bound (Trips).
	BoundConst BoundKind = iota
	// BoundSym: the trip count is bounded by a symbolic quantity (Name),
	// e.g. a loop-invariant variable or an input(k) parameter. Var holds
	// the variable id the symbol tracks, -1 for input-derived symbols.
	BoundSym
	// BoundOpaque: the loop terminates on a condition the analyzer cannot
	// name but whose limit is loop-invariant; treated as an anonymous
	// symbol in cost polynomials.
	BoundOpaque
	// BoundUnknown: no trip bound could be established (no conditional
	// exit, no recognizable stride, or a moving limit).
	BoundUnknown
)

// Bound is one loop's inferred trip-count bound.
type Bound struct {
	Kind  BoundKind
	Trips int64  // BoundConst: max iterations (>= 0)
	Var   int    // BoundSym: variable id of the limit, -1 if input-derived
	Name  string // BoundSym/BoundOpaque: display symbol
	Why   string // BoundUnknown: reason, for diagnostics
}

// Symbolic reports whether the bound is data-dependent (not a constant).
func (b Bound) Symbolic() bool { return b.Kind == BoundSym || b.Kind == BoundOpaque }

func (b Bound) String() string {
	switch b.Kind {
	case BoundConst:
		return fmt.Sprint(b.Trips)
	case BoundSym, BoundOpaque:
		return b.Name
	}
	return "?"
}

// stride describes the uniform additive update of a variable inside a loop:
// every store to it in the loop matches `v = v ± c` (either operand order
// for +). Detected on the IR pattern the structured compiler emits for
// `v = v + c` / `v += c` / `v++`:
//
//	LoadL v; Const c; Bin Add; StoreL v    (also Const c; LoadL v for +)
//	LoadL v; Const c; Bin Sub; StoreL v
type stride struct {
	delta  int64 // signed per-iteration change
	stores int   // number of matching stores seen
}

// strideOf returns the uniform stride of var v inside loop l, or ok=false
// when v has a non-stride store (or no store at all) in the loop.
func (an *Analysis) strideOf(a *cfa.FuncAnalysis, l *cfa.Loop, v int) (stride, bool) {
	var s stride
	prog := an.Prog
	for _, b := range l.Blocks {
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			ins := prog.Instrs[pc]
			if !isStoreOf(a, ins, v) {
				continue
			}
			d, ok := strideAt(an, a, pc, v)
			if !ok {
				return stride{}, false
			}
			if s.stores > 0 && d != s.delta {
				return stride{}, false
			}
			s.delta = d
			s.stores++
		}
	}
	return s, s.stores > 0
}

func isStoreOf(a *cfa.FuncAnalysis, ins compiler.Instr, v int) bool {
	switch ins.Op {
	case compiler.OpStoreL:
		return int(ins.A) == v
	case compiler.OpStoreG:
		return a.GlobalVar(int(ins.A)) == v
	}
	return false
}

func isLoadOf(a *cfa.FuncAnalysis, ins compiler.Instr, v int) bool {
	switch ins.Op {
	case compiler.OpLoadL:
		return int(ins.A) == v
	case compiler.OpLoadG:
		return a.GlobalVar(int(ins.A)) == v
	}
	return false
}

// strideAt matches the three instructions preceding the store at pc against
// the additive-update pattern and returns the signed delta.
func strideAt(an *Analysis, a *cfa.FuncAnalysis, pc, v int) (int64, bool) {
	prog := an.Prog
	if pc < 3 {
		return 0, false
	}
	bin := prog.Instrs[pc-1]
	if bin.Op != compiler.OpBin {
		return 0, false
	}
	op := lang.BinaryOp(bin.A)
	if op != lang.BinAdd && op != lang.BinSub {
		return 0, false
	}
	i1, i2 := prog.Instrs[pc-3], prog.Instrs[pc-2]
	// LoadL v; Const c
	if isLoadOf(a, i1, v) && i2.Op == compiler.OpConst {
		c := prog.Consts[i2.A]
		if op == lang.BinSub {
			c = -c
		}
		return c, true
	}
	// Const c; LoadL v — commutative, so addition only.
	if i1.Op == compiler.OpConst && isLoadOf(a, i2, v) && op == lang.BinAdd {
		return prog.Consts[i1.A], true
	}
	return 0, false
}

// inferBounds computes the trip bound of every loop of r from the settled
// abstract states: the conditional exit's terminal comparison, the tested
// variable's uniform stride, and the limit operand's invariance.
func (an *Analysis) inferBounds(r *FuncResult) {
	a := r.A
	for _, l := range a.Loops {
		r.Bounds[l.Header] = an.loopBound(r, l)
	}
}

func (an *Analysis) loopBound(r *FuncResult, l *cfa.Loop) Bound {
	a := r.A
	exit := a.CondExit(l)
	if exit < 0 {
		return Bound{Kind: BoundUnknown, Why: "no conditional exit test"}
	}
	if r.In[exit] == nil {
		// Exit test itself unreachable: the loop never runs.
		return Bound{Kind: BoundConst, Trips: 0}
	}
	branch := r.Facts[exit].Branch
	if branch.cmp == nil {
		return Bound{Kind: BoundUnknown, Why: "exit condition is not a comparison"}
	}

	// Orient the comparison so the continuing direction is "cond true":
	// the exit's terminal jump leaves the loop either on the jump target
	// (condition false for JZ / true for JNZ) or on the fallthrough.
	last := an.Prog.Instrs[a.Blocks[exit].End-1]
	target := a.BlockOf(int(last.A))
	exitOnJump := !l.Contains(target)
	continueOnTrue := (last.Op == compiler.OpJZ) == exitOnJump
	c := *branch.cmp
	op := c.op
	if !continueOnTrue {
		op = op.Negate()
	}

	// Normalize to "tested < limit" style: tested var on the left.
	tested, limit := c.x, c.y
	if tested.varID < 0 && limit.varID >= 0 {
		tested, limit = limit, tested
		op = mirror(op)
	}
	if tested.varID < 0 {
		return Bound{Kind: BoundUnknown, Why: "exit test does not read a variable"}
	}
	v := tested.varID

	s, ok := an.strideOf(a, l, v)
	if !ok || s.delta == 0 {
		return Bound{Kind: BoundUnknown, Why: fmt.Sprintf("no constant stride for %s", symOf(tested))}
	}
	// The stride must move the variable toward the exit.
	switch op {
	case CmpLt, CmpLe:
		if s.delta <= 0 {
			return Bound{Kind: BoundUnknown, Why: fmt.Sprintf("%s moves away from its limit", symOf(tested))}
		}
	case CmpGt, CmpGe:
		if s.delta >= 0 {
			return Bound{Kind: BoundUnknown, Why: fmt.Sprintf("%s moves away from its limit", symOf(tested))}
		}
	case CmpNeq:
		// != only terminates when the stride cannot step over the limit.
		if s.delta != 1 && s.delta != -1 {
			return Bound{Kind: BoundUnknown, Why: "stride may step over a != limit"}
		}
	default: // CmpEq: `while (v == k)` — at most the run of equality; opaque.
		return Bound{Kind: BoundUnknown, Why: "exit test is an equality"}
	}

	// The limit must be invariant inside the loop.
	if !an.invariantIn(r, l, limit) {
		return Bound{Kind: BoundUnknown, Why: "loop limit changes inside the loop"}
	}

	// Constant trip count when both the limit and the entry value of the
	// tested variable are known.
	if k, ok := limit.iv.ConstValue(); ok {
		if t, ok := constTrips(r.In[l.Header].vars[v], k, s.delta, op); ok {
			return Bound{Kind: BoundConst, Trips: t}
		}
	}

	// Symbolic: name the limit — unless the limit is a constant (a
	// counting loop whose entry value is unknown, e.g. `while (level > 0)`
	// with level from a parameter), where the tested variable's entry
	// value is what governs the trip count, so its name is the bound.
	if _, isConst := limit.iv.ConstValue(); isConst {
		if name := symOf(tested); name != "" {
			return Bound{Kind: BoundSym, Var: v, Name: name}
		}
	} else if name := symOf(limit); name != "" {
		dep := limit.depVar
		if dep < 0 && !limit.stable {
			dep = limit.varID
		}
		return Bound{Kind: BoundSym, Var: dep, Name: name}
	}
	return Bound{Kind: BoundOpaque, Var: -1, Name: fmt.Sprintf("expr@L%d", a.Blocks[l.Header].Line)}
}

// invariantIn reports whether the value val is invariant across iterations
// of l: constants and run-stable (input-derived) values always are; a
// variable-derived value is invariant when the variable is not stored in
// the loop and, for globals, no call in the loop can store globals.
func (an *Analysis) invariantIn(r *FuncResult, l *cfa.Loop, val absVal) bool {
	if _, ok := val.iv.ConstValue(); ok {
		return true
	}
	if val.stable {
		return true
	}
	v := val.depVar
	if v < 0 {
		return false
	}
	a := r.A
	for _, b := range l.Blocks {
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			ins := an.Prog.Instrs[pc]
			if isStoreOf(a, ins, v) {
				return false
			}
			if v >= a.Fn.NumSlots && ins.Op == compiler.OpCall && an.impure[int(ins.A)] {
				return false
			}
		}
	}
	return true
}

// constTrips computes the maximum trip count of a counting loop: entry
// value interval init, constant limit k, stride delta, continuing
// comparison op (already oriented as `v op k`).
func constTrips(init Interval, k, delta int64, op CmpOp) (int64, bool) {
	if init.IsBottom() {
		return 0, true
	}
	// Choose the entry bound that maximizes iterations.
	var start int64
	if delta > 0 {
		start = init.Lo
		if start == NegInf {
			return 0, false
		}
	} else {
		start = init.Hi
		if start == PosInf {
			return 0, false
		}
	}
	// limitEx: first value of v (moving along delta) that exits the loop.
	var limitEx int64
	switch op {
	case CmpLt:
		limitEx = k
	case CmpLe:
		if k == PosInf {
			return 0, false
		}
		limitEx = k + 1
	case CmpGt:
		limitEx = k
	case CmpGe:
		if k == NegInf {
			return 0, false
		}
		limitEx = k - 1
	case CmpNeq:
		limitEx = k
	default:
		return 0, false
	}
	var span int64
	if delta > 0 {
		span = limitEx - start
		if limitEx > 0 && start < 0 && span < 0 { // overflow
			return 0, false
		}
	} else {
		span = start - limitEx
		if start > 0 && limitEx < 0 && span < 0 { // overflow
			return 0, false
		}
		delta = -delta
	}
	if span <= 0 {
		return 0, true
	}
	if op == CmpNeq && span%delta != 0 {
		return 0, false // steps over the limit: never exits
	}
	return (span + delta - 1) / delta, true
}

// mirror swaps the operand order of a comparison: x op y == y mirror(op) x.
func mirror(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op // Eq, Neq symmetric
}
