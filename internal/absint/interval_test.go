package absint

import (
	"math"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	if !Bottom().IsBottom() || Top().IsBottom() {
		t.Fatal("bottom/top confusion")
	}
	if v, ok := Const(7).ConstValue(); !ok || v != 7 {
		t.Fatalf("Const(7).ConstValue() = %d, %v", v, ok)
	}
	if _, ok := (Interval{PosInf, PosInf}).ConstValue(); ok {
		t.Fatal("sentinel singleton must not report const")
	}
	if got := Range(3, 1); !got.IsBottom() {
		t.Fatalf("Range(3,1) = %v, want bottom", got)
	}
	if s := Range(NegInf, 5).String(); s != "[-inf,5]" {
		t.Fatalf("String = %q", s)
	}
	if s := Const(3).String(); s != "[3]" {
		t.Fatalf("String = %q", s)
	}
}

func TestJoinMeet(t *testing.T) {
	a, b := Range(0, 5), Range(3, 9)
	if got := Join(a, b); got != Range(0, 9) {
		t.Fatalf("Join = %v", got)
	}
	if got := Meet(a, b); got != Range(3, 5) {
		t.Fatalf("Meet = %v", got)
	}
	if got := Meet(Range(0, 1), Range(5, 9)); !got.IsBottom() {
		t.Fatalf("disjoint Meet = %v, want bottom", got)
	}
	if got := Join(Bottom(), a); got != a {
		t.Fatalf("Join(bot, a) = %v", got)
	}
}

func TestWidenNarrow(t *testing.T) {
	prev, next := Range(0, 3), Range(0, 4)
	w := Widen(prev, next)
	if w != Range(0, PosInf) {
		t.Fatalf("Widen = %v", w)
	}
	// Narrowing recovers the recomputed bound on the widened side only.
	if got := Narrow(w, Range(0, 10)); got != Range(0, 10) {
		t.Fatalf("Narrow = %v", got)
	}
	if got := Narrow(Range(0, 3), Range(1, 2)); got != Range(0, 3) {
		t.Fatalf("Narrow must not touch finite bounds, got %v", got)
	}
}

func TestDivTrap(t *testing.T) {
	if got := Div(Range(1, 10), Const(0)); !got.IsBottom() {
		t.Fatalf("x/0 = %v, want bottom (trap)", got)
	}
	if got := Div(Range(10, 10), Range(2, 5)); got != Range(2, 5) {
		t.Fatalf("10/[2,5] = %v", got)
	}
	if got := Div(Range(-10, 10), Range(1, 1)); got != Range(-10, 10) {
		t.Fatalf("[-10,10]/1 = %v", got)
	}
}

func TestRefine(t *testing.T) {
	// i < n with i in [0, +inf], n in [5, 5]
	x, y := Refine(CmpLt, Range(0, PosInf), Const(5))
	if x != Range(0, 4) {
		t.Fatalf("refined x = %v", x)
	}
	if y != Const(5) {
		t.Fatalf("refined y = %v", y)
	}
	// Contradiction yields bottom.
	x, _ = Refine(CmpLt, Const(9), Const(5))
	if !x.IsBottom() {
		t.Fatalf("9 < 5 refinement = %v, want bottom", x)
	}
}

// clampInto maps an arbitrary concrete value into iv.
func clampInto(v int64, iv Interval) int64 {
	return max64(iv.Lo, min64(iv.Hi, v))
}

func mkInterval(a, b int64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// concreteBin mirrors the VM's binop semantics (wrapping int64; division
// and modulo by zero trap). ok=false marks a trap.
func concreteBin(op byte, x, y int64) (int64, bool) {
	switch op % 5 {
	case 0:
		return x + y, true
	case 1:
		return x - y, true
	case 2:
		return x * y, true
	case 3:
		if y == 0 {
			return 0, false
		}
		if x == math.MinInt64 && y == -1 {
			return 0, false // Go panics; the analyzer reports Top there anyway
		}
		return x / y, true
	default:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	}
}

func abstractBin(op byte, x, y Interval) Interval {
	switch op % 5 {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	case 2:
		return Mul(x, y)
	case 3:
		return Div(x, y)
	default:
		return Mod(x, y)
	}
}

func concreteCmp(op CmpOp, x, y int64) int64 {
	var b bool
	switch op {
	case CmpEq:
		b = x == y
	case CmpNeq:
		b = x != y
	case CmpLt:
		b = x < y
	case CmpLe:
		b = x <= y
	case CmpGt:
		b = x > y
	case CmpGe:
		b = x >= y
	}
	if b {
		return 1
	}
	return 0
}

// FuzzIntervalOps checks the domain's soundness invariants on arbitrary
// intervals and concrete points:
//
//   - Join is an upper bound of both operands.
//   - Widening terminates (reaches a fixpoint in a bounded number of
//     steps) and stays an upper bound.
//   - Arithmetic and comparison transfer functions never exclude the
//     concrete result of the VM's (wrapping) semantics.
//   - Refine keeps every concrete pair that satisfies the relation.
func FuzzIntervalOps(f *testing.F) {
	f.Add(byte(0), int64(0), int64(10), int64(-5), int64(5), int64(3), int64(2))
	f.Add(byte(2), int64(NegInf), int64(0), int64(1), int64(PosInf), int64(-7), int64(9))
	f.Add(byte(3), int64(-100), int64(100), int64(0), int64(0), int64(50), int64(0))
	f.Add(byte(4), int64(math.MinInt64), int64(-1), int64(-1), int64(-1), int64(math.MinInt64), int64(-1))
	f.Fuzz(func(t *testing.T, op byte, alo, ahi, blo, bhi, px, py int64) {
		a, b := mkInterval(alo, ahi), mkInterval(blo, bhi)
		x, y := clampInto(px, a), clampInto(py, b)

		// Join upper bound.
		j := Join(a, b)
		if !j.Contains(x) || !j.Contains(y) {
			t.Fatalf("Join(%v, %v) = %v excludes %d or %d", a, b, j, x, y)
		}

		// Widening terminates and covers.
		w := a
		for i := 0; ; i++ {
			nw := Widen(w, Join(w, b))
			if nw == w {
				break
			}
			w = nw
			if i > 4 {
				t.Fatalf("widening chain from %v with %v did not stabilize", a, b)
			}
		}
		if !w.Contains(x) || !w.Contains(y) {
			t.Fatalf("widened %v excludes a concrete member", w)
		}

		// Arithmetic transfer soundness vs concrete wrapping semantics.
		if cz, ok := concreteBin(op, x, y); ok {
			az := abstractBin(op, a, b)
			if az.IsBottom() {
				// Bottom is only sound when every concrete pair traps:
				// possible solely for division/modulo with y = {0}.
				if v, isConst := b.ConstValue(); !(isConst && v == 0 && op%5 >= 3) {
					t.Fatalf("op %d over %v, %v returned bottom despite concrete result %d", op%5, a, b, cz)
				}
			} else if !az.Contains(cz) {
				t.Fatalf("op %d: %d op %d = %d not in %v (from %v, %v)", op%5, x, y, cz, az, a, b)
			}
		}

		// Comparison transfer + refinement soundness.
		cop := CmpOp(int(op) % 6)
		cv := Cmp(cop, a, b)
		got := concreteCmp(cop, x, y)
		if !cv.Contains(got) {
			t.Fatalf("Cmp(%v, %v, %v) = %v excludes %d", cop, a, b, cv, got)
		}
		if got == 1 {
			rx, ry := Refine(cop, a, b)
			if !rx.Contains(x) || !ry.Contains(y) {
				t.Fatalf("Refine(%v, %v, %v) = %v, %v drops satisfying pair (%d, %d)",
					cop, a, b, rx, ry, x, y)
			}
		}

		// Meet soundness: a value in both operands stays in the meet.
		if a.Contains(y) {
			if m := Meet(a, b); !m.Contains(y) {
				t.Fatalf("Meet(%v, %v) = %v excludes common member %d", a, b, m, y)
			}
		}

		// Negation soundness.
		if nz := Neg(a); !nz.Contains(-x) && x != math.MinInt64 {
			t.Fatalf("Neg(%v) = %v excludes %d", a, nz, -x)
		}
	})
}
