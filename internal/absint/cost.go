package absint

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/compiler"
)

// Poly is a static cost bound: a polynomial over symbolic loop bounds. Keys
// of Terms are "*"-joined sorted symbol products ("" is the constant term,
// "n" a linear term, "n*n" quadratic). Unbounded marks costs the analyzer
// could not bound (unknown trip counts, recursion, unbounded work args);
// the terms then form a known floor, not a ceiling.
type Poly struct {
	Terms     map[string]int64
	Unbounded bool
}

func zeroPoly() Poly { return Poly{Terms: map[string]int64{}} }

func constPoly(c int64) Poly {
	p := zeroPoly()
	if c != 0 {
		p.Terms[""] = c
	}
	return p
}

func (p *Poly) addTerm(key string, coeff int64) {
	if coeff == 0 {
		return
	}
	if p.Terms == nil {
		p.Terms = map[string]int64{}
	}
	p.Terms[key] = satAdd(p.Terms[key], coeff)
}

func (p *Poly) add(q Poly) {
	for k, c := range q.Terms {
		p.addTerm(k, c)
	}
	p.Unbounded = p.Unbounded || q.Unbounded
}

// scale multiplies every coefficient by a constant trip count.
func (p Poly) scale(n int64) Poly {
	if n < 0 {
		n = 0
	}
	out := zeroPoly()
	out.Unbounded = p.Unbounded
	for k, c := range p.Terms {
		out.addTerm(k, satMul(c, n))
	}
	return out
}

// times multiplies every term by one symbolic factor, keeping the product
// key sorted so "n*m" and "m*n" collapse.
func (p Poly) times(sym string) Poly {
	out := zeroPoly()
	out.Unbounded = p.Unbounded
	for k, c := range p.Terms {
		out.addTerm(mulKey(k, sym), c)
	}
	return out
}

// polySym makes a symbolic name safe for use as a Poly term factor: "*" is
// the key separator, so products inside one symbol ("row*3") are rendered
// with a middle dot to stay atomic.
func polySym(s string) string { return strings.ReplaceAll(s, "*", "·") }

func mulKey(key, sym string) string {
	if key == "" {
		return sym
	}
	parts := append(strings.Split(key, "*"), sym)
	sort.Strings(parts)
	return strings.Join(parts, "*")
}

// Degree returns the polynomial degree (0 for constants; unbounded costs
// report at least 1).
func (p Poly) Degree() int {
	deg := 0
	for k := range p.Terms {
		if k == "" {
			continue
		}
		if d := strings.Count(k, "*") + 1; d > deg {
			deg = d
		}
	}
	if p.Unbounded && deg == 0 {
		deg = 1
	}
	return deg
}

// ConstTicks returns the constant term.
func (p Poly) ConstTicks() int64 { return p.Terms[""] }

// String renders the polynomial deterministically: terms sorted by degree
// then key, constant first; "unbounded" marks open-ended costs.
func (p Poly) String() string {
	keys := make([]string, 0, len(p.Terms))
	for k := range p.Terms {
		if k != "" {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := strings.Count(keys[i], "*"), strings.Count(keys[j], "*")
		if di != dj {
			return di < dj
		}
		return keys[i] < keys[j]
	})
	var parts []string
	if c := p.Terms[""]; c != 0 || (len(keys) == 0 && !p.Unbounded) {
		parts = append(parts, fmt.Sprint(c))
	}
	for _, k := range keys {
		c := p.Terms[k]
		if c == 1 {
			parts = append(parts, k)
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", c, k))
		}
	}
	s := strings.Join(parts, " + ")
	if p.Unbounded {
		if s == "" {
			return "unbounded"
		}
		return s + " + unbounded"
	}
	return s
}

func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < a) || (a < 0 && b < 0 && s > a) {
		if a > 0 {
			return PosInf
		}
		return NegInf
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	m := a * b
	if m/b != a {
		if (a > 0) == (b > 0) {
			return PosInf
		}
		return NegInf
	}
	return m
}

// computeCosts fills BlockCost and Cost for every analyzed function, in an
// order where callees are costed before callers (recursion cycles are
// marked Unbounded up front).
func (an *Analysis) computeCosts() {
	order, cyclic := an.callOrder()
	costed := map[string]Poly{}
	for name, inCycle := range cyclic {
		if inCycle {
			costed[name] = Poly{Terms: map[string]int64{}, Unbounded: true}
		}
	}
	for _, name := range order {
		r := an.byName[name]
		if r == nil {
			continue
		}
		an.costFunc(r, costed)
		if cyclic[name] {
			// Keep the Unbounded marker but expose the computed floor.
			r.Cost.Unbounded = true
		}
		costed[name] = r.Cost
	}
}

// callOrder returns the analyzed function names in reverse topological
// order of the call graph (callees first), plus the set of names on call
// cycles (recursive directly or mutually).
func (an *Analysis) callOrder() (order []string, cyclic map[string]bool) {
	cyclic = map[string]bool{}
	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	var onStack []string
	var visit func(name string)
	visit = func(name string) {
		switch state[name] {
		case 1:
			// Back edge: everything from name on the stack is cyclic.
			for i := len(onStack) - 1; i >= 0; i-- {
				cyclic[onStack[i]] = true
				if onStack[i] == name {
					break
				}
			}
			return
		case 2:
			return
		}
		state[name] = 1
		onStack = append(onStack, name)
		for _, callee := range an.Prog.CallGraph[name] {
			visit(callee)
		}
		onStack = onStack[:len(onStack)-1]
		state[name] = 2
		order = append(order, name)
	}
	for _, r := range an.Funcs {
		visit(r.A.Fn.Name)
	}
	return order, cyclic
}

// costFunc computes r's per-block and total cost from the recorded facts.
// Each instruction costs one tick; OpCall charges one extra dispatch tick;
// work(n) adds up to n ticks (block(n) waits off-CPU and adds none); a call
// site adds the callee's cost with parameter symbols substituted by the
// abstract arguments.
func (an *Analysis) costFunc(r *FuncResult, costed map[string]Poly) {
	a := r.A
	n := len(a.Blocks)
	r.BlockCost = make([]Poly, n)
	for b := 0; b < n; b++ {
		p := constPoly(int64(a.Blocks[b].End - a.Blocks[b].Start))
		if r.In[b] == nil {
			// Value-unreachable blocks execute zero times.
			r.BlockCost[b] = zeroPoly()
			continue
		}
		for _, w := range r.Facts[b].Works {
			if w.Blocked {
				continue // off-CPU wait, no tick cost
			}
			switch {
			case w.Arg.iv.Hi <= 0 && !w.Arg.iv.IsBottom():
				// work of a non-positive amount is free
			case w.Arg.iv.Hi != PosInf:
				p.addTerm("", max64(0, w.Arg.iv.Hi))
			case w.Arg.sym != "":
				p.addTerm(polySym(w.Arg.sym), 1)
			default:
				p.Unbounded = true
			}
		}
		for _, c := range r.Facts[b].Calls {
			p.addTerm("", 1) // call dispatch overhead
			p.add(an.callCost(c, costed))
		}
		r.BlockCost[b] = p
	}

	// Compose through the loop nest: a block executes at most the product
	// of its enclosing loops' trip bounds times.
	total := zeroPoly()
	for b := 0; b < n; b++ {
		if r.In[b] == nil {
			continue
		}
		p := r.BlockCost[b]
		for _, l := range a.Loops {
			if !l.Contains(b) {
				continue
			}
			bd := r.Bounds[l.Header]
			switch bd.Kind {
			case BoundConst:
				p = p.scale(bd.Trips)
			case BoundSym, BoundOpaque:
				p = p.times(polySym(bd.Name))
			default:
				p.Unbounded = true
			}
		}
		total.add(p)
	}
	r.Cost = total
}

// callCost instantiates the callee's cost polynomial at a call site:
// occurrences of callee parameter names in cost symbols are replaced by the
// abstract argument (constant arguments scale the coefficient, symbolic
// ones rename the factor; anything else makes the factor opaque).
func (an *Analysis) callCost(c callSite, costed map[string]Poly) Poly {
	fn := an.Prog.Funcs[c.Callee]
	callee, ok := costed[fn.Name]
	if !ok {
		// Callee not analyzed (no blocks): charge nothing beyond dispatch.
		return zeroPoly()
	}
	params := map[string]int{}
	for i := 0; i < fn.NumParams && i < len(fn.SlotNames); i++ {
		if fn.SlotNames[i] != "" {
			params[fn.SlotNames[i]] = i
		}
	}
	out := zeroPoly()
	out.Unbounded = callee.Unbounded
	for key, coeff := range callee.Terms {
		if key == "" {
			out.addTerm("", coeff)
			continue
		}
		scale := coeff
		var syms []string
		bounded := true
		for _, factor := range strings.Split(key, "*") {
			pi, isParam := params[factor]
			if !isParam || pi >= len(c.Args) {
				syms = append(syms, fn.Name+"."+factor)
				continue
			}
			arg := c.Args[pi]
			if v, ok := arg.iv.ConstValue(); ok {
				scale = satMul(scale, max64(0, v))
			} else if arg.iv.Hi != PosInf && !arg.iv.IsBottom() {
				scale = satMul(scale, max64(0, arg.iv.Hi))
			} else if arg.sym != "" {
				syms = append(syms, polySym(arg.sym))
			} else {
				bounded = false
			}
		}
		if !bounded {
			out.Unbounded = true
			continue
		}
		if scale == 0 {
			continue
		}
		sort.Strings(syms)
		out.addTerm(strings.Join(syms, "*"), scale)
	}
	return out
}

// FunctionCosts returns the total static cost bound of every analyzed
// function, rendered, keyed by function name.
func (an *Analysis) FunctionCosts() map[string]string {
	out := make(map[string]string, len(an.Funcs))
	for _, r := range an.Funcs {
		out[r.A.Fn.Name] = r.Cost.String()
	}
	return out
}

// Annotate computes static per-block cost bounds for prog and persists them
// in prog.StaticCosts, in (function, block) order, for downstream consumers
// (threaded-code VM, causal mode) that want cost estimates without running
// the analyzer.
func Annotate(prog *compiler.Program) {
	an := AnalyzeProgram(prog)
	var out []compiler.StaticCost
	for _, r := range an.Funcs {
		for b := range r.A.Blocks {
			blk := r.A.Blocks[b]
			p := r.BlockCost[b]
			out = append(out, compiler.StaticCost{
				Func:  r.A.Fn.Name,
				Block: b,
				Start: blk.Start,
				End:   blk.End,
				Ticks: p.ConstTicks(),
				Bound: p.String(),
			})
		}
	}
	prog.StaticCosts = out
}
