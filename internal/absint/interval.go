// Package absint is a worklist-driven abstract interpreter over the
// internal/cfa IR: an interval + constant-propagation domain with widening
// and narrowing at loop heads, symbolic loop trip-count inference for the
// induction variables cfa detects, per-basic-block static cost bounds
// (symbolic polynomials in the inferred bounds), and a rule-based
// performance-smell checker built on top (`vprof check`).
package absint

import (
	"fmt"
	"math"
)

// NegInf and PosInf are the sentinel bound values standing for unbounded
// intervals. A concrete math.MinInt64/MaxInt64 is conflated with the
// sentinel — a sound over-approximation, since sentinels only ever widen.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a value range [Lo, Hi] over the VM's int64 values. Lo > Hi
// encodes bottom (no value / unreachable); Bottom() is the canonical form.
type Interval struct{ Lo, Hi int64 }

// Top is the full range.
func Top() Interval { return Interval{NegInf, PosInf} }

// Bottom is the empty range.
func Bottom() Interval { return Interval{PosInf, NegInf} }

// Const is the singleton range {v}.
func Const(v int64) Interval { return Interval{v, v} }

// Range is [lo, hi]; lo > hi yields Bottom.
func Range(lo, hi int64) Interval {
	if lo > hi {
		return Bottom()
	}
	return Interval{lo, hi}
}

func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }
func (iv Interval) IsTop() bool    { return iv.Lo == NegInf && iv.Hi == PosInf }

// ConstValue reports whether the interval is a singleton and its value.
// Sentinel singletons do not count: they stand for unbounded sides.
func (iv Interval) ConstValue() (int64, bool) {
	if iv.Lo == iv.Hi && iv.Lo != NegInf && iv.Lo != PosInf {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether concrete value v is in the range. Sentinel
// bounds admit everything on their side, which the plain comparison
// already implements.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

func (iv Interval) String() string {
	if iv.IsBottom() {
		return "bot"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != NegInf {
		lo = fmt.Sprint(iv.Lo)
	}
	if iv.Hi != PosInf {
		hi = fmt.Sprint(iv.Hi)
	}
	if iv.Lo == iv.Hi {
		return "[" + lo + "]"
	}
	return "[" + lo + "," + hi + "]"
}

// Join is the least upper bound: the smallest interval covering both.
func Join(a, b Interval) Interval {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	return Interval{min64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}
}

// Meet is the greatest lower bound: the intersection (possibly Bottom).
func Meet(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return Range(max64(a.Lo, b.Lo), min64(a.Hi, b.Hi))
}

// Widen extrapolates an unstable bound to its sentinel: any bound of next
// that escapes prev jumps straight to ±inf. Guarantees termination of the
// ascending fixpoint in at most two steps per variable and side.
func Widen(prev, next Interval) Interval {
	if prev.IsBottom() {
		return next
	}
	if next.IsBottom() {
		return prev
	}
	w := prev
	if next.Lo < prev.Lo {
		w.Lo = NegInf
	}
	if next.Hi > prev.Hi {
		w.Hi = PosInf
	}
	return w
}

// Narrow refines a widened interval with a recomputed one: only sentinel
// bounds may improve, so the descending sequence terminates immediately.
func Narrow(prev, next Interval) Interval {
	if prev.IsBottom() || next.IsBottom() {
		return prev
	}
	n := prev
	if prev.Lo == NegInf {
		n.Lo = next.Lo
	}
	if prev.Hi == PosInf {
		n.Hi = next.Hi
	}
	if n.Lo > n.Hi {
		return prev
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// finite reports whether a bound is a real number rather than a sentinel.
func finite(v int64) bool { return v != NegInf && v != PosInf }

// checkedAdd returns a+b and whether it did not overflow.
func checkedAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// checkedSub returns a-b and whether it did not overflow.
func checkedSub(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

// checkedMul returns a*b and whether it did not overflow.
func checkedMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Add is the transfer function of x + y under the VM's wrapping int64
// semantics. Sentinel bounds conflate with MinInt64/MaxInt64, so the bound
// arithmetic is literal: [x.Lo+y.Lo, x.Hi+y.Hi]. If either endpoint sum
// overflows, some concrete pair wraps around to the far end of the value
// space and the only sound answer is Top.
func Add(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	lo, okLo := checkedAdd(x.Lo, y.Lo)
	hi, okHi := checkedAdd(x.Hi, y.Hi)
	if !okLo || !okHi {
		return Top()
	}
	return Interval{lo, hi}
}

// Sub is the transfer function of x - y: literal bound arithmetic
// [x.Lo-y.Hi, x.Hi-y.Lo], Top on any endpoint overflow (wrapping).
func Sub(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	lo, okLo := checkedSub(x.Lo, y.Hi)
	hi, okHi := checkedSub(x.Hi, y.Lo)
	if !okLo || !okHi {
		return Top()
	}
	return Interval{lo, hi}
}

// Neg is the transfer function of -x. Negating math.MinInt64 wraps in the
// VM, so an interval unbounded below (which conflates that value) degrades
// to Top.
func Neg(x Interval) Interval {
	if x.IsBottom() {
		return Bottom()
	}
	if x.Lo == NegInf {
		return Top()
	}
	lo := int64(NegInf)
	if finite(x.Hi) {
		lo = -x.Hi
	}
	return Interval{lo, -x.Lo}
}

// Mul is the transfer function of x * y: precise for finite operands whose
// corner products fit in int64, Top otherwise (wrapping).
func Mul(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	if v, ok := x.ConstValue(); ok && v == 0 {
		return Const(0)
	}
	if v, ok := y.ConstValue(); ok && v == 0 {
		return Const(0)
	}
	if !finite(x.Lo) || !finite(x.Hi) || !finite(y.Lo) || !finite(y.Hi) {
		return Top()
	}
	lo, hi := int64(PosInf), int64(NegInf)
	for _, a := range [2]int64{x.Lo, x.Hi} {
		for _, b := range [2]int64{y.Lo, y.Hi} {
			p, ok := checkedMul(a, b)
			if !ok {
				return Top()
			}
			lo, hi = min64(lo, p), max64(hi, p)
		}
	}
	return Interval{lo, hi}
}

// Div is the transfer function of x / y (Go-truncated). Division by zero
// traps in the VM, so y = {0} yields Bottom; otherwise zero is excluded
// from the divisor range conservatively. Extremes of truncated division
// occur at corner numerators and minimal-magnitude divisors, so ±1 join
// the candidate divisors whenever the range admits them.
func Div(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	if v, ok := y.ConstValue(); ok && v == 0 {
		return Bottom() // trap: no successor state
	}
	if !finite(x.Lo) || !finite(x.Hi) {
		return Top()
	}
	var divs []int64
	addDiv := func(d int64) {
		if d != 0 && finite(d) && y.Contains(d) {
			divs = append(divs, d)
		}
	}
	yl, yh := y.Lo, y.Hi
	if yl == 0 {
		yl = 1
	}
	if yh == 0 {
		yh = -1
	}
	addDiv(yl)
	addDiv(yh)
	addDiv(1)
	addDiv(-1)
	lo, hi := int64(PosInf), int64(NegInf)
	consider := func(q int64) { lo, hi = min64(lo, q), max64(hi, q) }
	if !finite(y.Lo) || !finite(y.Hi) {
		consider(0) // |y| can exceed |x|, truncating to zero
	}
	for _, n := range [2]int64{x.Lo, x.Hi} {
		for _, d := range divs {
			if n == math.MinInt64 && d == -1 {
				return Top() // wraps in the VM
			}
			consider(n / d)
		}
	}
	if lo > hi {
		return Top() // no usable divisor candidates
	}
	return Interval{lo, hi}
}

// Mod is the transfer function of x % y (Go semantics: the result follows
// the sign of x, with |r| < |y| and |r| <= |x|). y = {0} traps (Bottom).
func Mod(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	if v, ok := y.ConstValue(); ok && v == 0 {
		return Bottom()
	}
	mag := int64(PosInf)
	if finite(y.Lo) && finite(y.Hi) && y.Lo != math.MinInt64 {
		mag = max64(abs64(y.Lo), abs64(y.Hi)) - 1
	}
	if finite(x.Lo) && finite(x.Hi) && x.Lo != math.MinInt64 {
		mag = min64(mag, max64(abs64(x.Lo), abs64(x.Hi)))
	}
	lo, hi := -mag, mag
	if mag == PosInf {
		lo = NegInf
	}
	if x.Lo >= 0 {
		lo = 0
	}
	if x.Hi <= 0 {
		hi = 0
	}
	return Range(lo, hi)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// bool01 is the [0,1] result range of comparisons and logical operators.
func bool01() Interval { return Interval{0, 1} }

// Cmp is the transfer function of the comparison operators: [1] when the
// ranges prove the relation, [0] when they refute it, [0,1] otherwise.
// The op codes are lang.BinaryOp values (BinEq..BinGe), passed as int to
// keep this file self-contained.
func Cmp(op CmpOp, x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	t, f := cmpVerdict(op, x, y)
	switch {
	case t && !f:
		return Const(1)
	case f && !t:
		return Const(0)
	}
	return bool01()
}

// CmpOp is a comparison operator in the abstract domain.
type CmpOp int

const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "=="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNeq
	case CmpNeq:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	return op
}

// cmpVerdict reports whether the relation can be true and can be false.
func cmpVerdict(op CmpOp, x, y Interval) (canTrue, canFalse bool) {
	switch op {
	case CmpEq:
		overlap := x.Lo <= y.Hi && y.Lo <= x.Hi
		single := x.Lo == x.Hi && y.Lo == y.Hi && x.Lo == y.Lo
		return overlap, !single
	case CmpNeq:
		f, t := cmpVerdict(CmpEq, x, y)
		return t, f
	case CmpLt:
		return x.Lo < y.Hi, x.Hi >= y.Lo
	case CmpLe:
		return x.Lo <= y.Hi, x.Hi > y.Lo
	case CmpGt:
		return cmpVerdict(CmpLt, y, x)
	case CmpGe:
		return cmpVerdict(CmpLe, y, x)
	}
	return true, true
}

// decBound / incBound saturate at the sentinels.
func decBound(v int64) int64 {
	if !finite(v) {
		return v
	}
	return v - 1
}

func incBound(v int64) int64 {
	if !finite(v) {
		return v
	}
	return v + 1
}

// Refine narrows x and y under the assumption that `x op y` holds: the
// branch-edge refinement applied on conditional jumps. The results are
// always subsets of the inputs (Meet-based), so refinement is sound even
// when the relation cannot actually constrain a side.
func Refine(op CmpOp, x, y Interval) (Interval, Interval) {
	switch op {
	case CmpEq:
		m := Meet(x, y)
		return m, m
	case CmpNeq:
		// Only singleton exclusion at the edges is expressible.
		if v, ok := y.ConstValue(); ok {
			if x.Lo == v {
				x = Range(incBound(x.Lo), x.Hi)
			} else if x.Hi == v {
				x = Range(x.Lo, decBound(x.Hi))
			}
		}
		if v, ok := x.ConstValue(); ok {
			if y.Lo == v {
				y = Range(incBound(y.Lo), y.Hi)
			} else if y.Hi == v {
				y = Range(y.Lo, decBound(y.Hi))
			}
		}
		return x, y
	case CmpLt:
		return Meet(x, Interval{NegInf, decBound(y.Hi)}), Meet(y, Interval{incBound(x.Lo), PosInf})
	case CmpLe:
		return Meet(x, Interval{NegInf, y.Hi}), Meet(y, Interval{x.Lo, PosInf})
	case CmpGt:
		ny, nx := Refine(CmpLt, y, x)
		return nx, ny
	case CmpGe:
		ny, nx := Refine(CmpLe, y, x)
		return nx, ny
	}
	return x, y
}
