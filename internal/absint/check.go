package absint

import (
	"fmt"
	"strings"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/diag"
)

// hoistCostThreshold is the minimum constant callee cost for an
// invariant-call finding: hoisting a cheap helper out of a loop is noise,
// hoisting one that burns real ticks (or a data-dependent amount) is not.
const hoistCostThreshold = 50

// CheckProgram runs the perf-smell rules over every analyzed function of
// prog and returns the findings as a sorted report (Tool "check"). Rules:
//
//	quadratic-nest       loop with a data-dependent bound nested inside
//	                     loops with data-dependent bounds
//	unbounded-loop       exitable loop whose trip count cannot be bounded
//	growing-accumulation variable with a positive per-iteration stride,
//	                     untested by the exit condition, driving work()
//	dead-prune           CFG-reachable early exit that constant ranges
//	                     prove can never fire
//	const-cond           branch condition with a statically constant value
//	invariant-call       loop-body call of a pure costly function with
//	                     loop-invariant arguments
//	dead-store           store to a named local that no load observes
func CheckProgram(prog *compiler.Program) *diag.Report {
	an := AnalyzeProgram(prog)
	return an.Check()
}

// Check runs the rules over an already-built analysis.
func (an *Analysis) Check() *diag.Report {
	rep := &diag.Report{Tool: "check"}
	for _, r := range an.Funcs {
		an.checkQuadraticNest(r, rep)
		an.checkUnboundedLoop(r, rep)
		an.checkGrowingAccumulation(r, rep)
		an.checkDeadPrune(r, rep)
		an.checkConstCond(r, rep)
		an.checkInvariantCall(r, rep)
		an.checkDeadStore(r, rep)
	}
	rep.Sort()
	return rep
}

func (an *Analysis) finding(r *FuncResult, rule string, sev diag.Severity, line int, variable, msg string) diag.Finding {
	return diag.Finding{
		Rule:     rule,
		Severity: sev,
		File:     an.Prog.File,
		Line:     line,
		Function: r.A.Fn.Name,
		Variable: variable,
		Message:  msg,
	}
}

// checkQuadraticNest flags loops whose own trip bound is data-dependent and
// that sit inside one or more loops with data-dependent bounds: the nest's
// cost is the product of the bounds. When the inner bound is derived from
// an ancestor's induction variable the bounds are correlated — the
// triangular-scan shape — and the message says so.
func (an *Analysis) checkQuadraticNest(r *FuncResult, rep *diag.Report) {
	a := r.A
	for _, l := range a.Loops {
		bd := r.Bounds[l.Header]
		if !bd.Symbolic() {
			continue
		}
		var outer []string
		correlated := false
		for p := l.Parent; p != nil; p = p.Parent {
			pb := r.Bounds[p.Header]
			if !pb.Symbolic() {
				continue
			}
			outer = append(outer, pb.Name)
			if bd.Var >= 0 && an.writtenInLoop(a, p, bd.Var) {
				correlated = true
			}
		}
		if len(outer) == 0 {
			continue
		}
		product := strings.Join(append(append([]string{}, outer...), bd.Name), "*")
		msg := fmt.Sprintf("loop bounded by %s nested inside loop(s) bounded by %s: ~%s iterations total",
			bd.Name, strings.Join(outer, ", "), product)
		if correlated {
			msg += " (inner bound grows with the outer loop's progress)"
		}
		rep.Add(an.finding(r, "quadratic-nest", diag.SevWarn, a.Blocks[l.Header].Line, "", msg))
	}
}

func (an *Analysis) writtenInLoop(a *cfa.FuncAnalysis, l *cfa.Loop, v int) bool {
	for _, b := range l.Blocks {
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			if isStoreOf(a, an.Prog.Instrs[pc], v) {
				return true
			}
		}
	}
	return false
}

// checkUnboundedLoop flags loops that do exit somewhere but whose trip
// count the analyzer cannot bound. Exit-less loops are `vprof lint`'s
// loop-no-exit; this rule is about loops that terminate on conditions cost
// analysis cannot see through.
func (an *Analysis) checkUnboundedLoop(r *FuncResult, rep *diag.Report) {
	a := r.A
	for _, l := range a.Loops {
		bd := r.Bounds[l.Header]
		if bd.Kind != BoundUnknown || len(l.Exits) == 0 {
			continue
		}
		msg := "loop trip count cannot be bounded"
		if bd.Why != "" {
			msg += ": " + bd.Why
		}
		rep.Add(an.finding(r, "unbounded-loop", diag.SevWarn, a.Blocks[l.Header].Line, "", msg))
	}
}

// checkGrowingAccumulation flags the accumulator shape: a named variable
// with a uniform positive stride inside a loop, not consulted by the
// loop's exit test, whose value drives a work()/block() amount in the same
// loop — per-iteration cost grows with iterations already run, so total
// cost is quadratic in the trip count.
func (an *Analysis) checkGrowingAccumulation(r *FuncResult, rep *diag.Report) {
	a := r.A
	for _, l := range a.Loops {
		tested := an.exitTestVars(r, l)
		for _, b := range l.Blocks {
			if r.In[b] == nil {
				continue
			}
			for _, w := range r.Facts[b].Works {
				v := w.Arg.depVar
				if v < 0 || tested[v] {
					continue
				}
				name, _ := a.VarName(v)
				if name == "" {
					continue
				}
				s, ok := an.strideOf(a, l, v)
				if !ok || s.delta <= 0 {
					continue
				}
				line := int(an.Prog.Instrs[w.PC].Line)
				msg := fmt.Sprintf("%s grows by +%d every iteration and drives work here: per-iteration cost rises as the loop runs", name, s.delta)
				rep.Add(an.finding(r, "growing-accumulation", diag.SevWarn, line, name, msg))
			}
		}
	}
}

// exitTestVars returns the variables read by l's conditional exit test.
func (an *Analysis) exitTestVars(r *FuncResult, l *cfa.Loop) map[int]bool {
	out := map[int]bool{}
	exit := r.A.CondExit(l)
	if exit < 0 || r.In[exit] == nil {
		return out
	}
	c := r.Facts[exit].Branch.cmp
	if c == nil {
		return out
	}
	for _, side := range []absVal{c.x, c.y} {
		if side.varID >= 0 {
			out[side.varID] = true
		}
		if side.depVar >= 0 {
			out[side.depVar] = true
		}
	}
	return out
}

// checkDeadPrune flags early exits inside loops that value analysis proves
// can never fire: the block is CFG-reachable, but every path to it requires
// an interval-contradictory branch — the pruning/short-circuit condition a
// patch was supposed to enable is statically off.
func (an *Analysis) checkDeadPrune(r *FuncResult, rep *diag.Report) {
	a := r.A
	reach := a.Graph.Reachable()
	for b := range a.Blocks {
		if !reach[b] || r.In[b] != nil {
			continue
		}
		// The exit itself is not a loop member (a return or break block
		// cannot reach the latch); its guard must sit inside a loop.
		depth := a.Depths[b]
		for _, p := range a.Graph.Preds[b] {
			if a.Depths[p] > depth {
				depth = a.Depths[p]
			}
		}
		if depth == 0 || !an.blockExitsEarly(a, b, depth) {
			continue
		}
		rep.Add(an.finding(r, "dead-prune", diag.SevWarn, a.Blocks[b].Line, "",
			"early exit can never fire: its guard is statically always false"))
	}
}

// blockExitsEarly reports whether block b returns or jumps to a shallower
// nesting depth than its guard — the shape of a pruning `return`/`break`.
func (an *Analysis) blockExitsEarly(a *cfa.FuncAnalysis, b, depth int) bool {
	for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
		ins := an.Prog.Instrs[pc]
		if ins.Op == compiler.OpRet || ins.Op == compiler.OpHalt {
			return true
		}
		if ins.Op == compiler.OpJump {
			if t := a.BlockOf(int(ins.A)); t >= 0 && a.Depths[t] < depth {
				return true
			}
		}
	}
	return false
}

// checkConstCond flags real conditional branches whose operand is a
// statically constant value: the test always goes the same way. Info
// severity — constant guards are sometimes deliberate configuration.
// Short-circuit plumbing blocks (the compiler's &&/|| const-materialization
// targets) are skipped; the *outer* branch consuming the combined value is
// the one reported when it folds.
func (an *Analysis) checkConstCond(r *FuncResult, rep *diag.Report) {
	a := r.A
	for b := range a.Blocks {
		if r.In[b] == nil || !r.Facts[b].HasBranch {
			continue
		}
		if an.isShortCircuitBranch(a, b) {
			continue
		}
		v, ok := r.Facts[b].Branch.iv.ConstValue()
		if !ok {
			continue
		}
		way := "true"
		if v == 0 {
			way = "false"
		}
		line := int(an.Prog.Instrs[a.Blocks[b].End-1].Line)
		rep.Add(an.finding(r, "const-cond", diag.SevInfo, line,
			"", fmt.Sprintf("branch condition is always %s", way)))
	}
}

// isShortCircuitBranch detects the JZ/JNZ the compiler emits for && / ||:
// its jump target is a const-materialization block — a single pushed
// constant, either falling through or jumping to the expression's join
// point. A constant leg of a short-circuit chain is part of the normal
// lowering (and often deliberate configuration), so only the *combined*
// value's branch is worth a const-cond report.
func (an *Analysis) isShortCircuitBranch(a *cfa.FuncAnalysis, b int) bool {
	last := an.Prog.Instrs[a.Blocks[b].End-1]
	t := a.BlockOf(int(last.A))
	if t < 0 {
		return false
	}
	blk := a.Blocks[t]
	switch blk.End - blk.Start {
	case 1:
		return an.Prog.Instrs[blk.Start].Op == compiler.OpConst
	case 2:
		return an.Prog.Instrs[blk.Start].Op == compiler.OpConst &&
			an.Prog.Instrs[blk.Start+1].Op == compiler.OpJump
	}
	return false
}

// checkInvariantCall flags loop-body calls of hoistable functions (pure,
// deterministic, global-free, transitively) with loop-invariant arguments
// and non-trivial cost: the call recomputes the same value every iteration.
// Each call site fires once, for its innermost loop.
func (an *Analysis) checkInvariantCall(r *FuncResult, rep *diag.Report) {
	a := r.A
	fired := map[int]bool{}
	// Innermost loops first: sort by depth descending, header ascending
	// for determinism.
	loops := append([]*cfa.Loop(nil), a.Loops...)
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			li, lj := loops[i], loops[j]
			if lj.Depth > li.Depth || (lj.Depth == li.Depth && lj.Header < li.Header) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	for _, l := range loops {
		for _, b := range l.Blocks {
			if r.In[b] == nil {
				continue
			}
			for _, c := range r.Facts[b].Calls {
				if fired[c.PC] || !an.hoistable[c.Callee] {
					continue
				}
				callee := an.Prog.Funcs[c.Callee]
				cr := an.byName[callee.Name]
				if cr == nil {
					continue
				}
				costly := cr.Cost.ConstTicks() >= hoistCostThreshold ||
					cr.Cost.Degree() > 0 || cr.Cost.Unbounded
				if !costly {
					continue
				}
				invariant := true
				for _, arg := range c.Args {
					if !an.invariantIn(r, l, arg) {
						invariant = false
						break
					}
				}
				if !invariant {
					continue
				}
				fired[c.PC] = true
				line := int(an.Prog.Instrs[c.PC].Line)
				msg := fmt.Sprintf("call to %s (cost %s) has loop-invariant arguments: hoist it out of the loop", callee.Name, cr.Cost)
				rep.Add(an.finding(r, "invariant-call", diag.SevWarn, line, "", msg))
			}
		}
	}
}

// checkDeadStore flags stores to named locals that no load can observe:
// the def reaches no use before being killed or the function returning.
// Locals only — a global's readers may live in other functions.
func (an *Analysis) checkDeadStore(r *FuncResult, rep *diag.Report) {
	a := r.A
	sites, in, _ := a.ReachingDefs()
	if len(sites) == 0 {
		return
	}
	used := make([]bool, len(sites))
	// Def sites of each var, for intra-block kill tracking.
	byVar := map[int][]int{}
	for i, s := range sites {
		byVar[s.Var] = append(byVar[s.Var], i)
	}
	for b := range a.Blocks {
		cur := in[b].Clone()
		siteAt := map[int]int{}
		for i, s := range sites {
			if s.Block == b {
				siteAt[s.PC] = i
			}
		}
		for pc := a.Blocks[b].Start; pc < a.Blocks[b].End; pc++ {
			ins := an.Prog.Instrs[pc]
			switch ins.Op {
			case compiler.OpLoadL, compiler.OpLoadG:
				v := loadVar(a, ins)
				for _, i := range byVar[v] {
					if cur.Has(i) {
						used[i] = true
					}
				}
			case compiler.OpStoreL, compiler.OpStoreG:
				i, ok := siteAt[pc]
				if !ok {
					continue
				}
				for _, j := range byVar[sites[i].Var] {
					cur.Clear(j)
				}
				cur.Set(i)
			}
		}
	}
	for i, s := range sites {
		if used[i] || s.Var >= a.Fn.NumSlots {
			continue
		}
		name, _ := a.VarName(s.Var)
		if name == "" {
			continue
		}
		// Skip stores in value-unreachable blocks (dead-prune territory)
		// and the implicit zero-init of declarations without initializers.
		if r.In[s.Block] == nil {
			continue
		}
		line := int(an.Prog.Instrs[s.PC].Line)
		rep.Add(an.finding(r, "dead-store", diag.SevWarn, line, name,
			fmt.Sprintf("value stored to %s is never read", name)))
	}
}

func loadVar(a *cfa.FuncAnalysis, ins compiler.Instr) int {
	if ins.Op == compiler.OpLoadG {
		return a.GlobalVar(int(ins.A))
	}
	return int(ins.A)
}
