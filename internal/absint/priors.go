package absint

import (
	"vprof/internal/debuginfo"
)

// StaticPrior summarizes the analyzer's per-variable evidence for schema
// relevance scoring (the paper's §3.1 variable selection, sharpened with
// value ranges):
//
//   - TripBound: the variable names a symbolic loop trip bound somewhere —
//     its value directly scales a loop's iteration count, the strongest
//     static signal that monitoring it explains cost.
//   - FeedsWork: the variable (or a value derived from it alone) reaches a
//     work()/block() argument — its magnitude is CPU or wall time.
//   - Singleton: every reachable abstract state pins the variable to one
//     constant — its value cannot correlate with anything.
type StaticPrior struct {
	TripBound bool
	FeedsWork bool
	Singleton bool
}

// Priors returns the per-variable static facts, keyed like schema entries:
// "function\x00variable" with debuginfo.GlobalScope as the function of
// globals. Only named variables appear.
func (an *Analysis) Priors() map[string]StaticPrior {
	out := map[string]StaticPrior{}
	// Globals are analyzed once per function; a global is a singleton only
	// when every function's states agree, so join across the program.
	globalRange := map[string]Interval{}

	for _, r := range an.Funcs {
		a := r.A
		key := func(v int) (string, bool) {
			name, isGlobal := a.VarName(v)
			if name == "" {
				return "", false
			}
			fn := a.Fn.Name
			if isGlobal {
				fn = debuginfo.GlobalScope
			}
			return fn + "\x00" + name, true
		}
		mark := func(v int, f func(*StaticPrior)) {
			if v < 0 || v >= a.NumVars() {
				return
			}
			if k, ok := key(v); ok {
				p := out[k]
				f(&p)
				out[k] = p
			}
		}

		for _, bd := range r.Bounds {
			if bd.Symbolic() {
				mark(bd.Var, func(p *StaticPrior) { p.TripBound = true })
			}
		}
		for b := range r.Facts {
			for _, w := range r.Facts[b].Works {
				v := w.Arg.varID
				if v < 0 {
					v = w.Arg.depVar
				}
				mark(v, func(p *StaticPrior) { p.FeedsWork = true })
			}
		}

		// Singleton: join the variable's interval over every value-reachable
		// block entry; a constant join means the value never varies.
		for v := 0; v < a.NumVars(); v++ {
			k, ok := key(v)
			if !ok {
				continue
			}
			joined := Bottom()
			for _, st := range r.In {
				if st == nil {
					continue
				}
				joined = Join(joined, st.vars[v])
			}
			if v >= a.Fn.NumSlots {
				if prev, seen := globalRange[k]; seen {
					joined = Join(joined, prev)
				}
				globalRange[k] = joined
				continue
			}
			if _, isConst := joined.ConstValue(); isConst {
				p := out[k]
				p.Singleton = true
				out[k] = p
			}
		}
	}

	for k, iv := range globalRange {
		if _, isConst := iv.ConstValue(); isConst {
			p := out[k]
			p.Singleton = true
			out[k] = p
		}
	}
	return out
}
