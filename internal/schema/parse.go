package schema

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a schema back from its textual format (the inverse of Format),
// one entry per line:
//
//	file_path, function, line, variable, type, tags
//
// A 7th field, the relevance score (FormatScored output), is accepted and
// preserved. Blank lines and lines starting with '#' are ignored.
func Parse(r io.Reader) (*Schema, error) {
	s := &Schema{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("schema line %d: %w", lineNo, err)
		}
		s.Entries = append(s.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseEntry(line string) (Entry, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 6 && len(parts) != 7 {
		return Entry{}, fmt.Errorf("want 6 or 7 fields, got %d", len(parts))
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	lineNum, err := strconv.Atoi(parts[2])
	if err != nil {
		return Entry{}, fmt.Errorf("bad line number %q", parts[2])
	}
	tags, err := ParseTags(parts[5])
	if err != nil {
		return Entry{}, err
	}
	var score float64
	if len(parts) == 7 {
		score, err = strconv.ParseFloat(parts[6], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad score %q", parts[6])
		}
	}
	return Entry{
		FilePath: parts[0],
		Function: parts[1],
		Line:     lineNum,
		Variable: parts[3],
		Type:     parts[4],
		Tags:     tags,
		Score:    score,
	}, nil
}

// ParseTags parses the "loop|cond|args" tag syntax ("None" or "" = no tags).
func ParseTags(s string) (Tag, error) {
	if s == "" || strings.EqualFold(s, "none") {
		return TagNone, nil
	}
	var t Tag
	for _, part := range strings.Split(s, "|") {
		switch strings.TrimSpace(part) {
		case "loop":
			t |= TagLoop
		case "cond":
			t |= TagCond
		case "args":
			t |= TagArgs
		default:
			return 0, fmt.Errorf("unknown tag %q", part)
		}
	}
	return t, nil
}
